package netloc

// Cross-module integration tests: each test exercises a full user-visible
// flow across several packages, the way the examples and the cmd tools
// compose them.

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netloc/internal/comm"
	"netloc/internal/core"
	"netloc/internal/energy"
	"netloc/internal/harness"
	"netloc/internal/mapping"
	"netloc/internal/metrics"
	"netloc/internal/netmodel"
	"netloc/internal/report"
	"netloc/internal/simnet"
	"netloc/internal/topology"
	"netloc/internal/trace"
	"netloc/internal/workcache"
	"netloc/internal/workloads"
)

// TestGenerateWriteReadAnalyze is the full trace-file round trip: generate
// a workload, persist it, stream it back, and verify the analysis is
// identical to analyzing the in-memory trace.
func TestGenerateWriteReadAnalyze(t *testing.T) {
	app, err := workloads.Lookup("Crystal Router")
	if err != nil {
		t.Fatal(err)
	}
	orig, err := app.Generate(100)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "cr100.nlt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteTrace(f, orig); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	in, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	r, err := trace.NewReader(in)
	if err != nil {
		t.Fatal(err)
	}
	fromDisk, err := comm.AccumulateStream(r, comm.AccumulateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	aDisk, err := core.AnalyzeAccumulated(fromDisk, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	aMem, err := core.AnalyzeTrace(orig, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	if aDisk.Peers != aMem.Peers ||
		aDisk.RankDistance != aMem.RankDistance ||
		aDisk.Selectivity != aMem.Selectivity ||
		aDisk.Torus.PacketHops != aMem.Torus.PacketHops ||
		aDisk.FatTree.AvgHops != aMem.FatTree.AvgHops ||
		aDisk.Dragonfly.UtilizationPct != aMem.Dragonfly.UtilizationPct {
		t.Fatalf("disk and memory analyses differ:\ndisk %+v\nmem  %+v", aDisk, aMem)
	}
}

// TestTextAndBinaryCodecsAgree verifies both codecs produce the same
// analysis for a generated workload.
func TestTextAndBinaryCodecsAgree(t *testing.T) {
	app, err := workloads.Lookup("MiniFE")
	if err != nil {
		t.Fatal(err)
	}
	orig, err := app.Generate(18)
	if err != nil {
		t.Fatal(err)
	}
	var bin, txt bytes.Buffer
	if err := trace.WriteTrace(&bin, orig); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteText(&txt, orig); err != nil {
		t.Fatal(err)
	}
	fromBin, err := trace.ReadTrace(&bin)
	if err != nil {
		t.Fatal(err)
	}
	fromTxt, err := trace.ReadText(&txt)
	if err != nil {
		t.Fatal(err)
	}
	aBin, err := core.AnalyzeTrace(fromBin, core.Options{SkipTopologies: true})
	if err != nil {
		t.Fatal(err)
	}
	aTxt, err := core.AnalyzeTrace(fromTxt, core.Options{SkipTopologies: true})
	if err != nil {
		t.Fatal(err)
	}
	if aBin.RankDistance != aTxt.RankDistance || aBin.Selectivity != aTxt.Selectivity {
		t.Fatalf("codec analyses differ: %+v vs %+v", aBin, aTxt)
	}
}

// TestStaticModelAndSimulatorAgreeOnVolume cross-checks the static network
// model against the flow-level simulator: identical messages, identical
// per-link byte totals.
func TestStaticModelAndSimulatorAgreeOnVolume(t *testing.T) {
	app, err := workloads.Lookup("LULESH")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := app.Generate(64)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := comm.Accumulate(tr, comm.AccumulateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.NewTorus(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := mapping.Consecutive(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	static, err := netmodel.Run(acc.Wire, topo, mp, netmodel.Options{WallTime: tr.Meta.WallTime, TrackLinks: true})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := simnet.Simulate(tr, topo, mp, simnet.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if uint64(sim.Messages) != static.Messages {
		t.Fatalf("message counts: sim %d vs static %d", sim.Messages, static.Messages)
	}
	// The simulator's total busy time equals byte-hops / bandwidth.
	wantBusy := float64(static.ByteHops) / 12e9
	gotBusy := sim.MeasuredUtilizationPct / 100 * sim.Makespan * float64(static.UsedLinks)
	if math.Abs(gotBusy-wantBusy) > 1e-6*wantBusy {
		t.Fatalf("busy time: sim %v vs static %v", gotBusy, wantBusy)
	}
}

// TestMappingPipelineNeverLosesToConsecutive runs the optimizer on the
// p2p matrices of several workloads: it must never end above the
// consecutive baseline (a finding in itself — for MOCFE's angular
// quarters, the torus wraparound makes the consecutive mapping a local
// optimum because the ±ranks/4 strides land on z-neighbors).
func TestMappingPipelineNeverLosesToConsecutive(t *testing.T) {
	topo, err := topology.NewTorus(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, appName := range []string{"CESAR MOCFE", "LULESH", "CESAR Nekbone"} {
		a, err := core.AnalyzeApp(appName, 64, core.Options{SkipTopologies: true})
		if err != nil {
			t.Fatal(err)
		}
		cons, err := mapping.Consecutive(64, 64)
		if err != nil {
			t.Fatal(err)
		}
		consCost, err := mapping.Cost(a.Acc.P2P, topo, cons)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := mapping.Optimize(a.Acc.P2P, topo, 15)
		if err != nil {
			t.Fatal(err)
		}
		optCost, err := mapping.Cost(a.Acc.P2P, topo, opt)
		if err != nil {
			t.Fatal(err)
		}
		if optCost > consCost {
			t.Fatalf("%s: optimizer lost to consecutive: %v vs %v", appName, optCost, consCost)
		}
	}
}

// TestMappingPipelineImprovesScrambledPattern gives the optimizer a
// pattern whose heavy partners are bit-scrambled across the rank space —
// the case the paper's discussion targets ("communication partners are
// likely spatially separated").
func TestMappingPipelineImprovesScrambledPattern(t *testing.T) {
	topo, err := topology.NewTorus(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := comm.NewMatrix(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Pair rank i with its bit-reversed partner: heavy, spatially wild.
	rev6 := func(v int) int {
		r := 0
		for b := 0; b < 6; b++ {
			r = r<<1 | (v>>b)&1
		}
		return r
	}
	for i := 0; i < 64; i++ {
		if p := rev6(i); p != i {
			if err := m.Add(i, p, 100000); err != nil {
				t.Fatal(err)
			}
		}
	}
	cons, err := mapping.Consecutive(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	consCost, err := mapping.Cost(m, topo, cons)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := mapping.Optimize(m, topo, 20)
	if err != nil {
		t.Fatal(err)
	}
	optCost, err := mapping.Cost(m, topo, opt)
	if err != nil {
		t.Fatal(err)
	}
	if optCost >= consCost {
		t.Fatalf("optimizer did not improve scrambled pattern: %v vs %v", optCost, consCost)
	}
}

// TestEnergyFollowsUtilization checks the energy model across two
// workloads: the near-idle one wastes a larger share of energy.
func TestEnergyFollowsUtilization(t *testing.T) {
	estimate := func(appName string, ranks int) *energy.Estimate {
		t.Helper()
		app, err := workloads.Lookup(appName)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := app.Generate(ranks)
		if err != nil {
			t.Fatal(err)
		}
		acc, err := comm.Accumulate(tr, comm.AccumulateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := topology.TorusConfig(ranks)
		if err != nil {
			t.Fatal(err)
		}
		topo, err := cfg.Build()
		if err != nil {
			t.Fatal(err)
		}
		mp, err := mapping.Consecutive(ranks, topo.Nodes())
		if err != nil {
			t.Fatal(err)
		}
		res, err := netmodel.Run(acc.Wire, topo, mp, netmodel.Options{
			WallTime: tr.Meta.WallTime, TrackLinks: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		e, err := energy.FromResult(res, len(topo.Links()), tr.Meta.WallTime, 12e9, energy.Params{})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	idle := estimate("EXMATEX CMC 2D", 64) // ~0.00005% utilization
	busy := estimate("BigFFT", 9)          // >1% utilization
	if idle.IdleShare <= busy.IdleShare {
		t.Fatalf("idle share ordering: CMC %v <= BigFFT %v", idle.IdleShare, busy.IdleShare)
	}
	if idle.ScaleFraction >= busy.ScaleFraction {
		t.Fatalf("scale fraction ordering: CMC %v >= BigFFT %v", idle.ScaleFraction, busy.ScaleFraction)
	}
}

// TestHarnessRendersHeatmapCompatibleMatrices ties harness analyses to the
// heatmap renderer.
func TestHarnessRendersHeatmapCompatibleMatrices(t *testing.T) {
	a, err := core.AnalyzeApp("PARTISN", 168, core.Options{SkipTopologies: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := report.HeatmapASCII(&buf, a.Acc.P2P, 24); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "168 ranks") {
		t.Fatalf("heatmap header: %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
	var img bytes.Buffer
	if err := report.HeatmapPGM(&img, a.Acc.P2P); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(img.Bytes(), []byte("P5\n168 168\n255\n")) {
		t.Fatal("PGM header wrong")
	}
}

// TestHarnessExperimentsSmoke runs the fast experiments end to end through
// the harness dispatcher.
func TestHarnessExperimentsSmoke(t *testing.T) {
	for _, exp := range []string{"table1", "table2", "table4", "fig1", "fig4"} {
		var buf bytes.Buffer
		if err := harness.Run(&buf, harness.Params{Experiment: exp}); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", exp)
		}
	}
}

// TestDimensionalityConsistentWithRankDistance cross-checks metrics: the
// 1D folding distance must equal the plain rank distance for every
// workload with p2p traffic at its smallest scale.
func TestDimensionalityConsistentWithRankDistance(t *testing.T) {
	for _, app := range workloads.All() {
		ranks := app.RankCounts()[0]
		a, err := core.AnalyzeApp(app.Name, ranks, core.Options{SkipTopologies: true})
		if err != nil {
			t.Fatal(err)
		}
		if !a.HasP2P {
			continue
		}
		r1, err := metrics.DimLocality(a.Acc.P2P, 1, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r1.Distance-a.RankDistance) > 1e-9 {
			t.Errorf("%s/%d: 1D distance %v != rank distance %v",
				app.Name, ranks, r1.Distance, a.RankDistance)
		}
	}
}

// TestHarnessJSONDeterministicUnderParallelism runs experiments through
// the full harness pipeline at Parallelism 1 and 8, and across artifact
// cache modes (disabled, cold per run, warm across runs), and requires
// the JSON outputs to be byte-identical — the engine's determinism
// contract, observed at the outermost user-visible layer. Cached traces
// and matrices must never be distinguishable from fresh ones.
func TestHarnessJSONDeterministicUnderParallelism(t *testing.T) {
	warm := workcache.New(0)
	caches := []struct {
		name  string
		cache func() *workcache.Cache
	}{
		{"disabled", func() *workcache.Cache { return nil }},
		{"cold", func() *workcache.Cache { return workcache.New(0) }},
		{"warm", func() *workcache.Cache { return warm }},
	}
	for _, exp := range []string{"table1", "table3", "table4", "fig3"} {
		render := func(parallelism int, cache *workcache.Cache) []byte {
			t.Helper()
			var buf bytes.Buffer
			err := harness.Run(&buf, harness.Params{
				Experiment: exp,
				JSON:       true,
				Options:    core.Options{MaxRanks: 128, Parallelism: parallelism, Cache: cache},
			})
			if err != nil {
				t.Fatalf("%s (j=%d): %v", exp, parallelism, err)
			}
			return buf.Bytes()
		}
		want := render(1, nil)
		for _, c := range caches {
			for _, parallelism := range []int{1, 8} {
				got := render(parallelism, c.cache())
				if !bytes.Equal(want, got) {
					t.Errorf("%s: JSON differs at Parallelism %d with cache %s", exp, parallelism, c.name)
				}
			}
		}
	}
	if s := warm.Stats(); s.Hits == 0 {
		t.Fatalf("warm cache recorded no hits across repeated experiments: %+v", s)
	}
}
