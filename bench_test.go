// Package netloc's root benchmark harness regenerates every table and
// figure of the paper's evaluation once per benchmark iteration, so
//
//	go test -bench=. -benchmem
//
// exercises the full reproduction. Key scalar outcomes are attached as
// custom benchmark metrics (and logged with -v) so runs can be compared
// against the published numbers; the cmd/locality binary prints the full
// row/series layout of each table.
package netloc

import (
	"io"
	"testing"

	"netloc/internal/comm"
	"netloc/internal/core"
	"netloc/internal/design"
	"netloc/internal/mapping"
	"netloc/internal/metrics"
	"netloc/internal/mpi"
	"netloc/internal/netmodel"
	"netloc/internal/report"
	"netloc/internal/topology"
	"netloc/internal/workcache"
	"netloc/internal/workloads"
)

// BenchmarkTable1Overview regenerates the workload-overview table
// (ranks, time, volume, p2p/collective split, throughput for all 38
// configurations).
func BenchmarkTable1Overview(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := core.Table1(core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := report.Table1(io.Discard, rows, false); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(rows)), "rows")
		}
	}
}

// BenchmarkTable2Configs regenerates the topology-configuration ladder.
func BenchmarkTable2Configs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := core.Table2(core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := report.Table2(io.Discard, rows, false); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(rows)), "rows")
		}
	}
}

// BenchmarkTable3Characterization regenerates the paper's main table: the
// MPI-level metrics (peers, rank distance, selectivity) and the
// system-level metrics (packet hops, average hops, utilization) on torus,
// fat tree, and dragonfly for every configuration. It also derives the
// headline claims so the run's shape can be compared with the paper's.
func BenchmarkTable3Characterization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := core.Table3(core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := report.Table3(io.Discard, rows, false); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			c := core.SummarizeClaims(rows)
			b.ReportMetric(c.SelectivityLE10Pct, "%sel<=10")
			b.ReportMetric(c.UtilizationLT1Pct, "%util<1")
			b.ReportMetric(c.DragonflyGlobalSharePct, "%df-global")
			b.Logf("claims: selectivity<=10 in %.1f%% of p2p configs (paper ~89%%), "+
				"utilization<1%% in %.1f%% of cells (paper ~93%%), dragonfly global share %.1f%% (paper ~95%%)",
				c.SelectivityLE10Pct, c.UtilizationLT1Pct, c.DragonflyGlobalSharePct)
		}
	}
}

// BenchmarkTable4Dimensionality regenerates the 1D/2D/3D rank-locality
// foldings for the paper's selected workloads.
func BenchmarkTable4Dimensionality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := core.Table4(core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := report.Table4(io.Discard, rows, false); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("%s/%d: 1D %.0f%% 2D %.0f%% 3D %.0f%%", r.App, r.Ranks, r.Loc1D, r.Loc2D, r.Loc3D)
			}
		}
	}
}

// BenchmarkFigure1SelectivityIllustration regenerates the sorted
// partner-volume curve of LULESH rank 0.
func BenchmarkFigure1SelectivityIllustration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curve, err := core.Figure1("LULESH", 64, 0, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := report.Curve(io.Discard, "LULESH r0", curve, false); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(curve)), "partners")
		}
	}
}

// BenchmarkFigure3SelectivityTrends regenerates the cumulative
// traffic-share curves of all workloads.
func BenchmarkFigure3SelectivityTrends(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := core.Figure3(core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := report.Figure3(io.Discard, curves, false); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(curves)), "workloads")
		}
	}
}

// BenchmarkFigure4SelectivityScaling regenerates the AMG selectivity
// saturation study across its four scales.
func BenchmarkFigure4SelectivityScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := core.Figure4("AMG", core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := report.Figure3(io.Discard, curves, false); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, c := range curves {
				b.Logf("AMG/%d selectivity %.1f", c.Ranks, c.Selectivity)
			}
		}
	}
}

// BenchmarkFigure5MultiCore regenerates the cores-per-socket inter-node
// traffic study for every configuration with at least 512 ranks.
func BenchmarkFigure5MultiCore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := core.Figure5(512, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := report.Figure5(io.Discard, series, false); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(series)), "workloads")
		}
	}
}

// BenchmarkTable3Sequential and BenchmarkTable3Parallel pin the
// parallel engine's speedup on the paper's main table: identical work,
// Parallelism forced to 1 versus the full GOMAXPROCS worker pool. On a
// single-CPU host the two converge (the engine degrades to the caller's
// goroutine); with 4+ cores the parallel run should be at least 2x
// faster while producing byte-identical output (see
// TestHarnessJSONDeterministicUnderParallelism).
//
// Both share a workload artifact cache across iterations, the way every
// long-lived caller (harness -all, the service) runs; the cache is
// warmed before the timer starts so the numbers are the steady-state
// analysis cost. BenchmarkTable3Characterization keeps the cache cold
// and records the first-run cost.
func BenchmarkTable3Sequential(b *testing.B) {
	benchTable3(b, 1)
}

func BenchmarkTable3Parallel(b *testing.B) {
	benchTable3(b, 0) // 0 = GOMAXPROCS workers
}

func benchTable3(b *testing.B, parallelism int) {
	cache := workcache.New(0)
	if _, err := core.Table3(core.Options{Parallelism: parallelism, Cache: cache}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := core.Table3(core.Options{Parallelism: parallelism, Cache: cache})
		if err != nil {
			b.Fatal(err)
		}
		if err := report.Table3(io.Discard, rows, false); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(rows)), "rows")
		}
	}
}

// BenchmarkHeadlineClaims recomputes only the claims summary (a cheap
// derivation once Table 3 is computed; kept separate so the claims path is
// benchmarked end to end).
func BenchmarkHeadlineClaims(b *testing.B) {
	rows, err := core.Table3(core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := core.SummarizeClaims(rows)
		if err := report.Claims(io.Discard, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMappingOptimizer compares consecutive, greedy, and
// greedy+refine mappings on SNAP/torus — the paper's proposed advanced
// mapping versus its baseline.
func BenchmarkAblationMappingOptimizer(b *testing.B) {
	app, err := workloads.Lookup("SNAP")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := app.Generate(168)
	if err != nil {
		b.Fatal(err)
	}
	acc, err := comm.Accumulate(tr, comm.AccumulateOptions{})
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := topology.TorusConfig(168)
	if err != nil {
		b.Fatal(err)
	}
	topo, err := cfg.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt, err := mapping.Optimize(acc.Wire, topo, 10)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			cons, err := mapping.Consecutive(168, topo.Nodes())
			if err != nil {
				b.Fatal(err)
			}
			cc, err := mapping.Cost(acc.Wire, topo, cons)
			if err != nil {
				b.Fatal(err)
			}
			oc, err := mapping.Cost(acc.Wire, topo, opt)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*oc/cc, "%of-consecutive")
		}
	}
}

// BenchmarkAblationPacketSize sweeps the packetization granularity on
// LULESH-64 to show how the 4 kB assumption shapes packet hops.
func BenchmarkAblationPacketSize(b *testing.B) {
	for _, ps := range []int{1024, 4096, 65536} {
		ps := ps
		b.Run(byteSizeName(ps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a, err := core.AnalyzeApp("LULESH", 64, core.Options{PacketSize: ps, SkipLinkTracking: true})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(a.Torus.PacketHops), "torus-pkt-hops")
				}
			}
		})
	}
}

func byteSizeName(ps int) string {
	switch {
	case ps >= 1<<20:
		return "pktMiB"
	case ps >= 1<<10:
		if ps%(1<<10) == 0 {
			return "pkt" + itoa(ps>>10) + "KiB"
		}
	}
	return "pkt" + itoa(ps) + "B"
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationRandomMapping quantifies how much worse a random
// placement is than consecutive for a stencil workload — the locality the
// consecutive baseline already captures.
func BenchmarkAblationRandomMapping(b *testing.B) {
	app, err := workloads.Lookup("LULESH")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := app.Generate(64)
	if err != nil {
		b.Fatal(err)
	}
	acc, err := comm.Accumulate(tr, comm.AccumulateOptions{})
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := topology.TorusConfig(64)
	if err != nil {
		b.Fatal(err)
	}
	topo, err := cfg.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rnd, err := mapping.Random(64, topo.Nodes(), int64(i))
		if err != nil {
			b.Fatal(err)
		}
		res, err := netmodel.Run(acc.Wire, topo, rnd, netmodel.Options{WallTime: tr.Meta.WallTime})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			cons, err := mapping.Consecutive(64, topo.Nodes())
			if err != nil {
				b.Fatal(err)
			}
			base, err := netmodel.Run(acc.Wire, topo, cons, netmodel.Options{WallTime: tr.Meta.WallTime})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.PacketHops)/float64(base.PacketHops), "x-vs-consecutive")
		}
	}
}

// BenchmarkAblationCollectiveStrategy compares the paper's direct
// collective translation against binomial-tree and ring algorithms on the
// collective-dominated MOCFE workload: the direct translation maximizes
// network usage (the paper's stated intent), trees cut the message count,
// and rings turn collectives into pure neighbor traffic.
func BenchmarkAblationCollectiveStrategy(b *testing.B) {
	for _, s := range []mpi.Strategy{mpi.StrategyDirect, mpi.StrategyTree, mpi.StrategyRing} {
		s := s
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a, err := core.AnalyzeApp("CESAR MOCFE", 256, core.Options{
					Strategy: s, SkipLinkTracking: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(a.Torus.PacketHops), "torus-pkt-hops")
					b.ReportMetric(a.Torus.AvgHops, "torus-avg-hops")
				}
			}
		})
	}
}

// BenchmarkAblationTorusWraparound quantifies what the torus wrap-around
// links buy: the same workload on a 3D mesh (identical structure, no
// wraps). For MOCFE's angular-quarter pattern the wrap is what folds the
// ±ranks/4 partners onto z-neighbors.
func BenchmarkAblationTorusWraparound(b *testing.B) {
	app, err := workloads.Lookup("CESAR MOCFE")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := app.Generate(64)
	if err != nil {
		b.Fatal(err)
	}
	acc, err := comm.Accumulate(tr, comm.AccumulateOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for _, wrap := range []bool{true, false} {
		wrap := wrap
		name := "torus"
		if !wrap {
			name = "mesh"
		}
		b.Run(name, func(b *testing.B) {
			var topo topology.Topology
			var err error
			if wrap {
				topo, err = topology.NewTorus(4, 4, 4)
			} else {
				topo, err = topology.NewMesh(4, 4, 4)
			}
			if err != nil {
				b.Fatal(err)
			}
			mp, err := mapping.Consecutive(64, 64)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := netmodel.Run(acc.Wire, topo, mp, netmodel.Options{WallTime: tr.Meta.WallTime})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.AvgHops, "avg-hops")
				}
			}
		})
	}
}

// BenchmarkExtensionScaleSweep extends the paper's selectivity-saturation
// question beyond its largest trace: AMG generated at 4096 and 13824 ranks
// via power-law extrapolation of Table 1. The paper's saturation reading
// predicts the selectivity keeps creeping up only slowly — the reported
// metrics let each run check that.
func BenchmarkExtensionScaleSweep(b *testing.B) {
	app, err := workloads.Lookup("AMG")
	if err != nil {
		b.Fatal(err)
	}
	for _, ranks := range []int{1728, 4096, 13824} {
		ranks := ranks
		b.Run(itoa(ranks)+"ranks", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr, err := app.GenerateAt(ranks)
				if err != nil {
					b.Fatal(err)
				}
				acc, err := comm.Accumulate(tr, comm.AccumulateOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					sel, err := metrics.Selectivity(acc.P2P, 0.9)
					if err != nil {
						b.Fatal(err)
					}
					dist, err := metrics.RankDistance(acc.P2P, 0.9)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(sel, "selectivity")
					b.ReportMetric(dist, "rank-dist")
				}
			}
		})
	}
}

// BenchmarkAblationValiantRouting quantifies the paper's remark that the
// adaptive routing used in practice on dragonflies "often results in even
// longer paths" than the minimal routing the study assumes: the same
// workload under minimal vs Valiant (randomized-intermediate) routing.
func BenchmarkAblationValiantRouting(b *testing.B) {
	app, err := workloads.Lookup("Boxlib CNS")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := app.Generate(256)
	if err != nil {
		b.Fatal(err)
	}
	acc, err := comm.Accumulate(tr, comm.AccumulateOptions{})
	if err != nil {
		b.Fatal(err)
	}
	df, err := topology.NewDragonfly(6, 3, 3)
	if err != nil {
		b.Fatal(err)
	}
	valiant, err := topology.NewValiant(df, 1)
	if err != nil {
		b.Fatal(err)
	}
	mp, err := mapping.Consecutive(256, df.Nodes())
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		topo topology.Topology
	}{{"minimal", df}, {"valiant", valiant}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := netmodel.Run(acc.Wire, tc.topo, mp, netmodel.Options{WallTime: tr.Meta.WallTime})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.AvgHops, "avg-hops")
				}
			}
		})
	}
}

// BenchmarkDesignSearchSmall pins the cost of a small topology design
// search: the milc workload at 64 ranks swept over all four families and
// both default mappings, two configurations per family. This is the
// /v1/design sync path end to end (trace generation, accumulation,
// candidate build/map/model/simulate, ranking).
func BenchmarkDesignSearchSmall(b *testing.B) {
	req := design.Request{
		App:         "milc",
		Ranks:       64,
		Constraints: design.Constraints{MaxCandidates: 2},
	}
	// Shared artifact cache, as the service's design endpoints run it.
	opts := core.Options{Cache: workcache.New(0)}
	for i := 0; i < b.N; i++ {
		sheet, err := design.Search(req, opts)
		if err != nil {
			b.Fatal(err)
		}
		if err := report.DesignSheet(io.Discard, sheet, false); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(sheet.Rows)), "candidates")
			b.ReportMetric(sheet.Best().Score, "best-score")
		}
	}
}

// BenchmarkCongestionLULESH64 pins the cost of the temporal congestion
// study on one representative cell: LULESH at 64 ranks replayed on its
// three Table 2 topologies under all four routing policies, tolerance
// sweep disabled (the sweep's cost is just repeated simulation). This is
// the event-driven simulator end to end — trace generation, expansion,
// per-policy routing, the global event loop, and the hotspot pass.
func BenchmarkCongestionLULESH64(b *testing.B) {
	refs := []core.WorkloadRef{{App: "LULESH", Ranks: 64}}
	// Shared artifact cache, as the service and harness run it.
	opts := core.Options{Cache: workcache.New(0)}
	for i := 0; i < b.N; i++ {
		rows, err := core.CongestionTable(refs, nil, nil, -1, opts)
		if err != nil {
			b.Fatal(err)
		}
		if err := report.Congestion(io.Discard, rows, false); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(rows)), "rows")
			var msgs float64
			for _, r := range rows {
				msgs += float64(r.Messages)
			}
			b.ReportMetric(msgs, "messages")
		}
	}
}
