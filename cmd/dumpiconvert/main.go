// Command dumpiconvert converts per-rank dumpi2ascii dumps (the text form
// of the sst-dumpi traces the original study analyzed) into this
// repository's binary trace format, ready for cmd/locality -trace.
//
// Usage:
//
//	dumpiconvert -app AMG -o amg.nlt rank0.txt rank1.txt ... rankN.txt
//
// Files are assigned ranks in argument order (sort them by the rank index
// embedded in dumpi file names).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"netloc/internal/dumpi"
	"netloc/internal/trace"
)

func main() {
	var (
		app = flag.String("app", "trace", "application name recorded in the output")
		out = flag.String("o", "out.nlt", "output trace file")
	)
	flag.Parse()
	if err := run(*app, *out, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "dumpiconvert:", err)
		os.Exit(1)
	}
}

func run(app, out string, files []string) error {
	if len(files) == 0 {
		return fmt.Errorf("no input files (one dumpi2ascii dump per rank, in rank order)")
	}
	readers := make([]io.Reader, len(files))
	closers := make([]*os.File, len(files))
	for i, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		readers[i] = f
		closers[i] = f
	}
	defer func() {
		for _, f := range closers {
			f.Close()
		}
	}()
	t, err := dumpi.LoadTrace(app, readers)
	if err != nil {
		return err
	}
	dst, err := os.Create(out)
	if err != nil {
		return err
	}
	defer dst.Close()
	if err := trace.WriteTrace(dst, t); err != nil {
		return err
	}
	if err := dst.Close(); err != nil {
		return err
	}
	p2p, coll := t.TotalBytes()
	fmt.Printf("wrote %s: %d ranks, %d events, %.1f MB p2p + %.1f MB collective, %.3gs wall time\n",
		out, t.Meta.Ranks, len(t.Events), float64(p2p)/1e6, float64(coll)/1e6, t.Meta.WallTime)
	return nil
}
