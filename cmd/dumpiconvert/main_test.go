package main

import (
	"os"
	"path/filepath"
	"testing"

	"netloc/internal/trace"
)

const rank0Dump = `MPI_Send entering at walltime 100.0, cputime 0 seconds in thread 0.
int count=4096
datatype datatype=10 (MPI_DOUBLE)
int dest=1
MPI_Send returning at walltime 100.5, cputime 0 seconds in thread 0.
`

const rank1Dump = `MPI_Recv entering at walltime 100.0, cputime 0 seconds in thread 0.
int count=4096
datatype datatype=10 (MPI_DOUBLE)
int source=0
MPI_Recv returning at walltime 100.6, cputime 0 seconds in thread 0.
`

func TestRunConvertsDumps(t *testing.T) {
	dir := t.TempDir()
	f0 := filepath.Join(dir, "r0.txt")
	f1 := filepath.Join(dir, "r1.txt")
	if err := os.WriteFile(f0, []byte(rank0Dump), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(f1, []byte(rank1Dump), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.nlt")
	if err := run("demo", out, []string{f0, f1}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Meta.Ranks != 2 || tr.Meta.App != "demo" || len(tr.Events) != 2 {
		t.Fatalf("trace = %+v", tr.Meta)
	}
	// 4096 doubles = 32768 bytes on the send.
	if tr.Events[0].Bytes != 32768 {
		t.Fatalf("bytes = %d", tr.Events[0].Bytes)
	}
}

func TestRunNoInputs(t *testing.T) {
	if err := run("x", "out.nlt", nil); err == nil {
		t.Fatal("no inputs accepted")
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run("x", "out.nlt", []string{"/nonexistent/r0.txt"}); err == nil {
		t.Fatal("missing input accepted")
	}
}

func TestRunBadOutput(t *testing.T) {
	dir := t.TempDir()
	f0 := filepath.Join(dir, "r0.txt")
	if err := os.WriteFile(f0, []byte(rank0Dump), 0o644); err != nil {
		t.Fatal(err)
	}
	// rank0 sends to rank 1, which does not exist in a 1-rank trace.
	if err := run("x", filepath.Join(dir, "o.nlt"), []string{f0}); err == nil {
		t.Fatal("out-of-range peer accepted")
	}
}
