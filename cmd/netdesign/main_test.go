package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netloc/internal/core"
	"netloc/internal/design"
	"netloc/internal/trace"
)

func smallReq() design.Request {
	return design.Request{
		App:         "milc",
		Ranks:       16,
		Families:    []string{"torus", "fattree"},
		Constraints: design.Constraints{MaxCandidates: 1},
	}
}

// TestRunText renders the sheet header and one row per candidate.
func TestRunText(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, smallReq(), "", core.Options{Parallelism: 1}, false, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "design sheet: MILC @ 16 ranks") {
		t.Fatalf("missing sheet header:\n%s", out)
	}
	for _, col := range []string{"avg hops", "makespan s", "switches", "score"} {
		if !strings.Contains(out, col) {
			t.Errorf("missing column %q:\n%s", col, out)
		}
	}
	if !strings.Contains(out, "+consecutive") || !strings.Contains(out, "+greedy") {
		t.Errorf("missing default mapping rows:\n%s", out)
	}
}

// TestRunCSVAndJSON checks the alternate encodings parse as expected.
func TestRunCSVAndJSON(t *testing.T) {
	var csvBuf bytes.Buffer
	if err := run(&csvBuf, smallReq(), "", core.Options{Parallelism: 1}, true, false); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) < 3 { // header + 2 families x 2 mappings (>= 2 rows)
		t.Fatalf("csv too short:\n%s", csvBuf.String())
	}
	if !strings.HasPrefix(lines[0], "rank,candidate,nodes") {
		t.Fatalf("csv header %q", lines[0])
	}

	var jsonBuf bytes.Buffer
	if err := run(&jsonBuf, smallReq(), "", core.Options{Parallelism: 1}, false, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonBuf.String(), `"rows"`) {
		t.Fatalf("json output missing rows:\n%s", jsonBuf.String())
	}
}

// TestRunTraceFile designs for a trace read from disk.
func TestRunTraceFile(t *testing.T) {
	tr := &trace.Trace{
		Meta: trace.Meta{App: "fromfile", Ranks: 8, WallTime: 1},
		Events: []trace.Event{
			{Rank: 0, Op: trace.OpSend, Peer: 1, Root: -1, Bytes: 1 << 20, End: 10},
		},
	}
	path := filepath.Join(t.TempDir(), "run.nlt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteTrace(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()

	req := smallReq()
	req.App, req.Ranks = "", 0 // the trace supplies the workload
	var buf bytes.Buffer
	if err := run(&buf, req, path, core.Options{Parallelism: 1}, false, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "design sheet: fromfile @ 8 ranks") {
		t.Fatalf("trace-driven sheet header wrong:\n%s", buf.String())
	}
}

// TestRunErrors: invalid requests and missing files fail cleanly.
func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	req := smallReq()
	req.Ranks = -1
	if err := run(&buf, req, "", core.Options{}, false, false); err == nil {
		t.Error("negative ranks accepted")
	}
	if err := run(&buf, smallReq(), filepath.Join(t.TempDir(), "missing.nlt"), core.Options{}, false, false); err == nil {
		t.Error("missing trace file accepted")
	}
}
