// Command netdesign searches the topology configuration space for a
// workload and prints the ranked design sheet: the optimizer behind
// netlocd's /v1/design endpoints, runnable offline.
//
// Usage:
//
//	netdesign -app milc -ranks 512                  # full sweep, text sheet
//	netdesign -app LULESH -ranks 512 -radix 24      # constrain the switch radix
//	netdesign -trace run.nlt -families torus,mesh   # design for a recorded trace
//	netdesign -families slimfly,jellyfish,hyperx    # extreme-scale families only
//	netdesign -apps                                 # list accepted workloads
//
// Flags:
//
//	-app string        workload to design for (see -apps; default "milc")
//	-ranks int         node/rank count the network must provide (default 512)
//	-trace string      design for a binary .nlt trace instead of a named app
//	-families string   comma-separated topology families to sweep (default all)
//	-mappings string   comma-separated mapping strategies to sweep
//	-radix int         max switch radix (0 = default 48)
//	-switches int      max switch count, cost cap (0 = unbounded)
//	-links int         max link count, cost cap (0 = unbounded)
//	-candidates int    max configurations per family (0 = default 6)
//	-whops float       score weight of avg hops (default 1)
//	-wmakespan float   score weight of simulated makespan (default 1)
//	-wcost float       score weight of hardware cost (default 1)
//	-j int             worker goroutines (0 = GOMAXPROCS, 1 = sequential)
//	-csv               emit CSV instead of aligned text
//	-json              emit structured JSON (the service's encoding)
//	-trace-out file    write the search's stage spans as Chrome trace-event JSON
//	-apps              list accepted workload names
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"netloc/internal/core"
	"netloc/internal/design"
	"netloc/internal/obs"
	"netloc/internal/report"
	"netloc/internal/trace"
)

func main() {
	var (
		app        = flag.String("app", "milc", "workload to design for")
		ranks      = flag.Int("ranks", 512, "node/rank count the network must provide")
		traceIn    = flag.String("trace", "", "design for a binary .nlt trace instead of a named app")
		families   = flag.String("families", "", "comma-separated topology families to sweep")
		mappings   = flag.String("mappings", "", "comma-separated mapping strategies to sweep")
		radix      = flag.Int("radix", 0, "max switch radix (0 = default)")
		switches   = flag.Int("switches", 0, "max switch count (0 = unbounded)")
		links      = flag.Int("links", 0, "max link count (0 = unbounded)")
		candidates = flag.Int("candidates", 0, "max configurations per family (0 = default)")
		whops      = flag.Float64("whops", 1, "score weight of avg hops")
		wmakespan  = flag.Float64("wmakespan", 1, "score weight of simulated makespan")
		wcost      = flag.Float64("wcost", 1, "score weight of hardware cost")
		workers    = flag.Int("j", 0, "worker goroutines (0 = GOMAXPROCS, 1 = sequential)")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned text")
		asJSON     = flag.Bool("json", false, "emit structured JSON")
		traceOut   = flag.String("trace-out", "", "write the search's stage spans as Chrome trace-event JSON to this file")
		listApps   = flag.Bool("apps", false, "list accepted workload names")
	)
	flag.Parse()
	if *listApps {
		fmt.Println(strings.Join(design.AppNames(), "\n"))
		return
	}
	req := design.Request{
		App:   *app,
		Ranks: *ranks,
		Constraints: design.Constraints{
			MaxRadix:      *radix,
			MaxSwitches:   *switches,
			MaxLinks:      *links,
			MaxCandidates: *candidates,
		},
		Weights: design.Weights{Hops: *whops, Makespan: *wmakespan, Cost: *wcost},
	}
	if *families != "" {
		req.Families = strings.Split(*families, ",")
	}
	if *mappings != "" {
		req.Mappings = strings.Split(*mappings, ",")
	}
	opts := core.Options{Parallelism: *workers}
	var root *obs.Span
	if *traceOut != "" {
		root = obs.NewTracer(1).StartRun("design")
		opts.Span = root
	}
	err := run(os.Stdout, req, *traceIn, opts, *csv, *asJSON)
	if root != nil {
		root.End()
		if werr := obs.WriteChromeTraceFile(*traceOut, root.Data()); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "netdesign:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, req design.Request, traceIn string, opts core.Options, csv, asJSON bool) error {
	if traceIn != "" {
		f, err := os.Open(traceIn)
		if err != nil {
			return err
		}
		t, err := trace.ReadTrace(f)
		f.Close()
		if err != nil {
			return err
		}
		req.Trace = t
	}
	sheet, err := design.Search(req, opts)
	if err != nil {
		return err
	}
	if asJSON {
		return report.JSON(w, sheet)
	}
	return report.DesignSheet(w, sheet, csv)
}
