// Command topostat inspects the topology models: configuration selection,
// link inventories, and hop-distance histograms under uniform traffic.
//
// Usage:
//
//	topostat -size 216            # Table 2 row + stats for 216 ranks
//	topostat -kind torus -size 64 # one topology only
package main

import (
	"flag"
	"fmt"
	"os"

	"netloc/internal/topology"
)

func main() {
	var (
		size = flag.Int("size", 64, "rank count to configure for")
		kind = flag.String("kind", "", "restrict to torus|fattree|dragonfly")
	)
	flag.Parse()
	if err := run(*size, *kind); err != nil {
		fmt.Fprintln(os.Stderr, "topostat:", err)
		os.Exit(1)
	}
}

func run(size int, kind string) error {
	tor, ft, df, err := topology.Configs(size)
	if err != nil {
		return err
	}
	for _, cfg := range []topology.Config{tor, ft, df} {
		if kind != "" && cfg.Kind != kind {
			continue
		}
		if err := describe(cfg, size); err != nil {
			return err
		}
	}
	return nil
}

func describe(cfg topology.Config, ranks int) error {
	topo, err := cfg.Build()
	if err != nil {
		return err
	}
	classes := topo.LinkClasses()
	var term, local, global int
	for _, c := range classes {
		switch c {
		case topology.ClassTerminal:
			term++
		case topology.ClassLocal:
			local++
		case topology.ClassGlobal:
			global++
		}
	}
	fmt.Printf("%s %s: %d nodes (%d ranks mapped), %d vertices, %d links (%d terminal, %d local, %d global)\n",
		cfg.Kind, cfg, topo.Nodes(), ranks, topo.NumVertices(), len(topo.Links()), term, local, global)
	cost := topology.CostOf(topo)
	fmt.Printf("  cost: %d switches, %d links, %d ports (%.1f units)\n",
		cost.Switches, cost.Links, cost.Ports, cost.Units())

	// Hop histogram over the mapped rank pairs (consecutive mapping).
	hist := map[int]int{}
	maxHops, pairs := 0, 0
	var total float64
	for s := 0; s < ranks; s++ {
		for d := 0; d < ranks; d++ {
			if s == d {
				continue
			}
			h := topo.HopCount(s, d)
			hist[h]++
			pairs++
			total += float64(h)
			if h > maxHops {
				maxHops = h
			}
		}
	}
	fmt.Printf("  uniform pairs: avg hops %.3f, diameter (over mapped ranks) %d\n", total/float64(pairs), maxHops)
	for h := 0; h <= maxHops; h++ {
		if hist[h] == 0 {
			continue
		}
		fmt.Printf("  %2d hops: %7d pairs (%5.1f%%)\n", h, hist[h], 100*float64(hist[h])/float64(pairs))
	}
	return nil
}
