// Command topostat inspects the topology models: configuration selection,
// link inventories, and hop-distance histograms under uniform traffic.
// Beyond the paper's Table 2 trio it sizes and describes the
// extreme-scale families (Slim Fly, Jellyfish, HyperX).
//
// Usage:
//
//	topostat -size 216              # all families sized for 216 ranks
//	topostat -kind torus -size 64   # one family only
//	topostat -kind slimfly -size 64 # one of the extreme-scale families
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"netloc/internal/topology"
)

// sizers lists every family with its configuration selector, in the
// fixed output order: the paper trio first, then the extreme-scale
// families.
var sizers = []struct {
	kind string
	fn   func(int) (topology.Config, error)
}{
	{"torus", topology.TorusConfig},
	{"fattree", topology.FatTreeConfig},
	{"dragonfly", topology.DragonflyConfig},
	{"slimfly", topology.SlimFlyConfig},
	{"jellyfish", topology.JellyfishConfig},
	{"hyperx", topology.HyperXConfig},
}

func main() {
	var (
		size = flag.Int("size", 64, "rank count to configure for")
		kind = flag.String("kind", "", "restrict to one family (torus|fattree|dragonfly|slimfly|jellyfish|hyperx)")
	)
	flag.Parse()
	if err := run(os.Stdout, *size, *kind); err != nil {
		fmt.Fprintln(os.Stderr, "topostat:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, size int, kind string) error {
	// Size every requested family before describing any, so an invalid
	// size fails fast instead of after an expensive histogram. On the
	// all-families listing an extreme-scale sizer with no valid
	// configuration is noted and skipped; a paper-trio sizer error, or
	// any error on an explicitly requested family, aborts the run.
	type block struct {
		kind string
		cfg  topology.Config
		skip error
	}
	var blocks []block
	for _, s := range sizers {
		if kind != "" && s.kind != kind {
			continue
		}
		cfg, err := s.fn(size)
		if err != nil {
			if kind == "" && s.kind != "torus" && s.kind != "fattree" && s.kind != "dragonfly" {
				blocks = append(blocks, block{kind: s.kind, skip: err})
				continue
			}
			return err
		}
		blocks = append(blocks, block{kind: s.kind, cfg: cfg})
	}
	if len(blocks) == 0 {
		kinds := make([]string, len(sizers))
		for i, s := range sizers {
			kinds[i] = s.kind
		}
		return fmt.Errorf("unknown kind %q (known: %s)", kind, strings.Join(kinds, ", "))
	}
	for _, b := range blocks {
		if b.skip != nil {
			fmt.Fprintf(w, "%s: no configuration for %d ranks (%v)\n", b.kind, size, b.skip)
			continue
		}
		if err := describe(w, b.cfg, size); err != nil {
			return err
		}
	}
	return nil
}

func describe(w io.Writer, cfg topology.Config, ranks int) error {
	topo, err := cfg.Build()
	if err != nil {
		return err
	}
	classes := topo.LinkClasses()
	var term, local, global int
	for _, c := range classes {
		switch c {
		case topology.ClassTerminal:
			term++
		case topology.ClassLocal:
			local++
		case topology.ClassGlobal:
			global++
		}
	}
	fmt.Fprintf(w, "%s %s: %d nodes (%d ranks mapped), %d vertices, %d links (%d terminal, %d local, %d global)\n",
		cfg.Kind, cfg, topo.Nodes(), ranks, topo.NumVertices(), len(topo.Links()), term, local, global)
	cost := topology.CostOf(topo)
	fmt.Fprintf(w, "  cost: %d switches, %d links, %d ports (%.1f units)\n",
		cost.Switches, cost.Links, cost.Ports, cost.Units())

	// Hop histogram over the mapped rank pairs (consecutive mapping).
	hist := map[int]int{}
	maxHops, pairs := 0, 0
	var total float64
	for s := 0; s < ranks; s++ {
		for d := 0; d < ranks; d++ {
			if s == d {
				continue
			}
			h := topo.HopCount(s, d)
			hist[h]++
			pairs++
			total += float64(h)
			if h > maxHops {
				maxHops = h
			}
		}
	}
	fmt.Fprintf(w, "  uniform pairs: avg hops %.3f, diameter (over mapped ranks) %d\n", total/float64(pairs), maxHops)
	for h := 0; h <= maxHops; h++ {
		if hist[h] == 0 {
			continue
		}
		fmt.Fprintf(w, "  %2d hops: %7d pairs (%5.1f%%)\n", h, hist[h], 100*float64(hist[h])/float64(pairs))
	}
	return nil
}
