package main

import (
	"strings"
	"testing"
)

func TestRunAllKinds(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 27, ""); err != nil {
		t.Fatal(err)
	}
	// The all-families listing covers the paper trio and the
	// extreme-scale families in fixed order.
	out := b.String()
	last := -1
	for _, s := range sizers {
		i := strings.Index(out, s.kind+" (")
		if i < 0 {
			t.Fatalf("family %s missing from the listing:\n%s", s.kind, out)
		}
		if i < last {
			t.Fatalf("family %s out of order in the listing", s.kind)
		}
		last = i
	}
}

func TestRunSingleKind(t *testing.T) {
	for _, kind := range []string{"torus", "fattree", "dragonfly", "slimfly", "jellyfish", "hyperx"} {
		var b strings.Builder
		if err := run(&b, 64, kind); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !strings.HasPrefix(b.String(), kind+" (") {
			t.Fatalf("%s: unexpected output:\n%s", kind, b.String())
		}
	}
}

// TestExtremeScaleGoldenBlocks pins the header and cost lines of each
// extreme-scale family at 64 ranks. These are determinism regressions:
// the Slim Fly MMS construction, the seeded Jellyfish wiring, and the
// HyperX lattice must keep producing byte-identical inventories.
func TestExtremeScaleGoldenBlocks(t *testing.T) {
	golden := map[string][]string{
		"slimfly": {
			"slimfly (5,2): 100 nodes (64 ranks mapped), 150 vertices, 275 links (100 terminal, 50 local, 125 global)",
			"  cost: 50 switches, 275 links, 450 ports (141.2 units)",
		},
		"jellyfish": {
			"jellyfish (16,8,4;1): 64 nodes (64 ranks mapped), 80 vertices, 128 links (64 terminal, 0 local, 64 global)",
			"  cost: 16 switches, 128 links, 192 ports (57.6 units)",
		},
		"hyperx": {
			"hyperx (4,4,1;4): 64 nodes (64 ranks mapped), 80 vertices, 112 links (64 terminal, 48 local, 0 global)",
			"  cost: 16 switches, 112 links, 160 ports (52.0 units)",
		},
	}
	for kind, want := range golden {
		var b strings.Builder
		if err := run(&b, 64, kind); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		lines := strings.Split(b.String(), "\n")
		if len(lines) < len(want) {
			t.Fatalf("%s: output too short:\n%s", kind, b.String())
		}
		for i, w := range want {
			if lines[i] != w {
				t.Errorf("%s line %d:\n got %q\nwant %q", kind, i, lines[i], w)
			}
		}
	}
}

func TestRunUnknownKind(t *testing.T) {
	var b strings.Builder
	err := run(&b, 64, "hypercube")
	if err == nil || !strings.Contains(err.Error(), "unknown kind") {
		t.Fatalf("err = %v, want unknown-kind listing", err)
	}
}

func TestRunBadSize(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 0, ""); err == nil {
		t.Fatal("zero size accepted")
	}
	if err := run(&b, 1<<20, ""); err == nil {
		t.Fatal("oversized config accepted")
	}
}
