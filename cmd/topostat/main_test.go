package main

import "testing"

func TestRunAllKinds(t *testing.T) {
	if err := run(27, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleKind(t *testing.T) {
	for _, kind := range []string{"torus", "fattree", "dragonfly"} {
		if err := run(64, kind); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
}

func TestRunBadSize(t *testing.T) {
	if err := run(0, ""); err == nil {
		t.Fatal("zero size accepted")
	}
	if err := run(1<<20, ""); err == nil {
		t.Fatal("oversized config accepted")
	}
}
