// Command commviz renders the communication matrix of a workload (or a
// trace file) as a heat map — the density-plot view the paper's metrics
// replace with objective numbers. ASCII goes to stdout; -pgm writes a
// grayscale image, one pixel per rank pair.
//
// Usage:
//
//	commviz -app LULESH -ranks 64
//	commviz -app "CESAR MOCFE" -ranks 256 -wire
//	commviz -trace run.nlt -pgm out.pgm
package main

import (
	"flag"
	"fmt"
	"os"

	"netloc/internal/comm"
	"netloc/internal/report"
	"netloc/internal/trace"
	"netloc/internal/workloads"
)

func main() {
	var (
		app     = flag.String("app", "", "workload name")
		ranks   = flag.Int("ranks", 0, "rank count")
		traceIn = flag.String("trace", "", "binary trace file instead of a workload")
		wire    = flag.Bool("wire", false, "show the wire matrix (expanded collectives) instead of p2p only")
		pgm     = flag.String("pgm", "", "write a PGM image to this path instead of ASCII")
		cells   = flag.Int("cells", 64, "ASCII grid resolution")
	)
	flag.Parse()
	if err := run(*app, *ranks, *traceIn, *wire, *pgm, *cells); err != nil {
		fmt.Fprintln(os.Stderr, "commviz:", err)
		os.Exit(1)
	}
}

func run(app string, ranks int, traceIn string, wire bool, pgm string, cells int) error {
	var t *trace.Trace
	switch {
	case traceIn != "":
		f, err := os.Open(traceIn)
		if err != nil {
			return err
		}
		defer f.Close()
		if t, err = trace.ReadTrace(f); err != nil {
			return err
		}
	case app != "" && ranks != 0:
		a, err := workloads.Lookup(app)
		if err != nil {
			return err
		}
		if t, err = a.Generate(ranks); err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -app and -ranks, or -trace")
	}

	acc, err := comm.Accumulate(t, comm.AccumulateOptions{})
	if err != nil {
		return err
	}
	m := acc.P2P
	if wire {
		m = acc.Wire
	}
	if pgm != "" {
		f, err := os.Create(pgm)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := report.HeatmapPGM(f, m); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%dx%d)\n", pgm, m.Ranks(), m.Ranks())
		return nil
	}
	return report.HeatmapASCII(os.Stdout, m, cells)
}
