package main

import (
	"os"
	"path/filepath"
	"testing"

	"netloc/internal/trace"
	"netloc/internal/workloads"
)

func TestRunRequiresInput(t *testing.T) {
	if err := run("", 0, "", false, "", 32); err == nil {
		t.Fatal("missing inputs accepted")
	}
}

func TestRunASCIIFromWorkload(t *testing.T) {
	if err := run("LULESH", 64, "", false, "", 16); err != nil {
		t.Fatal(err)
	}
}

func TestRunWireMatrix(t *testing.T) {
	if err := run("EXMATEX CMC 2D", 64, "", true, "", 16); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownApp(t *testing.T) {
	if err := run("NoSuchApp", 8, "", false, "", 16); err == nil {
		t.Fatal("unknown app accepted")
	}
	if err := run("LULESH", 5, "", false, "", 16); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestRunPGMOutput(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "m.pgm")
	if err := run("MiniFE", 18, "", false, out, 16); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(data[:3]) != "P5\n" {
		t.Fatalf("not a PGM: %q", data[:3])
	}
}

func TestRunFromTraceFile(t *testing.T) {
	app, err := workloads.Lookup("Crystal Router")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := app.Generate(10)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "cr.nlt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteTrace(f, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := run("", 0, path, false, "", 16); err != nil {
		t.Fatal(err)
	}
	if err := run("", 0, filepath.Join(dir, "missing.nlt"), false, "", 16); err == nil {
		t.Fatal("missing trace file accepted")
	}
}
