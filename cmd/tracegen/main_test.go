package main

import (
	"os"
	"path/filepath"
	"testing"

	"netloc/internal/trace"
)

func TestRunList(t *testing.T) {
	if err := run("", 0, "", false, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunRequiresAppAndRanks(t *testing.T) {
	if err := run("", 0, "", false, false); err == nil {
		t.Fatal("missing args accepted")
	}
	if err := run("LULESH", 0, "", false, false); err == nil {
		t.Fatal("missing ranks accepted")
	}
}

func TestRunUnknownApp(t *testing.T) {
	if err := run("NoSuchApp", 8, "", false, false); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestRunUnknownScale(t *testing.T) {
	if err := run("LULESH", 7, "", false, false); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestRunWritesBinaryTrace(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "l.nlt")
	if err := run("LULESH", 64, out, false, false); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Meta.App != "LULESH" || tr.Meta.Ranks != 64 {
		t.Fatalf("meta = %+v", tr.Meta)
	}
}

func TestRunWritesTextTrace(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "m.txt")
	if err := run("MiniFE", 18, out, true, false); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadText(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Meta.Ranks != 18 {
		t.Fatalf("meta = %+v", tr.Meta)
	}
}

func TestRunBadOutputPath(t *testing.T) {
	if err := run("LULESH", 64, "/nonexistent-dir/x.nlt", false, false); err == nil {
		t.Fatal("unwritable path accepted")
	}
}
