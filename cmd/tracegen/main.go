// Command tracegen writes the synthetic dumpi-like traces of the workload
// suite to disk, in binary (.nlt) or text form.
//
// Usage:
//
//	tracegen -app LULESH -ranks 64 -o lulesh64.nlt
//	tracegen -app "Boxlib CNS" -ranks 256 -text -o cns256.txt
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"netloc/internal/trace"
	"netloc/internal/workloads"
)

func main() {
	var (
		app   = flag.String("app", "", "workload name (see -list)")
		ranks = flag.Int("ranks", 0, "rank count (one of the app's scales)")
		out   = flag.String("o", "", "output file (default <app>-<ranks>.nlt)")
		text  = flag.Bool("text", false, "write the text format instead of binary")
		list  = flag.Bool("list", false, "list available workloads and scales")
	)
	flag.Parse()
	if err := run(*app, *ranks, *out, *text, *list); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(app string, ranks int, out string, text, list bool) error {
	if list {
		for _, a := range workloads.All() {
			counts := make([]string, 0, len(a.Scales))
			for _, r := range a.RankCounts() {
				counts = append(counts, fmt.Sprint(r))
			}
			fmt.Printf("%-20s ranks: %s\n", a.Name, strings.Join(counts, ", "))
		}
		return nil
	}
	if app == "" || ranks == 0 {
		return fmt.Errorf("need -app and -ranks (or -list)")
	}
	a, err := workloads.Lookup(app)
	if err != nil {
		return err
	}
	t, err := a.Generate(ranks)
	if err != nil {
		return err
	}
	if out == "" {
		ext := ".nlt"
		if text {
			ext = ".txt"
		}
		out = fmt.Sprintf("%s-%d%s", strings.ReplaceAll(app, " ", "_"), ranks, ext)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if text {
		err = trace.WriteText(f, t)
	} else {
		err = trace.WriteTrace(f, t)
	}
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d events, %d ranks, %.3gs wall time\n",
		out, len(t.Events), t.Meta.Ranks, t.Meta.WallTime)
	return nil
}
