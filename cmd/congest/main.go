// Command congest runs the temporal congestion study offline: each
// requested workload is replayed through internal/congest's event-driven
// simulator on one sized topology per requested family (default the
// paper's Table 2 torus, fat tree, and dragonfly) under the selected
// routing policies, with an optional latency-tolerance sweep on the
// baseline rows. It is the CLI twin of netlocd's POST /v1/congestion.
//
// Usage:
//
//	congest                                       # default grid, all policies
//	congest -workloads LULESH/64,BigFFT/100       # pick the workload cells
//	congest -families slimfly,hyperx              # beyond the paper's trio
//	congest -policies minimal,ugal -growth 10     # policies and sweep threshold
//	congest -growth -1                            # disable the tolerance sweep
//	congest -list                                 # list workloads and policies
//
// Flags:
//
//	-workloads string  comma-separated App/ranks cells (default the study grid)
//	-families string   comma-separated topology families (default torus,fattree,dragonfly)
//	-policies string   comma-separated routing policies (default all)
//	-growth float      tolerance sweep threshold in percent (0 = default, <0 = off)
//	-maxranks int      cap the grid at this rank count (0 = no cap)
//	-j int             worker goroutines (0 = GOMAXPROCS, 1 = sequential)
//	-csv               emit CSV instead of aligned text
//	-json              emit structured JSON (the service's encoding)
//	-trace-out file    write the run's stage spans as Chrome trace-event JSON
//	-list              list default workloads and known policies
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"netloc/internal/congest"
	"netloc/internal/core"
	"netloc/internal/obs"
	"netloc/internal/report"
)

func main() {
	var (
		workloads = flag.String("workloads", "", "comma-separated App/ranks cells (default the study grid)")
		families  = flag.String("families", "", "comma-separated topology families (default torus,fattree,dragonfly)")
		policies  = flag.String("policies", "", "comma-separated routing policies (default all)")
		growth    = flag.Float64("growth", 0, "tolerance sweep threshold in percent (0 = default, <0 = off)")
		maxRanks  = flag.Int("maxranks", 0, "cap the grid at this rank count (0 = no cap)")
		workers   = flag.Int("j", 0, "worker goroutines (0 = GOMAXPROCS, 1 = sequential)")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned text")
		asJSON    = flag.Bool("json", false, "emit structured JSON")
		traceOut  = flag.String("trace-out", "", "write the run's stage spans as Chrome trace-event JSON to this file")
		list      = flag.Bool("list", false, "list default workloads and known policies")
	)
	flag.Parse()
	if *list {
		fmt.Println("workloads (default grid):")
		for _, ref := range core.CongestionWorkloads {
			fmt.Printf("  %s/%d\n", ref.App, ref.Ranks)
		}
		fmt.Println("families:")
		for _, fam := range core.AnalysisKinds() {
			fmt.Printf("  %s\n", fam)
		}
		fmt.Println("policies:")
		for _, p := range congest.Policies() {
			fmt.Printf("  %s\n", p)
		}
		return
	}
	refs, err := parseWorkloads(*workloads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "congest:", err)
		os.Exit(1)
	}
	var fams, pols []string
	if *families != "" {
		fams = strings.Split(*families, ",")
	}
	if *policies != "" {
		pols = strings.Split(*policies, ",")
	}
	opts := core.Options{Parallelism: *workers, MaxRanks: *maxRanks}
	var root *obs.Span
	if *traceOut != "" {
		root = obs.NewTracer(1).StartRun("congestion")
		opts.Span = root
	}
	err = run(os.Stdout, refs, fams, pols, *growth, opts, *csv, *asJSON)
	if root != nil {
		root.End()
		if werr := obs.WriteChromeTraceFile(*traceOut, root.Data()); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "congest:", err)
		os.Exit(1)
	}
}

// parseWorkloads reads "App/ranks,App/ranks" cells; an empty string
// selects the default study grid.
func parseWorkloads(s string) ([]core.WorkloadRef, error) {
	if s == "" {
		return nil, nil
	}
	var refs []core.WorkloadRef
	for _, cell := range strings.Split(s, ",") {
		i := strings.LastIndex(cell, "/")
		if i < 0 {
			return nil, fmt.Errorf("bad workload %q (want App/ranks, e.g. LULESH/64)", cell)
		}
		ranks, err := strconv.Atoi(cell[i+1:])
		if err != nil || ranks < 1 {
			return nil, fmt.Errorf("bad rank count in %q (want App/ranks, e.g. LULESH/64)", cell)
		}
		refs = append(refs, core.WorkloadRef{App: cell[:i], Ranks: ranks})
	}
	return refs, nil
}

func run(w io.Writer, refs []core.WorkloadRef, families, policies []string, growth float64, opts core.Options, csv, asJSON bool) error {
	rows, err := core.CongestionTable(refs, families, policies, growth, opts)
	if err != nil {
		return err
	}
	if asJSON {
		return report.JSON(w, map[string]any{"experiment": "congestion", "rows": rows})
	}
	return report.Congestion(w, rows, csv)
}
