// Command netlocd runs the analysis service: a long-running HTTP JSON
// server exposing the study's experiment grid (tables, figures, claims,
// scorecard), per-workload analysis, topology inspection, and
// uploaded-trace analysis, with result caching, request deduplication,
// bounded compute concurrency, and /metrics observability. See
// internal/service for the endpoint reference.
//
// Usage:
//
//	netlocd [flags]
//
// Flags:
//
//	-addr string            listen address (default ":8537")
//	-cache int              result-cache entries (default 256)
//	-workers int            total compute-goroutine budget, shared between
//	                        concurrent requests and each request's internal
//	                        parallelism (default GOMAXPROCS)
//	-coverage float         traffic-coverage threshold (default 0.9)
//	-maxranks int           cap the configuration grid at this rank count (0 = no cap)
//	-runtime-sample dur     runtime telemetry sampling interval for the
//	                        netloc_runtime_* series (default 10s, 0 = off)
//	-slowrun dur            slow-run threshold: computed runs slower than this
//	                        bump netloc_slow_runs_total{endpoint} and log their
//	                        per-stage summary (default 30s, 0 = off)
//	-debug                  also serve net/http/pprof profiles under /debug/pprof/
//
// Requests are logged to stderr as structured slog lines carrying the
// request ID the service stamps into the X-Request-ID response header;
// each completed computation additionally logs one canonical
// "run_complete" event (endpoint, dims, cache state, queue wait,
// duration). Per-run stage traces are served at /v1/debug/runs, and
// /v1/debug/runs/{id}/trace exports one run as Chrome trace-event JSON
// for Perfetto / chrome://tracing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"netloc/internal/core"
	"netloc/internal/service"
)

// run listens on addr and serves the analysis service until ctx is
// cancelled, then shuts down gracefully. With debug set, the Go pprof
// profiling endpoints are mounted under /debug/pprof/ next to the
// service routes. ready (if non-nil) is called with the bound address
// and the effective (defaults-applied) options once the listener is up.
func run(ctx context.Context, addr string, opts service.Options, debug bool, ready func(addr string, eff service.Options)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	svc := service.New(opts)
	defer svc.Close()
	var handler http.Handler = svc.Handler()
	if debug {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
	}
	srv := &http.Server{Handler: handler}
	if ready != nil {
		ready(ln.Addr().String(), svc.Options())
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	case err := <-errc:
		return err
	}
}

func main() {
	var (
		addr          = flag.String("addr", ":8537", "listen address")
		cache         = flag.Int("cache", 0, "result-cache entries (default 256)")
		workers       = flag.Int("workers", 0, "total compute-goroutine budget across and within requests (default GOMAXPROCS)")
		coverage      = flag.Float64("coverage", 0, "traffic-coverage threshold (default 0.9)")
		maxRanks      = flag.Int("maxranks", 0, "cap the configuration grid at this rank count (0 = no cap)")
		runtimeSample = flag.Duration("runtime-sample", 10*time.Second, "runtime telemetry sampling interval (0 = off)")
		slowRun       = flag.Duration("slowrun", 30*time.Second, "slow-run threshold for netloc_slow_runs_total and slow_run logs (0 = off)")
		debug         = flag.Bool("debug", false, "also serve net/http/pprof profiles under /debug/pprof/")
	)
	flag.Parse()

	opts := service.Options{
		CacheEntries:          *cache,
		Workers:               *workers,
		Analysis:              core.Options{Coverage: *coverage, MaxRanks: *maxRanks},
		Log:                   slog.New(slog.NewTextHandler(os.Stderr, nil)),
		RuntimeSampleInterval: *runtimeSample,
		SlowRunThreshold:      *slowRun,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := run(ctx, *addr, opts, *debug, func(bound string, eff service.Options) {
		log.Printf("netlocd: serving on %s (cache=%d workers=%d)",
			bound, eff.CacheEntries, eff.Workers)
	})
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "netlocd:", err)
		os.Exit(1)
	}
}
