package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"netloc/internal/core"
	"netloc/internal/service"
)

// TestRunServesAndShutsDown boots the daemon on an ephemeral port, hits
// the liveness and experiment endpoints, and verifies cancellation shuts
// the server down cleanly.
func TestRunServesAndShutsDown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	bound := make(chan string, 1)
	done := make(chan error, 1)
	opts := service.Options{Analysis: core.Options{MaxRanks: 64}}
	go func() {
		done <- run(ctx, "127.0.0.1:0", opts, true, func(addr string, eff service.Options) {
			if eff.CacheEntries == 0 || eff.Workers == 0 {
				t.Errorf("ready called with unresolved defaults: %+v", eff)
			}
			bound <- addr
		})
	}()

	var addr string
	select {
	case addr = <-bound:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never came up")
	}

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		return string(body)
	}
	if body := get("/healthz"); !strings.Contains(body, `"ok"`) {
		t.Errorf("healthz body: %s", body)
	}
	if body := get("/v1/experiments/table2?maxranks=64"); !strings.Contains(body, `"table2"`) {
		t.Errorf("table2 body: %s", body)
	}
	// debug=true mounts the pprof index next to the service routes.
	if body := get("/debug/pprof/"); !strings.Contains(body, "pprof") {
		t.Errorf("pprof index body: %.80s", body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server never shut down")
	}
}

func TestRunBadAddress(t *testing.T) {
	if err := run(context.Background(), "256.0.0.1:bad", service.Options{}, false, nil); err == nil {
		t.Fatal("bad address accepted")
	}
}
