package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netloc/internal/core"
	"netloc/internal/harness"
	"netloc/internal/mpi"
	"netloc/internal/trace"
	"netloc/internal/workloads"
)

func TestRunExperiment(t *testing.T) {
	if err := run("", harness.Params{Experiment: "table2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("", harness.Params{Experiment: "nope"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunTraceFile(t *testing.T) {
	app, err := workloads.Lookup("MiniFE")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := app.Generate(18)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "m.nlt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteTrace(f, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := run(path, harness.Params{Options: core.Options{}}); err != nil {
		t.Fatal(err)
	}
	if err := run(filepath.Join(dir, "missing.nlt"), harness.Params{}); err == nil {
		t.Fatal("missing trace accepted")
	}
}

func TestParseStrategy(t *testing.T) {
	for in, want := range map[string]mpi.Strategy{
		"": mpi.StrategyDirect, "direct": mpi.StrategyDirect,
		"tree": mpi.StrategyTree, "ring": mpi.StrategyRing,
	} {
		got, err := mpi.ParseStrategy(in)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := mpi.ParseStrategy("bogus"); err == nil {
		t.Fatal("bogus strategy accepted")
	}
}

// TestDocCommentListsAllFlags guards the usage header at the top of this
// file against flag drift: every registered flag must appear in the doc
// comment. (The -strategy flag was missing once already.)
func TestDocCommentListsAllFlags(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	header := string(src[:bytes.Index(src, []byte("package main"))])
	for _, name := range []string{
		"-exp", "-trace", "-all", "-app", "-ranks", "-rank", "-minranks",
		"-maxranks", "-j", "-coverage", "-strategy", "-csv", "-json",
		"-runtime", "-v", "-list",
	} {
		if !strings.Contains(header, name+" ") && !strings.Contains(header, name+"\n") {
			t.Errorf("doc comment missing flag %s", name)
		}
	}
}
