package main

import (
	"os"
	"path/filepath"
	"testing"

	"netloc/internal/core"
	"netloc/internal/harness"
	"netloc/internal/mpi"
	"netloc/internal/trace"
	"netloc/internal/workloads"
)

func TestRunExperiment(t *testing.T) {
	if err := run("", harness.Params{Experiment: "table2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("", harness.Params{Experiment: "nope"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunTraceFile(t *testing.T) {
	app, err := workloads.Lookup("MiniFE")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := app.Generate(18)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "m.nlt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteTrace(f, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := run(path, harness.Params{Options: core.Options{}}); err != nil {
		t.Fatal(err)
	}
	if err := run(filepath.Join(dir, "missing.nlt"), harness.Params{}); err == nil {
		t.Fatal("missing trace accepted")
	}
}

func TestParseStrategy(t *testing.T) {
	for in, want := range map[string]mpi.Strategy{
		"": mpi.StrategyDirect, "direct": mpi.StrategyDirect,
		"tree": mpi.StrategyTree, "ring": mpi.StrategyRing,
	} {
		got, err := parseStrategy(in)
		if err != nil || got != want {
			t.Errorf("parseStrategy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseStrategy("bogus"); err == nil {
		t.Fatal("bogus strategy accepted")
	}
}
