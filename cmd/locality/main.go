// Command locality regenerates the tables and figures of "On Network
// Locality in MPI-Based HPC Applications" (Zahn & Fröning, ICPP 2020) from
// the synthetic workload suite, or analyzes a trace file.
//
// Usage:
//
//	locality -exp table1|table2|table3|table4|fig1|fig3|fig4|fig5|sim|congestion|score|claims [flags]
//	locality -trace file.nlt [flags]
//	locality -all dir [flags]
//	locality -list
//
// Flags:
//
//	-exp string       experiment to run (default "table3")
//	-trace string     analyze a binary trace file instead of an experiment
//	-all string       run every experiment, writing one file each into this directory
//	-app string       workload for fig1/fig4 (default "LULESH" / "AMG")
//	-ranks int        rank count for fig1 (default 64)
//	-rank int         source rank for fig1 (default 0)
//	-minranks int     smallest configuration included in fig5 (default 512)
//	-maxranks int     cap the configuration grid at this rank count (0 = no cap)
//	-j int            worker goroutines for the analysis (0 = GOMAXPROCS, 1 = sequential)
//	-coverage float   traffic-coverage threshold (default 0.9)
//	-strategy string  collective expansion: direct (the paper's), tree, or ring
//	-csv              emit CSV instead of aligned text
//	-json             emit structured JSON (the same encoding the service serves)
//	-runtime          include the stage-span runtime block in -json output
//	-trace-out file   write the run's stage spans as Chrome trace-event JSON
//	                  (open in Perfetto or chrome://tracing)
//	-v                print a per-stage timing summary to stderr after the run
//	-list             list experiments
package main

import (
	"flag"
	"fmt"
	"os"

	"netloc/internal/core"
	"netloc/internal/harness"
	"netloc/internal/mpi"
	"netloc/internal/obs"
	"netloc/internal/trace"
)

func main() {
	var (
		exp      = flag.String("exp", "table3", "experiment to run (see -list)")
		traceIn  = flag.String("trace", "", "analyze a binary trace file instead of running an experiment")
		app      = flag.String("app", "", "workload name for fig1/fig4")
		ranks    = flag.Int("ranks", 0, "rank count for fig1")
		rank     = flag.Int("rank", 0, "source rank for fig1")
		minRanks = flag.Int("minranks", 0, "smallest configuration included in fig5")
		maxRanks = flag.Int("maxranks", 0, "cap the configuration grid at this rank count (0 = no cap)")
		par      = flag.Int("j", 0, "worker goroutines for the analysis (0 = GOMAXPROCS, 1 = sequential)")
		coverage = flag.Float64("coverage", 0, "traffic-coverage threshold (default 0.9)")
		csv      = flag.Bool("csv", false, "emit CSV")
		jsonOut  = flag.Bool("json", false, "emit structured JSON")
		runtime  = flag.Bool("runtime", false, "include the stage-span runtime block in -json output")
		traceOut = flag.String("trace-out", "", "write the run's stage spans as Chrome trace-event JSON to this file")
		verbose  = flag.Bool("v", false, "print a per-stage timing summary to stderr after the run")
		list     = flag.Bool("list", false, "list experiments")
		outdir   = flag.String("all", "", "run every experiment, writing one file per experiment into this directory")
		strategy = flag.String("strategy", "direct", "collective expansion: direct (the paper's), tree, or ring")
	)
	flag.Parse()

	if *list {
		for _, name := range harness.Experiments() {
			desc, _ := harness.Describe(name)
			fmt.Printf("%-8s %s\n", name, desc)
		}
		return
	}

	strat, err := mpi.ParseStrategy(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "locality:", err)
		os.Exit(1)
	}
	params := harness.Params{
		Experiment: *exp,
		App:        *app,
		Ranks:      *ranks,
		Rank:       *rank,
		MinRanks:   *minRanks,
		CSV:        *csv,
		JSON:       *jsonOut,
		Runtime:    *runtime,
		Options:    core.Options{Coverage: *coverage, Strategy: strat, MaxRanks: *maxRanks, Parallelism: *par},
	}
	var root *obs.Span
	if *verbose || *traceOut != "" {
		label := params.Experiment
		if *traceIn != "" {
			label = "trace"
		} else if *outdir != "" {
			label = "all"
		}
		root = obs.NewTracer(1).StartRun(label)
		params.Options.Span = root
	}
	err = runTop(*traceIn, *outdir, params)
	if root != nil {
		root.End()
		if *verbose {
			obs.WriteSummary(os.Stderr, root.Data())
		}
		if *traceOut != "" {
			if werr := obs.WriteChromeTraceFile(*traceOut, root.Data()); werr != nil && err == nil {
				err = werr
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "locality:", err)
		os.Exit(1)
	}
}

// runTop dispatches between the sweep (-all) and single-run modes.
func runTop(traceIn, outdir string, params harness.Params) error {
	if outdir != "" {
		return harness.RunAll(outdir, params)
	}
	return run(traceIn, params)
}

func run(traceIn string, params harness.Params) error {
	if traceIn != "" {
		f, err := os.Open(traceIn)
		if err != nil {
			return err
		}
		defer f.Close()
		t, err := trace.ReadTrace(f)
		if err != nil {
			return err
		}
		return harness.AnalyzeTraceFile(os.Stdout, t, params)
	}
	return harness.Run(os.Stdout, params)
}
