module netloc

go 1.22
