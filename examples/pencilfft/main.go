// Pencilfft builds the communication pattern the real BigFFT uses — a 2D
// pencil decomposition whose transposes are all-to-alls on *row and column
// sub-communicators* rather than on MPI_COMM_WORLD — using the cartesian
// communicator support (MPI_Cart_create / MPI_Cart_sub) whose absence from
// dumpi traces forced the paper to exclude such workloads. It then
// compares the locality of pencil transposes against the global all-to-all
// the paper's BigFFT trace performs.
package main

import (
	"fmt"
	"log"

	"netloc/internal/comm"
	"netloc/internal/mapping"
	"netloc/internal/mpi"
	"netloc/internal/netmodel"
	"netloc/internal/topology"
	"netloc/internal/trace"
)

const (
	gridSide   = 10 // 10x10 pencil grid = 100 ranks
	ranks      = gridSide * gridSide
	chunk      = 1 << 16 // bytes each rank contributes per transpose
	transposes = 4
)

func main() {
	world, err := mpi.World(ranks)
	if err != nil {
		log.Fatal(err)
	}
	cart, err := mpi.CartCreate(world, []int{gridSide, gridSide}, []bool{false, false})
	if err != nil {
		log.Fatal(err)
	}

	// Pencil FFT: every rank transposes within its row communicator,
	// then within its column communicator. Expand the allgather-pattern
	// transposes on those sub-communicators into wire messages.
	pencil, err := comm.NewMatrix(ranks, 0)
	if err != nil {
		log.Fatal(err)
	}
	var buf []mpi.Message
	for r := 0; r < ranks; r++ {
		for _, keep := range [][]bool{{false, true}, {true, false}} {
			sub, err := cart.Sub(r, keep)
			if err != nil {
				log.Fatal(err)
			}
			ev := trace.Event{Rank: r, Op: trace.OpAllgatherv, Peer: -1, Root: -1, Bytes: chunk * transposes}
			buf, err = mpi.ExpandEvent(buf[:0], ev, world, mpi.ExpandOptions{Comm: sub.Comm()})
			if err != nil {
				log.Fatal(err)
			}
			for _, m := range buf {
				if err := pencil.Add(m.Src, m.Dst, m.Bytes); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	// Reference: the paper's BigFFT pattern — the same volume as one
	// global all-to-all on MPI_COMM_WORLD.
	global, err := comm.NewMatrix(ranks, 0)
	if err != nil {
		log.Fatal(err)
	}
	for r := 0; r < ranks; r++ {
		ev := trace.Event{Rank: r, Op: trace.OpAllgatherv, Peer: -1, Root: -1, Bytes: chunk * transposes * 2 / 10}
		buf, err = mpi.ExpandEvent(buf[:0], ev, world, mpi.ExpandOptions{})
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range buf {
			if err := global.Add(m.Src, m.Dst, m.Bytes); err != nil {
				log.Fatal(err)
			}
		}
	}

	cfg, err := topology.TorusConfig(ranks)
	if err != nil {
		log.Fatal(err)
	}
	topo, err := cfg.Build()
	if err != nil {
		log.Fatal(err)
	}
	mp, err := mapping.Consecutive(ranks, topo.Nodes())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("2D pencil FFT vs global all-to-all, %d ranks on torus %s\n\n", ranks, cfg)
	for _, c := range []struct {
		name string
		m    *comm.Matrix
	}{
		{"pencil (row+col sub-comms)", pencil},
		{"global all-to-all", global},
	} {
		res, err := netmodel.Run(c.m, topo, mp, netmodel.Options{WallTime: 1, TrackLinks: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s pairs %5d  volume %6.1f MB  avg hops %.2f  packet hops %.3g\n",
			c.name, c.m.Pairs(), float64(c.m.TotalBytes())/1e6, res.AvgHops, float64(res.PacketHops))
	}
	fmt.Println("\nRow transposes stay within rank-ID distance", gridSide-1,
		"and column transposes hit fixed strides of", gridSide, "—")
	fmt.Println("structure a mapper can exploit, unlike the global transpose that")
	fmt.Println("touches every pair. This is why communicator geometry matters and")
	fmt.Println("why the paper had to exclude cart-communicator traces.")
}
