// Simulate contrasts the paper's static network model with the temporal
// flow-level simulator (the paper's stated future work on dynamic
// effects) and with the energy model from its discussion section: for one
// workload on all three topologies it reports static packet hops and
// utilization next to simulated latency, queueing, and the energy wasted
// by idle links.
package main

import (
	"fmt"
	"log"

	"netloc/internal/comm"
	"netloc/internal/energy"
	"netloc/internal/mapping"
	"netloc/internal/netmodel"
	"netloc/internal/simnet"
	"netloc/internal/topology"
	"netloc/internal/workloads"
)

func main() {
	const appName = "MiniFE"
	const ranks = 144

	app, err := workloads.Lookup(appName)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := app.Generate(ranks)
	if err != nil {
		log.Fatal(err)
	}
	acc, err := comm.Accumulate(tr, comm.AccumulateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	torCfg, ftCfg, dfCfg, err := topology.Configs(ranks)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s at %d ranks: static model vs flow-level simulation vs energy\n\n", appName, ranks)
	for _, cfg := range []topology.Config{torCfg, ftCfg, dfCfg} {
		topo, err := cfg.Build()
		if err != nil {
			log.Fatal(err)
		}
		mp, err := mapping.Consecutive(ranks, topo.Nodes())
		if err != nil {
			log.Fatal(err)
		}

		static, err := netmodel.Run(acc.Wire, topo, mp, netmodel.Options{
			WallTime: tr.Meta.WallTime, TrackLinks: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		sim, err := simnet.Simulate(tr, topo, mp, simnet.Options{})
		if err != nil {
			log.Fatal(err)
		}
		en, err := energy.FromResult(static, len(topo.Links()), tr.Meta.WallTime,
			netmodel.DefaultBandwidth, energy.Params{})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%s %s\n", topo.Kind(), cfg)
		fmt.Printf("  static:    avg hops %.2f, utilization %.4f%% over %d used links\n",
			static.AvgHops, static.UtilizationPct, static.UsedLinks)
		fmt.Printf("  simulated: mean latency %.3gs (ideal %.3gs, queueing %.3gs), "+
			"%.1f%% of messages delayed, hottest link %.2f%% busy\n",
			sim.MeanLatency, sim.MeanIdealLatency, sim.MeanQueueDelay,
			100*sim.DelayedShare, sim.MaxLinkBusyPct)
		fmt.Printf("  slackness: mean %.3gs over %d samples; %.1f%% of messages have "+
			"enough slack to absorb a half-bandwidth link\n",
			sim.MeanSlack, sim.SlackSamples, 100*sim.SlackCoverShare)
		fmt.Printf("  energy:    %.1f J total, %.1f%% burned by idle links; "+
			"running links at %.2g of nominal bandwidth would cut it to %.1f J\n\n",
			en.TotalJoules, 100*en.IdleShare, en.ScaleFraction, en.ScaledJoules)
	}
	fmt.Println("The static model is an upper bound on utilization; the simulator shows")
	fmt.Println("how little of it turns into queueing at these loads, which is the")
	fmt.Println("paper's argument for operating the network at reduced bandwidth.")
}
