// Quickstart: generate a synthetic LULESH trace, compute the paper's
// MPI-level locality metrics, and evaluate the trace on all three
// topologies. This is the smallest end-to-end tour of the library.
package main

import (
	"fmt"
	"log"

	"netloc/internal/core"
	"netloc/internal/workloads"
)

func main() {
	// 1. Pick a workload and scale from the suite (Table 1).
	app, err := workloads.Lookup("LULESH")
	if err != nil {
		log.Fatal(err)
	}
	tr, err := app.Generate(64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %s: %d ranks, %d MPI events, %.1fs wall time\n",
		tr.Meta.App, tr.Meta.Ranks, len(tr.Events), tr.Meta.WallTime)

	// 2. Run the full analysis pipeline (90% coverage, 4 kB packets,
	//    12 GB/s links — the paper's parameters are the defaults).
	a, err := core.AnalyzeTrace(tr, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// 3. MPI-level metrics: hardware-agnostic locality.
	fmt.Printf("\nMPI-level locality (90%% coverage):\n")
	fmt.Printf("  peers:         %d   (distinct partners of the busiest rank)\n", a.Peers)
	fmt.Printf("  rank distance: %.1f (linear rank-ID distance covering 90%% of traffic)\n", a.RankDistance)
	fmt.Printf("  rank locality: %.1f%%\n", a.RankLocality)
	fmt.Printf("  selectivity:   %.1f (partners covering 90%% of a rank's volume)\n", a.Selectivity)

	// 4. System-level metrics on the three topologies of the study.
	fmt.Printf("\nTopological locality (consecutive mapping):\n")
	for _, tr := range []*core.TopoResult{a.Torus, a.FatTree, a.Dragonfly} {
		fmt.Printf("  %-11s %-10s  packet hops %.2g  avg hops %.2f  utilization %.4f%%\n",
			tr.Config.Kind, tr.Config, float64(tr.PacketHops), tr.AvgHops, tr.UtilizationPct)
	}
}
