// Topocompare sweeps one application across all of its scales and prints
// the average-hop and utilization comparison between torus, fat tree, and
// dragonfly — the per-workload slice of the paper's Table 3, including the
// crossover the paper highlights (torus best at small scale, the
// low-diameter topologies catching up at large scale).
package main

import (
	"flag"
	"fmt"
	"log"

	"netloc/internal/core"
	"netloc/internal/workloads"
)

func main() {
	appName := flag.String("app", "AMG", "workload to sweep")
	flag.Parse()

	app, err := workloads.Lookup(*appName)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s across scales (consecutive mapping, shortest-path routing)\n\n", app.Name)
	fmt.Printf("%6s  %22s  %22s  %22s\n", "", "3D torus", "fat tree", "dragonfly")
	fmt.Printf("%6s  %7s %6s %7s  %7s %6s %7s  %7s %6s %7s\n",
		"ranks", "cfg", "hops", "util%", "cfg", "hops", "util%", "cfg", "hops", "util%")

	for _, ranks := range app.RankCounts() {
		a, err := core.AnalyzeApp(app.Name, ranks, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d  %7s %6.2f %7.4f  %7s %6.2f %7.4f  %7s %6.2f %7.4f\n",
			ranks,
			a.Torus.Config, a.Torus.AvgHops, a.Torus.UtilizationPct,
			a.FatTree.Config, a.FatTree.AvgHops, a.FatTree.UtilizationPct,
			a.Dragonfly.Config, a.Dragonfly.AvgHops, a.Dragonfly.UtilizationPct)
	}

	fmt.Println("\nReading the sweep: the torus exploits the 3D structure of stencil")
	fmt.Println("apps at small scale; its ring diameter grows with the rank count,")
	fmt.Println("while the fat tree's hop count is bounded by twice its stage count")
	fmt.Println("and the dragonfly's by five.")
}
