// Mappingopt demonstrates the paper's central optimization suggestion:
// "static analyses could assist to select an advanced mapping, which
// assigns groups of heavily communicating ranks to nearby physical
// entities". It compares consecutive, random, and greedy
// communication-aware mappings on a torus and reports the packet-hop
// reduction the smart mapping achieves.
package main

import (
	"fmt"
	"log"

	"netloc/internal/comm"
	"netloc/internal/mapping"
	"netloc/internal/netmodel"
	"netloc/internal/topology"
	"netloc/internal/workloads"
)

func main() {
	const appName = "SNAP" // large rank distance: most room for mapping gains
	const ranks = 168

	app, err := workloads.Lookup(appName)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := app.Generate(ranks)
	if err != nil {
		log.Fatal(err)
	}
	acc, err := comm.Accumulate(tr, comm.AccumulateOptions{})
	if err != nil {
		log.Fatal(err)
	}

	cfg, err := topology.TorusConfig(ranks)
	if err != nil {
		log.Fatal(err)
	}
	topo, err := cfg.Build()
	if err != nil {
		log.Fatal(err)
	}

	consecutive, err := mapping.Consecutive(ranks, topo.Nodes())
	if err != nil {
		log.Fatal(err)
	}
	random, err := mapping.Random(ranks, topo.Nodes(), 1)
	if err != nil {
		log.Fatal(err)
	}
	greedy, err := mapping.Greedy(acc.Wire, topo)
	if err != nil {
		log.Fatal(err)
	}
	optimized, err := mapping.Optimize(acc.Wire, topo, 20)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s at %d ranks on %s %s\n\n", appName, ranks, topo.Kind(), cfg)
	var baseline uint64
	for _, m := range []struct {
		name string
		mp   *mapping.Mapping
	}{
		{"consecutive", consecutive},
		{"random", random},
		{"greedy (comm-aware)", greedy},
		{"optimized (multi-start)", optimized},
	} {
		res, err := netmodel.Run(acc.Wire, topo, m.mp, netmodel.Options{
			WallTime:   tr.Meta.WallTime,
			TrackLinks: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		if baseline == 0 {
			baseline = res.PacketHops
		}
		fmt.Printf("%-20s packet hops %.3g  avg hops %.3f  used links %d  (%.1f%% of consecutive)\n",
			m.name, float64(res.PacketHops), res.AvgHops, res.UsedLinks,
			100*float64(res.PacketHops)/float64(baseline))
	}
	fmt.Println("\nThe refined mapping clusters each rank next to its heavy partners, so")
	fmt.Println("the same traffic needs fewer link traversals — lower latency and")
	fmt.Println("congestion probability at identical application behavior.")
}
