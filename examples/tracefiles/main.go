// Tracefiles demonstrates the dumpi-like trace container: write a
// synthetic trace to disk in binary form, stream it back without
// materializing the event list, and analyze the result — the workflow a
// user with real converted dumpi traces would follow.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"netloc/internal/comm"
	"netloc/internal/core"
	"netloc/internal/trace"
	"netloc/internal/workloads"
)

func main() {
	dir, err := os.MkdirTemp("", "netloc-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "minife-144.nlt")

	// 1. Generate and persist a trace.
	app, err := workloads.Lookup("MiniFE")
	if err != nil {
		log.Fatal(err)
	}
	tr, err := app.Generate(144)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := trace.WriteTrace(f, tr); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d events, %d bytes on disk\n", filepath.Base(path), len(tr.Events), info.Size())

	// 2. Stream it back: the reader validates the header and every
	//    record, and the accumulator builds the matrices incrementally,
	//    so arbitrarily large traces need constant memory.
	in, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer in.Close()
	r, err := trace.NewReader(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streaming %s: app=%s ranks=%d wall=%.1fs, %d events pending\n",
		filepath.Base(path), r.Meta().App, r.Meta().Ranks, r.Meta().WallTime, r.Remaining())
	acc, err := comm.AccumulateStream(r, comm.AccumulateOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Analyze the accumulated matrices.
	a, err := core.AnalyzeAccumulated(acc, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s/%d from disk: peers=%d rank distance=%.1f selectivity=%.1f\n",
		a.App, a.Ranks, a.Peers, a.RankDistance, a.Selectivity)
	fmt.Printf("torus %s: avg hops %.2f; fat tree %s: avg hops %.2f; dragonfly %s: avg hops %.2f\n",
		a.Torus.Config, a.Torus.AvgHops,
		a.FatTree.Config, a.FatTree.AvgHops,
		a.Dragonfly.Config, a.Dragonfly.AvgHops)
}
