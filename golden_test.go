package netloc

import (
	"bytes"
	"os"
	"testing"

	"netloc/internal/harness"
)

// TestTable2MatchesGolden pins the fully deterministic Table 2 rendering
// against the checked-in reference output under results/. Regenerate with
//
//	go run ./cmd/locality -exp table2 > results/table2.txt
func TestTable2MatchesGolden(t *testing.T) {
	golden, err := os.ReadFile("results/table2.txt")
	if err != nil {
		t.Skipf("golden file missing: %v", err)
	}
	var buf bytes.Buffer
	if err := harness.Run(&buf, harness.Params{Experiment: "table2"}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), golden) {
		t.Fatalf("table2 output diverged from results/table2.txt:\n--- got ---\n%s\n--- want ---\n%s",
			buf.Bytes(), golden)
	}
}
