#!/bin/sh
# Full CI gate: static checks, build, the race-enabled test suite (which
# exercises the analysis service's concurrent cache/singleflight paths
# via internal/service's parallel-request tests), and the example smoke
# tests.
set -e
cd "$(dirname "$0")/.."

echo "=== gofmt ==="
UNFORMATTED="$(gofmt -l .)"
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi

echo "=== go vet ==="
go vet ./...

echo "=== go build ==="
go build ./...

# -timeout 30m: under the race detector the harness suite (every
# experiment, both formats) legitimately exceeds go test's default
# 10-minute per-package timeout on small CI runners.
echo "=== go test -race ==="
go test -race -timeout 30m ./...

# The full suite above runs with the machine's GOMAXPROCS; on a 1-CPU
# runner the parallel engine then degrades to sequential and its
# goroutine interactions go unexercised. Re-run the engine-heavy tests
# with explicit worker counts > 1 so the race detector always sees the
# concurrent paths.
echo "=== go test -race (parallel engine, forced workers) ==="
# Jellyfish|SlimFly|HyperX pull in the new-family determinism and
# regularity regressions alongside the engine suites;
# Runtime|ChromeTrace|SlowRun|RunEvent|DebugRun add the telemetry
# sampler goroutine, trace exporter, and run-event/slow-run plumbing.
go test -race -timeout 30m -run 'Parallel|Determin|Budget|ForEach|Singleflight|Concurrent|Span|Registry|Job|Jellyfish|SlimFly|HyperX|Runtime|ChromeTrace|SlowRun|RunEvent|DebugRun' \
    ./internal/parallel ./internal/comm ./internal/metrics ./internal/core ./internal/service ./internal/obs ./internal/design ./internal/workcache ./internal/congest ./internal/topology .

# Golden Chrome-trace shape gate: the exported trace must stay a valid
# JSON array with pid/tid on every event and monotonic timestamps, or
# Perfetto / chrome://tracing silently refuses the file.
echo "=== go test (chrome trace shape) ==="
go test -run 'ChromeTrace|DebugRunTrace' ./internal/obs ./internal/service

# The committed fuzz seed corpora are regression inputs: replay them
# (seeds only — no fuzzing engine) so a corpus entry that starts
# crashing fails CI before any long fuzz run would find it.
echo "=== go test (fuzz seed corpora) ==="
go test -run 'Fuzz' ./internal/topology ./internal/service

echo "=== examples ==="
sh scripts/run_examples.sh

echo "ci: all green"
