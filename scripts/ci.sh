#!/bin/sh
# Full CI gate: static checks, build, the race-enabled test suite (which
# exercises the analysis service's concurrent cache/singleflight paths
# via internal/service's parallel-request tests), and the example smoke
# tests.
set -e
cd "$(dirname "$0")/.."

echo "=== go vet ==="
go vet ./...

echo "=== go build ==="
go build ./...

echo "=== go test -race ==="
go test -race ./...

echo "=== examples ==="
sh scripts/run_examples.sh

echo "ci: all green"
