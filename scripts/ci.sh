#!/bin/sh
# Full CI gate: static checks, build, the race-enabled test suite (which
# exercises the analysis service's concurrent cache/singleflight paths
# via internal/service's parallel-request tests), and the example smoke
# tests.
set -e
cd "$(dirname "$0")/.."

echo "=== gofmt ==="
UNFORMATTED="$(gofmt -l .)"
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi

echo "=== go vet ==="
go vet ./...

echo "=== go build ==="
go build ./...

echo "=== go test -race ==="
go test -race ./...

# The full suite above runs with the machine's GOMAXPROCS; on a 1-CPU
# runner the parallel engine then degrades to sequential and its
# goroutine interactions go unexercised. Re-run the engine-heavy tests
# with explicit worker counts > 1 so the race detector always sees the
# concurrent paths.
echo "=== go test -race (parallel engine, forced workers) ==="
# Jellyfish|SlimFly|HyperX pull in the new-family determinism and
# regularity regressions alongside the engine suites.
go test -race -run 'Parallel|Determin|Budget|ForEach|Singleflight|Concurrent|Span|Registry|Job|Jellyfish|SlimFly|HyperX' \
    ./internal/parallel ./internal/comm ./internal/metrics ./internal/core ./internal/service ./internal/obs ./internal/design ./internal/workcache ./internal/congest ./internal/topology .

# The committed fuzz seed corpora are regression inputs: replay them
# (seeds only — no fuzzing engine) so a corpus entry that starts
# crashing fails CI before any long fuzz run would find it.
echo "=== go test (fuzz seed corpora) ==="
go test -run 'Fuzz' ./internal/topology ./internal/service

echo "=== examples ==="
sh scripts/run_examples.sh

echo "ci: all green"
