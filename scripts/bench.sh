#!/bin/sh
# Runs the key Benchmark* suites (simnet, netmodel, comm, and the
# top-level headline benchmarks in bench_test.go) with -benchmem and
# writes a machine-readable BENCH_<date>.json into the repo root,
# seeding the performance trajectory across PRs.
#
# Environment:
#   BENCHTIME   go test -benchtime value (default 1x: one iteration per
#               benchmark, cheap enough for CI; use e.g. 2s for stable
#               numbers)
#   BENCH_OUT   output file (default BENCH_<UTC date>.json)
set -e
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
DATE="$(date -u +%Y-%m-%d)"
OUT="${BENCH_OUT:-BENCH_${DATE}.json}"
PKGS="./internal/simnet ./internal/netmodel ./internal/comm"
HEADLINE='^(BenchmarkTable1Overview|BenchmarkTable3Characterization|BenchmarkTable3Sequential|BenchmarkTable3Parallel|BenchmarkHeadlineClaims|BenchmarkDesignSearchSmall|BenchmarkCongestionLULESH64)$'

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

{
    go test -run='^$' -bench=. -benchmem -benchtime="$BENCHTIME" $PKGS
    go test -run='^$' -bench="$HEADLINE" -benchmem -benchtime="$BENCHTIME" .
} | tee "$RAW"

{
    printf '{\n'
    printf '  "date": "%s",\n' "$DATE"
    printf '  "go": "%s",\n' "$(go version | awk '{print $3}')"
    printf '  "gomaxprocs": %s,\n' "${GOMAXPROCS:-$(nproc)}"
    printf '  "arch": "%s/%s",\n' "$(go env GOOS)" "$(go env GOARCH)"
    printf '  "kernel": "%s",\n' "$(uname -sr)"
    printf '  "benchtime": "%s",\n' "$BENCHTIME"
    printf '  "benchmarks": [\n'
    awk '
        /^pkg: / { pkg = $2 }
        /^Benchmark/ && / ns\/op/ {
            ns = "null"; b = "null"; a = "null"
            for (i = 1; i <= NF; i++) {
                if ($i == "ns/op")     ns = $(i-1)
                if ($i == "B/op")      b  = $(i-1)
                if ($i == "allocs/op") a  = $(i-1)
            }
            printf "%s    {\"package\":\"%s\",\"name\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s}", sep, pkg, $1, $2, ns, b, a
            sep = ",\n"
        }
        END { print "" }
    ' "$RAW"
    printf '  ]\n}\n'
} > "$OUT"

echo "wrote $OUT"
