#!/bin/sh
# Runs every example end to end; used as a smoke test of the public API
# surface (the Go tests cover the libraries, this covers the example
# binaries themselves).
set -e
cd "$(dirname "$0")/.."
for d in examples/*/; do
    echo "=== $d ==="
    go run "./$d"
    echo
done
