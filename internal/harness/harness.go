// Package harness dispatches the named experiments of the study —
// table1..table4, fig1, fig3..fig5, claims — to the core drivers and
// report renderers. It backs cmd/locality and the analysis service
// (internal/service) and keeps the experiment plumbing testable.
//
// Every experiment is split into a collect step, which returns the typed
// row slice (JSON-encodable as-is), and a render step, which lays the
// text/CSV formatting over those rows. Collect is the programmatic
// surface the service caches; Run composes both for the CLIs.
package harness

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"netloc/internal/core"
	"netloc/internal/obs"
	"netloc/internal/report"
	"netloc/internal/trace"
	"netloc/internal/workcache"
)

// Params selects an experiment and its inputs.
type Params struct {
	// Experiment is one of Experiments().
	Experiment string
	// App selects the workload for fig1 (default LULESH) and fig4
	// (default AMG).
	App string
	// Ranks is the configuration for fig1 (default 64).
	Ranks int
	// Rank is the source rank for fig1.
	Rank int
	// MinRanks is the cutoff for fig5 (default 512, the paper's choice).
	MinRanks int
	// CSV selects CSV output instead of aligned text.
	CSV bool
	// JSON selects structured JSON output (the Result envelope) instead
	// of text or CSV. It wins over CSV.
	JSON bool
	// Runtime includes a "runtime" block — the pipeline's stage-span
	// tree with durations and work counts — in JSON results. Off by
	// default so JSON output stays byte-identical run to run.
	Runtime bool
	// Analysis options (coverage, packet size, bandwidth, rank cap).
	Options core.Options
}

// Result is the typed outcome of one experiment: the name it ran under
// and the row slice (or series/summary struct) the experiment produced.
// It is the unit the analysis service computes, caches, and serves, and
// what the -json CLI flags emit via report.JSON.
type Result struct {
	Experiment string `json:"experiment"`
	Rows       any    `json:"rows"`
	// Runtime is the stage-span tree of the run that produced the rows,
	// present only when Params.Runtime was set (timings are inherently
	// nondeterministic, so the block is opt-in).
	Runtime *obs.SpanData `json:"runtime,omitempty"`
}

// Curve is the typed result of fig1: one labeled partner-volume series.
type Curve struct {
	Label  string    `json:"label"`
	Shares []float64 `json:"shares"`
}

type runner struct {
	description string
	// collect computes the typed rows; render lays text/CSV over them.
	collect func(p Params) (any, error)
	render  func(w io.Writer, rows any, p Params) error
}

var experiments = map[string]runner{
	"table1": {
		description: "workload overview: ranks, time, volume, p2p/coll split, throughput",
		collect: func(p Params) (any, error) {
			return core.Table1(p.Options)
		},
		render: func(w io.Writer, rows any, p Params) error {
			return report.Table1(w, rows.([]core.Table1Row), p.CSV)
		},
	},
	"table2": {
		description: "topology configurations at every scale",
		collect: func(p Params) (any, error) {
			return core.Table2(p.Options)
		},
		render: func(w io.Writer, rows any, p Params) error {
			return report.Table2(w, rows.([]core.Table2Row), p.CSV)
		},
	},
	"table3": {
		description: "main characterization: MPI-level metrics and all three topologies",
		collect: func(p Params) (any, error) {
			return core.Table3(p.Options)
		},
		render: func(w io.Writer, rows any, p Params) error {
			return report.Table3(w, rows.([]*core.Analysis), p.CSV)
		},
	},
	"table4": {
		description: "rank locality under 1D/2D/3D foldings",
		collect: func(p Params) (any, error) {
			return core.Table4(p.Options)
		},
		render: func(w io.Writer, rows any, p Params) error {
			return report.Table4(w, rows.([]core.Table4Row), p.CSV)
		},
	},
	"fig1": {
		description: "sorted partner-volume curve of one rank (default LULESH/64 rank 0)",
		collect: func(p Params) (any, error) {
			app := p.App
			if app == "" {
				app = "LULESH"
			}
			ranks := p.Ranks
			if ranks == 0 {
				ranks = 64
			}
			shares, err := core.Figure1(app, ranks, p.Rank, p.Options)
			if err != nil {
				return nil, err
			}
			label := fmt.Sprintf("%s/%d rank %d bytes", app, ranks, p.Rank)
			return Curve{Label: label, Shares: shares}, nil
		},
		render: func(w io.Writer, rows any, p Params) error {
			c := rows.(Curve)
			return report.Curve(w, c.Label, c.Shares, p.CSV)
		},
	},
	"fig3": {
		description: "cumulative selectivity trends for all workloads",
		collect: func(p Params) (any, error) {
			return core.Figure3(p.Options)
		},
		render: func(w io.Writer, rows any, p Params) error {
			return report.Figure3(w, rows.([]core.Figure3Curve), p.CSV)
		},
	},
	"fig4": {
		description: "selectivity scaling across one app's configurations (default AMG)",
		collect: func(p Params) (any, error) {
			app := p.App
			if app == "" {
				app = "AMG"
			}
			return core.Figure4(app, p.Options)
		},
		render: func(w io.Writer, rows any, p Params) error {
			return report.Figure3(w, rows.([]core.Figure3Curve), p.CSV)
		},
	},
	"fig5": {
		description: "multi-core inter-node traffic scaling",
		collect: func(p Params) (any, error) {
			minRanks := p.MinRanks
			if minRanks == 0 {
				minRanks = 512
			}
			return core.Figure5(minRanks, p.Options)
		},
		render: func(w io.Writer, rows any, p Params) error {
			return report.Figure5(w, rows.([]core.Figure5Series), p.CSV)
		},
	},
	"sim": {
		description: "EXTENSION: flow-level simulation (latency, queueing, slackness) per topology",
		collect: func(p Params) (any, error) {
			return core.SimTable(nil, p.Options)
		},
		render: func(w io.Writer, rows any, p Params) error {
			return report.SimTable(w, rows.([]core.SimRow), p.CSV)
		},
	},
	"congestion": {
		description: "EXTENSION: temporal congestion study (routing policies, queueing, hotspots, latency tolerance)",
		collect: func(p Params) (any, error) {
			return core.CongestionTable(nil, nil, nil, 0, p.Options)
		},
		render: func(w io.Writer, rows any, p Params) error {
			return report.Congestion(w, rows.([]core.CongestionRow), p.CSV)
		},
	},
	"score": {
		description: "EXTENSION: quantitative reproduction scorecard vs the paper's anchor values",
		collect: func(p Params) (any, error) {
			rows, err := core.Table3(p.Options)
			if err != nil {
				return nil, err
			}
			return core.Scorecard(rows), nil
		},
		render: func(w io.Writer, rows any, p Params) error {
			return report.Scorecard(w, rows.([]core.ScoreRow), p.CSV)
		},
	},
	"claims": {
		description: "headline findings over the full configuration grid",
		collect: func(p Params) (any, error) {
			rows, err := core.Table3(p.Options)
			if err != nil {
				return nil, err
			}
			return core.SummarizeClaims(rows), nil
		},
		render: func(w io.Writer, rows any, p Params) error {
			return report.Claims(w, rows.(core.Claims))
		},
	},
}

// Experiments returns the known experiment names in alphabetical order.
func Experiments() []string {
	out := make([]string, 0, len(experiments))
	for name := range experiments {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Describe returns a one-line description of an experiment.
func Describe(name string) (string, error) {
	r, ok := experiments[name]
	if !ok {
		return "", fmt.Errorf("%w: %q", core.ErrNoSuchExperiment, name)
	}
	return r.description, nil
}

// Collect computes the typed rows of the named experiment without
// rendering them. This is the surface the analysis service caches.
func Collect(p Params) (*Result, error) {
	r, ok := experiments[p.Experiment]
	if !ok {
		return nil, fmt.Errorf("%w: %q (known: %v)", core.ErrNoSuchExperiment, p.Experiment, Experiments())
	}
	root := runtimeSpan(&p)
	rows, err := r.collect(p)
	if err != nil {
		return nil, err
	}
	res := &Result{Experiment: p.Experiment, Rows: rows}
	res.Runtime = runtimeBlock(p, root)
	return res, nil
}

// runtimeSpan installs a private root span when Params.Runtime is set
// and no span was supplied, so the collect step records its stages. It
// returns the span to end afterwards (nil when the caller owns one).
func runtimeSpan(p *Params) *obs.Span {
	if !p.Runtime || p.Options.Span != nil {
		return nil
	}
	root := obs.NewTracer(1).StartRun(p.Experiment)
	p.Options.Span = root
	return root
}

// runtimeBlock extracts the recorded span tree for the Result's runtime
// block (nil unless Params.Runtime was set).
func runtimeBlock(p Params, root *obs.Span) *obs.SpanData {
	if !p.Runtime {
		return nil
	}
	root.End() // nil-safe; a caller-supplied span stays open
	d := p.Options.Span.Data()
	return &d
}

// Run executes the named experiment, writing its table or series to w as
// aligned text, CSV (Params.CSV), or JSON (Params.JSON).
func Run(w io.Writer, p Params) error {
	r, ok := experiments[p.Experiment]
	if !ok {
		return fmt.Errorf("%w: %q (known: %v)", core.ErrNoSuchExperiment, p.Experiment, Experiments())
	}
	res, err := Collect(p)
	if err != nil {
		return err
	}
	if p.JSON {
		return report.JSON(w, res)
	}
	return r.render(w, res.Rows, p)
}

// AnalyzeTraceFile analyzes a materialized trace and renders it as a
// single Table 3 row (or a one-row JSON Result with Params.JSON).
func AnalyzeTraceFile(w io.Writer, t *trace.Trace, p Params) error {
	p.Experiment = "trace"
	root := runtimeSpan(&p)
	a, err := core.AnalyzeTrace(t, p.Options)
	if err != nil {
		return err
	}
	if p.JSON {
		a.Acc = nil
		res := &Result{Experiment: "trace", Rows: []*core.Analysis{a}}
		res.Runtime = runtimeBlock(p, root)
		return report.JSON(w, res)
	}
	return report.Table3(w, []*core.Analysis{a}, p.CSV)
}

// RunAll executes every experiment, writing <name>.txt (or .csv/.json)
// files into dir. Used by cmd/locality -all to regenerate the results
// tree in one call. Slow experiments run once each; errors abort the
// sweep.
func RunAll(dir string, p Params) error {
	ext := ".txt"
	switch {
	case p.JSON:
		ext = ".json"
	case p.CSV:
		ext = ".csv"
	}
	// The experiments revisit the same (app, ranks) cells over and over —
	// Table 1 and Table 3 alone share every configuration — so a sweep
	// without a shared artifact cache regenerates each trace several
	// times. Results are byte-identical either way.
	if p.Options.Cache == nil {
		p.Options.Cache = workcache.New(0)
	}
	for _, name := range Experiments() {
		f, err := os.Create(filepath.Join(dir, name+ext))
		if err != nil {
			return err
		}
		q := p
		q.Experiment = name
		if err := Run(f, q); err != nil {
			f.Close()
			return fmt.Errorf("harness: %s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
