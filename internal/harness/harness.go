// Package harness dispatches the named experiments of the study —
// table1..table4, fig1, fig3..fig5, claims — to the core drivers and
// report renderers. It backs cmd/locality and keeps the experiment
// plumbing testable.
package harness

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"netloc/internal/core"
	"netloc/internal/report"
	"netloc/internal/trace"
)

// Params selects an experiment and its inputs.
type Params struct {
	// Experiment is one of Experiments().
	Experiment string
	// App selects the workload for fig1 (default LULESH) and fig4
	// (default AMG).
	App string
	// Ranks is the configuration for fig1 (default 64).
	Ranks int
	// Rank is the source rank for fig1.
	Rank int
	// MinRanks is the cutoff for fig5 (default 512, the paper's choice).
	MinRanks int
	// CSV selects CSV output instead of aligned text.
	CSV bool
	// Analysis options (coverage, packet size, bandwidth).
	Options core.Options
}

type runner struct {
	description string
	run         func(w io.Writer, p Params) error
}

var experiments = map[string]runner{
	"table1": {
		description: "workload overview: ranks, time, volume, p2p/coll split, throughput",
		run: func(w io.Writer, p Params) error {
			rows, err := core.Table1()
			if err != nil {
				return err
			}
			return report.Table1(w, rows, p.CSV)
		},
	},
	"table2": {
		description: "topology configurations at every scale",
		run: func(w io.Writer, p Params) error {
			rows, err := core.Table2()
			if err != nil {
				return err
			}
			return report.Table2(w, rows, p.CSV)
		},
	},
	"table3": {
		description: "main characterization: MPI-level metrics and all three topologies",
		run: func(w io.Writer, p Params) error {
			rows, err := core.Table3(p.Options)
			if err != nil {
				return err
			}
			return report.Table3(w, rows, p.CSV)
		},
	},
	"table4": {
		description: "rank locality under 1D/2D/3D foldings",
		run: func(w io.Writer, p Params) error {
			rows, err := core.Table4(p.Options)
			if err != nil {
				return err
			}
			return report.Table4(w, rows, p.CSV)
		},
	},
	"fig1": {
		description: "sorted partner-volume curve of one rank (default LULESH/64 rank 0)",
		run: func(w io.Writer, p Params) error {
			app := p.App
			if app == "" {
				app = "LULESH"
			}
			ranks := p.Ranks
			if ranks == 0 {
				ranks = 64
			}
			curve, err := core.Figure1(app, ranks, p.Rank, p.Options)
			if err != nil {
				return err
			}
			label := fmt.Sprintf("%s/%d rank %d bytes", app, ranks, p.Rank)
			return report.Curve(w, label, curve, p.CSV)
		},
	},
	"fig3": {
		description: "cumulative selectivity trends for all workloads",
		run: func(w io.Writer, p Params) error {
			curves, err := core.Figure3(p.Options)
			if err != nil {
				return err
			}
			return report.Figure3(w, curves, p.CSV)
		},
	},
	"fig4": {
		description: "selectivity scaling across one app's configurations (default AMG)",
		run: func(w io.Writer, p Params) error {
			app := p.App
			if app == "" {
				app = "AMG"
			}
			curves, err := core.Figure4(app, p.Options)
			if err != nil {
				return err
			}
			return report.Figure3(w, curves, p.CSV)
		},
	},
	"fig5": {
		description: "multi-core inter-node traffic scaling",
		run: func(w io.Writer, p Params) error {
			minRanks := p.MinRanks
			if minRanks == 0 {
				minRanks = 512
			}
			series, err := core.Figure5(minRanks, p.Options)
			if err != nil {
				return err
			}
			return report.Figure5(w, series, p.CSV)
		},
	},
	"sim": {
		description: "EXTENSION: flow-level simulation (latency, queueing, slackness) per topology",
		run: func(w io.Writer, p Params) error {
			rows, err := core.SimTable(nil, p.Options)
			if err != nil {
				return err
			}
			return report.SimTable(w, rows, p.CSV)
		},
	},
	"score": {
		description: "EXTENSION: quantitative reproduction scorecard vs the paper's anchor values",
		run: func(w io.Writer, p Params) error {
			rows, err := core.Table3(p.Options)
			if err != nil {
				return err
			}
			return report.Scorecard(w, core.Scorecard(rows), p.CSV)
		},
	},
	"claims": {
		description: "headline findings over the full configuration grid",
		run: func(w io.Writer, p Params) error {
			rows, err := core.Table3(p.Options)
			if err != nil {
				return err
			}
			return report.Claims(w, core.SummarizeClaims(rows))
		},
	},
}

// Experiments returns the known experiment names in alphabetical order.
func Experiments() []string {
	out := make([]string, 0, len(experiments))
	for name := range experiments {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Describe returns a one-line description of an experiment.
func Describe(name string) (string, error) {
	r, ok := experiments[name]
	if !ok {
		return "", fmt.Errorf("%w: %q", core.ErrNoSuchExperiment, name)
	}
	return r.description, nil
}

// Run executes the named experiment, writing its table or series to w.
func Run(w io.Writer, p Params) error {
	r, ok := experiments[p.Experiment]
	if !ok {
		return fmt.Errorf("%w: %q (known: %v)", core.ErrNoSuchExperiment, p.Experiment, Experiments())
	}
	return r.run(w, p)
}

// AnalyzeTraceFile analyzes a materialized trace and renders it as a
// single Table 3 row.
func AnalyzeTraceFile(w io.Writer, t *trace.Trace, p Params) error {
	a, err := core.AnalyzeTrace(t, p.Options)
	if err != nil {
		return err
	}
	return report.Table3(w, []*core.Analysis{a}, p.CSV)
}

// RunAll executes every experiment, writing <name>.txt (or .csv) files
// into dir. Used by cmd/locality -all to regenerate the results tree in
// one call. Slow experiments run once each; errors abort the sweep.
func RunAll(dir string, p Params) error {
	ext := ".txt"
	if p.CSV {
		ext = ".csv"
	}
	for _, name := range Experiments() {
		f, err := os.Create(filepath.Join(dir, name+ext))
		if err != nil {
			return err
		}
		q := p
		q.Experiment = name
		if err := Run(f, q); err != nil {
			f.Close()
			return fmt.Errorf("harness: %s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
