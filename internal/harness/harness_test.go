package harness

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"netloc/internal/core"
	"netloc/internal/obs"
	"netloc/internal/report"
	"netloc/internal/trace"
)

func TestExperimentsListed(t *testing.T) {
	names := Experiments()
	want := []string{"claims", "congestion", "fig1", "fig3", "fig4", "fig5", "score", "sim", "table1", "table2", "table3", "table4"}
	if len(names) != len(want) {
		t.Fatalf("experiments = %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("experiments = %v, want %v", names, want)
		}
	}
	for _, n := range names {
		desc, err := Describe(n)
		if err != nil || desc == "" {
			t.Errorf("Describe(%s) = %q, %v", n, desc, err)
		}
	}
	if _, err := Describe("nope"); !errors.Is(err, core.ErrNoSuchExperiment) {
		t.Fatalf("Describe(nope) err = %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := Run(&bytes.Buffer{}, Params{Experiment: "table99"})
	if !errors.Is(err, core.ErrNoSuchExperiment) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunTable2(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, Params{Experiment: "table2"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"(2,2,2)", "(48,3)", "13824", "(10,5,5)"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 output missing %q", want)
		}
	}
}

func TestRunTable1CSV(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, Params{Experiment: "table1", CSV: true}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 39 { // header + 38 rows
		t.Fatalf("csv lines = %d, want 39", len(lines))
	}
	if !strings.HasPrefix(lines[0], "Application,") {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestRunFig1Defaults(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, Params{Experiment: "fig1"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "LULESH/64 rank 0") {
		t.Errorf("fig1 output: %s", buf.String())
	}
}

func TestRunFig1CustomWorkload(t *testing.T) {
	var buf bytes.Buffer
	err := Run(&buf, Params{Experiment: "fig1", App: "MiniFE", Ranks: 18, Rank: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "MiniFE/18 rank 4") {
		t.Errorf("fig1 output: %s", buf.String())
	}
}

func TestRunFig4Default(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, Params{Experiment: "fig4"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "AMG/1728") {
		t.Errorf("fig4 output missing AMG/1728")
	}
}

func TestRunFig5MinRanksOverride(t *testing.T) {
	var buf bytes.Buffer
	// With a 1000-rank cutoff only the very largest configurations appear.
	if err := Run(&buf, Params{Experiment: "fig5", MinRanks: 1200}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "1728") {
		t.Errorf("fig5 output missing 1728-rank rows:\n%s", out)
	}
	if strings.Contains(out, "LULESH") {
		t.Errorf("fig5 cutoff ignored:\n%s", out)
	}
}

func TestAnalyzeTraceFile(t *testing.T) {
	tr := &trace.Trace{
		Meta: trace.Meta{App: "custom", Ranks: 8, WallTime: 1},
		Events: []trace.Event{
			{Rank: 0, Op: trace.OpSend, Peer: 1, Root: -1, Bytes: 5000},
			{Rank: 3, Op: trace.OpSend, Peer: 7, Root: -1, Bytes: 100},
		},
	}
	var buf bytes.Buffer
	if err := AnalyzeTraceFile(&buf, tr, Params{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "custom") {
		t.Errorf("trace analysis output:\n%s", out)
	}
}

func TestAnalyzeTraceFileBadTrace(t *testing.T) {
	bad := &trace.Trace{Meta: trace.Meta{Ranks: 0}}
	if err := AnalyzeTraceFile(&bytes.Buffer{}, bad, Params{}); err == nil {
		t.Fatal("bad trace accepted")
	}
}

func TestRunAllWritesEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	if err := RunAll(dir, Params{CSV: true}); err != nil {
		t.Fatal(err)
	}
	for _, name := range Experiments() {
		info, err := os.Stat(filepath.Join(dir, name+".csv"))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if info.Size() == 0 {
			t.Fatalf("%s: empty output", name)
		}
	}
}

func TestRunAllBadDirectory(t *testing.T) {
	if err := RunAll("/nonexistent-dir-xyz", Params{Experiment: "table2"}); err == nil {
		t.Fatal("bad directory accepted")
	}
}

// TestUnknownExperimentErrorListsKnown pins the listing-style error: a
// typo'd experiment name must produce a message that names the typo and
// enumerates every valid experiment, for both Run and Collect.
func TestUnknownExperimentErrorListsKnown(t *testing.T) {
	for _, err := range []error{
		Run(&bytes.Buffer{}, Params{Experiment: "table99"}),
		func() error { _, err := Collect(Params{Experiment: "table99"}); return err }(),
	} {
		if !errors.Is(err, core.ErrNoSuchExperiment) {
			t.Fatalf("err = %v, want ErrNoSuchExperiment", err)
		}
		msg := err.Error()
		if !strings.Contains(msg, `"table99"`) {
			t.Errorf("error does not name the unknown experiment: %s", msg)
		}
		for _, name := range Experiments() {
			if !strings.Contains(msg, name) {
				t.Errorf("error listing missing %q: %s", name, msg)
			}
		}
	}
}

// TestExperimentsSortedAndMatchDispatch verifies the public listing is
// alphabetically sorted and in exact one-to-one correspondence with the
// dispatch map.
func TestExperimentsSortedAndMatchDispatch(t *testing.T) {
	names := Experiments()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Experiments() not sorted: %v", names)
	}
	if len(names) != len(experiments) {
		t.Fatalf("listing has %d names, dispatch map %d", len(names), len(experiments))
	}
	for _, name := range names {
		r, ok := experiments[name]
		if !ok {
			t.Errorf("listed experiment %q not dispatchable", name)
			continue
		}
		if r.description == "" || r.collect == nil || r.render == nil {
			t.Errorf("experiment %q incompletely wired", name)
		}
	}
}

// TestEveryExperimentBothFormats runs every experiment with CSV on and
// off (and as JSON) against a small rank cap, so the whole dispatch
// table is exercised quickly in one test.
func TestEveryExperimentBothFormats(t *testing.T) {
	for _, name := range Experiments() {
		for _, csv := range []bool{false, true} {
			var buf bytes.Buffer
			p := Params{Experiment: name, CSV: csv, Options: core.Options{MaxRanks: 64}}
			if err := Run(&buf, p); err != nil {
				t.Errorf("%s (csv=%v): %v", name, csv, err)
				continue
			}
			if buf.Len() == 0 {
				t.Errorf("%s (csv=%v): empty output", name, csv)
			}
		}
		var buf bytes.Buffer
		p := Params{Experiment: name, JSON: true, Options: core.Options{MaxRanks: 64}}
		if err := Run(&buf, p); err != nil {
			t.Errorf("%s (json): %v", name, err)
			continue
		}
		var envelope struct {
			Experiment string          `json:"experiment"`
			Rows       json.RawMessage `json:"rows"`
		}
		if err := json.Unmarshal(buf.Bytes(), &envelope); err != nil {
			t.Errorf("%s: invalid JSON: %v", name, err)
			continue
		}
		if envelope.Experiment != name || len(envelope.Rows) == 0 {
			t.Errorf("%s: envelope = %q with %d-byte rows", name, envelope.Experiment, len(envelope.Rows))
		}
	}
}

// TestCollectMatchesRun verifies Collect returns the same typed rows Run
// renders: rendering Collect's rows through the JSON path must equal
// Run's JSON output byte for byte.
func TestCollectMatchesRun(t *testing.T) {
	p := Params{Experiment: "table4", Options: core.Options{MaxRanks: 64}}
	res, err := Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	rows, ok := res.Rows.([]core.Table4Row)
	if !ok || len(rows) == 0 {
		t.Fatalf("rows = %T with %v", res.Rows, res.Rows)
	}
	fromCollect, err := report.JSONBytes(res)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	q := p
	q.JSON = true
	if err := Run(&buf, q); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromCollect, buf.Bytes()) {
		t.Fatal("Collect + JSONBytes diverges from Run with Params.JSON")
	}
}

// TestReportJSONUnaffectedByInstrumentation pins the observability
// layer's determinism promise at the report level: attaching a span
// leaves the JSON output byte-identical, and the runtime block appears
// only when Params.Runtime opts in.
func TestReportJSONUnaffectedByInstrumentation(t *testing.T) {
	base := Params{Experiment: "table3", JSON: true, Options: core.Options{MaxRanks: 64}}
	var plain bytes.Buffer
	if err := Run(&plain, base); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(plain.Bytes(), []byte(`"runtime"`)) {
		t.Fatal("runtime block present without Params.Runtime")
	}

	tr := obs.NewTracer(1)
	root := tr.StartRun("instrumented")
	instrumented := base
	instrumented.Options.Span = root
	var instr bytes.Buffer
	if err := Run(&instr, instrumented); err != nil {
		t.Fatal(err)
	}
	root.End()
	if !bytes.Equal(plain.Bytes(), instr.Bytes()) {
		t.Fatal("attaching a span changed the report JSON")
	}

	withRuntime := base
	withRuntime.Runtime = true
	var rt bytes.Buffer
	if err := Run(&rt, withRuntime); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(plain.Bytes(), rt.Bytes()) {
		t.Fatal("Params.Runtime had no effect on the JSON output")
	}
	var envelope struct {
		Experiment string        `json:"experiment"`
		Runtime    *obs.SpanData `json:"runtime"`
	}
	if err := json.Unmarshal(rt.Bytes(), &envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Runtime == nil || envelope.Runtime.Name != "table3" {
		t.Fatalf("runtime block = %+v", envelope.Runtime)
	}
	if len(envelope.Runtime.Children) == 0 {
		t.Fatal("runtime block records no stages")
	}
}

// TestAnalyzeTraceFileJSON covers the JSON path of trace analysis.
func TestAnalyzeTraceFileJSON(t *testing.T) {
	tr := &trace.Trace{
		Meta: trace.Meta{App: "custom", Ranks: 8, WallTime: 1},
		Events: []trace.Event{
			{Rank: 0, Op: trace.OpSend, Peer: 1, Root: -1, Bytes: 5000},
		},
	}
	var buf bytes.Buffer
	if err := AnalyzeTraceFile(&buf, tr, Params{JSON: true}); err != nil {
		t.Fatal(err)
	}
	var envelope struct {
		Experiment string           `json:"experiment"`
		Rows       []*core.Analysis `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Experiment != "trace" || len(envelope.Rows) != 1 || envelope.Rows[0].App != "custom" {
		t.Fatalf("envelope = %+v", envelope)
	}
}
