package harness

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netloc/internal/core"
	"netloc/internal/trace"
)

func TestExperimentsListed(t *testing.T) {
	names := Experiments()
	want := []string{"claims", "fig1", "fig3", "fig4", "fig5", "score", "sim", "table1", "table2", "table3", "table4"}
	if len(names) != len(want) {
		t.Fatalf("experiments = %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("experiments = %v, want %v", names, want)
		}
	}
	for _, n := range names {
		desc, err := Describe(n)
		if err != nil || desc == "" {
			t.Errorf("Describe(%s) = %q, %v", n, desc, err)
		}
	}
	if _, err := Describe("nope"); !errors.Is(err, core.ErrNoSuchExperiment) {
		t.Fatalf("Describe(nope) err = %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := Run(&bytes.Buffer{}, Params{Experiment: "table99"})
	if !errors.Is(err, core.ErrNoSuchExperiment) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunTable2(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, Params{Experiment: "table2"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"(2,2,2)", "(48,3)", "13824", "(10,5,5)"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 output missing %q", want)
		}
	}
}

func TestRunTable1CSV(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, Params{Experiment: "table1", CSV: true}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 39 { // header + 38 rows
		t.Fatalf("csv lines = %d, want 39", len(lines))
	}
	if !strings.HasPrefix(lines[0], "Application,") {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestRunFig1Defaults(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, Params{Experiment: "fig1"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "LULESH/64 rank 0") {
		t.Errorf("fig1 output: %s", buf.String())
	}
}

func TestRunFig1CustomWorkload(t *testing.T) {
	var buf bytes.Buffer
	err := Run(&buf, Params{Experiment: "fig1", App: "MiniFE", Ranks: 18, Rank: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "MiniFE/18 rank 4") {
		t.Errorf("fig1 output: %s", buf.String())
	}
}

func TestRunFig4Default(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, Params{Experiment: "fig4"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "AMG/1728") {
		t.Errorf("fig4 output missing AMG/1728")
	}
}

func TestRunFig5MinRanksOverride(t *testing.T) {
	var buf bytes.Buffer
	// With a 1000-rank cutoff only the very largest configurations appear.
	if err := Run(&buf, Params{Experiment: "fig5", MinRanks: 1200}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "1728") {
		t.Errorf("fig5 output missing 1728-rank rows:\n%s", out)
	}
	if strings.Contains(out, "LULESH") {
		t.Errorf("fig5 cutoff ignored:\n%s", out)
	}
}

func TestAnalyzeTraceFile(t *testing.T) {
	tr := &trace.Trace{
		Meta: trace.Meta{App: "custom", Ranks: 8, WallTime: 1},
		Events: []trace.Event{
			{Rank: 0, Op: trace.OpSend, Peer: 1, Root: -1, Bytes: 5000},
			{Rank: 3, Op: trace.OpSend, Peer: 7, Root: -1, Bytes: 100},
		},
	}
	var buf bytes.Buffer
	if err := AnalyzeTraceFile(&buf, tr, Params{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "custom") {
		t.Errorf("trace analysis output:\n%s", out)
	}
}

func TestAnalyzeTraceFileBadTrace(t *testing.T) {
	bad := &trace.Trace{Meta: trace.Meta{Ranks: 0}}
	if err := AnalyzeTraceFile(&bytes.Buffer{}, bad, Params{}); err == nil {
		t.Fatal("bad trace accepted")
	}
}

func TestRunAllWritesEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	if err := RunAll(dir, Params{CSV: true}); err != nil {
		t.Fatal(err)
	}
	for _, name := range Experiments() {
		info, err := os.Stat(filepath.Join(dir, name+".csv"))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if info.Size() == 0 {
			t.Fatalf("%s: empty output", name)
		}
	}
}

func TestRunAllBadDirectory(t *testing.T) {
	if err := RunAll("/nonexistent-dir-xyz", Params{Experiment: "table2"}); err == nil {
		t.Fatal("bad directory accepted")
	}
}
