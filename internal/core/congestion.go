package core

import (
	"fmt"

	"netloc/internal/congest"
	"netloc/internal/mapping"
	"netloc/internal/topology"
	"netloc/internal/workloads"
)

// CongestionRow is one cell of the congestion experiment grid: one
// workload configuration replayed on one topology under one routing
// policy through the temporal simulator.
type CongestionRow struct {
	App      string
	Ranks    int
	Topology string
	congest.Stats
	// Tolerance carries the latency-tolerance sweep for the baseline
	// (minimal-policy) row of each (workload, topology) pair; nil on the
	// other policy rows and when the sweep is disabled.
	Tolerance *congest.Tolerance `json:",omitempty"`
}

// CongestionWorkloads lists the configurations the congestion experiment
// covers by default: one representative per communication family, at
// sizes where the event-driven replay stays quick enough for RunAll.
var CongestionWorkloads = []WorkloadRef{
	{App: "LULESH", Ranks: 64},
	{App: "CESAR MOCFE", Ranks: 64},
	{App: "Crystal Router", Ranks: 100},
	{App: "BigFFT", Ranks: 100},
}

// CongestionTable replays each configuration on one sized topology per
// requested family (nil families means the paper's torus, fat tree, and
// dragonfly; see AnalysisKinds for the accepted names) under every
// requested routing policy (nil means all of congest.Policies, baseline
// first). growthPct sets the latency-tolerance threshold swept on each
// (workload, topology) baseline row: zero means congest.DefaultGrowthPct,
// negative disables the sweep. Configurations fan out over the worker
// budget exactly like SimTable; rows stay in grid order (workload,
// topology, policy) regardless of Options.Parallelism.
func CongestionTable(refs []WorkloadRef, families, policies []string, growthPct float64, opts Options) ([]CongestionRow, error) {
	opts = opts.withEngine()
	if len(refs) == 0 {
		refs = CongestionWorkloads
	}
	if len(families) == 0 {
		families = []string{"torus", "fattree", "dragonfly"}
	}
	if len(policies) == 0 {
		policies = congest.Policies()
	}
	var capped []WorkloadRef
	for _, ref := range refs {
		if opts.withinCap(ref.Ranks) {
			capped = append(capped, ref)
		}
	}
	perRef, err := runGrid(opts.runner(), len(capped), func(i int) ([]CongestionRow, error) {
		ref := capped[i]
		cell := opts.Span.Start("cell")
		cell.SetLabel(fmt.Sprintf("%s/%d", ref.App, ref.Ranks))
		defer cell.End()
		app, err := workloads.Lookup(ref.App)
		if err != nil {
			return nil, err
		}
		o := opts
		o.Span = cell
		tr, err := generateTrace(app, ref.Ranks, o)
		if err != nil {
			return nil, err
		}
		cfgs := make([]topology.Config, 0, len(families))
		for _, fam := range families {
			cfg, err := ConfigFor(fam, ref.Ranks)
			if err != nil {
				return nil, err
			}
			cfgs = append(cfgs, cfg)
		}
		rows := make([]CongestionRow, 0, len(cfgs)*len(policies))
		for _, cfg := range cfgs {
			topo, err := opts.Cache.Topology(cfg, cfg.Build)
			if err != nil {
				return nil, err
			}
			mp, err := mapping.Consecutive(ref.Ranks, topo.Nodes())
			if err != nil {
				return nil, err
			}
			for _, policy := range policies {
				copts := congest.Options{
					Policy:               policy,
					BandwidthBytesPerSec: opts.BandwidthBytesPerSec,
					PacketBytes:          opts.PacketSize,
				}
				// The spans end via defer on every path: a failing
				// simulation must not leave an unterminated span in the
				// debug ring.
				stats, err := func() (*congest.Stats, error) {
					csp := cell.Start("congest")
					defer csp.End()
					csp.SetLabel(fmt.Sprintf("%s/%s", topo.Kind(), policy))
					stats, err := congest.Simulate(tr, topo, mp, copts)
					if err != nil {
						return nil, fmt.Errorf("core: congestion %s/%d on %s (%s): %w",
							ref.App, ref.Ranks, topo.Name(), policy, err)
					}
					csp.Add("congest_sims", 1)
					csp.Add("congest_messages", int64(stats.Messages))
					return stats, nil
				}()
				if err != nil {
					return nil, err
				}
				row := CongestionRow{
					App: ref.App, Ranks: ref.Ranks, Topology: topo.Kind(), Stats: *stats,
				}
				// The tolerance sweep answers a per-(workload, topology)
				// question, so it runs once, attached to the baseline row.
				if policy == congest.PolicyMinimal && growthPct >= 0 {
					tol, err := func() (*congest.Tolerance, error) {
						tsp := cell.Start("tolerance")
						defer tsp.End()
						tsp.SetLabel(topo.Kind())
						tol, err := congest.LatencyTolerance(tr, topo, mp, copts, growthPct)
						if err != nil {
							return nil, fmt.Errorf("core: tolerance %s/%d on %s: %w",
								ref.App, ref.Ranks, topo.Name(), err)
						}
						tsp.Add("congest_probes", int64(tol.Probes))
						return tol, nil
					}()
					if err != nil {
						return nil, err
					}
					row.Tolerance = tol
				}
				rows = append(rows, row)
			}
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []CongestionRow
	for _, r := range perRef {
		rows = append(rows, r...)
	}
	return rows, nil
}
