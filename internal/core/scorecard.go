package core

import (
	"fmt"
	"math"
)

// ScoreRow is one entry of the reproduction scorecard: a published value,
// the measured counterpart, and a verdict.
type ScoreRow struct {
	Claim    string
	Paper    float64
	Measured float64
	// TolerancePct is the relative band (in percent of the paper value)
	// within which the verdict is "MATCH"; up to three times the band is
	// "CLOSE", beyond that "DIFF".
	TolerancePct float64
	Verdict      string
}

func verdict(paper, measured, tolPct float64) string {
	if paper == 0 {
		if measured == 0 {
			return "MATCH"
		}
		return "DIFF"
	}
	dev := 100 * math.Abs(measured-paper) / math.Abs(paper)
	switch {
	case dev <= tolPct:
		return "MATCH"
	case dev <= 3*tolPct:
		return "CLOSE"
	default:
		return "DIFF"
	}
}

// Scorecard derives the quantitative reproduction scorecard from Table 3
// rows: the paper's headline aggregates plus anchor cells chosen across
// metric families. Tolerances reflect what the synthetic-trace
// substitution can promise (see DESIGN.md): tight for structural metrics
// (rank distance, peers for stencil apps), looser for volume-sensitive
// ones.
func Scorecard(rows []*Analysis) []ScoreRow {
	byKey := map[WorkloadRef]*Analysis{}
	for _, a := range rows {
		byKey[WorkloadRef{App: a.App, Ranks: a.Ranks}] = a
	}
	claims := SummarizeClaims(rows)

	var out []ScoreRow
	add := func(claim string, paper, measured, tolPct float64) {
		out = append(out, ScoreRow{
			Claim: claim, Paper: paper, Measured: measured,
			TolerancePct: tolPct, Verdict: verdict(paper, measured, tolPct),
		})
	}

	// Headline aggregates.
	add("selectivity <= 10 partners [% of p2p configs]", 89, claims.SelectivityLE10Pct, 10)
	add("utilization < 1% [% of cells]", 93, claims.UtilizationLT1Pct, 5)
	add("dragonfly global-link message share [%]", 95, claims.DragonflyGlobalSharePct, 15)

	// Anchor cells: MPI-level metrics.
	anchor := func(app string, ranks int) *Analysis { return byKey[WorkloadRef{App: app, Ranks: ranks}] }
	if a := anchor("LULESH", 64); a != nil {
		add("LULESH/64 peers", 26, float64(a.Peers), 1)
		add("LULESH/64 rank distance", 15.7, a.RankDistance, 10)
		add("LULESH/64 selectivity", 4.5, a.Selectivity, 10)
	}
	if a := anchor("AMG", 216); a != nil {
		add("AMG/216 rank distance", 35.8, a.RankDistance, 10)
	}
	if a := anchor("AMG", 1728); a != nil {
		add("AMG/1728 rank distance", 143.8, a.RankDistance, 10)
		add("AMG/1728 selectivity", 5.6, a.Selectivity, 15)
	}
	if a := anchor("PARTISN", 168); a != nil {
		add("PARTISN/168 peers", 167, float64(a.Peers), 1)
		add("PARTISN/168 rank distance", 13.8, a.RankDistance, 10)
	}
	if a := anchor("Crystal Router", 10); a != nil {
		add("Crystal Router/10 peers", 4, float64(a.Peers), 1)
		add("Crystal Router/10 selectivity", 3.0, a.Selectivity, 10)
	}

	// Anchor cells: system-level metrics.
	if a := anchor("BigFFT", 1024); a != nil && a.Torus != nil {
		add("BigFFT/1024 torus avg hops", 8.00, a.Torus.AvgHops, 3)
		add("BigFFT/1024 torus utilization [%]", 47.23, a.Torus.UtilizationPct, 10)
		if a.Dragonfly != nil {
			add("BigFFT/1024 dragonfly avg hops", 4.69, a.Dragonfly.AvgHops, 5)
		}
	}
	if a := anchor("AMG", 8); a != nil && a.FatTree != nil {
		add("AMG/8 fat tree avg hops", 2.00, a.FatTree.AvgHops, 1)
	}
	if a := anchor("CESAR MOCFE", 1024); a != nil && a.Torus != nil {
		add("MOCFE/1024 torus avg hops", 7.98, a.Torus.AvgHops, 3)
	}
	return out
}

// ScorecardSummary counts verdicts.
func ScorecardSummary(rows []ScoreRow) (match, close, diff int) {
	for _, r := range rows {
		switch r.Verdict {
		case "MATCH":
			match++
		case "CLOSE":
			close++
		default:
			diff++
		}
	}
	return match, close, diff
}

// String renders one row compactly.
func (r ScoreRow) String() string {
	return fmt.Sprintf("%-45s paper %8.2f  measured %8.2f  [%s]", r.Claim, r.Paper, r.Measured, r.Verdict)
}
