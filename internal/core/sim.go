package core

import (
	"fmt"

	"netloc/internal/mapping"
	"netloc/internal/simnet"
	"netloc/internal/topology"
	"netloc/internal/workloads"
)

// SimRow is one row of the dynamic-effects table (an extension of the
// paper: its static model deliberately ignores timing, and names dynamic
// effects as future work). One row covers one workload configuration on
// one topology.
type SimRow struct {
	App      string
	Ranks    int
	Topology string
	simnet.Stats
}

// SimWorkloads lists the configurations the sim experiment covers by
// default: one small and one medium configuration per communication
// family, kept at sizes where the message-level simulation stays quick.
var SimWorkloads = []WorkloadRef{
	{App: "LULESH", Ranks: 64},
	{App: "MiniFE", Ranks: 144},
	{App: "CESAR MOCFE", Ranks: 64},
	{App: "Crystal Router", Ranks: 100},
	{App: "PARTISN", Ranks: 168},
	{App: "AMR_Miniapp", Ranks: 64},
	{App: "BigFFT", Ranks: 100},
}

// SimTable simulates each configuration on its Table 2 torus, fat tree,
// and dragonfly. Configurations fan out over the worker budget (each
// one generates its trace once and replays it on the three topologies
// in order); rows stay in table order regardless of Parallelism.
func SimTable(refs []WorkloadRef, opts Options) ([]SimRow, error) {
	opts = opts.withEngine()
	if len(refs) == 0 {
		refs = SimWorkloads
	}
	var capped []WorkloadRef
	for _, ref := range refs {
		if opts.withinCap(ref.Ranks) {
			capped = append(capped, ref)
		}
	}
	perRef, err := runGrid(opts.runner(), len(capped), func(i int) ([]SimRow, error) {
		ref := capped[i]
		cell := opts.Span.Start("cell")
		cell.SetLabel(fmt.Sprintf("%s/%d", ref.App, ref.Ranks))
		defer cell.End()
		app, err := workloads.Lookup(ref.App)
		if err != nil {
			return nil, err
		}
		o := opts
		o.Span = cell
		tr, err := generateTrace(app, ref.Ranks, o)
		if err != nil {
			return nil, err
		}
		torCfg, ftCfg, dfCfg, err := topology.Configs(ref.Ranks)
		if err != nil {
			return nil, err
		}
		rows := make([]SimRow, 0, 3)
		for _, cfg := range []topology.Config{torCfg, ftCfg, dfCfg} {
			topo, err := opts.Cache.Topology(cfg, cfg.Build)
			if err != nil {
				return nil, err
			}
			mp, err := mapping.Consecutive(ref.Ranks, topo.Nodes())
			if err != nil {
				return nil, err
			}
			// The span ends via defer on every path: a failing simulation
			// must not leave an unterminated span in the debug ring.
			stats, err := func() (*simnet.Stats, error) {
				ssp := cell.Start("simnet")
				defer ssp.End()
				ssp.SetLabel(topo.Kind())
				stats, err := simnet.Simulate(tr, topo, mp, simnet.Options{
					BandwidthBytesPerSec: opts.BandwidthBytesPerSec,
					PacketBytes:          opts.PacketSize,
				})
				if err != nil {
					return nil, fmt.Errorf("core: sim %s/%d on %s: %w", ref.App, ref.Ranks, topo.Name(), err)
				}
				ssp.Add("sim_messages", int64(stats.Messages))
				ssp.Add("sim_hops", int64(stats.HopsTraversed))
				return stats, nil
			}()
			if err != nil {
				return nil, err
			}
			rows = append(rows, SimRow{
				App: ref.App, Ranks: ref.Ranks, Topology: topo.Kind(), Stats: *stats,
			})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []SimRow
	for _, r := range perRef {
		rows = append(rows, r...)
	}
	return rows, nil
}
