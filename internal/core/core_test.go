package core

import (
	"math"
	"reflect"
	"testing"

	"netloc/internal/obs"
	"netloc/internal/trace"
)

func analyze(t *testing.T, app string, ranks int, opts Options) *Analysis {
	t.Helper()
	a, err := AnalyzeApp(app, ranks, opts)
	if err != nil {
		t.Fatalf("AnalyzeApp(%s, %d): %v", app, ranks, err)
	}
	return a
}

func TestAnalyzeAppUnknown(t *testing.T) {
	if _, err := AnalyzeApp("NoSuchApp", 8, Options{}); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := AnalyzeApp("AMG", 12345, Options{}); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestAnalyzeLULESH64(t *testing.T) {
	a := analyze(t, "LULESH", 64, Options{})
	if !a.HasP2P {
		t.Fatal("LULESH must have p2p traffic")
	}
	if a.Peers != 26 {
		t.Errorf("peers = %d, want 26", a.Peers)
	}
	// Paper: rank distance 15.7, selectivity 4.5 for LULESH-64; allow a
	// generous band around the published values.
	if a.RankDistance < 12 || a.RankDistance > 20 {
		t.Errorf("rank distance = %v, want ~16", a.RankDistance)
	}
	if a.Selectivity < 3 || a.Selectivity > 8 {
		t.Errorf("selectivity = %v, want ~5", a.Selectivity)
	}
	if math.Abs(a.RankLocality-100/a.RankDistance) > 1e-9 {
		t.Errorf("locality %v inconsistent with distance %v", a.RankLocality, a.RankDistance)
	}
	// All three topologies evaluated.
	for name, tr := range map[string]*TopoResult{"torus": a.Torus, "fattree": a.FatTree, "dragonfly": a.Dragonfly} {
		if tr == nil {
			t.Fatalf("%s result missing", name)
		}
		if tr.PacketHops == 0 || tr.AvgHops <= 0 {
			t.Errorf("%s: empty result %+v", name, tr)
		}
	}
	// Paper's finding: for small rank counts the torus has the lowest
	// average hop count, the dragonfly the highest.
	if !(a.Torus.AvgHops < a.FatTree.AvgHops && a.FatTree.AvgHops < a.Dragonfly.AvgHops) {
		t.Errorf("hop ordering violated: torus %v, fattree %v, dragonfly %v",
			a.Torus.AvgHops, a.FatTree.AvgHops, a.Dragonfly.AvgHops)
	}
	// Utilization far below 1% (Table 3: ~0.0004..0.0016%).
	for name, tr := range map[string]*TopoResult{"torus": a.Torus, "fattree": a.FatTree, "dragonfly": a.Dragonfly} {
		if tr.UtilizationPct <= 0 || tr.UtilizationPct > 0.1 {
			t.Errorf("%s utilization = %v%%", name, tr.UtilizationPct)
		}
	}
}

func TestAnalyzeBigFFTNoP2P(t *testing.T) {
	a := analyze(t, "BigFFT", 9, Options{})
	if a.HasP2P {
		t.Fatal("BigFFT should have no p2p")
	}
	if a.Peers != 0 || a.RankDistance != 0 || a.Selectivity != 0 {
		t.Fatalf("MPI metrics should be zero/N-A: %+v", a)
	}
	// ... but the wire traffic still drives the topologies.
	if a.Torus.PacketHops == 0 {
		t.Fatal("BigFFT wire traffic missing")
	}
	// BigFFT is the only workload with utilization beyond 1% (paper 6.3).
	if a.Torus.UtilizationPct < 1 {
		t.Errorf("BigFFT torus utilization = %v%%, want > 1%%", a.Torus.UtilizationPct)
	}
	// Fat-tree on one switch: every pair exactly 2 hops.
	if a.FatTree.AvgHops != 2 {
		t.Errorf("fat tree avg hops = %v, want 2", a.FatTree.AvgHops)
	}
}

func TestAnalyzeSkipTopologies(t *testing.T) {
	a := analyze(t, "AMG", 8, Options{SkipTopologies: true})
	if a.Torus != nil || a.FatTree != nil || a.Dragonfly != nil {
		t.Fatal("topology results should be nil")
	}
	if a.Peers != 7 {
		t.Errorf("peers = %d, want 7", a.Peers)
	}
}

func TestAnalyzeSkipLinkTracking(t *testing.T) {
	a := analyze(t, "AMG", 8, Options{SkipLinkTracking: true})
	if a.Torus.UtilizationPct != 0 || a.Torus.UsedLinks != 0 {
		t.Fatal("link metrics should be zero without tracking")
	}
	if a.Torus.PacketHops == 0 {
		t.Fatal("hop metrics should still be computed")
	}
}

func TestAnalyzeTable1Accounting(t *testing.T) {
	a := analyze(t, "CESAR MOCFE", 64, Options{SkipTopologies: true})
	// Table 1: 19.0 MB, 5.01% p2p.
	if math.Abs(a.VolMB-19.0) > 0.5 {
		t.Errorf("volume = %v MB, want 19", a.VolMB)
	}
	if math.Abs(a.P2PPct-5.01) > 1 {
		t.Errorf("p2p share = %v%%, want ~5%%", a.P2PPct)
	}
	if math.Abs(a.CollPct+a.P2PPct-100) > 1e-9 {
		t.Error("shares do not sum to 100")
	}
	if a.RateMBps <= 0 {
		t.Error("rate missing")
	}
}

func TestAnalyzeTraceCustom(t *testing.T) {
	tr := &trace.Trace{
		Meta: trace.Meta{App: "custom", Ranks: 4, WallTime: 1},
		Events: []trace.Event{
			{Rank: 0, Op: trace.OpSend, Peer: 1, Root: -1, Bytes: 9000},
			{Rank: 2, Op: trace.OpSend, Peer: 3, Root: -1, Bytes: 1000},
		},
	}
	a, err := AnalyzeTrace(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.App != "custom" || a.Ranks != 4 {
		t.Fatalf("meta lost: %+v", a)
	}
	if a.Peers != 1 {
		t.Errorf("peers = %d", a.Peers)
	}
	if a.RankDistance != 1 {
		t.Errorf("distance = %v, want 1 (both pairs adjacent)", a.RankDistance)
	}
	if a.Selectivity != 1 {
		t.Errorf("selectivity = %v, want 1", a.Selectivity)
	}
}

func TestAnalyzeCoverageOption(t *testing.T) {
	// With 100% coverage the distance includes the farthest partner.
	tr := &trace.Trace{
		Meta: trace.Meta{App: "c", Ranks: 10, WallTime: 1},
		Events: []trace.Event{
			{Rank: 0, Op: trace.OpSend, Peer: 1, Root: -1, Bytes: 95},
			{Rank: 0, Op: trace.OpSend, Peer: 9, Root: -1, Bytes: 5},
		},
	}
	a90, err := AnalyzeTrace(tr, Options{SkipTopologies: true})
	if err != nil {
		t.Fatal(err)
	}
	a100, err := AnalyzeTrace(tr, Options{Coverage: 1.0, SkipTopologies: true})
	if err != nil {
		t.Fatal(err)
	}
	if a90.RankDistance != 1 || a100.RankDistance != 9 {
		t.Fatalf("coverage option ignored: %v / %v", a90.RankDistance, a100.RankDistance)
	}
}

func TestAnalysisConsistencyInvariants(t *testing.T) {
	// Across a mixed set of configurations: selectivity <= peers, avg
	// hops within the topology's diameter bounds, packets consistent.
	for _, ref := range []WorkloadRef{
		{"AMG", 27}, {"Crystal Router", 100}, {"MiniFE", 18},
		{"PARTISN", 168}, {"EXMATEX CMC 2D", 64},
	} {
		a := analyze(t, ref.App, ref.Ranks, Options{})
		if a.HasP2P && a.Selectivity > float64(a.Peers) {
			t.Errorf("%s: selectivity %v > peers %d", ref.App, a.Selectivity, a.Peers)
		}
		if a.Dragonfly.AvgHops > 5 {
			t.Errorf("%s: dragonfly hops %v > 5", ref.App, a.Dragonfly.AvgHops)
		}
		if a.FatTree.AvgHops > 6 {
			t.Errorf("%s: fat tree hops %v > 6", ref.App, a.FatTree.AvgHops)
		}
		if a.Torus.Packets != a.FatTree.Packets || a.Torus.Packets != a.Dragonfly.Packets {
			t.Errorf("%s: packet counts differ across topologies", ref.App)
		}
	}
}

// TestAnalyzeParallelMatchesSequential pins the engine's determinism
// promise at the analysis level: the full Analysis — matrices, metrics,
// topology results — is identical whatever Parallelism is set to.
func TestAnalyzeParallelMatchesSequential(t *testing.T) {
	for app, ranks := range map[string]int{"LULESH": 64, "AMG": 216} {
		seq := analyze(t, app, ranks, Options{Parallelism: 1})
		for _, workers := range []int{2, 8} {
			par := analyze(t, app, ranks, Options{Parallelism: workers})
			// Acc.Shards records how the accumulation was scheduled, so it
			// is the one field allowed to vary with Parallelism.
			seq.Acc.Shards, par.Acc.Shards = 0, 0
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("%s: analysis differs between Parallelism 1 and %d", app, workers)
			}
		}
	}
}

// TestExperimentsParallelMatchSequential does the same for the
// experiment-grid fan-out (Table 3 drives the widest grid).
func TestExperimentsParallelMatchSequential(t *testing.T) {
	seq, err := Table3(Options{Parallelism: 1, MaxRanks: 128})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Table3(Options{Parallelism: 8, MaxRanks: 128})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("Table3 differs between Parallelism 1 and 8")
	}
}

// TestAnalysisSpansRecordStages checks the pipeline's observability
// contract: with a span attached, every stage is recorded with its work
// counts, and the analysis result is identical to an uninstrumented run.
func TestAnalysisSpansRecordStages(t *testing.T) {
	tr := obs.NewTracer(1)
	root := tr.StartRun("analysis")
	instr := analyze(t, "LULESH", 64, Options{Parallelism: 2, Span: root})
	root.End()
	plain := analyze(t, "LULESH", 64, Options{Parallelism: 2})
	instr.Acc.Shards, plain.Acc.Shards = 0, 0
	if !reflect.DeepEqual(instr, plain) {
		t.Fatal("attaching a span changed the analysis result")
	}

	counts := map[string]int64{}
	stages := map[string]int{}
	var walk func(d obs.SpanData)
	walk = func(d obs.SpanData) {
		stages[d.Name]++
		for k, v := range d.Counts {
			counts[k] += v
		}
		for _, c := range d.Children {
			walk(c)
		}
	}
	walk(tr.Runs()[0].Root)
	for _, stage := range []string{"generate", "accumulate", "mpi_metrics", "mapping", "netmodel"} {
		if stages[stage] == 0 {
			t.Errorf("stage %q not recorded (got %v)", stage, stages)
		}
	}
	if stages["netmodel"] != 3 || stages["mapping"] != 3 {
		t.Errorf("per-topology stages = %v, want 3 each", stages)
	}
	if counts["events"] == 0 || counts["packets"] == 0 || counts["shards"] == 0 {
		t.Errorf("work counts missing: %v", counts)
	}
}
