// Package core ties the substrates together into the study's analysis
// pipeline: a trace (generated or loaded) is accumulated into
// communication matrices, the hardware-agnostic MPI-level metrics are
// computed from the point-to-point matrix, and the wire matrix is driven
// over the three topology models to produce the system-level metrics.
// The experiment drivers that regenerate each of the paper's tables and
// figures live in experiments.go.
package core

import (
	"errors"
	"fmt"

	"netloc/internal/comm"
	"netloc/internal/mapping"
	"netloc/internal/metrics"
	"netloc/internal/mpi"
	"netloc/internal/netmodel"
	"netloc/internal/topology"
	"netloc/internal/trace"
	"netloc/internal/workloads"
)

// Options configures an analysis run.
type Options struct {
	// Coverage is the traffic-share threshold of the 90% rules;
	// metrics.DefaultCoverage when zero.
	Coverage float64
	// PacketSize is the packetization granularity;
	// comm.DefaultPacketSize when zero.
	PacketSize int
	// BandwidthBytesPerSec is the per-link bandwidth;
	// netmodel.DefaultBandwidth when zero.
	BandwidthBytesPerSec float64
	// Strategy selects the collective-expansion algorithm; the zero
	// value is the paper's direct translation (see mpi.Strategy).
	Strategy mpi.Strategy
	// SkipTopologies computes only the MPI-level metrics.
	SkipTopologies bool
	// SkipLinkTracking skips per-link accounting (utilization and the
	// global-link share stay zero) for faster hop-only runs.
	SkipLinkTracking bool
	// MaxRanks caps the configuration grid: experiment drivers skip
	// configurations (and topology sizes) above it. Zero means no cap.
	// Used by tests and the analysis service to bound run time.
	MaxRanks int
}

// withinCap reports whether a rank count passes the MaxRanks cap.
func (o Options) withinCap(ranks int) bool {
	return o.MaxRanks == 0 || ranks <= o.MaxRanks
}

func (o Options) coverage() float64 {
	if o.Coverage == 0 {
		return metrics.DefaultCoverage
	}
	return o.Coverage
}

// TopoResult holds the system-level metrics of one topology (one
// topology-block of a Table 3 row).
type TopoResult struct {
	Config         topology.Config
	PacketHops     uint64
	Packets        uint64
	AvgHops        float64
	UtilizationPct float64
	UsedLinks      int
	// GlobalMsgShare is the fraction of messages crossing a global link
	// (meaningful for the dragonfly and the fat-tree top stage).
	GlobalMsgShare float64
}

// Analysis is the full result for one workload configuration: one row of
// Table 1 plus one row of Table 3.
type Analysis struct {
	App      string
	Ranks    int
	WallTime float64

	// Table 1 accounting (caller-side volumes).
	VolMB    float64
	P2PPct   float64
	CollPct  float64
	RateMBps float64

	// MPI-level metrics (Table 3, left block). HasP2P is false for
	// purely collective workloads, for which the paper reports N/A.
	HasP2P       bool
	Peers        int
	RankDistance float64
	RankLocality float64 // percent
	Selectivity  float64

	// System-level metrics per topology (Table 3, right blocks); nil
	// when Options.SkipTopologies is set.
	Torus     *TopoResult
	FatTree   *TopoResult
	Dragonfly *TopoResult

	// Acc retains the accumulated matrices for follow-up analyses
	// (figures, multi-core study, mapping experiments). It is excluded
	// from JSON encodings: the matrices are large and internal.
	Acc *comm.Accumulated `json:"-"`
}

// AnalyzeTrace runs the full pipeline on a materialized trace.
func AnalyzeTrace(t *trace.Trace, opts Options) (*Analysis, error) {
	acc, err := comm.Accumulate(t, comm.AccumulateOptions{PacketSize: opts.PacketSize, Strategy: opts.Strategy})
	if err != nil {
		return nil, err
	}
	return AnalyzeAccumulated(acc, opts)
}

// AnalyzeAccumulated runs the pipeline on pre-accumulated matrices.
func AnalyzeAccumulated(acc *comm.Accumulated, opts Options) (*Analysis, error) {
	q := opts.coverage()
	a := &Analysis{
		App:      acc.Meta.App,
		Ranks:    acc.Meta.Ranks,
		WallTime: acc.Meta.WallTime,
		Acc:      acc,
	}
	totalCaller := acc.CallerP2PBytes + acc.CallerCollBytes
	a.VolMB = float64(totalCaller) / 1e6
	if totalCaller > 0 {
		a.P2PPct = 100 * float64(acc.CallerP2PBytes) / float64(totalCaller)
		a.CollPct = 100 - a.P2PPct
	}
	if acc.Meta.WallTime > 0 {
		a.RateMBps = a.VolMB / acc.Meta.WallTime
	}

	if acc.P2P.TotalBytes() > 0 {
		a.HasP2P = true
		a.Peers, _ = metrics.Peers(acc.P2P)
		var err error
		if a.RankDistance, err = metrics.RankDistance(acc.P2P, q); err != nil {
			return nil, err
		}
		if a.RankLocality, err = metrics.RankLocality(acc.P2P, q); err != nil {
			return nil, err
		}
		if a.Selectivity, err = metrics.Selectivity(acc.P2P, q); err != nil {
			return nil, err
		}
	}

	if !opts.SkipTopologies {
		torCfg, ftCfg, dfCfg, err := topology.Configs(a.Ranks)
		if err != nil {
			return nil, err
		}
		for _, cfg := range []topology.Config{torCfg, ftCfg, dfCfg} {
			res, err := runTopology(acc, cfg, MappingConsecutive, opts)
			if err != nil {
				return nil, fmt.Errorf("core: %s on %s%s: %w", a.App, cfg.Kind, cfg, err)
			}
			switch cfg.Kind {
			case "torus":
				a.Torus = res
			case "fattree":
				a.FatTree = res
			case "dragonfly":
				a.Dragonfly = res
			}
		}
	}
	return a, nil
}

// Named rank→node mapping strategies accepted by BuildMapping and
// AnalyzeAppOn. MappingConsecutive is the paper's default.
const (
	MappingConsecutive = "consecutive"
	MappingRandom      = "random"
	MappingGreedy      = "greedy"
	MappingRefined     = "refined"
)

// MappingNames lists the known mapping strategies in preference order.
func MappingNames() []string {
	return []string{MappingConsecutive, MappingRandom, MappingGreedy, MappingRefined}
}

// BuildMapping constructs a named rank→node mapping for a topology. The
// empty name means the paper's consecutive default; "random" uses a fixed
// seed so results stay deterministic.
func BuildMapping(name string, acc *comm.Accumulated, topo topology.Topology) (*mapping.Mapping, error) {
	switch name {
	case "", MappingConsecutive:
		return mapping.Consecutive(acc.Meta.Ranks, topo.Nodes())
	case MappingRandom:
		return mapping.Random(acc.Meta.Ranks, topo.Nodes(), 1)
	case MappingGreedy:
		return mapping.Greedy(acc.Wire, topo)
	case MappingRefined:
		return mapping.Optimize(acc.Wire, topo, 2)
	}
	return nil, fmt.Errorf("core: unknown mapping %q (known: %v)", name, MappingNames())
}

// ConfigFor returns the Table 2 configuration of one topology kind for a
// rank count.
func ConfigFor(kind string, ranks int) (topology.Config, error) {
	switch kind {
	case "torus":
		return topology.TorusConfig(ranks)
	case "fattree":
		return topology.FatTreeConfig(ranks)
	case "dragonfly":
		return topology.DragonflyConfig(ranks)
	}
	return topology.Config{}, fmt.Errorf("core: unknown topology %q (known: torus, fattree, dragonfly)", kind)
}

func runTopology(acc *comm.Accumulated, cfg topology.Config, mappingName string, opts Options) (*TopoResult, error) {
	topo, err := cfg.Build()
	if err != nil {
		return nil, err
	}
	mp, err := BuildMapping(mappingName, acc, topo)
	if err != nil {
		return nil, err
	}
	res, err := netmodel.Run(acc.Wire, topo, mp, netmodel.Options{
		BandwidthBytesPerSec: opts.BandwidthBytesPerSec,
		WallTime:             acc.Meta.WallTime,
		TrackLinks:           !opts.SkipLinkTracking,
	})
	if err != nil {
		return nil, err
	}
	return &TopoResult{
		Config:         cfg,
		PacketHops:     res.PacketHops,
		Packets:        res.Packets,
		AvgHops:        res.AvgHops,
		UtilizationPct: res.UtilizationPct,
		UsedLinks:      res.UsedLinks,
		GlobalMsgShare: res.GlobalMsgShare,
	}, nil
}

// AnalyzeAppOn analyzes one workload configuration on a selected topology
// kind ("torus", "fattree", "dragonfly", or "" / "all" for all three)
// under a named rank→node mapping (see MappingNames; "" means
// consecutive). It backs the service's /v1/analyze endpoint. The returned
// Analysis carries only the selected topology block(s); Acc is released.
func AnalyzeAppOn(name string, ranks int, topoKind, mappingName string, opts Options) (*Analysis, error) {
	o := opts
	o.SkipTopologies = true
	a, err := AnalyzeApp(name, ranks, o)
	if err != nil {
		return nil, err
	}
	kinds := []string{"torus", "fattree", "dragonfly"}
	if topoKind != "" && topoKind != "all" {
		kinds = []string{topoKind}
	}
	for _, kind := range kinds {
		cfg, err := ConfigFor(kind, ranks)
		if err != nil {
			return nil, err
		}
		res, err := runTopology(a.Acc, cfg, mappingName, opts)
		if err != nil {
			return nil, fmt.Errorf("core: %s on %s%s: %w", name, cfg.Kind, cfg, err)
		}
		switch kind {
		case "torus":
			a.Torus = res
		case "fattree":
			a.FatTree = res
		case "dragonfly":
			a.Dragonfly = res
		}
	}
	a.Acc = nil
	return a, nil
}

// AnalyzeApp generates the synthetic trace for a workload configuration
// and analyzes it.
func AnalyzeApp(name string, ranks int, opts Options) (*Analysis, error) {
	app, err := workloads.Lookup(name)
	if err != nil {
		return nil, err
	}
	t, err := app.Generate(ranks)
	if err != nil {
		return nil, err
	}
	return AnalyzeTrace(t, opts)
}

// ErrNoSuchExperiment is returned by RunExperiment for unknown IDs.
var ErrNoSuchExperiment = errors.New("core: unknown experiment")
