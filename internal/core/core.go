// Package core ties the substrates together into the study's analysis
// pipeline: a trace (generated or loaded) is accumulated into
// communication matrices, the hardware-agnostic MPI-level metrics are
// computed from the point-to-point matrix, and the wire matrix is driven
// over the three topology models to produce the system-level metrics.
// The experiment drivers that regenerate each of the paper's tables and
// figures live in experiments.go.
package core

import (
	"errors"
	"fmt"
	"runtime"

	"netloc/internal/comm"
	"netloc/internal/mapping"
	"netloc/internal/metrics"
	"netloc/internal/mpi"
	"netloc/internal/netmodel"
	"netloc/internal/obs"
	"netloc/internal/parallel"
	"netloc/internal/topology"
	"netloc/internal/trace"
	"netloc/internal/workcache"
	"netloc/internal/workloads"
)

// Options configures an analysis run.
type Options struct {
	// Coverage is the traffic-share threshold of the 90% rules;
	// metrics.DefaultCoverage when zero.
	Coverage float64
	// PacketSize is the packetization granularity;
	// comm.DefaultPacketSize when zero.
	PacketSize int
	// BandwidthBytesPerSec is the per-link bandwidth;
	// netmodel.DefaultBandwidth when zero.
	BandwidthBytesPerSec float64
	// Strategy selects the collective-expansion algorithm; the zero
	// value is the paper's direct translation (see mpi.Strategy).
	Strategy mpi.Strategy
	// SkipTopologies computes only the MPI-level metrics.
	SkipTopologies bool
	// SkipLinkTracking skips per-link accounting (utilization and the
	// global-link share stay zero) for faster hop-only runs.
	SkipLinkTracking bool
	// MaxRanks caps the configuration grid: experiment drivers skip
	// configurations (and topology sizes) above it. Zero means no cap.
	// Used by tests and the analysis service to bound run time.
	MaxRanks int
	// Parallelism caps the worker goroutines one analysis may use for
	// the experiment-grid fan-out, the per-topology model runs, the
	// per-rank metric loops, and sharded trace accumulation. Zero means
	// GOMAXPROCS; 1 runs fully sequentially. Results are identical at
	// every setting (all fan-out is index-addressed and reductions stay
	// in index order), so Parallelism never affects cache keys.
	Parallelism int
	// Budget optionally shares one worker-token pool across concurrent
	// analyses: the analysis service passes its request-admission
	// budget so request-level and intra-request parallelism draw from
	// the same pool instead of oversubscribing. Nil means a private
	// budget per top-level analysis call.
	Budget *parallel.Budget
	// Cache optionally shares a workload artifact cache across analyses:
	// generated traces and accumulated matrices are memoized per
	// (app, ranks, accumulate options), so the experiment drivers, the
	// design sweep, and the service re-derive each artifact once instead
	// of once per grid cell. Cached artifacts are shared read-only and
	// results are byte-identical with the cache cold, warm, or nil
	// (disabled), so — like Parallelism — the cache never belongs in a
	// result-cache key. Uploaded traces (AnalyzeTrace) are deliberately
	// never cached: their content is caller-controlled and must not
	// satisfy later registry lookups.
	Cache *workcache.Cache
	// Span optionally attaches an observability span: the pipeline
	// records each stage (generate, accumulate, mpi_metrics, mapping,
	// netmodel, simnet) as a child with its duration and work counts,
	// and experiment drivers wrap each grid cell. Purely observational:
	// results are byte-identical with or without a span (a nil span is
	// a no-op).
	Span *obs.Span
}

// workers resolves the Parallelism knob (0 = GOMAXPROCS).
func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// withEngine installs a private worker budget when none was supplied,
// so the nested fan-out levels of one analysis (grid × topologies ×
// per-rank loops) share a single token pool. Every public entry point
// calls it; repeated application is a no-op.
func (o Options) withEngine() Options {
	if o.Budget == nil && o.workers() > 1 {
		// The calling goroutine holds no token, so the extras' budget
		// is one less than the worker cap.
		o.Budget = parallel.NewBudget(o.workers() - 1)
	}
	return o
}

// runner returns the scheduler one fan-out level should use.
func (o Options) runner() parallel.Runner {
	if o.workers() <= 1 || o.Budget == nil {
		return parallel.Seq()
	}
	return parallel.Shared(o.Budget, o.workers())
}

// engine returns the metrics engine bound to the options' runner.
func (o Options) engine() metrics.Engine {
	return metrics.Engine{Run: o.runner()}
}

// withinCap reports whether a rank count passes the MaxRanks cap.
func (o Options) withinCap(ranks int) bool {
	return o.MaxRanks == 0 || ranks <= o.MaxRanks
}

func (o Options) coverage() float64 {
	if o.Coverage == 0 {
		return metrics.DefaultCoverage
	}
	return o.Coverage
}

// TopoResult holds the system-level metrics of one topology (one
// topology-block of a Table 3 row).
type TopoResult struct {
	Config     topology.Config
	PacketHops uint64
	Packets    uint64
	AvgHops    float64
	// UtilizationPct is meaningful only when UtilizationValid is set;
	// a run without a wall time (eq. 5's denominator) reports the
	// paper's N/A instead of a misleading 0.
	UtilizationPct   float64
	UtilizationValid bool
	UsedLinks        int
	// GlobalMsgShare is the fraction of messages crossing a global link
	// (meaningful for the dragonfly and the fat-tree top stage).
	GlobalMsgShare float64
}

// Analysis is the full result for one workload configuration: one row of
// Table 1 plus one row of Table 3.
type Analysis struct {
	App      string
	Ranks    int
	WallTime float64

	// Table 1 accounting (caller-side volumes).
	VolMB    float64
	P2PPct   float64
	CollPct  float64
	RateMBps float64

	// MPI-level metrics (Table 3, left block). HasP2P is false for
	// purely collective workloads, for which the paper reports N/A.
	HasP2P       bool
	Peers        int
	RankDistance float64
	RankLocality float64 // percent
	Selectivity  float64

	// System-level metrics per topology (Table 3, right blocks); nil
	// when Options.SkipTopologies is set.
	Torus     *TopoResult
	FatTree   *TopoResult
	Dragonfly *TopoResult

	// Extreme-scale families beyond the paper's study, populated only
	// when AnalyzeAppOn selects them explicitly (omitted from JSON
	// otherwise, so the paper-table encodings stay byte-stable).
	SlimFly   *TopoResult `json:",omitempty"`
	Jellyfish *TopoResult `json:",omitempty"`
	HyperX    *TopoResult `json:",omitempty"`

	// Acc retains the accumulated matrices for follow-up analyses
	// (figures, multi-core study, mapping experiments). It is excluded
	// from JSON encodings: the matrices are large and internal.
	Acc *comm.Accumulated `json:"-"`
}

// AnalyzeTrace runs the full pipeline on a materialized trace. Long
// event streams are accumulated in shards across the options' worker
// budget and merged; the matrices are exact sums either way. The trace
// is treated as caller-supplied: it is never read from or written to
// Options.Cache, so an uploaded trace claiming a registry app's name
// cannot poison later registry analyses.
func AnalyzeTrace(t *trace.Trace, opts Options) (*Analysis, error) {
	opts = opts.withEngine()
	acc, err := accumulate(t, opts)
	if err != nil {
		return nil, err
	}
	return AnalyzeAccumulated(acc, opts)
}

// accumulate expands and packetizes a trace into the communication
// matrices under a stage span. The span ends on every path (a failing
// expansion must not leave an unterminated span in the debug ring).
func accumulate(t *trace.Trace, opts Options) (*comm.Accumulated, error) {
	sp := opts.Span.Start("accumulate")
	defer sp.End()
	// The workload label rides along as span metadata so exported traces
	// (obs.WriteChromeTrace) name the cell each stage worked on.
	sp.SetLabel(fmt.Sprintf("%s/%d", t.Meta.App, t.Meta.Ranks))
	sp.Add("events", int64(len(t.Events)))
	acc, err := comm.AccumulateParallel(t,
		comm.AccumulateOptions{PacketSize: opts.PacketSize, Strategy: opts.Strategy}, opts.runner())
	if err != nil {
		return nil, err
	}
	sp.Add("shards", int64(acc.Shards))
	return acc, nil
}

// AnalyzeAccumulated runs the pipeline on pre-accumulated matrices.
func AnalyzeAccumulated(acc *comm.Accumulated, opts Options) (*Analysis, error) {
	opts = opts.withEngine()
	q := opts.coverage()
	a := &Analysis{
		App:      acc.Meta.App,
		Ranks:    acc.Meta.Ranks,
		WallTime: acc.Meta.WallTime,
		Acc:      acc,
	}
	totalCaller := acc.CallerP2PBytes + acc.CallerCollBytes
	a.VolMB = float64(totalCaller) / 1e6
	if totalCaller > 0 {
		a.P2PPct = 100 * float64(acc.CallerP2PBytes) / float64(totalCaller)
		a.CollPct = 100 - a.P2PPct
	}
	if acc.Meta.WallTime > 0 {
		a.RateMBps = a.VolMB / acc.Meta.WallTime
	}

	if acc.P2P.TotalBytes() > 0 {
		a.HasP2P = true
		sp := opts.Span.Start("mpi_metrics")
		sp.SetLabel(fmt.Sprintf("%s/%d", acc.Meta.App, acc.Meta.Ranks))
		a.Peers, _ = metrics.Peers(acc.P2P)
		sp.Add("peers", int64(a.Peers))
		eng := opts.engine()
		var err error
		a.RankDistance, err = eng.RankDistance(acc.P2P, q)
		if err == nil {
			a.RankLocality, err = eng.RankLocality(acc.P2P, q)
		}
		if err == nil {
			a.Selectivity, err = eng.Selectivity(acc.P2P, q)
		}
		sp.End()
		if err != nil {
			return nil, err
		}
	}

	if !opts.SkipTopologies {
		torCfg, ftCfg, dfCfg, err := topology.Configs(a.Ranks)
		if err != nil {
			return nil, err
		}
		cfgs := []topology.Config{torCfg, ftCfg, dfCfg}
		results, err := runGrid(opts.runner(), len(cfgs), func(i int) (*TopoResult, error) {
			res, err := runTopology(acc, cfgs[i], MappingConsecutive, opts, opts.Span)
			if err != nil {
				return nil, fmt.Errorf("core: %s on %s%s: %w", a.App, cfgs[i].Kind, cfgs[i], err)
			}
			return res, nil
		})
		if err != nil {
			return nil, err
		}
		for i, cfg := range cfgs {
			switch cfg.Kind {
			case "torus":
				a.Torus = results[i]
			case "fattree":
				a.FatTree = results[i]
			case "dragonfly":
				a.Dragonfly = results[i]
			}
		}
	}
	return a, nil
}

// runGrid evaluates fn for every index of an n-item grid on the given
// runner. Result i always lands at index i (table order is preserved),
// and when several items fail the lowest-index error is returned — the
// same one the sequential loop would have reported first.
func runGrid[T any](run parallel.Runner, n int, fn func(i int) (T, error)) ([]T, error) {
	if n == 0 {
		return nil, nil // keep the sequential loops' nil result (JSON null)
	}
	out := make([]T, n)
	err := run.ForEachErr(n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Named rank→node mapping strategies accepted by BuildMapping and
// AnalyzeAppOn. MappingConsecutive is the paper's default.
const (
	MappingConsecutive = "consecutive"
	MappingRandom      = "random"
	MappingGreedy      = "greedy"
	MappingRefined     = "refined"
)

// MappingNames lists the known mapping strategies in preference order.
func MappingNames() []string {
	return []string{MappingConsecutive, MappingRandom, MappingGreedy, MappingRefined}
}

// BuildMapping constructs a named rank→node mapping for a topology. The
// empty name means the paper's consecutive default; "random" uses a fixed
// seed so results stay deterministic.
func BuildMapping(name string, acc *comm.Accumulated, topo topology.Topology) (*mapping.Mapping, error) {
	switch name {
	case "", MappingConsecutive:
		return mapping.Consecutive(acc.Meta.Ranks, topo.Nodes())
	case MappingRandom:
		return mapping.Random(acc.Meta.Ranks, topo.Nodes(), 1)
	case MappingGreedy:
		return mapping.Greedy(acc.Wire, topo)
	case MappingRefined:
		return mapping.Optimize(acc.Wire, topo, 2)
	}
	return nil, fmt.Errorf("core: unknown mapping %q (known: %v)", name, MappingNames())
}

// AnalysisKinds lists the topology kinds AnalyzeAppOn accepts: the
// paper's three families plus the extreme-scale additions.
func AnalysisKinds() []string {
	return []string{"torus", "fattree", "dragonfly", "slimfly", "jellyfish", "hyperx"}
}

// ConfigFor returns the sized configuration of one topology kind for a
// rank count: the Table 2 entry for the paper's families, the ladder
// sizing for the extreme-scale ones.
func ConfigFor(kind string, ranks int) (topology.Config, error) {
	switch kind {
	case "torus":
		return topology.TorusConfig(ranks)
	case "fattree":
		return topology.FatTreeConfig(ranks)
	case "dragonfly":
		return topology.DragonflyConfig(ranks)
	case "slimfly":
		return topology.SlimFlyConfig(ranks)
	case "jellyfish":
		return topology.JellyfishConfig(ranks)
	case "hyperx":
		return topology.HyperXConfig(ranks)
	}
	return topology.Config{}, fmt.Errorf("core: unknown topology %q (known: %v)", kind, AnalysisKinds())
}

func runTopology(acc *comm.Accumulated, cfg topology.Config, mappingName string, opts Options, parent *obs.Span) (*TopoResult, error) {
	topo, err := opts.Cache.Topology(cfg, cfg.Build)
	if err != nil {
		return nil, err
	}
	msp := parent.Start("mapping")
	msp.SetLabel(mappingName)
	mp, err := BuildMapping(mappingName, acc, topo)
	msp.End()
	if err != nil {
		return nil, err
	}
	nsp := parent.Start("netmodel")
	nsp.SetLabel(cfg.Kind)
	res, err := netmodel.Run(acc.Wire, topo, mp, netmodel.Options{
		BandwidthBytesPerSec: opts.BandwidthBytesPerSec,
		WallTime:             acc.Meta.WallTime,
		TrackLinks:           !opts.SkipLinkTracking,
	})
	if err != nil {
		nsp.End()
		return nil, err
	}
	nsp.Add("packets", int64(res.Packets))
	nsp.Add("packet_hops", int64(res.PacketHops))
	nsp.Add("used_links", int64(res.UsedLinks))
	nsp.Add("max_link_bytes", int64(res.MaxLinkBytes))
	nsp.End()
	return &TopoResult{
		Config:           cfg,
		PacketHops:       res.PacketHops,
		Packets:          res.Packets,
		AvgHops:          res.AvgHops,
		UtilizationPct:   res.UtilizationPct,
		UtilizationValid: res.UtilizationValid,
		UsedLinks:        res.UsedLinks,
		GlobalMsgShare:   res.GlobalMsgShare,
	}, nil
}

// AnalyzeAppOn analyzes one workload configuration on a selected topology
// kind (see AnalysisKinds; "" / "all" means the paper's three families)
// under a named rank→node mapping (see MappingNames; "" means
// consecutive). It backs the service's /v1/analyze endpoint. The returned
// Analysis carries only the selected topology block(s); Acc is released.
func AnalyzeAppOn(name string, ranks int, topoKind, mappingName string, opts Options) (*Analysis, error) {
	opts = opts.withEngine()
	o := opts
	o.SkipTopologies = true
	a, err := AnalyzeApp(name, ranks, o)
	if err != nil {
		return nil, err
	}
	kinds := []string{"torus", "fattree", "dragonfly"}
	if topoKind != "" && topoKind != "all" {
		kinds = []string{topoKind}
	}
	results, err := runGrid(opts.runner(), len(kinds), func(i int) (*TopoResult, error) {
		cfg, err := ConfigFor(kinds[i], ranks)
		if err != nil {
			return nil, err
		}
		res, err := runTopology(a.Acc, cfg, mappingName, opts, opts.Span)
		if err != nil {
			return nil, fmt.Errorf("core: %s on %s%s: %w", name, cfg.Kind, cfg, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for i, kind := range kinds {
		switch kind {
		case "torus":
			a.Torus = results[i]
		case "fattree":
			a.FatTree = results[i]
		case "dragonfly":
			a.Dragonfly = results[i]
		case "slimfly":
			a.SlimFly = results[i]
		case "jellyfish":
			a.Jellyfish = results[i]
		case "hyperx":
			a.HyperX = results[i]
		}
	}
	a.Acc = nil
	return a, nil
}

// AnalyzeApp generates the synthetic trace for a workload configuration
// and analyzes it. With Options.Cache attached both the generated trace
// and the accumulated matrices are memoized, so a warm analysis skips
// straight to the metric and topology stages.
func AnalyzeApp(name string, ranks int, opts Options) (*Analysis, error) {
	app, err := workloads.Lookup(name)
	if err != nil {
		return nil, err
	}
	opts = opts.withEngine()
	acc, err := opts.Cache.Accumulated(opts.accKey(app.Name, ranks), func() (*comm.Accumulated, error) {
		t, err := generateTrace(app, ranks, opts)
		if err != nil {
			return nil, err
		}
		return accumulate(t, opts)
	})
	if err != nil {
		return nil, err
	}
	return AnalyzeAccumulated(acc, opts)
}

// accKey addresses an app's accumulated matrices in the artifact cache:
// the registry generator plus the two options that change matrix
// content (packet size, collective strategy). Coverage, parallelism,
// budgets, and spans never do and stay out.
func (o Options) accKey(app string, ranks int) workcache.AccKey {
	return workcache.AccKey{
		Source: workcache.SourceGenerate, App: app, Ranks: ranks,
		PacketSize: o.PacketSize, Strategy: o.Strategy,
	}
}

// generateTrace runs (or re-uses the cached result of) a registry app's
// exact-scale generator under a "generate" stage span. The span ends on
// every path, including a failing generator.
func generateTrace(app *workloads.App, ranks int, opts Options) (*trace.Trace, error) {
	k := workcache.TraceKey{Source: workcache.SourceGenerate, App: app.Name, Ranks: ranks}
	return opts.Cache.Trace(k, func() (*trace.Trace, error) {
		sp := opts.Span.Start("generate")
		defer sp.End()
		sp.SetLabel(fmt.Sprintf("%s/%d", app.Name, ranks))
		t, err := app.Generate(ranks)
		if err != nil {
			return nil, err
		}
		sp.Add("events", int64(len(t.Events)))
		return t, nil
	})
}

// ErrNoSuchExperiment is returned by RunExperiment for unknown IDs.
var ErrNoSuchExperiment = errors.New("core: unknown experiment")
