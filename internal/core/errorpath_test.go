package core

import (
	"strings"
	"testing"

	"netloc/internal/obs"
)

// assertSpansEnded walks a snapshot tree and fails on any span that was
// never End()ed — the leak the error paths used to have when spans were
// closed manually on each branch instead of by defer.
func assertSpansEnded(t *testing.T, d obs.SpanData, path string) {
	t.Helper()
	name := path + "/" + d.Name
	if !d.Ended {
		t.Errorf("span %s was never ended", name)
	}
	for _, c := range d.Children {
		assertSpansEnded(t, c, name)
	}
}

// TestSpansEndOnErrorPaths runs pipelines into failing workloads
// (LULESH at 7 ranks has no configured scale, so generation errors mid
// grid) and asserts every recorded span was terminated: an error must
// not leave half-open spans in the debug ring.
func TestSpansEndOnErrorPaths(t *testing.T) {
	tr := obs.NewTracer(4)

	root := tr.StartRun("simtable-error")
	if _, err := SimTable([]WorkloadRef{{App: "LULESH", Ranks: 64}, {App: "LULESH", Ranks: 7}}, Options{Span: root}); err == nil {
		t.Fatal("SimTable with an ungeneratable workload succeeded")
	}
	root.End()
	assertSpansEnded(t, root.Data(), "")

	root = tr.StartRun("analyze-error")
	if _, err := AnalyzeApp("LULESH", 7, Options{Span: root}); err == nil {
		t.Fatal("AnalyzeApp at an unconfigured scale succeeded")
	}
	root.End()
	assertSpansEnded(t, root.Data(), "")
}

// TestFigure3MaxRanksCap pins the two cap behaviors: a cap below every
// configured scale is a loud, listing error; a cap that only excludes
// some workloads returns the reachable curves (documented omission, the
// way the paper's figure simply lacks a curve for an unreached scale).
func TestFigure3MaxRanksCap(t *testing.T) {
	// The smallest configured scale in the registry is AMG/8, so a cap
	// of 4 excludes every workload.
	_, err := Figure3(Options{MaxRanks: 4})
	if err == nil {
		t.Fatal("Figure3 with MaxRanks 4 returned no error")
	}
	if !strings.Contains(err.Error(), "MaxRanks 4 excludes every workload") ||
		!strings.Contains(err.Error(), "smallest configured scale: 8") {
		t.Fatalf("Figure3 cap error = %q, want the excludes-every-workload listing", err)
	}

	curves, err := Figure3(Options{MaxRanks: 128})
	if err != nil {
		t.Fatalf("Figure3 with a partial cap: %v", err)
	}
	if len(curves) == 0 {
		t.Fatal("partial cap returned no curves")
	}
	apps := map[string]bool{}
	for _, c := range curves {
		if c.Ranks > 128 {
			t.Errorf("%s/%d exceeds the cap", c.App, c.Ranks)
		}
		apps[c.App] = true
	}
	// PARTISN's only configured scale is 168 ranks, so a 128 cap omits
	// it (documented behavior) without failing the whole figure.
	if apps["PARTISN"] {
		t.Error("PARTISN (only scale 168) should be omitted under MaxRanks 128")
	}
}

// TestFigure4MaxRanksCap: same contract for the single-app scaling
// figure — the caller named the app, so a cap excluding all of its
// scales errors with the configured list, while a partial cap returns
// the admissible prefix.
func TestFigure4MaxRanksCap(t *testing.T) {
	// LULESH is configured at 64 and 512 ranks only.
	_, err := Figure4("LULESH", Options{MaxRanks: 8})
	if err == nil {
		t.Fatal("Figure4 with MaxRanks 8 returned no error")
	}
	if !strings.Contains(err.Error(), "MaxRanks 8 excludes every LULESH configuration") ||
		!strings.Contains(err.Error(), "64") {
		t.Fatalf("Figure4 cap error = %q, want the configured-scales listing", err)
	}

	curves, err := Figure4("LULESH", Options{MaxRanks: 64})
	if err != nil {
		t.Fatalf("Figure4 with a partial cap: %v", err)
	}
	if len(curves) != 1 || curves[0].Ranks != 64 {
		t.Fatalf("partial cap curves = %+v, want exactly LULESH/64", curves)
	}
}
