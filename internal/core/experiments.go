package core

import (
	"fmt"
	"sort"

	"netloc/internal/metrics"
	"netloc/internal/netmodel"
	"netloc/internal/topology"
	"netloc/internal/workloads"
)

// WorkloadRef names one (application, rank count) configuration.
type WorkloadRef struct {
	App   string
	Ranks int
}

// AllConfigurations lists every configuration of the study in table order
// (alphabetical app, ascending ranks).
func AllConfigurations() []WorkloadRef {
	var out []WorkloadRef
	for _, a := range workloads.All() {
		for _, r := range a.RankCounts() {
			out = append(out, WorkloadRef{App: a.Name, Ranks: r})
		}
	}
	return out
}

// Table1Row is one row of the paper's Table 1 (workload overview).
type Table1Row struct {
	App      string
	Star     bool
	Ranks    int
	TimeS    float64
	VolMB    float64
	P2PPct   float64
	CollPct  float64
	RateMBps float64
}

// Table1 regenerates the workload-overview table by generating and
// accounting every synthetic trace. Options.MaxRanks caps the grid;
// Options.Parallelism fans the configurations out over the worker
// budget (rows keep table order).
func Table1(opts Options) ([]Table1Row, error) {
	opts = opts.withEngine()
	type cfg struct {
		app   *workloads.App
		ranks int
	}
	var cfgs []cfg
	for _, app := range workloads.All() {
		for _, ranks := range app.RankCounts() {
			if opts.withinCap(ranks) {
				cfgs = append(cfgs, cfg{app: app, ranks: ranks})
			}
		}
	}
	return runGrid(opts.runner(), len(cfgs), func(i int) (Table1Row, error) {
		app, ranks := cfgs[i].app, cfgs[i].ranks
		cell := opts.Span.Start("cell")
		cell.SetLabel(fmt.Sprintf("%s/%d", app.Name, ranks))
		defer cell.End()
		o := opts
		o.Span = cell
		t, err := generateTrace(app, ranks, o)
		if err != nil {
			return Table1Row{}, err
		}
		p2p, coll := t.TotalBytes()
		total := float64(p2p + coll)
		row := Table1Row{
			App:   app.Name,
			Star:  app.Star,
			Ranks: ranks,
			TimeS: t.Meta.WallTime,
			VolMB: total / 1e6,
		}
		if total > 0 {
			row.P2PPct = 100 * float64(p2p) / total
			row.CollPct = 100 - row.P2PPct
		}
		if t.Meta.WallTime > 0 {
			row.RateMBps = row.VolMB / t.Meta.WallTime
		}
		return row, nil
	})
}

// Table2Row is one row of the topology-configuration table.
type Table2Row struct {
	Size      int
	Torus     topology.Config
	FatTree   topology.Config
	Dragonfly topology.Config
}

// Table2 regenerates the topology configuration table for the paper's
// size ladder. Options.MaxRanks caps the ladder.
func Table2(opts Options) ([]Table2Row, error) {
	var rows []Table2Row
	for _, size := range topology.PaperSizes() {
		if !opts.withinCap(size) {
			continue
		}
		tor, ft, df, err := topology.Configs(size)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{Size: size, Torus: tor, FatTree: ft, Dragonfly: df})
	}
	return rows, nil
}

// Table3 runs the full characterization (MPI-level metrics plus all three
// topologies) for every configuration. The grid fans out over the
// worker budget; rows stay in table order regardless of Parallelism.
func Table3(opts Options) ([]*Analysis, error) {
	opts = opts.withEngine()
	var refs []WorkloadRef
	for _, ref := range AllConfigurations() {
		if opts.withinCap(ref.Ranks) {
			refs = append(refs, ref)
		}
	}
	return runGrid(opts.runner(), len(refs), func(i int) (*Analysis, error) {
		ref := refs[i]
		cell := opts.Span.Start("cell")
		cell.SetLabel(fmt.Sprintf("%s/%d", ref.App, ref.Ranks))
		defer cell.End()
		o := opts
		o.Span = cell
		a, err := AnalyzeApp(ref.App, ref.Ranks, o)
		if err != nil {
			return nil, fmt.Errorf("core: %s/%d: %w", ref.App, ref.Ranks, err)
		}
		a.Acc = nil // release matrices; Table 3 only needs the scalars
		return a, nil
	})
}

// Table4Workloads lists the configurations of the dimensionality study.
var Table4Workloads = []WorkloadRef{
	{App: "AMG", Ranks: 216},
	{App: "AMG", Ranks: 1728},
	{App: "Boxlib CNS", Ranks: 64},
	{App: "Boxlib CNS", Ranks: 256},
	{App: "Boxlib CNS", Ranks: 1024},
	{App: "LULESH", Ranks: 64},
	{App: "LULESH", Ranks: 512},
	{App: "MultiGrid_C", Ranks: 125},
	{App: "MultiGrid_C", Ranks: 1000},
	{App: "PARTISN", Ranks: 168},
}

// Table4Row is one row of the dimensionality table: rank locality (in
// percent) under the best 1D, 2D, and 3D foldings.
type Table4Row struct {
	App    string
	Ranks  int
	Loc1D  float64
	Loc2D  float64
	Loc3D  float64
	Grid2D []int
	Grid3D []int
}

// Table4 regenerates the dimensionality study. Configurations fan out
// over the worker budget; within one configuration the candidate-grid
// sweep of each folding is parallelized too.
func Table4(opts Options) ([]Table4Row, error) {
	opts = opts.withEngine()
	q := opts.coverage()
	var refs []WorkloadRef
	for _, ref := range Table4Workloads {
		if opts.withinCap(ref.Ranks) {
			refs = append(refs, ref)
		}
	}
	eng := opts.engine()
	return runGrid(opts.runner(), len(refs), func(i int) (Table4Row, error) {
		ref := refs[i]
		cell := opts.Span.Start("cell")
		cell.SetLabel(fmt.Sprintf("%s/%d", ref.App, ref.Ranks))
		defer cell.End()
		o := opts
		o.SkipTopologies = true
		o.Span = cell
		a, err := AnalyzeApp(ref.App, ref.Ranks, o)
		if err != nil {
			return Table4Row{}, err
		}
		if !a.HasP2P {
			return Table4Row{}, fmt.Errorf("core: %s/%d has no p2p traffic for Table 4", ref.App, ref.Ranks)
		}
		row := Table4Row{App: ref.App, Ranks: ref.Ranks}
		r1, err := eng.DimLocality(a.Acc.P2P, 1, q)
		if err != nil {
			return Table4Row{}, err
		}
		r2, err := eng.DimLocality(a.Acc.P2P, 2, q)
		if err != nil {
			return Table4Row{}, err
		}
		r3, err := eng.DimLocality(a.Acc.P2P, 3, q)
		if err != nil {
			return Table4Row{}, err
		}
		row.Loc1D, row.Loc2D, row.Loc3D = r1.LocalityPct, r2.LocalityPct, r3.LocalityPct
		row.Grid2D, row.Grid3D = r2.Grid, r3.Grid
		return row, nil
	})
}

// Figure1 returns the sorted partner-volume curve of one rank (the paper
// uses LULESH rank 0).
func Figure1(app string, ranks, rank int, opts Options) ([]float64, error) {
	o := opts
	o.SkipTopologies = true
	a, err := AnalyzeApp(app, ranks, o)
	if err != nil {
		return nil, err
	}
	return metrics.PartnerCurve(a.Acc.P2P, rank)
}

// Figure3Curve is the mean cumulative traffic-share curve of one workload.
type Figure3Curve struct {
	App   string
	Ranks int
	// Shares[i] is the mean share of a rank's volume covered by its i+1
	// largest partners.
	Shares []float64
	// Selectivity is where the curve crosses the coverage threshold.
	Selectivity float64
}

// Figure3 computes the selectivity trend curves for all workloads at their
// largest configuration (the paper plots all workloads in one figure).
// Workloads fan out over the worker budget; pure-collective workloads
// are filtered in table order after the parallel phase.
//
// A workload whose smallest configuration exceeds Options.MaxRanks is
// omitted from the figure (the paper's figure simply has no curve for a
// scale the grid does not reach); when the cap excludes every workload
// the call fails with an error listing the smallest admissible cap
// instead of returning a silently empty figure.
func Figure3(opts Options) ([]Figure3Curve, error) {
	opts = opts.withEngine()
	o := opts
	o.SkipTopologies = true
	var refs []WorkloadRef
	smallest := 0
	for _, app := range workloads.All() {
		ranks := 0
		for _, r := range app.RankCounts() {
			if opts.withinCap(r) {
				ranks = r // largest configuration under the cap
			}
		}
		if min := app.RankCounts()[0]; smallest == 0 || min < smallest {
			smallest = min
		}
		if ranks > 0 {
			refs = append(refs, WorkloadRef{App: app.Name, Ranks: ranks})
		}
	}
	if len(refs) == 0 {
		return nil, fmt.Errorf("core: MaxRanks %d excludes every workload configuration (smallest configured scale: %d ranks)",
			opts.MaxRanks, smallest)
	}
	curves, err := runGrid(opts.runner(), len(refs), func(i int) (*Figure3Curve, error) {
		ref := refs[i]
		cell := opts.Span.Start("cell")
		cell.SetLabel(fmt.Sprintf("%s/%d", ref.App, ref.Ranks))
		defer cell.End()
		oc := o
		oc.Span = cell
		a, err := AnalyzeApp(ref.App, ref.Ranks, oc)
		if err != nil {
			return nil, err
		}
		if !a.HasP2P {
			return nil, nil // the paper's figure omits the pure-collective apps
		}
		shares, err := metrics.CumulativeCurve(a.Acc.P2P)
		if err != nil {
			return nil, err
		}
		return &Figure3Curve{
			App: ref.App, Ranks: ref.Ranks, Shares: shares, Selectivity: a.Selectivity,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var out []Figure3Curve
	for _, c := range curves {
		if c != nil {
			out = append(out, *c)
		}
	}
	return out, nil
}

// Figure4 computes the selectivity-scaling curves of one application
// across all its configurations (the paper shows AMG). A MaxRanks cap
// below the app's smallest configuration is an error listing the
// configured scales — the caller asked for this specific app, so an
// empty figure would silently hide the mismatch.
func Figure4(appName string, opts Options) ([]Figure3Curve, error) {
	app, err := workloads.Lookup(appName)
	if err != nil {
		return nil, err
	}
	opts = opts.withEngine()
	o := opts
	o.SkipTopologies = true
	var rankList []int
	for _, ranks := range app.RankCounts() {
		if opts.withinCap(ranks) {
			rankList = append(rankList, ranks)
		}
	}
	if len(rankList) == 0 {
		return nil, fmt.Errorf("core: MaxRanks %d excludes every %s configuration (configured: %v)",
			opts.MaxRanks, app.Name, app.RankCounts())
	}
	curves, err := runGrid(opts.runner(), len(rankList), func(i int) (*Figure3Curve, error) {
		ranks := rankList[i]
		cell := opts.Span.Start("cell")
		cell.SetLabel(fmt.Sprintf("%s/%d", appName, ranks))
		defer cell.End()
		oc := o
		oc.Span = cell
		a, err := AnalyzeApp(appName, ranks, oc)
		if err != nil {
			return nil, err
		}
		if !a.HasP2P {
			return nil, nil
		}
		shares, err := metrics.CumulativeCurve(a.Acc.P2P)
		if err != nil {
			return nil, err
		}
		return &Figure3Curve{
			App: appName, Ranks: ranks, Shares: shares, Selectivity: a.Selectivity,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var out []Figure3Curve
	for _, c := range curves {
		if c != nil {
			out = append(out, *c)
		}
	}
	return out, nil
}

// Figure5CoreCounts is the cores-per-socket sweep of the multi-core study.
var Figure5CoreCounts = []int{1, 2, 4, 8, 16, 32, 48}

// Figure5Series is the relative inter-node traffic of one workload.
type Figure5Series struct {
	App    string
	Ranks  int
	Cores  []int
	Shares []float64 // inter-node volume relative to 1 rank/node
}

// Figure5 runs the multi-core scaling study over every configuration with
// at least minRanks ranks (the paper uses 512: "smaller configurations are
// not considered since a problem size in the same magnitude as the number
// of cores would sophisticate scaling effects"). Traffic includes both
// point-to-point and collective messages.
func Figure5(minRanks int, opts Options) ([]Figure5Series, error) {
	opts = opts.withEngine()
	o := opts
	o.SkipTopologies = true
	var refs []WorkloadRef
	for _, ref := range AllConfigurations() {
		if ref.Ranks >= minRanks && opts.withinCap(ref.Ranks) {
			refs = append(refs, ref)
		}
	}
	return runGrid(opts.runner(), len(refs), func(i int) (Figure5Series, error) {
		ref := refs[i]
		cell := opts.Span.Start("cell")
		cell.SetLabel(fmt.Sprintf("%s/%d", ref.App, ref.Ranks))
		defer cell.End()
		oc := o
		oc.Span = cell
		a, err := AnalyzeApp(ref.App, ref.Ranks, oc)
		if err != nil {
			return Figure5Series{}, err
		}
		shares, err := netmodel.MultiCoreSeries(a.Acc.Wire, Figure5CoreCounts)
		if err != nil {
			return Figure5Series{}, err
		}
		return Figure5Series{
			App: ref.App, Ranks: ref.Ranks,
			Cores: append([]int(nil), Figure5CoreCounts...), Shares: shares,
		}, nil
	})
}

// Claims summarizes the paper's headline findings over the full grid.
type Claims struct {
	// Configurations analyzed (with p2p traffic for the selectivity
	// claim; all for utilization).
	P2PConfigs   int
	TotalConfigs int
	// SelectivityLE10Pct is the share of p2p configurations whose
	// selectivity is at most 10 (paper: ~89%).
	SelectivityLE10Pct float64
	// UtilizationLT1Pct is the share of (configuration, topology) cells
	// with utilization below 1% (paper: ~93%).
	UtilizationLT1Pct float64
	// DragonflyGlobalSharePct is the average share of messages crossing
	// a dragonfly global link (paper: ~95%).
	DragonflyGlobalSharePct float64
	// TorusWinsSmall / FatTreeWinsLarge count configurations where each
	// topology has the lowest average hops, split at 256 ranks (paper:
	// torus favorable below, fat tree above).
	TorusWinsSmall   int
	SmallConfigs     int
	FatTreeWinsLarge int
	LargeConfigs     int
	// MaxSelectivity is the largest mean selectivity seen (paper: 13 for
	// AMR at 1728 ranks, excluding the CNS outlier).
	MaxSelectivity    float64
	MaxSelectivityApp string
}

// SummarizeClaims derives the headline numbers from Table 3 rows.
func SummarizeClaims(rows []*Analysis) Claims {
	var c Claims
	var globalShares []float64
	utilCells, utilLow := 0, 0
	for _, a := range rows {
		c.TotalConfigs++
		if a.HasP2P {
			c.P2PConfigs++
			if a.Selectivity <= 10 {
				c.SelectivityLE10Pct++
			}
			if a.Selectivity > c.MaxSelectivity {
				c.MaxSelectivity = a.Selectivity
				c.MaxSelectivityApp = fmt.Sprintf("%s (%d ranks)", a.App, a.Ranks)
			}
		}
		for _, tr := range []*TopoResult{a.Torus, a.FatTree, a.Dragonfly} {
			if tr == nil {
				continue
			}
			utilCells++
			if tr.UtilizationPct < 1 {
				utilLow++
			}
		}
		if a.Dragonfly != nil {
			globalShares = append(globalShares, a.Dragonfly.GlobalMsgShare)
		}
		if a.Torus != nil && a.FatTree != nil && a.Dragonfly != nil {
			minHops := a.Torus.AvgHops
			winner := "torus"
			if a.FatTree.AvgHops < minHops {
				minHops = a.FatTree.AvgHops
				winner = "fattree"
			}
			if a.Dragonfly.AvgHops < minHops {
				winner = "dragonfly"
			}
			if a.Ranks < 256 {
				c.SmallConfigs++
				if winner == "torus" {
					c.TorusWinsSmall++
				}
			} else {
				c.LargeConfigs++
				if winner == "fattree" {
					c.FatTreeWinsLarge++
				}
			}
		}
	}
	if c.P2PConfigs > 0 {
		c.SelectivityLE10Pct = 100 * c.SelectivityLE10Pct / float64(c.P2PConfigs)
	}
	if utilCells > 0 {
		c.UtilizationLT1Pct = 100 * float64(utilLow) / float64(utilCells)
	}
	if len(globalShares) > 0 {
		var s float64
		for _, g := range globalShares {
			s += g
		}
		c.DragonflyGlobalSharePct = 100 * s / float64(len(globalShares))
	}
	return c
}

// SortAnalyses orders rows by app name then rank count (table order).
func SortAnalyses(rows []*Analysis) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].App != rows[j].App {
			return rows[i].App < rows[j].App
		}
		return rows[i].Ranks < rows[j].Ranks
	})
}
