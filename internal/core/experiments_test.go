package core

import (
	"math"
	"sort"
	"testing"
)

func TestAllConfigurations(t *testing.T) {
	refs := AllConfigurations()
	// 15 apps, 38 configurations total (Table 1 rows, duplicates merged).
	if len(refs) != 38 {
		t.Fatalf("configurations = %d, want 38", len(refs))
	}
	seen := map[WorkloadRef]bool{}
	for _, r := range refs {
		if seen[r] {
			t.Fatalf("duplicate configuration %+v", r)
		}
		seen[r] = true
	}
}

func TestTable1Regeneration(t *testing.T) {
	rows, err := Table1(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 38 {
		t.Fatalf("rows = %d, want 38", len(rows))
	}
	// Spot checks against the paper's Table 1.
	find := func(app string, ranks int) Table1Row {
		for _, r := range rows {
			if r.App == app && r.Ranks == ranks {
				return r
			}
		}
		t.Fatalf("row %s/%d missing", app, ranks)
		return Table1Row{}
	}
	amg := find("AMG", 1728)
	if math.Abs(amg.VolMB-1208) > 15 {
		t.Errorf("AMG-1728 volume = %v, want ~1208", amg.VolMB)
	}
	if amg.P2PPct < 99.99 {
		t.Errorf("AMG-1728 p2p = %v%%, want 100%%", amg.P2PPct)
	}
	fft := find("BigFFT", 100)
	if fft.CollPct < 99.99 {
		t.Errorf("BigFFT coll = %v%%, want 100%%", fft.CollPct)
	}
	if math.Abs(fft.RateMBps-6340) > 100 {
		t.Errorf("BigFFT-100 rate = %v, want ~6340", fft.RateMBps)
	}
	partisn := find("PARTISN", 168)
	if !partisn.Star {
		t.Error("PARTISN should carry the derived-datatype star")
	}
	if partisn.TimeS < 2e6 || partisn.TimeS > 2.2e6 {
		t.Errorf("PARTISN time = %v, want ~2.1e6", partisn.TimeS)
	}
}

func TestTable2Regeneration(t *testing.T) {
	rows, err := Table2(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 17 {
		t.Fatalf("rows = %d, want 17", len(rows))
	}
	if rows[0].Size != 8 || rows[0].Torus.String() != "(2,2,2)" {
		t.Errorf("first row = %+v", rows[0])
	}
	last := rows[len(rows)-1]
	if last.Size != 1728 || last.Dragonfly.String() != "(10,5,5)" || last.FatTree.Nodes != 13824 {
		t.Errorf("last row = %+v", last)
	}
}

// smallOpts keeps the grid tests fast: hop counting without link tracking.
var smallOpts = Options{SkipLinkTracking: true}

func TestTable4Dimensionality(t *testing.T) {
	rows, err := Table4(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Table4Workloads) {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[string]Table4Row{}
	for _, r := range rows {
		byKey[keyOf(r.App, r.Ranks)] = r
		// Locality never decreases when the folding dimensionality can
		// embed the lower one exactly; at minimum 3D >= 1D must hold for
		// these workloads per the paper ("locality improves for all
		// applications with the number of dimensions").
		if r.Loc3D < r.Loc1D {
			t.Errorf("%s/%d: 3D %v < 1D %v", r.App, r.Ranks, r.Loc3D, r.Loc1D)
		}
	}
	// AMG and LULESH are three-dimensional: 100% at 3D.
	for _, k := range []string{keyOf("AMG", 216), keyOf("LULESH", 64), keyOf("LULESH", 512)} {
		if byKey[k].Loc3D != 100 {
			t.Errorf("%s: 3D locality = %v, want 100", k, byKey[k].Loc3D)
		}
	}
	// PARTISN is two-dimensional: 2D locality peaks (at 100%) and beats
	// its 3D folding.
	p := byKey[keyOf("PARTISN", 168)]
	if p.Loc2D != 100 {
		t.Errorf("PARTISN 2D locality = %v, want 100", p.Loc2D)
	}
	if p.Loc2D <= p.Loc3D {
		t.Errorf("PARTISN 2D %v should beat 3D %v", p.Loc2D, p.Loc3D)
	}
	// CNS has no strict dimensional alignment: all below 100.
	c := byKey[keyOf("Boxlib CNS", 64)]
	if c.Loc3D >= 100 {
		t.Errorf("CNS 3D locality = %v, want < 100", c.Loc3D)
	}
}

func keyOf(app string, ranks int) string {
	return app + "/" + string(rune('0'+ranks/1000)) + string(rune('0'+(ranks/100)%10)) +
		string(rune('0'+(ranks/10)%10)) + string(rune('0'+ranks%10))
}

func TestFigure1LULESHRank0(t *testing.T) {
	curve, err := Figure1("LULESH", 64, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0 is a corner of the 4x4x4 grid: 7 partners (3 faces, 3
	// edges, 1 corner).
	if len(curve) != 7 {
		t.Fatalf("curve length = %d, want 7", len(curve))
	}
	if !sort.IsSorted(sort.Reverse(sort.Float64Slice(curve))) {
		t.Fatal("curve not descending")
	}
	if curve[0] <= curve[len(curve)-1] {
		t.Fatal("face volume should dominate corner volume")
	}
}

func TestFigure3Curves(t *testing.T) {
	curves, err := Figure3(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// All workloads with p2p traffic: 15 - BigFFT - CMC = 13.
	if len(curves) != 13 {
		t.Fatalf("curves = %d, want 13", len(curves))
	}
	for _, c := range curves {
		if len(c.Shares) == 0 {
			t.Fatalf("%s: empty curve", c.App)
		}
		for i := 1; i < len(c.Shares); i++ {
			if c.Shares[i] < c.Shares[i-1]-1e-9 {
				t.Fatalf("%s: curve not monotone", c.App)
			}
		}
		last := c.Shares[len(c.Shares)-1]
		if math.Abs(last-1) > 1e-9 {
			t.Fatalf("%s: curve ends at %v", c.App, last)
		}
		// The curve crosses 90% at the selectivity (mean vs curve are
		// different aggregations; allow slack of a few partners).
		cross := len(c.Shares)
		for i, s := range c.Shares {
			if s >= 0.9 {
				cross = i + 1
				break
			}
		}
		if math.Abs(float64(cross)-c.Selectivity) > 6 {
			t.Errorf("%s: curve crossing %d far from selectivity %v", c.App, cross, c.Selectivity)
		}
	}
}

func TestFigure4AMGSaturation(t *testing.T) {
	curves, err := Figure4("AMG", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 4 {
		t.Fatalf("curves = %d, want 4", len(curves))
	}
	// Selectivity grows with scale but saturates: each step increase is
	// no larger than the previous (the paper's Figure 4 story), and the
	// total spread stays small.
	sel := make([]float64, len(curves))
	for i, c := range curves {
		sel[i] = c.Selectivity
	}
	for i := 1; i < len(sel); i++ {
		if sel[i] < sel[i-1]-0.5 {
			t.Errorf("selectivity decreased: %v", sel)
		}
	}
	if sel[len(sel)-1] > 3*sel[0] {
		t.Errorf("no saturation: %v", sel)
	}
	if _, err := Figure4("NoSuchApp", Options{}); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestFigure5MultiCore(t *testing.T) {
	series, err := Figure5(512, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Configurations with >= 512 ranks: AMG 1728, AMR 1728, BigFFT 1024,
	// CNS 1024, BoxMG 1024, MOCFE 1024, Nekbone 1024, CMC 1024,
	// LULESH 512, FillBoundary 1000, MiniFE 1152, MultiGrid_C 1000,
	// Crystal Router 1000 = 13.
	if len(series) != 13 {
		t.Fatalf("series = %d, want 13", len(series))
	}
	for _, s := range series {
		if len(s.Shares) != len(Figure5CoreCounts) {
			t.Fatalf("%s: wrong length", s.App)
		}
		if math.Abs(s.Shares[0]-1) > 1e-12 {
			t.Errorf("%s: 1 core/node share = %v, want 1", s.App, s.Shares[0])
		}
		for i, sh := range s.Shares {
			if sh < 0 || sh > 1 {
				t.Errorf("%s: share[%d] = %v", s.App, i, sh)
			}
		}
		// Paper: saturation by 8-16 cores; beyond 16 the remaining
		// reduction is small for locality-bearing workloads. Assert the
		// weaker, universal property: shares at 48 cores <= shares at 1.
		if s.Shares[len(s.Shares)-1] > s.Shares[0] {
			t.Errorf("%s: inter-node traffic grew with cores", s.App)
		}
	}
}

func TestSummarizeClaimsOnSubset(t *testing.T) {
	var rows []*Analysis
	for _, ref := range []WorkloadRef{
		{"AMG", 8}, {"AMG", 27}, {"LULESH", 64}, {"Crystal Router", 10},
		{"BigFFT", 9}, {"MiniFE", 18},
	} {
		a, err := AnalyzeApp(ref.App, ref.Ranks, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, a)
	}
	c := SummarizeClaims(rows)
	if c.TotalConfigs != 6 || c.P2PConfigs != 5 {
		t.Fatalf("config counts: %+v", c)
	}
	// All these small workloads have selectivity <= 10.
	if c.SelectivityLE10Pct != 100 {
		t.Errorf("selectivity<=10 = %v%%", c.SelectivityLE10Pct)
	}
	// Torus wins every small configuration.
	if c.TorusWinsSmall != c.SmallConfigs {
		t.Errorf("torus wins %d of %d small configs", c.TorusWinsSmall, c.SmallConfigs)
	}
	if c.MaxSelectivity <= 0 {
		t.Error("max selectivity missing")
	}
}

func TestSortAnalyses(t *testing.T) {
	rows := []*Analysis{
		{App: "B", Ranks: 8}, {App: "A", Ranks: 64}, {App: "A", Ranks: 8},
	}
	SortAnalyses(rows)
	if rows[0].App != "A" || rows[0].Ranks != 8 || rows[2].App != "B" {
		t.Fatalf("sorted wrong: %+v", rows)
	}
}

func TestSimTableDefaults(t *testing.T) {
	rows, err := SimTable([]WorkloadRef{{App: "LULESH", Ranks: 64}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (one per topology)", len(rows))
	}
	kinds := map[string]bool{}
	for _, r := range rows {
		kinds[r.Topology] = true
		if r.Messages == 0 || r.MeanLatency <= 0 {
			t.Fatalf("empty stats: %+v", r)
		}
		if r.MeanQueueDelay < 0 {
			t.Fatalf("negative queue delay: %v", r.MeanQueueDelay)
		}
	}
	if !kinds["torus"] || !kinds["fattree"] || !kinds["dragonfly"] {
		t.Fatalf("kinds = %v", kinds)
	}
	if _, err := SimTable([]WorkloadRef{{App: "NoSuch", Ranks: 1}}, Options{}); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestScorecard(t *testing.T) {
	// Build a subset of rows covering several anchors.
	var rows []*Analysis
	for _, ref := range []WorkloadRef{
		{"LULESH", 64}, {"AMG", 216}, {"PARTISN", 168}, {"Crystal Router", 10}, {"AMG", 8},
	} {
		a, err := AnalyzeApp(ref.App, ref.Ranks, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, a)
	}
	card := Scorecard(rows)
	if len(card) < 8 {
		t.Fatalf("scorecard rows = %d", len(card))
	}
	byClaim := map[string]ScoreRow{}
	for _, r := range card {
		byClaim[r.Claim] = r
		if r.Verdict != "MATCH" && r.Verdict != "CLOSE" && r.Verdict != "DIFF" {
			t.Fatalf("bad verdict %q", r.Verdict)
		}
		if r.String() == "" {
			t.Fatal("empty row string")
		}
	}
	// Structural anchors must MATCH on these workloads.
	for _, claim := range []string{
		"LULESH/64 peers", "PARTISN/168 peers", "Crystal Router/10 peers",
		"AMG/216 rank distance", "LULESH/64 selectivity", "AMG/8 fat tree avg hops",
	} {
		r, ok := byClaim[claim]
		if !ok {
			t.Fatalf("missing anchor %q", claim)
		}
		if r.Verdict != "MATCH" {
			t.Errorf("%s: verdict %s (paper %v, measured %v)", claim, r.Verdict, r.Paper, r.Measured)
		}
	}
	match, closeN, diff := ScorecardSummary(card)
	if match+closeN+diff != len(card) {
		t.Fatal("summary counts do not add up")
	}
}

func TestVerdictBands(t *testing.T) {
	if v := verdict(100, 105, 10); v != "MATCH" {
		t.Errorf("5%% dev = %s", v)
	}
	if v := verdict(100, 125, 10); v != "CLOSE" {
		t.Errorf("25%% dev = %s", v)
	}
	if v := verdict(100, 200, 10); v != "DIFF" {
		t.Errorf("100%% dev = %s", v)
	}
	if v := verdict(0, 0, 10); v != "MATCH" {
		t.Errorf("0/0 = %s", v)
	}
	if v := verdict(0, 1, 10); v != "DIFF" {
		t.Errorf("0/1 = %s", v)
	}
}
