package core

import (
	"reflect"
	"testing"

	"netloc/internal/congest"
	"netloc/internal/workcache"
)

// testCongestionRefs keeps the grid small enough for quick test runs
// while still covering two communication families.
var testCongestionRefs = []WorkloadRef{
	{App: "LULESH", Ranks: 64},
	{App: "BigFFT", Ranks: 100},
}

func TestCongestionTableGrid(t *testing.T) {
	rows, err := CongestionTable(testCongestionRefs, nil, nil, 0, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Grid order: workload, topology, policy — 2 refs x 3 topologies x 4
	// policies.
	if want := 2 * 3 * 4; len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	policies := congest.Policies()
	topos := []string{"torus", "fattree", "dragonfly"}
	for i, r := range rows {
		ref := testCongestionRefs[i/12]
		if r.App != ref.App || r.Ranks != ref.Ranks {
			t.Fatalf("row %d: %s/%d, want %s/%d", i, r.App, r.Ranks, ref.App, ref.Ranks)
		}
		if want := topos[(i/4)%3]; r.Topology != want {
			t.Fatalf("row %d: topology %s, want %s", i, r.Topology, want)
		}
		if want := policies[i%4]; r.Policy != want {
			t.Fatalf("row %d: policy %s, want %s", i, r.Policy, want)
		}
		// The tolerance sweep rides only on the baseline rows.
		if r.Policy == congest.PolicyMinimal {
			if r.Tolerance == nil {
				t.Fatalf("row %d: baseline row missing tolerance sweep", i)
			}
		} else if r.Tolerance != nil {
			t.Fatalf("row %d: %s row carries a tolerance sweep", i, r.Policy)
		}
		if r.Messages == 0 || r.Makespan <= 0 {
			t.Fatalf("row %d: empty stats %+v", i, r.Stats)
		}
	}
}

// TestCongestionTableDeterministicAcrossWorkers pins the acceptance
// claim: the congestion grid is byte-identical at every worker count.
func TestCongestionTableDeterministicAcrossWorkers(t *testing.T) {
	seq, err := CongestionTable(testCongestionRefs, nil, nil, 0, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 16} {
		par, err := CongestionTable(testCongestionRefs, nil, nil, 0, Options{
			Parallelism: workers, Cache: workcache.New(0),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("congestion grid differs between Parallelism 1 and %d", workers)
		}
	}
}

func TestCongestionTableOptions(t *testing.T) {
	// A negative growth threshold disables the tolerance sweep entirely.
	rows, err := CongestionTable(testCongestionRefs[:1], nil, []string{congest.PolicyMinimal}, -1, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (one per topology)", len(rows))
	}
	for i, r := range rows {
		if r.Tolerance != nil {
			t.Fatalf("row %d: tolerance present with the sweep disabled", i)
		}
	}
	// MaxRanks caps the grid like every other experiment driver.
	rows, err = CongestionTable(testCongestionRefs, nil, []string{congest.PolicyMinimal}, -1, Options{Parallelism: 1, MaxRanks: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Ranks > 64 {
			t.Fatalf("MaxRanks 64 admitted %s/%d", r.App, r.Ranks)
		}
	}
	// Unknown policies surface congest's validation error.
	if _, err := CongestionTable(testCongestionRefs[:1], nil, []string{"psychic"}, -1, Options{Parallelism: 1}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestCongestionTableFamilies runs the grid on the extreme-scale
// families: the families argument replaces the paper trio and the rows
// keep grid order (workload, family, policy).
func TestCongestionTableFamilies(t *testing.T) {
	fams := []string{"slimfly", "jellyfish", "hyperx"}
	rows, err := CongestionTable(testCongestionRefs[:1], fams, []string{congest.PolicyMinimal}, -1, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(fams) {
		t.Fatalf("rows = %d, want %d", len(rows), len(fams))
	}
	for i, r := range rows {
		if r.Topology != fams[i] {
			t.Fatalf("row %d: topology %s, want %s", i, r.Topology, fams[i])
		}
		if r.Messages == 0 || r.Makespan <= 0 {
			t.Fatalf("row %d: empty stats %+v", i, r.Stats)
		}
	}
	// Unknown families fail fast with the listing error from ConfigFor.
	if _, err := CongestionTable(testCongestionRefs[:1], []string{"moebius"}, nil, -1, Options{Parallelism: 1}); err == nil {
		t.Fatal("unknown family accepted")
	}
}
