package energy

import (
	"math"
	"testing"

	"netloc/internal/comm"
	"netloc/internal/mapping"
	"netloc/internal/netmodel"
	"netloc/internal/topology"
)

func runModel(t *testing.T) (*netmodel.Result, int, float64, float64) {
	t.Helper()
	topo, err := topology.NewTorus(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := comm.NewMatrix(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	// One 1-hop message of 12 MB.
	if err := m.Add(0, 1, 12_000_000); err != nil {
		t.Fatal(err)
	}
	mp, err := mapping.Consecutive(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	const bw = 12e6 // 12 MB/s: the message busies its link for 1 s
	const wall = 10.0
	res, err := netmodel.Run(m, topo, mp, netmodel.Options{
		BandwidthBytesPerSec: bw, WallTime: wall, TrackLinks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, len(topo.Links()), wall, bw
}

func TestFromResultBasics(t *testing.T) {
	res, links, wall, bw := runModel(t)
	e, err := FromResult(res, links, wall, bw, Params{})
	if err != nil {
		t.Fatal(err)
	}
	// 12 links x 2 W x 10 s = 240 J static.
	if e.StaticJoules != 240 {
		t.Fatalf("static = %v, want 240", e.StaticJoules)
	}
	// Only 1 link used: 20 J.
	if e.StaticUsedJoules != 20 {
		t.Fatalf("static used = %v, want 20", e.StaticUsedJoules)
	}
	// Dynamic: 12 MB x 1 hop x 5e-9 J/B = 0.06 J.
	if math.Abs(e.DynamicJoules-0.06) > 1e-9 {
		t.Fatalf("dynamic = %v, want 0.06", e.DynamicJoules)
	}
	if math.Abs(e.TotalJoules-240.06) > 1e-9 {
		t.Fatalf("total = %v", e.TotalJoules)
	}
	// Busy time: 1 link-second of 120 total link-seconds; idle share
	// (240 - 2)/240.06.
	wantIdle := (240.0 - 2.0) / 240.06
	if math.Abs(e.IdleShare-wantIdle) > 1e-9 {
		t.Fatalf("idle share = %v, want %v", e.IdleShare, wantIdle)
	}
}

func TestFromResultBandwidthScaling(t *testing.T) {
	res, links, wall, bw := runModel(t)
	e, err := FromResult(res, links, wall, bw, Params{})
	if err != nil {
		t.Fatal(err)
	}
	// Busiest link: 12 MB over 10 s at 12 MB/s capacity -> needs 10% of
	// the bandwidth.
	if math.Abs(e.ScaleFraction-0.1) > 1e-9 {
		t.Fatalf("scale fraction = %v, want 0.1", e.ScaleFraction)
	}
	// Static power scales with f^2 = 0.01: 2.4 J + 0.06 J dynamic.
	if math.Abs(e.ScaledJoules-(240*0.01+0.06)) > 1e-9 {
		t.Fatalf("scaled = %v", e.ScaledJoules)
	}
	if e.ScaledJoules >= e.TotalJoules {
		t.Fatal("scaling should save energy at low utilization")
	}
}

func TestFromResultCustomParams(t *testing.T) {
	res, links, wall, bw := runModel(t)
	e, err := FromResult(res, links, wall, bw, Params{
		StaticWattsPerLink:   1,
		DynamicJoulesPerByte: 1e-9,
		FrequencyExponent:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.StaticJoules != 120 {
		t.Fatalf("static = %v, want 120", e.StaticJoules)
	}
	if math.Abs(e.ScaledJoules-(120*0.001+0.012)) > 1e-9 {
		t.Fatalf("scaled with cubic exponent = %v", e.ScaledJoules)
	}
}

func TestFromResultValidation(t *testing.T) {
	res, links, wall, bw := runModel(t)
	if _, err := FromResult(res, links, 0, bw, Params{}); err == nil {
		t.Fatal("zero wall time accepted")
	}
	if _, err := FromResult(res, links, wall, 0, Params{}); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	if _, err := FromResult(res, 0, wall, bw, Params{}); err == nil {
		t.Fatal("total links below used accepted")
	}
	noLinks := &netmodel.Result{}
	if _, err := FromResult(noLinks, 10, wall, bw, Params{}); err == nil {
		t.Fatal("missing link accounting accepted")
	}
}

func TestScaleFractionClamped(t *testing.T) {
	// A link busier than the wall time allows clamps the fraction to 1.
	topo, err := topology.NewTorus(2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := comm.NewMatrix(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Add(0, 1, 1000); err != nil {
		t.Fatal(err)
	}
	mp, err := mapping.Consecutive(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := netmodel.Run(m, topo, mp, netmodel.Options{
		BandwidthBytesPerSec: 10, WallTime: 1, TrackLinks: true, // 1000 B over a 10 B/s link
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := FromResult(res, 1, 1, 10, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if e.ScaleFraction != 1 {
		t.Fatalf("fraction = %v, want 1 (clamped)", e.ScaleFraction)
	}
	if e.ScaledJoules != e.TotalJoules {
		t.Fatalf("no savings possible: %v vs %v", e.ScaledJoules, e.TotalJoules)
	}
}

func TestPowHelper(t *testing.T) {
	if pow(0.5, 1) != 0.5 || pow(0.5, 2) != 0.25 || pow(0.5, 3) != 0.125 {
		t.Fatal("integer pow wrong")
	}
	// Fractional exponent path is a coarse interpolation; just check
	// monotonicity and range.
	v := pow(0.5, 2.5)
	if v <= 0 || v > 0.25 {
		t.Fatalf("pow(0.5, 2.5) = %v", v)
	}
}
