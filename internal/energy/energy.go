// Package energy estimates interconnect energy from the static network
// model, following the paper's discussion: current interconnects consume
// power statically at all times (the SerDes dominate at ~85% of switch
// power, and links burn power whether or not they transmit), so the very
// low utilizations of Table 3 translate directly into wasted energy. The
// package quantifies that waste and evaluates the two remedies the paper
// sketches — powering down unused links, and operating links at reduced
// bandwidth ("reducing the operating frequency should super-linearly
// decrease power consumption").
package energy

import (
	"fmt"

	"netloc/internal/netmodel"
)

// Params describes the link power model.
type Params struct {
	// StaticWattsPerLink is the always-on power of one link's SerDes and
	// line drivers. Defaults to 2 W, a representative figure for a
	// 100 Gb/s-class port.
	StaticWattsPerLink float64
	// DynamicJoulesPerByte is the additional energy to move one byte
	// across one link. Defaults to 5e-9 J/B (~5 pJ/bit at 8 bits with
	// margin), small against static power at low utilization.
	DynamicJoulesPerByte float64
	// FrequencyExponent models how link power scales when the operating
	// bandwidth is reduced to a fraction f: power multiplies by
	// f^FrequencyExponent. The paper expects super-linear savings;
	// defaults to 2 (voltage-frequency scaling).
	FrequencyExponent float64
}

func (p Params) withDefaults() Params {
	if p.StaticWattsPerLink == 0 {
		p.StaticWattsPerLink = 2
	}
	if p.DynamicJoulesPerByte == 0 {
		p.DynamicJoulesPerByte = 5e-9
	}
	if p.FrequencyExponent == 0 {
		p.FrequencyExponent = 2
	}
	return p
}

// Estimate is the energy breakdown of one workload run on one topology.
type Estimate struct {
	// StaticJoules is the always-on energy of all provisioned links over
	// the execution time.
	StaticJoules float64
	// StaticUsedJoules is the static energy of only the links that carry
	// traffic (the paper's "only links that are actually transmitting
	// data" accounting, and the savings bound of link power-down).
	StaticUsedJoules float64
	// DynamicJoules is the traffic-proportional energy (byte-hops).
	DynamicJoules float64
	// TotalJoules is StaticJoules + DynamicJoules.
	TotalJoules float64
	// IdleShare is the fraction of total energy burned by links while
	// not transmitting — the waste the paper's discussion highlights.
	IdleShare float64
	// ScaledJoules is the total energy when every link runs at the
	// minimum bandwidth fraction that still carries the traffic
	// (bounded below by the busiest link's utilization), with static
	// power scaled by f^FrequencyExponent.
	ScaledJoules float64
	// ScaleFraction is that minimum bandwidth fraction.
	ScaleFraction float64
}

// FromResult derives an energy estimate from a network-model result. The
// result must have been produced with link tracking enabled; wallTime and
// bandwidth must match the model run.
func FromResult(res *netmodel.Result, totalLinks int, wallTime, bandwidth float64, p Params) (*Estimate, error) {
	if res.LinkBytes == nil {
		return nil, fmt.Errorf("energy: result lacks link accounting (run with TrackLinks)")
	}
	if totalLinks < res.UsedLinks {
		return nil, fmt.Errorf("energy: total links %d below used links %d", totalLinks, res.UsedLinks)
	}
	if wallTime <= 0 {
		return nil, fmt.Errorf("energy: non-positive wall time %v", wallTime)
	}
	if bandwidth <= 0 {
		return nil, fmt.Errorf("energy: non-positive bandwidth %v", bandwidth)
	}
	p = p.withDefaults()

	e := &Estimate{
		StaticJoules:     p.StaticWattsPerLink * wallTime * float64(totalLinks),
		StaticUsedJoules: p.StaticWattsPerLink * wallTime * float64(res.UsedLinks),
		DynamicJoules:    p.DynamicJoulesPerByte * float64(res.ByteHops),
	}
	e.TotalJoules = e.StaticJoules + e.DynamicJoules
	if e.TotalJoules > 0 {
		// Idle static energy: static energy minus the static share of
		// the time links actually transmit.
		var busySeconds float64
		for _, b := range res.LinkBytes {
			busySeconds += float64(b) / bandwidth
		}
		busyStatic := p.StaticWattsPerLink * busySeconds
		if busyStatic > e.StaticJoules {
			busyStatic = e.StaticJoules
		}
		e.IdleShare = (e.StaticJoules - busyStatic) / e.TotalJoules
	}

	// Minimum uniform bandwidth fraction: the busiest link must still
	// fit its traffic within the execution time.
	var maxLink uint64
	for _, b := range res.LinkBytes {
		if b > maxLink {
			maxLink = b
		}
	}
	need := float64(maxLink) / (bandwidth * wallTime)
	if need > 1 {
		need = 1
	}
	if need <= 0 {
		need = 0
	}
	e.ScaleFraction = need
	e.ScaledJoules = e.StaticJoules*pow(need, p.FrequencyExponent) + e.DynamicJoules
	return e, nil
}

// pow computes x^y for small positive y without importing math for the
// common integer cases; falls back to exp/ln via the math package
// otherwise. (Kept trivial: y is 1..3 in practice.)
func pow(x, y float64) float64 {
	switch y {
	case 1:
		return x
	case 2:
		return x * x
	case 3:
		return x * x * x
	}
	// Rare path: integer-ish exponent loop.
	r := 1.0
	n := int(y)
	for i := 0; i < n; i++ {
		r *= x
	}
	frac := y - float64(n)
	if frac > 0 {
		// Linear interpolation between x^n and x^(n+1) — adequate for a
		// coarse energy model and avoids a math dependency here.
		r *= 1 + frac*(x-1)
	}
	return r
}
