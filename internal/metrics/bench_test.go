package metrics

import (
	"testing"

	"netloc/internal/comm"
)

func benchMatrix(b *testing.B, ranks int) *comm.Matrix {
	b.Helper()
	m, err := comm.NewMatrix(ranks, 0)
	if err != nil {
		b.Fatal(err)
	}
	for r := 0; r < ranks; r++ {
		for k := 1; k <= 26; k++ {
			if err := m.Add(r, (r+k*3)%ranks, uint64(100000/k)); err != nil {
				b.Fatal(err)
			}
		}
	}
	return m
}

func BenchmarkRankDistance(b *testing.B) {
	m := benchMatrix(b, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RankDistance(m, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectivity(b *testing.B) {
	m := benchMatrix(b, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Selectivity(m, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPeers(b *testing.B) {
	m := benchMatrix(b, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		peak, _ := Peers(m)
		if peak == 0 {
			b.Fatal("no peers")
		}
	}
}

func BenchmarkDimLocality3D(b *testing.B) {
	m := benchMatrix(b, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DimLocality(m, 3, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCumulativeCurve(b *testing.B) {
	m := benchMatrix(b, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CumulativeCurve(m); err != nil {
			b.Fatal(err)
		}
	}
}
