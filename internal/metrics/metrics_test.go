package metrics

import (
	"math"
	"testing"

	"netloc/internal/comm"
)

func newMatrix(t *testing.T, ranks int) *comm.Matrix {
	t.Helper()
	m, err := comm.NewMatrix(ranks, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func add(t *testing.T, m *comm.Matrix, src, dst int, bytes uint64) {
	t.Helper()
	if err := m.Add(src, dst, bytes); err != nil {
		t.Fatal(err)
	}
}

func TestPeers(t *testing.T) {
	m := newMatrix(t, 6)
	add(t, m, 0, 1, 10)
	add(t, m, 0, 2, 10)
	add(t, m, 0, 3, 10)
	add(t, m, 1, 0, 10)
	peak, per := Peers(m)
	if peak != 3 {
		t.Fatalf("peak = %d, want 3", peak)
	}
	if per[0] != 3 || per[1] != 1 || per[2] != 0 {
		t.Fatalf("perRank = %v", per)
	}
}

func TestPeersCountsDistinctDestinationsOnce(t *testing.T) {
	m := newMatrix(t, 4)
	add(t, m, 0, 1, 10)
	add(t, m, 0, 1, 20) // same pair again
	peak, _ := Peers(m)
	if peak != 1 {
		t.Fatalf("peak = %d, want 1", peak)
	}
}

func TestRankDistanceNearestNeighbor(t *testing.T) {
	// Pure ±1 neighbor traffic: every rank's d90 is 1.
	m := newMatrix(t, 8)
	for r := 0; r < 8; r++ {
		if r+1 < 8 {
			add(t, m, r, r+1, 100)
		}
		if r-1 >= 0 {
			add(t, m, r, r-1, 100)
		}
	}
	d, err := RankDistance(m, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Fatalf("RankDistance = %v, want 1", d)
	}
	loc, err := RankLocality(m, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if loc != 100 {
		t.Fatalf("RankLocality = %v, want 100", loc)
	}
}

func TestRankDistanceCoverageRule(t *testing.T) {
	// Rank 0: 85% to rank 1 (d=1), 10% to rank 3 (d=3), 5% to rank 7 (d=7).
	// 90% coverage needs d=3.
	m := newMatrix(t, 8)
	add(t, m, 0, 1, 85)
	add(t, m, 0, 3, 10)
	add(t, m, 0, 7, 5)
	d, err := RankDistance(m, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if d != 3 {
		t.Fatalf("RankDistance = %v, want 3", d)
	}
	// With full coverage the farthest partner counts.
	d, err = RankDistance(m, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if d != 7 {
		t.Fatalf("RankDistance(1.0) = %v, want 7", d)
	}
}

func TestRankDistanceAveragesOverRanks(t *testing.T) {
	m := newMatrix(t, 10)
	add(t, m, 0, 1, 100) // d90 = 1
	add(t, m, 5, 9, 100) // d90 = 4
	d, err := RankDistance(m, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if d != 2.5 {
		t.Fatalf("RankDistance = %v, want 2.5", d)
	}
}

func TestRankDistanceIgnoresSilentRanks(t *testing.T) {
	m := newMatrix(t, 100)
	add(t, m, 0, 1, 100)
	d, err := RankDistance(m, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Fatalf("RankDistance = %v, want 1", d)
	}
}

func TestRankDistanceNoTraffic(t *testing.T) {
	m := newMatrix(t, 4)
	if _, err := RankDistance(m, 0.9); err != ErrNoTraffic {
		t.Fatalf("err = %v, want ErrNoTraffic", err)
	}
	if _, err := RankLocality(m, 0.9); err != ErrNoTraffic {
		t.Fatalf("err = %v, want ErrNoTraffic", err)
	}
	if _, err := Selectivity(m, 0.9); err != ErrNoTraffic {
		t.Fatalf("err = %v, want ErrNoTraffic", err)
	}
	if _, err := CumulativeCurve(m); err != ErrNoTraffic {
		t.Fatalf("err = %v, want ErrNoTraffic", err)
	}
}

func TestCoverageValidation(t *testing.T) {
	m := newMatrix(t, 4)
	add(t, m, 0, 1, 1)
	for _, q := range []float64{0, -0.5, 1.5, math.NaN()} {
		if _, err := RankDistance(m, q); err == nil {
			t.Errorf("RankDistance(q=%v) should fail", q)
		}
		if _, err := Selectivity(m, q); err == nil {
			t.Errorf("Selectivity(q=%v) should fail", q)
		}
		if _, err := DimLocality(m, 2, q); err == nil {
			t.Errorf("DimLocality(q=%v) should fail", q)
		}
	}
}

func TestSelectivityDominantPartner(t *testing.T) {
	// One partner carries 95% of rank 0's traffic: selectivity 1.
	m := newMatrix(t, 8)
	add(t, m, 0, 5, 95)
	add(t, m, 0, 1, 5)
	s, err := Selectivity(m, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 {
		t.Fatalf("Selectivity = %v, want 1", s)
	}
}

func TestSelectivityUniformPartners(t *testing.T) {
	// Rank 0 sends equally to 5 partners: 90% needs ceil(0.9*5)=5 of them
	// (4 cover only 80%).
	m := newMatrix(t, 8)
	for d := 1; d <= 5; d++ {
		add(t, m, 0, d, 100)
	}
	s, err := Selectivity(m, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if s != 5 {
		t.Fatalf("Selectivity = %v, want 5", s)
	}
}

func TestSelectivityAveragesOverRanks(t *testing.T) {
	m := newMatrix(t, 8)
	add(t, m, 0, 1, 100) // selectivity 1
	add(t, m, 1, 0, 50)  // selectivity 2 (equal split)
	add(t, m, 1, 2, 50)
	s, err := Selectivity(m, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if s != 1.5 {
		t.Fatalf("Selectivity = %v, want 1.5", s)
	}
}

func TestSelectivityNeverExceedsPeers(t *testing.T) {
	m := newMatrix(t, 16)
	// Arbitrary pattern.
	for r := 0; r < 16; r++ {
		for k := 1; k <= 4; k++ {
			add(t, m, r, (r+k*3)%16, uint64(100/k))
		}
	}
	per, err := PerRankSelectivity(m, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	_, peers := Peers(m)
	for r := range per {
		if per[r] > peers[r] {
			t.Fatalf("rank %d selectivity %d > peers %d", r, per[r], peers[r])
		}
	}
}

func TestPartnerCurve(t *testing.T) {
	m := newMatrix(t, 8)
	add(t, m, 0, 3, 10)
	add(t, m, 0, 1, 30)
	add(t, m, 0, 6, 20)
	curve, err := PartnerCurve(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{30, 20, 10}
	if len(curve) != 3 {
		t.Fatalf("len = %d", len(curve))
	}
	for i := range want {
		if curve[i] != want[i] {
			t.Fatalf("curve = %v, want %v", curve, want)
		}
	}
	if _, err := PartnerCurve(m, 100); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	empty, err := PartnerCurve(m, 5)
	if err != nil || len(empty) != 0 {
		t.Fatalf("silent rank curve = %v, %v", empty, err)
	}
}

func TestCumulativeCurve(t *testing.T) {
	m := newMatrix(t, 4)
	// Rank 0: 80/20 -> [0.8, 1.0]. Rank 1: 100 -> [1.0] padded to [1.0, 1.0].
	add(t, m, 0, 1, 80)
	add(t, m, 0, 2, 20)
	add(t, m, 1, 0, 100)
	curve, err := CumulativeCurve(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 2 {
		t.Fatalf("len = %d, want 2", len(curve))
	}
	if math.Abs(curve[0]-0.9) > 1e-12 || math.Abs(curve[1]-1.0) > 1e-12 {
		t.Fatalf("curve = %v, want [0.9 1.0]", curve)
	}
	// Monotone non-decreasing, ends at 1.
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Fatal("curve not monotone")
		}
	}
}

func TestPerRankDistanceNaNForSilent(t *testing.T) {
	m := newMatrix(t, 3)
	add(t, m, 0, 1, 5)
	per, err := PerRankDistance(m, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if per[0] != 1 {
		t.Fatalf("per[0] = %v", per[0])
	}
	if !math.IsNaN(per[1]) || !math.IsNaN(per[2]) {
		t.Fatalf("silent ranks should be NaN: %v", per)
	}
}
