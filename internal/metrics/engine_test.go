package metrics

import (
	"math"
	"math/rand"
	"testing"

	"netloc/internal/comm"
	"netloc/internal/parallel"
)

// randomMatrix builds a dense-ish random traffic matrix whose per-rank
// metric values exercise all code paths (silent ranks included).
func randomMatrix(t *testing.T, ranks int) *comm.Matrix {
	t.Helper()
	m := newMatrix(t, ranks)
	rng := rand.New(rand.NewSource(42))
	for src := 0; src < ranks; src++ {
		if src%7 == 6 {
			continue // leave some ranks silent (NaN paths)
		}
		partners := 1 + rng.Intn(ranks/2)
		for p := 0; p < partners; p++ {
			dst := (src + 1 + rng.Intn(ranks-1)) % ranks
			add(t, m, src, dst, uint64(1+rng.Intn(100000)))
		}
	}
	return m
}

func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] && !(math.IsNaN(a[i]) && math.IsNaN(b[i])) {
			return false
		}
	}
	return true
}

// TestEngineParallelMatchesSequential pins the engine's central promise:
// every metric is bit-identical under any worker count, because result
// slices are index-addressed and float reductions run sequentially in
// index order.
func TestEngineParallelMatchesSequential(t *testing.T) {
	m := randomMatrix(t, 96)
	seq := Engine{} // zero value: sequential
	for _, workers := range []int{2, 3, 8} {
		par := Engine{Run: parallel.New(workers)}

		seqPer, err1 := seq.PerRankDistance(m, 0.9)
		parPer, err2 := par.PerRankDistance(m, 0.9)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !sameFloats(seqPer, parPer) {
			t.Fatalf("workers=%d: PerRankDistance differs", workers)
		}

		seqD, err1 := seq.RankDistance(m, 0.9)
		parD, err2 := par.RankDistance(m, 0.9)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if seqD != parD {
			t.Fatalf("workers=%d: RankDistance %v != %v", workers, parD, seqD)
		}

		seqL, err1 := seq.RankLocality(m, 0.9)
		parL, err2 := par.RankLocality(m, 0.9)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if seqL != parL {
			t.Fatalf("workers=%d: RankLocality %v != %v", workers, parL, seqL)
		}

		seqSel, err1 := seq.PerRankSelectivity(m, 0.9)
		parSel, err2 := par.PerRankSelectivity(m, 0.9)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		for i := range seqSel {
			if seqSel[i] != parSel[i] {
				t.Fatalf("workers=%d: PerRankSelectivity[%d] %d != %d", workers, i, parSel[i], seqSel[i])
			}
		}

		seqS, err1 := seq.Selectivity(m, 0.9)
		parS, err2 := par.Selectivity(m, 0.9)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if seqS != parS {
			t.Fatalf("workers=%d: Selectivity %v != %v", workers, parS, seqS)
		}

		for dims := 1; dims <= 3; dims++ {
			seqDim, err1 := seq.DimLocality(m, dims, 0.9)
			parDim, err2 := par.DimLocality(m, dims, 0.9)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if seqDim.Distance != parDim.Distance || seqDim.LocalityPct != parDim.LocalityPct {
				t.Fatalf("workers=%d dims=%d: DimLocality %+v != %+v", workers, dims, parDim, seqDim)
			}
			if len(seqDim.Grid) != len(parDim.Grid) {
				t.Fatalf("workers=%d dims=%d: grid rank differs", workers, dims)
			}
			for i := range seqDim.Grid {
				if seqDim.Grid[i] != parDim.Grid[i] {
					t.Fatalf("workers=%d dims=%d: grid %v != %v", workers, dims, parDim.Grid, seqDim.Grid)
				}
			}
		}
	}
}

func TestPackageFuncsMatchZeroEngine(t *testing.T) {
	m := randomMatrix(t, 24)
	fromPkg, err1 := RankDistance(m, 0.9)
	fromEng, err2 := Engine{}.RankDistance(m, 0.9)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if fromPkg != fromEng {
		t.Fatalf("package func %v != zero engine %v", fromPkg, fromEng)
	}
}
