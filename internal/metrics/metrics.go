// Package metrics implements the paper's hardware-agnostic MPI-level
// locality metrics:
//
//   - rank distance / rank locality (Section 4.1.1): per source rank, the
//     smallest linear rank-ID distance d such that at least 90% of the
//     rank's point-to-point volume goes to partners within distance d;
//     locality is the reciprocal of the distance.
//   - selectivity (Section 4.1.2): per source rank, how many partners —
//     sorted by exchanged volume, largest first — are needed to cover 90%
//     of the rank's point-to-point volume.
//   - peers (Klenk et al.): the peak number of distinct point-to-point
//     destinations any rank addresses.
//   - dimensional rank locality (Section 5.1, Table 4): rank locality
//     recomputed after folding the linear rank IDs onto a 2D or 3D grid,
//     which reveals the dimensionality of the underlying problem.
//
// All metrics operate on the point-to-point communication matrix; per the
// paper, collectives on the global communicator are a uniform bias and are
// excluded here.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"netloc/internal/comm"
	"netloc/internal/parallel"
	"netloc/internal/stats"
)

// rankScratch holds the per-iteration buffers of the per-rank metric
// loops, pooled so a grid of thousands of ranks reuses a handful of
// buffers (one per concurrent worker) instead of allocating three slices
// per rank.
type rankScratch struct {
	dsts  []int
	vols  []float64
	dists []float64
}

var rankScratchPool = sync.Pool{New: func() any { return new(rankScratch) }}

// Engine computes the per-rank metric loops on a configurable parallel
// runner. Per-rank results are written index-addressed and all
// floating-point reductions run sequentially in rank order afterwards,
// so an Engine with any runner produces bit-identical results to the
// sequential loop. The zero value computes sequentially; the
// package-level functions are shorthands for the zero Engine.
type Engine struct {
	// Run schedules the per-rank (and candidate-grid) loops.
	Run parallel.Runner
}

// DefaultCoverage is the traffic share the paper's quantization rules use.
const DefaultCoverage = 0.90

// ErrNoTraffic is returned when the matrix contains no point-to-point
// traffic at all (the paper reports N/A for such workloads, e.g. BigFFT).
var ErrNoTraffic = errors.New("metrics: no point-to-point traffic")

func checkCoverage(q float64) error {
	if q <= 0 || q > 1 || math.IsNaN(q) {
		return fmt.Errorf("metrics: coverage %v outside (0,1]", q)
	}
	return nil
}

// Peers returns the peak number of distinct destinations any source rank
// addresses, and the per-rank destination counts.
func Peers(m *comm.Matrix) (peak int, perRank []int) {
	perRank = make([]int, m.Ranks())
	m.Each(func(k comm.Key, e comm.Entry) {
		perRank[k.Src]++
	})
	for _, c := range perRank {
		if c > peak {
			peak = c
		}
	}
	return peak, perRank
}

// PerRankDistance returns, for every source rank, the smallest linear rank
// distance covering the q-share of that rank's p2p volume; ranks without
// traffic get NaN.
func PerRankDistance(m *comm.Matrix, q float64) ([]float64, error) {
	return Engine{}.PerRankDistance(m, q)
}

// PerRankDistance is the per-rank distance loop, chunked over the
// engine's workers; see the package-level function.
func (e Engine) PerRankDistance(m *comm.Matrix, q float64) ([]float64, error) {
	if err := checkCoverage(q); err != nil {
		return nil, err
	}
	out := make([]float64, m.Ranks())
	e.Run.ForEach(m.Ranks(), func(src int) {
		sc := rankScratchPool.Get().(*rankScratch)
		defer rankScratchPool.Put(sc)
		sc.dsts, sc.vols = m.AppendBySource(src, sc.dsts[:0], sc.vols[:0])
		if len(sc.dsts) == 0 {
			out[src] = math.NaN()
			return
		}
		sc.dists = sc.dists[:0]
		for _, d := range sc.dsts {
			sc.dists = append(sc.dists, math.Abs(float64(src-d)))
		}
		d90, err := stats.WeightedQuantileLEInPlace(sc.dists, sc.vols, q)
		if err != nil {
			out[src] = math.NaN()
			return
		}
		out[src] = d90
	})
	return out, nil
}

// RankDistance returns the mean (over communicating ranks) q-coverage rank
// distance — the paper's "Rank Distance (90%)" column of Table 3.
func RankDistance(m *comm.Matrix, q float64) (float64, error) {
	return Engine{}.RankDistance(m, q)
}

// RankDistance is the mean per-rank distance; see the package-level
// function.
func (e Engine) RankDistance(m *comm.Matrix, q float64) (float64, error) {
	per, err := e.PerRankDistance(m, q)
	if err != nil {
		return 0, err
	}
	return meanIgnoringNaN(per)
}

// RankLocality returns the rank locality in percent: 100 / RankDistance.
// A distance below one (only possible when a rank covers q of its traffic
// at distance 0, which cannot happen for distinct ranks) is clamped to 1.
func RankLocality(m *comm.Matrix, q float64) (float64, error) {
	return Engine{}.RankLocality(m, q)
}

// RankLocality is the reciprocal rank distance in percent; see the
// package-level function.
func (e Engine) RankLocality(m *comm.Matrix, q float64) (float64, error) {
	d, err := e.RankDistance(m, q)
	if err != nil {
		return 0, err
	}
	if d < 1 {
		d = 1
	}
	return 100 / d, nil
}

// PerRankSelectivity returns, for every source rank, how many partners
// (sorted by volume, descending) cover the q-share of the rank's volume;
// silent ranks get 0.
func PerRankSelectivity(m *comm.Matrix, q float64) ([]int, error) {
	return Engine{}.PerRankSelectivity(m, q)
}

// PerRankSelectivity is the per-rank partner-count loop, chunked over
// the engine's workers; see the package-level function.
func (e Engine) PerRankSelectivity(m *comm.Matrix, q float64) ([]int, error) {
	if err := checkCoverage(q); err != nil {
		return nil, err
	}
	out := make([]int, m.Ranks())
	e.Run.ForEach(m.Ranks(), func(src int) {
		sc := rankScratchPool.Get().(*rankScratch)
		defer rankScratchPool.Put(sc)
		sc.dsts, sc.vols = m.AppendBySource(src, sc.dsts[:0], sc.vols[:0])
		out[src] = stats.CoverageCountInPlace(sc.vols, q)
	})
	return out, nil
}

// Selectivity returns the mean (over communicating ranks) q-coverage
// partner count — the paper's "Selectivity (90%)" column of Table 3.
func Selectivity(m *comm.Matrix, q float64) (float64, error) {
	return Engine{}.Selectivity(m, q)
}

// Selectivity is the mean per-rank partner count; see the package-level
// function.
func (e Engine) Selectivity(m *comm.Matrix, q float64) (float64, error) {
	per, err := e.PerRankSelectivity(m, q)
	if err != nil {
		return 0, err
	}
	var sum float64
	var n int
	for _, c := range per {
		if c > 0 {
			sum += float64(c)
			n++
		}
	}
	if n == 0 {
		return 0, ErrNoTraffic
	}
	return sum / float64(n), nil
}

// PartnerCurve returns the volumes a source rank sends to each partner,
// sorted descending — the series of the paper's Figure 1.
func PartnerCurve(m *comm.Matrix, src int) ([]float64, error) {
	if src < 0 || src >= m.Ranks() {
		return nil, fmt.Errorf("metrics: rank %d out of range [0,%d)", src, m.Ranks())
	}
	_, vols := m.BySource(src)
	sort.Sort(sort.Reverse(sort.Float64Slice(vols)))
	return vols, nil
}

// CumulativeCurve returns the mean cumulative traffic-share curve over all
// communicating ranks: entry i is the average share of a rank's volume
// covered by its i+1 largest partners. Ranks whose partner list is shorter
// than the longest contribute 1.0 beyond their end. This is the per-
// workload series of the paper's Figures 3 and 4; Selectivity is where the
// curve crosses the coverage threshold.
func CumulativeCurve(m *comm.Matrix) ([]float64, error) {
	var curves [][]float64
	maxLen := 0
	for src := 0; src < m.Ranks(); src++ {
		_, vols := m.BySource(src)
		c := stats.CumulativeShares(vols)
		if len(c) == 0 {
			continue
		}
		curves = append(curves, c)
		if len(c) > maxLen {
			maxLen = len(c)
		}
	}
	if len(curves) == 0 {
		return nil, ErrNoTraffic
	}
	out := make([]float64, maxLen)
	for _, c := range curves {
		for i := 0; i < maxLen; i++ {
			if i < len(c) {
				out[i] += c[i]
			} else {
				out[i] += 1
			}
		}
	}
	for i := range out {
		out[i] /= float64(len(curves))
	}
	return out, nil
}

func meanIgnoringNaN(xs []float64) (float64, error) {
	var sum float64
	var n int
	for _, x := range xs {
		if !math.IsNaN(x) {
			sum += x
			n++
		}
	}
	if n == 0 {
		return 0, ErrNoTraffic
	}
	return sum / float64(n), nil
}
