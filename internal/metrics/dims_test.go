package metrics

import (
	"testing"

	"netloc/internal/comm"
)

// stencil3D fills m with 27-point-stencil traffic on an x*y*z grid, faces
// dominating (weight 400) over edges (10) and corners (1).
func stencil3D(t *testing.T, x, y, z int) *comm.Matrix {
	t.Helper()
	n := x * y * z
	m := newMatrix(t, n)
	id := func(cx, cy, cz int) int { return (cz*y+cy)*x + cx }
	for cz := 0; cz < z; cz++ {
		for cy := 0; cy < y; cy++ {
			for cx := 0; cx < x; cx++ {
				src := id(cx, cy, cz)
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							if dx == 0 && dy == 0 && dz == 0 {
								continue
							}
							nx, ny, nz := cx+dx, cy+dy, cz+dz
							if nx < 0 || nx >= x || ny < 0 || ny >= y || nz < 0 || nz >= z {
								continue
							}
							order := abs(dx) + abs(dy) + abs(dz)
							w := uint64(1)
							switch order {
							case 1:
								w = 400
							case 2:
								w = 10
							}
							add(t, m, src, id(nx, ny, nz), w*1000)
						}
					}
				}
			}
		}
	}
	return m
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// grid2D fills m with 5-point-stencil traffic on an x*y grid.
func grid2D(t *testing.T, x, y int) *comm.Matrix {
	t.Helper()
	m := newMatrix(t, x*y)
	id := func(cx, cy int) int { return cy*x + cx }
	for cy := 0; cy < y; cy++ {
		for cx := 0; cx < x; cx++ {
			src := id(cx, cy)
			for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := cx+d[0], cy+d[1]
				if nx < 0 || nx >= x || ny < 0 || ny >= y {
					continue
				}
				add(t, m, src, id(nx, ny), 1000)
			}
		}
	}
	return m
}

func TestDimLocality3DStencilPeaksAt3D(t *testing.T) {
	// A 4x4x4 27-point stencil: 3D locality should be (near) 100%, and
	// strictly better than 2D, which is better than 1D.
	m := stencil3D(t, 4, 4, 4)
	r1, err := DimLocality(m, 1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := DimLocality(m, 2, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := DimLocality(m, 3, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !(r3.LocalityPct > r2.LocalityPct && r2.LocalityPct > r1.LocalityPct) {
		t.Fatalf("locality not increasing with dims: 1D=%v 2D=%v 3D=%v",
			r1.LocalityPct, r2.LocalityPct, r3.LocalityPct)
	}
	// Faces carry ~95% of each rank's volume at Manhattan distance 1, so
	// the 3D fold reaches 100%.
	if r3.LocalityPct != 100 {
		t.Fatalf("3D locality = %v, want 100", r3.LocalityPct)
	}
	if r3.Grid[0]*r3.Grid[1]*r3.Grid[2] != 64 {
		t.Fatalf("3D grid = %v", r3.Grid)
	}
}

func TestDimLocality2DStencilPeaksAt2D(t *testing.T) {
	// PARTISN-style 12x14 sweep grid: 2D locality = 100%.
	m := grid2D(t, 12, 14)
	r2, err := DimLocality(m, 2, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if r2.LocalityPct != 100 {
		t.Fatalf("2D locality = %v (grid %v), want 100", r2.LocalityPct, r2.Grid)
	}
	// The best 2D grid should be the natural 12x14 (either orientation).
	if !(r2.Grid[0] == 12 && r2.Grid[1] == 14) {
		t.Fatalf("best grid = %v, want [12 14]", r2.Grid)
	}
	// 3D folding cannot beat 100% but also should not crash; and 1D is
	// far worse.
	r1, err := DimLocality(m, 1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if r1.LocalityPct >= r2.LocalityPct {
		t.Fatalf("1D %v >= 2D %v", r1.LocalityPct, r2.LocalityPct)
	}
}

func TestDimLocality1DMatchesRankDistance(t *testing.T) {
	m := newMatrix(t, 16)
	add(t, m, 0, 3, 100)
	add(t, m, 7, 12, 100)
	r1, err := DimLocality(m, 1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	d, err := RankDistance(m, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Distance != d {
		t.Fatalf("1D distance %v != rank distance %v", r1.Distance, d)
	}
	if len(r1.Grid) != 1 || r1.Grid[0] != 16 {
		t.Fatalf("1D grid = %v", r1.Grid)
	}
}

func TestDimLocalityValidation(t *testing.T) {
	m := newMatrix(t, 8)
	add(t, m, 0, 1, 1)
	for _, dims := range []int{0, 4, -1} {
		if _, err := DimLocality(m, dims, 0.9); err == nil {
			t.Errorf("dims=%d should fail", dims)
		}
	}
}

func TestDimLocalityNoTraffic(t *testing.T) {
	m := newMatrix(t, 8)
	if _, err := DimLocality(m, 2, 0.9); err != ErrNoTraffic {
		t.Fatalf("err = %v, want ErrNoTraffic", err)
	}
}

func TestDimLocalityPrimeRankCountUsesCoverGrid(t *testing.T) {
	// 17 is prime: no balanced factorization; cover grid must kick in.
	m := newMatrix(t, 17)
	add(t, m, 0, 1, 100)
	r2, err := DimLocality(m, 2, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Grid) != 2 || r2.Grid[0]*r2.Grid[1] < 17 {
		t.Fatalf("cover grid = %v", r2.Grid)
	}
}

func TestCandidateGrids(t *testing.T) {
	g2 := candidateGrids(12, 2)
	// Factor pairs of 12 with aspect <= 8: (2,6),(3,4),(4,3),(6,2) and
	// possibly (12,1)? aspect 12 > 8, excluded. (1,12) excluded.
	want := map[[2]int]bool{{2, 6}: true, {3, 4}: true, {4, 3}: true, {6, 2}: true}
	if len(g2) != len(want) {
		t.Fatalf("candidateGrids(12,2) = %v", g2)
	}
	for _, g := range g2 {
		if !want[[2]int{g[0], g[1]}] {
			t.Fatalf("unexpected grid %v", g)
		}
	}
	g1 := candidateGrids(7, 1)
	if len(g1) != 1 || g1[0][0] != 7 {
		t.Fatalf("candidateGrids(7,1) = %v", g1)
	}
	if got := candidateGrids(0, 2); got != nil {
		t.Fatalf("candidateGrids(0,2) = %v", got)
	}
}

func TestCoverGrid(t *testing.T) {
	for _, c := range []struct {
		n, dims int
	}{{17, 2}, {7, 3}, {100, 2}, {1, 3}} {
		g := coverGrid(c.n, c.dims)
		if len(g) != c.dims {
			t.Fatalf("coverGrid(%d,%d) = %v", c.n, c.dims, g)
		}
		vol := 1
		for _, v := range g {
			vol *= v
		}
		if vol < c.n {
			t.Fatalf("coverGrid(%d,%d) volume %d < n", c.n, c.dims, vol)
		}
	}
}

func TestAspectOK(t *testing.T) {
	if !aspectOK(3, 4) || !aspectOK(1, 8) || aspectOK(1, 9) || aspectOK(0, 4) {
		t.Fatal("aspectOK wrong")
	}
	if !aspectOK(2, 4, 8) || aspectOK(1, 2, 9) {
		t.Fatal("aspectOK 3D wrong")
	}
}
