package metrics

import (
	"fmt"
	"math"

	"netloc/internal/comm"
	"netloc/internal/stats"
)

// DimResult is the outcome of a dimensional rank-locality analysis.
type DimResult struct {
	// Dims is the number of grid dimensions (1, 2, or 3).
	Dims int
	// Grid is the folding that achieved the best locality (length Dims,
	// fastest-varying dimension first).
	Grid []int
	// Distance is the mean q-coverage Manhattan distance on that grid.
	Distance float64
	// LocalityPct is 100 / Distance (clamped at 100).
	LocalityPct float64
}

// maxAspect bounds how skewed a candidate folding may be; beyond this the
// folding degenerates toward the 1D case and stops being informative.
const maxAspect = 8

// DimLocality folds the linear rank IDs onto candidate dims-dimensional
// grids (row-major, fastest dimension first) and returns the folding with
// the best (smallest) mean q-coverage Manhattan distance. This reproduces
// the paper's Table 4: a workload whose heavy partners are grid neighbors
// in k dimensions reaches ~100% locality exactly at k dimensions.
//
// Candidate grids are the ordered factorizations of the rank count with
// aspect ratio at most maxAspect; if none exists (e.g. prime rank counts),
// a near-balanced covering grid is used instead.
func DimLocality(m *comm.Matrix, dims int, q float64) (DimResult, error) {
	return Engine{}.DimLocality(m, dims, q)
}

// DimLocality sweeps the candidate grids on the engine's workers (each
// grid's per-rank loop also runs chunked); the winning folding is
// selected by a sequential scan in enumeration order, so any runner
// reproduces the sequential result exactly. See the package-level
// function.
func (e Engine) DimLocality(m *comm.Matrix, dims int, q float64) (DimResult, error) {
	if err := checkCoverage(q); err != nil {
		return DimResult{}, err
	}
	if dims < 1 || dims > 3 {
		return DimResult{}, fmt.Errorf("metrics: dims must be 1..3, got %d", dims)
	}
	n := m.Ranks()
	grids := candidateGrids(n, dims)
	if len(grids) == 0 {
		return DimResult{}, fmt.Errorf("metrics: no candidate %dD grids for %d ranks", dims, n)
	}
	dists := make([]float64, len(grids))
	if err := e.Run.ForEachErr(len(grids), func(i int) error {
		d, err := e.meanGridDistance(m, grids[i], q)
		if err != nil {
			return err
		}
		dists[i] = d
		return nil
	}); err != nil {
		return DimResult{}, err
	}
	best := DimResult{Dims: dims, Distance: math.Inf(1)}
	found := false
	for i, g := range grids {
		if dists[i] < best.Distance {
			best.Distance = dists[i]
			best.Grid = g
			found = true
		}
	}
	if !found {
		return DimResult{}, ErrNoTraffic
	}
	dist := best.Distance
	if dist < 1 {
		dist = 1
	}
	best.LocalityPct = 100 / dist
	return best, nil
}

// meanGridDistance computes the mean per-rank q-coverage Manhattan distance
// under a row-major folding onto the grid. The per-rank distances are
// computed on the engine's workers into an index-addressed slice and
// reduced sequentially in rank order, keeping the floating-point sum
// identical to the sequential loop's.
func (e Engine) meanGridDistance(m *comm.Matrix, grid []int, q float64) (float64, error) {
	coords := func(id int) (c [3]int) {
		for d := 0; d < len(grid); d++ {
			c[d] = id % grid[d]
			id /= grid[d]
		}
		return c
	}
	per := make([]float64, m.Ranks())
	e.Run.ForEach(m.Ranks(), func(src int) {
		per[src] = math.NaN()
		buf := rankScratchPool.Get().(*rankScratch)
		defer rankScratchPool.Put(buf)
		buf.dsts, buf.vols = m.AppendBySource(src, buf.dsts[:0], buf.vols[:0])
		if len(buf.dsts) == 0 {
			return
		}
		sc := coords(src)
		buf.dists = buf.dists[:0]
		for _, dst := range buf.dsts {
			dc := coords(dst)
			man := 0
			for d := 0; d < len(grid); d++ {
				diff := sc[d] - dc[d]
				if diff < 0 {
					diff = -diff
				}
				man += diff
			}
			buf.dists = append(buf.dists, float64(man))
		}
		d90, err := stats.WeightedQuantileLEInPlace(buf.dists, buf.vols, q)
		if err != nil {
			return
		}
		per[src] = d90
	})
	var sum float64
	var cnt int
	for _, d := range per {
		if !math.IsNaN(d) {
			sum += d
			cnt++
		}
	}
	if cnt == 0 {
		return 0, ErrNoTraffic
	}
	return sum / float64(cnt), nil
}

// candidateGrids enumerates ordered factorizations of n into dims factors
// with bounded aspect ratio; falls back to a near-balanced covering grid
// when no exact factorization qualifies.
func candidateGrids(n, dims int) [][]int {
	if n <= 0 {
		return nil
	}
	if dims == 1 {
		return [][]int{{n}}
	}
	var out [][]int
	if dims == 2 {
		for a := 1; a <= n; a++ {
			if n%a != 0 {
				continue
			}
			b := n / a
			if aspectOK(a, b) {
				out = append(out, []int{a, b})
			}
		}
	} else {
		for a := 1; a <= n; a++ {
			if n%a != 0 {
				continue
			}
			rest := n / a
			for b := 1; b <= rest; b++ {
				if rest%b != 0 {
					continue
				}
				c := rest / b
				if aspectOK(a, b, c) {
					out = append(out, []int{a, b, c})
				}
			}
		}
	}
	if len(out) == 0 {
		out = append(out, coverGrid(n, dims))
	}
	return out
}

func aspectOK(dims ...int) bool {
	mn, mx := dims[0], dims[0]
	for _, d := range dims[1:] {
		if d < mn {
			mn = d
		}
		if d > mx {
			mx = d
		}
	}
	return mn > 0 && mx <= maxAspect*mn
}

// coverGrid returns a near-balanced dims-dimensional grid whose volume is
// at least n (used when n has no balanced factorization, e.g. primes).
func coverGrid(n, dims int) []int {
	side := int(math.Ceil(math.Pow(float64(n), 1/float64(dims))))
	g := make([]int, dims)
	for i := range g {
		g[i] = side
	}
	// Shrink trailing dimensions while the volume still covers n.
	for i := dims - 1; i >= 0; i-- {
		for g[i] > 1 {
			g[i]--
			vol := 1
			for _, v := range g {
				vol *= v
			}
			if vol < n {
				g[i]++
				break
			}
		}
	}
	return g
}
