package metrics

import (
	"math"
	"testing"

	"netloc/internal/comm"
	"netloc/internal/trace"
	"netloc/internal/workloads"
)

func sendEvent(rank, peer int, bytes uint64) trace.Event {
	return trace.Event{Rank: rank, Op: trace.OpSend, Peer: peer, Root: -1, Bytes: bytes}
}

func TestDestinationLocalityAlternation(t *testing.T) {
	// Rank 0 alternates between two destinations: depth-1 reuse is 0,
	// depth-2 reuse is 1 (after warm-up).
	tr := &trace.Trace{Meta: trace.Meta{App: "k", Ranks: 4, WallTime: 1}}
	for i := 0; i < 10; i++ {
		tr.Events = append(tr.Events, sendEvent(0, 1+i%2, 100))
	}
	res, err := DestinationLocality(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 9 {
		t.Fatalf("samples = %d, want 9", res.Samples)
	}
	if res.Hits[0] != 0 {
		t.Fatalf("depth-1 locality = %v, want 0", res.Hits[0])
	}
	// First alternation back to destination 2... message 2 (dest 1)
	// finds dest 1 at depth 2; all 8 after the first non-warmup hit at
	// depth 2 except the second message which sees only one entry:
	// stream: d1(warm) d2 d1 d2 ... message 2 (d2) misses (stack [1]),
	// remaining 8 hit at depth 2.
	if math.Abs(res.Hits[1]-8.0/9.0) > 1e-12 {
		t.Fatalf("depth-2 locality = %v, want 8/9", res.Hits[1])
	}
}

func TestDestinationLocalitySingleDestination(t *testing.T) {
	tr := &trace.Trace{Meta: trace.Meta{App: "k", Ranks: 2, WallTime: 1}}
	for i := 0; i < 5; i++ {
		tr.Events = append(tr.Events, sendEvent(0, 1, 100))
	}
	res, err := DestinationLocality(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits[0] != 1 {
		t.Fatalf("locality = %v, want 1", res.Hits[0])
	}
}

func TestSizeLocality(t *testing.T) {
	// Sizes cycle through 3 values: depth-3 catches all after warm-up,
	// depth-1 none.
	tr := &trace.Trace{Meta: trace.Meta{App: "k", Ranks: 2, WallTime: 1}}
	sizes := []uint64{100, 200, 300}
	for i := 0; i < 12; i++ {
		tr.Events = append(tr.Events, sendEvent(0, 1, sizes[i%3]))
	}
	res, err := SizeLocality(tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits[0] != 0 {
		t.Fatalf("depth-1 = %v, want 0", res.Hits[0])
	}
	// Messages 2 and 3 see stacks smaller than 3; the remaining 9 hit at
	// depth 3.
	if math.Abs(res.Hits[2]-9.0/11.0) > 1e-12 {
		t.Fatalf("depth-3 = %v, want 9/11", res.Hits[2])
	}
}

func TestKimLocalityPerRankIndependence(t *testing.T) {
	// Interleaved ranks must not pollute each other's stacks.
	tr := &trace.Trace{Meta: trace.Meta{App: "k", Ranks: 4, WallTime: 1}}
	for i := 0; i < 6; i++ {
		tr.Events = append(tr.Events, sendEvent(0, 1, 100))
		tr.Events = append(tr.Events, sendEvent(2, 3, 100))
	}
	res, err := DestinationLocality(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits[0] != 1 {
		t.Fatalf("locality = %v, want 1 (per-rank stacks)", res.Hits[0])
	}
}

func TestKimLocalityValidation(t *testing.T) {
	tr := &trace.Trace{Meta: trace.Meta{App: "k", Ranks: 2, WallTime: 1}}
	if _, err := DestinationLocality(tr, 0); err == nil {
		t.Fatal("zero depth accepted")
	}
	res, err := SizeLocality(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 0 || res.Hits[0] != 0 {
		t.Fatalf("empty trace result = %+v", res)
	}
}

func TestKimHitsMonotoneInDepth(t *testing.T) {
	app, err := workloads.Lookup("LULESH")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := app.Generate(64)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DestinationLocality(tr, 8)
	if err != nil {
		t.Fatal(err)
	}
	for d := 1; d < len(res.Hits); d++ {
		if res.Hits[d] < res.Hits[d-1] {
			t.Fatalf("hits not cumulative: %v", res.Hits)
		}
	}
	if res.Hits[len(res.Hits)-1] > 1 {
		t.Fatalf("probability above 1: %v", res.Hits)
	}
}

// TestKimMetricsScaleInsensitivity reproduces the observation the paper
// quotes from Kim & Lilja: their locality metrics barely move across
// problem scales — AMG at 27 vs 1728 ranks differs by well under 10
// percentage points at depth 4 — whereas the paper's rank distance grows
// by more than an order of magnitude over the same span.
func TestKimMetricsScaleInsensitivity(t *testing.T) {
	app, err := workloads.Lookup("AMG")
	if err != nil {
		t.Fatal(err)
	}
	var kim []float64
	var dist []float64
	for _, ranks := range []int{27, 1728} {
		tr, err := app.Generate(ranks)
		if err != nil {
			t.Fatal(err)
		}
		res, err := DestinationLocality(tr, 4)
		if err != nil {
			t.Fatal(err)
		}
		kim = append(kim, res.Hits[3])
		a, err := analyzeP2P(tr)
		if err != nil {
			t.Fatal(err)
		}
		dist = append(dist, a)
	}
	if math.Abs(kim[0]-kim[1]) > 0.10 {
		t.Fatalf("Kim locality moved too much with scale: %v", kim)
	}
	if dist[1] < 5*dist[0] {
		t.Fatalf("rank distance should grow strongly with scale: %v", dist)
	}
}

// analyzeP2P computes the rank distance of a trace's p2p matrix (test
// helper without importing core, which would cycle).
func analyzeP2P(tr *trace.Trace) (float64, error) {
	m, err := p2pMatrix(tr)
	if err != nil {
		return 0, err
	}
	return RankDistance(m, 0.9)
}

// p2pMatrix accumulates a trace's sends into a matrix.
func p2pMatrix(tr *trace.Trace) (*comm.Matrix, error) {
	m, err := comm.NewMatrix(tr.Meta.Ranks, 0)
	if err != nil {
		return nil, err
	}
	for _, e := range tr.Events {
		if e.Op == trace.OpSend {
			if err := m.Add(e.Rank, e.Peer, e.Bytes); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}
