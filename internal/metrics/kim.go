package metrics

import (
	"fmt"

	"netloc/internal/trace"
)

// This file implements the classic communication-locality metrics of
// Kim & Lilja ("Characterization of communication patterns in
// message-passing parallel scientific application programs", 1998) that
// the paper's related-work section discusses: message *destination*
// locality and message *size* locality, both defined as LRU-stack reuse
// probabilities over each rank's send stream. The paper notes these
// metrics are "relatively insensitive to system and problem size
// variations" — which is exactly why it introduces rank locality and
// selectivity instead. Implementing them side by side lets the repository
// verify that observation (see TestKimMetricsScaleInsensitivity).

// KimResult holds the reuse probabilities for stack depths 1..len(Hits).
type KimResult struct {
	// Hits[d-1] is the probability that a message's destination (or
	// size) is among the d most recently used values of the same rank.
	Hits []float64
	// Samples is the number of messages that had at least one
	// predecessor on their rank (the first message of a rank cannot
	// score a hit).
	Samples int
}

// lruStack is a tiny move-to-front list for reuse-distance measurement.
type lruStack struct {
	vals []uint64
}

// touch returns the 1-based stack position of v (0 if absent) and moves v
// to the front.
func (s *lruStack) touch(v uint64, maxDepth int) int {
	pos := 0
	for i, x := range s.vals {
		if x == v {
			pos = i + 1
			copy(s.vals[1:i+1], s.vals[:i])
			s.vals[0] = v
			return pos
		}
	}
	s.vals = append(s.vals, 0)
	copy(s.vals[1:], s.vals)
	s.vals[0] = v
	if len(s.vals) > maxDepth {
		s.vals = s.vals[:maxDepth]
	}
	return 0
}

// kimLocality measures LRU reuse probabilities of a per-rank value stream.
func kimLocality(t *trace.Trace, depth int, value func(e trace.Event) uint64) (KimResult, error) {
	if depth < 1 {
		return KimResult{}, fmt.Errorf("metrics: depth must be >= 1, got %d", depth)
	}
	stacks := make([]lruStack, t.Meta.Ranks)
	started := make([]bool, t.Meta.Ranks)
	hits := make([]int, depth)
	samples := 0
	// Keep the stack two entries deeper than the deepest query so a
	// value evicted just beyond the horizon does not miscount as new.
	keep := depth + 2
	for _, e := range t.Events {
		if e.Op != trace.OpSend {
			continue
		}
		v := value(e)
		st := &stacks[e.Rank]
		if !started[e.Rank] {
			started[e.Rank] = true
			st.touch(v, keep)
			continue
		}
		samples++
		if pos := st.touch(v, keep); pos > 0 && pos <= depth {
			hits[pos-1]++
		}
	}
	res := KimResult{Hits: make([]float64, depth), Samples: samples}
	if samples == 0 {
		return res, nil
	}
	cum := 0
	for d := 0; d < depth; d++ {
		cum += hits[d]
		res.Hits[d] = float64(cum) / float64(samples)
	}
	return res, nil
}

// DestinationLocality measures Kim & Lilja's message destination locality:
// the probability that a point-to-point message goes to one of the d most
// recent destinations of the same rank, for d = 1..depth.
func DestinationLocality(t *trace.Trace, depth int) (KimResult, error) {
	return kimLocality(t, depth, func(e trace.Event) uint64 { return uint64(e.Peer) })
}

// SizeLocality measures Kim & Lilja's message size locality: the
// probability that a message's payload size is among the d most recent
// sizes used by the same rank.
func SizeLocality(t *trace.Trace, depth int) (KimResult, error) {
	return kimLocality(t, depth, func(e trace.Event) uint64 { return e.Bytes })
}
