package metrics_test

import (
	"fmt"

	"netloc/internal/comm"
	"netloc/internal/metrics"
)

// A rank whose traffic goes 80% to its +1 neighbor and 20% to a far rank
// has rank distance 9 at full coverage but distance 1 at the paper's 90%
// threshold only if the neighbor share reaches 90% — here it does not, so
// the far partner counts.
func ExampleRankDistance() {
	m, _ := comm.NewMatrix(16, 0)
	_ = m.Add(0, 1, 80)
	_ = m.Add(0, 9, 20)

	d90, _ := metrics.RankDistance(m, 0.9)
	dFull, _ := metrics.RankDistance(m, 1.0)
	fmt.Printf("distance(90%%) = %.0f, distance(100%%) = %.0f\n", d90, dFull)
	// Output:
	// distance(90%) = 9, distance(100%) = 9
}

// Selectivity counts how many partners (largest first) cover 90% of a
// rank's volume: one dominant partner suffices here.
func ExampleSelectivity() {
	m, _ := comm.NewMatrix(8, 0)
	_ = m.Add(0, 5, 95)
	_ = m.Add(0, 1, 3)
	_ = m.Add(0, 2, 2)

	s, _ := metrics.Selectivity(m, 0.9)
	fmt.Printf("selectivity = %.0f\n", s)
	// Output:
	// selectivity = 1
}

// Peers is the peak number of distinct destinations over all ranks.
func ExamplePeers() {
	m, _ := comm.NewMatrix(8, 0)
	_ = m.Add(0, 1, 1)
	_ = m.Add(0, 2, 1)
	_ = m.Add(3, 4, 1)

	peak, _ := metrics.Peers(m)
	fmt.Println(peak)
	// Output:
	// 2
}

// DimLocality folds rank IDs onto candidate grids: a 4x4 five-point
// stencil reaches 100% locality in 2D while its 1D locality is poor.
func ExampleDimLocality() {
	m, _ := comm.NewMatrix(16, 0)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			id := y*4 + x
			if x+1 < 4 {
				_ = m.Add(id, id+1, 100)
			}
			if y+1 < 4 {
				_ = m.Add(id, id+4, 100)
			}
		}
	}
	r2, _ := metrics.DimLocality(m, 2, 0.9)
	fmt.Printf("2D locality = %.0f%% on grid %v\n", r2.LocalityPct, r2.Grid)
	// Output:
	// 2D locality = 100% on grid [4 4]
}
