package netmodel

import (
	"math"
	"testing"

	"netloc/internal/comm"
	"netloc/internal/mapping"
	"netloc/internal/topology"
)

func matrixOf(t *testing.T, ranks int, triples ...[3]uint64) *comm.Matrix {
	t.Helper()
	m, err := comm.NewMatrix(ranks, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range triples {
		if err := m.Add(int(tr[0]), int(tr[1]), tr[2]); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func consecutive(t *testing.T, ranks, nodes int) *mapping.Mapping {
	t.Helper()
	mp, err := mapping.Consecutive(ranks, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return mp
}

func TestRunPacketHopsTorus(t *testing.T) {
	// 2x2x2 torus, consecutive mapping. 0->1 is 1 hop; 0->7 is 3 hops.
	topo, err := topology.NewTorus(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 0->1: 5000 bytes = 2 packets; 0->7: 100 bytes = 1 packet.
	m := matrixOf(t, 8, [3]uint64{0, 1, 5000}, [3]uint64{0, 7, 100})
	res, err := Run(m, topo, consecutive(t, 8, 8), Options{WallTime: 1, TrackLinks: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.PacketHops != 2*1+1*3 {
		t.Fatalf("PacketHops = %d, want 5", res.PacketHops)
	}
	if res.Packets != 3 {
		t.Fatalf("Packets = %d, want 3", res.Packets)
	}
	wantAvg := 5.0 / 3.0
	if math.Abs(res.AvgHops-wantAvg) > 1e-12 {
		t.Fatalf("AvgHops = %v, want %v", res.AvgHops, wantAvg)
	}
	if res.Messages != 2 || res.InterNodeBytes != 5100 || res.IntraNodeBytes != 0 {
		t.Fatalf("msgs=%d inter=%d intra=%d", res.Messages, res.InterNodeBytes, res.IntraNodeBytes)
	}
	if res.ByteHops != 5000*1+100*3 {
		t.Fatalf("ByteHops = %d", res.ByteHops)
	}
}

func TestRunLinkConservation(t *testing.T) {
	// Sum of per-link bytes must equal Σ bytes·hops.
	topo, err := topology.NewTorus(3, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	m := matrixOf(t, 27,
		[3]uint64{0, 26, 1000}, [3]uint64{3, 5, 400}, [3]uint64{7, 8, 12345},
		[3]uint64{26, 0, 1}, [3]uint64{13, 12, 7})
	res, err := Run(m, topo, consecutive(t, 27, 27), Options{WallTime: 1, TrackLinks: true})
	if err != nil {
		t.Fatal(err)
	}
	var linkSum uint64
	for _, b := range res.LinkBytes {
		linkSum += b
	}
	if linkSum != res.ByteHops {
		t.Fatalf("link sum %d != byte hops %d", linkSum, res.ByteHops)
	}
}

func TestRunIntraNodeTrafficSkipsNetwork(t *testing.T) {
	topo, err := topology.NewTorus(2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 4 ranks on 2 nodes: ranks 0,1 -> node 0; ranks 2,3 -> node 1.
	mp, err := mapping.Blocked(4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := matrixOf(t, 4, [3]uint64{0, 1, 500}, [3]uint64{0, 2, 700})
	res, err := Run(m, topo, mp, Options{WallTime: 1, TrackLinks: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.IntraNodeBytes != 500 || res.InterNodeBytes != 700 {
		t.Fatalf("intra=%d inter=%d", res.IntraNodeBytes, res.InterNodeBytes)
	}
	if res.Packets != 1 {
		t.Fatalf("packets = %d, want 1", res.Packets)
	}
}

func TestRunUtilization(t *testing.T) {
	// Single 1-hop message of known size on a 2x1x1 torus (1 link).
	topo, err := topology.NewTorus(2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := matrixOf(t, 2, [3]uint64{0, 1, 1_200_000})
	res, err := Run(m, topo, consecutive(t, 2, 2), Options{
		BandwidthBytesPerSec: 12e6, // 12 MB/s for easy numbers
		WallTime:             1,
		TrackLinks:           true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.UsedLinks != 1 {
		t.Fatalf("UsedLinks = %d, want 1", res.UsedLinks)
	}
	// 1.2 MB over a 12 MB/s link for 1 s: 10% utilization.
	if math.Abs(res.UtilizationPct-10) > 1e-9 {
		t.Fatalf("Utilization = %v%%, want 10%%", res.UtilizationPct)
	}
	if !res.UtilizationValid {
		t.Fatal("UtilizationValid = false for a computable ratio")
	}
}

func TestRunUtilizationZeroWallTime(t *testing.T) {
	topo, _ := topology.NewTorus(2, 1, 1)
	m := matrixOf(t, 2, [3]uint64{0, 1, 100})
	res, err := Run(m, topo, consecutive(t, 2, 2), Options{WallTime: 0, TrackLinks: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.UtilizationPct != 0 {
		t.Fatalf("utilization with zero wall time = %v", res.UtilizationPct)
	}
	// A zero wall time makes eq. 5 incomputable; the flag must say so
	// rather than leaving the zero indistinguishable from an idle network.
	if res.UtilizationValid {
		t.Fatal("UtilizationValid = true with zero wall time")
	}
}

func TestRunWithoutLinkTracking(t *testing.T) {
	topo, _ := topology.NewTorus(2, 2, 2)
	m := matrixOf(t, 8, [3]uint64{0, 7, 4096})
	res, err := Run(m, topo, consecutive(t, 8, 8), Options{WallTime: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.LinkBytes != nil || res.UsedLinks != 0 || res.UtilizationPct != 0 {
		t.Fatal("link accounting should be disabled")
	}
	if res.PacketHops != 3 {
		t.Fatalf("PacketHops = %d, want 3", res.PacketHops)
	}
}

func TestRunDragonflyGlobalShare(t *testing.T) {
	topo, err := topology.NewDragonfly(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// One intra-group message (0->2), one cross-group (0->8).
	m := matrixOf(t, 72, [3]uint64{0, 2, 100}, [3]uint64{0, 8, 100})
	res, err := Run(m, topo, consecutive(t, 72, 72), Options{WallTime: 1, TrackLinks: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.GlobalMsgShare-0.5) > 1e-12 {
		t.Fatalf("GlobalMsgShare = %v, want 0.5", res.GlobalMsgShare)
	}
}

func TestRunValidation(t *testing.T) {
	topo, _ := topology.NewTorus(2, 2, 2)
	m := matrixOf(t, 8, [3]uint64{0, 1, 1})
	mpSmall := consecutive(t, 4, 8)
	if _, err := Run(m, topo, mpSmall, Options{WallTime: 1}); err == nil {
		t.Fatal("undersized mapping accepted")
	}
	mp := consecutive(t, 8, 8)
	if _, err := Run(m, topo, mp, Options{WallTime: -1}); err == nil {
		t.Fatal("negative wall time accepted")
	}
	if _, err := Run(m, topo, mp, Options{WallTime: 1, BandwidthBytesPerSec: -5}); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
	big, err := mapping.Consecutive(8, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(m, topo, big, Options{WallTime: 1}); err == nil {
		t.Fatal("mapping node space larger than topology accepted")
	}
}

func TestInterNodeBytes(t *testing.T) {
	m := matrixOf(t, 8,
		[3]uint64{0, 1, 100}, // same node at 2/node
		[3]uint64{0, 2, 200}, // different nodes at 2/node
		[3]uint64{6, 7, 300}) // same node at 2/node
	inter, intra, err := InterNodeBytes(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if inter != 200 || intra != 400 {
		t.Fatalf("inter=%d intra=%d", inter, intra)
	}
	// 1 per node: everything is inter-node.
	inter, intra, err = InterNodeBytes(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if inter != 600 || intra != 0 {
		t.Fatalf("1/node: inter=%d intra=%d", inter, intra)
	}
	// All ranks on one node.
	inter, intra, err = InterNodeBytes(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	if inter != 0 || intra != 600 {
		t.Fatalf("8/node: inter=%d intra=%d", inter, intra)
	}
	if _, _, err := InterNodeBytes(m, 0); err == nil {
		t.Fatal("zero per-node accepted")
	}
}

func TestMultiCoreSeries(t *testing.T) {
	// Ring of 8: at c=1 all inter (share 1.0); at c=2, pairs (0,1),(2,3),
	// (4,5),(6,7) become intra: 8 of 16 directed ring messages... the ring
	// here is unidirectional: 8 messages, 4 become intra -> 0.5.
	m, err := comm.NewMatrix(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := m.Add(i, (i+1)%8, 100); err != nil {
			t.Fatal(err)
		}
	}
	series, err := MultiCoreSeries(m, []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 0.5, 0.75 * 0.5 * 2 / 1.5, 0.125} // computed below
	// c=4: intra pairs are those within blocks {0..3},{4..7}: messages
	// 0->1,1->2,2->3,4->5,5->6,6->7 = 6 intra, 2 inter -> 0.25.
	want[2] = 0.25
	// c=8: only the wrap 7->0 stays... no: all ranks on one node -> 0.
	want[3] = 0
	for i := range want {
		if math.Abs(series[i]-want[i]) > 1e-12 {
			t.Fatalf("series = %v, want %v", series, want)
		}
	}
	if _, err := MultiCoreSeries(m, []int{0}); err == nil {
		t.Fatal("invalid cores accepted")
	}
}

func TestMultiCoreSeriesMonotoneForBlockLocalPatterns(t *testing.T) {
	// For a nearest-neighbor ring, inter-node share decreases as cores
	// per node double.
	m, err := comm.NewMatrix(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		_ = m.Add(i, (i+1)%64, 100)
		_ = m.Add(i, (i+63)%64, 100)
	}
	series, err := MultiCoreSeries(m, []int{1, 2, 4, 8, 16, 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(series); i++ {
		if series[i] > series[i-1] {
			t.Fatalf("series not non-increasing: %v", series)
		}
	}
}

func TestConventionalLinkCount(t *testing.T) {
	tor, _ := topology.NewTorus(4, 4, 4)
	if c, err := ConventionalLinkCount(tor, 64); err != nil || c != 192 {
		t.Fatalf("torus = %v, %v", c, err)
	}
	ft, _ := topology.NewFatTree(48, 2)
	if c, err := ConventionalLinkCount(ft, 576); err != nil || c != 576*1.5 {
		t.Fatalf("fattree = %v, %v", c, err)
	}
	df, _ := topology.NewDragonfly(4, 2, 2)
	// (p + a-1 + h)/p = (2+3+2)/2 = 3.5 per node.
	if c, err := ConventionalLinkCount(df, 72); err != nil || c != 72*3.5 {
		t.Fatalf("dragonfly = %v, %v", c, err)
	}
	if _, err := ConventionalLinkCount(tor, 0); err == nil {
		t.Fatal("zero used nodes accepted")
	}
	if _, err := ConventionalLinkCount(tor, 65); err == nil {
		t.Fatal("too many used nodes accepted")
	}
}

func TestRunGreedyMappingReducesPacketHops(t *testing.T) {
	// Ring traffic on a torus: greedy mapping should cut packet hops
	// versus a random placement.
	topo, err := topology.NewTorus(3, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := comm.NewMatrix(27, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 27; i++ {
		_ = m.Add(i, (i+1)%27, 50000)
	}
	greedy, err := mapping.Greedy(m, topo)
	if err != nil {
		t.Fatal(err)
	}
	random, err := mapping.Random(27, 27, 5)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := Run(m, topo, greedy, Options{WallTime: 1})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Run(m, topo, random, Options{WallTime: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rg.PacketHops >= rr.PacketHops {
		t.Fatalf("greedy %d >= random %d packet hops", rg.PacketHops, rr.PacketHops)
	}
}

func TestRunClassUtilization(t *testing.T) {
	// Dragonfly cross-group traffic: global links are fewer than
	// terminals, so their per-link utilization is at least as high when
	// every message crosses one.
	topo, err := topology.NewDragonfly(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := matrixOf(t, 72, [3]uint64{0, 70, 1 << 20}, [3]uint64{8, 60, 1 << 20})
	res, err := Run(m, topo, consecutive(t, 72, 72), Options{WallTime: 1, TrackLinks: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ClassUtilizationPct == nil {
		t.Fatal("class utilization missing")
	}
	gu := res.ClassUtilizationPct[topology.ClassGlobal]
	tu := res.ClassUtilizationPct[topology.ClassTerminal]
	if gu <= 0 || tu <= 0 {
		t.Fatalf("class utilizations: global %v terminal %v", gu, tu)
	}
	// Both messages traverse exactly one global link each but two
	// terminal links each, and there are twice as many used terminals:
	// per-link global utilization equals per-link terminal utilization
	// here; at minimum it must be no lower.
	if gu < tu-1e-9 {
		t.Fatalf("global %v below terminal %v", gu, tu)
	}
}

func TestRunClassUtilizationAbsentWithoutTracking(t *testing.T) {
	topo, _ := topology.NewTorus(2, 2, 2)
	m := matrixOf(t, 8, [3]uint64{0, 1, 100})
	res, err := Run(m, topo, consecutive(t, 8, 8), Options{WallTime: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.ClassUtilizationPct != nil {
		t.Fatal("class utilization should be nil without tracking")
	}
}

func TestConventionalLinkCountUnknownKind(t *testing.T) {
	// The Valiant wrapper is not one of the paper's three topologies, so
	// the paper's link-count convention does not apply to it.
	df, err := topology.NewDragonfly(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	v, err := topology.NewValiant(df, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ConventionalLinkCount(v, 72); err == nil {
		t.Fatal("valiant wrapper should have no paper convention")
	}
}

func TestRunLinkOccupancyExtremes(t *testing.T) {
	topo, err := topology.NewTorus(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 0->1 carries 5000 bytes over its single-hop link; 0->7 spreads 100
	// bytes over three links. Hottest link carries 5100 or 5000 depending
	// on route overlap; coolest used link carries 100.
	m := matrixOf(t, 8, [3]uint64{0, 1, 5000}, [3]uint64{0, 7, 100})
	res, err := Run(m, topo, consecutive(t, 8, 8), Options{WallTime: 1, TrackLinks: true})
	if err != nil {
		t.Fatal(err)
	}
	var wantMax, wantMin uint64
	for _, b := range res.LinkBytes {
		if b == 0 {
			continue
		}
		if b > wantMax {
			wantMax = b
		}
		if wantMin == 0 || b < wantMin {
			wantMin = b
		}
	}
	if res.MaxLinkBytes != wantMax || res.MinUsedLinkBytes != wantMin {
		t.Fatalf("extremes = (%d, %d), want (%d, %d)",
			res.MaxLinkBytes, res.MinUsedLinkBytes, wantMax, wantMin)
	}
	if res.MaxLinkBytes < res.MinUsedLinkBytes || res.MinUsedLinkBytes == 0 {
		t.Fatalf("implausible extremes: %+v", res)
	}
	// Without tracking the extremes stay zero.
	bare, err := Run(m, topo, consecutive(t, 8, 8), Options{WallTime: 1})
	if err != nil {
		t.Fatal(err)
	}
	if bare.MaxLinkBytes != 0 || bare.MinUsedLinkBytes != 0 {
		t.Fatalf("extremes populated without TrackLinks: %+v", bare)
	}
}
