// Package netmodel implements the paper's non-temporal network model: it
// drives a communication matrix over a topology under a rank→node mapping
// and produces the system-level locality metrics of Section 4.2:
//
//	packet hops  (eq. 3): Σ over packets of the hop count of its route
//	average hops (eq. 4): packet hops / packet count
//	utilization  (eq. 5): injected volume / (BW · t_execution · #links)
//
// The model is static: no congestion, no flow interaction, full capacity
// for every message — exactly the simplification the paper argues for.
package netmodel

import (
	"fmt"

	"netloc/internal/comm"
	"netloc/internal/mapping"
	"netloc/internal/topology"
)

// DefaultBandwidth is the per-link bandwidth the paper assumes (12 GB/s).
const DefaultBandwidth = 12e9

// Options configures a model run.
type Options struct {
	// BandwidthBytesPerSec is the per-link bandwidth; DefaultBandwidth
	// when zero.
	BandwidthBytesPerSec float64
	// WallTime is the execution time of the traced run in seconds
	// (denominator of eq. 5). Usually taken from the trace metadata.
	WallTime float64
	// TrackLinks enables per-link traffic accounting (needed for
	// utilization, used-link counts, and the global-link share). When
	// false only hop counts are computed, which is much faster.
	TrackLinks bool
}

// Result holds the system-level metrics of one (matrix, topology, mapping)
// combination.
type Result struct {
	Topology string
	// PacketHops is eq. 3 over all inter-node packets.
	PacketHops uint64
	// Packets is the number of inter-node packets.
	Packets uint64
	// Messages is the number of inter-node messages.
	Messages uint64
	// InterNodeBytes is the injected volume that actually crossed the
	// network; IntraNodeBytes stayed inside a node (multi-core mappings).
	InterNodeBytes uint64
	IntraNodeBytes uint64

	// AvgHops is eq. 4 (0 when no packets crossed the network).
	AvgHops float64

	// Link accounting (only populated when Options.TrackLinks).
	LinkBytes []uint64 // per-link transported bytes, parallel to topo.Links()
	UsedLinks int      // links with nonzero traffic
	// MaxLinkBytes and MinUsedLinkBytes are the occupancy extremes over
	// used links: the hottest link's volume and the coolest (nonzero)
	// link's volume. Their ratio is a cheap imbalance indicator for the
	// observability layer; both are zero when no link carried traffic.
	MaxLinkBytes     uint64
	MinUsedLinkBytes uint64
	// UtilizationPct is eq. 5 in percent, with #links = UsedLinks.
	// Check UtilizationValid before reading it: a zero value is
	// ambiguous between an idle network and an incomputable ratio.
	UtilizationPct float64
	// UtilizationValid reports whether eq. 5 was computable: link
	// tracking on, a positive wall time (the denominator), and at
	// least one used link. When false, UtilizationPct (and the
	// per-class breakdown) carry no information and renderers should
	// print "n/a", matching the paper's N/A convention.
	UtilizationValid bool
	// GlobalMsgShare is the fraction of inter-node messages whose route
	// crosses at least one global link (the dragonfly analysis of
	// Section 6.2). Zero for topologies without global links.
	GlobalMsgShare float64
	// ByteHops is Σ over messages of bytes·hops — the total link-time
	// load, useful for energy estimates.
	ByteHops uint64
	// ClassUtilizationPct breaks eq. 5 down by link class (terminal /
	// local / global, used links only). The paper's discussion builds on
	// this asymmetry: dragonfly global links run much hotter than local
	// ones, so they could be provisioned at higher bandwidth while local
	// links are scaled down. Populated only with TrackLinks.
	ClassUtilizationPct map[topology.LinkClass]float64
}

// Run evaluates the matrix on the topology under the mapping.
func Run(m *comm.Matrix, topo topology.Topology, mp *mapping.Mapping, opts Options) (*Result, error) {
	if mp.Ranks() < m.Ranks() {
		return nil, fmt.Errorf("netmodel: mapping covers %d ranks, matrix has %d", mp.Ranks(), m.Ranks())
	}
	if mp.Nodes() > topo.Nodes() {
		return nil, fmt.Errorf("netmodel: mapping node space %d exceeds topology %s (%d nodes)",
			mp.Nodes(), topo.Name(), topo.Nodes())
	}
	if opts.WallTime < 0 {
		return nil, fmt.Errorf("netmodel: negative wall time %v", opts.WallTime)
	}
	bw := opts.BandwidthBytesPerSec
	if bw == 0 {
		bw = DefaultBandwidth
	}
	if bw < 0 {
		return nil, fmt.Errorf("netmodel: negative bandwidth %v", bw)
	}

	res := &Result{Topology: topo.Name()}
	var classes []topology.LinkClass
	if opts.TrackLinks {
		res.LinkBytes = make([]uint64, len(topo.Links()))
		classes = topo.LinkClasses()
	}
	// Resolve the rank→node table once instead of twice per matrix pair.
	nodeOf := make([]int, m.Ranks())
	for r := range nodeOf {
		n, err := mp.NodeOf(r)
		if err != nil {
			return nil, err
		}
		nodeOf[r] = n
	}
	var globalMsgs uint64
	var iterErr error
	if torus, ok := topo.(*topology.Torus); ok && opts.TrackLinks {
		// Torus fast path: hop counts are O(1) and the per-link loads of
		// one source's routes are tree-accumulated in O(nodes) instead of
		// walking every pair's route. A torus has no global links, so
		// GlobalMsgShare stays zero exactly as the route walk would leave
		// it. Flows from different sources are independent integer sums,
		// so accumulating rank by rank is exact even when several ranks
		// share a node.
		dstBytes := make([]uint64, topo.Nodes())
		var sc topology.FlowScratch
		for src := 0; src < m.Ranks() && iterErr == nil; src++ {
			ns := nodeOf[src]
			any := false
			m.EachDst(src, func(dst int, e comm.Entry) {
				nd := nodeOf[dst]
				if ns == nd {
					res.IntraNodeBytes += e.Bytes
					return
				}
				res.InterNodeBytes += e.Bytes
				res.Messages += e.Messages
				res.Packets += e.Packets
				hops := uint64(torus.HopCount(ns, nd))
				res.PacketHops += e.Packets * hops
				res.ByteHops += e.Bytes * hops
				if e.Bytes > 0 {
					dstBytes[nd] += e.Bytes
					any = true
				}
			})
			if !any {
				continue
			}
			iterErr = torus.AccumulateFlows(ns, dstBytes, res.LinkBytes, &sc)
			for i := range dstBytes {
				dstBytes[i] = 0
			}
		}
	} else {
		var buf []int
		m.Each(func(k comm.Key, e comm.Entry) {
			if iterErr != nil {
				return
			}
			ns, nd := nodeOf[k.Src], nodeOf[k.Dst]
			if ns == nd {
				res.IntraNodeBytes += e.Bytes
				return
			}
			res.InterNodeBytes += e.Bytes
			res.Messages += e.Messages
			res.Packets += e.Packets
			var hops int
			if opts.TrackLinks {
				// The routed path is minimal (property-tested against BFS
				// for every topology), so its length doubles as the hop
				// count — one traversal instead of HopCount plus Route.
				var err error
				buf, err = topo.Route(ns, nd, buf)
				if err != nil {
					iterErr = err
					return
				}
				hops = len(buf)
				crossesGlobal := false
				for _, li := range buf {
					res.LinkBytes[li] += e.Bytes
					if classes[li] == topology.ClassGlobal {
						crossesGlobal = true
					}
				}
				if crossesGlobal {
					globalMsgs += e.Messages
				}
			} else {
				hops = topo.HopCount(ns, nd)
			}
			res.PacketHops += e.Packets * uint64(hops)
			res.ByteHops += e.Bytes * uint64(hops)
		})
	}
	if iterErr != nil {
		return nil, iterErr
	}

	if res.Packets > 0 {
		res.AvgHops = float64(res.PacketHops) / float64(res.Packets)
	}
	if opts.TrackLinks {
		classBytes := map[topology.LinkClass]uint64{}
		classUsed := map[topology.LinkClass]int{}
		for li, b := range res.LinkBytes {
			if b > 0 {
				res.UsedLinks++
				classBytes[classes[li]] += b
				classUsed[classes[li]]++
				if b > res.MaxLinkBytes {
					res.MaxLinkBytes = b
				}
				if res.MinUsedLinkBytes == 0 || b < res.MinUsedLinkBytes {
					res.MinUsedLinkBytes = b
				}
			}
		}
		if res.Messages > 0 {
			res.GlobalMsgShare = float64(globalMsgs) / float64(res.Messages)
		}
		if res.UsedLinks > 0 && opts.WallTime > 0 {
			res.UtilizationValid = true
			res.UtilizationPct = 100 * float64(res.InterNodeBytes) /
				(bw * opts.WallTime * float64(res.UsedLinks))
			res.ClassUtilizationPct = make(map[topology.LinkClass]float64, len(classBytes))
			for class, bytes := range classBytes {
				// Per-class utilization is the mean busy share of that
				// class's used links.
				res.ClassUtilizationPct[class] = 100 * float64(bytes) /
					(bw * opts.WallTime * float64(classUsed[class]))
			}
		}
	}
	return res, nil
}

// InterNodeBytes returns the traffic volume crossing node boundaries when
// ranks are packed ranksPerNode to a node — the paper's multi-core study
// (Figure 5). The node space is sized to fit; no topology is involved
// because the metric is distance-independent.
func InterNodeBytes(m *comm.Matrix, ranksPerNode int) (inter, intra uint64, err error) {
	if ranksPerNode <= 0 {
		return 0, 0, fmt.Errorf("netmodel: non-positive ranks-per-node %d", ranksPerNode)
	}
	m.Each(func(k comm.Key, e comm.Entry) {
		if k.Src/ranksPerNode == k.Dst/ranksPerNode {
			intra += e.Bytes
		} else {
			inter += e.Bytes
		}
	})
	return inter, intra, nil
}

// MultiCoreSeries evaluates InterNodeBytes for each cores-per-node value
// and returns the inter-node volume relative to the 1-rank-per-node
// configuration (the series of Figure 5). The 1-per-node baseline equals
// the total traffic, since distinct ranks always land on distinct nodes.
func MultiCoreSeries(m *comm.Matrix, coresPerNode []int) ([]float64, error) {
	total := m.TotalBytes()
	out := make([]float64, len(coresPerNode))
	for i, c := range coresPerNode {
		inter, _, err := InterNodeBytes(m, c)
		if err != nil {
			return nil, err
		}
		if total == 0 {
			out[i] = 0
			continue
		}
		out[i] = float64(inter) / float64(total)
	}
	return out, nil
}

// ConventionalLinkCount returns the paper's per-topology link-count
// convention for the utilization denominator, scaled to the number of
// nodes actually hosting ranks:
//
//	torus:     3 links per node (one per dimension)
//	fat tree:  nodes · stages, with only half counted for the top stage
//	dragonfly: nodes · (p + (a-1) + h) / p  (the 3.5–3.8 links/node ratio
//	           quoted in the paper)
//
// This is exposed for comparison; Run's utilization uses the explicit
// used-link count from the routed traffic, which the paper's fairness rule
// ("only links that are actually transmitting data") describes.
func ConventionalLinkCount(topo topology.Topology, usedNodes int) (float64, error) {
	if usedNodes <= 0 || usedNodes > topo.Nodes() {
		return 0, fmt.Errorf("netmodel: used nodes %d outside (0,%d]", usedNodes, topo.Nodes())
	}
	switch t := topo.(type) {
	case *topology.Torus:
		return 3 * float64(usedNodes), nil
	case *topology.FatTree:
		return float64(usedNodes) * (float64(t.Stages()) - 0.5), nil
	case *topology.Dragonfly:
		a, h, p := t.Params()
		return float64(usedNodes) * float64(p+(a-1)+h) / float64(p), nil
	default:
		return 0, fmt.Errorf("netmodel: no link convention for %s", topo.Kind())
	}
}
