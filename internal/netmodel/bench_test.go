package netmodel

import (
	"testing"

	"netloc/internal/comm"
	"netloc/internal/mapping"
	"netloc/internal/topology"
)

func benchSetup(b *testing.B, ranks int) (*comm.Matrix, topology.Topology, *mapping.Mapping) {
	b.Helper()
	m, err := comm.NewMatrix(ranks, 0)
	if err != nil {
		b.Fatal(err)
	}
	for r := 0; r < ranks; r++ {
		for k := 1; k <= 26; k++ {
			if err := m.Add(r, (r+k*5)%ranks, 65536); err != nil {
				b.Fatal(err)
			}
		}
	}
	cfg, err := topology.TorusConfig(ranks)
	if err != nil {
		b.Fatal(err)
	}
	topo, err := cfg.Build()
	if err != nil {
		b.Fatal(err)
	}
	mp, err := mapping.Consecutive(ranks, topo.Nodes())
	if err != nil {
		b.Fatal(err)
	}
	return m, topo, mp
}

func BenchmarkRunHopsOnly(b *testing.B) {
	m, topo, mp := benchSetup(b, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(m, topo, mp, Options{WallTime: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunWithLinkTracking(b *testing.B) {
	m, topo, mp := benchSetup(b, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(m, topo, mp, Options{WallTime: 1, TrackLinks: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiCoreSeries(b *testing.B) {
	m, _, _ := benchSetup(b, 512)
	cores := []int{1, 2, 4, 8, 16, 32, 48}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MultiCoreSeries(m, cores); err != nil {
			b.Fatal(err)
		}
	}
}
