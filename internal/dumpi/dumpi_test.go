package dumpi

import (
	"io"
	"strings"
	"testing"

	"netloc/internal/trace"
)

// readers wraps per-rank dump strings as io.Readers.
func readers(dumps ...string) []io.Reader {
	out := make([]io.Reader, len(dumps))
	for i, d := range dumps {
		out[i] = strings.NewReader(d)
	}
	return out
}

const sampleSend = `MPI_Send entering at walltime 100.000100, cputime 0.000100 seconds in thread 0.
int count=1024
datatype datatype=10 (MPI_DOUBLE)
int dest=3
int tag=7
comm comm=2 (MPI_COMM_WORLD)
MPI_Send returning at walltime 100.000200, cputime 0.000200 seconds in thread 0.
`

func TestParseRankSend(t *testing.T) {
	events, span, err := ParseRank(strings.NewReader(sampleSend), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("events = %d", len(events))
	}
	e := events[0]
	if e.Op != trace.OpSend || e.Peer != 3 {
		t.Fatalf("event = %+v", e)
	}
	// 1024 doubles = 8192 bytes.
	if e.Bytes != 8192 {
		t.Fatalf("bytes = %d, want 8192", e.Bytes)
	}
	// Timestamps relative to the first call.
	if e.Start != 0 {
		t.Fatalf("start = %d", e.Start)
	}
	if e.End != 100_000 { // 100 microseconds
		t.Fatalf("end = %d", e.End)
	}
	if span < 0.0000999 || span > 0.0001001 {
		t.Fatalf("span = %v", span)
	}
}

func TestParseRankRecvAndRoot(t *testing.T) {
	in := `MPI_Recv entering at walltime 5.0, cputime 0.1 seconds in thread 0.
int count=10
datatype datatype=4 (MPI_INT)
int source=7
MPI_Recv returning at walltime 5.1, cputime 0.2 seconds in thread 0.
MPI_Bcast entering at walltime 6.0, cputime 0.3 seconds in thread 0.
int count=5
datatype datatype=10 (MPI_DOUBLE)
int root=2
MPI_Bcast returning at walltime 6.1, cputime 0.4 seconds in thread 0.
`
	events, _, err := ParseRank(strings.NewReader(in), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Op != trace.OpRecv || events[0].Peer != 7 || events[0].Bytes != 40 {
		t.Fatalf("recv = %+v", events[0])
	}
	if events[1].Op != trace.OpBcast || events[1].Root != 2 || events[1].Bytes != 40 {
		t.Fatalf("bcast = %+v", events[1])
	}
}

func TestParseRankVectorCounts(t *testing.T) {
	in := `MPI_Alltoallv entering at walltime 1.0, cputime 0.0 seconds in thread 0.
int sendcounts=[4](25, 25, 25, 25)
datatype sendtype=10 (MPI_DOUBLE)
int recvcounts=[4](99, 99, 99, 99)
datatype recvtype=10 (MPI_DOUBLE)
MPI_Alltoallv returning at walltime 1.5, cputime 0.0 seconds in thread 0.
`
	events, _, err := ParseRank(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("events = %d", len(events))
	}
	// Send side wins: 100 doubles = 800 bytes.
	if events[0].Op != trace.OpAlltoallv || events[0].Bytes != 800 {
		t.Fatalf("alltoallv = %+v", events[0])
	}
}

func TestParseRankDerivedDatatypeOneByte(t *testing.T) {
	in := `MPI_Send entering at walltime 1.0, cputime 0.0 seconds in thread 0.
int count=500
datatype datatype=17 (user-defined-struct)
int dest=1
MPI_Send returning at walltime 1.1, cputime 0.0 seconds in thread 0.
`
	events, _, err := ParseRank(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Unknown datatype: one byte per element (the paper's convention).
	if events[0].Bytes != 500 {
		t.Fatalf("bytes = %d, want 500", events[0].Bytes)
	}
}

func TestParseRankSkipsUnknownCalls(t *testing.T) {
	in := `MPI_Init entering at walltime 0.5, cputime 0.0 seconds in thread 0.
MPI_Init returning at walltime 0.6, cputime 0.0 seconds in thread 0.
MPI_Wait entering at walltime 1.0, cputime 0.0 seconds in thread 0.
MPI_Wait returning at walltime 1.2, cputime 0.0 seconds in thread 0.
MPI_Barrier entering at walltime 2.0, cputime 0.0 seconds in thread 0.
comm comm=2 (MPI_COMM_WORLD)
MPI_Barrier returning at walltime 2.1, cputime 0.0 seconds in thread 0.
`
	events, _, err := ParseRank(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Op != trace.OpBarrier {
		t.Fatalf("events = %+v", events)
	}
}

func TestParseRankToleratesTruncation(t *testing.T) {
	// A record missing its return line is dropped, not an error.
	in := sampleSend + `MPI_Send entering at walltime 200.0, cputime 0.0 seconds in thread 0.
int count=10
`
	events, _, err := ParseRank(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("events = %d, want 1", len(events))
	}
}

func TestParseRankBadWalltime(t *testing.T) {
	in := "MPI_Send entering at walltime notanumber, cputime 0 seconds in thread 0.\n"
	if _, _, err := ParseRank(strings.NewReader(in), 0); err == nil {
		t.Fatal("bad walltime accepted")
	}
}

func TestLoadTraceAssemblesRanks(t *testing.T) {
	rank0 := `MPI_Send entering at walltime 10.0, cputime 0 seconds in thread 0.
int count=100
datatype datatype=4 (MPI_INT)
int dest=1
MPI_Send returning at walltime 10.5, cputime 0 seconds in thread 0.
`
	rank1 := `MPI_Recv entering at walltime 10.0, cputime 0 seconds in thread 0.
int count=100
datatype datatype=4 (MPI_INT)
int source=0
MPI_Recv returning at walltime 11.0, cputime 0 seconds in thread 0.
`
	tr2, err := LoadTrace("real-app", readers(rank0, rank1))
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Meta.Ranks != 2 || tr2.Meta.App != "real-app" {
		t.Fatalf("meta = %+v", tr2.Meta)
	}
	if len(tr2.Events) != 2 {
		t.Fatalf("events = %d", len(tr2.Events))
	}
	// Wall time: the longest rank span (rank 1: 1.0 s).
	if tr2.Meta.WallTime != 1.0 {
		t.Fatalf("wall = %v", tr2.Meta.WallTime)
	}
	if err := tr2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadTraceValidation(t *testing.T) {
	if _, err := LoadTrace("x", nil); err == nil {
		t.Fatal("empty stream list accepted")
	}
	// A send to an out-of-range peer fails trace validation.
	bad := `MPI_Send entering at walltime 1.0, cputime 0 seconds in thread 0.
int count=1
int dest=99
MPI_Send returning at walltime 1.1, cputime 0 seconds in thread 0.
`
	if _, err := LoadTrace("x", readers(bad)); err == nil {
		t.Fatal("out-of-range peer accepted")
	}
}

func TestParseRankSendrecv(t *testing.T) {
	in := `MPI_Sendrecv entering at walltime 3.0, cputime 0 seconds in thread 0.
int sendcount=100
datatype sendtype=4 (MPI_INT)
int dest=1
int sendtag=0
int recvcount=999
datatype recvtype=4 (MPI_INT)
int source=3
int recvtag=0
MPI_Sendrecv returning at walltime 3.2, cputime 0 seconds in thread 0.
`
	events, _, err := ParseRank(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("events = %d", len(events))
	}
	e := events[0]
	// The send half is recorded: sendcount x MPI_INT to dest, and the
	// recv side must not clobber it.
	if e.Op != trace.OpSend || e.Peer != 1 || e.Bytes != 400 {
		t.Fatalf("sendrecv = %+v", e)
	}
}
