// Package dumpi ingests the ASCII dump format of sst-dumpi traces (the
// output of the dumpi2ascii tool) and converts it into this repository's
// trace model. The study's original input data is exactly such traces —
// one file per rank — so users holding the Sandia archives can run every
// analysis in this repository on the real data instead of the calibrated
// synthetic workloads.
//
// The parser is deliberately tolerant: it extracts the call name, the
// wall-clock enter/return times, and the parameters the locality analyses
// need (count, datatype, dest/root, communicator), and skips records and
// parameters it does not understand. Per the paper, MPI derived datatypes
// of unknown size are counted as one byte per element.
//
// Recognized record shape (dumpi2ascii):
//
//	MPI_Send entering at walltime 11534.0161, cputime 0.0161 seconds in thread 0.
//	int count=278528
//	datatype datatype=10 (MPI_DOUBLE)
//	int dest=1
//	int tag=0
//	comm comm=2 (MPI_COMM_WORLD)
//	MPI_Send returning at walltime 11534.0162, cputime 0.0162 seconds in thread 0.
package dumpi

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"netloc/internal/trace"
)

// datatypeSizes maps the MPI built-in datatypes dumpi prints to byte
// sizes. Unknown or derived datatypes default to 1 byte per element, the
// paper's convention ("we selected one byte as the according size").
var datatypeSizes = map[string]uint64{
	"MPI_CHAR": 1, "MPI_SIGNED_CHAR": 1, "MPI_UNSIGNED_CHAR": 1, "MPI_BYTE": 1,
	"MPI_SHORT": 2, "MPI_UNSIGNED_SHORT": 2,
	"MPI_INT": 4, "MPI_UNSIGNED": 4, "MPI_FLOAT": 4,
	"MPI_LONG": 8, "MPI_UNSIGNED_LONG": 8, "MPI_DOUBLE": 8,
	"MPI_LONG_LONG": 8, "MPI_UNSIGNED_LONG_LONG": 8, "MPI_LONG_LONG_INT": 8,
	"MPI_LONG_DOUBLE": 16, "MPI_DOUBLE_INT": 12, "MPI_FLOAT_INT": 8,
}

// callOps maps dumpi call names to trace operations. Nonblocking variants
// map to the same operations; wait/test and administrative calls are
// skipped.
var callOps = map[string]trace.Op{
	"MPI_Send": trace.OpSend, "MPI_Isend": trace.OpSend,
	"MPI_Ssend": trace.OpSend, "MPI_Rsend": trace.OpSend, "MPI_Bsend": trace.OpSend,
	"MPI_Sendrecv": trace.OpSend, // send half; the recv half is accounted at its sender
	"MPI_Recv":     trace.OpRecv, "MPI_Irecv": trace.OpRecv,
	"MPI_Bcast":          trace.OpBcast,
	"MPI_Reduce":         trace.OpReduce,
	"MPI_Allreduce":      trace.OpAllreduce,
	"MPI_Gather":         trace.OpGather,
	"MPI_Gatherv":        trace.OpGatherv,
	"MPI_Scatter":        trace.OpScatter,
	"MPI_Scatterv":       trace.OpScatterv,
	"MPI_Allgather":      trace.OpAllgather,
	"MPI_Allgatherv":     trace.OpAllgatherv,
	"MPI_Alltoall":       trace.OpAlltoall,
	"MPI_Alltoallv":      trace.OpAlltoallv,
	"MPI_Reduce_scatter": trace.OpReduceScatter,
	"MPI_Barrier":        trace.OpBarrier,
}

// record is one parsed MPI call before conversion.
type record struct {
	name      string
	enterWall float64
	leaveWall float64
	params    map[string]int64
	datatype  string
	counts    []int64 // vector counts (sendcounts=...)
}

// ParseRank parses one rank's dumpi2ascii stream into trace events. The
// rank ID is not part of the dump; it is supplied by the caller (dumpi
// names files like dumpi-<timestamp>-<rank>.bin).
func ParseRank(r io.Reader, rank int) ([]trace.Event, float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	var events []trace.Event
	var cur *record
	var baseWall float64
	baseSet := false
	var maxWall float64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch {
		case strings.Contains(line, " entering at walltime "):
			name, wall, err := parseEnterLeave(line, " entering at walltime ")
			if err != nil {
				return nil, 0, fmt.Errorf("dumpi: line %d: %w", lineNo, err)
			}
			if !baseSet {
				baseWall, baseSet = wall, true
			}
			cur = &record{name: name, enterWall: wall, params: map[string]int64{}}

		case strings.Contains(line, " returning at walltime "):
			name, wall, err := parseEnterLeave(line, " returning at walltime ")
			if err != nil {
				return nil, 0, fmt.Errorf("dumpi: line %d: %w", lineNo, err)
			}
			if cur == nil || cur.name != name {
				// Tolerate unmatched returns (truncated dumps).
				cur = nil
				continue
			}
			cur.leaveWall = wall
			if wall > maxWall {
				maxWall = wall
			}
			if ev, ok := convert(cur, rank, baseWall); ok {
				events = append(events, ev)
			}
			cur = nil

		case cur != nil:
			parseParamLine(cur, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	wallSpan := 0.0
	if baseSet {
		wallSpan = maxWall - baseWall
	}
	return events, wallSpan, nil
}

// parseEnterLeave extracts the call name and wall time from an
// entering/returning line.
func parseEnterLeave(line, marker string) (string, float64, error) {
	idx := strings.Index(line, marker)
	name := strings.TrimSpace(line[:idx])
	rest := line[idx+len(marker):]
	// "11534.0161, cputime ..." — the wall time ends at the comma.
	if c := strings.IndexAny(rest, ", "); c >= 0 {
		rest = rest[:c]
	}
	wall, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", 0, fmt.Errorf("bad walltime in %q: %w", line, err)
	}
	return name, wall, nil
}

// parseParamLine folds one parameter line into the record. Lines look like
// "int count=278528", "datatype datatype=10 (MPI_DOUBLE)",
// "int dest=1", "int sendcounts=[4](25, 25, 25, 25)".
func parseParamLine(rec *record, line string) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return
	}
	kv := fields[1]
	eq := strings.Index(kv, "=")
	if eq < 0 {
		return
	}
	key := kv[:eq]
	val := kv[eq+1:]
	switch key {
	case "datatype", "sendtype", "recvtype":
		// The human-readable name follows in parentheses.
		if o := strings.Index(line, "("); o >= 0 {
			name := strings.TrimRight(line[o+1:], ")")
			if c := strings.Index(name, ")"); c >= 0 {
				name = name[:c]
			}
			if rec.datatype == "" || key != "recvtype" {
				rec.datatype = strings.TrimSpace(name)
			}
		}
	case "count", "sendcount", "dest", "source", "root", "comm", "commsize":
		if strings.HasPrefix(val, "[") {
			return // vector form handled below
		}
		if n, err := strconv.ParseInt(val, 10, 64); err == nil {
			// First writer wins so recvcount does not clobber sendcount.
			if _, exists := rec.params[normalizeKey(key)]; !exists {
				rec.params[normalizeKey(key)] = n
			}
		}
	case "sendcounts", "counts", "recvcounts":
		if key == "recvcounts" && len(rec.counts) > 0 {
			return
		}
		rec.counts = parseVector(line)
	}
}

func normalizeKey(k string) string {
	switch k {
	case "sendcount":
		return "count"
	}
	return k
}

// parseVector parses "[4](25, 25, 25, 25)" into its values.
func parseVector(line string) []int64 {
	o := strings.Index(line, "](")
	if o < 0 {
		return nil
	}
	body := line[o+2:]
	if c := strings.LastIndex(body, ")"); c >= 0 {
		body = body[:c]
	}
	parts := strings.Split(body, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		if n, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64); err == nil {
			out = append(out, n)
		}
	}
	return out
}

// convert turns a completed record into a trace event; ok is false for
// calls the model skips (waits, administrative calls, recvs are kept for
// completeness).
func convert(rec *record, rank int, baseWall float64) (trace.Event, bool) {
	op, known := callOps[rec.name]
	if !known {
		return trace.Event{}, false
	}
	elemSize := uint64(1)
	if s, ok := datatypeSizes[rec.datatype]; ok {
		elemSize = s
	}
	var elems int64
	if len(rec.counts) > 0 {
		for _, c := range rec.counts {
			elems += c
		}
	} else {
		elems = rec.params["count"]
	}
	if elems < 0 {
		elems = 0
	}
	ev := trace.Event{
		Rank:  rank,
		Op:    op,
		Peer:  -1,
		Root:  -1,
		Bytes: uint64(elems) * elemSize,
		Start: wallToNanos(rec.enterWall, baseWall),
		End:   wallToNanos(rec.leaveWall, baseWall),
	}
	if ev.End < ev.Start {
		ev.End = ev.Start
	}
	switch op {
	case trace.OpSend:
		ev.Peer = int(rec.params["dest"])
	case trace.OpRecv:
		ev.Peer = int(rec.params["source"])
	case trace.OpBcast, trace.OpReduce, trace.OpGather, trace.OpGatherv,
		trace.OpScatter, trace.OpScatterv:
		ev.Root = int(rec.params["root"])
	}
	return ev, true
}

func wallToNanos(wall, base float64) uint64 {
	d := wall - base
	if d < 0 {
		d = 0
	}
	return uint64(d * 1e9)
}

// LoadTrace assembles a full trace from per-rank dumpi2ascii streams
// (index i is rank i). App names the workload; the wall time is the
// largest per-rank span.
func LoadTrace(app string, rankStreams []io.Reader) (*trace.Trace, error) {
	if len(rankStreams) == 0 {
		return nil, fmt.Errorf("dumpi: no rank streams")
	}
	t := &trace.Trace{Meta: trace.Meta{App: app, Ranks: len(rankStreams)}}
	for rank, r := range rankStreams {
		events, span, err := ParseRank(r, rank)
		if err != nil {
			return nil, fmt.Errorf("dumpi: rank %d: %w", rank, err)
		}
		if span > t.Meta.WallTime {
			t.Meta.WallTime = span
		}
		t.Events = append(t.Events, events...)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
