package mpi_test

import (
	"fmt"
	"sort"

	"netloc/internal/mpi"
	"netloc/internal/trace"
)

// The paper's direct translation turns a gather into every rank sending
// its buffer straight to the root.
func ExampleExpandEvent() {
	world, _ := mpi.World(4)
	event := trace.Event{Rank: 2, Op: trace.OpGather, Peer: -1, Root: 0, Bytes: 100}
	msgs, _ := mpi.ExpandEvent(nil, event, world, mpi.ExpandOptions{})
	for _, m := range msgs {
		fmt.Printf("%d -> %d: %d bytes\n", m.Src, m.Dst, m.Bytes)
	}
	// Output:
	// 2 -> 0: 100 bytes
}

// Ring collectives (an ablation strategy) send everything to the +1
// neighbor: an 800-byte allreduce over 8 ranks becomes 14 chunks of 100
// bytes from each rank to its successor.
func ExampleExpandEvent_ringStrategy() {
	world, _ := mpi.World(8)
	event := trace.Event{Rank: 3, Op: trace.OpAllreduce, Peer: -1, Root: -1, Bytes: 800}
	msgs, _ := mpi.ExpandEvent(nil, event, world, mpi.ExpandOptions{Strategy: mpi.StrategyRing})
	fmt.Printf("%d messages, all to rank %d, %d bytes each\n",
		len(msgs), msgs[0].Dst, msgs[0].Bytes)
	// Output:
	// 14 messages, all to rank 4, 100 bytes each
}

// Cartesian communicators recover the geometry dumpi traces lose: a 3x4
// grid, its row sub-communicator, and a periodic shift.
func ExampleCartCreate() {
	world, _ := mpi.World(12)
	cart, _ := mpi.CartCreate(world, []int{3, 4}, []bool{true, false})

	coords, _ := cart.Coords(5)
	fmt.Println("rank 5 coords:", coords)

	row, _ := cart.Sub(5, []bool{false, true})
	ranks := row.Comm().Ranks()
	sort.Ints(ranks)
	fmt.Println("row of rank 5:", ranks)

	src, dst, _ := cart.Shift(5, 0, 1)
	fmt.Printf("shift dim 0: src %d, dst %d\n", src, dst)
	// Output:
	// rank 5 coords: [1 1]
	// row of rank 5: [4 5 6 7]
	// shift dim 0: src 1, dst 9
}
