package mpi

import (
	"reflect"
	"testing"
)

func mustCart(t *testing.T, n int, dims []int, periodic []bool) *Cart {
	t.Helper()
	w, err := World(n)
	if err != nil {
		t.Fatal(err)
	}
	c, err := CartCreate(w, dims, periodic)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCartCreateValidation(t *testing.T) {
	w, _ := World(12)
	cases := []struct {
		dims     []int
		periodic []bool
	}{
		{nil, nil},
		{[]int{3, 4}, []bool{true}},       // flag count mismatch
		{[]int{3, 5}, []bool{true, true}}, // volume mismatch
		{[]int{0, 12}, []bool{true, true}},
		{[]int{-3, -4}, []bool{true, true}},
	}
	for _, c := range cases {
		if _, err := CartCreate(w, c.dims, c.periodic); err == nil {
			t.Errorf("CartCreate(%v, %v) should fail", c.dims, c.periodic)
		}
	}
	if _, err := CartCreate(nil, []int{1}, []bool{false}); err == nil {
		t.Error("nil comm accepted")
	}
}

func TestCartCoordsRankRoundTrip(t *testing.T) {
	c := mustCart(t, 24, []int{2, 3, 4}, []bool{false, false, false})
	for r := 0; r < 24; r++ {
		coords, err := c.Coords(r)
		if err != nil {
			t.Fatal(err)
		}
		back, err := c.Rank(coords)
		if err != nil {
			t.Fatal(err)
		}
		if back != r {
			t.Fatalf("rank %d -> %v -> %d", r, coords, back)
		}
	}
	// MPI convention: last dimension fastest. Rank 1 = (0,0,1).
	coords, _ := c.Coords(1)
	if !reflect.DeepEqual(coords, []int{0, 0, 1}) {
		t.Fatalf("Coords(1) = %v", coords)
	}
	if _, err := c.Coords(24); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	if _, err := c.Rank([]int{0, 0}); err == nil {
		t.Fatal("wrong coord count accepted")
	}
}

func TestCartRankPeriodicity(t *testing.T) {
	c := mustCart(t, 12, []int{3, 4}, []bool{true, false})
	// Periodic dim wraps.
	r, err := c.Rank([]int{-1, 2})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := c.Rank([]int{2, 2})
	if r != want {
		t.Fatalf("periodic wrap = %d, want %d", r, want)
	}
	// Non-periodic dim errors.
	if _, err := c.Rank([]int{0, 4}); err == nil {
		t.Fatal("out-of-range non-periodic coord accepted")
	}
}

func TestCartShift(t *testing.T) {
	c := mustCart(t, 12, []int{3, 4}, []bool{true, false})
	// Rank 5 = (1,1). Shift along dim 0 (periodic, size 3): src (0,1)=1,
	// dst (2,1)=9.
	src, dst, err := c.Shift(5, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if src != 1 || dst != 9 {
		t.Fatalf("shift dim0 = (%d,%d), want (1,9)", src, dst)
	}
	// Shift along dim 1 (non-periodic) from the boundary rank (1,3)=7:
	// dst is MPI_PROC_NULL.
	src, dst, err = c.Shift(7, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if src != 6 || dst != -1 {
		t.Fatalf("boundary shift = (%d,%d), want (6,-1)", src, dst)
	}
	if _, _, err := c.Shift(0, 5, 1); err == nil {
		t.Fatal("bad dimension accepted")
	}
}

func TestCartSubRowsAndColumns(t *testing.T) {
	// 3x4 grid on ranks 0..11: row communicators keep dim 1, column
	// communicators keep dim 0.
	c := mustCart(t, 12, []int{3, 4}, []bool{false, false})
	row, err := c.Sub(5, []bool{false, true}) // rank 5 = (1,1): row 1
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(row.Comm().Ranks(), []int{4, 5, 6, 7}) {
		t.Fatalf("row ranks = %v", row.Comm().Ranks())
	}
	if !reflect.DeepEqual(row.Dims(), []int{4}) {
		t.Fatalf("row dims = %v", row.Dims())
	}
	col, err := c.Sub(5, []bool{true, false}) // column 1
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(col.Comm().Ranks(), []int{1, 5, 9}) {
		t.Fatalf("col ranks = %v", col.Comm().Ranks())
	}
}

func TestCartSubValidation(t *testing.T) {
	c := mustCart(t, 12, []int{3, 4}, []bool{false, false})
	if _, err := c.Sub(0, []bool{true}); err == nil {
		t.Fatal("wrong keep length accepted")
	}
	if _, err := c.Sub(0, []bool{false, false}); err == nil {
		t.Fatal("empty keep accepted")
	}
	if _, err := c.Sub(99, []bool{true, false}); err == nil {
		t.Fatal("bad rank accepted")
	}
}

func TestCartSubOnSubsetCommunicator(t *testing.T) {
	// A cart over a non-identity communicator translates to the global
	// ranks of that communicator.
	sub, err := NewComm([]int{10, 11, 12, 13, 14, 15})
	if err != nil {
		t.Fatal(err)
	}
	c, err := CartCreate(sub, []int{2, 3}, []bool{false, false})
	if err != nil {
		t.Fatal(err)
	}
	row, err := c.Sub(0, []bool{false, true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(row.Comm().Ranks(), []int{10, 11, 12}) {
		t.Fatalf("row globals = %v", row.Comm().Ranks())
	}
}

func TestCartDimsIsCopy(t *testing.T) {
	c := mustCart(t, 6, []int{2, 3}, []bool{false, false})
	d := c.Dims()
	d[0] = 99
	if c.Dims()[0] != 2 {
		t.Fatal("Dims aliases internal slice")
	}
}
