package mpi

import "fmt"

// Cart models an MPI cartesian communicator (MPI_Cart_create): a
// communicator whose ranks are arranged on an n-dimensional grid with
// optional per-dimension periodicity. The paper had to exclude traces
// using cartesian communicators because dumpi records no communicator
// geometry; this implementation closes that gap for synthetic or
// richer-format traces, including the row/column sub-communicators
// (MPI_Cart_sub) that pencil-decomposed FFTs communicate on.
type Cart struct {
	comm     *Comm
	dims     []int
	periodic []bool
}

// CartCreate arranges the communicator's ranks on a grid. The product of
// dims must equal the communicator size; ranks are assigned row-major with
// the last dimension varying fastest (the MPI convention).
func CartCreate(comm *Comm, dims []int, periodic []bool) (*Cart, error) {
	if comm == nil {
		return nil, fmt.Errorf("mpi: nil communicator")
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("mpi: empty dimension list")
	}
	if len(periodic) != len(dims) {
		return nil, fmt.Errorf("mpi: %d dims but %d periodicity flags", len(dims), len(periodic))
	}
	vol := 1
	for i, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("mpi: non-positive dimension %d at index %d", d, i)
		}
		vol *= d
	}
	if vol != comm.Size() {
		return nil, fmt.Errorf("mpi: grid volume %d != communicator size %d", vol, comm.Size())
	}
	return &Cart{
		comm:     comm,
		dims:     append([]int(nil), dims...),
		periodic: append([]bool(nil), periodic...),
	}, nil
}

// Comm returns the underlying communicator.
func (c *Cart) Comm() *Comm { return c.comm }

// Dims returns a copy of the grid dimensions.
func (c *Cart) Dims() []int { return append([]int(nil), c.dims...) }

// Coords returns the grid coordinates of a communicator rank
// (MPI_Cart_coords).
func (c *Cart) Coords(commRank int) ([]int, error) {
	if commRank < 0 || commRank >= c.comm.Size() {
		return nil, fmt.Errorf("mpi: comm rank %d out of range [0,%d)", commRank, c.comm.Size())
	}
	coords := make([]int, len(c.dims))
	rem := commRank
	for i := len(c.dims) - 1; i >= 0; i-- {
		coords[i] = rem % c.dims[i]
		rem /= c.dims[i]
	}
	return coords, nil
}

// Rank returns the communicator rank at the given coordinates
// (MPI_Cart_rank). Out-of-range coordinates in periodic dimensions wrap;
// in non-periodic dimensions they are an error.
func (c *Cart) Rank(coords []int) (int, error) {
	if len(coords) != len(c.dims) {
		return 0, fmt.Errorf("mpi: %d coords for %d dims", len(coords), len(c.dims))
	}
	rank := 0
	for i, v := range coords {
		d := c.dims[i]
		if v < 0 || v >= d {
			if !c.periodic[i] {
				return 0, fmt.Errorf("mpi: coordinate %d out of range [0,%d) in non-periodic dim %d", v, d, i)
			}
			v = ((v % d) + d) % d
		}
		rank = rank*d + v
	}
	return rank, nil
}

// Shift returns the source and destination communicator ranks of an
// MPI_Cart_shift by disp along the given dimension, from the perspective
// of commRank. A rank at a non-periodic boundary gets -1 (MPI_PROC_NULL)
// on the open side.
func (c *Cart) Shift(commRank, dim, disp int) (src, dst int, err error) {
	if dim < 0 || dim >= len(c.dims) {
		return 0, 0, fmt.Errorf("mpi: dimension %d out of range [0,%d)", dim, len(c.dims))
	}
	coords, err := c.Coords(commRank)
	if err != nil {
		return 0, 0, err
	}
	neighbor := func(offset int) int {
		nc := append([]int(nil), coords...)
		nc[dim] += offset
		r, err := c.Rank(nc)
		if err != nil {
			return -1 // open boundary
		}
		return r
	}
	return neighbor(-disp), neighbor(disp), nil
}

// Sub builds the sub-communicator containing commRank and every rank that
// shares its coordinates in the dropped dimensions (MPI_Cart_sub with
// keep[i] selecting the dimensions that remain). The result's ranks are
// ordered by their coordinates in the kept dimensions.
func (c *Cart) Sub(commRank int, keep []bool) (*Cart, error) {
	if len(keep) != len(c.dims) {
		return nil, fmt.Errorf("mpi: %d keep flags for %d dims", len(keep), len(c.dims))
	}
	base, err := c.Coords(commRank)
	if err != nil {
		return nil, err
	}
	var subDims []int
	var subPeriodic []bool
	for i, k := range keep {
		if k {
			subDims = append(subDims, c.dims[i])
			subPeriodic = append(subPeriodic, c.periodic[i])
		}
	}
	if len(subDims) == 0 {
		return nil, fmt.Errorf("mpi: sub-communicator must keep at least one dimension")
	}
	// Enumerate the kept-coordinate space in row-major order.
	vol := 1
	for _, d := range subDims {
		vol *= d
	}
	globals := make([]int, 0, vol)
	coords := append([]int(nil), base...)
	var walk func(kd int) error
	walk = func(kd int) error {
		if kd == len(subDims) {
			cr, err := c.Rank(coords)
			if err != nil {
				return err
			}
			g, err := c.comm.Global(cr)
			if err != nil {
				return err
			}
			globals = append(globals, g)
			return nil
		}
		// Find the kd-th kept dimension.
		idx, seen := -1, 0
		for i, k := range keep {
			if k {
				if seen == kd {
					idx = i
					break
				}
				seen++
			}
		}
		for v := 0; v < c.dims[idx]; v++ {
			coords[idx] = v
			if err := walk(kd + 1); err != nil {
				return err
			}
		}
		coords[idx] = base[idx]
		return nil
	}
	if err := walk(0); err != nil {
		return nil, err
	}
	subComm, err := NewComm(globals)
	if err != nil {
		return nil, err
	}
	return &Cart{comm: subComm, dims: subDims, periodic: subPeriodic}, nil
}
