// Package mpi models the MPI semantics the locality study depends on:
// communicators, point-to-point messages, and the paper's translation of
// collective operations into point-to-point wire messages.
//
// The paper's network model is technology independent: instead of modeling
// vendor-specific collective algorithms (trees, multicast), every collective
// is "translated to point-to-point messages, which are sent in the pattern
// of the particular operation" — e.g. a gather becomes every rank sending a
// p2p message to the root, and vector-based collectives split their data
// evenly across all ranks. This maximally utilizes the network and gives a
// stable upper estimate. Package mpi implements exactly that translation.
package mpi

import (
	"fmt"

	"netloc/internal/trace"
)

// Message is a wire-level point-to-point transfer produced either directly
// by an MPI_Send or by expanding a collective.
type Message struct {
	Src   int
	Dst   int
	Bytes uint64
	// FromCollective marks messages synthesized from a collective
	// operation; the MPI-level locality metrics exclude these.
	FromCollective bool
}

// Comm is an MPI communicator: an ordered group of global ranks. The study
// restricts itself to traces that only use the global communicator, but the
// type supports subsets so that cartesian sub-communicators can be modeled.
type Comm struct {
	ranks []int       // communicator rank -> global rank
	index map[int]int // global rank -> communicator rank
}

// World returns the global communicator of the given size.
func World(n int) (*Comm, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mpi: non-positive communicator size %d", n)
	}
	ranks := make([]int, n)
	for i := range ranks {
		ranks[i] = i
	}
	return newComm(ranks), nil
}

func newComm(ranks []int) *Comm {
	idx := make(map[int]int, len(ranks))
	for i, g := range ranks {
		idx[g] = i
	}
	return &Comm{ranks: ranks, index: idx}
}

// NewComm creates a communicator from an explicit global-rank list. The
// list must be non-empty and free of duplicates and negatives.
func NewComm(globalRanks []int) (*Comm, error) {
	if len(globalRanks) == 0 {
		return nil, fmt.Errorf("mpi: empty communicator")
	}
	seen := make(map[int]bool, len(globalRanks))
	for _, r := range globalRanks {
		if r < 0 {
			return nil, fmt.Errorf("mpi: negative rank %d", r)
		}
		if seen[r] {
			return nil, fmt.Errorf("mpi: duplicate rank %d", r)
		}
		seen[r] = true
	}
	return newComm(append([]int(nil), globalRanks...)), nil
}

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.ranks) }

// Global translates a communicator rank to a global rank.
func (c *Comm) Global(commRank int) (int, error) {
	if commRank < 0 || commRank >= len(c.ranks) {
		return 0, fmt.Errorf("mpi: comm rank %d out of range [0,%d)", commRank, len(c.ranks))
	}
	return c.ranks[commRank], nil
}

// Ranks returns a copy of the communicator's global-rank list.
func (c *Comm) Ranks() []int { return append([]int(nil), c.ranks...) }

// CommRank translates a global rank to its rank within the communicator;
// ok is false when the rank is not a member.
func (c *Comm) CommRank(global int) (commRank int, ok bool) {
	commRank, ok = c.index[global]
	return commRank, ok
}

// ExpandOptions tunes collective expansion.
type ExpandOptions struct {
	// Comm is the communicator collectives address. If nil, the world
	// communicator of the trace is used.
	Comm *Comm
	// Strategy selects the collective algorithm family; the zero value
	// is the paper's direct translation.
	Strategy Strategy
}

// ExpandEvent translates one traced event into wire messages, appending to
// dst and returning the extended slice.
//
// Translation rules (per the paper, Section 4.4):
//
//   - send: one message rank→peer (recv events carry no new volume and
//     expand to nothing).
//   - bcast/scatter: root sends to every other rank. For scatter (a vector
//     operation) the caller-side buffer is split evenly across ranks; for
//     bcast every rank receives the full buffer.
//   - reduce/gather: every non-root rank sends to the root (full buffer for
//     reduce, even split recorded caller-side for gather — each caller's
//     contribution is its own buffer, so the event's Bytes go to the root
//     unsplit; only the rank whose event it is contributes).
//   - allreduce: every rank sends its full buffer to every other rank.
//   - allgather: every rank sends its contribution to every other rank.
//   - alltoall/alltoallv: the caller's buffer is split evenly across the
//     other ranks, one message each.
//   - reducescatter: the caller's buffer is split evenly, one piece to each
//     other rank.
//   - barrier: no data volume, no messages.
//
// Collectives in dumpi traces are recorded once per participating rank, so
// per-event expansion only emits the messages *sourced* by the calling
// rank; iterating over all ranks' events yields the full pattern exactly
// once.
func ExpandEvent(dst []Message, e trace.Event, world *Comm, opts ExpandOptions) ([]Message, error) {
	comm := opts.Comm
	if comm == nil {
		comm = world
	}
	if e.Op.IsCollective() && opts.Strategy != StrategyDirect {
		return expandStrategic(dst, e, comm, opts.Strategy)
	}
	n := comm.Size()
	switch e.Op {
	case trace.OpSend:
		return append(dst, Message{Src: e.Rank, Dst: e.Peer, Bytes: e.Bytes}), nil

	case trace.OpRecv:
		return dst, nil // volume accounted on the send side

	case trace.OpBcast, trace.OpScatter, trace.OpScatterv:
		// Only the root sources traffic. The event stream has one event
		// per rank; emit only from the root's event.
		if e.Rank != e.Root {
			return dst, nil
		}
		per := e.Bytes
		if e.Op != trace.OpBcast && n > 1 {
			per = e.Bytes / uint64(n-1) // vector op: split evenly
		}
		if per == 0 {
			return dst, nil
		}
		for i := 0; i < n; i++ {
			g, err := comm.Global(i)
			if err != nil {
				return dst, err
			}
			if g == e.Rank {
				continue
			}
			dst = append(dst, Message{Src: e.Rank, Dst: g, Bytes: per, FromCollective: true})
		}
		return dst, nil

	case trace.OpReduce, trace.OpGather, trace.OpGatherv:
		// Every non-root rank sends its buffer to the root.
		if e.Rank == e.Root || e.Bytes == 0 {
			return dst, nil
		}
		return append(dst, Message{Src: e.Rank, Dst: e.Root, Bytes: e.Bytes, FromCollective: true}), nil

	case trace.OpAllreduce, trace.OpAllgather, trace.OpAllgatherv:
		// Full exchange: the calling rank sends its buffer to everyone.
		if e.Bytes == 0 || n <= 1 {
			return dst, nil
		}
		for i := 0; i < n; i++ {
			g, err := comm.Global(i)
			if err != nil {
				return dst, err
			}
			if g == e.Rank {
				continue
			}
			dst = append(dst, Message{Src: e.Rank, Dst: g, Bytes: e.Bytes, FromCollective: true})
		}
		return dst, nil

	case trace.OpAlltoall, trace.OpAlltoallv, trace.OpReduceScatter:
		// Vector exchange: the buffer is split evenly across the others.
		if n <= 1 {
			return dst, nil
		}
		per := e.Bytes / uint64(n-1)
		if per == 0 {
			return dst, nil
		}
		for i := 0; i < n; i++ {
			g, err := comm.Global(i)
			if err != nil {
				return dst, err
			}
			if g == e.Rank {
				continue
			}
			dst = append(dst, Message{Src: e.Rank, Dst: g, Bytes: per, FromCollective: true})
		}
		return dst, nil

	case trace.OpBarrier:
		return dst, nil

	default:
		return dst, fmt.Errorf("mpi: cannot expand op %v", e.Op)
	}
}

// ExpandTrace translates a whole trace into wire messages.
func ExpandTrace(t *trace.Trace, opts ExpandOptions) ([]Message, error) {
	world, err := World(t.Meta.Ranks)
	if err != nil {
		return nil, err
	}
	msgs := make([]Message, 0, len(t.Events))
	for i, e := range t.Events {
		msgs, err = ExpandEvent(msgs, e, world, opts)
		if err != nil {
			return nil, fmt.Errorf("mpi: event %d: %w", i, err)
		}
	}
	return msgs, nil
}
