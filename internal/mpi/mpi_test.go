package mpi

import (
	"math/rand"
	"testing"
	"testing/quick"

	"netloc/internal/trace"
)

func mustWorld(t *testing.T, n int) *Comm {
	t.Helper()
	w, err := World(n)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func expand1(t *testing.T, e trace.Event, n int) []Message {
	t.Helper()
	w := mustWorld(t, n)
	msgs, err := ExpandEvent(nil, e, w, ExpandOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return msgs
}

func totalBytes(msgs []Message) uint64 {
	var s uint64
	for _, m := range msgs {
		s += m.Bytes
	}
	return s
}

func TestWorldErrors(t *testing.T) {
	if _, err := World(0); err == nil {
		t.Fatal("World(0) should fail")
	}
	if _, err := World(-3); err == nil {
		t.Fatal("World(-3) should fail")
	}
}

func TestNewCommValidation(t *testing.T) {
	if _, err := NewComm(nil); err == nil {
		t.Fatal("empty comm should fail")
	}
	if _, err := NewComm([]int{0, 0}); err == nil {
		t.Fatal("duplicate rank should fail")
	}
	if _, err := NewComm([]int{-1}); err == nil {
		t.Fatal("negative rank should fail")
	}
	c, err := NewComm([]int{3, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 3 {
		t.Fatalf("Size = %d", c.Size())
	}
	g, err := c.Global(1)
	if err != nil || g != 1 {
		t.Fatalf("Global(1) = %d, %v", g, err)
	}
	if _, err := c.Global(3); err == nil {
		t.Fatal("out-of-range comm rank should fail")
	}
	if _, err := c.Global(-1); err == nil {
		t.Fatal("negative comm rank should fail")
	}
}

func TestCommRanksIsCopy(t *testing.T) {
	c, _ := NewComm([]int{5, 6})
	r := c.Ranks()
	r[0] = 99
	if g, _ := c.Global(0); g != 5 {
		t.Fatal("Ranks() must return a copy")
	}
}

func TestExpandSend(t *testing.T) {
	msgs := expand1(t, trace.Event{Rank: 2, Op: trace.OpSend, Peer: 5, Root: -1, Bytes: 777}, 8)
	if len(msgs) != 1 {
		t.Fatalf("len = %d", len(msgs))
	}
	m := msgs[0]
	if m.Src != 2 || m.Dst != 5 || m.Bytes != 777 || m.FromCollective {
		t.Fatalf("bad message %+v", m)
	}
}

func TestExpandRecvIsSilent(t *testing.T) {
	msgs := expand1(t, trace.Event{Rank: 2, Op: trace.OpRecv, Peer: 5, Root: -1, Bytes: 777}, 8)
	if len(msgs) != 0 {
		t.Fatalf("recv produced %d messages", len(msgs))
	}
}

func TestExpandBcast(t *testing.T) {
	// Root's event: root sends full buffer to everyone else.
	msgs := expand1(t, trace.Event{Rank: 3, Op: trace.OpBcast, Peer: -1, Root: 3, Bytes: 100}, 4)
	if len(msgs) != 3 {
		t.Fatalf("len = %d, want 3", len(msgs))
	}
	for _, m := range msgs {
		if m.Src != 3 || m.Bytes != 100 || !m.FromCollective {
			t.Fatalf("bad message %+v", m)
		}
		if m.Dst == 3 {
			t.Fatal("bcast to self")
		}
	}
	// Non-root event: nothing sourced.
	msgs = expand1(t, trace.Event{Rank: 1, Op: trace.OpBcast, Peer: -1, Root: 3, Bytes: 100}, 4)
	if len(msgs) != 0 {
		t.Fatalf("non-root bcast produced %d messages", len(msgs))
	}
}

func TestExpandScatterSplitsEvenly(t *testing.T) {
	msgs := expand1(t, trace.Event{Rank: 0, Op: trace.OpScatter, Peer: -1, Root: 0, Bytes: 300}, 4)
	if len(msgs) != 3 {
		t.Fatalf("len = %d, want 3", len(msgs))
	}
	for _, m := range msgs {
		if m.Bytes != 100 {
			t.Fatalf("scatter piece = %d, want 100", m.Bytes)
		}
	}
}

func TestExpandReduceGather(t *testing.T) {
	for _, op := range []trace.Op{trace.OpReduce, trace.OpGather, trace.OpGatherv} {
		// Non-root sends to root.
		msgs := expand1(t, trace.Event{Rank: 2, Op: op, Peer: -1, Root: 0, Bytes: 64}, 4)
		if len(msgs) != 1 || msgs[0].Src != 2 || msgs[0].Dst != 0 || msgs[0].Bytes != 64 {
			t.Fatalf("%v: bad expansion %+v", op, msgs)
		}
		// Root's own event contributes nothing.
		msgs = expand1(t, trace.Event{Rank: 0, Op: op, Peer: -1, Root: 0, Bytes: 64}, 4)
		if len(msgs) != 0 {
			t.Fatalf("%v: root event produced %d messages", op, len(msgs))
		}
	}
}

func TestExpandAllreduceFullExchange(t *testing.T) {
	msgs := expand1(t, trace.Event{Rank: 1, Op: trace.OpAllreduce, Peer: -1, Root: -1, Bytes: 8}, 5)
	if len(msgs) != 4 {
		t.Fatalf("len = %d, want 4", len(msgs))
	}
	seen := map[int]bool{}
	for _, m := range msgs {
		if m.Src != 1 || m.Bytes != 8 {
			t.Fatalf("bad message %+v", m)
		}
		seen[m.Dst] = true
	}
	for _, d := range []int{0, 2, 3, 4} {
		if !seen[d] {
			t.Fatalf("missing destination %d", d)
		}
	}
}

func TestExpandAlltoallSplits(t *testing.T) {
	msgs := expand1(t, trace.Event{Rank: 0, Op: trace.OpAlltoall, Peer: -1, Root: -1, Bytes: 900}, 10)
	if len(msgs) != 9 {
		t.Fatalf("len = %d, want 9", len(msgs))
	}
	for _, m := range msgs {
		if m.Bytes != 100 {
			t.Fatalf("piece = %d, want 100", m.Bytes)
		}
	}
	if totalBytes(msgs) != 900 {
		t.Fatalf("total = %d", totalBytes(msgs))
	}
}

func TestExpandReduceScatterSplits(t *testing.T) {
	msgs := expand1(t, trace.Event{Rank: 2, Op: trace.OpReduceScatter, Peer: -1, Root: -1, Bytes: 30}, 4)
	if len(msgs) != 3 {
		t.Fatalf("len = %d, want 3", len(msgs))
	}
	for _, m := range msgs {
		if m.Bytes != 10 || m.Src != 2 {
			t.Fatalf("bad %+v", m)
		}
	}
}

func TestExpandBarrierAndZeroBytes(t *testing.T) {
	if msgs := expand1(t, trace.Event{Rank: 0, Op: trace.OpBarrier, Peer: -1, Root: -1}, 4); len(msgs) != 0 {
		t.Fatal("barrier should expand to nothing")
	}
	if msgs := expand1(t, trace.Event{Rank: 0, Op: trace.OpAllreduce, Peer: -1, Root: -1, Bytes: 0}, 4); len(msgs) != 0 {
		t.Fatal("zero-byte allreduce should expand to nothing")
	}
	// Split smaller than participants rounds down to zero -> nothing.
	if msgs := expand1(t, trace.Event{Rank: 0, Op: trace.OpAlltoall, Peer: -1, Root: -1, Bytes: 2}, 4); len(msgs) != 0 {
		t.Fatal("sub-byte split should expand to nothing")
	}
}

func TestExpandSingleRankComm(t *testing.T) {
	// A communicator of size 1 never produces traffic.
	for _, op := range []trace.Op{trace.OpAllreduce, trace.OpAlltoall, trace.OpAllgather} {
		msgs := expand1(t, trace.Event{Rank: 0, Op: op, Peer: -1, Root: -1, Bytes: 100}, 1)
		if len(msgs) != 0 {
			t.Fatalf("%v on 1 rank produced %d messages", op, len(msgs))
		}
	}
}

func TestExpandSubCommunicator(t *testing.T) {
	world := mustWorld(t, 8)
	sub, err := NewComm([]int{1, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := ExpandEvent(nil, trace.Event{Rank: 3, Op: trace.OpAllreduce, Peer: -1, Root: -1, Bytes: 10},
		world, ExpandOptions{Comm: sub})
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 {
		t.Fatalf("len = %d, want 2", len(msgs))
	}
	dsts := map[int]bool{}
	for _, m := range msgs {
		dsts[m.Dst] = true
	}
	if !dsts[1] || !dsts[5] {
		t.Fatalf("wrong destinations %v", dsts)
	}
}

func TestExpandUnknownOpErrors(t *testing.T) {
	w := mustWorld(t, 2)
	_, err := ExpandEvent(nil, trace.Event{Rank: 0, Op: trace.Op(99), Peer: -1, Root: -1}, w, ExpandOptions{})
	if err == nil {
		t.Fatal("unknown op should error")
	}
}

func TestExpandTraceWholeCollective(t *testing.T) {
	// A 4-rank gather recorded once per rank expands to exactly 3 wire
	// messages overall (the root event contributes none).
	tr := &trace.Trace{Meta: trace.Meta{App: "g", Ranks: 4, WallTime: 1}}
	for r := 0; r < 4; r++ {
		tr.Events = append(tr.Events, trace.Event{Rank: r, Op: trace.OpGather, Peer: -1, Root: 0, Bytes: 10})
	}
	msgs, err := ExpandTrace(tr, ExpandOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 3 {
		t.Fatalf("len = %d, want 3", len(msgs))
	}
	if totalBytes(msgs) != 30 {
		t.Fatalf("total = %d, want 30", totalBytes(msgs))
	}
}

func TestExpandTraceAlltoallPairCount(t *testing.T) {
	// n-rank alltoall recorded on each rank: n*(n-1) wire messages.
	const n = 6
	tr := &trace.Trace{Meta: trace.Meta{App: "a2a", Ranks: n, WallTime: 1}}
	for r := 0; r < n; r++ {
		tr.Events = append(tr.Events, trace.Event{Rank: r, Op: trace.OpAlltoall, Peer: -1, Root: -1, Bytes: 5 * (n - 1)})
	}
	msgs, err := ExpandTrace(tr, ExpandOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != n*(n-1) {
		t.Fatalf("len = %d, want %d", len(msgs), n*(n-1))
	}
	// Every ordered pair appears exactly once.
	seen := map[[2]int]int{}
	for _, m := range msgs {
		seen[[2]int{m.Src, m.Dst}]++
	}
	if len(seen) != n*(n-1) {
		t.Fatalf("distinct pairs = %d, want %d", len(seen), n*(n-1))
	}
	for pair, c := range seen {
		if c != 1 {
			t.Fatalf("pair %v appears %d times", pair, c)
		}
	}
}

// Property: expansion never produces self-messages, never loses more bytes
// than integer division can explain, and marks collective provenance right.
func TestExpandInvariantsProperty(t *testing.T) {
	ops := []trace.Op{trace.OpSend, trace.OpBcast, trace.OpReduce, trace.OpAllreduce,
		trace.OpGather, trace.OpScatter, trace.OpAllgather, trace.OpAlltoall,
		trace.OpAlltoallv, trace.OpReduceScatter, trace.OpBarrier}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		w, err := World(n)
		if err != nil {
			return false
		}
		op := ops[rng.Intn(len(ops))]
		e := trace.Event{Rank: rng.Intn(n), Op: op, Peer: -1, Root: -1, Bytes: uint64(rng.Intn(1 << 16))}
		if op == trace.OpSend {
			e.Peer = (e.Rank + 1 + rng.Intn(n-1)) % n
		}
		switch op {
		case trace.OpBcast, trace.OpReduce, trace.OpGather, trace.OpScatter:
			e.Root = rng.Intn(n)
		}
		msgs, err := ExpandEvent(nil, e, w, ExpandOptions{})
		if err != nil {
			return false
		}
		for _, m := range msgs {
			if m.Src == m.Dst {
				return false
			}
			if m.Src < 0 || m.Src >= n || m.Dst < 0 || m.Dst >= n {
				return false
			}
			if op == trace.OpSend && m.FromCollective {
				return false
			}
			if op != trace.OpSend && !m.FromCollective {
				return false
			}
		}
		// Conservation: expanded volume never exceeds what the pattern
		// can source from this event.
		var max uint64
		switch op {
		case trace.OpSend, trace.OpReduce, trace.OpGather, trace.OpAlltoall,
			trace.OpAlltoallv, trace.OpReduceScatter, trace.OpScatter:
			max = e.Bytes
		case trace.OpBcast, trace.OpAllreduce, trace.OpAllgather:
			max = e.Bytes * uint64(n-1)
		case trace.OpBarrier:
			max = 0
		}
		return totalBytes(msgs) <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
