package mpi

import (
	"testing"

	"netloc/internal/trace"
)

func expandWith(t *testing.T, e trace.Event, n int, s Strategy) []Message {
	t.Helper()
	w := mustWorld(t, n)
	msgs, err := ExpandEvent(nil, e, w, ExpandOptions{Strategy: s})
	if err != nil {
		t.Fatal(err)
	}
	return msgs
}

func TestStrategyString(t *testing.T) {
	if StrategyDirect.String() != "direct" || StrategyTree.String() != "tree" || StrategyRing.String() != "ring" {
		t.Fatal("strategy names wrong")
	}
	if Strategy(9).String() != "strategy(9)" {
		t.Fatal("unknown strategy name")
	}
}

func TestBinomialTreeStructure(t *testing.T) {
	// Standard binomial tree over 8 ranks rooted at 0 (round k: ranks
	// below 2^k send to themselves plus 2^k):
	// 0 -> 1, 2, 4; 1 -> 3, 5; 2 -> 6; 3 -> 7.
	want := map[int][]int{
		0: {1, 2, 4},
		1: {3, 5},
		2: {6},
		3: {7},
		4: {},
		5: {},
		6: {},
		7: {},
	}
	for r, wc := range want {
		got := binomialChildren(r, 0, 8)
		if len(got) != len(wc) {
			t.Fatalf("children(%d) = %v, want %v", r, got, wc)
		}
		for i := range wc {
			if got[i] != wc[i] {
				t.Fatalf("children(%d) = %v, want %v", r, got, wc)
			}
		}
	}
	// Parents are consistent with children.
	for r := 1; r < 8; r++ {
		p := binomialParent(r, 0, 8)
		found := false
		for _, c := range binomialChildren(p, 0, 8) {
			if c == r {
				found = true
			}
		}
		if !found {
			t.Fatalf("rank %d not among children of its parent %d", r, p)
		}
	}
	if binomialParent(0, 0, 8) != -1 {
		t.Fatal("root must have no parent")
	}
}

func TestBinomialTreeRotatedRoot(t *testing.T) {
	// Rooted at 3 over 8 ranks: the virtual tree is the same, rotated.
	if p := binomialParent(3, 3, 8); p != -1 {
		t.Fatalf("root parent = %d", p)
	}
	children := binomialChildren(3, 3, 8)
	want := []int{4, 5, 7} // virtual 1, 2, 4 shifted by +3
	if len(children) != 3 {
		t.Fatalf("children = %v", children)
	}
	for i := range want {
		if children[i] != want[i] {
			t.Fatalf("children = %v, want %v", children, want)
		}
	}
}

func TestBinomialTreeCoversAllRanksOnce(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8, 13, 16, 27} {
		for root := 0; root < n; root += max(1, n/3) {
			seen := map[int]int{}
			for r := 0; r < n; r++ {
				for _, c := range binomialChildren(r, root, n) {
					seen[c]++
				}
			}
			if len(seen) != n-1 {
				t.Fatalf("n=%d root=%d: %d ranks have parents, want %d", n, root, len(seen), n-1)
			}
			for c, cnt := range seen {
				if cnt != 1 {
					t.Fatalf("n=%d root=%d: rank %d has %d parents", n, root, c, cnt)
				}
			}
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestTreeBcastVolume(t *testing.T) {
	// Tree bcast over 8 ranks: total wire volume is 7 x B (one delivery
	// per non-root), spread over the tree edges; aggregated over all
	// rank events.
	const n, bytes = 8, 1000
	var total uint64
	var msgs int
	for r := 0; r < n; r++ {
		out := expandWith(t, trace.Event{Rank: r, Op: trace.OpBcast, Peer: -1, Root: 0, Bytes: bytes}, n, StrategyTree)
		for _, m := range out {
			total += m.Bytes
			msgs++
		}
	}
	if total != bytes*(n-1) {
		t.Fatalf("tree bcast volume = %d, want %d", total, bytes*(n-1))
	}
	if msgs != n-1 {
		t.Fatalf("tree bcast messages = %d, want %d", msgs, n-1)
	}
}

func TestTreeReduceVolume(t *testing.T) {
	// Tree reduce: every non-root sends its buffer once to its parent.
	const n, bytes = 8, 1000
	var total uint64
	for r := 0; r < n; r++ {
		out := expandWith(t, trace.Event{Rank: r, Op: trace.OpReduce, Peer: -1, Root: 2, Bytes: bytes}, n, StrategyTree)
		for _, m := range out {
			total += m.Bytes
			if m.Src != r {
				t.Fatalf("src = %d, want %d", m.Src, r)
			}
		}
	}
	if total != bytes*(n-1) {
		t.Fatalf("tree reduce volume = %d, want %d", total, bytes*(n-1))
	}
}

func TestTreeGatherSubtreeAggregation(t *testing.T) {
	// Gather over 8 ranks rooted at 0: rank 1 forwards its 4-rank
	// subtree (ranks 1,3,5,7) worth of chunks; leaf rank 4 forwards only
	// its own.
	out := expandWith(t, trace.Event{Rank: 1, Op: trace.OpGather, Peer: -1, Root: 0, Bytes: 100}, 8, StrategyTree)
	if len(out) != 1 || out[0].Dst != 0 || out[0].Bytes != 400 {
		t.Fatalf("gather from 1 = %+v", out)
	}
	out = expandWith(t, trace.Event{Rank: 4, Op: trace.OpGather, Peer: -1, Root: 0, Bytes: 100}, 8, StrategyTree)
	if len(out) != 1 || out[0].Dst != 0 || out[0].Bytes != 100 {
		t.Fatalf("gather from 4 = %+v", out)
	}
}

func TestTreeScatterSubtreeChunks(t *testing.T) {
	// Scatter over 8 ranks from root 0 with caller buffer covering the 7
	// receivers (700 bytes -> 100 per rank): the edge to rank 1 carries
	// its 4-rank subtree, rank 2 its 2-rank subtree, rank 4 only itself.
	out := expandWith(t, trace.Event{Rank: 0, Op: trace.OpScatter, Peer: -1, Root: 0, Bytes: 700}, 8, StrategyTree)
	byDst := map[int]uint64{}
	for _, m := range out {
		byDst[m.Dst] = m.Bytes
	}
	if byDst[1] != 400 || byDst[2] != 200 || byDst[4] != 100 {
		t.Fatalf("scatter chunks = %v", byDst)
	}
}

func TestTreeAllreduceLogPartners(t *testing.T) {
	out := expandWith(t, trace.Event{Rank: 3, Op: trace.OpAllreduce, Peer: -1, Root: -1, Bytes: 64}, 16, StrategyTree)
	if len(out) != 4 { // log2(16)
		t.Fatalf("partners = %d, want 4", len(out))
	}
	wantDst := map[int]bool{4: true, 5: true, 7: true, 11: true} // 3+1, 3+2, 3+4, 3+8
	for _, m := range out {
		if !wantDst[m.Dst] {
			t.Fatalf("unexpected partner %d", m.Dst)
		}
	}
}

func TestRingAllreduceNeighborOnly(t *testing.T) {
	const n = 8
	out := expandWith(t, trace.Event{Rank: 5, Op: trace.OpAllreduce, Peer: -1, Root: -1, Bytes: 800}, n, StrategyRing)
	if len(out) != 2*(n-1) {
		t.Fatalf("messages = %d, want %d", len(out), 2*(n-1))
	}
	for _, m := range out {
		if m.Dst != 6 {
			t.Fatalf("ring partner = %d, want 6", m.Dst)
		}
		if m.Bytes != 100 { // B/n
			t.Fatalf("chunk = %d, want 100", m.Bytes)
		}
	}
	// Wrap-around for the last rank.
	out = expandWith(t, trace.Event{Rank: 7, Op: trace.OpAllreduce, Peer: -1, Root: -1, Bytes: 800}, n, StrategyRing)
	if out[0].Dst != 0 {
		t.Fatalf("wrap partner = %d, want 0", out[0].Dst)
	}
}

func TestRingAllgatherVolume(t *testing.T) {
	const n = 8
	out := expandWith(t, trace.Event{Rank: 0, Op: trace.OpAllgather, Peer: -1, Root: -1, Bytes: 100}, n, StrategyRing)
	if len(out) != n-1 {
		t.Fatalf("messages = %d", len(out))
	}
	var total uint64
	for _, m := range out {
		total += m.Bytes
	}
	if total != 700 {
		t.Fatalf("volume = %d, want 700", total)
	}
}

func TestRingRootedFallsBackToTree(t *testing.T) {
	outRing := expandWith(t, trace.Event{Rank: 0, Op: trace.OpBcast, Peer: -1, Root: 0, Bytes: 100}, 8, StrategyRing)
	outTree := expandWith(t, trace.Event{Rank: 0, Op: trace.OpBcast, Peer: -1, Root: 0, Bytes: 100}, 8, StrategyTree)
	if len(outRing) != len(outTree) {
		t.Fatalf("ring bcast != tree bcast: %d vs %d", len(outRing), len(outTree))
	}
}

func TestStrategyZeroBytesAndTinyComms(t *testing.T) {
	for _, s := range []Strategy{StrategyTree, StrategyRing} {
		if out := expandWith(t, trace.Event{Rank: 0, Op: trace.OpAllreduce, Peer: -1, Root: -1, Bytes: 0}, 8, s); len(out) != 0 {
			t.Fatalf("%v: zero bytes produced messages", s)
		}
		if out := expandWith(t, trace.Event{Rank: 0, Op: trace.OpAllreduce, Peer: -1, Root: -1, Bytes: 10}, 1, s); len(out) != 0 {
			t.Fatalf("%v: single-rank comm produced messages", s)
		}
		if out := expandWith(t, trace.Event{Rank: 0, Op: trace.OpBarrier, Peer: -1, Root: -1, Bytes: 0}, 8, s); len(out) != 0 {
			t.Fatalf("%v: barrier produced messages", s)
		}
	}
}

func TestStrategyP2PUnaffected(t *testing.T) {
	for _, s := range []Strategy{StrategyTree, StrategyRing} {
		out := expandWith(t, trace.Event{Rank: 0, Op: trace.OpSend, Peer: 3, Root: -1, Bytes: 100}, 8, s)
		if len(out) != 1 || out[0].Dst != 3 || out[0].FromCollective {
			t.Fatalf("%v altered p2p expansion: %+v", s, out)
		}
	}
}

func TestStrategySubCommunicator(t *testing.T) {
	world := mustWorld(t, 16)
	sub, err := NewComm([]int{2, 5, 8, 11})
	if err != nil {
		t.Fatal(err)
	}
	// Ring allreduce from global rank 5 (virtual 1): partner is virtual
	// 2 = global 8.
	msgs, err := ExpandEvent(nil, trace.Event{Rank: 5, Op: trace.OpAllreduce, Peer: -1, Root: -1, Bytes: 400},
		world, ExpandOptions{Comm: sub, Strategy: StrategyRing})
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 6 { // 2*(4-1)
		t.Fatalf("messages = %d", len(msgs))
	}
	for _, m := range msgs {
		if m.Dst != 8 {
			t.Fatalf("sub-comm ring partner = %d, want 8", m.Dst)
		}
	}
	// Non-member rank errors.
	if _, err := ExpandEvent(nil, trace.Event{Rank: 3, Op: trace.OpAllreduce, Peer: -1, Root: -1, Bytes: 4},
		world, ExpandOptions{Comm: sub, Strategy: StrategyRing}); err == nil {
		t.Fatal("non-member accepted")
	}
}

func TestCommRank(t *testing.T) {
	c, err := NewComm([]int{4, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if cr, ok := c.CommRank(7); !ok || cr != 1 {
		t.Fatalf("CommRank(7) = %d, %v", cr, ok)
	}
	if _, ok := c.CommRank(5); ok {
		t.Fatal("non-member resolved")
	}
}
