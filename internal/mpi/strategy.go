package mpi

import (
	"fmt"

	"netloc/internal/trace"
)

// Strategy selects how collectives are translated into wire messages.
//
// The paper deliberately uses the Direct translation ("there is no tree
// structure or similar to spread collectives over the network") to stay
// technology independent and maximally utilize the network. Real MPI
// libraries use algorithmic collectives instead; the Tree and Ring
// strategies model the two most common families so their effect on the
// locality metrics can be quantified (the repository's ablation
// benchmarks do exactly that).
type Strategy uint8

const (
	// StrategyDirect is the paper's translation: rooted collectives
	// become root↔all fan-in/fan-out, unrooted ones full exchanges.
	StrategyDirect Strategy = iota
	// StrategyTree uses binomial trees for the rooted collectives
	// (bcast, reduce, gather, scatter) and recursive-doubling-style
	// log-partner exchanges for allreduce/allgather. Message counts drop
	// from O(n) per root to O(log n) per rank.
	StrategyTree
	// StrategyRing uses ring algorithms for the unrooted collectives
	// (allreduce, allgather, reducescatter): every rank talks only to
	// its +1 neighbor, turning collectives into perfectly local traffic.
	// Rooted collectives fall back to the tree algorithm.
	StrategyRing
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyDirect:
		return "direct"
	case StrategyTree:
		return "tree"
	case StrategyRing:
		return "ring"
	}
	return fmt.Sprintf("strategy(%d)", uint8(s))
}

// ParseStrategy is the inverse of Strategy.String. The empty string
// means the paper's direct translation. It backs the -strategy CLI flags
// and the service's strategy query parameter.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "", "direct":
		return StrategyDirect, nil
	case "tree":
		return StrategyTree, nil
	case "ring":
		return StrategyRing, nil
	}
	return 0, fmt.Errorf("mpi: unknown strategy %q (direct|tree|ring)", s)
}

// binomialChildren returns the children of rank r in a binomial tree
// rooted at root over n ranks (ranks are rotated so the root is vertex 0).
func binomialChildren(r, root, n int) []int {
	v := (r - root + n) % n // virtual rank, root at 0
	var children []int
	// Children of v are v + 2^k for each k where 2^k > lowest set bit
	// span... standard construction: v's children are v | (1<<k) for
	// k from (position after v's lowest set bit context). Using the
	// common iterative form: for mask = 1; mask < n; mask <<= 1, v gets
	// child v+mask iff v < mask*... Simpler equivalent: v's children are
	// v + m for each power of two m with m > v's least significant set
	// bit... The classic rule: rank v receives from v - 2^floor(log2(v))
	// and sends to v + 2^k for all 2^k with v + 2^k < n and 2^k > v's
	// highest set bit.
	hb := highestBit(v)
	for m := nextPow2After(hb, v); m < n; m <<= 1 {
		c := v + m
		if c < n {
			children = append(children, (c+root)%n)
		}
	}
	return children
}

// highestBit returns the value of the highest set bit of v (0 for v==0).
func highestBit(v int) int {
	h := 0
	for b := 1; b <= v; b <<= 1 {
		if v&b != 0 {
			h = b
		}
	}
	return h
}

// nextPow2After returns the smallest power of two strictly greater than
// hb (1 when hb is 0); used to find the first child offset of v.
func nextPow2After(hb, v int) int {
	if v == 0 {
		return 1
	}
	return hb << 1
}

// binomialParent returns the parent of rank r in the binomial tree rooted
// at root, or -1 for the root itself.
func binomialParent(r, root, n int) int {
	v := (r - root + n) % n
	if v == 0 {
		return -1
	}
	p := v - highestBit(v)
	return (p + root) % n
}

// subtreeSize returns the number of vertices in the binomial subtree
// rooted at virtual rank v over n ranks.
func subtreeSize(v, n int) int {
	size := 1
	hb := highestBit(v)
	for m := nextPow2After(hb, v); ; m <<= 1 {
		c := v + m
		if c >= n {
			break
		}
		size += subtreeSizeBounded(c, n)
	}
	return size
}

func subtreeSizeBounded(v, n int) int { return subtreeSize(v, n) }

// expandStrategic dispatches a collective event to the selected
// algorithmic expansion, translating between global ranks and
// communicator-virtual ranks.
func expandStrategic(dst []Message, e trace.Event, comm *Comm, s Strategy) ([]Message, error) {
	vr, ok := comm.CommRank(e.Rank)
	if !ok {
		return dst, fmt.Errorf("mpi: rank %d not in communicator", e.Rank)
	}
	vroot := 0
	switch e.Op {
	case trace.OpBcast, trace.OpReduce, trace.OpGather, trace.OpGatherv,
		trace.OpScatter, trace.OpScatterv:
		vroot, ok = comm.CommRank(e.Root)
		if !ok {
			return dst, fmt.Errorf("mpi: root %d not in communicator", e.Root)
		}
	}
	switch s {
	case StrategyTree:
		return expandTreeEvent(dst, e, comm, vr, vroot)
	case StrategyRing:
		return expandRingEvent(dst, e, comm, vr, vroot)
	default:
		return dst, fmt.Errorf("mpi: unknown strategy %v", s)
	}
}

// expandTreeEvent emits the messages the calling rank (virtual rank vr,
// virtual root vroot) sources under the tree strategy.
func expandTreeEvent(dst []Message, e trace.Event, comm *Comm, vr, vroot int) ([]Message, error) {
	n := comm.Size()
	if n <= 1 || e.Bytes == 0 {
		return dst, nil
	}
	var emitErr error
	emit := func(toVirtual int, bytes uint64) {
		if bytes == 0 || toVirtual == vr || emitErr != nil {
			return
		}
		g, err := comm.Global(toVirtual)
		if err != nil {
			emitErr = err
			return
		}
		dst = append(dst, Message{Src: e.Rank, Dst: g, Bytes: bytes, FromCollective: true})
	}
	switch e.Op {
	case trace.OpBcast:
		for _, c := range binomialChildren(vr, vroot, n) {
			emit(c, e.Bytes)
		}
	case trace.OpScatter, trace.OpScatterv:
		// Each tree edge carries the chunks of the child's whole
		// subtree. The caller-side buffer covers all n-1 receivers.
		per := e.Bytes / uint64(n-1)
		for _, c := range binomialChildren(vr, vroot, n) {
			v := (c - vroot + n) % n
			emit(c, per*uint64(subtreeSize(v, n)))
		}
	case trace.OpReduce:
		if p := binomialParent(vr, vroot, n); p >= 0 {
			emit(p, e.Bytes)
		}
	case trace.OpGather, trace.OpGatherv:
		if p := binomialParent(vr, vroot, n); p >= 0 {
			v := (vr - vroot + n) % n
			emit(p, e.Bytes*uint64(subtreeSize(v, n)))
		}
	case trace.OpAllreduce, trace.OpAllgather, trace.OpAllgatherv:
		// Recursive doubling: log2(n) partners at distances 1,2,4,...
		// (wrapped for non-powers of two).
		for m := 1; m < n; m <<= 1 {
			emit((vr+m)%n, e.Bytes)
		}
	case trace.OpAlltoall, trace.OpAlltoallv, trace.OpReduceScatter:
		// Pairwise rounds, same pair volume as direct.
		per := e.Bytes / uint64(n-1)
		for round := 1; round < n; round++ {
			emit((vr+round)%n, per)
		}
	case trace.OpBarrier:
		// Dissemination barrier: zero payload, nothing to emit.
	default:
		return dst, fmt.Errorf("mpi: tree strategy cannot expand %v", e.Op)
	}
	return dst, emitErr
}

// expandRingEvent emits the messages the calling rank sources under the
// ring strategy; rooted collectives use the tree algorithm.
func expandRingEvent(dst []Message, e trace.Event, comm *Comm, vr, vroot int) ([]Message, error) {
	n := comm.Size()
	if n <= 1 || e.Bytes == 0 {
		return dst, nil
	}
	nextG, err := comm.Global((vr + 1) % n)
	if err != nil {
		return dst, err
	}
	emit := func(bytes uint64, count int) {
		if bytes == 0 || nextG == e.Rank {
			return
		}
		for i := 0; i < count; i++ {
			dst = append(dst, Message{Src: e.Rank, Dst: nextG, Bytes: bytes, FromCollective: true})
		}
	}
	switch e.Op {
	case trace.OpAllreduce:
		// Ring allreduce: 2(n-1) chunks of size B/n to the +1 neighbor.
		emit(e.Bytes/uint64(n), 2*(n-1))
		return dst, nil
	case trace.OpAllgather, trace.OpAllgatherv:
		// Ring allgather: n-1 full contributions passed around.
		emit(e.Bytes, n-1)
		return dst, nil
	case trace.OpReduceScatter:
		emit(e.Bytes/uint64(n), n-1)
		return dst, nil
	case trace.OpBarrier:
		return dst, nil
	default:
		return expandTreeEvent(dst, e, comm, vr, vroot)
	}
}
