// Package stats provides small numeric helpers used throughout the
// locality analyses: weighted and unweighted quantiles, histograms, and
// summary statistics.
//
// All functions are pure and deterministic. Weighted variants operate on
// parallel value/weight slices; weights must be non-negative and are not
// required to sum to one.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one sample.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// WeightedMean returns the mean of xs weighted by ws. It returns 0 when the
// total weight is zero. Panics if the slices differ in length.
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic(fmt.Sprintf("stats: length mismatch %d != %d", len(xs), len(ws)))
	}
	var s, w float64
	for i, x := range xs {
		s += x * ws[i]
		w += ws[i]
	}
	if w == 0 {
		return 0
	}
	return s / w
}

// Min returns the smallest element of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (the same convention as numpy's
// default). The input need not be sorted.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v out of range [0,1]", q)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// WeightedQuantileLE returns the smallest value v among xs such that the
// total weight of samples with value <= v reaches at least q of the total
// weight. This "coverage" definition is the one used by the paper's 90%
// rules: e.g. the smallest rank distance covering 90% of traffic.
//
// Samples with zero weight are ignored. Returns ErrEmpty when the total
// weight is zero.
func WeightedQuantileLE(xs, ws []float64, q float64) (float64, error) {
	if len(xs) != len(ws) {
		panic(fmt.Sprintf("stats: length mismatch %d != %d", len(xs), len(ws)))
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v out of range [0,1]", q)
	}
	type vw struct{ v, w float64 }
	pairs := make([]vw, 0, len(xs))
	var total float64
	for i, x := range xs {
		if ws[i] < 0 {
			return 0, fmt.Errorf("stats: negative weight %v", ws[i])
		}
		if ws[i] == 0 {
			continue
		}
		pairs = append(pairs, vw{x, ws[i]})
		total += ws[i]
	}
	if total == 0 {
		return 0, ErrEmpty
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })
	target := q * total
	var cum float64
	for _, p := range pairs {
		cum += p.w
		// A tiny epsilon guards against float accumulation error when q
		// lands exactly on a step boundary.
		if cum >= target-1e-9*total {
			return p.v, nil
		}
	}
	return pairs[len(pairs)-1].v, nil
}

// WeightedQuantileLEInPlace is WeightedQuantileLE for callers that own the
// input slices: xs and ws are compacted and sorted in place (zero-weight
// samples dropped, then ordered by value ascending) instead of copying into
// a scratch pair slice. The per-rank metric loops call this once per rank
// on reused scratch buffers, so it must not allocate.
func WeightedQuantileLEInPlace(xs, ws []float64, q float64) (float64, error) {
	if len(xs) != len(ws) {
		panic(fmt.Sprintf("stats: length mismatch %d != %d", len(xs), len(ws)))
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v out of range [0,1]", q)
	}
	n := 0
	var total float64
	for i, w := range ws {
		if w < 0 {
			return 0, fmt.Errorf("stats: negative weight %v", w)
		}
		if w == 0 {
			continue
		}
		xs[n], ws[n] = xs[i], w
		n++
		total += w
	}
	if total == 0 {
		return 0, ErrEmpty
	}
	xs, ws = xs[:n], ws[:n]
	sortPairsByValue(xs, ws)
	target := q * total
	var cum float64
	for i, w := range ws {
		cum += w
		// A tiny epsilon guards against float accumulation error when q
		// lands exactly on a step boundary.
		if cum >= target-1e-9*total {
			return xs[i], nil
		}
	}
	return xs[n-1], nil
}

// sortPairsByValue sorts the parallel (value, weight) slices by value
// ascending without going through sort.Interface (whose reflect-based
// swapper allocates per call). Ties keep an unspecified weight order, which
// cannot change any coverage result: the crossing value is the same
// whichever equal-valued sample tips the cumulative sum.
func sortPairsByValue(v, w []float64) {
	for len(v) > 12 {
		// Median-of-three pivot, then recurse into the smaller partition
		// so stack depth stays logarithmic.
		mid := len(v) / 2
		last := len(v) - 1
		if v[mid] < v[0] {
			v[mid], v[0] = v[0], v[mid]
			w[mid], w[0] = w[0], w[mid]
		}
		if v[last] < v[0] {
			v[last], v[0] = v[0], v[last]
			w[last], w[0] = w[0], w[last]
		}
		if v[last] < v[mid] {
			v[last], v[mid] = v[mid], v[last]
			w[last], w[mid] = w[mid], w[last]
		}
		pivot := v[mid]
		i, j := 0, last
		for i <= j {
			for v[i] < pivot {
				i++
			}
			for v[j] > pivot {
				j--
			}
			if i <= j {
				v[i], v[j] = v[j], v[i]
				w[i], w[j] = w[j], w[i]
				i++
				j--
			}
		}
		if j+1 < len(v)-i {
			sortPairsByValue(v[:j+1], w[:j+1])
			v, w = v[i:], w[i:]
		} else {
			sortPairsByValue(v[i:], w[i:])
			v, w = v[:j+1], w[:j+1]
		}
	}
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
			w[j], w[j-1] = w[j-1], w[j]
		}
	}
}

// CoverageCount returns how many of the largest weights are needed so that
// their sum reaches at least q of the total weight. This implements the
// paper's selectivity rule: partners sorted by volume descending, count
// until 90% of the rank's volume is covered.
//
// Zero weights are ignored; if the total weight is zero the count is zero.
func CoverageCount(ws []float64, q float64) int {
	s := make([]float64, 0, len(ws))
	var total float64
	for _, w := range ws {
		if w > 0 {
			s = append(s, w)
			total += w
		}
	}
	if total == 0 {
		return 0
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(s)))
	target := q * total
	var cum float64
	for i, w := range s {
		cum += w
		if cum >= target-1e-9*total {
			return i + 1
		}
	}
	return len(s)
}

// CoverageCountInPlace is CoverageCount for callers that own ws: the slice
// is compacted and sorted in place (ascending, then walked backwards for
// the descending accumulation) so the per-rank selectivity loop allocates
// nothing.
func CoverageCountInPlace(ws []float64, q float64) int {
	n := 0
	var total float64
	for _, w := range ws {
		if w > 0 {
			ws[n] = w
			n++
			total += w
		}
	}
	if total == 0 {
		return 0
	}
	ws = ws[:n]
	sort.Float64s(ws)
	target := q * total
	var cum float64
	for i := n - 1; i >= 0; i-- {
		cum += ws[i]
		if cum >= target-1e-9*total {
			return n - i
		}
	}
	return n
}

// Histogram is a fixed-bin histogram over float64 samples.
type Histogram struct {
	lo, hi   float64
	binWidth float64
	counts   []uint64
	under    uint64
	over     uint64
	n        uint64
}

// NewHistogram creates a histogram with the given number of equal-width bins
// spanning [lo, hi). Samples below lo or at/above hi are tracked in
// underflow/overflow counters.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: bins must be positive, got %d", bins)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: invalid range [%v, %v)", lo, hi)
	}
	return &Histogram{
		lo:       lo,
		hi:       hi,
		binWidth: (hi - lo) / float64(bins),
		counts:   make([]uint64, bins),
	}, nil
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.n++
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / h.binWidth)
		if i >= len(h.counts) { // float edge case at hi boundary
			i = len(h.counts) - 1
		}
		h.counts[i]++
	}
}

// N returns the total number of samples recorded, including under/overflow.
func (h *Histogram) N() uint64 { return h.n }

// Counts returns a copy of the per-bin counts.
func (h *Histogram) Counts() []uint64 {
	return append([]uint64(nil), h.counts...)
}

// Underflow returns the number of samples below the histogram range.
func (h *Histogram) Underflow() uint64 { return h.under }

// Overflow returns the number of samples at or above the histogram range.
func (h *Histogram) Overflow() uint64 { return h.over }

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.lo + (float64(i)+0.5)*h.binWidth
}

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	StdDev float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	mn, _ := Min(xs)
	mx, _ := Max(xs)
	mean := Mean(xs)
	med, _ := Quantile(xs, 0.5)
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := 0.0
	if len(xs) > 1 {
		sd = math.Sqrt(ss / float64(len(xs)-1))
	}
	return Summary{N: len(xs), Min: mn, Max: mx, Mean: mean, Median: med, StdDev: sd}, nil
}

// CumulativeShares converts a descending-sorted (or any) weight slice into
// cumulative shares of the total, after sorting descending. The result has
// the same length as the positive-weight subset of ws and is monotone
// non-decreasing, ending at 1 (when any weight is positive). This is the
// series plotted in the paper's Figure 3 / Figure 4 selectivity curves.
func CumulativeShares(ws []float64) []float64 {
	s := make([]float64, 0, len(ws))
	var total float64
	for _, w := range ws {
		if w > 0 {
			s = append(s, w)
			total += w
		}
	}
	if total == 0 {
		return nil
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(s)))
	out := make([]float64, len(s))
	var cum float64
	for i, w := range s {
		cum += w
		out[i] = cum / total
	}
	return out
}
