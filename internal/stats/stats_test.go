package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestMeanSimple(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestWeightedMean(t *testing.T) {
	got := WeightedMean([]float64{1, 10}, []float64{9, 1})
	if !almostEqual(got, 1.9, 1e-12) {
		t.Fatalf("WeightedMean = %v, want 1.9", got)
	}
}

func TestWeightedMeanZeroWeight(t *testing.T) {
	if got := WeightedMean([]float64{5, 6}, []float64{0, 0}); got != 0 {
		t.Fatalf("WeightedMean with zero weights = %v, want 0", got)
	}
}

func TestWeightedMeanLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	WeightedMean([]float64{1}, []float64{1, 2})
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	mn, err := Min(xs)
	if err != nil || mn != -1 {
		t.Fatalf("Min = %v, %v; want -1, nil", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 7 {
		t.Fatalf("Max = %v, %v; want 7, nil", mx, err)
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Fatalf("Min(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Fatalf("Max(nil) err = %v, want ErrEmpty", err)
	}
}

func TestQuantileBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatalf("Quantile(%v) error: %v", c.q, err)
		}
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileInterpolates(t *testing.T) {
	got, err := Quantile([]float64{0, 10}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 3, 1e-12) {
		t.Fatalf("Quantile = %v, want 3", got)
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
	if _, err := Quantile([]float64{1}, -0.1); err == nil {
		t.Fatal("want range error for q<0")
	}
	if _, err := Quantile([]float64{1}, 1.1); err == nil {
		t.Fatal("want range error for q>1")
	}
	if _, err := Quantile([]float64{1}, math.NaN()); err == nil {
		t.Fatal("want range error for NaN")
	}
}

func TestQuantileSingleElement(t *testing.T) {
	got, err := Quantile([]float64{42}, 0.9)
	if err != nil || got != 42 {
		t.Fatalf("Quantile single = %v, %v", got, err)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestWeightedQuantileLECoverage(t *testing.T) {
	// Distances 1,2,3 with volumes 80,15,5: 90% coverage needs distance 2.
	xs := []float64{1, 2, 3}
	ws := []float64{80, 15, 5}
	got, err := WeightedQuantileLE(xs, ws, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("WeightedQuantileLE = %v, want 2", got)
	}
}

func TestWeightedQuantileLEExactBoundary(t *testing.T) {
	// 90% exactly covered at value 1.
	got, err := WeightedQuantileLE([]float64{1, 2}, []float64{90, 10}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("exact boundary = %v, want 1", got)
	}
}

func TestWeightedQuantileLEIgnoresZeroWeights(t *testing.T) {
	got, err := WeightedQuantileLE([]float64{100, 1}, []float64{0, 5}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("got %v, want 1", got)
	}
}

func TestWeightedQuantileLEErrors(t *testing.T) {
	if _, err := WeightedQuantileLE([]float64{1}, []float64{0}, 0.9); err != ErrEmpty {
		t.Fatalf("zero total weight: want ErrEmpty, got %v", err)
	}
	if _, err := WeightedQuantileLE([]float64{1}, []float64{-1}, 0.9); err == nil {
		t.Fatal("negative weight should error")
	}
	if _, err := WeightedQuantileLE([]float64{1}, []float64{1}, 2); err == nil {
		t.Fatal("q out of range should error")
	}
}

func TestCoverageCount(t *testing.T) {
	cases := []struct {
		ws   []float64
		q    float64
		want int
	}{
		{[]float64{50, 30, 15, 5}, 0.9, 3},
		{[]float64{90, 10}, 0.9, 1},
		{[]float64{89, 11}, 0.9, 2},
		{[]float64{1, 1, 1, 1}, 1.0, 4},
		{[]float64{100}, 0.9, 1},
		{nil, 0.9, 0},
		{[]float64{0, 0}, 0.9, 0},
	}
	for _, c := range cases {
		if got := CoverageCount(c.ws, c.q); got != c.want {
			t.Errorf("CoverageCount(%v, %v) = %d, want %d", c.ws, c.q, got, c.want)
		}
	}
}

func TestCoverageCountOrderIndependent(t *testing.T) {
	a := []float64{5, 30, 50, 15}
	b := []float64{50, 30, 15, 5}
	if CoverageCount(a, 0.9) != CoverageCount(b, 0.9) {
		t.Fatal("CoverageCount should be order independent")
	}
}

func TestHistogramBasics(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 11} {
		h.Add(x)
	}
	if h.N() != 7 {
		t.Fatalf("N = %d, want 7", h.N())
	}
	if h.Underflow() != 1 {
		t.Fatalf("Underflow = %d, want 1", h.Underflow())
	}
	if h.Overflow() != 2 {
		t.Fatalf("Overflow = %d, want 2", h.Overflow())
	}
	counts := h.Counts()
	if counts[0] != 2 { // 0 and 1.9
		t.Fatalf("bin0 = %d, want 2", counts[0])
	}
	if counts[1] != 1 { // 2
		t.Fatalf("bin1 = %d, want 1", counts[1])
	}
	if counts[4] != 1 { // 9.99
		t.Fatalf("bin4 = %d, want 1", counts[4])
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Fatal("zero bins should error")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Fatal("empty range should error")
	}
	if _, err := NewHistogram(6, 5, 3); err == nil {
		t.Fatal("inverted range should error")
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h, _ := NewHistogram(0, 10, 5)
	if got := h.BinCenter(0); got != 1 {
		t.Fatalf("BinCenter(0) = %v, want 1", got)
	}
	if got := h.BinCenter(4); got != 9 {
		t.Fatalf("BinCenter(4) = %v, want 9", got)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 || s.Min != 2 || s.Max != 9 || s.Mean != 5 {
		t.Fatalf("unexpected summary %+v", s)
	}
	if !almostEqual(s.Median, 4.5, 1e-12) {
		t.Fatalf("median = %v, want 4.5", s.Median)
	}
	// Sample stddev of that classic set is sqrt(32/7).
	if !almostEqual(s.StdDev, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("stddev = %v", s.StdDev)
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatalf("Summarize(nil) err = %v", err)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if s.StdDev != 0 || s.Mean != 3 || s.Median != 3 {
		t.Fatalf("unexpected %+v", s)
	}
}

func TestCumulativeShares(t *testing.T) {
	got := CumulativeShares([]float64{10, 30, 60})
	want := []float64{0.6, 0.9, 1.0}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("share[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCumulativeSharesEmpty(t *testing.T) {
	if got := CumulativeShares(nil); got != nil {
		t.Fatalf("want nil, got %v", got)
	}
	if got := CumulativeShares([]float64{0}); got != nil {
		t.Fatalf("want nil for all-zero, got %v", got)
	}
}

// Property: quantile of any sample lies within [min, max].
func TestQuantileWithinRangeProperty(t *testing.T) {
	f := func(raw []float64, qraw uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q := float64(qraw%101) / 100
		got, err := Quantile(xs, q)
		if err != nil {
			return false
		}
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		return got >= mn-1e-9 && got <= mx+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: CoverageCount is monotone non-decreasing in q.
func TestCoverageCountMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		ws := make([]float64, len(raw))
		for i, r := range raw {
			ws[i] = float64(r)
		}
		prev := 0
		for _, q := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.0} {
			c := CoverageCount(ws, q)
			if c < prev {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: WeightedQuantileLE result is always one of the input values and
// covers at least q of the weight.
func TestWeightedQuantileLECoversProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(20)
		xs := make([]float64, n)
		ws := make([]float64, n)
		var total float64
		for i := range xs {
			xs[i] = float64(rng.Intn(100))
			ws[i] = float64(rng.Intn(50))
			total += ws[i]
		}
		if total == 0 {
			continue
		}
		q := rng.Float64()
		v, err := WeightedQuantileLE(xs, ws, q)
		if err != nil {
			t.Fatal(err)
		}
		var cum float64
		for i := range xs {
			if xs[i] <= v {
				cum += ws[i]
			}
		}
		if cum+1e-9 < q*total {
			t.Fatalf("coverage %v < q*total %v (v=%v xs=%v ws=%v)", cum, q*total, v, xs, ws)
		}
	}
}

// Property: CumulativeShares is monotone and ends at 1.
func TestCumulativeSharesMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		ws := make([]float64, len(raw))
		anyPos := false
		for i, r := range raw {
			ws[i] = float64(r)
			if r > 0 {
				anyPos = true
			}
		}
		shares := CumulativeShares(ws)
		if !anyPos {
			return shares == nil
		}
		if !sort.Float64sAreSorted(shares) {
			return false
		}
		return almostEqual(shares[len(shares)-1], 1.0, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestInPlaceVariantsMatchOriginals cross-checks the allocation-free
// in-place quantile and coverage-count against the copying originals on
// random data (including zero weights, which both must drop) across a
// spread of quantiles. The in-place variants may permute their inputs,
// so each call gets a fresh copy.
func TestInPlaceVariantsMatchOriginals(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		ws := make([]float64, n)
		for i := range xs {
			xs[i] = math.Floor(rng.Float64()*100) / 10
			if rng.Intn(4) == 0 {
				ws[i] = 0 // zero-weight samples must be dropped identically
			} else {
				ws[i] = rng.Float64() * 10
			}
		}
		for _, q := range []float64{0.1, 0.5, 0.9, 1} {
			want, wantErr := WeightedQuantileLE(append([]float64(nil), xs...), append([]float64(nil), ws...), q)
			got, gotErr := WeightedQuantileLEInPlace(append([]float64(nil), xs...), append([]float64(nil), ws...), q)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("trial %d q=%g: error mismatch: %v vs %v", trial, q, wantErr, gotErr)
			}
			if wantErr == nil && got != want {
				t.Fatalf("trial %d q=%g: WeightedQuantileLEInPlace = %v, want %v (xs=%v ws=%v)",
					trial, q, got, want, xs, ws)
			}
			wantC := CoverageCount(append([]float64(nil), ws...), q)
			gotC := CoverageCountInPlace(append([]float64(nil), ws...), q)
			if gotC != wantC {
				t.Fatalf("trial %d q=%g: CoverageCountInPlace = %d, want %d (ws=%v)",
					trial, q, gotC, wantC, ws)
			}
		}
	}
}
