package report

import (
	"fmt"
	"io"
	"strconv"

	"netloc/internal/design"
)

// DesignSheet renders a ranked design sheet as an aligned table (or
// CSV): one row per (configuration, mapping) candidate, best first,
// with the score inputs the optimizer ranked by.
func DesignSheet(w io.Writer, sheet *design.Sheet, csv bool) error {
	header := []string{"rank", "candidate", "nodes", "avg hops", "max hops", "mpl",
		"util %", "makespan s", "switches", "links", "cost", "score"}
	rows := make([][]string, 0, len(sheet.Rows))
	for _, r := range sheet.Rows {
		util := "n/a"
		if r.UtilizationValid {
			util = fu(r.UtilizationPct)
		}
		rows = append(rows, []string{
			strconv.Itoa(r.Rank),
			r.Name,
			strconv.Itoa(r.Nodes),
			f2(r.AvgHops),
			strconv.Itoa(r.MaxHops),
			f2(r.MeanPathLength),
			util,
			strconv.FormatFloat(r.MakespanSec, 'g', 4, 64),
			strconv.Itoa(r.Cost.Switches),
			strconv.Itoa(r.Cost.Links),
			f1(r.CostUnits),
			f2(r.Score),
		})
	}
	if csv {
		return writeCSV(w, header, rows)
	}
	if _, err := fmt.Fprintf(w, "design sheet: %s @ %d ranks (%d configs enumerated, %d filtered by cost caps)\n",
		sheet.App, sheet.Ranks, sheet.Configs, sheet.Filtered); err != nil {
		return err
	}
	return writeTable(w, header, rows)
}
