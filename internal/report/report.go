// Package report renders the study's tables and figure series as aligned
// text and CSV, matching the row/column layout of the paper so runs can be
// compared against the published numbers side by side.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"netloc/internal/core"
)

// writeTable renders rows of cells with padded, right-aligned columns.
func writeTable(w io.Writer, header []string, rows [][]string) error {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i == 0 {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c) // left-align first column
			} else {
				parts[i] = fmt.Sprintf("%*s", widths[i], c)
			}
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(header)); err != nil {
		return err
	}
	total := len(header) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// writeCSV renders rows as comma-separated values with a header.
func writeCSV(w io.Writer, header []string, rows [][]string) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	all := append([][]string{header}, rows...)
	for _, row := range all {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// JSONBytes marshals a structured result the way every JSON surface of
// the repo (the analysis service, the -json CLI flags) encodes it:
// two-space indent, trailing newline. Keeping one marshaling point
// guarantees the CLI and the service emit byte-identical documents for
// the same rows.
func JSONBytes(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// JSON writes JSONBytes(v) to w.
func JSON(w io.Writer, v any) error {
	b, err := JSONBytes(v)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

func f1(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }
func f2(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }

// fu formats utilization percentages like the paper (fixed point for
// ordinary values, scientific for the tiny ones).
func fu(v float64) string {
	if v != 0 && v < 0.0001 {
		return strconv.FormatFloat(v, 'E', 1, 64)
	}
	return strconv.FormatFloat(v, 'f', 4, 64)
}

// fg formats large counts in short scientific form like the paper's
// packet-hop cells.
func fg(v uint64) string {
	return strconv.FormatFloat(float64(v), 'E', 1, 64)
}

func star(b bool) string {
	if b {
		return " (*)"
	}
	return ""
}

// Table1 renders the workload-overview table.
func Table1(w io.Writer, rows []core.Table1Row, csv bool) error {
	header := []string{"Application", "Ranks", "Time[s]", "Vol[MB]", "P2P[%]", "Coll[%]", "Vol/t[MB/s]"}
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.App + star(r.Star),
			strconv.Itoa(r.Ranks),
			strconv.FormatFloat(r.TimeS, 'g', 4, 64),
			f1(r.VolMB),
			f2(r.P2PPct),
			f2(r.CollPct),
			f2(r.RateMBps),
		}
	}
	if csv {
		return writeCSV(w, header, out)
	}
	return writeTable(w, header, out)
}

// Table2 renders the topology-configuration table.
func Table2(w io.Writer, rows []core.Table2Row, csv bool) error {
	header := []string{"Size", "Torus", "T.Nodes", "FatTree", "F.Nodes", "Dragonfly", "D.Nodes"}
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			strconv.Itoa(r.Size),
			r.Torus.String(), strconv.Itoa(r.Torus.Nodes),
			r.FatTree.String(), strconv.Itoa(r.FatTree.Nodes),
			r.Dragonfly.String(), strconv.Itoa(r.Dragonfly.Nodes),
		}
	}
	if csv {
		return writeCSV(w, header, out)
	}
	return writeTable(w, header, out)
}

// Table3 renders the main characterization table.
func Table3(w io.Writer, rows []*core.Analysis, csv bool) error {
	header := []string{
		"Workload", "Ranks", "Peers", "RankDist(90%)", "Select(90%)",
		"T.PktHops", "T.hops", "T.Util[%]",
		"F.PktHops", "F.hops", "F.Util[%]",
		"D.PktHops", "D.hops", "D.Util[%]",
	}
	out := make([][]string, 0, len(rows))
	for _, a := range rows {
		row := []string{a.App, strconv.Itoa(a.Ranks)}
		if a.HasP2P {
			row = append(row, strconv.Itoa(a.Peers), f1(a.RankDistance), f1(a.Selectivity))
		} else {
			row = append(row, "N/A", "N/A", "N/A")
		}
		for _, tr := range []*core.TopoResult{a.Torus, a.FatTree, a.Dragonfly} {
			if tr == nil {
				row = append(row, "-", "-", "-")
				continue
			}
			util := "n/a" // incomputable (e.g. zero wall time), the paper's N/A
			if tr.UtilizationValid {
				util = fu(tr.UtilizationPct)
			}
			row = append(row, fg(tr.PacketHops), f2(tr.AvgHops), util)
		}
		out = append(out, row)
	}
	if csv {
		return writeCSV(w, header, out)
	}
	return writeTable(w, header, out)
}

// Table4 renders the dimensionality table.
func Table4(w io.Writer, rows []core.Table4Row, csv bool) error {
	header := []string{"Workload", "Ranks", "1D[%]", "2D[%]", "3D[%]", "Grid2D", "Grid3D"}
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.App, strconv.Itoa(r.Ranks),
			f1(r.Loc1D), f1(r.Loc2D), f1(r.Loc3D),
			intsString(r.Grid2D), intsString(r.Grid3D),
		}
	}
	if csv {
		return writeCSV(w, header, out)
	}
	return writeTable(w, header, out)
}

func intsString(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Curve renders a figure series (x index from 1, share value per point).
func Curve(w io.Writer, label string, shares []float64, csv bool) error {
	header := []string{"partners", label}
	out := make([][]string, len(shares))
	for i, s := range shares {
		out[i] = []string{strconv.Itoa(i + 1), strconv.FormatFloat(s, 'f', 4, 64)}
	}
	if csv {
		return writeCSV(w, header, out)
	}
	return writeTable(w, header, out)
}

// Figure3 renders the selectivity-trend curves, one column per workload.
func Figure3(w io.Writer, curves []core.Figure3Curve, csv bool) error {
	maxLen := 0
	header := []string{"partners"}
	for _, c := range curves {
		header = append(header, fmt.Sprintf("%s/%d", c.App, c.Ranks))
		if len(c.Shares) > maxLen {
			maxLen = len(c.Shares)
		}
	}
	out := make([][]string, maxLen)
	for i := 0; i < maxLen; i++ {
		row := []string{strconv.Itoa(i + 1)}
		for _, c := range curves {
			if i < len(c.Shares) {
				row = append(row, strconv.FormatFloat(c.Shares[i], 'f', 4, 64))
			} else {
				row = append(row, "1.0000")
			}
		}
		out[i] = row
	}
	if csv {
		return writeCSV(w, header, out)
	}
	return writeTable(w, header, out)
}

// Figure5 renders the multi-core traffic series, one row per workload.
func Figure5(w io.Writer, series []core.Figure5Series, csv bool) error {
	if len(series) == 0 {
		_, err := fmt.Fprintln(w, "(no workloads)")
		return err
	}
	header := []string{"Workload", "Ranks"}
	for _, c := range series[0].Cores {
		header = append(header, strconv.Itoa(c)+" c/n")
	}
	out := make([][]string, len(series))
	for i, s := range series {
		row := []string{s.App, strconv.Itoa(s.Ranks)}
		for _, sh := range s.Shares {
			row = append(row, strconv.FormatFloat(sh, 'f', 3, 64))
		}
		out[i] = row
	}
	if csv {
		return writeCSV(w, header, out)
	}
	return writeTable(w, header, out)
}

// Claims renders the headline-findings summary.
func Claims(w io.Writer, c core.Claims) error {
	_, err := fmt.Fprintf(w, `Headline findings over %d configurations (%d with p2p traffic):
  selectivity <= 10 partners:       %.1f%% of p2p configurations (paper: ~89%%)
  utilization < 1%%:                 %.1f%% of (config, topology) cells (paper: ~93%%)
  dragonfly global-link msg share:  %.1f%% average (paper: ~95%%)
  torus lowest avg hops (<256):     %d of %d configurations
  fat tree lowest avg hops (>=256): %d of %d configurations
  max selectivity:                  %.1f (%s)
`,
		c.TotalConfigs, c.P2PConfigs,
		c.SelectivityLE10Pct, c.UtilizationLT1Pct, c.DragonflyGlobalSharePct,
		c.TorusWinsSmall, c.SmallConfigs, c.FatTreeWinsLarge, c.LargeConfigs,
		c.MaxSelectivity, c.MaxSelectivityApp)
	return err
}

// SimTable renders the dynamic-effects (simulation) table: per workload
// and topology, the latency, queueing, and slackness statistics the
// static model cannot produce.
func SimTable(w io.Writer, rows []core.SimRow, csv bool) error {
	header := []string{
		"Workload", "Ranks", "Topology", "Msgs",
		"MeanLat[us]", "Queue[us]", "Delayed[%]", "MeasUtil[%]", "MaxLink[%]", "SlackCover[%]",
	}
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.App, strconv.Itoa(r.Ranks), r.Topology, strconv.Itoa(r.Messages),
			f2(r.MeanLatency * 1e6),
			f2(r.MeanQueueDelay * 1e6),
			f1(100 * r.DelayedShare),
			fu(r.MeasuredUtilizationPct),
			fu(r.MaxLinkBusyPct),
			f1(100 * r.SlackCoverShare),
		}
	}
	if csv {
		return writeCSV(w, header, out)
	}
	return writeTable(w, header, out)
}

// Congestion renders the temporal congestion-study grid: per (workload,
// topology, policy) the queueing and link-busy picture, plus the
// latency-tolerance sweep on the baseline rows ("-" elsewhere).
func Congestion(w io.Writer, rows []core.CongestionRow, csv bool) error {
	header := []string{
		"Workload", "Ranks", "Topology", "Policy", "Msgs",
		"MeanLat[us]", "Queue[us]", "Delayed[%]",
		"p50Busy[%]", "p99Busy[%]", "MaxBusy[%]", "MaxQ", "Hotspot[%]",
		"Detour[%]", "Tol[us/hop]",
	}
	out := make([][]string, len(rows))
	for i, r := range rows {
		tol := "-"
		if r.Tolerance != nil {
			tol = f2(r.Tolerance.PerHopSeconds * 1e6)
			if r.Tolerance.Saturated {
				tol = ">=" + tol
			}
		}
		out[i] = []string{
			r.App, strconv.Itoa(r.Ranks), r.Topology, r.Policy, strconv.Itoa(r.Messages),
			f2(r.MeanLatency * 1e6),
			f2(r.MeanQueueDelay * 1e6),
			f1(100 * r.DelayedShare),
			fu(r.P50LinkBusyPct),
			fu(r.P99LinkBusyPct),
			fu(r.MaxLinkBusyPct),
			strconv.Itoa(r.MaxQueueDepth),
			f1(100 * r.HotspotPersistence),
			f1(100 * r.DetourShare),
			tol,
		}
	}
	if csv {
		return writeCSV(w, header, out)
	}
	return writeTable(w, header, out)
}

// Scorecard renders the quantitative reproduction scorecard.
func Scorecard(w io.Writer, rows []core.ScoreRow, csv bool) error {
	header := []string{"Claim", "Paper", "Measured", "Dev[%]", "Verdict"}
	out := make([][]string, len(rows))
	for i, r := range rows {
		dev := "-"
		if r.Paper != 0 {
			dev = f1(100 * abs(r.Measured-r.Paper) / abs(r.Paper))
		}
		out[i] = []string{r.Claim, f2(r.Paper), f2(r.Measured), dev, r.Verdict}
	}
	if csv {
		return writeCSV(w, header, out)
	}
	if err := writeTable(w, header, out); err != nil {
		return err
	}
	match, close, diff := core.ScorecardSummary(rows)
	_, err := fmt.Fprintf(w, "\n%d MATCH, %d CLOSE, %d DIFF of %d anchors\n",
		match, close, diff, len(rows))
	return err
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
