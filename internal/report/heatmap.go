package report

import (
	"fmt"
	"io"
	"math"

	"netloc/internal/comm"
)

// Heatmap renders a communication matrix as the density plot the paper
// contrasts its metrics against ("locality in MPI-based applications is
// mostly characterized by communication patterns represented in heat maps
// so far"). ASCII output downsamples the matrix to at most maxCells cells
// per side and shades by log-scaled volume; PGM output writes one pixel
// per rank pair for external viewers.

// asciiShades orders shading characters from empty to most intense.
var asciiShades = []byte(" .:-=+*#%@")

// HeatmapASCII writes a downsampled text heat map of the matrix.
func HeatmapASCII(w io.Writer, m *comm.Matrix, maxCells int) error {
	if maxCells <= 0 {
		maxCells = 64
	}
	n := m.Ranks()
	cells := n
	if cells > maxCells {
		cells = maxCells
	}
	grid, maxVal := binMatrix(m, cells)
	if maxVal == 0 {
		_, err := fmt.Fprintln(w, "(no traffic)")
		return err
	}
	if _, err := fmt.Fprintf(w, "comm heatmap: %d ranks -> %dx%d cells, log-shaded, max cell %.3g bytes\n",
		n, cells, cells, maxVal); err != nil {
		return err
	}
	logMax := math.Log1p(maxVal)
	line := make([]byte, cells)
	for y := 0; y < cells; y++ {
		for x := 0; x < cells; x++ {
			v := grid[y*cells+x]
			if v == 0 {
				line[x] = asciiShades[0]
				continue
			}
			idx := 1 + int(math.Log1p(v)/logMax*float64(len(asciiShades)-2)+0.5)
			if idx >= len(asciiShades) {
				idx = len(asciiShades) - 1
			}
			line[x] = asciiShades[idx]
		}
		if _, err := fmt.Fprintf(w, "%s\n", line); err != nil {
			return err
		}
	}
	return nil
}

// HeatmapPGM writes the full-resolution matrix as a binary PGM (P5) image,
// one pixel per ordered rank pair, log-scaled to 8-bit grey (white =
// heaviest traffic).
func HeatmapPGM(w io.Writer, m *comm.Matrix) error {
	n := m.Ranks()
	grid, maxVal := binMatrix(m, n)
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", n, n); err != nil {
		return err
	}
	pixels := make([]byte, n*n)
	if maxVal > 0 {
		logMax := math.Log1p(maxVal)
		for i, v := range grid {
			if v > 0 {
				pixels[i] = byte(40 + math.Log1p(v)/logMax*215)
			}
		}
	}
	_, err := w.Write(pixels)
	return err
}

// binMatrix aggregates the matrix onto a cells x cells grid (source rank
// on the y axis, destination on x) and returns the grid with its maximum.
func binMatrix(m *comm.Matrix, cells int) ([]float64, float64) {
	n := m.Ranks()
	grid := make([]float64, cells*cells)
	scale := float64(cells) / float64(n)
	var maxVal float64
	m.Each(func(k comm.Key, e comm.Entry) {
		y := int(float64(k.Src) * scale)
		x := int(float64(k.Dst) * scale)
		if y >= cells {
			y = cells - 1
		}
		if x >= cells {
			x = cells - 1
		}
		grid[y*cells+x] += float64(e.Bytes)
		if grid[y*cells+x] > maxVal {
			maxVal = grid[y*cells+x]
		}
	})
	return grid, maxVal
}
