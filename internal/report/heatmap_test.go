package report

import (
	"bytes"
	"strings"
	"testing"

	"netloc/internal/comm"
)

func heatMatrix(t *testing.T) *comm.Matrix {
	t.Helper()
	m, err := comm.NewMatrix(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = m.Add(0, 1, 1000000)
	_ = m.Add(1, 0, 1000000)
	_ = m.Add(3, 7, 10)
	return m
}

func TestHeatmapASCII(t *testing.T) {
	var buf bytes.Buffer
	if err := HeatmapASCII(&buf, heatMatrix(t), 8); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 9 { // header + 8 rows (some rows are all blank)
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Heaviest pair renders with the top shade, light pair with a weaker
	// one, empty cells with spaces.
	if !strings.ContainsRune(lines[1], '@') {
		t.Errorf("heavy cell not shaded '@': %q", lines[1])
	}
	if strings.ContainsRune(lines[5], '@') {
		t.Errorf("light-traffic row shaded too strongly: %q", lines[5])
	}
}

func TestHeatmapASCIIDownsamples(t *testing.T) {
	m, err := comm.NewMatrix(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 99; i++ {
		_ = m.Add(i, i+1, 1000)
	}
	var buf bytes.Buffer
	if err := HeatmapASCII(&buf, m, 10); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 11 {
		t.Fatalf("downsampled lines = %d", len(lines))
	}
	if len(lines[1]) != 10 {
		t.Fatalf("row width = %d, want 10", len(lines[1]))
	}
}

func TestHeatmapASCIIEmptyMatrix(t *testing.T) {
	m, err := comm.NewMatrix(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := HeatmapASCII(&buf, m, 4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no traffic") {
		t.Errorf("empty matrix output: %q", buf.String())
	}
}

func TestHeatmapASCIIDefaultCells(t *testing.T) {
	var buf bytes.Buffer
	if err := HeatmapASCII(&buf, heatMatrix(t), 0); err != nil {
		t.Fatal(err)
	}
	// 8-rank matrix stays at 8 cells even with the 64-cell default.
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 9 {
		t.Fatalf("lines = %d", len(lines))
	}
}

func TestHeatmapPGM(t *testing.T) {
	var buf bytes.Buffer
	if err := HeatmapPGM(&buf, heatMatrix(t)); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("P5\n8 8\n255\n")) {
		t.Fatalf("PGM header wrong: %q", out[:12])
	}
	pixels := out[len("P5\n8 8\n255\n"):]
	if len(pixels) != 64 {
		t.Fatalf("pixels = %d, want 64", len(pixels))
	}
	// Pixel (0,1) carries the heavy pair; (3,7) the light one; (0,0) empty.
	if pixels[0*8+1] != 255 {
		t.Errorf("heavy pixel = %d, want 255", pixels[0*8+1])
	}
	if pixels[3*8+7] == 0 || pixels[3*8+7] >= pixels[0*8+1] {
		t.Errorf("light pixel = %d", pixels[3*8+7])
	}
	if pixels[0] != 0 {
		t.Errorf("empty pixel = %d, want 0", pixels[0])
	}
}

func TestHeatmapPGMEmpty(t *testing.T) {
	m, _ := comm.NewMatrix(2, 0)
	var buf bytes.Buffer
	if err := HeatmapPGM(&buf, m); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != len("P5\n2 2\n255\n")+4 {
		t.Fatalf("size = %d", buf.Len())
	}
}
