package report

import (
	"bytes"
	"strings"
	"testing"

	"netloc/internal/core"
	"netloc/internal/topology"
)

func TestTable1Rendering(t *testing.T) {
	rows := []core.Table1Row{
		{App: "AMG", Ranks: 8, TimeS: 0.026, VolMB: 3.0, P2PPct: 100, RateMBps: 116.3},
		{App: "PARTISN", Star: true, Ranks: 168, TimeS: 2.1e6, VolMB: 42123, P2PPct: 99.96, CollPct: 0.04, RateMBps: 0.02},
	}
	var buf bytes.Buffer
	if err := Table1(&buf, rows, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Application", "AMG", "PARTISN (*)", "42123.0", "99.96"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	var csv bytes.Buffer
	if err := Table1(&csv, rows, true); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "Application,Ranks,") {
		t.Fatalf("csv header = %q", lines[0])
	}
}

func TestTable2Rendering(t *testing.T) {
	tor, ft, df, err := topology.Configs(64)
	if err != nil {
		t.Fatal(err)
	}
	rows := []core.Table2Row{{Size: 64, Torus: tor, FatTree: ft, Dragonfly: df}}
	var buf bytes.Buffer
	if err := Table2(&buf, rows, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"(4,4,4)", "(48,2)", "(4,2,2)", "576", "72"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTable3RenderingHandlesNA(t *testing.T) {
	rows := []*core.Analysis{
		{
			App: "BigFFT", Ranks: 9, HasP2P: false,
			Torus:     &core.TopoResult{PacketHops: 1000000, AvgHops: 1.56, UtilizationPct: 0.67},
			FatTree:   &core.TopoResult{PacketHops: 1200000, AvgHops: 1.78, UtilizationPct: 3.07},
			Dragonfly: &core.TopoResult{PacketHops: 2000000, AvgHops: 2.91, UtilizationPct: 1.29},
		},
		{App: "AMG", Ranks: 8, HasP2P: true, Peers: 7, RankDistance: 3.7, Selectivity: 2.8},
	}
	var buf bytes.Buffer
	if err := Table3(&buf, rows, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "N/A") {
		t.Error("missing N/A for BigFFT")
	}
	if !strings.Contains(out, "1.0E+06") {
		t.Errorf("missing scientific packet hops:\n%s", out)
	}
	if !strings.Contains(out, "-") { // nil topology results render as dashes
		t.Error("missing dashes for missing topologies")
	}
}

func TestTable3UtilizationValidity(t *testing.T) {
	// A zero utilization with the valid flag set is a real measurement
	// and must render as a number; without the flag (e.g. zero wall
	// time) it must render "n/a" instead of a misleading 0.00.
	rows := []*core.Analysis{
		{
			App: "Valid", Ranks: 8, HasP2P: true,
			Torus: &core.TopoResult{PacketHops: 10, AvgHops: 1, UtilizationPct: 4.25, UtilizationValid: true},
		},
		{
			App: "NoWallTime", Ranks: 8, HasP2P: true,
			Torus: &core.TopoResult{PacketHops: 10, AvgHops: 1, UtilizationPct: 0, UtilizationValid: false},
		},
	}
	var buf bytes.Buffer
	if err := Table3(&buf, rows, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "4.25") {
		t.Errorf("valid utilization not rendered:\n%s", out)
	}
	if !strings.Contains(out, "n/a") {
		t.Errorf("invalid utilization should render n/a:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	for _, line := range lines {
		if strings.Contains(line, "NoWallTime") && !strings.Contains(line, "n/a") {
			t.Errorf("NoWallTime row lacks n/a: %q", line)
		}
	}
}

func TestTable4Rendering(t *testing.T) {
	rows := []core.Table4Row{
		{App: "AMG", Ranks: 216, Loc1D: 3, Loc2D: 17, Loc3D: 100, Grid2D: []int{12, 18}, Grid3D: []int{6, 6, 6}},
	}
	var buf bytes.Buffer
	if err := Table4(&buf, rows, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"100.0", "(6,6,6)", "(12,18)"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestCurveRendering(t *testing.T) {
	var buf bytes.Buffer
	if err := Curve(&buf, "LULESH r0", []float64{0.5, 0.9, 1.0}, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "0.9000") || !strings.Contains(out, "LULESH r0") {
		t.Errorf("bad curve output:\n%s", out)
	}
}

func TestFigure3Rendering(t *testing.T) {
	curves := []core.Figure3Curve{
		{App: "A", Ranks: 8, Shares: []float64{0.8, 1.0}},
		{App: "B", Ranks: 8, Shares: []float64{1.0}},
	}
	var buf bytes.Buffer
	if err := Figure3(&buf, curves, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Shorter curves are padded with 1.0.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, rule, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[3], "1.0000") {
		t.Errorf("padding missing: %q", lines[3])
	}
}

func TestFigure5Rendering(t *testing.T) {
	series := []core.Figure5Series{
		{App: "LULESH", Ranks: 512, Cores: []int{1, 2}, Shares: []float64{1, 0.8}},
	}
	var buf bytes.Buffer
	if err := Figure5(&buf, series, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.800") {
		t.Errorf("bad figure5 output:\n%s", buf.String())
	}
	var empty bytes.Buffer
	if err := Figure5(&empty, nil, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "no workloads") {
		t.Error("empty series not handled")
	}
}

func TestClaimsRendering(t *testing.T) {
	var buf bytes.Buffer
	err := Claims(&buf, core.Claims{
		TotalConfigs: 38, P2PConfigs: 32, SelectivityLE10Pct: 81.3,
		UtilizationLT1Pct: 92.1, DragonflyGlobalSharePct: 75.6,
		TorusWinsSmall: 20, SmallConfigs: 20, FatTreeWinsLarge: 6, LargeConfigs: 18,
		MaxSelectivity: 22.4, MaxSelectivityApp: "AMR_Miniapp (1728 ranks)",
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"81.3%", "92.1%", "AMR_Miniapp", "20 of 20"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestCSVEscaping(t *testing.T) {
	var buf bytes.Buffer
	err := writeCSV(&buf, []string{"a", "b"}, [][]string{{`has,comma`, `has"quote`}})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"has,comma"`) || !strings.Contains(out, `"has""quote"`) {
		t.Errorf("escaping wrong: %s", out)
	}
}

func TestFormattingHelpers(t *testing.T) {
	if fu(0.00005) != "5.0E-05" {
		t.Errorf("fu small = %s", fu(0.00005))
	}
	if fu(0.5) != "0.5000" {
		t.Errorf("fu normal = %s", fu(0.5))
	}
	if fu(0) != "0.0000" {
		t.Errorf("fu zero = %s", fu(0))
	}
	if fg(6000000) != "6.0E+06" {
		t.Errorf("fg = %s", fg(6000000))
	}
	if star(true) != " (*)" || star(false) != "" {
		t.Error("star wrong")
	}
}

func TestSimTableRendering(t *testing.T) {
	rows := []core.SimRow{
		{App: "LULESH", Ranks: 64, Topology: "torus"},
	}
	rows[0].Messages = 100
	rows[0].MeanLatency = 1.5e-6
	rows[0].MeanQueueDelay = 0.5e-6
	rows[0].DelayedShare = 0.25
	rows[0].MeasuredUtilizationPct = 0.05
	rows[0].MaxLinkBusyPct = 0.07
	rows[0].SlackCoverShare = 0.99
	var buf bytes.Buffer
	if err := SimTable(&buf, rows, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"LULESH", "torus", "1.50", "25.0", "99.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("sim table missing %q:\n%s", want, out)
		}
	}
	var csv bytes.Buffer
	if err := SimTable(&csv, rows, true); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "Workload,Ranks,Topology,") {
		t.Errorf("csv header: %q", csv.String())
	}
}
