package congest

import (
	"reflect"
	"testing"
)

// The tolerance sweep's result must be internally consistent: the
// reported per-hop latency still satisfies the growth threshold, and
// doubling past it breaks it (unless the search saturated).
func TestLatencyToleranceBracketsThreshold(t *testing.T) {
	tr := genTrace(t, "LULESH", 64)
	topo := torus(t, 4, 4, 4)
	mp := consecutive(t, 64, 64)
	tol, err := LatencyTolerance(tr, topo, mp, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tol.GrowthPct != DefaultGrowthPct {
		t.Errorf("growth threshold = %g, want default %g", tol.GrowthPct, DefaultGrowthPct)
	}
	if tol.BaseMakespan <= 0 {
		t.Fatalf("base makespan = %g", tol.BaseMakespan)
	}
	if tol.PerHopSeconds <= 0 {
		t.Fatalf("tolerance = %g, want > 0 (a real workload absorbs some latency)", tol.PerHopSeconds)
	}
	if tol.Probes < 2 {
		t.Errorf("probes = %d, want at least base + one probe", tol.Probes)
	}
	threshold := tol.BaseMakespan * (1 + tol.GrowthPct/100)
	within, err := Simulate(tr, topo, mp, Options{ExtraHopLatency: tol.PerHopSeconds})
	if err != nil {
		t.Fatal(err)
	}
	if within.Makespan > threshold {
		t.Errorf("makespan at reported tolerance %.6g exceeds threshold: %.6g > %.6g",
			tol.PerHopSeconds, within.Makespan, threshold)
	}
	if !tol.Saturated {
		beyond, err := Simulate(tr, topo, mp, Options{ExtraHopLatency: tol.PerHopSeconds * 2})
		if err != nil {
			t.Fatal(err)
		}
		if beyond.Makespan <= threshold {
			t.Errorf("makespan at 2x tolerance still within threshold: %.6g <= %.6g",
				beyond.Makespan, threshold)
		}
	}
}

// The sweep is deterministic and rejects nonsense thresholds.
func TestLatencyToleranceDeterministic(t *testing.T) {
	tr := genTrace(t, "AMR_Miniapp", 64)
	topo := torus(t, 4, 4, 4)
	mp := consecutive(t, 64, 64)
	a, err := LatencyTolerance(tr, topo, mp, Options{Policy: PolicyECMP}, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LatencyTolerance(tr, topo, mp, Options{Policy: PolicyECMP}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("tolerance sweeps diverged: %+v vs %+v", a, b)
	}
	if _, err := LatencyTolerance(tr, topo, mp, Options{}, -3); err == nil {
		t.Error("negative growth threshold accepted")
	}
}
