package congest

import (
	"testing"

	"netloc/internal/mapping"
	"netloc/internal/topology"
	"netloc/internal/trace"
	"netloc/internal/workloads"
)

// genTrace generates a synthetic workload trace for simulator tests.
func genTrace(t *testing.T, app string, ranks int) *trace.Trace {
	t.Helper()
	a, err := workloads.Lookup(app)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := a.Generate(ranks)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func torus(t *testing.T, x, y, z int) topology.Topology {
	t.Helper()
	topo, err := topology.NewTorus(x, y, z)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func consecutive(t *testing.T, ranks, nodes int) *mapping.Mapping {
	t.Helper()
	mp, err := mapping.Consecutive(ranks, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return mp
}

func fattree(t *testing.T, ranks int) topology.Topology {
	t.Helper()
	cfg, err := topology.FatTreeConfig(ranks)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func dragonfly(t *testing.T, ranks int) topology.Topology {
	t.Helper()
	cfg, err := topology.DragonflyConfig(ranks)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func slimfly(t *testing.T, q, p int) topology.Topology {
	t.Helper()
	topo, err := topology.NewSlimFly(q, p)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func jellyfish(t *testing.T, s, r, p int, seed uint64) topology.Topology {
	t.Helper()
	topo, err := topology.NewJellyfish(s, r, p, seed)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func hyperx(t *testing.T, s1, s2, s3, p int) topology.Topology {
	t.Helper()
	topo, err := topology.NewHyperX(s1, s2, s3, p)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// sendTrace builds a trace of explicit point-to-point sends.
type send struct {
	src, dst int
	bytes    uint64
	start    uint64 // nanoseconds
}

func sendTrace(ranks int, sends []send) *trace.Trace {
	tr := &trace.Trace{Meta: trace.Meta{App: "synthetic", Ranks: ranks, WallTime: 1}}
	for _, s := range sends {
		tr.Events = append(tr.Events, trace.Event{
			Rank: s.src, Op: trace.OpSend, Peer: s.dst, Root: -1,
			Bytes: s.bytes, Start: s.start,
		})
	}
	return tr
}

// checkPath verifies a link path is a contiguous walk from src to dst.
func checkPath(t *testing.T, topo topology.Topology, src, dst int, path []int) {
	t.Helper()
	links := topo.Links()
	cur := src
	for i, li := range path {
		if li < 0 || li >= len(links) {
			t.Fatalf("path %d->%d hop %d: link %d out of range", src, dst, i, li)
		}
		l := links[li]
		switch cur {
		case l.A:
			cur = l.B
		case l.B:
			cur = l.A
		default:
			t.Fatalf("path %d->%d hop %d: link %d (%d-%d) does not touch vertex %d",
				src, dst, i, li, l.A, l.B, cur)
		}
	}
	if cur != dst {
		t.Fatalf("path %d->%d ends at vertex %d", src, dst, cur)
	}
}
