package congest

import (
	"fmt"

	"netloc/internal/mapping"
	"netloc/internal/topology"
	"netloc/internal/trace"
)

// DefaultGrowthPct is the makespan-growth threshold of the tolerance
// sweep when the caller passes zero: how far the makespan may stretch
// before the added latency counts as "no longer absorbed".
const DefaultGrowthPct = 5.0

// toleranceMaxDoublings bounds the exponential bracketing phase; the
// probe starts at one head-packet latency, so 2^24 of those is seconds
// per hop — far beyond anything a real interconnect could hide.
const toleranceMaxDoublings = 24

// toleranceBisections bounds the refinement phase: the bracket halves
// each step, so 12 steps pin the threshold to ~0.02% of the bracket.
const toleranceBisections = 12

// Tolerance is the result of a latency-tolerance sweep (the LLAMP
// question, arXiv 2404.14193): how much added per-hop latency a
// workload absorbs before its makespan grows past the threshold. Large
// values mean the workload's critical path hides the network; small
// values mean every added nanosecond surfaces in the runtime.
type Tolerance struct {
	// PerHopSeconds is the largest probed per-hop latency whose
	// makespan stayed within the growth threshold.
	PerHopSeconds float64 `json:"per_hop_seconds"`
	// GrowthPct is the threshold the sweep searched against.
	GrowthPct float64 `json:"growth_pct"`
	// BaseMakespan is the makespan with no added latency.
	BaseMakespan float64 `json:"base_makespan"`
	// Probes counts the simulations the search ran (base run included).
	Probes int `json:"probes"`
	// Saturated reports the bracketing phase hit its upper bound:
	// PerHopSeconds is then a lower bound, not a crossing point.
	Saturated bool `json:"saturated,omitempty"`
}

// LatencyTolerance binary-searches the added per-hop latency the
// workload absorbs on this topology under the options' routing policy
// before the makespan grows more than growthPct percent (zero means
// DefaultGrowthPct). The search is deterministic: exponential
// bracketing from one head-packet latency, then bounded bisection.
func LatencyTolerance(t *trace.Trace, topo topology.Topology, mp *mapping.Mapping, opts Options, growthPct float64) (*Tolerance, error) {
	if growthPct == 0 {
		growthPct = DefaultGrowthPct
	}
	if growthPct < 0 {
		return nil, fmt.Errorf("congest: growth threshold %g%% (need > 0)", growthPct)
	}
	opts, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	opts.ExtraHopLatency = 0
	base, err := Simulate(t, topo, mp, opts)
	if err != nil {
		return nil, err
	}
	tol := &Tolerance{GrowthPct: growthPct, BaseMakespan: base.Makespan, Probes: 1}
	threshold := base.Makespan * (1 + growthPct/100)
	makespan := func(extra float64) (float64, error) {
		o := opts
		o.ExtraHopLatency = extra
		s, err := Simulate(t, topo, mp, o)
		if err != nil {
			return 0, err
		}
		tol.Probes++
		return s.Makespan, nil
	}

	// Bracket: double from one head-packet latency until the threshold
	// breaks (or the bound says the workload absorbs "anything").
	lo := 0.0
	hi := float64(opts.PacketBytes) / opts.BandwidthBytesPerSec
	broke := false
	for i := 0; i < toleranceMaxDoublings; i++ {
		m, err := makespan(hi)
		if err != nil {
			return nil, err
		}
		if m > threshold {
			broke = true
			break
		}
		lo = hi
		hi *= 2
	}
	if !broke {
		tol.PerHopSeconds = lo
		tol.Saturated = true
		return tol, nil
	}
	// Refine: bisect [lo, hi) — lo absorbed, hi broke.
	for i := 0; i < toleranceBisections; i++ {
		mid := lo + (hi-lo)/2
		m, err := makespan(mid)
		if err != nil {
			return nil, err
		}
		if m > threshold {
			hi = mid
		} else {
			lo = mid
		}
	}
	tol.PerHopSeconds = lo
	return tol, nil
}
