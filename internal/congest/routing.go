package congest

import (
	"fmt"

	"netloc/internal/topology"
)

// router computes one message's link path. Implementations must be
// deterministic: the same (src, dst, seq, now) with the same simulator
// state always yields the same path.
type router interface {
	// route returns the link path for message seq from node src to node
	// dst, deciding at simulation time now. detour reports a
	// non-minimal (Valiant) path. The returned slice is owned by the
	// caller for the message's lifetime, so implementations allocate.
	route(src, dst, seq int, now float64) (path []int, detour bool, err error)
}

// linkLoad is the congestion view adaptive routing consults: the time a
// head arriving at the link now would wait before service.
type linkLoad interface {
	backlog(link int, now float64) float64
}

// newRouter builds the policy's router for one simulation run.
func newRouter(policy string, topo topology.Topology, seed uint64, loads linkLoad, hopLat float64) (router, error) {
	switch policy {
	case PolicyMinimal:
		return &minimalRouter{topo: topo}, nil
	case PolicyECMP:
		return newECMPRouter(topo, seed)
	case PolicyValiant:
		return newValiantRouter(topo, seed)
	case PolicyUGAL:
		val, err := newValiantRouter(topo, seed)
		if err != nil {
			return nil, err
		}
		return &ugalRouter{
			min:    &minimalRouter{topo: topo},
			val:    val,
			loads:  loads,
			hopLat: hopLat,
		}, nil
	}
	return nil, fmt.Errorf("congest: unknown policy %q (known: %v)", policy, Policies())
}

// minimalRouter replays the topology's own deterministic shortest path.
type minimalRouter struct {
	topo topology.Topology
}

func (r *minimalRouter) route(src, dst, seq int, now float64) ([]int, bool, error) {
	path, err := r.topo.Route(src, dst, nil)
	return path, false, err
}

// mix64 is the splitmix-style finalizer also used by the Valiant pivot
// hash: a cheap, well-distributed, seedable permutation of 64 bits.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// ecmpRouter spreads flows over the equal-cost shortest paths of the
// topology's reference graph: at every vertex, the next hop among the
// distance-decreasing neighbors is picked by a per-(flow, vertex) hash —
// the stateless, deterministic spreading of flow-hashing switches. BFS
// distance tables toward each destination are built lazily and reused
// across the run.
type ecmpRouter struct {
	graph *topology.Graph
	seed  uint64
	// adjacency with link identities, in link order (BFS ties and
	// candidate order stay deterministic).
	adj  [][]edge
	dist map[int][]int // dst vertex -> distance table
}

type edge struct {
	to   int
	link int
}

func newECMPRouter(topo topology.Topology, seed uint64) (*ecmpRouter, error) {
	g, err := topology.GraphOf(topo)
	if err != nil {
		return nil, err
	}
	adj := make([][]edge, topo.NumVertices())
	for li, l := range topo.Links() {
		adj[l.A] = append(adj[l.A], edge{to: l.B, link: li})
		adj[l.B] = append(adj[l.B], edge{to: l.A, link: li})
	}
	return &ecmpRouter{graph: g, seed: seed, adj: adj, dist: make(map[int][]int)}, nil
}

func (r *ecmpRouter) distTo(dst int) ([]int, error) {
	if d, ok := r.dist[dst]; ok {
		return d, nil
	}
	d, err := r.graph.BFSFrom(dst)
	if err != nil {
		return nil, err
	}
	r.dist[dst] = d
	return d, nil
}

func (r *ecmpRouter) route(src, dst, seq int, now float64) ([]int, bool, error) {
	dist, err := r.distTo(dst)
	if err != nil {
		return nil, false, err
	}
	if dist[src] < 0 {
		return nil, false, fmt.Errorf("congest: no path %d->%d", src, dst)
	}
	// One hash per flow: every message of a (src, dst) pair follows the
	// same path, load spreads across flows — classic ECMP, as opposed
	// to UGAL's per-message adaptivity.
	flow := mix64(uint64(src)<<32 ^ uint64(dst) ^ r.seed)
	path := make([]int, 0, dist[src])
	cur := src
	for cur != dst {
		want := dist[cur] - 1
		n := 0
		for _, e := range r.adj[cur] {
			if dist[e.to] == want {
				n++
			}
		}
		if n == 0 {
			return nil, false, fmt.Errorf("congest: BFS dead end at vertex %d toward %d", cur, dst)
		}
		pick := int(mix64(flow^uint64(cur)) % uint64(n))
		for _, e := range r.adj[cur] {
			if dist[e.to] != want {
				continue
			}
			if pick == 0 {
				path = append(path, e.link)
				cur = e.to
				break
			}
			pick--
		}
	}
	return path, false, nil
}

// valiantRouter routes via a deterministic pseudo-random intermediate.
// Dragonflies reuse topology/valiant.go's pivot-group machinery (the
// canonical Valiant scheme for that family); every other topology
// detours through a pivot node: minimal to the pivot, minimal onward.
type valiantRouter struct {
	topo    topology.Topology
	via     topology.Topology // dragonfly: the *topology.Valiant wrapper
	minimal topology.Topology // shortest-path reference for detour detection
	nodes   int
	seed    uint64
}

func newValiantRouter(topo topology.Topology, seed uint64) (*valiantRouter, error) {
	r := &valiantRouter{topo: topo, minimal: topo, nodes: topo.Nodes(), seed: seed}
	switch d := topo.(type) {
	case *topology.Valiant:
		r.via = d
		r.minimal = d.Dragonfly
	case *topology.Dragonfly:
		v, err := topology.NewValiant(d, seed)
		if err != nil {
			return nil, err
		}
		r.via = v
	}
	return r, nil
}

// pivot picks the intermediate node for a pair: a deterministic
// pseudo-random node different from both endpoints.
func (r *valiantRouter) pivot(src, dst int) int {
	p := int(mix64(uint64(src)*0x9E3779B97F4A7C15^uint64(dst)+r.seed) % uint64(r.nodes))
	for p == src || p == dst {
		p = (p + 1) % r.nodes
	}
	return p
}

func (r *valiantRouter) route(src, dst, seq int, now float64) ([]int, bool, error) {
	if r.via != nil {
		path, err := r.via.Route(src, dst, nil)
		// The dragonfly wrapper detours only inter-group traffic; a
		// longer-than-minimal path is the observable detour signal.
		return path, err == nil && len(path) > r.minimal.HopCount(src, dst), err
	}
	if r.nodes < 3 {
		path, err := r.topo.Route(src, dst, nil)
		return path, false, err
	}
	p := r.pivot(src, dst)
	leg1, err := r.topo.Route(src, p, nil)
	if err != nil {
		return nil, false, err
	}
	leg2, err := r.topo.Route(p, dst, nil)
	if err != nil {
		return nil, false, err
	}
	// On indirect topologies both legs touch the pivot over its
	// terminal link; dropping the repeated pair turns around at the
	// pivot's switch instead of re-injecting through the node.
	if len(leg1) > 0 && len(leg2) > 0 && leg1[len(leg1)-1] == leg2[0] {
		leg1 = leg1[:len(leg1)-1]
		leg2 = leg2[1:]
	}
	return append(leg1, leg2...), true, nil
}

// ugalRouter is the UGAL-style adaptive choice: per message, estimate
// the delivery time of the minimal and the Valiant path from the queue
// backlog along each at decision time, and take the cheaper one. The
// detour flag reports the Valiant alternative was taken.
type ugalRouter struct {
	min    router
	val    router
	loads  linkLoad
	hopLat float64
}

func (r *ugalRouter) cost(path []int, now float64) float64 {
	c := float64(len(path)) * r.hopLat
	for _, li := range path {
		c += r.loads.backlog(li, now)
	}
	return c
}

func (r *ugalRouter) route(src, dst, seq int, now float64) ([]int, bool, error) {
	minPath, _, err := r.min.route(src, dst, seq, now)
	if err != nil {
		return nil, false, err
	}
	valPath, _, err := r.val.route(src, dst, seq, now)
	if err != nil {
		return nil, false, err
	}
	// The Valiant alternative can share the minimal path's length yet use
	// different links, so it stays a candidate whenever the paths differ;
	// ties go to minimal (hardware UGAL's bias).
	if samePath(minPath, valPath) || r.cost(minPath, now) <= r.cost(valPath, now) {
		return minPath, false, nil
	}
	return valPath, true, nil
}

func samePath(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
