package congest

import (
	"reflect"
	"testing"

	"netloc/internal/topology"
)

// testTopos builds one small instance of each family, including the
// extreme-scale families: every routing policy (ECMP's flow hashing,
// Valiant's generic pivot) must work on them unmodified.
func testTopos(t *testing.T) map[string]topology.Topology {
	t.Helper()
	return map[string]topology.Topology{
		"torus":     torus(t, 4, 4, 1),
		"fattree":   fattree(t, 16),
		"dragonfly": dragonfly(t, 64),
		"slimfly":   slimfly(t, 5, 1),
		"jellyfish": jellyfish(t, 12, 4, 2, 7),
		"hyperx":    hyperx(t, 3, 3, 1, 2),
	}
}

// Every policy must produce a contiguous walk from source to
// destination on every topology family, for every node pair.
func TestRoutesAreValidWalks(t *testing.T) {
	for kind, topo := range testTopos(t) {
		st := &simState{busyUntil: make([]float64, len(topo.Links()))}
		for _, policy := range Policies() {
			rt, err := newRouter(policy, topo, defaultSeed, st, 1e-7)
			if err != nil {
				t.Fatalf("%s/%s: %v", kind, policy, err)
			}
			n := topo.Nodes()
			for src := 0; src < n; src++ {
				for dst := 0; dst < n; dst++ {
					if src == dst {
						continue
					}
					path, _, err := rt.route(src, dst, src*n+dst, 0)
					if err != nil {
						t.Fatalf("%s/%s %d->%d: %v", kind, policy, src, dst, err)
					}
					checkPath(t, topo, src, dst, path)
				}
			}
		}
	}
}

// ECMP is flow-hashed: one flow always takes one path, while different
// flows spread over the equal-cost set.
func TestECMPFlowStickinessAndSpread(t *testing.T) {
	topo := torus(t, 4, 4, 1)
	rt, err := newECMPRouter(topo, defaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	// Same flow, different messages: identical path.
	first, _, err := rt.route(0, 5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for seq := 1; seq < 8; seq++ {
		p, _, err := rt.route(0, 5, seq, float64(seq))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, p) {
			t.Fatalf("flow 0->5 path changed between messages: %v vs %v", first, p)
		}
	}
	// ECMP paths are shortest.
	if len(first) != topo.HopCount(0, 5) {
		t.Errorf("ecmp path length %d, want minimal %d", len(first), topo.HopCount(0, 5))
	}
	// Across the whole pair set, at least one flow must leave the
	// deterministic-minimal path (otherwise the hash spreads nothing).
	min := &minimalRouter{topo: topo}
	diverged := false
	for src := 0; src < topo.Nodes() && !diverged; src++ {
		for dst := 0; dst < topo.Nodes(); dst++ {
			if src == dst {
				continue
			}
			mp, _, err1 := min.route(src, dst, 0, 0)
			ep, _, err2 := rt.route(src, dst, 0, 0)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if !reflect.DeepEqual(mp, ep) {
				diverged = true
				break
			}
		}
	}
	if !diverged {
		t.Error("ecmp never diverged from the deterministic minimal path on a multipath torus")
	}
}

// The generic Valiant detour pivots deterministically and never pivots
// at an endpoint.
func TestValiantGenericPivotDeterministic(t *testing.T) {
	topo := torus(t, 4, 4, 1)
	a, err := newValiantRouter(topo, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := newValiantRouter(topo, 7)
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < topo.Nodes(); src++ {
		for dst := 0; dst < topo.Nodes(); dst++ {
			if src == dst {
				continue
			}
			if p := a.pivot(src, dst); p == src || p == dst {
				t.Fatalf("pivot(%d,%d) = endpoint %d", src, dst, p)
			}
			pa, da, err1 := a.route(src, dst, 0, 0)
			pb, db, err2 := b.route(src, dst, 0, 0)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if !reflect.DeepEqual(pa, pb) || da != db {
				t.Fatalf("same-seed valiant routes differ for %d->%d: %v vs %v", src, dst, pa, pb)
			}
		}
	}
}

// UGAL prefers minimal paths on an idle network and detours once the
// minimal path's links are backlogged.
func TestUGALAdaptsToBacklog(t *testing.T) {
	topo := dragonfly(t, 64)
	st := &simState{busyUntil: make([]float64, len(topo.Links()))}
	rt, err := newRouter(PolicyUGAL, topo, defaultSeed, st, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	// An inter-group pair, so the Valiant path actually detours.
	src, dst := 0, topo.Nodes()-1
	min := &minimalRouter{topo: topo}
	minPath, _, err := min.route(src, dst, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Idle network: minimal wins.
	idle, detour, err := rt.route(src, dst, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if detour || !reflect.DeepEqual(idle, minPath) {
		t.Fatalf("idle ugal chose detour=%v path=%v, want minimal %v", detour, idle, minPath)
	}
	// Backlog every minimal link heavily: the Valiant path must win.
	for _, li := range minPath {
		st.busyUntil[li] = 1.0 // one full second of backlog each
	}
	_, detour, err = rt.route(src, dst, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !detour {
		t.Error("ugal stayed minimal with every minimal link backlogged")
	}
}
