// Package congest is the temporal counterpart of internal/simnet: an
// event-driven network simulator that replays a trace's wire messages
// through per-link FIFO contention queues under a bandwidth-delay
// service model. Where simnet reserves links greedily in release order
// (a deliberate simplification), congest advances a global event clock —
// a message's head requests each link of its route when it actually
// arrives there, waits behind whatever the link already serves, and only
// then moves on — so transient hotspots, queue build-up, and the
// persistence of congestion over time become observable.
//
// Routing is pluggable (see Policies): deterministic shortest paths for
// baseline parity with simnet, ECMP hashing over the equal-cost
// shortest-path DAG of topology.Graph, Valiant random-intermediate
// detours (the dragonfly reuses topology/valiant.go's pivot machinery),
// and a UGAL-style adaptive choice that picks minimal or Valiant per
// message from the queue backlog at decision time.
//
// Everything is deterministic: event ties break on message sequence
// numbers, hashes are seeded splitmix mixes, and no wall clock or
// random source is consulted — the same inputs always produce the same
// Stats, which is what lets the experiment grid fan out over the
// parallel engine with byte-identical results at any worker count.
package congest

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"strings"

	"netloc/internal/mapping"
	"netloc/internal/mpi"
	"netloc/internal/simnet"
	"netloc/internal/topology"
	"netloc/internal/trace"
)

// Routing policy names accepted by Options.Policy.
const (
	// PolicyMinimal replays every message over the topology's own
	// deterministic shortest path — the temporal baseline.
	PolicyMinimal = "minimal"
	// PolicyECMP hashes each (src, dst) flow over the equal-cost
	// shortest paths of the topology's reference graph, the way
	// flow-hashing switches spread load.
	PolicyECMP = "ecmp"
	// PolicyValiant routes every message through a deterministic
	// pseudo-random intermediate (topology/valiant.go for dragonflies,
	// a pivot node elsewhere), trading path length for load spreading.
	PolicyValiant = "valiant"
	// PolicyUGAL chooses per message between the minimal and the
	// Valiant path, whichever promises the earlier delivery given the
	// queue backlog along each at decision time (UGAL's local estimate).
	PolicyUGAL = "ugal"
)

// Policies lists the routing policies in baseline-first order.
func Policies() []string {
	return []string{PolicyMinimal, PolicyECMP, PolicyValiant, PolicyUGAL}
}

// defaultSeed feeds the ECMP flow hash and the Valiant pivot hash when
// Options.Seed is zero, so default runs are reproducible across hosts.
const defaultSeed = 0x4c4c414d50 // "LLAMP"

// DefaultHotspotBuckets is the time resolution of the hotspot
// persistence analysis: the makespan is divided into this many equal
// windows and the hottest link of each window is compared against the
// overall hottest link.
const DefaultHotspotBuckets = 64

// Options configures a temporal simulation. The bandwidth, packet, and
// message-cap fields share simnet.Options' semantics and validation
// (zero means default, negatives are rejected).
type Options struct {
	// Policy is one of Policies(); empty means PolicyMinimal.
	Policy string
	// BandwidthBytesPerSec is the per-link bandwidth (default 12 GB/s).
	BandwidthBytesPerSec float64
	// PacketBytes sets the cut-through head latency per hop (default
	// 4096, the paper's packet size).
	PacketBytes int
	// MaxMessages aborts when the expanded message count exceeds this
	// bound. Zero means 4 million.
	MaxMessages int
	// ExtraHopLatency adds this many seconds to every link traversal's
	// head latency — the knob the LLAMP-style tolerance sweep probes.
	// Must be finite and >= 0.
	ExtraHopLatency float64
	// Seed drives the ECMP flow hash and Valiant pivot choice; zero
	// means a fixed default so results are reproducible.
	Seed uint64
	// HotspotBuckets is the number of time windows of the hotspot
	// persistence analysis; zero means DefaultHotspotBuckets.
	HotspotBuckets int
}

// normalize validates and defaults the options, reusing simnet's
// validation for the fields the two simulators share.
func (o Options) normalize() (Options, error) {
	base, err := simnet.Options{
		BandwidthBytesPerSec: o.BandwidthBytesPerSec,
		PacketBytes:          o.PacketBytes,
		MaxMessages:          o.MaxMessages,
	}.Normalize()
	var probs []string
	if err != nil {
		probs = append(probs, err.Error())
	} else {
		o.BandwidthBytesPerSec = base.BandwidthBytesPerSec
		o.PacketBytes = base.PacketBytes
		o.MaxMessages = base.MaxMessages
	}
	if o.Policy == "" {
		o.Policy = PolicyMinimal
	}
	if !knownPolicy(o.Policy) {
		probs = append(probs, fmt.Sprintf("unknown policy %q (known: %s)", o.Policy, strings.Join(Policies(), ", ")))
	}
	if !(o.ExtraHopLatency >= 0) || math.IsInf(o.ExtraHopLatency, 1) {
		probs = append(probs, fmt.Sprintf("extra hop latency %g s (need finite, >= 0)", o.ExtraHopLatency))
	}
	if o.HotspotBuckets < 0 {
		probs = append(probs, fmt.Sprintf("hotspot buckets %d (need > 0)", o.HotspotBuckets))
	}
	if o.HotspotBuckets == 0 {
		o.HotspotBuckets = DefaultHotspotBuckets
	}
	if o.Seed == 0 {
		o.Seed = defaultSeed
	}
	if len(probs) > 0 {
		return o, fmt.Errorf("congest: invalid options: %s", strings.Join(probs, "; "))
	}
	return o, nil
}

func knownPolicy(p string) bool {
	for _, k := range Policies() {
		if p == k {
			return true
		}
	}
	return false
}

// Stats summarizes one temporal simulation.
type Stats struct {
	// Policy that produced these numbers (normalized, never empty).
	Policy string
	// Messages simulated (inter-node only, after collective expansion).
	Messages int
	// Latency of messages in seconds: release to last-byte arrival.
	MeanLatency float64
	P99Latency  float64
	MaxLatency  float64
	// MeanQueueDelay is the mean time messages spent waiting behind
	// other traffic (observed minus zero-contention latency).
	MeanQueueDelay float64
	// DelayedShare is the fraction of messages that waited at any link.
	DelayedShare float64
	// Makespan is the time from the first network release to the last
	// arrival.
	Makespan float64
	// HopsTraversed counts link traversals over all messages; AvgHops
	// is the per-message mean (Valiant detours push it up).
	HopsTraversed uint64
	AvgHops       float64
	// DetourShare is the fraction of messages sent over a non-minimal
	// (Valiant) path: 0 for minimal/ecmp, 1 for valiant on inter-group
	// traffic, and UGAL's adaptive split in between.
	DetourShare float64
	// UsedLinks is the number of links that carried traffic. The busy
	// percentiles below are taken across those links over the makespan:
	// P50 is the median link's busy share, P99 the near-hottest, Max
	// the hottest.
	UsedLinks      int
	P50LinkBusyPct float64
	P99LinkBusyPct float64
	MaxLinkBusyPct float64
	// MaxQueueDepth is the largest number of messages simultaneously
	// waiting (head blocked, service not started) at any single link.
	MaxQueueDepth int
	// HottestLink is the index of the link with the most busy time.
	// HotspotPersistence is the fraction of busy time windows in which
	// that same link is also the window's busiest — 1.0 means one
	// static hotspot, values near 0 mean the hotspot moves around.
	HottestLink        int
	HotspotPersistence float64
}

// inflight is one message moving through the network.
type inflight struct {
	seq      int
	src, dst int // node vertices
	route    []int
	serial   float64
	release  float64
	hop      int
	delayed  bool
	detour   bool
}

// event is one head-of-message link request in the global clock.
type event struct {
	time float64
	seq  int // message sequence: the deterministic tie-break
	msg  *inflight
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h *eventHeap) pushEvent(e event) { heap.Push(h, e) }

// reservation records one link occupancy interval for the hotspot pass.
type reservation struct {
	link  int32
	start float64
	dur   float64
}

// linkQueue tracks the service-start times of messages currently
// waiting at one link, so queue depth can be observed without dequeue
// events: entries whose service has started by "now" are expired lazily.
type linkQueue struct {
	starts []float64
	head   int
}

func (q *linkQueue) depthAt(now float64) int {
	for q.head < len(q.starts) && q.starts[q.head] <= now {
		q.head++
	}
	if q.head == len(q.starts) {
		q.starts = q.starts[:0]
		q.head = 0
	}
	return len(q.starts) - q.head
}

func (q *linkQueue) push(start float64) { q.starts = append(q.starts, start) }

// Simulate replays the trace's wire messages over the topology under
// the selected routing policy.
func Simulate(t *trace.Trace, topo topology.Topology, mp *mapping.Mapping, opts Options) (*Stats, error) {
	opts, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	if mp.Ranks() < t.Meta.Ranks {
		return nil, fmt.Errorf("congest: mapping covers %d ranks, trace has %d", mp.Ranks(), t.Meta.Ranks)
	}
	if mp.Nodes() > topo.Nodes() {
		return nil, fmt.Errorf("congest: mapping node space %d exceeds topology %s", mp.Nodes(), topo.Name())
	}
	world, err := mpi.World(t.Meta.Ranks)
	if err != nil {
		return nil, err
	}

	bw := opts.BandwidthBytesPerSec
	hopLat := float64(opts.PacketBytes)/bw + opts.ExtraHopLatency

	// Expand the trace into inter-node messages, exactly like simnet:
	// collectives unroll through mpi.ExpandEvent, zero-byte and
	// intra-node messages never enter the network.
	var msgs []*inflight
	var buf []mpi.Message
	for i, e := range t.Events {
		buf, err = mpi.ExpandEvent(buf[:0], e, world, mpi.ExpandOptions{})
		if err != nil {
			return nil, fmt.Errorf("congest: event %d: %w", i, err)
		}
		for _, m := range buf {
			if m.Bytes == 0 {
				continue
			}
			ns, err := mp.NodeOf(m.Src)
			if err != nil {
				return nil, err
			}
			nd, err := mp.NodeOf(m.Dst)
			if err != nil {
				return nil, err
			}
			if ns == nd {
				continue
			}
			msgs = append(msgs, &inflight{
				seq: len(msgs), src: ns, dst: nd,
				serial:  float64(m.Bytes) / bw,
				release: float64(e.Start) / 1e9,
			})
			if len(msgs) > opts.MaxMessages {
				return nil, fmt.Errorf("congest: message count exceeds limit %d", opts.MaxMessages)
			}
		}
	}
	if len(msgs) == 0 {
		return nil, fmt.Errorf("congest: trace has no inter-node messages")
	}
	// Sequence numbers follow release order so event ties resolve the
	// way a FIFO injection queue would.
	sort.SliceStable(msgs, func(i, j int) bool { return msgs[i].release < msgs[j].release })
	for i, m := range msgs {
		m.seq = i
	}

	st := &simState{
		busyUntil: make([]float64, len(topo.Links())),
		busyTime:  make([]float64, len(topo.Links())),
		queues:    make([]linkQueue, len(topo.Links())),
	}
	rt, err := newRouter(opts.Policy, topo, opts.Seed, st, hopLat)
	if err != nil {
		return nil, err
	}

	events := make(eventHeap, 0, len(msgs))
	for _, m := range msgs {
		events = append(events, event{time: m.release + opts.ExtraHopLatency, seq: m.seq, msg: m})
	}
	heap.Init(&events)

	latencies := make([]float64, 0, len(msgs))
	var idealSum float64
	var delayed, detoured int
	var hopsTraversed uint64
	firstRelease := msgs[0].release
	var lastArrival float64
	maxQueueDepth := 0

	for events.Len() > 0 {
		ev := heap.Pop(&events).(event)
		m := ev.msg
		now := ev.time
		if m.route == nil {
			// Routing decision at injection time: UGAL reads the queue
			// backlog of this exact instant.
			m.route, m.detour, err = rt.route(m.src, m.dst, m.seq, now)
			if err != nil {
				return nil, err
			}
			if len(m.route) == 0 {
				return nil, fmt.Errorf("congest: empty route for %d->%d on %s", m.src, m.dst, topo.Name())
			}
			hopsTraversed += uint64(len(m.route))
			if m.detour {
				detoured++
			}
		}
		li := m.route[m.hop]
		start := now
		if st.busyUntil[li] > start {
			start = st.busyUntil[li]
			m.delayed = true
		}
		q := &st.queues[li]
		depth := q.depthAt(now)
		if start > now {
			q.push(start)
			depth++
		}
		if depth > maxQueueDepth {
			maxQueueDepth = depth
		}
		st.busyUntil[li] = start + m.serial
		st.busyTime[li] += m.serial
		st.reservations = append(st.reservations, reservation{link: int32(li), start: start, dur: m.serial})

		if m.hop++; m.hop < len(m.route) {
			events.pushEvent(event{time: start + hopLat, seq: m.seq, msg: m})
			continue
		}
		arrival := start + m.serial
		lat := arrival - m.release
		latencies = append(latencies, lat)
		idealSum += float64(len(m.route)-1)*hopLat + opts.ExtraHopLatency + m.serial
		if m.delayed {
			delayed++
		}
		if arrival > lastArrival {
			lastArrival = arrival
		}
	}

	stats := &Stats{
		Policy:        opts.Policy,
		Messages:      len(latencies),
		HopsTraversed: hopsTraversed,
		AvgHops:       float64(hopsTraversed) / float64(len(latencies)),
		DelayedShare:  float64(delayed) / float64(len(latencies)),
		DetourShare:   float64(detoured) / float64(len(latencies)),
		MaxQueueDepth: maxQueueDepth,
		Makespan:      lastArrival - firstRelease,
	}
	sort.Float64s(latencies)
	var sum float64
	for _, l := range latencies {
		sum += l
	}
	stats.MeanLatency = sum / float64(len(latencies))
	stats.P99Latency = quantile(latencies, 0.99)
	stats.MaxLatency = latencies[len(latencies)-1]
	stats.MeanQueueDelay = stats.MeanLatency - idealSum/float64(len(latencies))
	if stats.MeanQueueDelay < 0 {
		stats.MeanQueueDelay = 0 // float accumulation noise when nothing queued
	}
	linkBusyStats(stats, st.busyTime)
	hotspotStats(stats, st, opts.HotspotBuckets, firstRelease)
	return stats, nil
}

// simState is the mutable per-run network state; it doubles as the
// linkLoad view the UGAL router consults at decision time.
type simState struct {
	busyUntil    []float64
	busyTime     []float64
	queues       []linkQueue
	reservations []reservation
}

// backlog implements linkLoad: how long a head arriving now would wait.
func (s *simState) backlog(link int, now float64) float64 {
	if b := s.busyUntil[link] - now; b > 0 {
		return b
	}
	return 0
}

// linkBusyStats fills the busy-share distribution over used links.
func linkBusyStats(stats *Stats, busyTime []float64) {
	if stats.Makespan <= 0 {
		return
	}
	var used []float64
	hottest, hottestBusy := 0, 0.0
	for li, b := range busyTime {
		if b > 0 {
			used = append(used, b)
			if b > hottestBusy {
				hottest, hottestBusy = li, b
			}
		}
	}
	stats.UsedLinks = len(used)
	stats.HottestLink = hottest
	if len(used) == 0 {
		return
	}
	sort.Float64s(used)
	stats.P50LinkBusyPct = clampPct(100 * used[len(used)/2] / stats.Makespan)
	stats.P99LinkBusyPct = clampPct(100 * quantile(used, 0.99) / stats.Makespan)
	stats.MaxLinkBusyPct = clampPct(100 * used[len(used)-1] / stats.Makespan)
}

// hotspotStats computes hotspot persistence: the makespan is divided
// into equal windows, each reservation's busy time is binned per
// (window, link), and persistence is the share of busy windows whose
// busiest link is the overall hottest one. Ties break toward the lower
// link index so the measure is deterministic.
func hotspotStats(stats *Stats, st *simState, buckets int, t0 float64) {
	if stats.Makespan <= 0 || stats.UsedLinks == 0 {
		return
	}
	width := stats.Makespan / float64(buckets)
	nLinks := len(st.busyTime)
	busy := make([]float64, buckets*nLinks)
	for _, r := range st.reservations {
		lo := r.start - t0
		hi := lo + r.dur
		b0 := int(lo / width)
		b1 := int(hi / width)
		if b0 < 0 {
			b0 = 0
		}
		if b1 >= buckets {
			b1 = buckets - 1
		}
		for b := b0; b <= b1; b++ {
			ws := float64(b) * width
			we := ws + width
			s, e := lo, hi
			if s < ws {
				s = ws
			}
			if e > we {
				e = we
			}
			if e > s {
				busy[b*nLinks+int(r.link)] += e - s
			}
		}
	}
	busyWindows, hottestWins := 0, 0
	for b := 0; b < buckets; b++ {
		row := busy[b*nLinks : (b+1)*nLinks]
		best, bestBusy := -1, 0.0
		for li, v := range row {
			if v > bestBusy {
				best, bestBusy = li, v
			}
		}
		if best < 0 {
			continue // idle window
		}
		busyWindows++
		if best == stats.HottestLink {
			hottestWins++
		}
	}
	if busyWindows > 0 {
		stats.HotspotPersistence = float64(hottestWins) / float64(busyWindows)
	}
}

// quantile returns the q-quantile of a sorted slice using the same
// ceil-rank convention as simnet's P99.
func quantile(sorted []float64, q float64) float64 {
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return sorted[i]
}

// clampPct bounds a percentage to [0, 100] against float accumulation
// overshoot.
func clampPct(v float64) float64 {
	if v > 100 {
		return 100
	}
	if v < 0 {
		return 0
	}
	return v
}
