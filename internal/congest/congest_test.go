package congest

import (
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// Invariant (zero contention): a lone message's latency and the
// makespan must match the analytic cut-through formula exactly —
// (hops-1) head latencies plus serialization.
func TestZeroContentionMatchesAnalyticBaseline(t *testing.T) {
	topo := torus(t, 2, 2, 2)
	mp := consecutive(t, 8, 8)
	const bw = 1e9
	const bytes = 100_000
	// Rank 0 -> rank 3 on a 2x2x2 torus: two hops.
	tr := sendTrace(8, []send{{src: 0, dst: 3, bytes: bytes, start: 0}})
	stats, err := Simulate(tr, topo, mp, Options{BandwidthBytesPerSec: bw, PacketBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	hops := topo.HopCount(0, 3)
	want := float64(hops-1)*4096/bw + bytes/bw
	if math.Abs(stats.MeanLatency-want) > 1e-12 {
		t.Errorf("lone message latency = %.12g, want analytic %.12g", stats.MeanLatency, want)
	}
	if math.Abs(stats.Makespan-want) > 1e-12 {
		t.Errorf("makespan = %.12g, want analytic %.12g", stats.Makespan, want)
	}
	if stats.DelayedShare != 0 || stats.MeanQueueDelay != 0 || stats.MaxQueueDepth != 0 {
		t.Errorf("zero-contention run reports queueing: %+v", stats)
	}
	if stats.HopsTraversed != uint64(hops) {
		t.Errorf("hops traversed = %d, want %d", stats.HopsTraversed, hops)
	}
}

// Invariant (disjoint paths): messages that share no link must show
// zero queueing even when released at the same instant.
func TestDisjointPathsZeroQueueing(t *testing.T) {
	topo := torus(t, 2, 2, 2)
	mp := consecutive(t, 8, 8)
	// 0->1 and 6->7 are single-hop transfers on opposite torus edges.
	tr := sendTrace(8, []send{
		{src: 0, dst: 1, bytes: 1 << 20, start: 0},
		{src: 6, dst: 7, bytes: 1 << 20, start: 0},
	})
	stats, err := Simulate(tr, topo, mp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != 2 {
		t.Fatalf("messages = %d, want 2", stats.Messages)
	}
	if stats.DelayedShare != 0 {
		t.Errorf("disjoint traffic delayed share = %g, want 0", stats.DelayedShare)
	}
	if stats.MaxQueueDepth != 0 {
		t.Errorf("disjoint traffic max queue depth = %d, want 0", stats.MaxQueueDepth)
	}
	if stats.MeanQueueDelay != 0 {
		t.Errorf("disjoint traffic queue delay = %g, want 0", stats.MeanQueueDelay)
	}
}

// Invariant (incast): when everyone floods one destination, the links
// converging on it must be visibly hotter than the median link, the
// queue must be non-empty, and the hotspot must persist.
func TestIncastSkewsLinkBusyDistribution(t *testing.T) {
	topo := fattree(t, 64)
	mp := consecutive(t, 64, topo.Nodes())
	var sends []send
	for r := 1; r < 64; r++ {
		sends = append(sends, send{src: r, dst: 0, bytes: 1 << 20, start: 0})
	}
	stats, err := Simulate(sendTrace(64, sends), topo, mp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.P99LinkBusyPct <= stats.P50LinkBusyPct {
		t.Errorf("incast: p99 link busy %.2f%% not above p50 %.2f%%",
			stats.P99LinkBusyPct, stats.P50LinkBusyPct)
	}
	if stats.MaxQueueDepth == 0 {
		t.Error("incast: no queue build-up observed")
	}
	if stats.DelayedShare == 0 {
		t.Error("incast: no message reported delayed")
	}
	if stats.HotspotPersistence < 0.5 {
		t.Errorf("incast: hotspot persistence = %.2f, want a stable hotspot (>= 0.5)",
			stats.HotspotPersistence)
	}
}

// The same simulation must produce identical Stats on every run and
// from concurrent goroutines (ci.sh re-runs this under -race with
// forced worker counts).
func TestSimulateDeterministicConcurrent(t *testing.T) {
	tr := genTrace(t, "LULESH", 64)
	topo := dragonfly(t, 64)
	mp := consecutive(t, 64, topo.Nodes())
	for _, policy := range Policies() {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			ref, err := Simulate(tr, topo, mp, Options{Policy: policy})
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			got := make([]*Stats, 4)
			errs := make([]error, 4)
			for i := range got {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					got[i], errs[i] = Simulate(tr, topo, mp, Options{Policy: policy})
				}(i)
			}
			wg.Wait()
			for i := range got {
				if errs[i] != nil {
					t.Fatal(errs[i])
				}
				if !reflect.DeepEqual(ref, got[i]) {
					t.Fatalf("run %d diverged:\n%+v\nwant\n%+v", i, got[i], ref)
				}
			}
		})
	}
}

// Every policy keeps per-link accounting consistent: the busiest link's
// share tops the distribution and detours only appear where they can.
func TestPolicyStatsConsistency(t *testing.T) {
	tr := genTrace(t, "CESAR MOCFE", 64)
	topo := dragonfly(t, 64)
	mp := consecutive(t, 64, topo.Nodes())
	minimal, err := Simulate(tr, topo, mp, Options{Policy: PolicyMinimal})
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range Policies() {
		stats, err := Simulate(tr, topo, mp, Options{Policy: policy})
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if stats.Policy != policy {
			t.Errorf("%s: stats carry policy %q", policy, stats.Policy)
		}
		if stats.MaxLinkBusyPct < stats.P99LinkBusyPct || stats.P99LinkBusyPct < stats.P50LinkBusyPct {
			t.Errorf("%s: busy distribution out of order: p50 %.3f p99 %.3f max %.3f",
				policy, stats.P50LinkBusyPct, stats.P99LinkBusyPct, stats.MaxLinkBusyPct)
		}
		if stats.HotspotPersistence < 0 || stats.HotspotPersistence > 1 {
			t.Errorf("%s: hotspot persistence %g outside [0,1]", policy, stats.HotspotPersistence)
		}
		switch policy {
		case PolicyMinimal, PolicyECMP:
			if stats.DetourShare != 0 {
				t.Errorf("%s: detour share %g, want 0", policy, stats.DetourShare)
			}
			if policy == PolicyECMP && stats.AvgHops != minimal.AvgHops {
				// ECMP paths are shortest by construction; only the
				// spreading differs.
				t.Errorf("ecmp avg hops %g != minimal %g", stats.AvgHops, minimal.AvgHops)
			}
		case PolicyValiant:
			if stats.AvgHops < minimal.AvgHops {
				t.Errorf("valiant avg hops %g below minimal %g", stats.AvgHops, minimal.AvgHops)
			}
			if stats.DetourShare == 0 {
				t.Error("valiant never detoured inter-group traffic")
			}
		}
	}
}

// Options validation is shared with simnet and lists every problem.
func TestSimulateOptionValidation(t *testing.T) {
	tr := sendTrace(8, []send{{src: 0, dst: 1, bytes: 100, start: 0}})
	topo := torus(t, 2, 2, 2)
	mp := consecutive(t, 8, 8)
	cases := []struct {
		name string
		opts Options
		want string
	}{
		{"unknown policy", Options{Policy: "psychic"}, "unknown policy"},
		{"negative bandwidth", Options{BandwidthBytesPerSec: -1}, "bandwidth"},
		{"negative packets", Options{PacketBytes: -1}, "packet size"},
		{"negative message cap", Options{MaxMessages: -1}, "message cap"},
		{"negative extra latency", Options{ExtraHopLatency: -1e-9}, "extra hop latency"},
		{"NaN extra latency", Options{ExtraHopLatency: math.NaN()}, "extra hop latency"},
		{"negative buckets", Options{HotspotBuckets: -1}, "hotspot buckets"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Simulate(tr, topo, mp, c.opts)
			if err == nil {
				t.Fatalf("options %+v accepted", c.opts)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
	// Several problems surface in one listing.
	_, err := Simulate(tr, topo, mp, Options{Policy: "psychic", ExtraHopLatency: -1})
	if err == nil || !strings.Contains(err.Error(), "unknown policy") || !strings.Contains(err.Error(), "extra hop latency") {
		t.Errorf("combined error = %v, want both problems listed", err)
	}
	// Undersized mappings and empty traces are rejected like simnet.
	if _, err := Simulate(tr, topo, consecutive(t, 4, 8), Options{}); err == nil {
		t.Error("undersized mapping accepted")
	}
	if _, err := Simulate(sendTrace(8, nil), topo, mp, Options{}); err == nil {
		t.Error("empty trace accepted")
	}
}

// ExtraHopLatency stretches every link traversal: latency grows by
// exactly hops * extra in an uncontended run.
func TestExtraHopLatencyShiftsLatency(t *testing.T) {
	topo := torus(t, 2, 2, 2)
	mp := consecutive(t, 8, 8)
	tr := sendTrace(8, []send{{src: 0, dst: 3, bytes: 4096, start: 0}})
	base, err := Simulate(tr, topo, mp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const extra = 5e-6
	probed, err := Simulate(tr, topo, mp, Options{ExtraHopLatency: extra})
	if err != nil {
		t.Fatal(err)
	}
	hops := float64(topo.HopCount(0, 3))
	want := base.MeanLatency + hops*extra
	if math.Abs(probed.MeanLatency-want) > 1e-12 {
		t.Errorf("latency with extra = %.12g, want %.12g", probed.MeanLatency, want)
	}
}
