package design

import (
	"encoding/json"
	"strings"
	"testing"

	"netloc/internal/core"
	"netloc/internal/trace"
	"netloc/internal/workcache"
)

// smallRequest is the shared search fixture: small enough to keep the
// sweep fast, large enough to admit all four families.
func smallRequest() Request {
	return Request{
		App:   "milc",
		Ranks: 64,
		Constraints: Constraints{
			MaxCandidates: 2,
		},
	}
}

func mustSearch(t *testing.T, req Request, opts core.Options) *Sheet {
	t.Helper()
	sheet, err := Search(req, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sheet
}

// TestSearchDeterministicAcrossWorkers is the core determinism claim:
// the ranked sheet is byte-identical at -j 1, 4, and 16 — and at every
// artifact-cache mode (disabled, cold per run, warm across runs), since
// cached traces and matrices must be indistinguishable from fresh ones.
func TestSearchDeterministicAcrossWorkers(t *testing.T) {
	warm := workcache.New(0)
	modes := []struct {
		name  string
		cache func() *workcache.Cache
	}{
		{"disabled", func() *workcache.Cache { return nil }},
		{"cold", func() *workcache.Cache { return workcache.New(0) }},
		{"warm", func() *workcache.Cache { return warm }},
	}
	var want []byte
	for _, mode := range modes {
		for _, workers := range []int{1, 4, 16} {
			sheet := mustSearch(t, smallRequest(), core.Options{Parallelism: workers, Cache: mode.cache()})
			got, err := json.Marshal(sheet)
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = got
				continue
			}
			if string(got) != string(want) {
				t.Fatalf("sheet bytes differ (cache %s, -j%d):\nwant: %s\ngot:  %s", mode.name, workers, want, got)
			}
		}
	}
	if s := warm.Stats(); s.Hits == 0 {
		t.Fatalf("warm cache recorded no hits across repeated searches: %+v", s)
	}
}

// TestSearchCoversFamiliesAndMappings checks the acceptance shape: every
// requested family appears in the ranked rows, every row carries both
// mappings, and the metric block is populated.
func TestSearchCoversFamiliesAndMappings(t *testing.T) {
	sheet := mustSearch(t, smallRequest(), core.Options{})
	families := map[string]bool{}
	mappings := map[string]bool{}
	for _, r := range sheet.Rows {
		families[r.Family] = true
		mappings[r.Mapping] = true
		if r.AvgHops <= 0 {
			t.Errorf("%s: avg hops %g not populated", r.Name, r.AvgHops)
		}
		if r.MakespanSec <= 0 {
			t.Errorf("%s: makespan %g not populated", r.Name, r.MakespanSec)
		}
		if r.Cost.Switches <= 0 || r.Cost.Links <= 0 || r.CostUnits <= 0 {
			t.Errorf("%s: cost %+v not populated", r.Name, r.Cost)
		}
		if r.MeanPathLength <= 0 || r.MaxHops <= 0 {
			t.Errorf("%s: path stats (%g, %d) not populated", r.Name, r.MeanPathLength, r.MaxHops)
		}
		if r.Nodes < sheet.Ranks {
			t.Errorf("%s: %d nodes do not cover %d ranks", r.Name, r.Nodes, sheet.Ranks)
		}
	}
	for _, fam := range Families() {
		if !families[fam] {
			t.Errorf("family %s missing from sheet", fam)
		}
	}
	for _, m := range DefaultMappings() {
		if !mappings[m] {
			t.Errorf("mapping %s missing from sheet", m)
		}
	}
	if sheet.App != "MILC" {
		t.Errorf("sheet app = %q, want MILC", sheet.App)
	}
}

// TestSheetRankedAndTieBroken pins the ordering contract: rows sorted by
// (score, name) with contiguous 1-based ranks.
func TestSheetRankedAndTieBroken(t *testing.T) {
	sheet := mustSearch(t, smallRequest(), core.Options{})
	if len(sheet.Rows) < 2 {
		t.Fatalf("want multiple rows, got %d", len(sheet.Rows))
	}
	for i, r := range sheet.Rows {
		if r.Rank != i+1 {
			t.Errorf("row %d has rank %d", i, r.Rank)
		}
		if i == 0 {
			continue
		}
		prev := sheet.Rows[i-1]
		if r.Score < prev.Score {
			t.Errorf("rows out of score order: %s (%g) after %s (%g)", r.Name, r.Score, prev.Name, prev.Score)
		}
		if r.Score == prev.Score && r.Name < prev.Name {
			t.Errorf("tie not broken by name: %s after %s", r.Name, prev.Name)
		}
	}
}

// TestRankRowsTieBreak forces an exact tie and checks the name order.
func TestRankRowsTieBreak(t *testing.T) {
	rows := []Row{
		{Name: "b", AvgHops: 2, MakespanSec: 2, CostUnits: 2},
		{Name: "a", AvgHops: 2, MakespanSec: 2, CostUnits: 2},
	}
	rankRows(rows, Weights{}.withDefaults())
	if rows[0].Name != "a" || rows[1].Name != "b" {
		t.Fatalf("tie-break order = %s, %s; want a, b", rows[0].Name, rows[1].Name)
	}
	if rows[0].Score != rows[1].Score {
		t.Fatalf("scores differ on identical metrics: %g vs %g", rows[0].Score, rows[1].Score)
	}
}

// TestCandidatesEnumeration checks the per-family enumerators against
// their documented bounds.
func TestCandidatesEnumeration(t *testing.T) {
	cfgs, err := Candidates(512, Families(), Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	perFamily := map[string]int{}
	for _, c := range cfgs {
		perFamily[c.Kind]++
		if c.Nodes < 512 {
			t.Errorf("%s%s provides %d nodes < 512 ranks", c.Kind, c, c.Nodes)
		}
		topo, err := c.Build()
		if err != nil {
			t.Errorf("%s%s does not build: %v", c.Kind, c, err)
			continue
		}
		if topo.Nodes() != c.Nodes {
			t.Errorf("%s%s built %d nodes, config says %d", c.Kind, c, topo.Nodes(), c.Nodes)
		}
	}
	for _, fam := range Families() {
		if perFamily[fam] == 0 {
			t.Errorf("no %s candidates for 512 ranks", fam)
		}
		if perFamily[fam] > DefaultMaxCandidates {
			t.Errorf("%d %s candidates exceed the %d cap", perFamily[fam], fam, DefaultMaxCandidates)
		}
	}
}

// TestCandidatesRespectRadix: a radix cap below 7 rules out torus/mesh
// routers entirely, and fat trees shrink to the feasible ladder rungs.
func TestCandidatesRespectRadix(t *testing.T) {
	cfgs, err := Candidates(64, Families(), Constraints{MaxRadix: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cfgs {
		switch c.Kind {
		case "torus", "mesh":
			t.Errorf("grid candidate %s%s enumerated under radix cap 6", c.Kind, c)
		case "fattree":
			if c.Radix > 6 {
				t.Errorf("fattree radix %d exceeds cap 6", c.Radix)
			}
		case "dragonfly":
			if r := c.P + (c.A - 1) + c.H; r > 6 {
				t.Errorf("dragonfly %s radix %d exceeds cap 6", c, r)
			}
		}
	}
}

// TestSearchCostCapFilters: an impossible switch budget filters every
// candidate and surfaces ErrNoCandidates, not an empty sheet.
func TestSearchCostCapFilters(t *testing.T) {
	req := smallRequest()
	req.Constraints.MaxSwitches = 1
	_, err := Search(req, core.Options{})
	if err == nil {
		t.Fatal("want ErrNoCandidates, got nil")
	}
	if !strings.Contains(err.Error(), "no feasible candidates") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestValidateErrors walks the request validation table.
func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		req  Request
		want string
	}{
		{"no app", Request{Ranks: 8}, "missing app"},
		{"non-positive ranks", Request{App: "milc", Ranks: 0}, "non-positive node count"},
		{"negative ranks", Request{App: "milc", Ranks: -4}, "non-positive node count"},
		{"tiny radix", Request{App: "milc", Ranks: 8, Constraints: Constraints{MaxRadix: 2}}, "max_radix 2 too small"},
		{"negative switches", Request{App: "milc", Ranks: 8, Constraints: Constraints{MaxSwitches: -1}}, "negative max_switches"},
		{"empty families", Request{App: "milc", Ranks: 8, Families: []string{}}, "empty candidate set"},
		{"unknown family", Request{App: "milc", Ranks: 8, Families: []string{"hypercube"}}, "unknown family"},
		{"empty mappings", Request{App: "milc", Ranks: 8, Mappings: []string{}}, "empty candidate set"},
		{"unknown mapping", Request{App: "milc", Ranks: 8, Mappings: []string{"simulated-annealing"}}, "unknown mapping"},
		{"negative weight", Request{App: "milc", Ranks: 8, Weights: Weights{Hops: -1}}, "negative score weights"},
	}
	for _, tc := range cases {
		_, err := Search(tc.req, core.Options{})
		if err == nil {
			t.Errorf("%s: want error containing %q, got nil", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
	// Explicitly empty sets must fail even though nil selects defaults.
	if _, err := Search(Request{App: "milc", Ranks: 8, Families: []string{}}, core.Options{}); err == nil {
		t.Error("explicit empty families accepted")
	}
}

// TestSearchUnknownApp lists the admissible names.
func TestSearchUnknownApp(t *testing.T) {
	_, err := Search(Request{App: "doom", Ranks: 8}, core.Options{})
	if err == nil || !strings.Contains(err.Error(), "unknown application") {
		t.Fatalf("want unknown-application error, got %v", err)
	}
	if !strings.Contains(err.Error(), "milc") {
		t.Errorf("error does not list design extras: %v", err)
	}
}

// TestSearchRegistryAppCaseInsensitive resolves a calibrated app with
// folded case at one of its configured scales.
func TestSearchRegistryAppCaseInsensitive(t *testing.T) {
	sheet := mustSearch(t, Request{
		App:      "lulesh",
		Ranks:    27,
		Families: []string{"torus"},
		Mappings: []string{core.MappingConsecutive},
		Constraints: Constraints{
			MaxCandidates: 1,
		},
	}, core.Options{})
	if len(sheet.Rows) != 1 {
		t.Fatalf("want 1 row, got %d", len(sheet.Rows))
	}
	if sheet.App != "LULESH" {
		t.Errorf("sheet app = %q, want LULESH (registry spelling)", sheet.App)
	}
}

// TestSearchAttachedTrace uses an uploaded trace as the workload.
func TestSearchAttachedTrace(t *testing.T) {
	tr, err := milcTrace(16)
	if err != nil {
		t.Fatal(err)
	}
	sheet := mustSearch(t, Request{
		Trace:    tr,
		Families: []string{"fattree"},
		Mappings: []string{core.MappingGreedy},
	}, core.Options{})
	if sheet.Ranks != 16 {
		t.Errorf("sheet ranks = %d, want 16 from trace metadata", sheet.Ranks)
	}
}

// TestMilcTraceShape checks the design-only generator: pure p2p halo
// exchange on a 4D grid, valid against the trace model.
func TestMilcTraceShape(t *testing.T) {
	tr, err := milcTrace(512)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Meta.Ranks != 512 || tr.Meta.WallTime <= 0 {
		t.Fatalf("bad meta %+v", tr.Meta)
	}
	for _, e := range tr.Events {
		if e.Op != trace.OpSend {
			t.Fatalf("non-p2p op %s in milc trace", e.Op)
		}
	}
	// 512 = 8*4*4*4: every dim > 2, so all 8 neighbors are distinct.
	if want := milcIterations * 512 * 8; len(tr.Events) != want {
		t.Fatalf("milc events = %d, want %d", len(tr.Events), want)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestDims4 pins the factorization: near-balanced, largest first, and
// huge primes rejected.
func TestDims4(t *testing.T) {
	d, err := dims4(512)
	if err != nil {
		t.Fatal(err)
	}
	if d != [4]int{8, 4, 4, 4} {
		t.Errorf("dims4(512) = %v, want [8 4 4 4]", d)
	}
	if _, err := dims4(2 * 1009); err == nil {
		t.Error("dims4 accepted a huge prime factor")
	}
	d, err = dims4(1)
	if err != nil || d != [4]int{1, 1, 1, 1} {
		t.Errorf("dims4(1) = %v, %v", d, err)
	}
}

// TestCanonicalKeyStable: defaults filled two ways share a cache key;
// different constraints do not.
func TestCanonicalKeyStable(t *testing.T) {
	a := Request{App: "MILC", Ranks: 64}.CanonicalKey()
	b := Request{App: "milc", Ranks: 64, Families: Families(), Mappings: DefaultMappings(),
		Weights: Weights{1, 1, 1}}.CanonicalKey()
	if a != b {
		t.Errorf("equivalent requests key differently:\n%s\n%s", a, b)
	}
	c := Request{App: "milc", Ranks: 64, Constraints: Constraints{MaxLinks: 5}}.CanonicalKey()
	if a == c {
		t.Error("different constraints share a key")
	}
}

// TestExtremeScaleFamiliesEnumerate pins the acceptance criterion of the
// family expansion: under default constraints every new family yields at
// least one candidate at the paper-adjacent scales, and each candidate
// builds.
func TestExtremeScaleFamiliesEnumerate(t *testing.T) {
	for _, fam := range []string{"slimfly", "jellyfish", "hyperx"} {
		for _, ranks := range []int{64, 256, 1728} {
			cfgs, err := Candidates(ranks, []string{fam}, Constraints{})
			if err != nil {
				t.Fatalf("%s/%d: %v", fam, ranks, err)
			}
			if len(cfgs) == 0 {
				t.Fatalf("%s/%d: no candidates under default constraints", fam, ranks)
			}
			for _, cfg := range cfgs {
				topo, err := cfg.Build()
				if err != nil {
					t.Fatalf("%s/%d: %s%s: %v", fam, ranks, cfg.Kind, cfg, err)
				}
				if topo.Nodes() < ranks {
					t.Fatalf("%s/%d: %s%s provides %d nodes", fam, ranks, cfg.Kind, cfg, topo.Nodes())
				}
			}
		}
	}
}

// TestJellyfishSearchDeterministicAcrossWorkers is the family-specific
// determinism regression: the seeded random wiring must give the same
// ranked sheet at -j 1/4/16 whether topologies are rebuilt per cell
// (cache disabled), built once per run (cold), or shared across runs
// (warm) — i.e. the wiring depends only on the Config, never on build
// order or sharing.
func TestJellyfishSearchDeterministicAcrossWorkers(t *testing.T) {
	req := smallRequest()
	req.Families = []string{"jellyfish"}
	req.Constraints.MaxCandidates = 3
	warm := workcache.New(0)
	modes := []struct {
		name  string
		cache func() *workcache.Cache
	}{
		{"disabled", func() *workcache.Cache { return nil }},
		{"cold", func() *workcache.Cache { return workcache.New(0) }},
		{"warm", func() *workcache.Cache { return warm }},
	}
	var want []byte
	for _, mode := range modes {
		for _, workers := range []int{1, 4, 16} {
			sheet := mustSearch(t, req, core.Options{Parallelism: workers, Cache: mode.cache()})
			for _, r := range sheet.Rows {
				if r.Family != "jellyfish" {
					t.Fatalf("unexpected family %s in jellyfish-only sheet", r.Family)
				}
			}
			got, err := json.Marshal(sheet)
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = got
				continue
			}
			if string(got) != string(want) {
				t.Fatalf("jellyfish sheet bytes differ (cache %s, -j%d)", mode.name, workers)
			}
		}
	}
}
