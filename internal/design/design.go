// Package design closes the loop the paper leaves open: instead of only
// *evaluating* a (topology, mapping) pair the user already picked, it
// searches the configuration space for a workload and returns a ranked
// design sheet.
//
// The search follows the two recipes named in PAPERS.md — Solnushkin's
// automated fat-tree design (enumerate feasible configurations under
// radix/cost constraints, arXiv 1301.6179) and Deng et al.'s
// minimal-mean-path-length topology search (arXiv 1904.00513) — and
// scores every candidate with the repo's full analysis pipeline: the
// workload trace is generated (or supplied) once, accumulated into
// communication matrices once, and each candidate configuration is then
// built, mapped, driven through the static network model (avg hops, link
// utilization) and the flow-level simulator (makespan), and priced with
// the shared topology.Cost model.
//
// All candidate evaluation fans out deterministically on
// internal/parallel: results are index-addressed, reductions and the
// final ranking run in index order, and tie-breaks are pinned by
// (score, candidate name) — so the ranked sheet is byte-identical at any
// worker count.
package design

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"

	"netloc/internal/comm"
	"netloc/internal/core"
	"netloc/internal/netmodel"
	"netloc/internal/parallel"
	"netloc/internal/simnet"
	"netloc/internal/topology"
	"netloc/internal/trace"
	"netloc/internal/workcache"
)

// Families lists the topology families the optimizer can sweep, in the
// canonical sheet order: the paper's families (plus mesh) first, then the
// extreme-scale families (Slim Fly, Jellyfish, HyperX).
func Families() []string {
	return []string{"torus", "mesh", "fattree", "dragonfly", "slimfly", "jellyfish", "hyperx"}
}

// DefaultMappings are the mapping strategies a search sweeps when the
// request names none: the paper's consecutive baseline plus the greedy
// communication-aware mapper its discussion motivates.
func DefaultMappings() []string { return []string{core.MappingConsecutive, core.MappingGreedy} }

// Default search bounds.
const (
	// DefaultMaxRadix is the switch-radix cap when the request sets none
	// (the study's deliberately high fat-tree radix).
	DefaultMaxRadix = topology.FatTreeRadix
	// DefaultMaxCandidates bounds the enumerated configurations per
	// family when the request sets no cap.
	DefaultMaxCandidates = 6
	// maxNodeSlack rejects candidates provisioning more than this many
	// times the requested node count — gross overprovisioning is never
	// cost-competitive and only slows the sweep.
	maxNodeSlack = 4
)

// Constraints bound the candidate space. Zero values mean "default" for
// MaxRadix and MaxCandidates and "unbounded" for the cost caps.
type Constraints struct {
	// MaxRadix caps the switch radix of enumerated fat trees and
	// dragonflies (and requires >= 6 neighbor ports for torus/mesh
	// routers). Must be >= 3 when set; DefaultMaxRadix when zero.
	MaxRadix int `json:"max_radix,omitempty"`
	// MaxSwitches and MaxLinks drop candidates whose built cost exceeds
	// them (0 = unbounded). They are the cost proxies of the request.
	MaxSwitches int `json:"max_switches,omitempty"`
	MaxLinks    int `json:"max_links,omitempty"`
	// MaxCandidates caps the configurations enumerated per family
	// (DefaultMaxCandidates when zero).
	MaxCandidates int `json:"max_candidates,omitempty"`
}

func (c Constraints) maxRadix() int {
	if c.MaxRadix == 0 {
		return DefaultMaxRadix
	}
	return c.MaxRadix
}

func (c Constraints) maxCandidates() int {
	if c.MaxCandidates == 0 {
		return DefaultMaxCandidates
	}
	return c.MaxCandidates
}

// Weights are the relative importance of the three score terms. Each
// candidate's metric is normalized by the best value over the sheet, so
// a weight of 1 contributes 1.0 for the best candidate on that axis.
// The zero value (all weights zero) means the balanced default (1,1,1);
// with any weight set, zero weights disable their term.
type Weights struct {
	Hops     float64 `json:"hops"`
	Makespan float64 `json:"makespan"`
	Cost     float64 `json:"cost"`
}

func (w Weights) withDefaults() Weights {
	if w == (Weights{}) {
		return Weights{Hops: 1, Makespan: 1, Cost: 1}
	}
	return w
}

// Request describes one design search: a workload (a named app at a
// scale, or a pre-loaded trace) plus the candidate space to sweep.
type Request struct {
	// App and Ranks name the workload. App accepts the workload names
	// case-insensitively plus the design-only extras (see ExtraApps).
	// Ranks is also the node count the designed network must provide.
	App   string `json:"app"`
	Ranks int    `json:"ranks"`
	// Families restricts the swept topology families (nil = all of
	// Families(); an explicitly empty list is a validation error).
	Families []string `json:"families,omitempty"`
	// Mappings restricts the swept mapping strategies (nil =
	// DefaultMappings; an explicitly empty list is a validation error).
	Mappings    []string    `json:"mappings,omitempty"`
	Constraints Constraints `json:"constraints"`
	Weights     Weights     `json:"weights"`

	// Trace, when set, is the workload: App becomes a label and Ranks is
	// taken from the trace metadata. Never serialized.
	Trace *trace.Trace `json:"-"`
	// Progress, when set, observes candidate completion: it is called
	// after each evaluated configuration with the number done so far and
	// the total. Calls may arrive from worker goroutines; consumers
	// should clamp monotonically (the job store does).
	Progress func(done, total int) `json:"-"`
}

// withDefaults canonicalizes the request (families, mappings, weights).
func (r Request) withDefaults() Request {
	if r.Trace != nil {
		r.Ranks = r.Trace.Meta.Ranks
		if r.App == "" {
			r.App = r.Trace.Meta.App
		}
	}
	if r.Families == nil {
		r.Families = Families()
	}
	if r.Mappings == nil {
		r.Mappings = DefaultMappings()
	}
	r.Weights = r.Weights.withDefaults()
	return r
}

// ErrNoCandidates is wrapped by searches whose constraint set admits no
// configuration at all; services map it to a 400.
var ErrNoCandidates = errors.New("design: no feasible candidates")

// Validate checks a canonicalized request the way the service validates
// rank parameters: structured errors listing the admissible values,
// never a panic or a silent empty sheet.
func (r Request) Validate() error {
	if r.Trace == nil {
		if r.App == "" {
			return errors.New("design: missing app (or trace) in request")
		}
		if err := knownApp(r.App); err != nil {
			return err
		}
	}
	if r.Ranks <= 0 {
		return fmt.Errorf("design: non-positive node count %d (need >= 1)", r.Ranks)
	}
	if r.Constraints.MaxRadix != 0 && r.Constraints.MaxRadix < 3 {
		return fmt.Errorf("design: max_radix %d too small (need >= 3)", r.Constraints.MaxRadix)
	}
	if r.Constraints.MaxSwitches < 0 {
		return fmt.Errorf("design: negative max_switches %d", r.Constraints.MaxSwitches)
	}
	if r.Constraints.MaxLinks < 0 {
		return fmt.Errorf("design: negative max_links %d", r.Constraints.MaxLinks)
	}
	if r.Constraints.MaxCandidates < 0 {
		return fmt.Errorf("design: negative max_candidates %d", r.Constraints.MaxCandidates)
	}
	if len(r.Families) == 0 {
		return fmt.Errorf("design: empty candidate set: no families requested (known: %v)", Families())
	}
	for _, f := range r.Families {
		if !knownFamily(f) {
			return fmt.Errorf("design: unknown family %q (known: %v)", f, Families())
		}
	}
	if len(r.Mappings) == 0 {
		return fmt.Errorf("design: empty candidate set: no mappings requested (known: %v)", core.MappingNames())
	}
	for _, m := range r.Mappings {
		if !knownMapping(m) {
			return fmt.Errorf("design: unknown mapping %q (known: %v)", m, core.MappingNames())
		}
	}
	if r.Weights.Hops < 0 || r.Weights.Makespan < 0 || r.Weights.Cost < 0 {
		return fmt.Errorf("design: negative score weights %+v", r.Weights)
	}
	return nil
}

func knownFamily(name string) bool {
	for _, f := range Families() {
		if f == name {
			return true
		}
	}
	return false
}

func knownMapping(name string) bool {
	for _, m := range core.MappingNames() {
		if m == name {
			return true
		}
	}
	return false
}

// Row is one ranked candidate of the design sheet: a topology
// configuration under one mapping strategy with its full metric block.
type Row struct {
	// Rank is the 1-based position after sorting by (Score, Name).
	Rank int `json:"rank"`
	// Name identifies the candidate, e.g. "torus(8,8,8)+greedy".
	Name    string          `json:"name"`
	Family  string          `json:"family"`
	Label   string          `json:"label"`
	Mapping string          `json:"mapping"`
	Config  topology.Config `json:"config"`
	Nodes   int             `json:"nodes"`

	// Cost is the shared hardware cost model; CostUnits is its scalar
	// collapse used by the score.
	Cost      topology.Cost `json:"cost"`
	CostUnits float64       `json:"cost_units"`

	// Static model metrics (netmodel): traffic-weighted hops under the
	// mapping, link utilization over the used links, and the share of
	// messages crossing global links.
	AvgHops          float64 `json:"avg_hops"`
	UtilizationPct   float64 `json:"utilization_pct"`
	UtilizationValid bool    `json:"utilization_valid"`
	GlobalMsgShare   float64 `json:"global_msg_share"`

	// Topology-intrinsic path statistics over all node pairs (uniform
	// traffic): the mean path length Deng et al. minimize, and the
	// diameter over endpoints.
	MeanPathLength float64 `json:"mean_path_length"`
	MaxHops        int     `json:"max_hops"`

	// Flow-level simulation metrics (simnet): end-to-end makespan and
	// the measured mean link-busy share over it.
	MakespanSec       float64 `json:"makespan_s"`
	SimUtilizationPct float64 `json:"sim_utilization_pct"`

	// Score is the weighted sum of best-normalized avg hops, makespan,
	// and cost units; lower is better.
	Score float64 `json:"score"`
}

// Sheet is the result of one search: the canonicalized request echo plus
// the ranked candidate rows.
type Sheet struct {
	App         string      `json:"app"`
	Ranks       int         `json:"ranks"`
	Families    []string    `json:"families"`
	Mappings    []string    `json:"mappings"`
	Constraints Constraints `json:"constraints"`
	Weights     Weights     `json:"weights"`
	// Configs counts the enumerated configurations; Filtered counts
	// those the switch/link cost caps rejected after building.
	Configs  int   `json:"configs"`
	Filtered int   `json:"filtered"`
	Rows     []Row `json:"rows"`
}

// Best returns the top-ranked row (nil for an empty sheet, which Search
// never returns).
func (s *Sheet) Best() *Row {
	if s == nil || len(s.Rows) == 0 {
		return nil
	}
	return &s.Rows[0]
}

// Candidates enumerates the constraint-feasible configurations for the
// requested families in deterministic order: families in the given
// order, configurations within a family sorted by (nodes, parameters).
func Candidates(ranks int, families []string, c Constraints) ([]topology.Config, error) {
	if ranks <= 0 {
		return nil, fmt.Errorf("design: non-positive node count %d", ranks)
	}
	var out []topology.Config
	for _, fam := range families {
		switch fam {
		case "torus":
			out = append(out, gridConfigs("torus", ranks, c)...)
		case "mesh":
			out = append(out, gridConfigs("mesh", ranks, c)...)
		case "fattree":
			out = append(out, fatTreeConfigs(ranks, c)...)
		case "dragonfly":
			out = append(out, dragonflyConfigs(ranks, c)...)
		case "slimfly":
			out = append(out, slimFlyConfigs(ranks, c)...)
		case "jellyfish":
			out = append(out, jellyfishConfigs(ranks, c)...)
		case "hyperx":
			out = append(out, hyperxConfigs(ranks, c)...)
		default:
			return nil, fmt.Errorf("design: unknown family %q (known: %v)", fam, Families())
		}
	}
	return out, nil
}

// gridConfigs enumerates 3D grids x >= y >= z with x*y*z >= ranks and at
// most 2x overprovisioning, smallest volume (then most cubic) first.
// Torus/mesh routers need 6 neighbor ports plus the injection port, so
// the family is infeasible under a radix cap below 7.
func gridConfigs(kind string, ranks int, c Constraints) []topology.Config {
	if c.maxRadix() < 7 {
		return nil
	}
	type dims struct{ x, y, z int }
	seen := map[dims]bool{}
	var all []dims
	for z := 1; z*z*z <= 2*ranks; z++ {
		for y := z; y*y*z <= 2*ranks; y++ {
			// Smallest x >= y covering the ranks.
			x := (ranks + y*z - 1) / (y * z)
			if x < y {
				x = y
			}
			vol := x * y * z
			if vol > 2*ranks {
				continue
			}
			d := dims{x, y, z}
			if !seen[d] {
				seen[d] = true
				all = append(all, d)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		vi, vj := all[i].x*all[i].y*all[i].z, all[j].x*all[j].y*all[j].z
		if vi != vj {
			return vi < vj
		}
		if all[i].x != all[j].x {
			return all[i].x < all[j].x
		}
		if all[i].y != all[j].y {
			return all[i].y < all[j].y
		}
		return all[i].z < all[j].z
	})
	if len(all) > c.maxCandidates() {
		all = all[:c.maxCandidates()]
	}
	out := make([]topology.Config, 0, len(all))
	for _, d := range all {
		out = append(out, topology.Config{
			Kind: kind, Size: ranks, Nodes: d.x * d.y * d.z, X: d.x, Y: d.y, Z: d.z,
		})
	}
	return out
}

// fatTreeRadixLadder are the switch radices the fat-tree sweep tries
// (common commercial port counts).
var fatTreeRadixLadder = []int{4, 8, 12, 16, 24, 32, 48, 64}

// fatTreeConfigs enumerates the smallest covering fat tree per feasible
// radix (Solnushkin's design space: radix and stage count), sorted by
// (nodes, radix).
func fatTreeConfigs(ranks int, c Constraints) []topology.Config {
	var out []topology.Config
	for _, radix := range fatTreeRadixLadder {
		if radix > c.maxRadix() {
			continue
		}
		d := radix / 2
		var stages, nodes int
		switch {
		case ranks <= radix:
			stages, nodes = 1, radix
		case ranks <= d*d:
			stages, nodes = 2, d*d
		case ranks <= d*d*d:
			stages, nodes = 3, d*d*d
		default:
			continue // radix too small for <= 3 stages
		}
		if nodes > maxNodeSlack*ranks && stages > 1 {
			continue
		}
		out = append(out, topology.Config{
			Kind: "fattree", Size: ranks, Nodes: nodes, Radix: radix, Stages: stages,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Nodes != out[j].Nodes {
			return out[i].Nodes < out[j].Nodes
		}
		return out[i].Radix < out[j].Radix
	})
	if len(out) > c.maxCandidates() {
		out = out[:c.maxCandidates()]
	}
	return out
}

// dragonflyConfigs enumerates near-balanced dragonflies (a ≈ 2h, p ≈ h,
// Kim's balancing rule) whose router radix p+(a-1)+h fits the cap and
// whose node count covers the ranks without gross overprovisioning,
// sorted by (nodes, a, h, p).
func dragonflyConfigs(ranks int, c Constraints) []topology.Config {
	var out []topology.Config
	for a := 2; a <= 24; a++ {
		for h := 1; h <= a; h++ {
			if d := a - 2*h; d < -2 || d > 2 {
				continue // keep near-balanced: a ≈ 2h
			}
			for p := h; p <= h+1; p++ {
				radix := p + (a - 1) + h
				if radix > c.maxRadix() {
					continue
				}
				nodes := a * p * (a*h + 1)
				if nodes < ranks || nodes > maxNodeSlack*ranks {
					continue
				}
				out = append(out, topology.Config{
					Kind: "dragonfly", Size: ranks, Nodes: nodes, A: a, H: h, P: p,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Nodes != out[j].Nodes {
			return out[i].Nodes < out[j].Nodes
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		if out[i].H != out[j].H {
			return out[i].H < out[j].H
		}
		return out[i].P < out[j].P
	})
	if len(out) > c.maxCandidates() {
		out = out[:c.maxCandidates()]
	}
	return out
}

// slimFlyQLadder mirrors the topology package's sizing ladder: the MMS
// field orders with 2q² routers each.
var slimFlyQLadder = []int{5, 7, 11, 13, 17, 19, 23, 25}

// slimFlyConfigs enumerates ladder Slim Flies whose router count covers
// the ranks with at most the balanced endpoint load p ≤ ⌈k/2⌉ and whose
// radix k+p fits the cap, sorted by (nodes, q).
func slimFlyConfigs(ranks int, c Constraints) []topology.Config {
	var out []topology.Config
	for _, q := range slimFlyQLadder {
		routers := 2 * q * q
		delta := 1
		if q%4 == 3 {
			delta = -1
		}
		k := (3*q - delta) / 2
		p := (ranks + routers - 1) / routers
		if p > (k+1)/2 {
			continue // endpoint load beyond balanced — q too small
		}
		if k+p > c.maxRadix() {
			continue
		}
		nodes := routers * p
		if nodes > maxNodeSlack*ranks {
			continue
		}
		out = append(out, topology.Config{
			Kind: "slimfly", Size: ranks, Nodes: nodes, Q: q, P: p,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Nodes != out[j].Nodes {
			return out[i].Nodes < out[j].Nodes
		}
		return out[i].Q < out[j].Q
	})
	if len(out) > c.maxCandidates() {
		out = out[:c.maxCandidates()]
	}
	return out
}

// jellyfishConfigs enumerates seeded random regular graphs across
// endpoint loads p: S = ⌈ranks/p⌉ switches of degree r = min(2p, S-1)
// (decremented when the port total is odd), wiring seed 1. Degrees below
// 3 are skipped unless the graph is complete — sparse random graphs risk
// disconnection, which would abort the sweep. Sorted by (nodes, p).
func jellyfishConfigs(ranks int, c Constraints) []topology.Config {
	var out []topology.Config
	seen := map[[3]int]bool{}
	for p := 1; p <= 16; p++ {
		s := (ranks + p - 1) / p
		if s < 2 {
			s = 2
		}
		if s > 4096 {
			continue
		}
		r := 2 * p
		if r > s-1 {
			r = s - 1
		}
		if s*r%2 != 0 {
			r--
		}
		if r < 1 || (r < 3 && r != s-1) {
			continue
		}
		if r+p > c.maxRadix() {
			continue
		}
		nodes := s * p
		if nodes < ranks || nodes > maxNodeSlack*ranks {
			continue
		}
		key := [3]int{s, r, p}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, topology.Config{
			Kind: "jellyfish", Size: ranks, Nodes: nodes, S: s, D: r, P: p, Seed: 1,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Nodes != out[j].Nodes {
			return out[i].Nodes < out[j].Nodes
		}
		return out[i].P < out[j].P
	})
	if len(out) > c.maxCandidates() {
		out = out[:c.maxCandidates()]
	}
	return out
}

// hyperxConfigs enumerates near-square two-dimensional HyperX lattices
// across the terminal ladder, radix (s1-1)+(s2-1)+t under the cap,
// sorted by (nodes, t).
func hyperxConfigs(ranks int, c Constraints) []topology.Config {
	var out []topology.Config
	for _, t := range []int{2, 4, 8, 16, 32} {
		sw := (ranks + t - 1) / t
		s1 := 1
		for s1*s1 < sw {
			s1++
		}
		s2 := (sw + s1 - 1) / s1
		if s1*s2 > 4096 {
			continue
		}
		if (s1-1)+(s2-1)+t > c.maxRadix() {
			continue
		}
		nodes := s1 * s2 * t
		if nodes < ranks || nodes > maxNodeSlack*ranks {
			continue
		}
		out = append(out, topology.Config{
			Kind: "hyperx", Size: ranks, Nodes: nodes, X: s1, Y: s2, Z: 1, P: t,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Nodes != out[j].Nodes {
			return out[i].Nodes < out[j].Nodes
		}
		return out[i].P < out[j].P
	})
	if len(out) > c.maxCandidates() {
		out = out[:c.maxCandidates()]
	}
	return out
}

// Engine plumbing mirroring core.Options' unexported helpers: one shared
// token budget across the config fan-out, sequential when Parallelism=1.

func optWorkers(o core.Options) int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

func withEngine(o core.Options) core.Options {
	if o.Budget == nil && optWorkers(o) > 1 {
		o.Budget = parallel.NewBudget(optWorkers(o) - 1)
	}
	return o
}

func optRunner(o core.Options) parallel.Runner {
	if optWorkers(o) <= 1 || o.Budget == nil {
		return parallel.Seq()
	}
	return parallel.Shared(o.Budget, optWorkers(o))
}

// accumulateCached memoizes the accumulated matrices of generated
// traces in the shared artifact cache, so repeated sweeps over the same
// workload (and core experiments over the same exact scale) reuse them.
// Attached traces (source "") are never cached: a request payload must
// not populate artifacts other callers would share.
func accumulateCached(t *trace.Trace, source string, opts core.Options) (*comm.Accumulated, error) {
	gen := func() (*comm.Accumulated, error) {
		sp := opts.Span.Start("accumulate")
		defer sp.End()
		sp.Add("events", int64(len(t.Events)))
		return comm.AccumulateParallel(t,
			comm.AccumulateOptions{PacketSize: opts.PacketSize, Strategy: opts.Strategy}, optRunner(opts))
	}
	if source == "" {
		return gen()
	}
	return opts.Cache.Accumulated(workcache.AccKey{
		Source: source, App: t.Meta.App, Ranks: t.Meta.Ranks,
		PacketSize: opts.PacketSize, Strategy: opts.Strategy,
	}, gen)
}

// Search runs the design search to completion. See SearchContext.
func Search(req Request, opts core.Options) (*Sheet, error) {
	return SearchContext(context.Background(), req, opts)
}

// configOutcome is the per-configuration fan-out result: either the
// mapping rows or a filtered marker (cost caps exceeded).
type configOutcome struct {
	rows     []Row
	filtered bool
}

// SearchContext enumerates, evaluates, and ranks the candidate space.
// Cancelling the context stops the sweep at the next configuration
// boundary and returns the context error; worker tokens drawn from the
// options' budget are released before it returns.
func SearchContext(ctx context.Context, req Request, opts core.Options) (*Sheet, error) {
	req = req.withDefaults()
	if err := req.Validate(); err != nil {
		return nil, err
	}
	opts = withEngine(opts)

	t, source, err := resolveTrace(req, opts)
	if err != nil {
		return nil, err
	}
	acc, err := accumulateCached(t, source, opts)
	if err != nil {
		return nil, err
	}

	cfgs, err := Candidates(req.Ranks, req.Families, req.Constraints)
	if err != nil {
		return nil, err
	}
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("%w: no configuration in families %v covers %d nodes under max_radix %d",
			ErrNoCandidates, req.Families, req.Ranks, req.Constraints.maxRadix())
	}

	total := len(cfgs)
	outcomes := make([]configOutcome, total)
	var done atomic.Int64
	err = optRunner(opts).ForEachErr(total, func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		oc, err := evaluateConfig(ctx, cfgs[i], req, t, acc, opts)
		if err != nil {
			return fmt.Errorf("design: %s%s: %w", cfgs[i].Kind, cfgs[i], err)
		}
		outcomes[i] = oc
		d := int(done.Add(1))
		if req.Progress != nil {
			req.Progress(d, total)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	sheet := &Sheet{
		App:         t.Meta.App,
		Ranks:       req.Ranks,
		Families:    req.Families,
		Mappings:    req.Mappings,
		Constraints: req.Constraints,
		Weights:     req.Weights,
		Configs:     total,
	}
	for _, oc := range outcomes {
		if oc.filtered {
			sheet.Filtered++
			continue
		}
		sheet.Rows = append(sheet.Rows, oc.rows...)
	}
	if len(sheet.Rows) == 0 {
		return nil, fmt.Errorf("%w: all %d enumerated configurations exceed the cost caps (max_switches=%d, max_links=%d)",
			ErrNoCandidates, total, req.Constraints.MaxSwitches, req.Constraints.MaxLinks)
	}
	rankRows(sheet.Rows, req.Weights)
	opts.Span.Add("design_configs", int64(total))
	opts.Span.Add("design_candidates", int64(len(sheet.Rows)))
	return sheet, nil
}

// evaluateConfig builds one configuration, prices it, filters it against
// the cost caps, and scores it under every requested mapping. The per-
// config work is fully sequential so the parallel fan-out above stays
// index-deterministic.
func evaluateConfig(ctx context.Context, cfg topology.Config, req Request, t *trace.Trace, acc *comm.Accumulated, opts core.Options) (configOutcome, error) {
	span := opts.Span.Start("candidate")
	span.SetLabel(cfg.Kind + cfg.String())
	defer span.End()

	topo, err := opts.Cache.Topology(cfg, cfg.Build)
	if err != nil {
		return configOutcome{}, err
	}
	cost := topology.CostOf(topo)
	if (req.Constraints.MaxSwitches > 0 && cost.Switches > req.Constraints.MaxSwitches) ||
		(req.Constraints.MaxLinks > 0 && cost.Links > req.Constraints.MaxLinks) {
		span.Add("filtered", 1)
		return configOutcome{filtered: true}, nil
	}
	mpl, maxHops := pathStats(topo)

	rows := make([]Row, 0, len(req.Mappings))
	for _, mapName := range req.Mappings {
		if err := ctx.Err(); err != nil {
			return configOutcome{}, err
		}
		mp, err := core.BuildMapping(mapName, acc, topo)
		if err != nil {
			return configOutcome{}, fmt.Errorf("mapping %s: %w", mapName, err)
		}
		nm, err := netmodel.Run(acc.Wire, topo, mp, netmodel.Options{
			BandwidthBytesPerSec: opts.BandwidthBytesPerSec,
			WallTime:             acc.Meta.WallTime,
			TrackLinks:           true,
		})
		if err != nil {
			return configOutcome{}, fmt.Errorf("netmodel under %s: %w", mapName, err)
		}
		sim, err := simnet.Simulate(t, topo, mp, simnet.Options{
			BandwidthBytesPerSec: opts.BandwidthBytesPerSec,
			PacketBytes:          opts.PacketSize,
		})
		if err != nil {
			return configOutcome{}, fmt.Errorf("simnet under %s: %w", mapName, err)
		}
		span.Add("packets", int64(nm.Packets))
		span.Add("sim_messages", int64(sim.Messages))
		rows = append(rows, Row{
			Name:              cfg.Kind + cfg.String() + "+" + mapName,
			Family:            cfg.Kind,
			Label:             cfg.String(),
			Mapping:           mapName,
			Config:            cfg,
			Nodes:             topo.Nodes(),
			Cost:              cost,
			CostUnits:         cost.Units(),
			AvgHops:           nm.AvgHops,
			UtilizationPct:    nm.UtilizationPct,
			UtilizationValid:  nm.UtilizationValid,
			GlobalMsgShare:    nm.GlobalMsgShare,
			MeanPathLength:    mpl,
			MaxHops:           maxHops,
			MakespanSec:       sim.Makespan,
			SimUtilizationPct: sim.MeasuredUtilizationPct,
		})
	}
	return configOutcome{rows: rows}, nil
}

// pathStats computes the mean path length and diameter over all ordered
// compute-node pairs (uniform traffic, the objective of the minimal-MPL
// search). Hop counts are analytic, so this is cheap even for the
// largest enumerated candidates.
func pathStats(topo topology.Topology) (mpl float64, maxHops int) {
	n := topo.Nodes()
	if n < 2 {
		return 0, 0
	}
	var total uint64
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			h := topo.HopCount(s, d)
			total += uint64(h)
			if h > maxHops {
				maxHops = h
			}
		}
	}
	return float64(total) / float64(n*(n-1)), maxHops
}

// rankRows scores every row against the sheet's best values, sorts by
// (score, name) — the pinned tie-break — and assigns 1-based ranks. The
// minima and the score loop run in slice order, so the ranking is
// deterministic for a deterministic row set.
func rankRows(rows []Row, w Weights) {
	minHops, minMakespan, minCost := 0.0, 0.0, 0.0
	for _, r := range rows {
		if r.AvgHops > 0 && (minHops == 0 || r.AvgHops < minHops) {
			minHops = r.AvgHops
		}
		if r.MakespanSec > 0 && (minMakespan == 0 || r.MakespanSec < minMakespan) {
			minMakespan = r.MakespanSec
		}
		if r.CostUnits > 0 && (minCost == 0 || r.CostUnits < minCost) {
			minCost = r.CostUnits
		}
	}
	norm := func(v, min float64) float64 {
		if v <= 0 || min <= 0 {
			return 0
		}
		return v / min
	}
	for i := range rows {
		rows[i].Score = w.Hops*norm(rows[i].AvgHops, minHops) +
			w.Makespan*norm(rows[i].MakespanSec, minMakespan) +
			w.Cost*norm(rows[i].CostUnits, minCost)
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Score != rows[j].Score {
			return rows[i].Score < rows[j].Score
		}
		return rows[i].Name < rows[j].Name
	})
	for i := range rows {
		rows[i].Rank = i + 1
	}
}

// CanonicalKey renders a canonicalized request as a stable string for
// result caching: equivalent requests (defaults filled in) share a key.
func (r Request) CanonicalKey() string {
	r = r.withDefaults()
	return fmt.Sprintf("design?app=%s&ranks=%d&families=%s&mappings=%s&radix=%d&switches=%d&links=%d&cand=%d&w=%g,%g,%g",
		strings.ToLower(r.App), r.Ranks,
		strings.Join(r.Families, ","), strings.Join(r.Mappings, ","),
		r.Constraints.maxRadix(), r.Constraints.MaxSwitches, r.Constraints.MaxLinks,
		r.Constraints.maxCandidates(), r.Weights.Hops, r.Weights.Makespan, r.Weights.Cost)
}
