package design

import (
	"fmt"
	"sort"
	"strings"

	"netloc/internal/core"
	"netloc/internal/trace"
	"netloc/internal/workcache"
	"netloc/internal/workloads"
)

// ExtraApps lists the design-only synthetic workloads available on top
// of the calibrated registry in internal/workloads. They exist for
// sizing studies at scales or codes the paper's characterization tables
// do not pin, so adding them here keeps the registry — and every golden
// table derived from it — untouched.
func ExtraApps() []string { return []string{"milc"} }

// AppNames returns every workload name a design request accepts:
// the calibrated registry plus the design-only extras, sorted.
func AppNames() []string {
	names := append(workloads.Names(), ExtraApps()...)
	sort.Strings(names)
	return names
}

// sourceMILC is the workcache trace source for the design-only MILC
// synthetic generator.
const sourceMILC = "milc"

// resolveTrace produces the workload trace for a canonicalized request:
// an attached trace verbatim, a design-only synthetic generator, or the
// named registry app (case-insensitively) at the requested scale —
// exactly when configured, extrapolated otherwise.
//
// The returned source names which generator produced the trace (a
// workcache source constant), or "" for an attached trace. Attached
// traces are never cached — request payloads must not be able to
// poison artifacts shared with other callers — and generated ones are
// keyed by source so an extrapolated trace can never satisfy an
// exact-scale lookup.
func resolveTrace(req Request, opts core.Options) (*trace.Trace, string, error) {
	if req.Trace != nil {
		if err := req.Trace.Validate(); err != nil {
			return nil, "", err
		}
		return req.Trace, "", nil
	}
	name := strings.ToLower(req.App)
	if name == "milc" {
		t, err := opts.Cache.Trace(workcache.TraceKey{Source: sourceMILC, App: "milc", Ranks: req.Ranks},
			func() (*trace.Trace, error) { return milcTrace(req.Ranks) })
		if err != nil {
			return nil, "", err
		}
		return t, sourceMILC, nil
	}
	app, err := lookupFold(req.App)
	if err != nil {
		return nil, "", err
	}
	// Exact configured scales share the core experiments' cache slots;
	// the extrapolated fallback keys separately.
	t, err := opts.Cache.Trace(workcache.TraceKey{Source: workcache.SourceGenerate, App: app.Name, Ranks: req.Ranks},
		func() (*trace.Trace, error) { return app.Generate(req.Ranks) })
	if err == nil {
		return t, workcache.SourceGenerate, nil
	}
	t, err = opts.Cache.Trace(workcache.TraceKey{Source: workcache.SourceGenerateAt, App: app.Name, Ranks: req.Ranks},
		func() (*trace.Trace, error) { return app.GenerateAt(req.Ranks) })
	if err != nil {
		return nil, "", err
	}
	return t, workcache.SourceGenerateAt, nil
}

// knownApp reports whether a design request may name this workload, so
// validation (and therefore job submission) rejects unknown apps
// synchronously instead of spawning a search doomed to fail.
func knownApp(name string) error {
	for _, extra := range ExtraApps() {
		if strings.EqualFold(name, extra) {
			return nil
		}
	}
	_, err := lookupFold(name)
	return err
}

// lookupFold finds a registry app by case-insensitive name.
func lookupFold(name string) (*workloads.App, error) {
	if app, err := workloads.Lookup(name); err == nil {
		return app, nil
	}
	for _, n := range workloads.Names() {
		if strings.EqualFold(n, name) {
			return workloads.Lookup(n)
		}
	}
	return nil, fmt.Errorf("design: unknown application %q (known: %v)", name, AppNames())
}

// MILC synthetic generator. MILC is the classic lattice-QCD code: ranks
// form a 4D torus over the space-time lattice and each iteration
// exchanges site boundaries with all eight 4D neighbors — the textbook
// nearest-neighbor-dominated pattern (P2P share ~100%, NN share high on
// matching torus dims). The sizes below follow the other generators'
// ballpark: tens of KB per halo face, a handful of iterations, wall time
// from an aggregate-bandwidth rate.
const (
	milcIterations = 4
	milcHaloBytes  = 48 * 1024
	// milcRateBytesPerSec converts exchanged volume into a plausible
	// wall time, matching the magnitude of the calibrated generators.
	milcRateBytesPerSec = 800e6
)

// milcTrace builds the design-only MILC halo-exchange trace at any rank
// count: the ranks are factored onto a near-balanced 4D grid and every
// rank sends one halo face to each distinct neighbor per iteration.
func milcTrace(ranks int) (*trace.Trace, error) {
	if ranks <= 0 {
		return nil, fmt.Errorf("design: non-positive rank count %d", ranks)
	}
	dims, err := dims4(ranks)
	if err != nil {
		return nil, err
	}
	var events []trace.Event
	for it := 0; it < milcIterations; it++ {
		for r := 0; r < ranks; r++ {
			c := coord4(r, dims)
			seen := map[int]bool{r: true}
			for d := 0; d < 4; d++ {
				for _, step := range [2]int{1, -1} {
					n := c
					n[d] = ((c[d]+step)%dims[d] + dims[d]) % dims[d]
					peer := index4(n, dims)
					if seen[peer] {
						continue // dim of size <= 2: both directions coincide
					}
					seen[peer] = true
					events = append(events, trace.Event{
						Rank: r, Op: trace.OpSend, Peer: peer, Root: -1,
						Bytes: milcHaloBytes,
					})
				}
			}
		}
	}
	var volume uint64
	for _, e := range events {
		volume += e.Bytes
	}
	wall := float64(volume) / milcRateBytesPerSec
	// Stamp timestamps evenly across the wall time, the same sequential
	// clock the registry generators use.
	if n := len(events); n > 0 {
		dt := uint64(wall*1e9) / uint64(n)
		if dt == 0 {
			dt = 1
		}
		clock := uint64(0)
		for i := range events {
			events[i].Start = clock
			clock += dt
			events[i].End = clock
		}
	}
	t := &trace.Trace{
		Meta:   trace.Meta{App: "MILC", Ranks: ranks, WallTime: wall},
		Events: events,
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("design: milc generator produced invalid trace: %w", err)
	}
	return t, nil
}

// dims4 factors n onto a near-balanced 4D grid (largest dim first) by
// distributing prime factors onto the currently smallest dimension.
// Like the extrapolated registry scales, rank counts with huge prime
// factors are rejected rather than flattened onto a line.
func dims4(n int) ([4]int, error) {
	dims := [4]int{1, 1, 1, 1}
	rem := n
	for f := 2; f*f <= rem; {
		if rem%f == 0 {
			rem /= f
			smallest(&dims)[0] *= f
		} else {
			f++
		}
	}
	if rem > 1 {
		if rem > 64 {
			return dims, fmt.Errorf("design: cannot factor %d ranks onto a 4D grid (prime factor %d too large)", n, rem)
		}
		smallest(&dims)[0] *= rem
	}
	sort.Sort(sort.Reverse(sort.IntSlice(dims[:])))
	return dims, nil
}

// smallest returns a pointer (as a one-element slice) to the smallest
// dimension entry.
func smallest(dims *[4]int) []int {
	best := 0
	for i := 1; i < 4; i++ {
		if dims[i] < dims[best] {
			best = i
		}
	}
	return dims[best : best+1]
}

func coord4(r int, dims [4]int) [4]int {
	var c [4]int
	for d := 3; d >= 0; d-- {
		c[d] = r % dims[d]
		r /= dims[d]
	}
	return c
}

func index4(c [4]int, dims [4]int) int {
	idx := 0
	for d := 0; d < 4; d++ {
		idx = idx*dims[d] + c[d]
	}
	return idx
}
