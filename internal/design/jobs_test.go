package design

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"netloc/internal/core"
	"netloc/internal/parallel"
)

// TestJobLifecycle drives the happy path: submit, poll monotonic
// progress, wait, and read the terminal sheet.
func TestJobLifecycle(t *testing.T) {
	store := NewStore(4)
	job, err := store.Submit(smallRequest(), core.Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := store.Get(job.ID); !ok || got != job {
		t.Fatalf("job %s not retrievable", job.ID)
	}

	// Poll until terminal, checking progress never moves backwards.
	last := -1
	deadline := time.After(30 * time.Second)
	for {
		st := job.Status()
		if st.Done < last {
			t.Fatalf("progress went backwards: %d after %d", st.Done, last)
		}
		last = st.Done
		if st.State != StateRunning {
			break
		}
		select {
		case <-deadline:
			t.Fatal("job did not finish")
		case <-time.After(time.Millisecond):
		}
	}
	job.Wait()

	st := job.Status()
	if st.State != StateDone {
		t.Fatalf("job state = %s (%s), want done", st.State, st.Error)
	}
	if st.Sheet == nil || len(st.Sheet.Rows) == 0 {
		t.Fatal("done job has no sheet")
	}
	if st.Total == 0 || st.Done != st.Total {
		t.Fatalf("terminal progress %d/%d not complete", st.Done, st.Total)
	}
	if stats := store.Stats(); stats.Running != 0 || stats.Completed != 1 || stats.Submitted != 1 {
		t.Fatalf("store stats %+v after one finished job", stats)
	}
}

// TestJobCancelFreesBudget cancels a search mid-flight and checks the
// shared budget drains back to zero tokens in use — workers release
// their admission on the way out.
func TestJobCancelFreesBudget(t *testing.T) {
	budget := parallel.NewBudget(4)
	store := NewStore(4)

	// Hold the search inside candidate evaluation until cancel lands.
	started := make(chan struct{})
	var once sync.Once
	store.Search = func(ctx context.Context, req Request, opts core.Options) (*Sheet, error) {
		prev := req.Progress
		req.Progress = func(done, total int) {
			once.Do(func() { close(started) })
			if prev != nil {
				prev(done, total)
			}
		}
		return SearchContext(ctx, req, opts)
	}

	req := smallRequest()
	req.Constraints.MaxCandidates = DefaultMaxCandidates // enough work to outlive the cancel
	job, err := store.Submit(req, core.Options{Parallelism: 4, Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	job.Cancel()
	job.Wait()

	st := job.Status()
	if st.State != StateCanceled {
		t.Fatalf("job state = %s, want canceled", st.State)
	}
	if st.Sheet != nil {
		t.Fatal("canceled job returned a sheet")
	}
	if !strings.Contains(st.Error, context.Canceled.Error()) {
		t.Fatalf("canceled job error = %q", st.Error)
	}
	if inUse := budget.InUse(); inUse != 0 {
		t.Fatalf("budget still holds %d tokens after cancel", inUse)
	}
}

// TestJobCancelIsSticky: a search that finishes after cancel was
// requested still reports canceled, not done.
func TestJobCancelIsSticky(t *testing.T) {
	store := NewStore(2)
	release := make(chan struct{})
	store.Search = func(ctx context.Context, req Request, opts core.Options) (*Sheet, error) {
		<-release
		return &Sheet{Rows: []Row{{Name: "x"}}}, nil
	}
	job, err := store.Submit(smallRequest(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	job.Cancel()
	close(release)
	job.Wait()
	if st := job.Status(); st.State != StateCanceled || st.Sheet != nil {
		t.Fatalf("job after late finish = %+v, want canceled without sheet", st)
	}
}

// TestStoreBoundedEviction fills the store with terminal jobs, checks
// the oldest is evicted on overflow, and that a store full of running
// jobs rejects new submissions.
func TestStoreBoundedEviction(t *testing.T) {
	store := NewStore(2)
	fast := func(ctx context.Context, req Request, opts core.Options) (*Sheet, error) {
		return &Sheet{Rows: []Row{{Name: "x"}}}, nil
	}
	store.Search = fast

	a, err := store.Submit(smallRequest(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a.Wait()
	b, err := store.Submit(smallRequest(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b.Wait()

	// Third submission evicts the oldest terminal job (a).
	c, err := store.Submit(smallRequest(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.Wait()
	if _, ok := store.Get(a.ID); ok {
		t.Fatalf("oldest job %s not evicted", a.ID)
	}
	if _, ok := store.Get(b.ID); !ok {
		t.Fatal("newer terminal job evicted instead of oldest")
	}

	// A store full of running jobs pushes back.
	blocked := NewStore(1)
	release := make(chan struct{})
	blocked.Search = func(ctx context.Context, req Request, opts core.Options) (*Sheet, error) {
		<-release
		return &Sheet{}, nil
	}
	running, err := blocked.Submit(smallRequest(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := blocked.Submit(smallRequest(), core.Options{}); err == nil || !strings.Contains(err.Error(), "job store full") {
		t.Fatalf("full store accepted a job: %v", err)
	}
	close(release)
	running.Wait()

	if list := store.List(); len(list) != 2 {
		t.Fatalf("store lists %d jobs, want 2", len(list))
	}
}

// TestStoreValidatesBeforeSpawn: an invalid request is rejected
// synchronously and never occupies a slot.
func TestStoreValidatesBeforeSpawn(t *testing.T) {
	store := NewStore(2)
	if _, err := store.Submit(Request{App: "milc", Ranks: -1}, core.Options{}); err == nil {
		t.Fatal("invalid request accepted")
	}
	if stats := store.Stats(); stats.Submitted != 0 || stats.Retained != 0 {
		t.Fatalf("rejected request left store stats %+v", stats)
	}
}
