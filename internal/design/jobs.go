package design

import (
	"context"
	"fmt"
	"sync"

	"netloc/internal/core"
)

// Job states. A job is terminal in every state but StateRunning.
const (
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// SearchFunc runs one design search; the Store's default is
// SearchContext. Services override it to wrap runs in tracer spans and
// metrics absorption.
type SearchFunc func(ctx context.Context, req Request, opts core.Options) (*Sheet, error)

// Job is one asynchronous design search. All exported access goes
// through Status and Wait; the run goroutine owns the internals.
type Job struct {
	ID string

	store  *Store
	cancel context.CancelFunc
	doneCh chan struct{}

	mu          sync.Mutex
	state       string
	done, total int
	sheet       *Sheet
	err         error
	canceled    bool
}

// Status is the poll-friendly snapshot of a job: state, monotonic
// progress, and — once terminal — the sheet or error.
type Status struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Done and Total count evaluated vs enumerated candidate
	// configurations; Done only ever grows (clamped monotonic even
	// though progress callbacks arrive from concurrent workers).
	Done  int    `json:"done"`
	Total int    `json:"total"`
	Sheet *Sheet `json:"sheet,omitempty"`
	Error string `json:"error,omitempty"`
}

// Status returns the current snapshot.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{ID: j.ID, State: j.state, Done: j.done, Total: j.total, Sheet: j.sheet}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// Wait blocks until the job reaches a terminal state.
func (j *Job) Wait() { <-j.doneCh }

// Cancel asks the running search to stop at the next candidate
// boundary. Terminal jobs are unaffected.
func (j *Job) Cancel() {
	j.mu.Lock()
	if j.state == StateRunning {
		j.canceled = true
	}
	j.mu.Unlock()
	j.cancel()
}

// progress is the Request.Progress hook: workers report completion
// counts out of order, so only forward movement is recorded.
func (j *Job) progress(done, total int) {
	j.mu.Lock()
	if done > j.done {
		j.done = done
	}
	j.total = total
	j.mu.Unlock()
}

func (j *Job) finish(sheet *Sheet, err error) {
	j.mu.Lock()
	switch {
	case j.canceled:
		j.state = StateCanceled
		if err == nil {
			err = context.Canceled
		}
		j.err = err
	case err != nil:
		j.state = StateFailed
		j.err = err
	default:
		j.state = StateDone
		j.sheet = sheet
		j.done = j.total
	}
	j.mu.Unlock()
	close(j.doneCh)
}

// Store owns a bounded set of design jobs. At most capacity jobs are
// retained; submitting past the bound evicts the oldest terminal job,
// and fails when every retained job is still running (backpressure
// instead of unbounded goroutine growth).
type Store struct {
	// Search runs each submitted job; defaults to SearchContext.
	Search SearchFunc

	capacity int

	mu        sync.Mutex
	seq       int
	jobs      map[string]*Job
	order     []string // submission order, for eviction
	submitted int
	completed int
}

// DefaultJobCapacity bounds the job store when the configuration
// doesn't say otherwise.
const DefaultJobCapacity = 32

// NewStore returns a job store retaining at most capacity jobs
// (DefaultJobCapacity when <= 0).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultJobCapacity
	}
	return &Store{Search: SearchContext, capacity: capacity, jobs: map[string]*Job{}}
}

// Submit validates the request, reserves a slot, and starts the search
// in a background goroutine. The returned job is already registered and
// pollable.
func (s *Store) Submit(req Request, opts core.Options) (*Job, error) {
	req = req.withDefaults()
	if err := req.Validate(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.mu.Lock()
	if len(s.jobs) >= s.capacity && !s.evictLocked() {
		s.mu.Unlock()
		cancel()
		return nil, fmt.Errorf("design: job store full (%d jobs running)", s.capacity)
	}
	s.seq++
	s.submitted++
	job := &Job{
		ID:     fmt.Sprintf("design-%d", s.seq),
		store:  s,
		cancel: cancel,
		doneCh: make(chan struct{}),
		state:  StateRunning,
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	search := s.Search
	s.mu.Unlock()

	req.Progress = job.progress
	go func() {
		sheet, err := search(ctx, req, opts)
		cancel()
		job.finish(sheet, err)
		s.mu.Lock()
		s.completed++
		s.mu.Unlock()
	}()
	return job, nil
}

// evictLocked drops the oldest terminal job; reports false when every
// retained job is still running.
func (s *Store) evictLocked() bool {
	for i, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		terminal := j.state != StateRunning
		j.mu.Unlock()
		if terminal {
			delete(s.jobs, id)
			s.order = append(s.order[:i], s.order[i+1:]...)
			return true
		}
	}
	return false
}

// Get returns a retained job by ID.
func (s *Store) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// List returns the status of every retained job in submission order.
func (s *Store) List() []Status {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// StoreStats is the gauge snapshot the service exports.
type StoreStats struct {
	Retained  int // jobs currently held (any state)
	Running   int // jobs still searching
	Submitted int // accepted since process start
	Completed int // reached a terminal state since process start
}

// Stats returns current store counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StoreStats{Retained: len(s.jobs), Submitted: s.submitted, Completed: s.completed}
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.state == StateRunning {
			st.Running++
		}
		j.mu.Unlock()
	}
	return st
}
