package mapping

import (
	"testing"

	"netloc/internal/comm"
	"netloc/internal/topology"
)

func TestCostMatchesManualComputation(t *testing.T) {
	topo, err := topology.NewTorus(2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := comm.NewMatrix(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = m.Add(0, 1, 100) // 1 hop under consecutive
	_ = m.Add(0, 3, 10)  // 2 hops (diagonal on 2x2)
	mp, err := Consecutive(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Cost(m, topo, mp)
	if err != nil {
		t.Fatal(err)
	}
	if c != 100*1+10*2 {
		t.Fatalf("cost = %v, want 120", c)
	}
}

func TestCostValidatesMapping(t *testing.T) {
	topo, _ := topology.NewTorus(2, 2, 1)
	m, _ := comm.NewMatrix(8, 0)
	_ = m.Add(0, 7, 1)
	mp, _ := Consecutive(4, 4)
	if _, err := Cost(m, topo, mp); err == nil {
		t.Fatal("undersized mapping accepted")
	}
}

func TestRefineNeverWorsens(t *testing.T) {
	topo, err := topology.NewTorus(3, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := comm.NewMatrix(27, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Scrambled heavy pairs.
	for i := 0; i < 27; i++ {
		_ = m.Add(i, (i*7+3)%27, uint64(1000*(i+1)))
	}
	start, err := Random(27, 27, 3)
	if err != nil {
		t.Fatal(err)
	}
	before, err := Cost(m, topo, start)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := Refine(m, topo, start, 10)
	if err != nil {
		t.Fatal(err)
	}
	after, err := Cost(m, topo, refined)
	if err != nil {
		t.Fatal(err)
	}
	if after > before {
		t.Fatalf("refine worsened cost: %v -> %v", before, after)
	}
	if after == before {
		t.Fatalf("refine found no improvement on a scrambled mapping (cost %v)", before)
	}
}

func TestRefineFixedPointOnOptimalRing(t *testing.T) {
	// A ring mapped perfectly onto a 1D ring torus: no swap can help.
	topo, err := topology.NewTorus(8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := comm.NewMatrix(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		_ = m.Add(i, (i+1)%8, 100)
	}
	ident, err := Consecutive(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := Refine(m, topo, ident, 5)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Cost(m, topo, refined)
	if err != nil {
		t.Fatal(err)
	}
	if c != 800 { // 8 messages x 1 hop x 100 bytes
		t.Fatalf("cost = %v, want 800", c)
	}
}

func TestRefineRejectsSharedNodes(t *testing.T) {
	topo, _ := topology.NewTorus(2, 2, 1)
	m, _ := comm.NewMatrix(4, 0)
	_ = m.Add(0, 1, 1)
	shared, err := New([]int{0, 0, 1, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Refine(m, topo, shared, 1); err == nil {
		t.Fatal("shared-node mapping accepted")
	}
}

func TestRefineRejectsUndersizedInitial(t *testing.T) {
	topo, _ := topology.NewTorus(2, 2, 2)
	m, _ := comm.NewMatrix(8, 0)
	_ = m.Add(0, 1, 1)
	small, _ := Consecutive(4, 8)
	if _, err := Refine(m, topo, small, 1); err == nil {
		t.Fatal("undersized initial accepted")
	}
}

func TestOptimizeBeatsConsecutiveOnColumnPattern(t *testing.T) {
	// SNAP-like pattern: heavy exchange along columns of a 2D rank grid
	// whose row length does not match the torus x dimension, so the
	// consecutive mapping is far from optimal.
	const cols, rows = 8, 8
	m, err := comm.NewMatrix(cols*rows, 0)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < cols; x++ {
		for y := 0; y < rows; y++ {
			for oy := 0; oy < rows; oy++ {
				if oy != y {
					_ = m.Add(y*cols+x, oy*cols+x, 1000)
				}
			}
		}
	}
	topo, err := topology.NewTorus(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := Consecutive(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	consCost, err := Cost(m, topo, cons)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Optimize(m, topo, 20)
	if err != nil {
		t.Fatal(err)
	}
	optCost, err := Cost(m, topo, opt)
	if err != nil {
		t.Fatal(err)
	}
	if optCost >= consCost {
		t.Fatalf("optimized %v not better than consecutive %v", optCost, consCost)
	}
}
