// Package mapping assigns MPI ranks to physical compute nodes.
//
// The study uses a simple consecutive mapping (rank i on node i, or blocks
// of c consecutive ranks per node in the multi-core analysis). Its
// discussion argues that "a smart mapping could dramatically reduce network
// traffic" by co-locating heavily communicating ranks; the Greedy mapper
// implements that idea as an extension and is exercised by the ablation
// benchmarks.
package mapping

import (
	"fmt"
	"math/rand"

	"netloc/internal/comm"
	"netloc/internal/topology"
)

// Mapping maps ranks 0..Ranks()-1 onto nodes of a topology. Multiple ranks
// may share a node (multi-core configurations).
type Mapping struct {
	nodeOf []int
	nodes  int
}

// New builds a mapping from an explicit rank→node table.
func New(nodeOf []int, nodes int) (*Mapping, error) {
	if len(nodeOf) == 0 {
		return nil, fmt.Errorf("mapping: empty rank table")
	}
	if nodes <= 0 {
		return nil, fmt.Errorf("mapping: non-positive node count %d", nodes)
	}
	for r, n := range nodeOf {
		if n < 0 || n >= nodes {
			return nil, fmt.Errorf("mapping: rank %d mapped to node %d outside [0,%d)", r, n, nodes)
		}
	}
	return &Mapping{nodeOf: append([]int(nil), nodeOf...), nodes: nodes}, nil
}

// Consecutive maps rank i to node i. Requires nodes >= ranks.
func Consecutive(ranks, nodes int) (*Mapping, error) {
	if ranks <= 0 {
		return nil, fmt.Errorf("mapping: non-positive rank count %d", ranks)
	}
	if nodes < ranks {
		return nil, fmt.Errorf("mapping: %d nodes cannot host %d ranks one-per-node", nodes, ranks)
	}
	nodeOf := make([]int, ranks)
	for r := range nodeOf {
		nodeOf[r] = r
	}
	return &Mapping{nodeOf: nodeOf, nodes: nodes}, nil
}

// Blocked maps ranksPerNode consecutive ranks onto each node (the paper's
// multi-core mapping: "the number of ranks is consecutively mapped to one
// node, according to the number of cores").
func Blocked(ranks, nodes, ranksPerNode int) (*Mapping, error) {
	if ranks <= 0 {
		return nil, fmt.Errorf("mapping: non-positive rank count %d", ranks)
	}
	if ranksPerNode <= 0 {
		return nil, fmt.Errorf("mapping: non-positive ranks-per-node %d", ranksPerNode)
	}
	needed := (ranks + ranksPerNode - 1) / ranksPerNode
	if nodes < needed {
		return nil, fmt.Errorf("mapping: %d nodes cannot host %d ranks at %d per node", nodes, ranks, ranksPerNode)
	}
	nodeOf := make([]int, ranks)
	for r := range nodeOf {
		nodeOf[r] = r / ranksPerNode
	}
	return &Mapping{nodeOf: nodeOf, nodes: nodes}, nil
}

// Random maps ranks to a seeded random permutation of distinct nodes.
func Random(ranks, nodes int, seed int64) (*Mapping, error) {
	if ranks <= 0 {
		return nil, fmt.Errorf("mapping: non-positive rank count %d", ranks)
	}
	if nodes < ranks {
		return nil, fmt.Errorf("mapping: %d nodes cannot host %d ranks one-per-node", nodes, ranks)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(nodes)[:ranks]
	return &Mapping{nodeOf: perm, nodes: nodes}, nil
}

// Ranks returns the number of mapped ranks.
func (m *Mapping) Ranks() int { return len(m.nodeOf) }

// Nodes returns the size of the node space.
func (m *Mapping) Nodes() int { return m.nodes }

// NodeOf returns the node hosting a rank.
func (m *Mapping) NodeOf(rank int) (int, error) {
	if rank < 0 || rank >= len(m.nodeOf) {
		return 0, fmt.Errorf("mapping: rank %d out of range [0,%d)", rank, len(m.nodeOf))
	}
	return m.nodeOf[rank], nil
}

// Table returns a copy of the rank→node table.
func (m *Mapping) Table() []int { return append([]int(nil), m.nodeOf...) }

// UsedNodes returns the number of distinct nodes hosting at least one rank.
func (m *Mapping) UsedNodes() int {
	seen := make(map[int]struct{}, len(m.nodeOf))
	for _, n := range m.nodeOf {
		seen[n] = struct{}{}
	}
	return len(seen)
}

// Greedy builds a communication-aware one-rank-per-node mapping: ranks are
// placed in order of their traffic attachment to already-placed ranks, each
// onto the free node minimizing the volume-weighted hop distance to its
// placed partners. This is the classic greedy topology-mapping heuristic
// the paper's discussion motivates ("assign groups of heavily communicating
// ranks to nearby physical entities").
func Greedy(m *comm.Matrix, topo topology.Topology) (*Mapping, error) {
	ranks := m.Ranks()
	if topo.Nodes() < ranks {
		return nil, fmt.Errorf("mapping: topology %s has %d nodes for %d ranks", topo.Name(), topo.Nodes(), ranks)
	}
	// Symmetric traffic between rank pairs.
	traffic := make(map[comm.Key]float64, m.Pairs())
	m.Each(func(k comm.Key, e comm.Entry) {
		a, b := k.Src, k.Dst
		if a > b {
			a, b = b, a
		}
		traffic[comm.Key{Src: a, Dst: b}] += float64(e.Bytes)
	})
	neighbors := make([][]int, ranks)
	weight := func(a, b int) float64 {
		if a > b {
			a, b = b, a
		}
		return traffic[comm.Key{Src: a, Dst: b}]
	}
	for k := range traffic {
		neighbors[k.Src] = append(neighbors[k.Src], k.Dst)
		neighbors[k.Dst] = append(neighbors[k.Dst], k.Src)
	}

	nodeOf := make([]int, ranks)
	for i := range nodeOf {
		nodeOf[i] = -1
	}
	nodeFree := make([]bool, topo.Nodes())
	for i := range nodeFree {
		nodeFree[i] = true
	}
	placed := make([]bool, ranks)
	attach := make([]float64, ranks) // traffic to already-placed ranks

	// Start from the rank with the largest total traffic.
	totals := make([]float64, ranks)
	for k, v := range traffic {
		totals[k.Src] += v
		totals[k.Dst] += v
	}
	first := 0
	for r := 1; r < ranks; r++ {
		if totals[r] > totals[first] {
			first = r
		}
	}

	place := func(rank, node int) {
		nodeOf[rank] = node
		nodeFree[node] = false
		placed[rank] = true
		for _, nb := range neighbors[rank] {
			if !placed[nb] {
				attach[nb] += weight(rank, nb)
			}
		}
	}
	place(first, 0)

	for n := 1; n < ranks; n++ {
		// Next rank: strongest attachment; ties and isolated ranks fall
		// back to lowest index for determinism.
		next := -1
		for r := 0; r < ranks; r++ {
			if placed[r] {
				continue
			}
			if next == -1 || attach[r] > attach[next] {
				next = r
			}
		}
		// Best free node: minimize weighted hops to placed partners.
		bestNode, bestCost := -1, 0.0
		hasPartner := false
		for _, nb := range neighbors[next] {
			if placed[nb] {
				hasPartner = true
				break
			}
		}
		for node := 0; node < topo.Nodes(); node++ {
			if !nodeFree[node] {
				continue
			}
			if !hasPartner {
				bestNode = node // first free node
				break
			}
			cost := 0.0
			for _, nb := range neighbors[next] {
				if placed[nb] {
					cost += weight(next, nb) * float64(topo.HopCount(node, nodeOf[nb]))
				}
			}
			if bestNode == -1 || cost < bestCost {
				bestNode, bestCost = node, cost
			}
		}
		place(next, bestNode)
	}
	return &Mapping{nodeOf: nodeOf, nodes: topo.Nodes()}, nil
}
