package mapping

import (
	"fmt"
	"sort"

	"netloc/internal/comm"
	"netloc/internal/topology"
)

// Bisection builds a one-rank-per-node mapping on a torus or mesh by
// recursive coordinate bisection — the classic topology-mapping scheme:
// the node box is split along its longest dimension, the rank set is
// split into matching halves so that the traffic crossing the split is
// small (greedy graph growing), and both halves recurse. Heavy rank
// clusters therefore land in compact sub-boxes, which is precisely the
// "assign groups of heavily communicating ranks to nearby physical
// entities" the paper proposes.
//
// Unlike the swap-refinement in Refine, bisection is constructive and
// O(R² log R); combining both (Bisection then Refine) is the strongest
// mapper in this package.
func Bisection(m *comm.Matrix, topo *topology.Torus) (*Mapping, error) {
	ranks := m.Ranks()
	if topo.Nodes() < ranks {
		return nil, fmt.Errorf("mapping: topology %s has %d nodes for %d ranks", topo.Name(), topo.Nodes(), ranks)
	}
	x, y, z := topo.Dims()

	// Symmetric adjacency.
	type edge struct {
		peer int
		w    float64
	}
	adj := make([][]edge, ranks)
	m.Each(func(k comm.Key, e comm.Entry) {
		adj[k.Src] = append(adj[k.Src], edge{k.Dst, float64(e.Bytes)})
		adj[k.Dst] = append(adj[k.Dst], edge{k.Src, float64(e.Bytes)})
	})

	nodeOf := make([]int, ranks)
	for i := range nodeOf {
		nodeOf[i] = -1
	}

	// box is a sub-cuboid of the node grid.
	type box struct {
		x0, y0, z0 int
		dx, dy, dz int
	}
	nodesIn := func(b box) []int {
		out := make([]int, 0, b.dx*b.dy*b.dz)
		for cz := b.z0; cz < b.z0+b.dz; cz++ {
			for cy := b.y0; cy < b.y0+b.dy; cy++ {
				for cx := b.x0; cx < b.x0+b.dx; cx++ {
					out = append(out, (cz*y+cy)*x+cx)
				}
			}
		}
		return out
	}

	// partition splits the rank set into a part of size k with small cut:
	// grow from the rank with the heaviest internal attachment.
	partition := func(set []int, k int) (first, second []int) {
		if k <= 0 {
			return nil, append([]int(nil), set...)
		}
		if k >= len(set) {
			return append([]int(nil), set...), nil
		}
		inSet := make(map[int]bool, len(set))
		for _, r := range set {
			inSet[r] = true
		}
		// Seed: rank with the largest traffic inside the set.
		totals := make(map[int]float64, len(set))
		for _, r := range set {
			for _, e := range adj[r] {
				if inSet[e.peer] {
					totals[r] += e.w
				}
			}
		}
		seed := set[0]
		for _, r := range set {
			if totals[r] > totals[seed] {
				seed = r
			}
		}
		taken := map[int]bool{seed: true}
		attach := map[int]float64{}
		for _, e := range adj[seed] {
			if inSet[e.peer] {
				attach[e.peer] += e.w
			}
		}
		order := append([]int(nil), set...)
		sort.Ints(order) // deterministic tie-breaking
		for len(taken) < k {
			best, bestW := -1, -1.0
			for _, r := range order {
				if taken[r] || !inSet[r] {
					continue
				}
				if attach[r] > bestW {
					best, bestW = r, attach[r]
				}
			}
			if bestW <= 0 {
				// The frontier dried up (disconnected cluster): re-seed
				// at the heaviest remaining rank so whole clusters move
				// together instead of falling back to index order.
				for _, r := range order {
					if taken[r] || !inSet[r] {
						continue
					}
					if best == -1 || totals[r] > totals[best] {
						best = r
					}
				}
			}
			taken[best] = true
			for _, e := range adj[best] {
				if inSet[e.peer] && !taken[e.peer] {
					attach[e.peer] += e.w
				}
			}
		}
		for _, r := range order {
			if taken[r] {
				first = append(first, r)
			} else {
				second = append(second, r)
			}
		}
		return first, second
	}

	var recurse func(set []int, b box)
	recurse = func(set []int, b box) {
		if len(set) == 0 {
			return
		}
		if len(set) == 1 || b.dx*b.dy*b.dz == 1 {
			nodes := nodesIn(b)
			for i, r := range set {
				nodeOf[r] = nodes[i]
			}
			return
		}
		// Split the box along its longest dimension.
		var b1, b2 box
		switch {
		case b.dx >= b.dy && b.dx >= b.dz:
			h := b.dx / 2
			b1, b2 = b, b
			b1.dx = h
			b2.x0 += h
			b2.dx = b.dx - h
		case b.dy >= b.dz:
			h := b.dy / 2
			b1, b2 = b, b
			b1.dy = h
			b2.y0 += h
			b2.dy = b.dy - h
		default:
			h := b.dz / 2
			b1, b2 = b, b
			b1.dz = h
			b2.z0 += h
			b2.dz = b.dz - h
		}
		cap1 := b1.dx * b1.dy * b1.dz
		// Ranks in the first half: proportional to the box capacities,
		// never exceeding either capacity.
		k := len(set) * cap1 / (b.dx * b.dy * b.dz)
		if k > cap1 {
			k = cap1
		}
		if rest := len(set) - k; rest > b2.dx*b2.dy*b2.dz {
			k = len(set) - b2.dx*b2.dy*b2.dz
		}
		s1, s2 := partition(set, k)
		recurse(s1, b1)
		recurse(s2, b2)
	}

	all := make([]int, ranks)
	for i := range all {
		all[i] = i
	}
	recurse(all, box{dx: x, dy: y, dz: z})

	for r, n := range nodeOf {
		if n < 0 {
			return nil, fmt.Errorf("mapping: bisection left rank %d unplaced", r)
		}
	}
	return New(nodeOf, topo.Nodes())
}
