package mapping

import (
	"testing"

	"netloc/internal/comm"
	"netloc/internal/topology"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 4); err == nil {
		t.Fatal("empty table accepted")
	}
	if _, err := New([]int{0}, 0); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := New([]int{4}, 4); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if _, err := New([]int{-1}, 4); err == nil {
		t.Fatal("negative node accepted")
	}
	m, err := New([]int{2, 2, 0}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Ranks() != 3 || m.Nodes() != 4 || m.UsedNodes() != 2 {
		t.Fatalf("ranks=%d nodes=%d used=%d", m.Ranks(), m.Nodes(), m.UsedNodes())
	}
}

func TestNewCopiesTable(t *testing.T) {
	table := []int{0, 1}
	m, err := New(table, 2)
	if err != nil {
		t.Fatal(err)
	}
	table[0] = 1
	if n, _ := m.NodeOf(0); n != 0 {
		t.Fatal("mapping aliases caller slice")
	}
	out := m.Table()
	out[1] = 0
	if n, _ := m.NodeOf(1); n != 1 {
		t.Fatal("Table() aliases internal slice")
	}
}

func TestConsecutive(t *testing.T) {
	m, err := Consecutive(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		if n, _ := m.NodeOf(r); n != r {
			t.Fatalf("NodeOf(%d) = %d", r, n)
		}
	}
	if m.UsedNodes() != 4 {
		t.Fatalf("UsedNodes = %d", m.UsedNodes())
	}
	if _, err := Consecutive(9, 8); err == nil {
		t.Fatal("too many ranks accepted")
	}
	if _, err := Consecutive(0, 8); err == nil {
		t.Fatal("zero ranks accepted")
	}
	if _, err := m.NodeOf(4); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	if _, err := m.NodeOf(-1); err == nil {
		t.Fatal("negative rank accepted")
	}
}

func TestBlocked(t *testing.T) {
	m, err := Blocked(10, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2}
	for r, w := range want {
		if n, _ := m.NodeOf(r); n != w {
			t.Fatalf("NodeOf(%d) = %d, want %d", r, n, w)
		}
	}
	if _, err := Blocked(10, 2, 4); err == nil {
		t.Fatal("insufficient nodes accepted")
	}
	if _, err := Blocked(10, 3, 0); err == nil {
		t.Fatal("zero per-node accepted")
	}
	if _, err := Blocked(0, 3, 2); err == nil {
		t.Fatal("zero ranks accepted")
	}
}

func TestBlockedOneRankPerNodeEqualsConsecutive(t *testing.T) {
	b, err := Blocked(6, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Consecutive(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 6; r++ {
		bn, _ := b.NodeOf(r)
		cn, _ := c.NodeOf(r)
		if bn != cn {
			t.Fatalf("rank %d: blocked %d vs consecutive %d", r, bn, cn)
		}
	}
}

func TestRandomIsPermutationAndDeterministic(t *testing.T) {
	m1, err := Random(8, 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Random(8, 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for r := 0; r < 8; r++ {
		n1, _ := m1.NodeOf(r)
		n2, _ := m2.NodeOf(r)
		if n1 != n2 {
			t.Fatal("same seed produced different mappings")
		}
		if seen[n1] {
			t.Fatalf("node %d used twice", n1)
		}
		seen[n1] = true
	}
	m3, err := Random(8, 12, 8)
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for r := 0; r < 8; r++ {
		n1, _ := m1.NodeOf(r)
		n3, _ := m3.NodeOf(r)
		if n1 != n3 {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical mapping (unlikely)")
	}
	if _, err := Random(13, 12, 1); err == nil {
		t.Fatal("too many ranks accepted")
	}
	if _, err := Random(0, 12, 1); err == nil {
		t.Fatal("zero ranks accepted")
	}
}

// ringMatrix builds a ring communication pattern: rank i talks heavily to
// (i+1) mod n.
func ringMatrix(t *testing.T, n int) *comm.Matrix {
	t.Helper()
	m, err := comm.NewMatrix(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := m.Add(i, (i+1)%n, 1000); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func weightedHops(t *testing.T, m *comm.Matrix, topo topology.Topology, mp *Mapping) float64 {
	t.Helper()
	var total float64
	var failed bool
	m.Each(func(k comm.Key, e comm.Entry) {
		ns, err1 := mp.NodeOf(k.Src)
		nd, err2 := mp.NodeOf(k.Dst)
		if err1 != nil || err2 != nil {
			failed = true
			return
		}
		total += float64(e.Bytes) * float64(topo.HopCount(ns, nd))
	})
	if failed {
		t.Fatal("mapping lookup failed")
	}
	return total
}

func TestGreedyBeatsRandomOnRing(t *testing.T) {
	cm := ringMatrix(t, 27)
	topo, err := topology.NewTorus(3, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := Greedy(cm, topo)
	if err != nil {
		t.Fatal(err)
	}
	random, err := Random(27, 27, 99)
	if err != nil {
		t.Fatal(err)
	}
	gh := weightedHops(t, cm, topo, greedy)
	rh := weightedHops(t, cm, topo, random)
	if gh >= rh {
		t.Fatalf("greedy %v not better than random %v", gh, rh)
	}
}

func TestGreedyPlacesAllRanksOnDistinctNodes(t *testing.T) {
	cm := ringMatrix(t, 16)
	topo, err := topology.NewFatTree(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Greedy(cm, topo)
	if err != nil {
		t.Fatal(err)
	}
	if g.Ranks() != 16 {
		t.Fatalf("ranks = %d", g.Ranks())
	}
	seen := map[int]bool{}
	for r := 0; r < 16; r++ {
		n, err := g.NodeOf(r)
		if err != nil {
			t.Fatal(err)
		}
		if seen[n] {
			t.Fatalf("node %d reused", n)
		}
		seen[n] = true
	}
}

func TestGreedyHandlesSilentRanks(t *testing.T) {
	// Only two ranks talk; the rest are isolated but must still be placed.
	cm, err := comm.NewMatrix(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.Add(3, 7, 100); err != nil {
		t.Fatal(err)
	}
	topo, err := topology.NewTorus(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Greedy(cm, topo)
	if err != nil {
		t.Fatal(err)
	}
	n3, _ := g.NodeOf(3)
	n7, _ := g.NodeOf(7)
	if topo.HopCount(n3, n7) != 1 {
		t.Fatalf("communicating pair placed %d hops apart", topo.HopCount(n3, n7))
	}
}

func TestGreedyRejectsTooSmallTopology(t *testing.T) {
	cm := ringMatrix(t, 100)
	topo, err := topology.NewTorus(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Greedy(cm, topo); err == nil {
		t.Fatal("oversubscribed greedy accepted")
	}
}

func TestGreedyDeterministic(t *testing.T) {
	cm := ringMatrix(t, 12)
	topo, err := topology.NewTorus(3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := Greedy(cm, topo)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Greedy(cm, topo)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 12; r++ {
		n1, _ := g1.NodeOf(r)
		n2, _ := g2.NodeOf(r)
		if n1 != n2 {
			t.Fatal("greedy not deterministic")
		}
	}
}
