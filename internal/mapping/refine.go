package mapping

import (
	"fmt"

	"netloc/internal/comm"
	"netloc/internal/topology"
)

// Cost returns the volume-weighted hop count of a mapping: the sum over
// rank pairs of bytes x hops between their nodes. This is the objective
// the mapping optimizers minimize (proportional to the network model's
// byte-hops, hence to latency and dynamic link energy).
func Cost(m *comm.Matrix, topo topology.Topology, mp *Mapping) (float64, error) {
	if mp.Ranks() < m.Ranks() {
		return 0, fmt.Errorf("mapping: mapping covers %d ranks, matrix has %d", mp.Ranks(), m.Ranks())
	}
	var total float64
	var iterErr error
	m.Each(func(k comm.Key, e comm.Entry) {
		if iterErr != nil {
			return
		}
		ns, err := mp.NodeOf(k.Src)
		if err != nil {
			iterErr = err
			return
		}
		nd, err := mp.NodeOf(k.Dst)
		if err != nil {
			iterErr = err
			return
		}
		total += float64(e.Bytes) * float64(topo.HopCount(ns, nd))
	})
	return total, iterErr
}

// Refine improves a one-rank-per-node mapping by pairwise-swap hill
// climbing: it repeatedly swaps the node assignments of two ranks whenever
// that lowers the volume-weighted hop count, until a full pass finds no
// improving swap or maxPasses is reached. This is the classic local-search
// step of topology-mapping frameworks; combined with Greedy it implements
// the paper's proposed "advanced mapping" of heavily communicating rank
// groups onto nearby physical entities.
func Refine(m *comm.Matrix, topo topology.Topology, initial *Mapping, maxPasses int) (*Mapping, error) {
	ranks := m.Ranks()
	if initial.Ranks() < ranks {
		return nil, fmt.Errorf("mapping: initial mapping covers %d ranks, matrix has %d", initial.Ranks(), ranks)
	}
	if maxPasses < 1 {
		maxPasses = 1
	}
	nodeOf := initial.Table()[:ranks]
	// Verify one-rank-per-node (swaps assume it).
	seen := make(map[int]bool, ranks)
	for r, n := range nodeOf {
		if seen[n] {
			return nil, fmt.Errorf("mapping: node %d hosts multiple ranks; Refine needs one rank per node", n)
		}
		seen[n] = true
		_ = r
	}

	// Symmetric adjacency with weights for delta evaluation.
	type edge struct {
		peer int
		w    float64
	}
	adj := make([][]edge, ranks)
	m.Each(func(k comm.Key, e comm.Entry) {
		adj[k.Src] = append(adj[k.Src], edge{peer: k.Dst, w: float64(e.Bytes)})
		adj[k.Dst] = append(adj[k.Dst], edge{peer: k.Src, w: float64(e.Bytes)})
	})

	// cost of rank r sitting on node n, excluding any edge to `exclude`.
	costAt := func(r, n, exclude int) float64 {
		var c float64
		for _, e := range adj[r] {
			if e.peer == exclude {
				continue
			}
			c += e.w * float64(topo.HopCount(n, nodeOf[e.peer]))
		}
		return c
	}

	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for r1 := 0; r1 < ranks; r1++ {
			if len(adj[r1]) == 0 {
				continue
			}
			for r2 := r1 + 1; r2 < ranks; r2++ {
				n1, n2 := nodeOf[r1], nodeOf[r2]
				before := costAt(r1, n1, r2) + costAt(r2, n2, r1)
				after := costAt(r1, n2, r2) + costAt(r2, n1, r1)
				// The mutual r1<->r2 term is symmetric in (n1, n2) and
				// cancels from the delta.
				if after < before-1e-9 {
					nodeOf[r1], nodeOf[r2] = n2, n1
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	return New(nodeOf, initial.Nodes())
}

// Optimize is the one-call "advanced mapping" entry point: it refines a
// greedy placement, the consecutive baseline, and — on torus/mesh
// topologies — a recursive-bisection placement with pairwise-swap hill
// climbing, returning whichever ends cheapest, so the result never loses
// to the consecutive mapping the study uses.
func Optimize(m *comm.Matrix, topo topology.Topology, maxPasses int) (*Mapping, error) {
	greedy, err := Greedy(m, topo)
	if err != nil {
		return nil, err
	}
	consecutive, err := Consecutive(m.Ranks(), topo.Nodes())
	if err != nil {
		return nil, err
	}
	seeds := []*Mapping{greedy, consecutive}
	if grid, ok := topo.(*topology.Torus); ok {
		bis, err := Bisection(m, grid)
		if err != nil {
			return nil, err
		}
		seeds = append(seeds, bis)
	}
	var best *Mapping
	bestCost := 0.0
	for _, seed := range seeds {
		refined, err := Refine(m, topo, seed, maxPasses)
		if err != nil {
			return nil, err
		}
		c, err := Cost(m, topo, refined)
		if err != nil {
			return nil, err
		}
		if best == nil || c < bestCost {
			best, bestCost = refined, c
		}
	}
	return best, nil
}
