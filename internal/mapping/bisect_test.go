package mapping

import (
	"testing"

	"netloc/internal/comm"
	"netloc/internal/topology"
)

func TestBisectionPlacesAllRanksDistinctly(t *testing.T) {
	cm := ringMatrix(t, 27)
	topo, err := topology.NewTorus(3, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := Bisection(cm, topo)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for r := 0; r < 27; r++ {
		n, err := mp.NodeOf(r)
		if err != nil {
			t.Fatal(err)
		}
		if seen[n] {
			t.Fatalf("node %d reused", n)
		}
		seen[n] = true
	}
}

func TestBisectionBeatsRandomOnClusters(t *testing.T) {
	// Four heavy 16-rank cliques whose members are scattered pseudo-
	// randomly over the rank space: bisection should gather each clique
	// into a compact sub-box, which neither consecutive nor random
	// placement achieves. (A fixed shuffle keeps the test deterministic.)
	const ranks = 64
	cm, err := comm.NewMatrix(ranks, 0)
	if err != nil {
		t.Fatal(err)
	}
	perm := make([]int, ranks)
	for i := range perm {
		perm[i] = i
	}
	state := uint64(12345)
	for i := ranks - 1; i > 0; i-- {
		state = state*6364136223846793005 + 1442695040888963407
		j := int(state % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	for c := 0; c < 4; c++ {
		members := perm[c*16 : (c+1)*16]
		for i := 0; i < 16; i++ {
			for j := i + 1; j < 16; j++ {
				if err := cm.Add(members[i], members[j], 10000); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	topo, err := topology.NewTorus(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	bis, err := Bisection(cm, topo)
	if err != nil {
		t.Fatal(err)
	}
	bisCost, err := Cost(cm, topo, bis)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := Consecutive(ranks, 64)
	if err != nil {
		t.Fatal(err)
	}
	consCost, err := Cost(cm, topo, cons)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := Random(ranks, 64, 11)
	if err != nil {
		t.Fatal(err)
	}
	rndCost, err := Cost(cm, topo, rnd)
	if err != nil {
		t.Fatal(err)
	}
	if bisCost >= rndCost {
		t.Fatalf("bisection %v not better than random %v", bisCost, rndCost)
	}
	if bisCost >= consCost {
		t.Fatalf("bisection %v not better than consecutive %v on strided cliques", bisCost, consCost)
	}
}

func TestBisectionOnMesh(t *testing.T) {
	cm := ringMatrix(t, 24)
	topo, err := topology.NewMesh(4, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := Bisection(cm, topo)
	if err != nil {
		t.Fatal(err)
	}
	if mp.Ranks() != 24 || mp.UsedNodes() != 24 {
		t.Fatalf("ranks=%d used=%d", mp.Ranks(), mp.UsedNodes())
	}
}

func TestBisectionFewerRanksThanNodes(t *testing.T) {
	cm := ringMatrix(t, 10)
	topo, err := topology.NewTorus(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := Bisection(cm, topo)
	if err != nil {
		t.Fatal(err)
	}
	if mp.Ranks() != 10 || mp.UsedNodes() != 10 {
		t.Fatalf("ranks=%d used=%d", mp.Ranks(), mp.UsedNodes())
	}
	// The ring should land in a compact region: cost well below the
	// worst case.
	cost, err := Cost(cm, topo, mp)
	if err != nil {
		t.Fatal(err)
	}
	if cost > 1000*float64(10*3) { // avg > 3 hops per 1000-byte edge would be poor
		t.Fatalf("bisection cost %v too high for a 10-ring", cost)
	}
}

func TestBisectionRejectsTooSmallTopology(t *testing.T) {
	cm := ringMatrix(t, 100)
	topo, err := topology.NewTorus(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Bisection(cm, topo); err == nil {
		t.Fatal("oversubscribed bisection accepted")
	}
}

func TestBisectionDeterministic(t *testing.T) {
	cm := ringMatrix(t, 16)
	topo, err := topology.NewTorus(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := Bisection(cm, topo)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Bisection(cm, topo)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 16; r++ {
		n1, _ := m1.NodeOf(r)
		n2, _ := m2.NodeOf(r)
		if n1 != n2 {
			t.Fatal("bisection not deterministic")
		}
	}
}

func TestBisectionPlusRefine(t *testing.T) {
	// The combined mapper never loses to bisection alone.
	cm := ringMatrix(t, 27)
	topo, err := topology.NewTorus(3, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	bis, err := Bisection(cm, topo)
	if err != nil {
		t.Fatal(err)
	}
	bisCost, err := Cost(cm, topo, bis)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := Refine(cm, topo, bis, 10)
	if err != nil {
		t.Fatal(err)
	}
	refCost, err := Cost(cm, topo, refined)
	if err != nil {
		t.Fatal(err)
	}
	if refCost > bisCost {
		t.Fatalf("refine worsened bisection: %v -> %v", bisCost, refCost)
	}
}
