package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PrometheusContentType is the Content-Type of WritePrometheus output
// (Prometheus text exposition format version 0.0.4).
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered metric in Prometheus text
// exposition format. Series sharing a name form one family: the # HELP
// and # TYPE header is emitted once (with the first-registered help
// string), followed by each labeled series. Histograms expand into
// _bucket (cumulative, with the canonical le label including +Inf),
// _sum, and _count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()

	// Group series into families in first-registration order.
	var names []string
	families := map[string][]*metric{}
	for _, m := range metrics {
		if _, ok := families[m.name]; !ok {
			names = append(names, m.name)
		}
		families[m.name] = append(families[m.name], m)
	}

	for _, name := range names {
		family := families[name]
		typ := promType(family[0].kind)
		if family[0].help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(family[0].help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ); err != nil {
			return err
		}
		for _, m := range family {
			if err := writeSeries(w, m); err != nil {
				return err
			}
		}
	}
	return nil
}

func promType(k kind) string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

func writeSeries(w io.Writer, m *metric) error {
	switch m.kind {
	case kindCounter, kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", m.name, labelString(m.labels, "", 0), m.val.Load())
		return err
	case kindCounterFunc, kindGaugeFunc:
		_, err := fmt.Fprintf(w, "%s%s %s\n", m.name, labelString(m.labels, "", 0), formatFloat(m.fn()))
		return err
	case kindHistogram:
		s := m.hist.Snapshot()
		for i, b := range s.Bounds {
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				m.name, labelString(m.labels, "le", b), s.Cumulative[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			m.name, labelStringInf(m.labels), s.Cumulative[len(s.Bounds)]); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
			m.name, labelString(m.labels, "", 0), formatFloat(s.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.name, labelString(m.labels, "", 0), s.Count)
		return err
	}
	return nil
}

// labelString renders {k="v",...}; when le is non-empty a le="<bound>"
// label is appended (for histogram buckets). An empty label set renders
// as the empty string.
func labelString(labels []Label, le string, bound float64) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	parts := make([]string, 0, len(labels)+1)
	for _, l := range labels {
		parts = append(parts, fmt.Sprintf("%s=%q", l.Key, l.Value))
	}
	if le != "" {
		parts = append(parts, fmt.Sprintf("%s=%q", le, formatFloat(bound)))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func labelStringInf(labels []Label) string {
	parts := make([]string, 0, len(labels)+1)
	for _, l := range labels {
		parts = append(parts, fmt.Sprintf("%s=%q", l.Key, l.Value))
	}
	parts = append(parts, `le="+Inf"`)
	return "{" + strings.Join(parts, ",") + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp applies the exposition format's HELP escaping (label values
// use %q, whose escaping already matches the format's rules).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
