package obs

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestRuntimeSamplerRegistersSeries(t *testing.T) {
	reg := NewRegistry()
	s := NewRuntimeSampler(reg, time.Hour)
	defer s.Stop()

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{
		"netloc_runtime_goroutines",
		"netloc_runtime_heap_bytes",
		"netloc_runtime_gc_pauses_total",
		"netloc_runtime_gc_pause_seconds",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("exposition missing %s:\n%s", name, out)
		}
	}
}

// TestRuntimeSamplerValues checks the constructor's immediate sample
// leaves plausible values and that GC activity moves the counters.
func TestRuntimeSamplerValues(t *testing.T) {
	reg := NewRegistry()
	s := NewRuntimeSampler(reg, time.Hour)
	defer s.Stop()

	snap := s.Snapshot()
	if snap.Goroutines < 1 {
		t.Errorf("goroutines = %d, want >= 1", snap.Goroutines)
	}
	if snap.HeapBytes < 1 {
		t.Errorf("heap_bytes = %d, want >= 1", snap.HeapBytes)
	}

	before := snap.GCPauses
	runtime.GC()
	runtime.GC()
	s.Sample()
	after := s.Snapshot()
	if after.GCPauses < before+2 {
		t.Errorf("gc_pauses = %d after two forced GCs (was %d)", after.GCPauses, before)
	}
	if after.GCPauseSeconds < 0 {
		t.Errorf("gc_pause_seconds = %g, want >= 0", after.GCPauseSeconds)
	}
}

// TestRuntimeSamplerPeriodic runs the goroutine with a tiny interval and
// waits for a tick-driven sample to land.
func TestRuntimeSamplerPeriodic(t *testing.T) {
	reg := NewRegistry()
	s := NewRuntimeSampler(reg, time.Millisecond)
	s.goroutines.Set(-1) // sentinel a tick must overwrite
	s.Start()
	deadline := time.Now().Add(5 * time.Second)
	for s.Snapshot().Goroutines == -1 {
		if time.Now().After(deadline) {
			t.Fatal("no periodic sample within 5s")
		}
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	s.Stop() // double Stop is safe
}

func TestRuntimeSamplerStopWithoutStart(t *testing.T) {
	reg := NewRegistry()
	s := NewRuntimeSampler(reg, time.Hour)
	s.Stop() // must not hang waiting for a goroutine that never ran
	s.Stop()
}

func TestRuntimeSamplerStartTwice(t *testing.T) {
	reg := NewRegistry()
	s := NewRuntimeSampler(reg, time.Hour)
	s.Start()
	s.Start()
	s.Stop()
}

func TestRuntimeSamplerDefaultInterval(t *testing.T) {
	reg := NewRegistry()
	s := NewRuntimeSampler(reg, 0)
	defer s.Stop()
	if got := s.Interval(); got != DefaultRuntimeSampleInterval {
		t.Errorf("Interval() = %v, want default %v", got, DefaultRuntimeSampleInterval)
	}
}
