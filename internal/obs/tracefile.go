package obs

import (
	"encoding/json"
	"errors"
	"io"
	"os"
	"sort"
	"time"
)

// chromeTracePid is the single process ID the exporter stamps on every
// event: one pipeline run is one process; parallelism shows up as lanes
// (tids) inside it.
const chromeTracePid = 1

// chromeTraceEvent is one entry of the Chrome trace-event JSON array —
// the format chrome://tracing and Perfetto load directly. Spans render
// as complete ("X") events; the file also carries "M" metadata events
// naming the process and lanes.
type chromeTraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders a span tree as Chrome trace-event JSON: a
// valid JSON array of complete ("X") events, microsecond timestamps
// relative to the root span's start, work counts and instance labels in
// each event's args. Load the output in Perfetto (ui.perfetto.dev) or
// chrome://tracing to see where a run's time went.
//
// Grid cells run in parallel, so sibling spans may overlap in time;
// trace viewers require events in one lane to nest strictly. Children
// are therefore packed greedily into lanes (tids): a child stays on its
// parent's lane when the lane is free, and overlapping siblings move to
// fresh lanes. Child intervals are clamped into their parent's so
// float-rounding can never produce a partially overlapping pair. Events
// are emitted in non-decreasing ts order, and the encoding is
// deterministic for a given tree (args keys are sorted by the JSON
// encoder).
func WriteChromeTrace(w io.Writer, d SpanData) error {
	if d.Start.IsZero() {
		return errors.New("obs: span tree has no recorded start time")
	}
	base := d.Start
	nextTid := 1
	var events []chromeTraceEvent
	maxTid := 1

	// render emits d as an X event on lane tid, clamped into [lo, hi]
	// microseconds (hi < 0 = unbounded, for the root), then lane-packs
	// its children.
	var render func(d SpanData, lo, hi int64, tid int)
	render = func(d SpanData, lo, hi int64, tid int) {
		ts, end := spanWindow(d, base, lo, hi)
		if tid > maxTid {
			maxTid = tid
		}
		events = append(events, chromeTraceEvent{
			Name: d.Name, Cat: "stage", Ph: "X",
			Ts: ts, Dur: end - ts, Pid: chromeTracePid, Tid: tid,
			Args: spanArgs(d),
		})
		kids := append([]SpanData(nil), d.Children...)
		sort.SliceStable(kids, func(i, j int) bool { return kids[i].Start.Before(kids[j].Start) })
		type lane struct {
			tid       int
			busyUntil int64
		}
		lanes := []lane{{tid: tid, busyUntil: ts}}
		for _, k := range kids {
			kts, kend := spanWindow(k, base, ts, end)
			placed := -1
			for i := range lanes {
				if lanes[i].busyUntil <= kts {
					placed = i
					break
				}
			}
			if placed < 0 {
				nextTid++
				lanes = append(lanes, lane{tid: nextTid})
				placed = len(lanes) - 1
			}
			lanes[placed].busyUntil = kend
			render(k, kts, end, lanes[placed].tid)
		}
	}
	render(d, 0, -1, 1)

	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Ts != events[j].Ts {
			return events[i].Ts < events[j].Ts
		}
		return events[i].Dur > events[j].Dur // parents before their children
	})

	out := make([]chromeTraceEvent, 0, len(events)+1+maxTid)
	out = append(out, chromeTraceEvent{
		Name: "process_name", Ph: "M", Pid: chromeTracePid, Tid: 0,
		Args: map[string]any{"name": "netloc/" + d.Name},
	})
	for tid := 1; tid <= maxTid; tid++ {
		name := "main"
		if tid > 1 {
			name = "worker"
		}
		out = append(out, chromeTraceEvent{
			Name: "thread_name", Ph: "M", Pid: chromeTracePid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	out = append(out, events...)

	b, err := json.Marshal(out)
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// spanWindow computes a span's [start, end) microsecond window relative
// to base, clamped into [lo, hi] (hi < 0 = unbounded). Every span keeps
// at least 1 µs of width so it stays visible — and clickable — in the
// viewer.
func spanWindow(d SpanData, base time.Time, lo, hi int64) (ts, end int64) {
	ts = d.Start.Sub(base).Microseconds()
	if ts < lo {
		ts = lo
	}
	dur := int64(d.DurationMS * 1000)
	if dur < 1 {
		dur = 1
	}
	end = ts + dur
	if hi >= 0 && end > hi {
		end = hi
	}
	if end <= ts {
		end = ts + 1
	}
	return ts, end
}

// spanArgs collects a span's exportable metadata: the instance label,
// every work count, and the dropped-children tally.
func spanArgs(d SpanData) map[string]any {
	if d.Label == "" && len(d.Counts) == 0 && d.DroppedChildren == 0 {
		return nil
	}
	args := make(map[string]any, len(d.Counts)+2)
	if d.Label != "" {
		args["label"] = d.Label
	}
	for k, v := range d.Counts {
		args[k] = v
	}
	if d.DroppedChildren > 0 {
		args["dropped_children"] = d.DroppedChildren
	}
	return args
}

// WriteChromeTraceFile writes WriteChromeTrace output to path, the
// convenience the CLIs' -trace-out flags use.
func WriteChromeTraceFile(path string, d SpanData) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := WriteChromeTrace(f, d)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}
