package obs

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultRuntimeSampleInterval is the sampling period RuntimeSampler
// applies when given a non-positive interval.
const DefaultRuntimeSampleInterval = 10 * time.Second

// RuntimeSampler periodically samples the Go runtime — goroutine count,
// heap in use, GC activity — into registry series, giving a long-lived
// daemon its process-health signal next to the request metrics:
//
//	netloc_runtime_goroutines       gauge    live goroutines
//	netloc_runtime_heap_bytes       gauge    heap bytes in use (HeapAlloc)
//	netloc_runtime_gc_pauses_total  counter  completed GC cycles
//	netloc_runtime_gc_pause_seconds counter  cumulative stop-the-world pause time
//
// The sampler is opt-in: nothing registers these series unless a
// sampler is constructed, so test servers and embedders that don't ask
// for one see byte-identical /metrics output.
type RuntimeSampler struct {
	interval   time.Duration
	goroutines *Gauge
	heap       *Gauge
	gcPauses   *Counter

	pauseSecBits atomic.Uint64 // float64 bits: total GC pause seconds

	mu        sync.Mutex
	lastNumGC uint32

	startOnce sync.Once
	stopOnce  sync.Once
	started   bool
	stop      chan struct{}
	done      chan struct{}
}

// NewRuntimeSampler registers the runtime series on reg and takes one
// immediate sample so they are populated before the first tick. Call
// Start to begin periodic sampling and Stop to end it.
func NewRuntimeSampler(reg *Registry, interval time.Duration) *RuntimeSampler {
	if interval <= 0 {
		interval = DefaultRuntimeSampleInterval
	}
	s := &RuntimeSampler{
		interval:   interval,
		goroutines: reg.Gauge("netloc_runtime_goroutines", "Goroutines currently live (sampled)."),
		heap:       reg.Gauge("netloc_runtime_heap_bytes", "Heap bytes in use (sampled runtime.MemStats HeapAlloc)."),
		gcPauses:   reg.Counter("netloc_runtime_gc_pauses_total", "Garbage-collection cycles completed since process start."),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	reg.CounterFunc("netloc_runtime_gc_pause_seconds", "Cumulative stop-the-world GC pause time in seconds.",
		func() float64 { return math.Float64frombits(s.pauseSecBits.Load()) })
	s.Sample()
	return s
}

// Interval returns the effective sampling period.
func (s *RuntimeSampler) Interval() time.Duration { return s.interval }

// Sample takes one sample immediately. The periodic loop calls it on
// every tick; tests call it directly so they never sleep.
func (s *RuntimeSampler) Sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.goroutines.Set(int64(runtime.NumGoroutine()))
	s.heap.Set(int64(ms.HeapAlloc))
	s.pauseSecBits.Store(math.Float64bits(float64(ms.PauseTotalNs) / 1e9))
	s.mu.Lock()
	if d := ms.NumGC - s.lastNumGC; d > 0 {
		s.gcPauses.Add(int64(d))
	}
	s.lastNumGC = ms.NumGC
	s.mu.Unlock()
}

// Start launches the sampling goroutine. Starting twice is a no-op.
func (s *RuntimeSampler) Start() {
	s.startOnce.Do(func() {
		s.started = true
		go func() {
			defer close(s.done)
			t := time.NewTicker(s.interval)
			defer t.Stop()
			for {
				select {
				case <-s.stop:
					return
				case <-t.C:
					s.Sample()
				}
			}
		}()
	})
}

// Stop ends periodic sampling and waits for the goroutine to exit.
// Safe to call more than once, and before (or without) Start.
func (s *RuntimeSampler) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	if s.started {
		<-s.done
	}
}

// RuntimeSnapshot is the sampler's current view, rendered into the
// service's JSON /metrics document.
type RuntimeSnapshot struct {
	Goroutines     int64   `json:"goroutines"`
	HeapBytes      int64   `json:"heap_bytes"`
	GCPauses       int64   `json:"gc_pauses"`
	GCPauseSeconds float64 `json:"gc_pause_seconds"`
}

// Snapshot returns the most recently sampled values.
func (s *RuntimeSampler) Snapshot() RuntimeSnapshot {
	return RuntimeSnapshot{
		Goroutines:     s.goroutines.Value(),
		HeapBytes:      s.heap.Value(),
		GCPauses:       s.gcPauses.Value(),
		GCPauseSeconds: math.Float64frombits(s.pauseSecBits.Load()),
	}
}
