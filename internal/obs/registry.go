package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Label is one constant name/value pair attached to a metric series.
type Label struct {
	Key, Value string
}

// kind distinguishes the metric families a Registry can hold.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindCounterFunc
	kindGaugeFunc
	kindHistogram
)

// metric is one registered series.
type metric struct {
	name   string
	help   string
	labels []Label
	kind   kind

	val  atomic.Int64
	fn   func() float64
	hist *Histogram
}

// Registry holds named counters, gauges, and fixed-bucket histograms and
// renders them as Prometheus text exposition (WritePrometheus) or
// structured snapshots. Registration is idempotent: asking for an
// existing (name, labels) series of the same kind returns the original
// handle; re-registering it as a different kind panics, since two
// writers would silently corrupt each other.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	index   map[string]*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*metric)}
}

func seriesKey(name string, labels []Label) string {
	key := name
	for _, l := range labels {
		key += "\x00" + l.Key + "\x01" + l.Value
	}
	return key
}

func (r *Registry) register(name, help string, k kind, labels []Label) *metric {
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.index[key]; ok {
		if m.kind != k {
			panic(fmt.Sprintf("obs: metric %q re-registered as a different kind", name))
		}
		return m
	}
	m := &metric{name: name, help: help, labels: append([]Label(nil), labels...), kind: k}
	r.index[key] = m
	r.metrics = append(r.metrics, m)
	return m
}

// Counter is a monotonically increasing metric.
type Counter struct{ m *metric }

// Counter registers (or returns) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return &Counter{m: r.register(name, help, kindCounter, labels)}
}

// Inc adds one.
func (c *Counter) Inc() { c.m.val.Add(1) }

// Add adds n (negative n panics: counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("obs: negative counter increment")
	}
	c.m.val.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.m.val.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ m *metric }

// Gauge registers (or returns) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return &Gauge{m: r.register(name, help, kindGauge, labels)}
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.m.val.Store(v) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.m.val.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.m.val.Load() }

// CounterFunc registers a counter series whose value is sampled from fn
// at render time (for externally maintained monotone counts, e.g. cache
// evictions).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindCounterFunc, labels).fn = fn
}

// GaugeFunc registers a gauge series sampled from fn at render time
// (e.g. tokens currently in use).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindGaugeFunc, labels).fn = fn
}

// Histogram is a fixed-bucket histogram with atomic counters. Bucket
// bounds are upper bounds in ascending order; observations above the
// last bound land in the implicit +Inf bucket, so bucket counts always
// sum to the observation count.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1, last is +Inf
	sumBits atomic.Uint64
}

// Histogram registers (or returns) a histogram series with the given
// ascending bucket upper bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	m := r.register(name, help, kindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.hist == nil {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
			}
		}
		m.hist = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
	}
	return m.hist
}

// Observe records one value. NaN observations are dropped: NaN would
// land in the +Inf bucket and, worse, poison the running sum (every
// later mean renders as NaN) without any way to recover.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a render-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds.
	Bounds []float64
	// Cumulative[i] counts observations <= Bounds[i]; the final element
	// is the +Inf bucket and always equals Count.
	Cumulative []int64
	Count      int64
	Sum        float64
}

// Snapshot copies the histogram's current state. Bucket counts are read
// individually, so a snapshot taken concurrently with writers is only
// approximately consistent; taken after writers quiesce, Cumulative's
// last element equals Count exactly.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:     h.bounds,
		Cumulative: make([]int64, len(h.counts)),
		Sum:        math.Float64frombits(h.sumBits.Load()),
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		s.Cumulative[i] = cum
	}
	s.Count = cum
	return s
}
