package obs

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestNilSpanIsNoOp(t *testing.T) {
	var s *Span
	c := s.Start("child")
	if c != nil {
		t.Fatal("nil span returned a live child")
	}
	c.Add("k", 1)
	c.SetLabel("x")
	c.End()
	if d := c.Data(); d.Name != "" || d.Counts != nil {
		t.Fatalf("nil span data = %+v", d)
	}
}

func TestSpanTreeAndCounts(t *testing.T) {
	tr := NewTracer(4)
	root := tr.StartRun("run")
	gen := root.Start("generate")
	gen.Add("events", 10)
	gen.Add("events", 5)
	gen.SetLabel("LULESH/64")
	gen.End()
	acc := root.Start("accumulate")
	acc.Add("shards", 3)
	acc.End()
	root.End()

	runs := tr.Runs()
	if len(runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(runs))
	}
	d := runs[0].Root
	if d.Name != "run" || len(d.Children) != 2 {
		t.Fatalf("root = %+v", d)
	}
	if d.Children[0].Name != "generate" || d.Children[0].Counts["events"] != 15 {
		t.Errorf("generate = %+v", d.Children[0])
	}
	if d.Children[0].Label != "LULESH/64" {
		t.Errorf("label = %q", d.Children[0].Label)
	}
	if d.Children[1].Counts["shards"] != 3 {
		t.Errorf("accumulate = %+v", d.Children[1])
	}
	if d.DurationMS < 0 {
		t.Errorf("duration = %v", d.DurationMS)
	}
}

func TestTracerRingBoundedNewestFirst(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 10; i++ {
		s := tr.StartRun(fmt.Sprintf("run-%d", i))
		s.End()
	}
	runs := tr.Runs()
	if len(runs) != 3 {
		t.Fatalf("ring holds %d, want 3", len(runs))
	}
	if runs[0].Name != "run-9" || runs[2].Name != "run-7" {
		t.Errorf("ring order = %q,%q,%q", runs[0].Name, runs[1].Name, runs[2].Name)
	}
	if runs[0].ID != 10 {
		t.Errorf("newest id = %d, want 10", runs[0].ID)
	}
	if tr.Recorded() != 10 {
		t.Errorf("recorded = %d, want 10", tr.Recorded())
	}
}

func TestSpanChildrenBounded(t *testing.T) {
	root := NewTracer(1).StartRun("run")
	for i := 0; i < maxChildren+7; i++ {
		root.Start("cell").End()
	}
	root.End()
	d := root.Data()
	if len(d.Children) != maxChildren {
		t.Errorf("children = %d, want %d", len(d.Children), maxChildren)
	}
	if d.DroppedChildren != 7 {
		t.Errorf("dropped = %d, want 7", d.DroppedChildren)
	}
}

func TestConcurrentSpanWriters(t *testing.T) {
	tr := NewTracer(2)
	root := tr.StartRun("run")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c := root.Start("cell")
				c.Add("n", 1)
				c.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	d := root.Data()
	if len(d.Children) != maxChildren {
		t.Errorf("children = %d, want cap %d", len(d.Children), maxChildren)
	}
	if len(d.Children)+d.DroppedChildren != 8*50 {
		t.Errorf("children+dropped = %d, want %d", len(d.Children)+d.DroppedChildren, 8*50)
	}
	for _, c := range d.Children {
		if c.Counts["n"] != 1 {
			t.Fatalf("child count = %d, want 1", c.Counts["n"])
		}
	}
}

func TestContextPropagation(t *testing.T) {
	ctx := context.Background()
	if got := FromContext(ctx); got != nil {
		t.Fatalf("empty context carries span %v", got)
	}
	ctx2, sp := Start(ctx, "stage")
	if sp != nil || ctx2 != ctx {
		t.Fatal("Start on span-less context should be a no-op")
	}
	tr := NewTracer(1)
	root := tr.StartRun("run")
	ctx = NewContext(ctx, root)
	ctx3, child := Start(ctx, "stage")
	if child == nil || FromContext(ctx3) != child {
		t.Fatal("child not propagated through context")
	}
	child.End()
	root.End()
	if d := tr.Runs()[0].Root; len(d.Children) != 1 || d.Children[0].Name != "stage" {
		t.Fatalf("root = %+v", d)
	}
}

func TestWriteSummaryAggregatesStages(t *testing.T) {
	tr := NewTracer(1)
	root := tr.StartRun("run")
	for i := 0; i < 3; i++ {
		c := root.Start("cell")
		g := c.Start("generate")
		g.Add("events", 100)
		g.End()
		c.End()
	}
	root.End()
	var buf bytes.Buffer
	if err := WriteSummary(&buf, tr.Runs()[0].Root); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + run + cell + generate
		t.Fatalf("summary lines = %d:\n%s", len(lines), out)
	}
	var genLine string
	for _, l := range lines {
		if strings.HasPrefix(l, "generate") {
			genLine = l
		}
	}
	if genLine == "" || !strings.Contains(genLine, "events=300") {
		t.Errorf("generate line = %q, want aggregated events=300\n%s", genLine, out)
	}
	fields := strings.Fields(genLine)
	if len(fields) < 3 || fields[1] != "3" {
		t.Errorf("generate calls = %v, want 3", fields)
	}
}

func TestEndTwiceKeepsFirstDuration(t *testing.T) {
	tr := NewTracer(1)
	s := tr.StartRun("run")
	s.End()
	first := s.Data().DurationMS
	s.End()
	if got := s.Data().DurationMS; got != first {
		t.Errorf("duration changed on double End: %v vs %v", got, first)
	}
	if len(tr.Runs()) != 1 {
		t.Errorf("double End recorded %d runs", len(tr.Runs()))
	}
}

func TestRunIDsMonotonicAndLookup(t *testing.T) {
	tr := NewTracer(2)
	var ids []int64
	for i := 0; i < 4; i++ {
		s := tr.StartRun("run")
		if s.RunID() != 0 {
			t.Errorf("RunID before End = %d, want 0", s.RunID())
		}
		s.End()
		ids = append(ids, s.RunID())
	}
	for i, id := range ids {
		if id != int64(i)+1 {
			t.Fatalf("run IDs = %v, want 1..4", ids)
		}
	}
	// The ring holds 2 entries: newest two resolvable, older ones gone.
	for _, id := range ids[2:] {
		rec, ok := tr.Run(id)
		if !ok {
			t.Fatalf("run %d not found in ring", id)
		}
		if rec.ID != id || rec.Root.Name != "run" {
			t.Errorf("Run(%d) = {ID: %d, Root: %q}", id, rec.ID, rec.Root.Name)
		}
	}
	for _, id := range ids[:2] {
		if _, ok := tr.Run(id); ok {
			t.Errorf("evicted run %d still resolvable", id)
		}
	}
	if _, ok := tr.Run(999); ok {
		t.Error("unknown run ID resolved")
	}
}

func TestRunIDNilAndUnrecordedSpans(t *testing.T) {
	var nilSpan *Span
	if nilSpan.RunID() != 0 {
		t.Error("nil span has a run ID")
	}
	tr := NewTracer(1)
	root := tr.StartRun("run")
	child := root.Start("stage")
	child.End()
	root.End()
	if child.RunID() != 0 {
		t.Errorf("child span got run ID %d; only roots are recorded", child.RunID())
	}
	if root.RunID() == 0 {
		t.Error("recorded root has no run ID")
	}
}
