package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// decodeTrace unmarshals exporter output, failing on anything that is
// not a valid JSON array of objects.
func decodeTrace(t *testing.T, b []byte) []map[string]any {
	t.Helper()
	var events []map[string]any
	if err := json.Unmarshal(b, &events); err != nil {
		t.Fatalf("trace output is not a JSON array: %v\n%s", err, b)
	}
	if len(events) == 0 {
		t.Fatal("trace output is empty")
	}
	return events
}

// fabricated builds a deterministic SpanData tree by hand: a root with
// a sequential child, two overlapping "cell" children (as a parallel
// grid produces), and a nested grandchild.
func fabricated() SpanData {
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	return SpanData{
		Name: "run", Start: base, DurationMS: 10, Ended: true,
		Counts: map[string]int64{"events": 42},
		Children: []SpanData{
			{Name: "generate", Label: "LULESH/64", Start: base.Add(1 * time.Millisecond), DurationMS: 2, Ended: true},
			{Name: "cell", Label: "A", Start: base.Add(4 * time.Millisecond), DurationMS: 4, Ended: true,
				Children: []SpanData{
					{Name: "netmodel", Start: base.Add(5 * time.Millisecond), DurationMS: 1, Ended: true},
				}},
			{Name: "cell", Label: "B", Start: base.Add(4*time.Millisecond + 500*time.Microsecond), DurationMS: 4, Ended: true},
		},
	}
}

// TestChromeTraceShape is the golden shape check CI runs explicitly: a
// valid JSON array whose events all carry pid/tid/ph/name, with
// non-decreasing ts and X events for every span.
func TestChromeTraceShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, fabricated()); err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, buf.Bytes())

	lastTs := -1.0
	spans := 0
	for i, ev := range events {
		for _, field := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event %d missing %q: %v", i, field, ev)
			}
		}
		ts, ok := ev["ts"].(float64)
		if !ok {
			t.Fatalf("event %d has no numeric ts: %v", i, ev)
		}
		if ts < lastTs {
			t.Fatalf("ts not monotonic at event %d: %g after %g", i, ts, lastTs)
		}
		lastTs = ts
		switch ev["ph"] {
		case "X":
			spans++
			if dur, ok := ev["dur"].(float64); !ok || dur < 1 {
				t.Errorf("X event %q has bad dur %v", ev["name"], ev["dur"])
			}
		case "M": // metadata: process/thread names
		default:
			t.Errorf("unexpected phase %v in event %d", ev["ph"], i)
		}
	}
	if spans != 5 { // run + generate + 2 cells + netmodel
		t.Errorf("X events = %d, want 5", spans)
	}
}

// TestChromeTraceNestingAndLanes checks the viewer-facing invariants:
// children are contained in their parent's window, overlapping siblings
// land on different lanes, and within one lane events never partially
// overlap.
func TestChromeTraceNestingAndLanes(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, fabricated()); err != nil {
		t.Fatal(err)
	}
	type span struct {
		name    string
		ts, end int64
		tid     int
		label   string
	}
	var spans []span
	for _, ev := range decodeTrace(t, buf.Bytes()) {
		if ev["ph"] != "X" {
			continue
		}
		s := span{
			name: ev["name"].(string),
			ts:   int64(ev["ts"].(float64)),
			tid:  int(ev["tid"].(float64)),
		}
		s.end = s.ts + int64(ev["dur"].(float64))
		if args, ok := ev["args"].(map[string]any); ok {
			s.label, _ = args["label"].(string)
		}
		spans = append(spans, s)
	}
	byLabel := func(label string) span {
		for _, s := range spans {
			if s.label == label {
				return s
			}
		}
		t.Fatalf("no span labeled %q", label)
		return span{}
	}
	root := spans[0]
	if root.name != "run" {
		t.Fatalf("first X event = %q, want the root", root.name)
	}
	for _, s := range spans[1:] {
		if s.ts < root.ts || s.end > root.end {
			t.Errorf("span %q [%d,%d] escapes root [%d,%d]", s.name, s.ts, s.end, root.ts, root.end)
		}
	}
	cellA, cellB := byLabel("A"), byLabel("B")
	if cellA.tid == cellB.tid {
		t.Errorf("overlapping cells share lane %d", cellA.tid)
	}
	// The sequential child fits on the root's lane.
	for _, s := range spans {
		if s.name == "generate" && s.tid != root.tid {
			t.Errorf("non-overlapping child moved to lane %d (root lane %d)", s.tid, root.tid)
		}
	}
	// No partial overlap within any lane.
	for i, a := range spans {
		for _, b := range spans[i+1:] {
			if a.tid != b.tid {
				continue
			}
			disjoint := a.end <= b.ts || b.end <= a.ts
			nested := (a.ts <= b.ts && b.end <= a.end) || (b.ts <= a.ts && a.end <= b.end)
			if !disjoint && !nested {
				t.Errorf("lane %d has partially overlapping spans %q [%d,%d] and %q [%d,%d]",
					a.tid, a.name, a.ts, a.end, b.name, b.ts, b.end)
			}
		}
	}
}

// TestChromeTraceArgsAndMetadata checks counts/labels ride along as
// event args and that process/thread metadata is present for the
// viewer's track names.
func TestChromeTraceArgsAndMetadata(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, fabricated()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"process_name"`, `"thread_name"`, `"events":42`, `"label":"LULESH/64"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %s in:\n%s", want, out)
		}
	}
}

// TestChromeTraceDeterministic pins that one tree encodes to one byte
// sequence (args maps are sorted by the JSON encoder), so traces are
// diffable artifacts.
func TestChromeTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, fabricated()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, fabricated()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of the same tree differ")
	}
}

// TestChromeTraceFromLiveSpans exercises the real span machinery end to
// end: a tracer run with concurrent children exports as a loadable
// trace.
func TestChromeTraceFromLiveSpans(t *testing.T) {
	tr := NewTracer(4)
	root := tr.StartRun("live")
	gen := root.Start("generate")
	gen.SetLabel("AMG/216")
	gen.Add("events", 7)
	gen.End()
	cell := root.Start("cell")
	inner := cell.Start("netmodel")
	inner.End()
	cell.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, root.Data()); err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, buf.Bytes())
	names := map[string]bool{}
	for _, ev := range events {
		if ev["ph"] == "X" {
			names[ev["name"].(string)] = true
		}
	}
	for _, want := range []string{"live", "generate", "cell", "netmodel"} {
		if !names[want] {
			t.Errorf("missing span %q in exported trace (got %v)", want, names)
		}
	}
}

func TestChromeTraceEmptySpanErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, SpanData{}); err == nil {
		t.Fatal("no error for a zero SpanData")
	}
}

func TestWriteChromeTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.trace.json")
	if err := WriteChromeTraceFile(path, fabricated()); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	decodeTrace(t, b)
}
