package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

// logLines captures slog JSON output and returns the decoded lines.
func logLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var lines []map[string]any
	for _, raw := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if raw == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(raw), &m); err != nil {
			t.Fatalf("bad log line %q: %v", raw, err)
		}
		lines = append(lines, m)
	}
	return lines
}

func TestLogRunEmitsOneLine(t *testing.T) {
	var buf bytes.Buffer
	l := slog.New(slog.NewJSONHandler(&buf, nil))
	LogRun(l, RunEvent{
		RunID:       3,
		RequestID:   "00000007",
		Endpoint:    "analyze",
		App:         "MILC",
		Topology:    "torus3d",
		Ranks:       512,
		Cache:       "miss",
		QueueWaitMS: 1.5,
		DurationMS:  42.25,
	})
	lines := logLines(t, &buf)
	if len(lines) != 1 {
		t.Fatalf("got %d log lines, want 1:\n%s", len(lines), buf.String())
	}
	m := lines[0]
	if m["msg"] != "run_complete" {
		t.Errorf("msg = %v, want run_complete", m["msg"])
	}
	want := map[string]any{
		"run_id":        float64(3),
		"request_id":    "00000007",
		"endpoint":      "analyze",
		"app":           "MILC",
		"topo":          "torus3d",
		"ranks":         float64(512),
		"cache":         "miss",
		"queue_wait_ms": 1.5,
		"duration_ms":   42.25,
	}
	for k, v := range want {
		if m[k] != v {
			t.Errorf("%s = %v, want %v", k, m[k], v)
		}
	}
	if _, ok := m["err"]; ok {
		t.Error("err attr present on a successful run")
	}
}

func TestLogRunOmitsZeroFields(t *testing.T) {
	var buf bytes.Buffer
	l := slog.New(slog.NewJSONHandler(&buf, nil))
	LogRun(l, RunEvent{Endpoint: "grid", Cache: "hit", DurationMS: 0.1})
	m := logLines(t, &buf)[0]
	for _, absent := range []string{"run_id", "request_id", "app", "topo", "ranks", "queue_wait_ms", "err"} {
		if _, ok := m[absent]; ok {
			t.Errorf("zero field %s present: %v", absent, m[absent])
		}
	}
	for _, present := range []string{"endpoint", "cache", "duration_ms"} {
		if _, ok := m[present]; !ok {
			t.Errorf("identifying field %s missing in %v", present, m)
		}
	}
}

func TestLogRunErrField(t *testing.T) {
	var buf bytes.Buffer
	l := slog.New(slog.NewJSONHandler(&buf, nil))
	LogRun(l, RunEvent{Endpoint: "trace", Cache: "none", Err: "boom"})
	if m := logLines(t, &buf)[0]; m["err"] != "boom" {
		t.Errorf("err = %v, want boom", m["err"])
	}
}

func TestLogRunNilLogger(t *testing.T) {
	LogRun(nil, RunEvent{Endpoint: "grid", Cache: "hit"}) // must not panic
}
