package obs

import (
	"context"
	"log/slog"
)

// RunEvent is the canonical record of one completed request/run: who
// asked (request ID, endpoint), what it was about (app, topology,
// ranks), how it was served (cache hit/miss/dedup or an uncached
// compute), and where the time went (worker-pool queue wait, total
// duration). The service emits exactly one of these per completed run
// from the same chokepoint that folds span counts into the pipeline
// counters, so logs, counters, and the span ring always agree.
type RunEvent struct {
	// RunID is the span ring's monotonic run ID (0 when the run was
	// served without a recorded span, e.g. a cache hit).
	RunID int64
	// RequestID is the X-Request-ID of the triggering request (empty for
	// background work such as async design jobs).
	RequestID string
	// Endpoint is the serving endpoint's instrumentation key.
	Endpoint string
	// App, Topology, Ranks are the analysis dimensions, when the request
	// had them (zero values are omitted from the log line).
	App      string
	Topology string
	Ranks    int
	// Cache is how the result was served: "hit", "miss", "dedup"
	// (joined an identical in-flight computation), or "none" (uncached
	// work, e.g. trace uploads).
	Cache string
	// QueueWaitMS is how long the run waited for a worker token before
	// computing (0 for cache hits, which never queue).
	QueueWaitMS float64
	// DurationMS is the run's total wall time as the caller saw it,
	// queue wait included.
	DurationMS float64
	// Err is the failure message for runs that ended in an error.
	Err string
}

// LogRun emits ev as one structured "run_complete" slog line on l. A
// nil logger is a no-op, so callers need no logging branches. Zero
// dimension fields are omitted; the identifying fields (endpoint,
// cache, duration) are always present.
func LogRun(l *slog.Logger, ev RunEvent) {
	if l == nil {
		return
	}
	attrs := make([]slog.Attr, 0, 10)
	if ev.RunID != 0 {
		attrs = append(attrs, slog.Int64("run_id", ev.RunID))
	}
	if ev.RequestID != "" {
		attrs = append(attrs, slog.String("request_id", ev.RequestID))
	}
	attrs = append(attrs, slog.String("endpoint", ev.Endpoint))
	if ev.App != "" {
		attrs = append(attrs, slog.String("app", ev.App))
	}
	if ev.Topology != "" {
		attrs = append(attrs, slog.String("topo", ev.Topology))
	}
	if ev.Ranks != 0 {
		attrs = append(attrs, slog.Int("ranks", ev.Ranks))
	}
	attrs = append(attrs, slog.String("cache", ev.Cache))
	if ev.QueueWaitMS > 0 {
		attrs = append(attrs, slog.Float64("queue_wait_ms", ev.QueueWaitMS))
	}
	attrs = append(attrs, slog.Float64("duration_ms", ev.DurationMS))
	if ev.Err != "" {
		attrs = append(attrs, slog.String("err", ev.Err))
	}
	l.LogAttrs(context.Background(), slog.LevelInfo, "run_complete", attrs...)
}
