package obs

import (
	"bytes"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Total requests.", Label{"endpoint", "analyze"})
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	// Idempotent registration returns the same series.
	if again := r.Counter("requests_total", "ignored", Label{"endpoint", "analyze"}); again.Value() != 5 {
		t.Errorf("re-registration lost state: %d", again.Value())
	}
	// Same name, different labels is a distinct series.
	other := r.Counter("requests_total", "Total requests.", Label{"endpoint", "traces"})
	if other.Value() != 0 {
		t.Errorf("distinct series shares state: %d", other.Value())
	}
	g := r.Gauge("inflight", "In-flight requests.")
	g.Add(3)
	g.Add(-1)
	if g.Value() != 2 {
		t.Errorf("gauge = %d, want 2", g.Value())
	}
	g.Set(7)
	if g.Value() != 7 {
		t.Errorf("gauge = %d, want 7", g.Value())
	}
}

func TestKindConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x", "")
	r.Gauge("x", "")
}

func TestNegativeCounterAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative counter Add did not panic")
		}
	}()
	NewRegistry().Counter("x", "").Add(-1)
}

// TestHistogramBucketSumInvariant pins the satellite fix: every
// observation lands in exactly one bucket including +Inf, so the
// cumulative +Inf bucket always equals the count — even for
// observations beyond the last bound.
func TestHistogramBucketSumInvariant(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_ms", "Latency.", []float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 3, 10, 11, 500000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if got := s.Cumulative[len(s.Cumulative)-1]; got != s.Count {
		t.Errorf("+Inf cumulative = %d, want count %d", got, s.Count)
	}
	// le semantics: v == bound belongs to that bucket.
	if s.Cumulative[0] != 2 { // 0.5 and 1
		t.Errorf("le_1 = %d, want 2", s.Cumulative[0])
	}
	if s.Cumulative[1] != 3 || s.Cumulative[2] != 4 {
		t.Errorf("cumulative = %v", s.Cumulative)
	}
	if want := 0.5 + 1 + 3 + 10 + 11 + 500000; s.Sum != want {
		t.Errorf("sum = %v, want %v", s.Sum, want)
	}
}

func TestConcurrentRegistryWriters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "")
	g := r.Gauge("level", "")
	h := r.Histogram("lat", "", []float64{1, 10, 100})
	const goroutines, per = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64((seed*per + j) % 200))
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != goroutines*per {
		t.Errorf("counter = %d, want %d", c.Value(), goroutines*per)
	}
	if g.Value() != goroutines*per {
		t.Errorf("gauge = %d, want %d", g.Value(), goroutines*per)
	}
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Errorf("histogram count = %d, want %d", s.Count, goroutines*per)
	}
	if s.Cumulative[len(s.Cumulative)-1] != s.Count {
		t.Errorf("bucket sum %d != count %d", s.Cumulative[len(s.Cumulative)-1], s.Count)
	}
}

// parseProm decodes text exposition output into series name+labels →
// value, checking structural validity (HELP/TYPE lines, parsable
// values) as it goes.
func parseProm(t *testing.T, text string) map[string]float64 {
	t.Helper()
	series := map[string]float64{}
	types := map[string]string{}
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("blank line in exposition output")
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("bad TYPE line %q", line)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("bad TYPE %q", line)
			}
			types[fields[2]] = fields[3]
			continue
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Fatalf("bad sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		series[line[:sp]] = v
	}
	if len(types) == 0 {
		t.Fatal("no TYPE lines in exposition output")
	}
	return series
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("netloc_http_requests_total", "Total HTTP requests.", Label{"endpoint", "analyze"})
	c.Add(7)
	r.Counter("netloc_http_requests_total", "Total HTTP requests.", Label{"endpoint", "traces"}).Add(2)
	g := r.Gauge("netloc_http_inflight", "In-flight requests.")
	g.Set(1)
	r.GaugeFunc("netloc_cache_entries", "Cache entries.", func() float64 { return 42 })
	h := r.Histogram("netloc_latency_ms", "Request latency.", []float64{0.5, 2.5, 10}, Label{"endpoint", "analyze"})
	h.Observe(0.4)
	h.Observe(3)
	h.Observe(99)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	series := parseProm(t, out)

	want := map[string]float64{
		`netloc_http_requests_total{endpoint="analyze"}`:         7,
		`netloc_http_requests_total{endpoint="traces"}`:          2,
		`netloc_http_inflight`:                                   1,
		`netloc_cache_entries`:                                   42,
		`netloc_latency_ms_bucket{endpoint="analyze",le="0.5"}`:  1,
		`netloc_latency_ms_bucket{endpoint="analyze",le="2.5"}`:  1,
		`netloc_latency_ms_bucket{endpoint="analyze",le="10"}`:   2,
		`netloc_latency_ms_bucket{endpoint="analyze",le="+Inf"}`: 3,
		`netloc_latency_ms_count{endpoint="analyze"}`:            3,
	}
	for key, v := range want {
		got, ok := series[key]
		if !ok {
			t.Errorf("missing series %q in:\n%s", key, out)
			continue
		}
		if got != v {
			t.Errorf("%s = %v, want %v", key, got, v)
		}
	}
	if got := series[`netloc_latency_ms_sum{endpoint="analyze"}`]; got != 0.4+3+99 {
		t.Errorf("sum = %v", got)
	}
	// One family header per name, before its series.
	if strings.Count(out, "# TYPE netloc_http_requests_total counter") != 1 {
		t.Errorf("family header repeated or missing:\n%s", out)
	}
	if !strings.Contains(out, "# HELP netloc_http_requests_total Total HTTP requests.") {
		t.Errorf("missing HELP line:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE netloc_latency_ms histogram") {
		t.Errorf("missing histogram TYPE:\n%s", out)
	}
}

// TestHistogramObserveNaNIgnored is the regression test for the NaN
// guard: NaN compares false against every bound, so before the guard it
// landed in the +Inf bucket and poisoned the sum (NaN is absorbing),
// wrecking every later quantile estimate.
func TestHistogramObserveNaNIgnored(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{1, 10})
	h.Observe(2)
	h.Observe(math.NaN())
	h.Observe(5)
	s := h.Snapshot()
	if s.Count != 2 {
		t.Errorf("count = %d, want 2 (NaN observed)", s.Count)
	}
	if s.Sum != 7 {
		t.Errorf("sum = %v, want 7 (NaN poisoned it)", s.Sum)
	}
	if got := s.Cumulative[len(s.Cumulative)-1]; got != 2 {
		t.Errorf("+Inf bucket = %d, want 2", got)
	}
}

// TestPrometheusLabelEscaping pins that label values containing quotes,
// backslashes, and newlines survive text exposition: the output still
// parses line-by-line (a raw newline would shear the sample in two) and
// each value round-trips to its escaped form. Go's %q escaping agrees
// with the Prometheus text format for exactly these characters.
func TestPrometheusLabelEscaping(t *testing.T) {
	cases := []struct {
		raw     string // label value as registered
		escaped string // how it must appear between the quotes
	}{
		{`plain`, `plain`},
		{`quote"inside`, `quote\"inside`},
		{`back\slash`, `back\\slash`},
		{"line\nbreak", `line\nbreak`},
		{"all\"three\\here\n", `all\"three\\here\n`},
	}
	r := NewRegistry()
	for i, c := range cases {
		r.Counter("netloc_escape_test_total", "Escaping.", Label{"v", c.raw}).Add(int64(i) + 1)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	series := parseProm(t, buf.String()) // fails on any sheared line
	for i, c := range cases {
		key := `netloc_escape_test_total{v="` + c.escaped + `"}`
		got, ok := series[key]
		if !ok {
			t.Errorf("case %d: missing series %s in:\n%s", i, key, buf.String())
			continue
		}
		if got != float64(i)+1 {
			t.Errorf("case %d: %s = %v, want %d", i, key, got, i+1)
		}
	}
	// Each distinct raw value stayed a distinct series.
	if n := strings.Count(buf.String(), "netloc_escape_test_total{"); n != len(cases) {
		t.Errorf("sample lines = %d, want %d", n, len(cases))
	}
}

func TestPrometheusBucketsCumulativeMonotone(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2, 3, 4})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i % 6))
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	last := -1.0
	n := 0
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, "h_bucket") {
			continue
		}
		n++
		var v float64
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &v); err != nil {
			t.Fatalf("bad bucket line %q", line)
		}
		if v < last {
			t.Fatalf("bucket counts not cumulative: %q after %g", line, last)
		}
		last = v
	}
	if n != 5 { // 4 bounds + +Inf
		t.Fatalf("bucket lines = %d, want 5", n)
	}
	if last != 100 {
		t.Fatalf("+Inf bucket = %g, want 100", last)
	}
}
