// Package obs is the repo's dependency-free observability layer, shared
// by the CLI (cmd/locality -v), the daemon (cmd/netlocd, internal/service
// /metrics and /v1/debug/runs), and the library packages.
//
// It provides two independent pieces:
//
//   - A span/stage tracer (Span, Tracer): the analysis pipeline wraps its
//     stages — workload generation, accumulation, metric computation,
//     mapping, topology model runs, simulation — in nested spans carrying
//     durations and integer counts (events, packets, hops, bytes).
//     Completed root spans are kept in a bounded ring of recent runs that
//     the service serves at /v1/debug/runs and the CLI summarizes on
//     stderr. All span methods are safe on a nil receiver, so
//     uninstrumented call paths pay a single pointer test and allocate
//     nothing.
//
//   - A unified metrics registry (Registry, Counter, Gauge, Histogram in
//     registry.go): named, optionally labeled metrics rendered both as
//     JSON snapshots and as Prometheus text exposition (prom.go).
//
// Instrumentation never feeds back into analysis results: spans and
// metrics are write-only from the pipeline's point of view, so output
// bytes stay identical whether or not observability is attached (pinned
// by TestReportJSONUnchangedByInstrumentation).
package obs

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// maxChildren bounds the recorded children of one span so a pathological
// grid cannot grow a run record without limit; further children still
// function (timings, counts) but are dropped from the recorded tree and
// tallied in DroppedChildren.
const maxChildren = 128

// Span is one timed stage of a pipeline run. Spans nest: Start creates a
// child recorded under its parent. The zero of the API is a nil *Span,
// on which every method is a no-op, so instrumented code needs no "is
// tracing on" branches.
type Span struct {
	name  string
	label string
	start time.Time

	mu       sync.Mutex
	dur      time.Duration
	done     bool
	counts   map[string]int64
	children []*Span
	dropped  int
	onEnd    func(*Span)
	runID    int64
}

func newSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Start creates and records a child span. Safe for concurrent use: grid
// cells running in parallel may Start children of one parent.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(name)
	s.mu.Lock()
	if len(s.children) < maxChildren {
		s.children = append(s.children, c)
	} else {
		s.dropped++
	}
	s.mu.Unlock()
	return c
}

// SetLabel attaches a free-form instance label (e.g. "LULESH/64") so
// repeated stages keep one aggregatable name while staying tellable
// apart in the run record.
func (s *Span) SetLabel(label string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.label = label
	s.mu.Unlock()
}

// Add accumulates an integer count (events, packets, hops, bytes) on the
// span.
func (s *Span) Add(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counts == nil {
		s.counts = make(map[string]int64, 4)
	}
	s.counts[key] += v
	s.mu.Unlock()
}

// End freezes the span's duration. Ending twice keeps the first
// duration. Ending a root span created by Tracer.StartRun records the
// run in the tracer's ring.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.done {
		s.done = true
		s.dur = time.Since(s.start)
	}
	onEnd := s.onEnd
	s.onEnd = nil
	s.mu.Unlock()
	if onEnd != nil {
		onEnd(s)
	}
}

// SpanData is the immutable, JSON-encodable snapshot of a span tree.
type SpanData struct {
	Name  string    `json:"name"`
	Label string    `json:"label,omitempty"`
	Start time.Time `json:"start"`
	// DurationMS is the stage wall time in milliseconds; for a span that
	// has not Ended yet it is the time elapsed so far.
	DurationMS      float64          `json:"duration_ms"`
	Counts          map[string]int64 `json:"counts,omitempty"`
	Children        []SpanData       `json:"children,omitempty"`
	DroppedChildren int              `json:"dropped_children,omitempty"`
	// Ended reports whether End() ran before this snapshot — the invariant
	// span-leak tests assert on error paths. Excluded from JSON so
	// /v1/debug/runs bytes are unchanged by its existence.
	Ended bool `json:"-"`
}

// Data snapshots the span tree. Safe to call concurrently with further
// Start/Add calls (each node locks itself).
func (s *Span) Data() SpanData {
	if s == nil {
		return SpanData{}
	}
	s.mu.Lock()
	d := SpanData{
		Name:            s.name,
		Label:           s.label,
		Start:           s.start,
		DroppedChildren: s.dropped,
		Ended:           s.done,
	}
	if s.done {
		d.DurationMS = float64(s.dur) / float64(time.Millisecond)
	} else {
		d.DurationMS = float64(time.Since(s.start)) / float64(time.Millisecond)
	}
	if len(s.counts) > 0 {
		d.Counts = make(map[string]int64, len(s.counts))
		for k, v := range s.counts {
			d.Counts[k] = v
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	if len(children) > 0 {
		d.Children = make([]SpanData, len(children))
		for i, c := range children {
			d.Children[i] = c.Data()
		}
	}
	return d
}

// RunRecord is one completed root span in a tracer's ring.
type RunRecord struct {
	ID         int64     `json:"id"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Root       SpanData  `json:"root"`
}

// Tracer collects completed pipeline runs in a bounded ring, newest
// last. A nil *Tracer is a valid no-op (StartRun returns a nil span).
type Tracer struct {
	mu   sync.Mutex
	cap  int
	seq  int64
	runs []RunRecord
}

// DefaultTracerRuns is the ring capacity NewTracer applies for
// capacity <= 0.
const DefaultTracerRuns = 32

// NewTracer creates a tracer whose ring keeps the most recent capacity
// runs (DefaultTracerRuns when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTracerRuns
	}
	return &Tracer{cap: capacity}
}

// StartRun opens a root span; its End() records the run into the ring.
func (t *Tracer) StartRun(name string) *Span {
	if t == nil {
		return nil
	}
	s := newSpan(name)
	s.onEnd = t.record
	return s
}

func (t *Tracer) record(s *Span) {
	d := s.Data()
	t.mu.Lock()
	t.seq++
	id := t.seq
	t.runs = append(t.runs, RunRecord{
		ID: id, Name: d.Name, Start: d.Start, DurationMS: d.DurationMS, Root: d,
	})
	if len(t.runs) > t.cap {
		t.runs = append(t.runs[:0], t.runs[len(t.runs)-t.cap:]...)
	}
	t.mu.Unlock()
	s.mu.Lock()
	s.runID = id
	s.mu.Unlock()
}

// RunID returns the ring ID assigned when this root span Ended (0 for
// child spans, spans not started through a tracer, or spans that have
// not Ended yet). Safe on a nil receiver.
func (s *Span) RunID() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runID
}

// Run returns the recorded run with the given ID, or false when the ID
// was never assigned or its run has already been evicted from the ring.
func (t *Tracer) Run(id int64) (RunRecord, bool) {
	if t == nil {
		return RunRecord{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := len(t.runs) - 1; i >= 0; i-- {
		if t.runs[i].ID == id {
			return t.runs[i], true
		}
	}
	return RunRecord{}, false
}

// Runs returns the recorded runs, newest first.
func (t *Tracer) Runs() []RunRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]RunRecord, len(t.runs))
	for i, r := range t.runs {
		out[len(t.runs)-1-i] = r
	}
	return out
}

// Recorded returns how many runs have ever been recorded (the ring may
// hold fewer).
func (t *Tracer) Recorded() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

type ctxKey struct{}

// NewContext attaches a span to a context for request-scoped code.
func NewContext(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the context's span, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Start opens a child of the context's span (nil, and a no-op, when the
// context carries none) and returns the derived context.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	s := FromContext(ctx).Start(name)
	if s == nil {
		return ctx, nil
	}
	return NewContext(ctx, s), s
}

// stageAgg aggregates all spans sharing one name for WriteSummary.
type stageAgg struct {
	name   string
	calls  int
	total  time.Duration
	counts map[string]int64
}

// WriteSummary renders a per-stage timing table of a span tree:
// every stage name is aggregated across the tree (a Table-3 grid runs
// "generate" dozens of times), with call counts, total duration, and
// summed counts. Stages appear in first-encounter (depth-first) order.
func WriteSummary(w io.Writer, d SpanData) error {
	var order []string
	aggs := map[string]*stageAgg{}
	var walk func(d SpanData)
	walk = func(d SpanData) {
		a := aggs[d.Name]
		if a == nil {
			a = &stageAgg{name: d.Name, counts: map[string]int64{}}
			aggs[d.Name] = a
			order = append(order, d.Name)
		}
		a.calls++
		a.total += time.Duration(d.DurationMS * float64(time.Millisecond))
		for k, v := range d.Counts {
			a.counts[k] += v
		}
		for _, c := range d.Children {
			walk(c)
		}
	}
	walk(d)

	nameW, callsW, totalW := len("stage"), len("calls"), len("total")
	rows := make([][3]string, 0, len(order))
	for _, name := range order {
		a := aggs[name]
		row := [3]string{a.name, fmt.Sprintf("%d", a.calls), formatDuration(a.total)}
		rows = append(rows, row)
		if len(row[0]) > nameW {
			nameW = len(row[0])
		}
		if len(row[1]) > callsW {
			callsW = len(row[1])
		}
		if len(row[2]) > totalW {
			totalW = len(row[2])
		}
	}
	if _, err := fmt.Fprintf(w, "%-*s  %*s  %*s  %s\n", nameW, "stage", callsW, "calls", totalW, "total", "counts"); err != nil {
		return err
	}
	for i, name := range order {
		a := aggs[name]
		keys := make([]string, 0, len(a.counts))
		for k := range a.counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for j, k := range keys {
			parts[j] = fmt.Sprintf("%s=%d", k, a.counts[k])
		}
		if _, err := fmt.Fprintf(w, "%-*s  %*s  %*s  %s\n",
			nameW, rows[i][0], callsW, rows[i][1], totalW, rows[i][2], strings.Join(parts, " ")); err != nil {
			return err
		}
	}
	return nil
}

// formatDuration renders a duration compactly for summaries (µs below a
// millisecond, otherwise milliseconds with one decimal).
func formatDuration(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%dµs", d.Microseconds())
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
