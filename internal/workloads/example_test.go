package workloads_test

import (
	"fmt"

	"netloc/internal/workloads"
)

// Every workload of the paper's Table 1 is available by name and scale.
func ExampleLookup() {
	app, _ := workloads.Lookup("LULESH")
	fmt.Println(app.Name, app.RankCounts())

	tr, _ := app.Generate(64)
	fmt.Printf("%d ranks, %d events, %.0fs wall time\n",
		tr.Meta.Ranks, len(tr.Events), tr.Meta.WallTime)
	// Output:
	// LULESH [64 512]
	// 64 ranks, 18720 events, 44s wall time
}

// ScaleAt extrapolates the Table 1 calibration to rank counts the paper
// never measured, using power-law fits over the published scales.
func ExampleApp_ScaleAt() {
	app, _ := workloads.Lookup("AMG")
	s, _ := app.ScaleAt(4096)
	fmt.Printf("AMG at %d ranks: ~%.0f MB, 100%% p2p\n", s.Ranks, s.VolMB)
	// Output:
	// AMG at 4096 ranks: ~3351 MB, 100% p2p
}
