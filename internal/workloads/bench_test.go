package workloads

import "testing"

func benchGenerate(b *testing.B, app string, ranks int) {
	b.Helper()
	a, err := Lookup(app)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Generate(ranks); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateLULESH64(b *testing.B)  { benchGenerate(b, "LULESH", 64) }
func BenchmarkGenerateLULESH512(b *testing.B) { benchGenerate(b, "LULESH", 512) }
func BenchmarkGenerateAMG1728(b *testing.B)   { benchGenerate(b, "AMG", 1728) }
func BenchmarkGenerateCNS1024(b *testing.B)   { benchGenerate(b, "Boxlib CNS", 1024) }
func BenchmarkGeneratePARTISN(b *testing.B)   { benchGenerate(b, "PARTISN", 168) }
func BenchmarkGenerateBigFFT1024(b *testing.B) {
	benchGenerate(b, "BigFFT", 1024)
}
