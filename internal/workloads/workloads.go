// Package workloads generates synthetic dumpi-like traces for the 16 DOE
// exascale proxy mini-apps the study analyzes.
//
// The original study consumes real MPI traces from the Sandia dumpi
// repository. Those traces are not redistributable here, so each mini-app
// is replaced by a deterministic generator that reproduces the app's
// published communication *structure* (3D 27-point stencils, 2D KBA
// sweeps, FFT transposes, multigrid level hierarchies, AMR refinement,
// CG solvers, crystal-router staged exchange) with volumes, execution
// times, and point-to-point/collective splits calibrated to the paper's
// Table 1. Every locality metric of the study is a pure function of the
// (source, destination, bytes, op) stream, so matching the spatial pattern
// and volume mix exercises the same code paths and preserves the shape of
// every downstream result.
package workloads

import (
	"fmt"
	"math"
	"sort"

	"netloc/internal/trace"
)

// Scale is one calibrated configuration of an application (one row of the
// paper's Table 1).
type Scale struct {
	Ranks int
	// VolMB is the caller-side traffic volume in megabytes (10^6 bytes),
	// point-to-point plus collective.
	VolMB float64
	// RateMBps is the throughput column (Vol./t); the execution time is
	// derived as VolMB / RateMBps, which is more precise than the
	// table's rounded time column.
	RateMBps float64
	// P2PPct is the point-to-point share of the volume in percent.
	P2PPct float64
}

// Time returns the execution time in seconds.
func (s Scale) Time() float64 { return s.VolMB / s.RateMBps }

// App is a synthetic workload generator for one mini-app.
type App struct {
	// Name is the application name as used in the paper's tables.
	Name string
	// Star marks applications that use MPI derived datatypes in the
	// original traces (the paper sizes those at one byte per element).
	Star bool
	// Scales lists the calibrated configurations.
	Scales []Scale
	// pattern builds the communication pattern for one scale.
	pattern func(s Scale) (*spec, error)
}

// Generate produces the synthetic trace for the given rank count, which
// must be one of the app's scales.
func (a *App) Generate(ranks int) (*trace.Trace, error) {
	for _, s := range a.Scales {
		if s.Ranks == ranks {
			sp, err := a.pattern(s)
			if err != nil {
				return nil, fmt.Errorf("workloads: %s/%d: %w", a.Name, ranks, err)
			}
			sp.name = a.Name
			return sp.build()
		}
	}
	return nil, fmt.Errorf("workloads: %s has no %d-rank configuration", a.Name, ranks)
}

// RankCounts returns the app's configured scales in ascending order.
func (a *App) RankCounts() []int {
	out := make([]int, len(a.Scales))
	for i, s := range a.Scales {
		out[i] = s.Ranks
	}
	sort.Ints(out)
	return out
}

// ScaleFor returns the calibration row for a rank count.
func (a *App) ScaleFor(ranks int) (Scale, error) {
	for _, s := range a.Scales {
		if s.Ranks == ranks {
			return s, nil
		}
	}
	return Scale{}, fmt.Errorf("workloads: %s has no %d-rank configuration", a.Name, ranks)
}

// pairMsg is a logical point-to-point exchange: weight units of relative
// volume from src to dst, split into msgs messages.
type pairMsg struct {
	src, dst int
	weight   float64
	msgs     int
}

// collCall is a collective operation repeated calls times, recorded at
// every rank with a relative per-event weight.
type collCall struct {
	op     trace.Op
	root   int
	weight float64
	calls  int
}

// spec is an uncalibrated communication pattern; build scales it to the
// target volumes and assembles the trace.
type spec struct {
	name       string
	ranks      int
	wall       float64 // seconds
	targetP2P  float64 // bytes
	targetColl float64 // bytes
	p2p        []pairMsg
	colls      []collCall
}

func newSpec(s Scale) *spec {
	vol := s.VolMB * 1e6
	return &spec{
		ranks:      s.Ranks,
		wall:       s.Time(),
		targetP2P:  vol * s.P2PPct / 100,
		targetColl: vol * (100 - s.P2PPct) / 100,
	}
}

// send adds a logical p2p exchange (ignored when weight is zero or the
// endpoints coincide).
func (sp *spec) send(src, dst int, weight float64, msgs int) {
	if weight <= 0 || src == dst {
		return
	}
	if msgs < 1 {
		msgs = 1
	}
	sp.p2p = append(sp.p2p, pairMsg{src: src, dst: dst, weight: weight, msgs: msgs})
}

// collective adds a collective call series.
func (sp *spec) collective(op trace.Op, root int, weight float64, calls int) {
	if calls < 1 || weight < 0 {
		return
	}
	sp.colls = append(sp.colls, collCall{op: op, root: root, weight: weight, calls: calls})
}

// build calibrates the pattern to the target volumes and assembles a
// validated trace. P2P weights are scaled so the summed message bytes hit
// targetP2P; collective weights so the caller-side event bytes (one event
// per rank per call) hit targetColl.
func (sp *spec) build() (*trace.Trace, error) {
	if sp.ranks <= 0 {
		return nil, fmt.Errorf("workloads: non-positive rank count %d", sp.ranks)
	}
	if sp.targetP2P > 0 && len(sp.p2p) == 0 {
		return nil, fmt.Errorf("workloads: %s wants %g p2p bytes but has no p2p pattern", sp.name, sp.targetP2P)
	}
	if sp.targetColl > 0 && len(sp.colls) == 0 {
		return nil, fmt.Errorf("workloads: %s wants %g collective bytes but has no collective pattern", sp.name, sp.targetColl)
	}

	var sumP2P float64
	for _, p := range sp.p2p {
		sumP2P += p.weight
	}
	var sumColl float64
	for _, c := range sp.colls {
		sumColl += c.weight * float64(c.calls) * float64(sp.ranks)
	}

	nEvents := 0
	for _, p := range sp.p2p {
		nEvents += p.msgs
	}
	for _, c := range sp.colls {
		nEvents += c.calls * sp.ranks
	}

	t := &trace.Trace{
		Meta:   trace.Meta{App: sp.name, Ranks: sp.ranks, WallTime: sp.wall},
		Events: make([]trace.Event, 0, nEvents),
	}
	wallNanos := sp.wall * 1e9
	if math.IsInf(wallNanos, 0) || math.IsNaN(wallNanos) || wallNanos < 0 {
		return nil, fmt.Errorf("workloads: %s has invalid wall time %g", sp.name, sp.wall)
	}
	dt := uint64(1)
	if nEvents > 0 && wallNanos >= 1 {
		dt = uint64(wallNanos / float64(nEvents))
		if dt == 0 {
			dt = 1
		}
	}
	clock := uint64(0)
	stamp := func(e trace.Event) trace.Event {
		e.Start = clock
		e.End = clock + dt
		clock += dt
		return e
	}

	for _, p := range sp.p2p {
		total := uint64(math.Round(p.weight / sumP2P * sp.targetP2P))
		per := total / uint64(p.msgs)
		rem := total - per*uint64(p.msgs)
		for i := 0; i < p.msgs; i++ {
			b := per
			if i == 0 {
				b += rem
			}
			t.Events = append(t.Events, stamp(trace.Event{
				Rank: p.src, Op: trace.OpSend, Peer: p.dst, Root: -1, Bytes: b,
			}))
		}
	}
	for _, c := range sp.colls {
		var b uint64
		if sumColl > 0 && sp.targetColl > 0 {
			b = uint64(math.Round(c.weight / sumColl * sp.targetColl))
		}
		root := c.root
		if root < 0 {
			root = 0
		}
		for call := 0; call < c.calls; call++ {
			for r := 0; r < sp.ranks; r++ {
				ev := trace.Event{Rank: r, Op: c.op, Peer: -1, Root: -1, Bytes: b}
				switch c.op {
				case trace.OpBcast, trace.OpReduce, trace.OpGather, trace.OpGatherv,
					trace.OpScatter, trace.OpScatterv:
					ev.Root = root
				}
				t.Events = append(t.Events, stamp(ev))
			}
		}
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("workloads: %s generated invalid trace: %w", sp.name, err)
	}
	return t, nil
}

// registry of all applications, populated by the per-app files' init-free
// constructors.
var registry = func() map[string]*App {
	apps := []*App{
		amgApp(), amrApp(), bigFFTApp(), cnsApp(), boxMGApp(), mocfeApp(),
		nekboneApp(), crystalApp(), cmcApp(), luleshApp(), fillBoundaryApp(),
		miniFEApp(), multiGridCApp(), partisnApp(), snapApp(),
	}
	m := make(map[string]*App, len(apps))
	for _, a := range apps {
		m[a.Name] = a
	}
	return m
}()

// Lookup returns the app with the given name.
func Lookup(name string) (*App, error) {
	a, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown application %q", name)
	}
	return a, nil
}

// Names returns all application names in alphabetical order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns all applications sorted by name.
func All() []*App {
	out := make([]*App, 0, len(registry))
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}
