package workloads

import (
	"math"
	"testing"
)

func TestScaleAtConfiguredScalePassesThrough(t *testing.T) {
	a, _ := Lookup("AMG")
	s, err := a.ScaleAt(216)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := a.ScaleFor(216)
	if s != want {
		t.Fatalf("ScaleAt(216) = %+v, want table row %+v", s, want)
	}
}

func TestScaleAtExtrapolates(t *testing.T) {
	a, _ := Lookup("LULESH")
	s, err := a.ScaleAt(4096) // 16^3
	if err != nil {
		t.Fatal(err)
	}
	if s.Ranks != 4096 {
		t.Fatalf("ranks = %d", s.Ranks)
	}
	// Volume must exceed the largest configured scale and follow the
	// power law: LULESH goes 3585 MB at 64 to 33548 MB at 512, i.e.
	// V ~ ranks^1.07; at 4096 that is roughly 313 GB.
	big, _ := a.ScaleFor(512)
	if s.VolMB <= big.VolMB {
		t.Fatalf("extrapolated volume %v not above largest scale %v", s.VolMB, big.VolMB)
	}
	b := math.Log(33548/3585.0) / math.Log(512/64.0)
	want := 33548 * math.Pow(4096/512.0, b)
	if math.Abs(s.VolMB-want) > 0.05*want {
		t.Fatalf("extrapolated volume %v, want ~%v", s.VolMB, want)
	}
	if s.P2PPct != 100 {
		t.Fatalf("p2p share = %v", s.P2PPct)
	}
	if s.RateMBps <= 0 {
		t.Fatal("rate missing")
	}
}

func TestScaleAtInterpolates(t *testing.T) {
	// A rank count between configured scales lands between their values.
	a, _ := Lookup("AMG")
	s, err := a.ScaleAt(512)
	if err != nil {
		t.Fatal(err)
	}
	lo, _ := a.ScaleFor(216)
	hi, _ := a.ScaleFor(1728)
	if s.VolMB <= lo.VolMB || s.VolMB >= hi.VolMB {
		t.Fatalf("interpolated volume %v outside (%v, %v)", s.VolMB, lo.VolMB, hi.VolMB)
	}
}

func TestScaleAtSingleScaleApps(t *testing.T) {
	for _, name := range []string{"PARTISN", "SNAP"} {
		a, _ := Lookup(name)
		if _, err := a.ScaleAt(500); err == nil {
			t.Errorf("%s: single-scale extrapolation accepted", name)
		}
		// The configured scale still works.
		if _, err := a.ScaleAt(168); err != nil {
			t.Errorf("%s: configured scale failed: %v", name, err)
		}
	}
}

func TestScaleAtValidation(t *testing.T) {
	a, _ := Lookup("AMG")
	if _, err := a.ScaleAt(0); err == nil {
		t.Fatal("zero ranks accepted")
	}
	if _, err := a.ScaleAt(-5); err == nil {
		t.Fatal("negative ranks accepted")
	}
}

func TestGenerateAtBeyondPaperScale(t *testing.T) {
	a, _ := Lookup("LULESH")
	tr, err := a.GenerateAt(4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Meta.Ranks != 4096 {
		t.Fatalf("ranks = %d", tr.Meta.Ranks)
	}
	p2p, coll := tr.TotalBytes()
	if coll != 0 {
		t.Fatalf("collective bytes = %d", coll)
	}
	s, _ := a.ScaleAt(4096)
	got := float64(p2p)
	want := s.VolMB * 1e6
	if math.Abs(got-want) > 0.01*want {
		t.Fatalf("volume %v, want %v", got, want)
	}
}

func TestGenerateAtUnfactorableRanksFails(t *testing.T) {
	// 4099 is prime: no near-cubic 3D factorization for a stencil app.
	a, _ := Lookup("LULESH")
	if _, err := a.GenerateAt(4099); err == nil {
		t.Fatal("prime rank count accepted for a 3D stencil app")
	}
}

func TestGenerateAtMatchesGenerateOnTableScales(t *testing.T) {
	a, _ := Lookup("MiniFE")
	t1, err := a.Generate(144)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := a.GenerateAt(144)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Events) != len(t2.Events) || t1.Meta != t2.Meta {
		t.Fatal("GenerateAt diverges from Generate on a configured scale")
	}
}
