package workloads

import "netloc/internal/trace"

// This file defines the 2D transport-sweep applications PARTISN and SNAP.
// Both decompose space over a 2D processor grid (the KBA scheme) and
// pipeline wavefront sweeps through face neighbors; SNAP additionally
// redistributes work across distant row blocks, which stretches its rank
// distance far beyond PARTISN's.

// partisnApp models the PARTISN SN transport proxy at 168 ranks (a 12x14
// KBA grid): heavy face exchanges with the four sweep neighbors, a
// negligible-volume metadata message to every other rank (which is why
// Table 3 reports peers = 167 while the rank distance stays at ~14), and
// a whisper of collectives.
func partisnApp() *App {
	return &App{
		Name: "PARTISN",
		Star: true,
		Scales: []Scale{
			{Ranks: 168, VolMB: 42123, RateMBps: 0.02, P2PPct: 99.96},
		},
		pattern: func(s Scale) (*spec, error) {
			g, err := factor2(s.Ranks)
			if err != nil {
				return nil, err
			}
			sp := newSpec(s)
			const iters = 30
			for id := 0; id < g.ranks(); id++ {
				cx, cy := g.coords(id)
				for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
					nx, ny := cx+d[0], cy+d[1]
					if g.inBounds(nx, ny) {
						sp.send(id, g.id(nx, ny), 100, iters)
					}
				}
				// Metadata chatter: one tiny message to every other rank,
				// far below the 90% coverage threshold in aggregate.
				for other := 0; other < g.ranks(); other++ {
					if other != id {
						sp.send(id, other, 0.0005, 1)
					}
				}
			}
			sp.collective(trace.OpAllreduce, -1, 1, 10)
			return sp, nil
		},
	}
}

// snapApp models the SNAP transport proxy at 168 ranks: KBA face sweeps
// plus heavy energy-group pencil redistribution along full columns of the
// processor grid. Column partners sit whole row-strides apart in rank ID,
// which reproduces SNAP's large rank distance (139 in Table 3) next to
// PARTISN's small one on the same rank count.
func snapApp() *App {
	return &App{
		Name: "SNAP",
		Star: true,
		Scales: []Scale{
			{Ranks: 168, VolMB: 128561, RateMBps: 0.11, P2PPct: 100},
		},
		pattern: func(s Scale) (*spec, error) {
			g, err := factor2(s.Ranks)
			if err != nil {
				return nil, err
			}
			sp := newSpec(s)
			const iters = 25
			for id := 0; id < g.ranks(); id++ {
				cx, cy := g.coords(id)
				// Sweep faces (moderate volume).
				for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
					nx, ny := cx+d[0], cy+d[1]
					if g.inBounds(nx, ny) {
						sp.send(id, g.id(nx, ny), 30, iters)
					}
				}
				// Group pencils: exchange with every rank in the same
				// column (large rank-ID strides) and, lighter, the rest
				// of the same row.
				for oy := 0; oy < g.y; oy++ {
					if oy != cy {
						sp.send(id, g.id(cx, oy), 60, iters)
					}
				}
				for ox := 0; ox < g.x; ox++ {
					if ox != cx {
						sp.send(id, g.id(ox, cy), 4, iters/2)
					}
				}
			}
			return sp, nil
		},
	}
}
