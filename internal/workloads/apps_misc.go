package workloads

import "netloc/internal/trace"

// This file defines the irregular applications: Boxlib CNS, AMR_Miniapp,
// and Crystal Router.

// cnsApp models the Boxlib CNS compressible Navier-Stokes proxy: a deep
// (two-cell) ghost region makes both the 27-point neighborhood and the
// second shell communication partners, blocks are distributed to ranks
// along a Morton space-filling curve (the Boxlib distribution scheme,
// which is what stretches CNS's rank distance far beyond the
// grid-numbered stencil apps while keeping its selectivity small), and
// box metadata is chattered to every rank — which is why Table 3 reports
// peers = ranks-1.
func cnsApp() *App {
	return &App{
		Name: "Boxlib CNS",
		Star: true,
		Scales: []Scale{
			{Ranks: 64, VolMB: 9292, RateMBps: 16.24, P2PPct: 100},
			{Ranks: 256, VolMB: 15227, RateMBps: 90.08, P2PPct: 100},
			{Ranks: 1024, VolMB: 34131, RateMBps: 505.4, P2PPct: 100},
		},
		pattern: func(s Scale) (*spec, error) {
			g, err := factor3(s.Ranks)
			if err != nil {
				return nil, err
			}
			sp := newSpec(s)
			const iters = 12
			rankOf := mortonOrder(g)
			shell := func(stride int, w stencilWeights, msgs int) {
				for idx := 0; idx < g.ranks(); idx++ {
					src := rankOf[idx]
					g.eachStencilNeighbor(idx, stride, func(nb, order int) {
						var weight float64
						switch order {
						case 1:
							weight = w.face
						case 2:
							weight = w.edge
						default:
							weight = w.corner
						}
						sp.send(src, rankOf[nb], weight, msgs)
					})
				}
			}
			// First shell: heavy; second shell: moderate.
			shell(1, stencilWeights{face: 1024, edge: 32, corner: 1}, iters)
			shell(2, stencilWeights{face: 128, edge: 4, corner: 0.2}, iters/2)
			// Box metadata chatter to everyone (tiny).
			for src := 0; src < s.Ranks; src++ {
				for dst := 0; dst < s.Ranks; dst++ {
					if src != dst {
						sp.send(src, dst, 0.02, 1)
					}
				}
			}
			return sp, nil
		},
	}
}

// amrApp models the AMR_Miniapp adaptive-mesh proxy: a face-neighbor base
// exchange plus deterministic pseudo-random refinement patches that create
// additional, spatially scattered partners with power-law volumes, and a
// regrid phase in which rank 0 redistributes patch ownership — together
// reproducing the wide peer counts (39 at 64 ranks, 490 at 1728) and the
// largest selectivity of the workload set.
func amrApp() *App {
	return &App{
		Name: "AMR_Miniapp",
		Scales: []Scale{
			{Ranks: 64, VolMB: 3106, RateMBps: 240.3, P2PPct: 99.66},
			{Ranks: 1728, VolMB: 96969, RateMBps: 2271, P2PPct: 99.45},
		},
		pattern: func(s Scale) (*spec, error) {
			g, err := factor3(s.Ranks)
			if err != nil {
				return nil, err
			}
			sp := newSpec(s)
			const iters = 10
			addStencil(sp, g, 1, stencilWeights{face: 24, edge: 2, corner: 0.5}, iters)
			// Refinement patches: each rank gets a deterministic set of
			// extra partners with power-law volumes; patch owners cluster
			// loosely around the rank but reach across the machine.
			rng := newXorshift(uint64(s.Ranks)*2654435761 + 17)
			extra := s.Ranks / 4
			if extra > 28 {
				extra = 28
			}
			for r := 0; r < s.Ranks; r++ {
				for i := 0; i < extra; i++ {
					d := rng.intn(s.Ranks)
					if d == r {
						continue
					}
					w := 12.0 / float64(1+i) // power-law patch sizes
					sp.send(r, d, w, 2)
				}
			}
			// Regrid: rank 0 redistributes patches to roughly a quarter
			// of the ranks with small messages.
			for d := 1; d < s.Ranks; d += 4 {
				sp.send(0, d, 0.4, 1)
				sp.send(d, 0, 0.4, 1)
			}
			sp.collective(trace.OpAllreduce, -1, 1, 8)
			return sp, nil
		},
	}
}

// crystalApp models the NEK Crystal Router: the generalized hypercube
// (dimension-exchange) algorithm in which rank r talks to r XOR 2^k for
// every bit k — log2(n) partners carrying near-equal volume, matching the
// small peer counts (4/8/11) and near-peer selectivity of Table 3.
func crystalApp() *App {
	return &App{
		Name: "Crystal Router",
		Scales: []Scale{
			{Ranks: 10, VolMB: 133.8, RateMBps: 930.3, P2PPct: 100},
			{Ranks: 100, VolMB: 3439.9, RateMBps: 4854, P2PPct: 100},
			{Ranks: 1000, VolMB: 115521, RateMBps: 90491, P2PPct: 100},
		},
		pattern: func(s Scale) (*spec, error) {
			sp := newSpec(s)
			const iters = 10
			for r := 0; r < s.Ranks; r++ {
				for bit := 1; bit < s.Ranks; bit <<= 1 {
					d := r ^ bit
					if d >= s.Ranks {
						continue
					}
					// Stages carry slightly decaying volume: low bits
					// exchange after most folding has happened.
					w := 16.0 / float64(1+popcountBelow(bit))
					sp.send(r, d, w, iters)
				}
			}
			return sp, nil
		},
	}
}

// popcountBelow returns the bit index of a power of two (log2).
func popcountBelow(bit int) int {
	n := 0
	for bit > 1 {
		bit >>= 1
		n++
	}
	return n
}
