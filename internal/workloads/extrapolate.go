package workloads

import (
	"fmt"
	"math"
	"sort"

	"netloc/internal/trace"
)

// ScaleAt returns a calibration row for an arbitrary rank count: the
// published Table 1 row when the count is one of the app's configured
// scales, otherwise a power-law extrapolation of volume and throughput
// over the configured scales (communication volume and rate of these
// mini-apps follow V ∝ ranks^b remarkably well, which is how the study's
// own Table 1 columns scale). Extrapolation needs at least two configured
// scales and keeps the p2p/collective split of the nearest configured
// scale.
func (a *App) ScaleAt(ranks int) (Scale, error) {
	if ranks <= 0 {
		return Scale{}, fmt.Errorf("workloads: non-positive rank count %d", ranks)
	}
	if s, err := a.ScaleFor(ranks); err == nil {
		return s, nil
	}
	if len(a.Scales) < 2 {
		return Scale{}, fmt.Errorf("workloads: %s has a single configured scale; cannot extrapolate to %d ranks", a.Name, ranks)
	}
	volMB, err := a.fitPowerLaw(ranks, func(s Scale) float64 { return s.VolMB })
	if err != nil {
		return Scale{}, err
	}
	rate, err := a.fitPowerLaw(ranks, func(s Scale) float64 { return s.RateMBps })
	if err != nil {
		return Scale{}, err
	}
	return Scale{
		Ranks:    ranks,
		VolMB:    volMB,
		RateMBps: rate,
		P2PPct:   a.nearestScale(ranks).P2PPct,
	}, nil
}

// fitPowerLaw least-squares fits log(metric) = a + b·log(ranks) over the
// configured scales and evaluates it at the requested rank count.
func (a *App) fitPowerLaw(ranks int, metric func(Scale) float64) (float64, error) {
	var sx, sy, sxx, sxy float64
	n := 0
	for _, s := range a.Scales {
		v := metric(s)
		if v <= 0 {
			return 0, fmt.Errorf("workloads: %s has non-positive metric at %d ranks", a.Name, s.Ranks)
		}
		x := math.Log(float64(s.Ranks))
		y := math.Log(v)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		n++
	}
	den := float64(n)*sxx - sx*sx
	if den == 0 {
		return 0, fmt.Errorf("workloads: %s scales are degenerate for fitting", a.Name)
	}
	b := (float64(n)*sxy - sx*sy) / den
	c := (sy - b*sx) / float64(n)
	return math.Exp(c + b*math.Log(float64(ranks))), nil
}

// nearestScale returns the configured scale whose rank count is closest in
// log space.
func (a *App) nearestScale(ranks int) Scale {
	scales := append([]Scale(nil), a.Scales...)
	sort.Slice(scales, func(i, j int) bool { return scales[i].Ranks < scales[j].Ranks })
	best := scales[0]
	bestDist := math.Inf(1)
	lr := math.Log(float64(ranks))
	for _, s := range scales {
		d := math.Abs(math.Log(float64(s.Ranks)) - lr)
		if d < bestDist {
			best, bestDist = s, d
		}
	}
	return best
}

// GenerateAt produces a synthetic trace at an arbitrary rank count using
// ScaleAt calibration. The rank count must still fit the app's structural
// constraints (e.g. the 3D apps need a near-cubic factorization).
func (a *App) GenerateAt(ranks int) (*trace.Trace, error) {
	s, err := a.ScaleAt(ranks)
	if err != nil {
		return nil, err
	}
	sp, err := a.pattern(s)
	if err != nil {
		return nil, fmt.Errorf("workloads: %s/%d: %w", a.Name, ranks, err)
	}
	sp.name = a.Name
	return sp.build()
}
