package workloads

import "netloc/internal/trace"

// This file defines the collective-dominated applications: BigFFT,
// EXMATEX CMC 2D, and CESAR MOCFE.

// bigFFTApp models the BigFFT (medium) proxy: distributed FFTs are
// transposes in which every rank ships an equal chunk to every other rank.
// The trace records them as all-gather-pattern collectives (caller-side
// chunk recorded once, replicated to all peers on the wire), which
// reproduces the (ranks-1)-fold wire amplification visible in the paper's
// packet-hop and utilization columns. No point-to-point traffic at all:
// Table 3 reports N/A for its MPI-level metrics.
func bigFFTApp() *App {
	return &App{
		Name: "BigFFT",
		Scales: []Scale{
			{Ranks: 9, VolMB: 299.2, RateMBps: 1659, P2PPct: 0},
			{Ranks: 100, VolMB: 3169, RateMBps: 6340, P2PPct: 0},
			{Ranks: 1024, VolMB: 32064, RateMBps: 17003, P2PPct: 0},
		},
		pattern: func(s Scale) (*spec, error) {
			sp := newSpec(s)
			// Forward + inverse transform per step: a handful of
			// all-to-all transposes.
			sp.collective(trace.OpAllgatherv, -1, 1, 4)
			return sp, nil
		},
	}
}

// cmcApp models EXMATEX CMC 2D (multinode): a long-running Monte-Carlo
// loop whose only communication is a stream of tiny allreduces — 16 MB
// total over minutes of runtime, the least network-bound workload in the
// set.
func cmcApp() *App {
	return &App{
		Name: "EXMATEX CMC 2D",
		Scales: []Scale{
			{Ranks: 64, VolMB: 16.0, RateMBps: 0.0190, P2PPct: 0},
			{Ranks: 256, VolMB: 16.1, RateMBps: 0.077, P2PPct: 0},
			{Ranks: 1024, VolMB: 16.4, RateMBps: 0.279, P2PPct: 0},
		},
		pattern: func(s Scale) (*spec, error) {
			sp := newSpec(s)
			sp.collective(trace.OpAllreduce, -1, 1, 40)
			sp.collective(trace.OpBarrier, -1, 0, 10)
			return sp, nil
		},
	}
}

// mocfeApp models CESAR MOCFE (method-of-characteristics neutronics):
// ~94% of the volume is allreduce flux synchronization; the remaining p2p
// exchanges angular boundary fluxes with a near-uniform set of partners
// along the ring and across planes (peers 12..20, high selectivity
// relative to peers per Table 3).
func mocfeApp() *App {
	return &App{
		Name: "CESAR MOCFE",
		Star: true,
		Scales: []Scale{
			{Ranks: 64, VolMB: 19.0, RateMBps: 50.3, P2PPct: 5.01},
			{Ranks: 256, VolMB: 81.6, RateMBps: 74.11, P2PPct: 5.51},
			{Ranks: 1024, VolMB: 686.2, RateMBps: 173.9, P2PPct: 6.96},
		},
		pattern: func(s Scale) (*spec, error) {
			sp := newSpec(s)
			// Spatial ring partners ±1..±k (light) plus angular-domain
			// partners a quarter, a half, and three quarters of the rank
			// space away (heavy, near-equal) — the angular decomposition
			// is what stretches MOCFE's rank distance to roughly 3/4 of
			// the rank count in Table 3 despite its tiny peer set.
			k := 4
			if s.Ranks >= 256 {
				k = 8
			}
			quarter := s.Ranks / 4
			const iters = 6
			for r := 0; r < s.Ranks; r++ {
				for i := 1; i <= k; i++ {
					w := 3.0 / float64(i)
					if d := r + i; d < s.Ranks {
						sp.send(r, d, w, iters)
					}
					if d := r - i; d >= 0 {
						sp.send(r, d, w, iters)
					}
				}
				for q := 1; q <= 3; q++ {
					if d := r + q*quarter; d < s.Ranks {
						sp.send(r, d, 30, iters)
					}
					if d := r - q*quarter; d >= 0 {
						sp.send(r, d, 30, iters)
					}
				}
			}
			sp.collective(trace.OpAllreduce, -1, 1, 12)
			return sp, nil
		},
	}
}
