package workloads

import (
	"math"
	"reflect"
	"testing"

	"netloc/internal/comm"
	"netloc/internal/trace"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"AMG", "AMR_Miniapp", "BigFFT", "Boxlib CNS", "Boxlib MultiGrid C",
		"CESAR MOCFE", "CESAR Nekbone", "Crystal Router", "EXMATEX CMC 2D",
		"FillBoundary", "LULESH", "MiniFE", "MultiGrid_C", "PARTISN", "SNAP",
	}
	got := Names()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	if len(All()) != len(want) {
		t.Fatalf("All() has %d apps", len(All()))
	}
}

func TestLookup(t *testing.T) {
	a, err := Lookup("LULESH")
	if err != nil || a.Name != "LULESH" {
		t.Fatalf("Lookup(LULESH) = %v, %v", a, err)
	}
	if _, err := Lookup("NoSuchApp"); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestScalesMatchTable1(t *testing.T) {
	// Spot-check rank counts per app against Table 1.
	want := map[string][]int{
		"AMG":                {8, 27, 216, 1728},
		"AMR_Miniapp":        {64, 1728},
		"BigFFT":             {9, 100, 1024},
		"Boxlib CNS":         {64, 256, 1024},
		"Boxlib MultiGrid C": {64, 256, 1024},
		"CESAR MOCFE":        {64, 256, 1024},
		"CESAR Nekbone":      {64, 256, 1024},
		"Crystal Router":     {10, 100, 1000},
		"EXMATEX CMC 2D":     {64, 256, 1024},
		"LULESH":             {64, 512},
		"FillBoundary":       {125, 1000},
		"MiniFE":             {18, 144, 1152},
		"MultiGrid_C":        {125, 1000},
		"PARTISN":            {168},
		"SNAP":               {168},
	}
	for name, scales := range want {
		a, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", name, err)
		}
		if got := a.RankCounts(); !reflect.DeepEqual(got, scales) {
			t.Errorf("%s scales = %v, want %v", name, got, scales)
		}
	}
}

func TestScaleTime(t *testing.T) {
	// PARTISN: 42123 MB at 0.02 MB/s is ~2.1e6 s (the table's 2.2E+6).
	a, _ := Lookup("PARTISN")
	s, err := a.ScaleFor(168)
	if err != nil {
		t.Fatal(err)
	}
	if tt := s.Time(); math.Abs(tt-2.1e6) > 0.1e6 {
		t.Fatalf("PARTISN time = %v", tt)
	}
	if _, err := a.ScaleFor(999); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestGenerateUnknownScale(t *testing.T) {
	a, _ := Lookup("AMG")
	if _, err := a.Generate(12345); err == nil {
		t.Fatal("unknown rank count accepted")
	}
}

// TestGenerateCalibration checks, for the smallest scale of every app,
// that the generated trace validates and that the caller-side volume and
// p2p/collective split land within 1% of Table 1.
func TestGenerateCalibration(t *testing.T) {
	for _, a := range All() {
		s := a.Scales[0]
		tr, err := a.Generate(s.Ranks)
		if err != nil {
			t.Fatalf("%s/%d: %v", a.Name, s.Ranks, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s/%d: invalid trace: %v", a.Name, s.Ranks, err)
		}
		if tr.Meta.Ranks != s.Ranks {
			t.Fatalf("%s: meta ranks %d", a.Name, tr.Meta.Ranks)
		}
		if math.Abs(tr.Meta.WallTime-s.Time()) > 1e-9*s.Time() {
			t.Fatalf("%s: wall time %v, want %v", a.Name, tr.Meta.WallTime, s.Time())
		}
		p2p, coll := tr.TotalBytes()
		total := float64(p2p + coll)
		wantTotal := s.VolMB * 1e6
		if math.Abs(total-wantTotal) > 0.01*wantTotal {
			t.Errorf("%s/%d: volume %.3g, want %.3g", a.Name, s.Ranks, total, wantTotal)
		}
		gotP2PPct := 100 * float64(p2p) / total
		if math.Abs(gotP2PPct-s.P2PPct) > 1.0 {
			t.Errorf("%s/%d: p2p share %.2f%%, want %.2f%%", a.Name, s.Ranks, gotP2PPct, s.P2PPct)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Lookup("AMR_Miniapp")
	t1, err := a.Generate(64)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := a.Generate(64)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(t1, t2) {
		t.Fatal("generation not deterministic")
	}
}

func accumulate(t *testing.T, app string, ranks int) *comm.Accumulated {
	t.Helper()
	a, err := Lookup(app)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := a.Generate(ranks)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := comm.Accumulate(tr, comm.AccumulateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return acc
}

func TestLULESHStencilShape(t *testing.T) {
	acc := accumulate(t, "LULESH", 64)
	// Interior rank of a 4x4x4 grid has 26 stencil partners.
	maxPeers := 0
	for src := 0; src < 64; src++ {
		d, _ := acc.P2P.BySource(src)
		if len(d) > maxPeers {
			maxPeers = len(d)
		}
	}
	if maxPeers != 26 {
		t.Fatalf("LULESH peers = %d, want 26", maxPeers)
	}
	// No collectives at all.
	if acc.CallerCollBytes != 0 {
		t.Fatalf("LULESH collective bytes = %d", acc.CallerCollBytes)
	}
}

func TestBigFFTHasNoP2P(t *testing.T) {
	acc := accumulate(t, "BigFFT", 9)
	if acc.P2P.TotalBytes() != 0 {
		t.Fatalf("BigFFT p2p bytes = %d", acc.P2P.TotalBytes())
	}
	// Wire traffic touches every ordered pair (all-to-all transpose).
	if acc.Wire.Pairs() != 9*8 {
		t.Fatalf("BigFFT wire pairs = %d, want 72", acc.Wire.Pairs())
	}
	// Wire amplification: each caller byte reaches ranks-1 peers.
	wantWire := acc.CallerCollBytes * 8
	if acc.Wire.TotalBytes() != wantWire {
		t.Fatalf("BigFFT wire bytes = %d, want %d", acc.Wire.TotalBytes(), wantWire)
	}
}

func TestPARTISNPeersAndDistance(t *testing.T) {
	acc := accumulate(t, "PARTISN", 168)
	// Every rank chats with everyone: peak peers = 167.
	maxPeers := 0
	for src := 0; src < 168; src++ {
		d, _ := acc.P2P.BySource(src)
		if len(d) > maxPeers {
			maxPeers = len(d)
		}
	}
	if maxPeers != 167 {
		t.Fatalf("PARTISN peers = %d, want 167", maxPeers)
	}
}

func TestCrystalRouterHypercubePartners(t *testing.T) {
	acc := accumulate(t, "Crystal Router", 10)
	// Rank 0 partners: 1, 2, 4, 8 (xor powers of two below 10).
	dsts, _ := acc.P2P.BySource(0)
	want := map[int]bool{1: true, 2: true, 4: true, 8: true}
	if len(dsts) != 4 {
		t.Fatalf("rank 0 partners = %v", dsts)
	}
	for _, d := range dsts {
		if !want[d] {
			t.Fatalf("unexpected partner %d", d)
		}
	}
}

func TestMOCFECollectiveDominated(t *testing.T) {
	acc := accumulate(t, "CESAR MOCFE", 64)
	total := acc.CallerP2PBytes + acc.CallerCollBytes
	collPct := 100 * float64(acc.CallerCollBytes) / float64(total)
	if collPct < 90 {
		t.Fatalf("MOCFE collective share = %.1f%%, want ~95%%", collPct)
	}
	// Peers: ring ±1..4 (8) plus up to three in-bounds angular quarter
	// partners = 11 (the paper reports 12).
	maxPeers := 0
	for src := 0; src < 64; src++ {
		d, _ := acc.P2P.BySource(src)
		if len(d) > maxPeers {
			maxPeers = len(d)
		}
	}
	if maxPeers != 11 {
		t.Fatalf("MOCFE peers = %d, want 11", maxPeers)
	}
}

func TestCMCTinyVolume(t *testing.T) {
	acc := accumulate(t, "EXMATEX CMC 2D", 64)
	if acc.P2P.TotalBytes() != 0 {
		t.Fatal("CMC should have no p2p")
	}
	total := float64(acc.CallerP2PBytes + acc.CallerCollBytes)
	if math.Abs(total-16.0e6) > 0.2e6 {
		t.Fatalf("CMC volume = %g, want 16 MB", total)
	}
}

func TestAMRWidePeers(t *testing.T) {
	acc := accumulate(t, "AMR_Miniapp", 64)
	maxPeers := 0
	for src := 0; src < 64; src++ {
		d, _ := acc.P2P.BySource(src)
		if len(d) > maxPeers {
			maxPeers = len(d)
		}
	}
	// Stencil (26) plus refinement partners: well above a plain stencil
	// but far below all-to-all.
	if maxPeers <= 26 || maxPeers >= 64 {
		t.Fatalf("AMR peers = %d, want in (26, 64)", maxPeers)
	}
}

func TestMiniFETrimmedCorners(t *testing.T) {
	acc := accumulate(t, "MiniFE", 144)
	maxPeers := 0
	for src := 0; src < 144; src++ {
		d, _ := acc.P2P.BySource(src)
		if len(d) > maxPeers {
			maxPeers = len(d)
		}
	}
	// Faces + edges + 4 parity corners = 22 for interior ranks.
	if maxPeers != 22 {
		t.Fatalf("MiniFE peers = %d, want 22", maxPeers)
	}
}

func TestFactor3(t *testing.T) {
	cases := map[int][3]int{
		8:    {2, 2, 2},
		27:   {3, 3, 3},
		64:   {4, 4, 4},
		216:  {6, 6, 6},
		1728: {12, 12, 12},
		144:  {6, 6, 4},
		256:  {8, 8, 4},
		512:  {8, 8, 8},
		1024: {16, 8, 8},
		18:   {3, 3, 2},
		125:  {5, 5, 5},
		1152: {12, 12, 8},
	}
	for n, want := range cases {
		g, err := factor3(n)
		if err != nil {
			t.Fatalf("factor3(%d): %v", n, err)
		}
		if g.ranks() != n {
			t.Fatalf("factor3(%d) volume %d", n, g.ranks())
		}
		dims := [3]int{g.x, g.y, g.z}
		// Accept any permutation of the expected balanced shape.
		sortDesc := func(d [3]int) [3]int {
			if d[0] < d[1] {
				d[0], d[1] = d[1], d[0]
			}
			if d[1] < d[2] {
				d[1], d[2] = d[2], d[1]
			}
			if d[0] < d[1] {
				d[0], d[1] = d[1], d[0]
			}
			return d
		}
		if sortDesc(dims) != sortDesc(want) {
			t.Errorf("factor3(%d) = %v, want %v", n, dims, want)
		}
	}
	if _, err := factor3(17); err == nil {
		t.Fatal("prime should not factor")
	}
}

func TestFactor2(t *testing.T) {
	g, err := factor2(168)
	if err != nil {
		t.Fatal(err)
	}
	if g.x*g.y != 168 || g.y != 12 || g.x != 14 {
		t.Fatalf("factor2(168) = %dx%d", g.x, g.y)
	}
	g2, err := factor2(7)
	if err != nil {
		t.Fatal(err)
	}
	if g2.x != 7 || g2.y != 1 {
		t.Fatalf("factor2(7) = %dx%d", g2.x, g2.y)
	}
}

func TestXorshiftDeterministic(t *testing.T) {
	a := newXorshift(42)
	b := newXorshift(42)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("xorshift not deterministic")
		}
	}
	z := newXorshift(0)
	if z.next() == 0 {
		t.Fatal("zero seed must still produce values")
	}
	c := newXorshift(7)
	v := c.intn(10)
	if v < 0 || v >= 10 {
		t.Fatalf("intn out of range: %d", v)
	}
	if c.intn(0) != 0 {
		t.Fatal("intn(0) should be 0")
	}
	f := c.float64n()
	if f < 0 || f >= 1 {
		t.Fatalf("float64n out of range: %v", f)
	}
}

func TestSpecBuildErrors(t *testing.T) {
	// Target p2p volume without a pattern must fail.
	sp := newSpec(Scale{Ranks: 4, VolMB: 1, RateMBps: 1, P2PPct: 100})
	sp.name = "broken"
	if _, err := sp.build(); err == nil {
		t.Fatal("p2p target without pattern accepted")
	}
	// Target collective volume without a pattern must fail.
	sp2 := newSpec(Scale{Ranks: 4, VolMB: 1, RateMBps: 1, P2PPct: 0})
	sp2.name = "broken2"
	if _, err := sp2.build(); err == nil {
		t.Fatal("collective target without pattern accepted")
	}
}

func TestSpecIgnoresDegenerateSends(t *testing.T) {
	sp := newSpec(Scale{Ranks: 4, VolMB: 1, RateMBps: 1, P2PPct: 100})
	sp.send(1, 1, 10, 1) // self
	sp.send(0, 1, 0, 1)  // zero weight
	sp.send(0, 1, -5, 1) // negative weight
	if len(sp.p2p) != 0 {
		t.Fatalf("degenerate sends recorded: %d", len(sp.p2p))
	}
	sp.send(0, 1, 1, 0) // msgs clamped to 1
	if len(sp.p2p) != 1 || sp.p2p[0].msgs != 1 {
		t.Fatalf("send not normalized: %+v", sp.p2p)
	}
}

func TestRootedCollectiveGetsRoot(t *testing.T) {
	sp := newSpec(Scale{Ranks: 4, VolMB: 1, RateMBps: 1, P2PPct: 0})
	sp.name = "bcastapp"
	sp.collective(trace.OpBcast, 2, 1, 1)
	tr, err := sp.build()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Events {
		if e.Op == trace.OpBcast && e.Root != 2 {
			t.Fatalf("bcast root = %d", e.Root)
		}
	}
}

func TestTimestampsMonotone(t *testing.T) {
	a, _ := Lookup("LULESH")
	tr, err := a.Generate(64)
	if err != nil {
		t.Fatal(err)
	}
	var prev uint64
	for i, e := range tr.Events {
		if e.Start < prev {
			t.Fatalf("event %d starts before previous", i)
		}
		if e.End < e.Start {
			t.Fatalf("event %d ends before start", i)
		}
		prev = e.Start
	}
	last := tr.Events[len(tr.Events)-1]
	if float64(last.End) > tr.Meta.WallTime*1e9*1.01+1e6 {
		t.Fatalf("events overrun wall time: %d vs %g", last.End, tr.Meta.WallTime*1e9)
	}
}

// TestGenerateCalibrationAllScales verifies every one of the 38
// configurations — not just the smallest per app — lands within 1% of
// Table 1's volume and within a percentage point of its p2p share.
func TestGenerateCalibrationAllScales(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, a := range All() {
		for _, s := range a.Scales {
			tr, err := a.Generate(s.Ranks)
			if err != nil {
				t.Fatalf("%s/%d: %v", a.Name, s.Ranks, err)
			}
			p2p, coll := tr.TotalBytes()
			total := float64(p2p + coll)
			wantTotal := s.VolMB * 1e6
			if math.Abs(total-wantTotal) > 0.01*wantTotal {
				t.Errorf("%s/%d: volume %.4g, want %.4g", a.Name, s.Ranks, total, wantTotal)
			}
			gotP2P := 100 * float64(p2p) / total
			if math.Abs(gotP2P-s.P2PPct) > 1.0 {
				t.Errorf("%s/%d: p2p %.2f%%, want %.2f%%", a.Name, s.Ranks, gotP2P, s.P2PPct)
			}
			// Every rank must participate in communication (events from
			// all ranks), matching real application traces.
			seen := make([]bool, s.Ranks)
			for _, e := range tr.Events {
				seen[e.Rank] = true
			}
			for r, ok := range seen {
				if !ok {
					t.Errorf("%s/%d: rank %d silent", a.Name, s.Ranks, r)
					break
				}
			}
		}
	}
}
