package workloads

import (
	"fmt"
	"sort"
)

// grid3 is a 3D domain decomposition with x the fastest-varying dimension
// in the rank linearization (row-major), matching how the mini-apps number
// their ranks.
type grid3 struct {
	x, y, z int
}

// factor3 returns a near-cubic exact factorization of n (x >= y >= z,
// ordered so the largest dimension varies fastest), preferring balanced
// shapes. It fails when n has no factorization with aspect ratio <= 4.
func factor3(n int) (grid3, error) {
	best := grid3{}
	bestSpread := -1
	for z := 1; z*z*z <= n; z++ {
		if n%z != 0 {
			continue
		}
		rest := n / z
		for y := z; y*y <= rest; y++ {
			if rest%y != 0 {
				continue
			}
			x := rest / y
			if x > 4*z {
				continue
			}
			spread := x - z
			if bestSpread == -1 || spread < bestSpread {
				best = grid3{x: x, y: y, z: z}
				bestSpread = spread
			}
		}
	}
	if bestSpread == -1 {
		return grid3{}, fmt.Errorf("workloads: no near-cubic factorization of %d", n)
	}
	return best, nil
}

func (g grid3) ranks() int { return g.x * g.y * g.z }

func (g grid3) id(cx, cy, cz int) int { return (cz*g.y+cy)*g.x + cx }

func (g grid3) coords(id int) (cx, cy, cz int) {
	cx = id % g.x
	cy = (id / g.x) % g.y
	cz = id / (g.x * g.y)
	return
}

func (g grid3) inBounds(cx, cy, cz int) bool {
	return cx >= 0 && cx < g.x && cy >= 0 && cy < g.y && cz >= 0 && cz < g.z
}

// stencilWeights describe the relative per-direction volume of a halo
// exchange: faces carry whole ghost planes, edges ghost pencils, corners
// single ghost cells.
type stencilWeights struct {
	face, edge, corner float64
}

// eachStencilNeighbor calls fn for every in-bounds neighbor of the rank at
// offset stride in a full 27-point neighborhood, passing the neighbor rank
// and the direction order (1 face, 2 edge, 3 corner).
func (g grid3) eachStencilNeighbor(id, stride int, fn func(nb, order int)) {
	cx, cy, cz := g.coords(id)
	for dz := -1; dz <= 1; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 && dz == 0 {
					continue
				}
				nx, ny, nz := cx+dx*stride, cy+dy*stride, cz+dz*stride
				if !g.inBounds(nx, ny, nz) {
					continue
				}
				order := absInt(dx) + absInt(dy) + absInt(dz)
				fn(g.id(nx, ny, nz), order)
			}
		}
	}
}

// addStencil adds a full 27-point halo exchange at the given stride for
// every rank whose coordinates are multiples of the stride (the active set
// of a multigrid level). Weights select the per-order volumes; msgs is the
// message count per pair (iterations).
func addStencil(sp *spec, g grid3, stride int, w stencilWeights, msgs int) {
	for id := 0; id < g.ranks(); id++ {
		cx, cy, cz := g.coords(id)
		if cx%stride != 0 || cy%stride != 0 || cz%stride != 0 {
			continue
		}
		g.eachStencilNeighbor(id, stride, func(nb, order int) {
			var weight float64
			switch order {
			case 1:
				weight = w.face
			case 2:
				weight = w.edge
			default:
				weight = w.corner
			}
			sp.send(id, nb, weight, msgs)
		})
	}
}

// grid2 is a 2D decomposition (x fastest).
type grid2 struct {
	x, y int
}

// factor2 returns the most balanced exact 2D factorization of n with the
// smaller factor first in x.
func factor2(n int) (grid2, error) {
	for y := intSqrt(n); y >= 1; y-- {
		if n%y == 0 {
			return grid2{x: n / y, y: y}, nil
		}
	}
	return grid2{}, fmt.Errorf("workloads: cannot factor %d", n)
}

func (g grid2) ranks() int                 { return g.x * g.y }
func (g grid2) id(cx, cy int) int          { return cy*g.x + cx }
func (g grid2) coords(id int) (cx, cy int) { return id % g.x, id / g.x }
func (g grid2) inBounds(cx, cy int) bool {
	return cx >= 0 && cx < g.x && cy >= 0 && cy < g.y
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func intSqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

// xorshift is a tiny deterministic PRNG for the irregular workloads (AMR),
// independent of math/rand so generated traces are stable across Go
// versions.
type xorshift uint64

func newXorshift(seed uint64) *xorshift {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	x := xorshift(seed)
	return &x
}

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// intn returns a deterministic value in [0, n).
func (x *xorshift) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(x.next() % uint64(n))
}

// float64n returns a deterministic value in [0, 1).
func (x *xorshift) float64n() float64 {
	return float64(x.next()>>11) / float64(1<<53)
}

// mortonOrder returns a rank numbering of the grid's cells following the
// Morton (Z-order) space-filling curve: cells are sorted by their
// interleaved-bit key and ranks assigned in that order. Boxlib-family
// codes distribute blocks to ranks along such curves rather than
// row-major, which spreads grid neighbors across rank IDs — visible in
// the paper's Table 3 as the Boxlib apps' large rank distances next to
// their small selectivities. The returned slice maps row-major cell index
// to rank.
func mortonOrder(g grid3) []int {
	type cell struct{ idx, key int }
	cells := make([]cell, 0, g.ranks())
	for z := 0; z < g.z; z++ {
		for y := 0; y < g.y; y++ {
			for x := 0; x < g.x; x++ {
				key := 0
				for b := 0; b < 10; b++ {
					key |= ((x >> b) & 1) << (3 * b)
					key |= ((y >> b) & 1) << (3*b + 1)
					key |= ((z >> b) & 1) << (3*b + 2)
				}
				cells = append(cells, cell{idx: g.id(x, y, z), key: key})
			}
		}
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].key < cells[j].key })
	rankOf := make([]int, g.ranks())
	for r, c := range cells {
		rankOf[c.idx] = r
	}
	return rankOf
}
