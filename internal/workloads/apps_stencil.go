package workloads

import "netloc/internal/trace"

// This file defines the stencil-structured applications: AMG, LULESH,
// FillBoundary, MultiGrid_C, Boxlib MultiGrid C, MiniFE, and Nekbone. They
// all decompose a 3D domain across ranks and exchange halos with grid
// neighbors; the families differ in which neighbors participate (faces /
// edges / corners), whether coarser multigrid levels add strided partners,
// and how much collective traffic accompanies the solves.

// faceHeavy reflects a one-cell-deep ghost layer on a 32^3 subdomain:
// faces move whole planes (32x32 cells), edges pencils (32), corners
// single cells — so faces carry ~94% of an interior rank's halo volume.
var faceHeavy = stencilWeights{face: 1024, edge: 32, corner: 1}

// amgApp models the AMG algebraic-multigrid solve: a 27-point stencil on a
// cubic decomposition with geometrically coarsening levels (stride-doubled
// partners, shrinking volumes) and a small aggregation exchange toward
// rank 0 on the coarsest level. 100% point-to-point per Table 1.
func amgApp() *App {
	return &App{
		Name: "AMG",
		Scales: []Scale{
			{Ranks: 8, VolMB: 3.0, RateMBps: 116.3, P2PPct: 100},
			{Ranks: 27, VolMB: 13.6, RateMBps: 86.98, P2PPct: 100},
			{Ranks: 216, VolMB: 136.9, RateMBps: 461.5, P2PPct: 100},
			{Ranks: 1728, VolMB: 1208, RateMBps: 413.7, P2PPct: 100},
		},
		pattern: func(s Scale) (*spec, error) {
			g, err := factor3(s.Ranks)
			if err != nil {
				return nil, err
			}
			sp := newSpec(s)
			const iters = 8
			// Coarse levels shrink fast: both the grid and the ghost
			// surfaces coarsen, so each level carries ~1/32 of the
			// previous one's volume (fine-level faces stay > 90% of any
			// rank's traffic, which is what makes AMG fully
			// three-dimensional in the paper's Table 4).
			levelW := 1.0
			for stride := 1; stride < g.x; stride *= 2 {
				addStencil(sp, g, stride, stencilWeights{
					face:   faceHeavy.face * levelW,
					edge:   faceHeavy.edge * levelW,
					corner: faceHeavy.corner * levelW,
				}, iters)
				levelW /= 32
			}
			// Coarse-level aggregation: the stride-2 active set exchanges
			// small setup/solve vectors with rank 0.
			for id := 0; id < g.ranks(); id++ {
				cx, cy, cz := g.coords(id)
				if id == 0 || cx%2 != 0 || cy%2 != 0 || cz%2 != 0 {
					continue
				}
				sp.send(id, 0, 0.05, 2)
				sp.send(0, id, 0.05, 2)
			}
			return sp, nil
		},
	}
}

// luleshApp models the LULESH shock-hydro proxy: a pure 27-point stencil
// on a cubic decomposition, faces dominating strongly (the paper's
// Figure 1 uses LULESH rank 0 as the selectivity illustration).
func luleshApp() *App {
	return &App{
		Name: "LULESH",
		Scales: []Scale{
			{Ranks: 64, VolMB: 3585, RateMBps: 81.43, P2PPct: 100},
			{Ranks: 512, VolMB: 33548, RateMBps: 667.8, P2PPct: 100},
		},
		pattern: func(s Scale) (*spec, error) {
			g, err := factor3(s.Ranks)
			if err != nil {
				return nil, err
			}
			sp := newSpec(s)
			addStencil(sp, g, 1, faceHeavy, 20)
			return sp, nil
		},
	}
}

// fillBoundaryApp models the Boxlib FillBoundary kernel: one ghost-cell
// exchange across the full 27-point neighborhood, repeated a few times.
func fillBoundaryApp() *App {
	return &App{
		Name: "FillBoundary",
		Scales: []Scale{
			{Ranks: 125, VolMB: 10209, RateMBps: 4393, P2PPct: 100},
			{Ranks: 1000, VolMB: 92323, RateMBps: 17549, P2PPct: 100},
		},
		pattern: func(s Scale) (*spec, error) {
			g, err := factor3(s.Ranks)
			if err != nil {
				return nil, err
			}
			sp := newSpec(s)
			addStencil(sp, g, 1, faceHeavy, 10)
			return sp, nil
		},
	}
}

// multiGridCApp models the standalone MultiGrid_C benchmark: face+edge
// halo exchange on the fine level plus strided face exchanges on coarser
// levels whose volumes stay substantial — which is what stretches its rank
// distance well beyond the plain stencil apps in Table 3.
func multiGridCApp() *App {
	return &App{
		Name: "MultiGrid_C",
		Scales: []Scale{
			{Ranks: 125, VolMB: 374, RateMBps: 4889.0, P2PPct: 100},
			{Ranks: 1000, VolMB: 2973, RateMBps: 832.83, P2PPct: 100},
		},
		pattern: func(s Scale) (*spec, error) {
			g, err := factor3(s.Ranks)
			if err != nil {
				return nil, err
			}
			sp := newSpec(s)
			// Fine level: faces and edges only (peers ~22 for interior
			// ranks, matching the paper).
			addStencil(sp, g, 1, stencilWeights{face: 32, edge: 4, corner: 0}, 6)
			// Coarse levels: strided faces with slowly decaying volume.
			levelW := 0.5
			for stride := 2; stride < g.x; stride *= 2 {
				addStencil(sp, g, stride, stencilWeights{face: 32 * levelW}, 4)
				levelW /= 2
			}
			return sp, nil
		},
	}
}

// boxMGApp models Boxlib's MultiGrid C solver: a 27-point stencil with
// multigrid levels, constant 26-peer neighborhoods (Table 3) and a trace
// of allreduce convergence checks.
func boxMGApp() *App {
	return &App{
		Name: "Boxlib MultiGrid C",
		Star: false,
		Scales: []Scale{
			{Ranks: 64, VolMB: 23742, RateMBps: 102.6, P2PPct: 99.94},
			{Ranks: 256, VolMB: 44535, RateMBps: 718.2, P2PPct: 99.95},
			{Ranks: 1024, VolMB: 75181, RateMBps: 3600.9, P2PPct: 99.94},
		},
		pattern: func(s Scale) (*spec, error) {
			g, err := factor3(s.Ranks)
			if err != nil {
				return nil, err
			}
			sp := newSpec(s)
			addStencil(sp, g, 1, faceHeavy, 12)
			levelW := 0.25
			for stride := 2; stride < g.x; stride *= 2 {
				addStencil(sp, g, stride, stencilWeights{
					face: faceHeavy.face * levelW,
					edge: faceHeavy.edge * levelW,
				}, 6)
				levelW /= 4
			}
			sp.collective(trace.OpAllreduce, -1, 1, 20)
			return sp, nil
		},
	}
}

// miniFEApp models the MiniFE finite-element proxy: halo exchange with
// faces, edges, and the four positive-parity corners (~22 interior peers,
// Table 3) plus tiny CG dot-product allreduces.
func miniFEApp() *App {
	return &App{
		Name: "MiniFE",
		Scales: []Scale{
			{Ranks: 18, VolMB: 1615, RateMBps: 27.06, P2PPct: 100},
			{Ranks: 144, VolMB: 16586, RateMBps: 271.63, P2PPct: 99.99},
			{Ranks: 1152, VolMB: 147264, RateMBps: 1737.7, P2PPct: 99.96},
		},
		pattern: func(s Scale) (*spec, error) {
			g, err := factor3(s.Ranks)
			if err != nil {
				return nil, err
			}
			sp := newSpec(s)
			const iters = 15
			for id := 0; id < g.ranks(); id++ {
				cx, cy, cz := g.coords(id)
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							if dx == 0 && dy == 0 && dz == 0 {
								continue
							}
							if !g.inBounds(cx+dx, cy+dy, cz+dz) {
								continue
							}
							order := absInt(dx) + absInt(dy) + absInt(dz)
							w := 0.0
							switch order {
							case 1:
								w = faceHeavy.face
							case 2:
								w = faceHeavy.edge
							case 3:
								// Only the four corners with positive
								// orientation parity take part.
								if dx*dy*dz > 0 {
									w = faceHeavy.corner
								}
							}
							if w > 0 {
								sp.send(id, g.id(cx+dx, cy+dy, cz+dz), w, iters)
							}
						}
					}
				}
			}
			if s.P2PPct < 100 {
				sp.collective(trace.OpAllreduce, -1, 1, 30)
			}
			return sp, nil
		},
	}
}

// nekboneApp models the Nekbone spectral-element CG proxy: a 27-point
// element-neighborhood exchange plus allreduce dot products; the 256-rank
// trace in Table 1 is dominated by an unusually large collective share.
func nekboneApp() *App {
	return &App{
		Name: "CESAR Nekbone",
		Star: true,
		Scales: []Scale{
			{Ranks: 64, VolMB: 5307, RateMBps: 448.8, P2PPct: 100},
			{Ranks: 256, VolMB: 1272, RateMBps: 401.8, P2PPct: 50.66},
			{Ranks: 1024, VolMB: 13232, RateMBps: 2568.8, P2PPct: 99.98},
		},
		pattern: func(s Scale) (*spec, error) {
			g, err := factor3(s.Ranks)
			if err != nil {
				return nil, err
			}
			sp := newSpec(s)
			addStencil(sp, g, 1, faceHeavy, 25)
			if s.P2PPct < 100 {
				sp.collective(trace.OpAllreduce, -1, 1, 50)
			}
			return sp, nil
		},
	}
}
