// Package parallel is the work-scheduling engine behind the analysis
// pipeline's fan-out: a bounded token budget plus a chunked index loop
// with deterministic, index-addressed results.
//
// Two properties drive the design:
//
//   - Determinism. Workers pull contiguous index chunks from an atomic
//     cursor and write results only at their own indexes, so a parallel
//     run produces exactly the slice a sequential loop would — arrival
//     order never leaks into results, and floating-point reductions are
//     performed by the caller in index order.
//   - Composition. All fan-out levels (experiment grid, per-topology
//     runs, per-rank metric loops, sharded accumulation) share one
//     Budget of worker tokens. Extra workers are admitted with
//     TryAcquire, never blocking, so nested loops degrade to the
//     calling goroutine instead of oversubscribing or deadlocking. The
//     analysis service passes its request-admission budget here, making
//     request-level and intra-request parallelism draw from one pool.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Budget is a counting semaphore of worker tokens shared across
// concurrent analyses and their nested loops. It keeps its own
// scheduling counters (tokens granted, degraded-to-caller events) so an
// observability layer can report pool pressure without the budget
// depending on one.
type Budget struct {
	tokens chan struct{}

	granted  atomic.Int64
	degraded atomic.Int64
	// waitFn, when set, observes how long each blocking Acquire waited
	// for admission (zero for the non-blocking fast path). Set it once,
	// before the budget is shared across goroutines.
	waitFn func(time.Duration)
}

// NewBudget creates a budget with the given token capacity (minimum 1).
func NewBudget(capacity int) *Budget {
	if capacity < 1 {
		capacity = 1
	}
	return &Budget{tokens: make(chan struct{}, capacity)}
}

// Cap returns the budget's token capacity.
func (b *Budget) Cap() int { return cap(b.tokens) }

// InUse returns how many tokens are currently held.
func (b *Budget) InUse() int { return len(b.tokens) }

// SetWaitObserver installs fn to observe every Acquire's queue wait
// (zero when a token was free). Must be called before the budget is
// shared across goroutines; fn must be safe for concurrent use.
func (b *Budget) SetWaitObserver(fn func(time.Duration)) { b.waitFn = fn }

// BudgetStats is a point-in-time view of a budget's scheduling counters.
type BudgetStats struct {
	// Capacity and InUse describe the token pool right now.
	Capacity, InUse int
	// Granted counts tokens handed out over the budget's lifetime
	// (blocking Acquires plus successful TryAcquires).
	Granted int64
	// Degraded counts TryAcquire failures — nested loops that stayed on
	// the calling goroutine because the pool was exhausted.
	Degraded int64
}

// Stats samples the budget's counters.
func (b *Budget) Stats() BudgetStats {
	return BudgetStats{
		Capacity: cap(b.tokens),
		InUse:    len(b.tokens),
		Granted:  b.granted.Load(),
		Degraded: b.degraded.Load(),
	}
}

// Acquire blocks until a token is available. Used for top-level
// admission (one token per service request); nested loops must use
// TryAcquire instead so they can never deadlock against each other.
func (b *Budget) Acquire() {
	select {
	case b.tokens <- struct{}{}:
		b.granted.Add(1)
		if b.waitFn != nil {
			b.waitFn(0)
		}
		return
	default:
	}
	start := time.Now()
	b.tokens <- struct{}{}
	b.granted.Add(1)
	if b.waitFn != nil {
		b.waitFn(time.Since(start))
	}
}

// TryAcquire takes a token without blocking, reporting success. A
// failure is counted as a degraded-to-caller event: the would-be extra
// worker's share of the loop runs on the calling goroutine instead.
func (b *Budget) TryAcquire() bool {
	select {
	case b.tokens <- struct{}{}:
		b.granted.Add(1)
		return true
	default:
		b.degraded.Add(1)
		return false
	}
}

// Release returns a token taken by Acquire or TryAcquire.
func (b *Budget) Release() { <-b.tokens }

// Runner schedules an index loop over a bounded worker set. The zero
// value runs sequentially on the calling goroutine.
type Runner struct {
	max    int
	budget *Budget
}

// Seq returns the sequential runner.
func Seq() Runner { return Runner{} }

// New returns a runner with a worker cap but no shared budget (extra
// workers are always admitted up to the cap). max <= 0 selects
// GOMAXPROCS.
func New(max int) Runner {
	if max <= 0 {
		max = runtime.GOMAXPROCS(0)
	}
	return Runner{max: max}
}

// Shared returns a runner that admits extra workers only while the
// shared budget has spare tokens. max <= 0 selects GOMAXPROCS. A nil
// budget means no pool to draw from, so the runner is sequential.
func Shared(b *Budget, max int) Runner {
	if b == nil {
		return Seq()
	}
	if max <= 0 {
		max = runtime.GOMAXPROCS(0)
	}
	return Runner{max: max, budget: b}
}

// Workers returns the runner's worker cap including the caller (1 for
// the sequential runner).
func (r Runner) Workers() int {
	if r.max < 1 {
		return 1
	}
	return r.max
}

// Parallel reports whether the runner may use more than one goroutine.
func (r Runner) Parallel() bool { return r.Workers() > 1 }

// chunkFactor oversplits the index space relative to the worker count
// so uneven per-index costs still balance.
const chunkFactor = 4

// ForEach runs fn(i) for every i in [0, n). The calling goroutine
// always participates; up to Workers()-1 extra goroutines join, each
// holding a budget token (when a budget is attached) for its lifetime.
// Indexes are handed out in contiguous chunks, so writes that fn makes
// at index i are deterministic regardless of schedule. ForEach returns
// after every index has been processed.
func (r Runner) ForEach(n int, fn func(i int)) {
	r.forEach(n, fn, nil)
}

// ForEachErr runs fn(i) for every i in [0, n) like ForEach and returns
// the error of the lowest failing index — the same error a sequential
// loop would have hit first. Once any index fails, undispatched chunks
// are skipped.
func (r Runner) ForEachErr(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	var failed atomic.Bool
	r.forEach(n, func(i int) {
		if err := fn(i); err != nil {
			errs[i] = err
			failed.Store(true)
		}
	}, &failed)
	if failed.Load() {
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func (r Runner) forEach(n int, fn func(i int), stop *atomic.Bool) {
	if n <= 0 {
		return
	}
	workers := r.Workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if stop != nil && stop.Load() {
				return
			}
			fn(i)
		}
		return
	}
	chunk := n / (workers * chunkFactor)
	if chunk < 1 {
		chunk = 1
	}
	var cursor atomic.Int64
	loop := func() {
		for {
			if stop != nil && stop.Load() {
				return
			}
			start := int(cursor.Add(int64(chunk))) - chunk
			if start >= n {
				return
			}
			end := start + chunk
			if end > n {
				end = n
			}
			for i := start; i < end; i++ {
				fn(i)
			}
		}
	}
	var wg sync.WaitGroup
	for extra := 0; extra < workers-1; extra++ {
		if r.budget != nil && !r.budget.TryAcquire() {
			break // budget exhausted: remaining work stays on the caller
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if r.budget != nil {
				defer r.budget.Release()
			}
			loop()
		}()
	}
	loop()
	wg.Wait()
}
