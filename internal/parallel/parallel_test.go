package parallel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			r := Runner{max: workers, budget: NewBudget(workers - 1)}
			hits := make([]atomic.Int32, n)
			r.ForEach(n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestSeqRunnerIsSequential(t *testing.T) {
	r := Seq()
	if r.Parallel() {
		t.Fatal("Seq().Parallel() = true")
	}
	if w := r.Workers(); w != 1 {
		t.Fatalf("Seq().Workers() = %d, want 1", w)
	}
	var order []int
	r.ForEach(5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order broken: %v", order)
		}
	}
}

func TestZeroValueRunnerIsSequential(t *testing.T) {
	var r Runner
	if r.Parallel() {
		t.Fatal("zero Runner reports parallel")
	}
	sum := 0
	r.ForEach(4, func(i int) { sum += i })
	if sum != 6 {
		t.Fatalf("sum = %d, want 6", sum)
	}
}

func TestForEachErrReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		r := Runner{max: workers, budget: NewBudget(workers - 1)}
		err := r.ForEachErr(100, func(i int) error {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return fmt.Errorf("index %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "index 3" {
			t.Fatalf("workers=%d: err = %v, want index 3", workers, err)
		}
	}
}

func TestForEachErrNilOnSuccess(t *testing.T) {
	r := New(4)
	if err := r.ForEachErr(50, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachErrStopsDispatchAfterFailure(t *testing.T) {
	// After an error is observed, undispatched chunks must be skipped:
	// with one worker the failure at index 0 must prevent visits far
	// beyond the failing chunk.
	r := Seq()
	var visited atomic.Int32
	err := r.ForEachErr(10000, func(i int) error {
		visited.Add(1)
		if i == 0 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("error lost")
	}
	if v := visited.Load(); v >= 10000 {
		t.Fatalf("visited all %d indexes despite early error", v)
	}
}

func TestBudgetCapsConcurrency(t *testing.T) {
	const cap = 3
	b := NewBudget(cap)
	if b.Cap() != cap {
		t.Fatalf("Cap() = %d, want %d", b.Cap(), cap)
	}
	// Runner extras draw from the budget; the caller participates for
	// free, so at most cap+1 bodies run at once.
	r := Shared(b, 16)
	var cur, max atomic.Int32
	var mu sync.Mutex
	r.ForEach(200, func(int) {
		c := cur.Add(1)
		mu.Lock()
		if c > max.Load() {
			max.Store(c)
		}
		mu.Unlock()
		cur.Add(-1)
	})
	if m := max.Load(); m > cap+1 {
		t.Fatalf("observed %d concurrent bodies, budget allows %d", m, cap+1)
	}
}

func TestBudgetTryAcquireExhaustion(t *testing.T) {
	b := NewBudget(2)
	if !b.TryAcquire() || !b.TryAcquire() {
		t.Fatal("fresh budget refused tokens")
	}
	if b.TryAcquire() {
		t.Fatal("exhausted budget granted a token")
	}
	b.Release()
	if !b.TryAcquire() {
		t.Fatal("released token not reusable")
	}
	b.Release()
	b.Release()
}

func TestNewBudgetMinimumCapacity(t *testing.T) {
	for _, c := range []int{-5, 0, 1} {
		if got := NewBudget(c).Cap(); got < 1 {
			t.Fatalf("NewBudget(%d).Cap() = %d, want >= 1", c, got)
		}
	}
}

func TestSharedNilBudgetFallsBackToSequential(t *testing.T) {
	r := Shared(nil, 8)
	if r.Parallel() {
		t.Fatal("Shared(nil, 8) reports parallel")
	}
}

func TestBudgetStatsCounters(t *testing.T) {
	b := NewBudget(2)
	b.Acquire()
	if !b.TryAcquire() {
		t.Fatal("second token refused")
	}
	if b.TryAcquire() {
		t.Fatal("exhausted budget granted a token")
	}
	s := b.Stats()
	if s.Capacity != 2 || s.InUse != 2 {
		t.Errorf("stats = %+v, want capacity 2 in use 2", s)
	}
	if s.Granted != 2 {
		t.Errorf("granted = %d, want 2", s.Granted)
	}
	if s.Degraded != 1 {
		t.Errorf("degraded = %d, want 1", s.Degraded)
	}
	b.Release()
	b.Release()
	if got := b.InUse(); got != 0 {
		t.Errorf("in use = %d after release, want 0", got)
	}
}

func TestBudgetWaitObserver(t *testing.T) {
	b := NewBudget(1)
	var mu sync.Mutex
	var waits []time.Duration
	b.SetWaitObserver(func(d time.Duration) {
		mu.Lock()
		waits = append(waits, d)
		mu.Unlock()
	})
	b.Acquire() // free token: zero wait
	done := make(chan struct{})
	go func() {
		b.Acquire() // blocks until the release below
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	b.Release()
	<-done
	b.Release()
	mu.Lock()
	defer mu.Unlock()
	if len(waits) != 2 {
		t.Fatalf("observed %d waits, want 2", len(waits))
	}
	if waits[0] != 0 {
		t.Errorf("fast-path wait = %v, want 0", waits[0])
	}
	if waits[1] < 10*time.Millisecond {
		t.Errorf("blocked wait = %v, want >= 10ms", waits[1])
	}
}

// TestBudgetDegradedCountedFromForEach pins that an exhausted shared
// budget shows up in Stats as degraded-to-caller events rather than
// extra goroutines.
func TestBudgetDegradedCountedFromForEach(t *testing.T) {
	b := NewBudget(1)
	b.Acquire() // hold the only token so ForEach cannot admit extras
	before := b.Stats().Degraded
	var n atomic.Int64
	Shared(b, 4).ForEach(64, func(i int) { n.Add(1) })
	b.Release()
	if n.Load() != 64 {
		t.Fatalf("ForEach covered %d indexes, want 64", n.Load())
	}
	if got := b.Stats().Degraded - before; got < 1 {
		t.Errorf("degraded delta = %d, want >= 1", got)
	}
}
