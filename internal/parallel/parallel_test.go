package parallel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			r := Runner{max: workers, budget: NewBudget(workers - 1)}
			hits := make([]atomic.Int32, n)
			r.ForEach(n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestSeqRunnerIsSequential(t *testing.T) {
	r := Seq()
	if r.Parallel() {
		t.Fatal("Seq().Parallel() = true")
	}
	if w := r.Workers(); w != 1 {
		t.Fatalf("Seq().Workers() = %d, want 1", w)
	}
	var order []int
	r.ForEach(5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order broken: %v", order)
		}
	}
}

func TestZeroValueRunnerIsSequential(t *testing.T) {
	var r Runner
	if r.Parallel() {
		t.Fatal("zero Runner reports parallel")
	}
	sum := 0
	r.ForEach(4, func(i int) { sum += i })
	if sum != 6 {
		t.Fatalf("sum = %d, want 6", sum)
	}
}

func TestForEachErrReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		r := Runner{max: workers, budget: NewBudget(workers - 1)}
		err := r.ForEachErr(100, func(i int) error {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return fmt.Errorf("index %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "index 3" {
			t.Fatalf("workers=%d: err = %v, want index 3", workers, err)
		}
	}
}

func TestForEachErrNilOnSuccess(t *testing.T) {
	r := New(4)
	if err := r.ForEachErr(50, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachErrStopsDispatchAfterFailure(t *testing.T) {
	// After an error is observed, undispatched chunks must be skipped:
	// with one worker the failure at index 0 must prevent visits far
	// beyond the failing chunk.
	r := Seq()
	var visited atomic.Int32
	err := r.ForEachErr(10000, func(i int) error {
		visited.Add(1)
		if i == 0 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("error lost")
	}
	if v := visited.Load(); v >= 10000 {
		t.Fatalf("visited all %d indexes despite early error", v)
	}
}

func TestBudgetCapsConcurrency(t *testing.T) {
	const cap = 3
	b := NewBudget(cap)
	if b.Cap() != cap {
		t.Fatalf("Cap() = %d, want %d", b.Cap(), cap)
	}
	// Runner extras draw from the budget; the caller participates for
	// free, so at most cap+1 bodies run at once.
	r := Shared(b, 16)
	var cur, max atomic.Int32
	var mu sync.Mutex
	r.ForEach(200, func(int) {
		c := cur.Add(1)
		mu.Lock()
		if c > max.Load() {
			max.Store(c)
		}
		mu.Unlock()
		cur.Add(-1)
	})
	if m := max.Load(); m > cap+1 {
		t.Fatalf("observed %d concurrent bodies, budget allows %d", m, cap+1)
	}
}

func TestBudgetTryAcquireExhaustion(t *testing.T) {
	b := NewBudget(2)
	if !b.TryAcquire() || !b.TryAcquire() {
		t.Fatal("fresh budget refused tokens")
	}
	if b.TryAcquire() {
		t.Fatal("exhausted budget granted a token")
	}
	b.Release()
	if !b.TryAcquire() {
		t.Fatal("released token not reusable")
	}
	b.Release()
	b.Release()
}

func TestNewBudgetMinimumCapacity(t *testing.T) {
	for _, c := range []int{-5, 0, 1} {
		if got := NewBudget(c).Cap(); got < 1 {
			t.Fatalf("NewBudget(%d).Cap() = %d, want >= 1", c, got)
		}
	}
}

func TestSharedNilBudgetFallsBackToSequential(t *testing.T) {
	r := Shared(nil, 8)
	if r.Parallel() {
		t.Fatal("Shared(nil, 8) reports parallel")
	}
}
