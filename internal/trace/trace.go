// Package trace defines the MPI event model used by all locality analyses
// and a dumpi-like trace container format.
//
// The original study consumes traces in the dumpi format produced by
// sst-dumpi and published by Sandia National Laboratories. Those traces
// record every MPI call along with its parameters and CPU/wall timestamps.
// This package provides the same information model: a Trace is a metadata
// header plus an ordered stream of Events, each describing one MPI call
// made by one rank. Binary and text codecs are in codec.go.
package trace

import (
	"errors"
	"fmt"
)

// Op identifies an MPI operation recorded in a trace.
type Op uint8

// MPI operations covered by the model. Point-to-point operations carry a
// peer rank; collectives carry a root where applicable and address the
// whole communicator.
const (
	OpInvalid Op = iota
	OpSend       // MPI_Send / MPI_Isend: Rank -> Peer, Bytes payload
	OpRecv       // MPI_Recv / MPI_Irecv: Peer -> Rank (accounting side only)
	OpBcast
	OpReduce
	OpAllreduce
	OpGather
	OpGatherv
	OpScatter
	OpScatterv
	OpAllgather
	OpAllgatherv
	OpAlltoall
	OpAlltoallv
	OpReduceScatter
	OpBarrier
	opSentinel // keep last
)

var opNames = [...]string{
	OpInvalid:       "invalid",
	OpSend:          "send",
	OpRecv:          "recv",
	OpBcast:         "bcast",
	OpReduce:        "reduce",
	OpAllreduce:     "allreduce",
	OpGather:        "gather",
	OpGatherv:       "gatherv",
	OpScatter:       "scatter",
	OpScatterv:      "scatterv",
	OpAllgather:     "allgather",
	OpAllgatherv:    "allgatherv",
	OpAlltoall:      "alltoall",
	OpAlltoallv:     "alltoallv",
	OpReduceScatter: "reducescatter",
	OpBarrier:       "barrier",
}

// String returns the lower-case MPI-ish name of the operation.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a known operation.
func (o Op) Valid() bool { return o > OpInvalid && o < opSentinel }

// IsP2P reports whether the operation is point-to-point.
func (o Op) IsP2P() bool { return o == OpSend || o == OpRecv }

// IsCollective reports whether the operation is a collective.
func (o Op) IsCollective() bool { return o.Valid() && !o.IsP2P() }

// ParseOp converts a name produced by Op.String back into an Op.
func ParseOp(s string) (Op, error) {
	for i, n := range opNames {
		if n == s && Op(i).Valid() {
			return Op(i), nil
		}
	}
	return OpInvalid, fmt.Errorf("trace: unknown op %q", s)
}

// Event is one recorded MPI call.
type Event struct {
	// Rank is the calling rank.
	Rank int
	// Op is the MPI operation.
	Op Op
	// Peer is the destination (OpSend) or source (OpRecv) rank for
	// point-to-point operations; -1 otherwise.
	Peer int
	// Root is the root rank for rooted collectives (bcast, reduce,
	// gather, scatter); -1 otherwise.
	Root int
	// Bytes is the payload size of the call as recorded at the caller:
	// for p2p the message size, for collectives the per-caller buffer
	// contribution (the collective expansion in package mpi defines how
	// this is spread over the communicator).
	Bytes uint64
	// Comm identifies the communicator; 0 is MPI_COMM_WORLD. The study
	// only considers traces using the global communicator.
	Comm int32
	// Start and End are wall-clock timestamps in nanoseconds since the
	// start of the run.
	Start uint64
	End   uint64
}

// Validate checks internal consistency of the event against the given
// communicator size.
func (e Event) Validate(ranks int) error {
	if !e.Op.Valid() {
		return fmt.Errorf("trace: invalid op %d", e.Op)
	}
	if e.Rank < 0 || e.Rank >= ranks {
		return fmt.Errorf("trace: rank %d out of range [0,%d)", e.Rank, ranks)
	}
	if e.Op.IsP2P() {
		if e.Peer < 0 || e.Peer >= ranks {
			return fmt.Errorf("trace: peer %d out of range [0,%d)", e.Peer, ranks)
		}
		if e.Peer == e.Rank {
			return fmt.Errorf("trace: self message on rank %d", e.Rank)
		}
	}
	switch e.Op {
	case OpBcast, OpReduce, OpGather, OpGatherv, OpScatter, OpScatterv:
		if e.Root < 0 || e.Root >= ranks {
			return fmt.Errorf("trace: root %d out of range [0,%d)", e.Root, ranks)
		}
	}
	if e.End < e.Start {
		return fmt.Errorf("trace: end %d before start %d", e.End, e.Start)
	}
	return nil
}

// Meta describes a whole trace.
type Meta struct {
	// App is the application name, e.g. "LULESH".
	App string
	// Ranks is the size of MPI_COMM_WORLD.
	Ranks int
	// WallTime is the total execution time of the traced run in seconds.
	// The paper's utilization metric (eq. 5) divides by this.
	WallTime float64
}

// Validate checks the metadata.
func (m Meta) Validate() error {
	if m.Ranks <= 0 {
		return fmt.Errorf("trace: non-positive rank count %d", m.Ranks)
	}
	if m.WallTime < 0 {
		return fmt.Errorf("trace: negative wall time %v", m.WallTime)
	}
	return nil
}

// Trace is a fully materialized trace: metadata plus an ordered event list.
// Large traces can instead be consumed via the streaming Reader in codec.go.
type Trace struct {
	Meta   Meta
	Events []Event
}

// Validate checks metadata and every event.
func (t *Trace) Validate() error {
	if err := t.Meta.Validate(); err != nil {
		return err
	}
	for i, e := range t.Events {
		if err := e.Validate(t.Meta.Ranks); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return nil
}

// TotalBytes returns the sum of payload bytes over all events, split into
// point-to-point and collective contributions. Note that collective bytes
// are caller-side buffer sizes, not network volume; see package mpi for the
// expansion into wire messages.
func (t *Trace) TotalBytes() (p2p, coll uint64) {
	for _, e := range t.Events {
		switch {
		case e.Op == OpSend:
			p2p += e.Bytes
		case e.Op.IsCollective():
			coll += e.Bytes
		}
	}
	return p2p, coll
}

// ErrTruncated is reported by readers when a trace ends mid-record.
var ErrTruncated = errors.New("trace: truncated input")
