package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Binary format ("NLT1"):
//
//	header:
//	  magic   [4]byte  "NLT1"
//	  appLen  uint16   followed by appLen bytes of UTF-8 app name
//	  ranks   uint32
//	  wall    float64  (IEEE 754 bits, seconds)
//	  events  uint64   number of event records
//	record (fixed 45 bytes, little endian):
//	  rank  uint32
//	  op    uint8
//	  peer  int32
//	  root  int32
//	  bytes uint64
//	  comm  int32
//	  start uint64
//	  end   uint64
//
// The format is intentionally simple and versioned via the magic string,
// standing in for the sst-dumpi container the paper's traces use.

const binaryMagic = "NLT1"

// recordSize is the fixed on-disk size of one binary event record.
const recordSize = 4 + 1 + 4 + 4 + 8 + 4 + 8 + 8

// Writer streams a trace to an io.Writer in binary form. The event count
// must be known up front (it is part of the header); use WriteTrace for
// fully materialized traces.
type Writer struct {
	w      *bufio.Writer
	ranks  int
	left   uint64
	closed bool
}

// NewWriter writes the header and returns a Writer expecting exactly
// nEvents subsequent Write calls.
func NewWriter(w io.Writer, meta Meta, nEvents uint64) (*Writer, error) {
	if err := meta.Validate(); err != nil {
		return nil, err
	}
	if len(meta.App) > math.MaxUint16 {
		return nil, fmt.Errorf("trace: app name too long (%d bytes)", len(meta.App))
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return nil, err
	}
	var hdr [2 + 4 + 8 + 8]byte
	binary.LittleEndian.PutUint16(hdr[0:2], uint16(len(meta.App)))
	binary.LittleEndian.PutUint32(hdr[2:6], uint32(meta.Ranks))
	binary.LittleEndian.PutUint64(hdr[6:14], math.Float64bits(meta.WallTime))
	binary.LittleEndian.PutUint64(hdr[14:22], nEvents)
	// App name goes between the fixed header fields and the records so the
	// fixed part can be read with one call.
	if _, err := bw.Write(hdr[:2]); err != nil {
		return nil, err
	}
	if _, err := bw.WriteString(meta.App); err != nil {
		return nil, err
	}
	if _, err := bw.Write(hdr[2:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw, ranks: meta.Ranks, left: nEvents}, nil
}

// Write appends one event record.
func (w *Writer) Write(e Event) error {
	if w.closed {
		return fmt.Errorf("trace: write after Close")
	}
	if w.left == 0 {
		return fmt.Errorf("trace: more events than declared in header")
	}
	if err := e.Validate(w.ranks); err != nil {
		return err
	}
	var rec [recordSize]byte
	binary.LittleEndian.PutUint32(rec[0:4], uint32(e.Rank))
	rec[4] = byte(e.Op)
	binary.LittleEndian.PutUint32(rec[5:9], uint32(int32(e.Peer)))
	binary.LittleEndian.PutUint32(rec[9:13], uint32(int32(e.Root)))
	binary.LittleEndian.PutUint64(rec[13:21], e.Bytes)
	binary.LittleEndian.PutUint32(rec[21:25], uint32(e.Comm))
	binary.LittleEndian.PutUint64(rec[25:33], e.Start)
	binary.LittleEndian.PutUint64(rec[33:41], e.End)
	if _, err := w.w.Write(rec[:]); err != nil {
		return err
	}
	w.left--
	return nil
}

// Close flushes the writer and verifies the declared event count was met.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.left != 0 {
		return fmt.Errorf("trace: %d declared events were not written", w.left)
	}
	return w.w.Flush()
}

// WriteTrace writes a fully materialized trace in binary form.
func WriteTrace(w io.Writer, t *Trace) error {
	tw, err := NewWriter(w, t.Meta, uint64(len(t.Events)))
	if err != nil {
		return err
	}
	for _, e := range t.Events {
		if err := tw.Write(e); err != nil {
			return err
		}
	}
	return tw.Close()
}

// Reader streams events from a binary trace.
type Reader struct {
	r    *bufio.Reader
	meta Meta
	left uint64
}

// NewReader parses the header and returns a streaming reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", mapEOF(err))
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q (want %q)", magic, binaryMagic)
	}
	var lenBuf [2]byte
	if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
		return nil, mapEOF(err)
	}
	appLen := binary.LittleEndian.Uint16(lenBuf[:])
	app := make([]byte, appLen)
	if _, err := io.ReadFull(br, app); err != nil {
		return nil, mapEOF(err)
	}
	var rest [4 + 8 + 8]byte
	if _, err := io.ReadFull(br, rest[:]); err != nil {
		return nil, mapEOF(err)
	}
	meta := Meta{
		App:      string(app),
		Ranks:    int(binary.LittleEndian.Uint32(rest[0:4])),
		WallTime: math.Float64frombits(binary.LittleEndian.Uint64(rest[4:12])),
	}
	if err := meta.Validate(); err != nil {
		return nil, err
	}
	return &Reader{
		r:    br,
		meta: meta,
		left: binary.LittleEndian.Uint64(rest[12:20]),
	}, nil
}

// Meta returns the trace metadata.
func (r *Reader) Meta() Meta { return r.meta }

// Remaining returns the number of events not yet read.
func (r *Reader) Remaining() uint64 { return r.left }

// Read returns the next event, or io.EOF after the last declared event.
func (r *Reader) Read() (Event, error) {
	if r.left == 0 {
		return Event{}, io.EOF
	}
	var rec [recordSize]byte
	if _, err := io.ReadFull(r.r, rec[:]); err != nil {
		return Event{}, mapEOF(err)
	}
	e := Event{
		Rank:  int(binary.LittleEndian.Uint32(rec[0:4])),
		Op:    Op(rec[4]),
		Peer:  int(int32(binary.LittleEndian.Uint32(rec[5:9]))),
		Root:  int(int32(binary.LittleEndian.Uint32(rec[9:13]))),
		Bytes: binary.LittleEndian.Uint64(rec[13:21]),
		Comm:  int32(binary.LittleEndian.Uint32(rec[21:25])),
		Start: binary.LittleEndian.Uint64(rec[25:33]),
		End:   binary.LittleEndian.Uint64(rec[33:41]),
	}
	if err := e.Validate(r.meta.Ranks); err != nil {
		return Event{}, err
	}
	r.left--
	return e, nil
}

// ReadTrace reads a whole binary trace into memory.
func ReadTrace(r io.Reader) (*Trace, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	t := &Trace{Meta: tr.Meta()}
	if tr.Remaining() < 1<<24 { // avoid huge speculative allocs on hostile input
		t.Events = make([]Event, 0, tr.Remaining())
	}
	for {
		e, err := tr.Read()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		t.Events = append(t.Events, e)
	}
}

func mapEOF(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return ErrTruncated
	}
	return err
}

// WriteText writes a trace in a human-readable line format:
//
//	#netloc-trace app=<name> ranks=<n> wall=<seconds>
//	<rank> <op> <peer> <root> <bytes> <comm> <start> <end>
//
// One line per event, space separated. Lines starting with '#' after the
// header are comments.
func WriteText(w io.Writer, t *Trace) error {
	if err := t.Meta.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "#netloc-trace app=%s ranks=%d wall=%g\n",
		sanitizeApp(t.Meta.App), t.Meta.Ranks, t.Meta.WallTime); err != nil {
		return err
	}
	for _, e := range t.Events {
		if err := e.Validate(t.Meta.Ranks); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw, "%d %s %d %d %d %d %d %d\n",
			e.Rank, e.Op, e.Peer, e.Root, e.Bytes, e.Comm, e.Start, e.End); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func sanitizeApp(app string) string {
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\n' || r == '\t' {
			return '_'
		}
		return r
	}, app)
}

// ReadText parses the text format written by WriteText.
func ReadText(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, ErrTruncated
	}
	header := sc.Text()
	meta, err := parseTextHeader(header)
	if err != nil {
		return nil, err
	}
	t := &Trace{Meta: meta}
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := parseTextEvent(line)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		if err := e.Validate(meta.Ranks); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		t.Events = append(t.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

func parseTextHeader(line string) (Meta, error) {
	const prefix = "#netloc-trace "
	if !strings.HasPrefix(line, prefix) {
		return Meta{}, fmt.Errorf("trace: missing header, got %q", line)
	}
	var meta Meta
	seen := map[string]bool{}
	for _, field := range strings.Fields(line[len(prefix):]) {
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return Meta{}, fmt.Errorf("trace: malformed header field %q", field)
		}
		seen[k] = true
		switch k {
		case "app":
			meta.App = v
		case "ranks":
			n, err := strconv.Atoi(v)
			if err != nil {
				return Meta{}, fmt.Errorf("trace: bad ranks %q: %w", v, err)
			}
			meta.Ranks = n
		case "wall":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return Meta{}, fmt.Errorf("trace: bad wall %q: %w", v, err)
			}
			meta.WallTime = f
		default:
			return Meta{}, fmt.Errorf("trace: unknown header field %q", k)
		}
	}
	if !seen["ranks"] {
		return Meta{}, fmt.Errorf("trace: header missing ranks")
	}
	if err := meta.Validate(); err != nil {
		return Meta{}, err
	}
	return meta, nil
}

func parseTextEvent(line string) (Event, error) {
	fields := strings.Fields(line)
	if len(fields) != 8 {
		return Event{}, fmt.Errorf("want 8 fields, got %d", len(fields))
	}
	var e Event
	var err error
	if e.Rank, err = strconv.Atoi(fields[0]); err != nil {
		return Event{}, fmt.Errorf("bad rank: %w", err)
	}
	if e.Op, err = ParseOp(fields[1]); err != nil {
		return Event{}, err
	}
	if e.Peer, err = strconv.Atoi(fields[2]); err != nil {
		return Event{}, fmt.Errorf("bad peer: %w", err)
	}
	if e.Root, err = strconv.Atoi(fields[3]); err != nil {
		return Event{}, fmt.Errorf("bad root: %w", err)
	}
	if e.Bytes, err = strconv.ParseUint(fields[4], 10, 64); err != nil {
		return Event{}, fmt.Errorf("bad bytes: %w", err)
	}
	comm, err := strconv.ParseInt(fields[5], 10, 32)
	if err != nil {
		return Event{}, fmt.Errorf("bad comm: %w", err)
	}
	e.Comm = int32(comm)
	if e.Start, err = strconv.ParseUint(fields[6], 10, 64); err != nil {
		return Event{}, fmt.Errorf("bad start: %w", err)
	}
	if e.End, err = strconv.ParseUint(fields[7], 10, 64); err != nil {
		return Event{}, fmt.Errorf("bad end: %w", err)
	}
	return e, nil
}
