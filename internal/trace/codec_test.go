package trace

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleTrace() *Trace {
	return &Trace{
		Meta: Meta{App: "LULESH", Ranks: 8, WallTime: 54.14},
		Events: []Event{
			{Rank: 0, Op: OpSend, Peer: 1, Root: -1, Bytes: 4096, Comm: 0, Start: 10, End: 20},
			{Rank: 1, Op: OpRecv, Peer: 0, Root: -1, Bytes: 4096, Comm: 0, Start: 12, End: 22},
			{Rank: 2, Op: OpBcast, Peer: -1, Root: 0, Bytes: 64, Comm: 0, Start: 30, End: 31},
			{Rank: 3, Op: OpAllreduce, Peer: -1, Root: -1, Bytes: 8, Comm: 0, Start: 40, End: 45},
			{Rank: 7, Op: OpBarrier, Peer: -1, Root: -1, Bytes: 0, Comm: 0, Start: 50, End: 51},
		},
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatalf("round trip mismatch:\norig %+v\ngot  %+v", orig, got)
	}
}

func TestBinaryRoundTripEmptyEvents(t *testing.T) {
	orig := &Trace{Meta: Meta{App: "empty", Ranks: 2, WallTime: 0}}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != orig.Meta || len(got.Events) != 0 {
		t.Fatalf("mismatch: %+v", got)
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("XXXXjunkjunkjunk")); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

func TestBinaryTruncated(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Truncate mid-record and mid-header.
	for _, n := range []int{2, 10, len(full) - 5} {
		_, err := ReadTrace(bytes.NewReader(full[:n]))
		if err == nil {
			t.Errorf("truncation at %d not detected", n)
		}
	}
}

func TestWriterDeclaredCountEnforced(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Meta{App: "x", Ranks: 2, WallTime: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ev := Event{Rank: 0, Op: OpSend, Peer: 1, Root: -1, Bytes: 1}
	if err := w.Write(ev); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(ev); err == nil {
		t.Fatal("write beyond declared count should fail")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := NewWriter(&buf, Meta{App: "x", Ranks: 2, WallTime: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Write(ev); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err == nil {
		t.Fatal("Close with missing events should fail")
	}
}

func TestWriterRejectsInvalidEvent(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Meta{App: "x", Ranks: 2, WallTime: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Event{Rank: 5, Op: OpSend, Peer: 1, Root: -1}); err == nil {
		t.Fatal("invalid event accepted")
	}
}

func TestWriterRejectsBadMeta(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, Meta{Ranks: 0}, 0); err == nil {
		t.Fatal("bad meta accepted")
	}
}

func TestReaderStreaming(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Meta() != orig.Meta {
		t.Fatalf("meta mismatch: %+v", r.Meta())
	}
	if r.Remaining() != uint64(len(orig.Events)) {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
	for i := range orig.Events {
		e, err := r.Read()
		if err != nil {
			t.Fatalf("Read %d: %v", i, err)
		}
		if e != orig.Events[i] {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, e, orig.Events[i])
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
}

func TestTextRoundTrip(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := WriteText(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatalf("text round trip mismatch:\norig %+v\ngot  %+v", orig, got)
	}
}

func TestTextSkipsCommentsAndBlankLines(t *testing.T) {
	in := "#netloc-trace app=t ranks=2 wall=1\n\n# a comment\n0 send 1 -1 5 0 0 0\n"
	got, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != 1 || got.Events[0].Bytes != 5 {
		t.Fatalf("unexpected events: %+v", got.Events)
	}
}

func TestTextHeaderErrors(t *testing.T) {
	cases := []string{
		"",
		"not a header\n",
		"#netloc-trace app=x wall=1\n",          // missing ranks
		"#netloc-trace ranks=abc\n",             // bad ranks
		"#netloc-trace ranks=2 wall=zz\n",       // bad wall
		"#netloc-trace ranks=2 bogus=1\n",       // unknown field
		"#netloc-trace ranks=2 noequalsign\n",   // malformed field
		"#netloc-trace app=x ranks=0 wall=1\n",  // invalid meta
		"#netloc-trace app=x ranks=2 wall=-1\n", // negative wall
	}
	for _, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("header %q should fail", in)
		}
	}
}

func TestTextEventErrors(t *testing.T) {
	header := "#netloc-trace app=t ranks=2 wall=1\n"
	cases := []string{
		"0 send 1 -1 5 0 0\n",     // too few fields
		"0 send 1 -1 5 0 0 0 9\n", // too many fields
		"x send 1 -1 5 0 0 0\n",   // bad rank
		"0 nope 1 -1 5 0 0 0\n",   // bad op
		"0 send y -1 5 0 0 0\n",   // bad peer
		"0 send 1 zz 5 0 0 0\n",   // bad root
		"0 send 1 -1 -5 0 0 0\n",  // negative bytes
		"0 send 1 -1 5 q 0 0\n",   // bad comm
		"0 send 1 -1 5 0 q 0\n",   // bad start
		"0 send 1 -1 5 0 0 q\n",   // bad end
		"0 send 3 -1 5 0 0 0\n",   // peer out of range
	}
	for _, line := range cases {
		if _, err := ReadText(strings.NewReader(header + line)); err == nil {
			t.Errorf("line %q should fail", strings.TrimSpace(line))
		}
	}
}

func TestTextAppNameSanitized(t *testing.T) {
	tr := &Trace{Meta: Meta{App: "has space", Ranks: 2, WallTime: 1}}
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.App != "has_space" {
		t.Fatalf("app = %q", got.Meta.App)
	}
}

func randomEvent(rng *rand.Rand, ranks int) Event {
	ops := []Op{OpSend, OpRecv, OpBcast, OpReduce, OpAllreduce, OpGather,
		OpScatter, OpAllgather, OpAlltoall, OpAlltoallv, OpBarrier}
	op := ops[rng.Intn(len(ops))]
	e := Event{
		Rank:  rng.Intn(ranks),
		Op:    op,
		Peer:  -1,
		Root:  -1,
		Bytes: uint64(rng.Intn(1 << 20)),
		Comm:  0,
		Start: uint64(rng.Intn(1 << 30)),
	}
	e.End = e.Start + uint64(rng.Intn(1000))
	if op.IsP2P() {
		e.Peer = (e.Rank + 1 + rng.Intn(ranks-1)) % ranks
	}
	switch op {
	case OpBcast, OpReduce, OpGather, OpScatter:
		e.Root = rng.Intn(ranks)
	}
	return e
}

// Property: binary and text codecs round-trip arbitrary valid traces.
func TestCodecsRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, ranksRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ranks := 2 + int(ranksRaw)%30
		n := int(nRaw) % 64
		tr := &Trace{Meta: Meta{App: "prop", Ranks: ranks, WallTime: 1.5}}
		for i := 0; i < n; i++ {
			tr.Events = append(tr.Events, randomEvent(rng, ranks))
		}
		var bin bytes.Buffer
		if err := WriteTrace(&bin, tr); err != nil {
			return false
		}
		back, err := ReadTrace(&bin)
		if err != nil || back.Meta != tr.Meta {
			return false
		}
		if len(tr.Events) == 0 {
			if len(back.Events) != 0 {
				return false
			}
		} else if !reflect.DeepEqual(tr.Events, back.Events) {
			return false
		}
		var txt bytes.Buffer
		if err := WriteText(&txt, tr); err != nil {
			return false
		}
		back2, err := ReadText(&txt)
		if err != nil {
			return false
		}
		if len(tr.Events) == 0 {
			return len(back2.Events) == 0 && back2.Meta == tr.Meta
		}
		return reflect.DeepEqual(tr, back2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
