package trace

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestBinaryReaderSurvivesCorruption flips random bytes in valid trace
// streams and checks the reader either returns an error or a trace whose
// events all validate — it must never panic or return invalid events.
func TestBinaryReaderSurvivesCorruption(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 500; trial++ {
		corrupted := append([]byte(nil), clean...)
		flips := 1 + rng.Intn(4)
		for i := 0; i < flips; i++ {
			pos := rng.Intn(len(corrupted))
			corrupted[pos] ^= byte(1 + rng.Intn(255))
		}
		tr, err := ReadTrace(bytes.NewReader(corrupted))
		if err != nil {
			continue // rejected: fine
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("trial %d: reader returned invalid trace: %v", trial, err)
		}
	}
}

// TestBinaryReaderSurvivesTruncationEverywhere truncates a valid stream at
// every byte offset: all prefixes must be rejected or parse to a valid
// trace (a prefix that happens to contain fewer declared events cannot
// occur because the count is in the header, so errors are expected).
func TestBinaryReaderSurvivesTruncationEverywhere(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	for n := 0; n < len(clean); n++ {
		if _, err := ReadTrace(bytes.NewReader(clean[:n])); err == nil {
			t.Fatalf("truncation at %d of %d accepted", n, len(clean))
		}
	}
	if _, err := ReadTrace(bytes.NewReader(clean)); err != nil {
		t.Fatalf("full stream rejected: %v", err)
	}
}

// TestTextReaderSurvivesRandomJunk feeds random printable junk to the text
// parser: it must error out, never panic.
func TestTextReaderSurvivesRandomJunk(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	alphabet := []byte("abcdefgh0123456789 .-#\n=")
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(200)
		junk := make([]byte, n)
		for i := range junk {
			junk[i] = alphabet[rng.Intn(len(alphabet))]
		}
		tr, err := ReadText(bytes.NewReader(junk))
		if err == nil {
			// Only acceptable if it parsed into a valid trace (e.g. the
			// junk happened to start with a valid header).
			if vErr := tr.Validate(); vErr != nil {
				t.Fatalf("trial %d: junk parsed to invalid trace: %v", trial, vErr)
			}
		}
	}
}

// TestHeaderLengthFieldAbuse checks hostile header length fields don't
// cause huge allocations or panics.
func TestHeaderLengthFieldAbuse(t *testing.T) {
	// Magic + absurd app length with nothing after it.
	data := append([]byte(binaryMagic), 0xFF, 0xFF)
	if _, err := ReadTrace(bytes.NewReader(data)); err == nil {
		t.Fatal("truncated huge app name accepted")
	}
	// Valid-ish header declaring 2^63 events but carrying none.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Meta{App: "x", Ranks: 2, WallTime: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// The event-count field is the last 8 bytes of the header.
	for i := len(raw) - 8; i < len(raw); i++ {
		raw[i] = 0xFF
	}
	if _, err := ReadTrace(bytes.NewReader(raw)); err == nil {
		t.Fatal("huge declared event count with empty body accepted")
	}
}
