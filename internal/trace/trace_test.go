package trace

import (
	"strings"
	"testing"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		OpSend:          "send",
		OpRecv:          "recv",
		OpBcast:         "bcast",
		OpAllreduce:     "allreduce",
		OpAlltoallv:     "alltoallv",
		OpBarrier:       "barrier",
		OpReduceScatter: "reducescatter",
		OpInvalid:       "invalid",
		Op(200):         "op(200)",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
}

func TestParseOpRoundTrip(t *testing.T) {
	for op := OpSend; op < opSentinel; op++ {
		got, err := ParseOp(op.String())
		if err != nil {
			t.Fatalf("ParseOp(%q): %v", op.String(), err)
		}
		if got != op {
			t.Errorf("ParseOp(%q) = %v, want %v", op.String(), got, op)
		}
	}
}

func TestParseOpRejectsUnknown(t *testing.T) {
	for _, s := range []string{"", "invalid", "MPI_Send", "sendx"} {
		if _, err := ParseOp(s); err == nil {
			t.Errorf("ParseOp(%q) should fail", s)
		}
	}
}

func TestOpClassification(t *testing.T) {
	if !OpSend.IsP2P() || !OpRecv.IsP2P() {
		t.Fatal("send/recv must be p2p")
	}
	if OpSend.IsCollective() {
		t.Fatal("send is not collective")
	}
	for _, op := range []Op{OpBcast, OpReduce, OpAllreduce, OpGather, OpScatter,
		OpAllgather, OpAlltoall, OpAlltoallv, OpBarrier, OpReduceScatter} {
		if !op.IsCollective() {
			t.Errorf("%v should be collective", op)
		}
		if op.IsP2P() {
			t.Errorf("%v should not be p2p", op)
		}
	}
	if OpInvalid.Valid() || Op(250).Valid() {
		t.Fatal("invalid ops must not be Valid")
	}
}

func TestEventValidate(t *testing.T) {
	valid := Event{Rank: 0, Op: OpSend, Peer: 1, Root: -1, Bytes: 10}
	if err := valid.Validate(4); err != nil {
		t.Fatalf("valid event rejected: %v", err)
	}
	cases := []struct {
		name string
		e    Event
	}{
		{"bad op", Event{Rank: 0, Op: OpInvalid, Peer: 1, Root: -1}},
		{"rank out of range", Event{Rank: 4, Op: OpSend, Peer: 1, Root: -1}},
		{"negative rank", Event{Rank: -1, Op: OpSend, Peer: 1, Root: -1}},
		{"peer out of range", Event{Rank: 0, Op: OpSend, Peer: 4, Root: -1}},
		{"self message", Event{Rank: 2, Op: OpSend, Peer: 2, Root: -1}},
		{"bcast bad root", Event{Rank: 0, Op: OpBcast, Peer: -1, Root: 9}},
		{"gather negative root", Event{Rank: 0, Op: OpGather, Peer: -1, Root: -1}},
		{"end before start", Event{Rank: 0, Op: OpSend, Peer: 1, Root: -1, Start: 5, End: 3}},
	}
	for _, c := range cases {
		if err := c.e.Validate(4); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestEventValidateCollectiveNoRoot(t *testing.T) {
	// Non-rooted collectives don't need a valid root.
	e := Event{Rank: 1, Op: OpAllreduce, Peer: -1, Root: -1, Bytes: 8}
	if err := e.Validate(4); err != nil {
		t.Fatalf("allreduce with root -1 rejected: %v", err)
	}
}

func TestMetaValidate(t *testing.T) {
	if err := (Meta{App: "x", Ranks: 1}).Validate(); err != nil {
		t.Fatalf("valid meta rejected: %v", err)
	}
	if err := (Meta{Ranks: 0}).Validate(); err == nil {
		t.Fatal("zero ranks should fail")
	}
	if err := (Meta{Ranks: 2, WallTime: -1}).Validate(); err == nil {
		t.Fatal("negative wall time should fail")
	}
}

func TestTraceValidateFlagsBadEvent(t *testing.T) {
	tr := &Trace{
		Meta: Meta{App: "t", Ranks: 2, WallTime: 1},
		Events: []Event{
			{Rank: 0, Op: OpSend, Peer: 1, Root: -1, Bytes: 1},
			{Rank: 0, Op: OpSend, Peer: 5, Root: -1, Bytes: 1},
		},
	}
	err := tr.Validate()
	if err == nil || !strings.Contains(err.Error(), "event 1") {
		t.Fatalf("want event-1 error, got %v", err)
	}
}

func TestTotalBytes(t *testing.T) {
	tr := &Trace{
		Meta: Meta{App: "t", Ranks: 4, WallTime: 1},
		Events: []Event{
			{Rank: 0, Op: OpSend, Peer: 1, Root: -1, Bytes: 100},
			{Rank: 1, Op: OpRecv, Peer: 0, Root: -1, Bytes: 100}, // recv not counted
			{Rank: 2, Op: OpAllreduce, Peer: -1, Root: -1, Bytes: 30},
			{Rank: 3, Op: OpBarrier, Peer: -1, Root: -1, Bytes: 0},
		},
	}
	p2p, coll := tr.TotalBytes()
	if p2p != 100 {
		t.Errorf("p2p = %d, want 100", p2p)
	}
	if coll != 30 {
		t.Errorf("coll = %d, want 30", coll)
	}
}
