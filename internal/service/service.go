// Package service exposes the study's experiment grid, per-workload
// analyses, topology inspection, and uploaded-trace analysis as a
// long-running HTTP JSON API. Repeated queries over the (app × scale ×
// topology × mapping) grid are served from a bounded LRU result cache,
// concurrent identical requests are deduplicated through a singleflight
// group so each result is computed once, and all computation runs inside
// a worker pool bounded to the configured parallelism. Observability is
// built in: per-endpoint request counters and latency histograms, cache
// hit/miss counters, engine-pool gauges, and pipeline work counters live
// in one obs.Registry served at /metrics — as expvar-style JSON by
// default, or Prometheus text exposition via ?format=prom or an Accept
// header asking for text/plain. Every computation runs under a stage
// span recorded in a bounded ring served at /v1/debug/runs. cmd/netlocd
// is the daemon wrapping this package.
//
// Endpoints:
//
//	GET  /healthz                   liveness probe
//	GET  /metrics                   observability snapshot (JSON or
//	                                Prometheus text via ?format=prom)
//	GET  /v1/experiments            list experiments with descriptions
//	GET  /v1/experiments/{name}     run one experiment (table1..4, fig1,
//	                                fig3..5, sim, congestion, score,
//	                                claims); query
//	                                params: app, ranks, rank, minranks,
//	                                coverage, strategy, maxranks
//	GET  /v1/analyze                analyze one workload configuration;
//	                                query params: app, ranks, topo,
//	                                mapping, coverage, strategy
//	GET  /v1/topologies             inspect the Table 2 configurations
//	                                for a rank count; query param: ranks
//	POST /v1/traces/analyze         analyze an uploaded binary .nlt trace
//	POST /v1/design                 synchronous topology design search
//	                                (JSON body: app, ranks, families,
//	                                mappings, constraints, weights)
//	POST /v1/design/trace           design search over an uploaded .nlt
//	                                trace; constraints via query params
//	POST /v1/congestion             temporal congestion study over a
//	                                workload × topology × routing-policy
//	                                grid, with latency-tolerance sweeps
//	                                (JSON body: workloads, policies,
//	                                growth_pct, max_ranks; all optional)
//	POST /v1/design/jobs            submit an async design search job
//	GET  /v1/design/jobs            list retained design jobs
//	GET  /v1/design/jobs/{id}       poll one job (progress, then sheet)
//	DELETE /v1/design/jobs/{id}     cancel a running job
//	GET  /v1/debug/runs             recent analysis runs with their
//	                                nested stage spans (newest first);
//	                                ?n= limits the listing
//	GET  /v1/debug/runs/{id}        one recorded run by its monotonic ID
//	GET  /v1/debug/runs/{id}/trace  the run as Chrome trace-event JSON
//	                                (open in Perfetto / chrome://tracing)
package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"netloc/internal/core"
	"netloc/internal/design"
	"netloc/internal/harness"
	"netloc/internal/metrics"
	"netloc/internal/mpi"
	"netloc/internal/obs"
	"netloc/internal/parallel"
	"netloc/internal/report"
	"netloc/internal/topology"
	"netloc/internal/trace"
	"netloc/internal/workcache"
	"netloc/internal/workloads"
)

// Options configures a Server.
type Options struct {
	// CacheEntries bounds the LRU result cache; 256 when zero.
	CacheEntries int
	// Workers bounds concurrent trace generation/simulation;
	// GOMAXPROCS when zero.
	Workers int
	// MaxUploadBytes bounds POSTed trace bodies; 64 MiB when zero.
	MaxUploadBytes int64
	// DesignJobs bounds the async design-job store;
	// design.DefaultJobCapacity when zero.
	DesignJobs int
	// ArtifactEntries bounds the workload artifact cache shared by every
	// analysis (generated traces and accumulated matrices);
	// workcache.DefaultMaxEntries when zero.
	ArtifactEntries int
	// Log, when set, enables structured request logging: one record per
	// request with its request ID, endpoint, status, and latency, plus
	// one canonical "run_complete" event per completed run (cache state,
	// analysis dims, queue wait) and "slow_run" warnings from the
	// slow-run detector. Nil disables logging (the default; tests and
	// embedders stay quiet).
	Log *slog.Logger
	// RuntimeSampleInterval, when positive, starts the runtime telemetry
	// sampler: netloc_runtime_{goroutines,heap_bytes,gc_pauses_total,
	// gc_pause_seconds} sampled on this interval and a "runtime" block
	// in the JSON /metrics document. Zero (the default) registers
	// nothing, keeping /metrics output byte-identical for existing
	// consumers and tests. Stop the sampler with Close.
	RuntimeSampleInterval time.Duration
	// SlowRunThreshold flags computed runs slower than this duration
	// (queue wait included): each one bumps
	// netloc_slow_runs_total{endpoint} and, with Log set, logs the run's
	// per-stage span summary. Zero disables detection.
	SlowRunThreshold time.Duration
	// SlowRunEndpointThresholds overrides SlowRunThreshold per endpoint
	// key (e.g. "experiments", "design"); an explicit zero disables
	// detection for that endpoint only.
	SlowRunEndpointThresholds map[string]time.Duration
	// Analysis supplies defaults for every analysis (coverage, packet
	// size, bandwidth, rank cap). Query parameters override coverage,
	// strategy, and the cap per request.
	Analysis core.Options
}

// Server is the analysis service: an http.Handler with a result cache,
// request deduplication, a bounded worker pool, and metrics.
//
// The pool is one parallel.Budget of Workers tokens serving two levels
// at once: each computing request holds one token (blocking admission,
// as before), and the parallel analysis engine inside a request admits
// extra workers only from the same budget's spare tokens
// (non-blocking). An idle server therefore gives one request the full
// budget, while a saturated server degrades each request to its single
// admission token instead of oversubscribing CPU.
type Server struct {
	opts      Options
	mux       *http.ServeMux
	cache     *lruCache
	group     flightGroup
	budget    *parallel.Budget
	metrics   *metricsRegistry
	tracer    *obs.Tracer
	jobs      *design.Store
	work      *workcache.Cache
	requestID atomic.Int64
}

// endpointNames are the instrumentation keys of the metrics registry.
var endpointNames = []string{
	"healthz", "metrics", "experiments", "analyze", "topologies", "traces",
	"design", "design_jobs", "congestion", "debug",
}

// New constructs a Server with the given options.
func New(opts Options) *Server {
	if opts.CacheEntries == 0 {
		opts.CacheEntries = 256
	}
	if opts.Workers == 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.MaxUploadBytes == 0 {
		opts.MaxUploadBytes = 64 << 20
	}
	s := &Server{
		opts:    opts,
		mux:     http.NewServeMux(),
		cache:   newLRUCache(opts.CacheEntries),
		budget:  parallel.NewBudget(opts.Workers),
		metrics: newMetricsRegistry(endpointNames),
		tracer:  obs.NewTracer(obs.DefaultTracerRuns),
		work:    workcache.New(opts.ArtifactEntries),
	}
	s.jobs = design.NewStore(opts.DesignJobs)
	s.jobs.Search = s.designSearch
	s.metrics.bindEngine(s.budget, s.cache, s.tracer)
	s.metrics.bindDesignJobs(s.jobs)
	s.metrics.bindWorkcache(s.work)
	s.metrics.configureRuns(opts.Log, opts.SlowRunThreshold, opts.SlowRunEndpointThresholds)
	if opts.RuntimeSampleInterval > 0 {
		sampler := obs.NewRuntimeSampler(s.metrics.reg, opts.RuntimeSampleInterval)
		sampler.Start()
		s.metrics.bindRuntime(sampler)
	}
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /v1/experiments", s.instrument("experiments", s.handleExperimentList))
	s.mux.HandleFunc("GET /v1/experiments/{name}", s.instrument("experiments", s.handleExperiment))
	s.mux.HandleFunc("GET /v1/analyze", s.instrument("analyze", s.handleAnalyze))
	s.mux.HandleFunc("GET /v1/topologies", s.instrument("topologies", s.handleTopologies))
	s.mux.HandleFunc("POST /v1/traces/analyze", s.instrument("traces", s.handleTraceAnalyze))
	s.mux.HandleFunc("POST /v1/design", s.instrument("design", s.handleDesign))
	s.mux.HandleFunc("POST /v1/design/trace", s.instrument("design", s.handleDesignTrace))
	s.mux.HandleFunc("POST /v1/design/jobs", s.instrument("design_jobs", s.handleDesignJobSubmit))
	s.mux.HandleFunc("GET /v1/design/jobs", s.instrument("design_jobs", s.handleDesignJobList))
	s.mux.HandleFunc("GET /v1/design/jobs/{id}", s.instrument("design_jobs", s.handleDesignJobGet))
	s.mux.HandleFunc("DELETE /v1/design/jobs/{id}", s.instrument("design_jobs", s.handleDesignJobCancel))
	s.mux.HandleFunc("POST /v1/congestion", s.instrument("congestion", s.handleCongestion))
	s.mux.HandleFunc("GET /v1/debug/runs", s.instrument("debug", s.handleDebugRuns))
	s.mux.HandleFunc("GET /v1/debug/runs/{id}", s.instrument("debug", s.handleDebugRun))
	s.mux.HandleFunc("GET /v1/debug/runs/{id}/trace", s.instrument("debug", s.handleDebugRunTrace))
	return s
}

// Close releases the server's background resources (currently the
// opt-in runtime telemetry sampler). Safe to call more than once; the
// zero-configuration server has nothing to release.
func (s *Server) Close() {
	if s.metrics.runtime != nil {
		s.metrics.runtime.Stop()
	}
}

// Handler returns the service's http.Handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Options returns the server's effective configuration, with zero-value
// defaults (cache size, workers, upload cap) filled in.
func (s *Server) Options() Options { return s.opts }

// ServeHTTP implements http.Handler directly.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// statusWriter records the response status for error accounting.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// reqInfo identifies the request a computation belongs to; instrument
// stores it in the request context so the cached/compute layer can
// stamp canonical run events without widening every handler signature.
type reqInfo struct {
	id       string
	endpoint string
}

type reqInfoKey struct{}

// requestInfo extracts the instrumentation identity stored by
// instrument (zero value when the request bypassed it, e.g. in direct
// handler tests).
func requestInfo(r *http.Request) reqInfo {
	info, _ := r.Context().Value(reqInfoKey{}).(reqInfo)
	return info
}

// instrument wraps a handler with the endpoint's request counter, error
// counter, latency histogram, the global in-flight gauge, a response
// X-Request-ID header, and (when Options.Log is set) one structured log
// record per request.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	em := s.metrics.endpoints[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := s.requestID.Add(1)
		idStr := fmt.Sprintf("%08x", id)
		w.Header().Set("X-Request-ID", idStr)
		r = r.WithContext(context.WithValue(r.Context(), reqInfoKey{}, reqInfo{id: idStr, endpoint: endpoint}))
		s.metrics.inFlight.Add(1)
		defer s.metrics.inFlight.Add(-1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		elapsed := time.Since(start)
		em.requests.Inc()
		if sw.status >= 400 {
			em.errors.Inc()
		}
		em.observeLatency(elapsed)
		if s.opts.Log != nil {
			s.opts.Log.Info("request",
				"id", id,
				"endpoint", endpoint,
				"method", r.Method,
				"path", r.URL.Path,
				"status", sw.status,
				"duration_ms", float64(elapsed)/float64(time.Millisecond))
		}
	}
}

func writeJSONBytes(w http.ResponseWriter, b []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

func writeJSON(w http.ResponseWriter, v any) {
	b, err := report.JSONBytes(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSONBytes(w, b)
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	b, _ := report.JSONBytes(map[string]string{"error": err.Error()})
	w.Write(b)
}

// runDims carries a request's analysis dimensions (which workload,
// topology, and scale a run was about) into its canonical run event;
// zero fields are simply omitted from the log line.
type runDims struct {
	App   string
	Topo  string
	Ranks int
}

// msSince is a duration-to-milliseconds helper for event fields.
func msSince(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond)
}

// cached serves one canonicalized request: from the LRU on a hit,
// otherwise through the singleflight group and the worker pool, caching
// the marshaled bytes for the next identical request. Each executed
// computation runs under a root span (compute receives it to hand down
// to the pipeline); the finished run lands in the span ring, its work
// counts feed the pipeline counters, and exactly one canonical run
// event is logged per caller — cache="miss" for the computing leader
// (through the completeRun chokepoint, where the slow-run detector
// also looks), cache="hit" for LRU hits, cache="dedup" for followers
// that joined an identical in-flight computation.
func (s *Server) cached(r *http.Request, dims runDims, key string, compute func(sp *obs.Span) (any, error)) ([]byte, error) {
	info := requestInfo(r)
	start := time.Now()
	event := func(cache string) obs.RunEvent {
		return obs.RunEvent{
			RequestID: info.id, Endpoint: info.endpoint,
			App: dims.App, Topology: dims.Topo, Ranks: dims.Ranks,
			Cache: cache, DurationMS: msSince(start),
		}
	}
	if b, ok := s.cache.Get(key); ok {
		s.metrics.cacheHits.Inc()
		s.metrics.logRun(event("hit"))
		return b, nil
	}
	s.metrics.cacheMisses.Inc()
	b, err, shared := s.group.Do(key, func() ([]byte, error) {
		admit := time.Now()
		s.budget.Acquire() // request-level admission: one token per computation
		queueWait := time.Since(admit)
		defer s.budget.Release()
		s.metrics.computations.Inc()
		root := s.tracer.StartRun(key)
		v, err := compute(root)
		root.End()
		ev := event("miss")
		ev.RunID = root.RunID()
		ev.QueueWaitMS = float64(queueWait) / float64(time.Millisecond)
		if err != nil {
			ev.Err = err.Error()
		}
		s.metrics.completeRun(root.Data(), ev)
		if err != nil {
			return nil, err
		}
		b, err := report.JSONBytes(v)
		if err != nil {
			return nil, err
		}
		s.cache.Add(key, b)
		return b, nil
	})
	if shared {
		s.metrics.deduped.Inc()
		s.metrics.logRun(event("dedup"))
	}
	return b, err
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"status": "ok", "experiments": len(harness.Experiments())})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", obs.PrometheusContentType)
		if err := s.metrics.reg.WritePrometheus(w); err != nil {
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	writeJSON(w, s.metrics.snapshot(s.cache.Len(), s.cache.Evictions(), s.budget.Stats()))
}

// wantsPrometheus selects the text exposition format: explicitly via
// ?format=prom, or via an Accept header asking for text/plain or
// OpenMetrics (what Prometheus scrapers send). The default stays JSON,
// so existing consumers see an unchanged document.
func wantsPrometheus(r *http.Request) bool {
	if r.URL.Query().Get("format") == "prom" {
		return true
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

// DebugRuns is the /v1/debug/runs response: the most recent analysis
// runs (newest first) with their nested stage spans, plus how many runs
// were recorded over the server's lifetime.
type DebugRuns struct {
	Recorded int64           `json:"recorded"`
	Runs     []obs.RunRecord `json:"runs"`
}

func (s *Server) handleDebugRuns(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	n := 0
	if raw := q.Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("service: bad n %q: want a positive integer (1..%d)", raw, obs.DefaultTracerRuns))
			return
		}
		n = v
	}
	runs := s.tracer.Runs()
	if n > 0 && n < len(runs) {
		runs = runs[:n]
	}
	writeJSON(w, DebugRuns{Recorded: s.tracer.Recorded(), Runs: runs})
}

// debugRun resolves the {id} path value of the single-run endpoints:
// 400 for a malformed ID, 404 for one that was never assigned or has
// already rotated out of the bounded ring.
func (s *Server) debugRun(w http.ResponseWriter, r *http.Request) (obs.RunRecord, bool) {
	raw := r.PathValue("id")
	id, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || id < 1 {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("service: bad run id %q: want a positive integer", raw))
		return obs.RunRecord{}, false
	}
	rec, ok := s.tracer.Run(id)
	if !ok {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("service: run %d not found (recorded %d, ring keeps the most recent %d)",
				id, s.tracer.Recorded(), obs.DefaultTracerRuns))
		return obs.RunRecord{}, false
	}
	return rec, true
}

func (s *Server) handleDebugRun(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.debugRun(w, r)
	if !ok {
		return
	}
	writeJSON(w, rec)
}

// handleDebugRunTrace serves one recorded run as Chrome trace-event
// JSON — the same bytes obs.WriteChromeTrace renders for the CLIs'
// -trace-out flags — so a service run can be dropped straight into
// Perfetto or chrome://tracing.
func (s *Server) handleDebugRunTrace(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.debugRun(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	// A write error here means the client went away mid-response;
	// headers are already out, so there is nothing useful left to do.
	_ = obs.WriteChromeTrace(w, rec.Root)
}

// ExperimentInfo is one row of the experiment listing.
type ExperimentInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

func (s *Server) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	var out []ExperimentInfo
	for _, name := range harness.Experiments() {
		desc, _ := harness.Describe(name)
		out = append(out, ExperimentInfo{Name: name, Description: desc})
	}
	writeJSON(w, out)
}

// queryInt parses an optional integer query parameter.
func queryInt(q url.Values, name string, def int) (int, error) {
	v := q.Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("service: bad %s %q: not an integer", name, v)
	}
	return n, nil
}

// queryNonNegInt parses an optional integer query parameter and rejects
// negative values, which would otherwise flow into the harness as
// nonsense grid bounds or rank indexes.
func queryNonNegInt(q url.Values, name string, def int) (int, error) {
	n, err := queryInt(q, name, def)
	if err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("service: %s %d is negative", name, n)
	}
	return n, nil
}

// queryFloat parses an optional float query parameter.
func queryFloat(q url.Values, name string, def float64) (float64, error) {
	v := q.Get(name)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("service: bad %s %q: not a number", name, v)
	}
	return f, nil
}

// analysisOptions builds the per-request core.Options: the server's
// defaults with coverage, strategy, and maxranks overridden from the
// query. The returned values are canonicalized (defaults filled in) so
// equivalent requests share one cache key.
func (s *Server) analysisOptions(q url.Values) (core.Options, error) {
	opts := s.opts.Analysis
	cov, err := queryFloat(q, "coverage", opts.Coverage)
	if err != nil {
		return opts, err
	}
	if cov == 0 {
		cov = metrics.DefaultCoverage
	}
	if cov <= 0 || cov > 1 {
		return opts, fmt.Errorf("service: coverage %g out of range (0,1]", cov)
	}
	opts.Coverage = cov
	strat, err := mpi.ParseStrategy(q.Get("strategy"))
	if err != nil {
		return opts, err
	}
	opts.Strategy = strat
	maxRanks, err := queryNonNegInt(q, "maxranks", opts.MaxRanks)
	if err != nil {
		return opts, err
	}
	opts.MaxRanks = maxRanks
	// Intra-request parallelism draws from the same budget that admits
	// requests, so the two levels compose instead of oversubscribing.
	// Parallelism never changes results, so it stays out of cache keys —
	// and neither does the artifact cache, whose contents are
	// byte-identical to fresh generation (uploaded traces bypass it
	// entirely in core.AnalyzeTrace).
	opts.Parallelism = s.opts.Workers
	opts.Budget = s.budget
	opts.Cache = s.work
	return opts, nil
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if _, err := harness.Describe(name); err != nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w (known: %v)", err, harness.Experiments()))
		return
	}
	q := r.URL.Query()
	opts, err := s.analysisOptions(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	p := harness.Params{Experiment: name, App: q.Get("app"), Options: opts}
	if p.Ranks, err = queryNonNegInt(q, "ranks", 0); err == nil {
		if p.Rank, err = queryNonNegInt(q, "rank", 0); err == nil {
			p.MinRanks, err = queryNonNegInt(q, "minranks", 0)
		}
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key := fmt.Sprintf("exp/%s?app=%s&coverage=%g&maxranks=%d&minranks=%d&rank=%d&ranks=%d&strategy=%s",
		name, p.App, opts.Coverage, opts.MaxRanks, p.MinRanks, p.Rank, p.Ranks, opts.Strategy)
	b, err := s.cached(r, runDims{App: p.App, Ranks: p.Ranks}, key, func(sp *obs.Span) (any, error) {
		q := p
		q.Options.Span = sp
		return harness.Collect(q)
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSONBytes(w, b)
}

// AnalyzeResult is the /v1/analyze response: the canonicalized request
// plus the analysis (MPI-level metrics and the selected topology blocks).
type AnalyzeResult struct {
	App      string         `json:"app"`
	Ranks    int            `json:"ranks"`
	Topology string         `json:"topology"`
	Mapping  string         `json:"mapping"`
	Coverage float64        `json:"coverage"`
	Analysis *core.Analysis `json:"analysis"`
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	app := q.Get("app")
	if app == "" {
		writeError(w, http.StatusBadRequest, errors.New("service: missing app parameter"))
		return
	}
	if _, err := workloads.Lookup(app); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	ranks, err := queryInt(q, "ranks", 0)
	if err != nil || ranks < 1 {
		if err == nil {
			err = fmt.Errorf("service: ranks %d out of range (need >= 1)", ranks)
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	topo := q.Get("topo")
	switch topo {
	case "":
		topo = "all"
	case "all":
	default:
		known := false
		for _, k := range core.AnalysisKinds() {
			known = known || topo == k
		}
		if !known {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("service: unknown topo %q (all|%s)", topo, strings.Join(core.AnalysisKinds(), "|")))
			return
		}
	}
	mapping := q.Get("mapping")
	if mapping == "" {
		mapping = core.MappingConsecutive
	}
	if !knownMapping(mapping) {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("service: unknown mapping %q (known: %v)", mapping, core.MappingNames()))
		return
	}
	opts, err := s.analysisOptions(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key := fmt.Sprintf("analyze?app=%s&coverage=%g&mapping=%s&ranks=%d&strategy=%s&topo=%s",
		app, opts.Coverage, mapping, ranks, opts.Strategy, topo)
	b, err := s.cached(r, runDims{App: app, Topo: topo, Ranks: ranks}, key, func(sp *obs.Span) (any, error) {
		o := opts
		o.Span = sp
		a, err := core.AnalyzeAppOn(app, ranks, topo, mapping, o)
		if err != nil {
			return nil, err
		}
		return &AnalyzeResult{
			App: a.App, Ranks: a.Ranks, Topology: topo, Mapping: mapping,
			Coverage: opts.Coverage, Analysis: a,
		}, nil
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSONBytes(w, b)
}

func knownMapping(name string) bool {
	for _, m := range core.MappingNames() {
		if m == name {
			return true
		}
	}
	return false
}

// TopoInfo describes one built topology configuration.
type TopoInfo struct {
	Config        topology.Config `json:"config"`
	Label         string          `json:"label"`
	Nodes         int             `json:"nodes"`
	Switches      int             `json:"switches"`
	Links         int             `json:"links"`
	TerminalLinks int             `json:"terminal_links"`
	LocalLinks    int             `json:"local_links"`
	GlobalLinks   int             `json:"global_links"`
}

// TopologiesResult is the /v1/topologies response: the three Table 2
// configurations for a rank count, each built and measured, plus the
// extreme-scale families (Slim Fly, Jellyfish, HyperX) sized for the
// same rank count. The extra blocks are pointers so a rank count one of
// the auxiliary sizers cannot satisfy simply omits that family instead
// of failing the whole response.
type TopologiesResult struct {
	Ranks     int       `json:"ranks"`
	Torus     TopoInfo  `json:"torus"`
	FatTree   TopoInfo  `json:"fattree"`
	Dragonfly TopoInfo  `json:"dragonfly"`
	SlimFly   *TopoInfo `json:"slimfly,omitempty"`
	Jellyfish *TopoInfo `json:"jellyfish,omitempty"`
	HyperX    *TopoInfo `json:"hyperx,omitempty"`
}

func topoInfo(cfg topology.Config, cache *workcache.Cache) (TopoInfo, error) {
	t, err := cache.Topology(cfg, cfg.Build)
	if err != nil {
		return TopoInfo{}, err
	}
	info := TopoInfo{
		Config:   cfg,
		Label:    cfg.String(),
		Nodes:    t.Nodes(),
		Switches: t.NumVertices() - t.Nodes(),
		Links:    len(t.Links()),
	}
	for _, class := range t.LinkClasses() {
		switch class {
		case topology.ClassTerminal:
			info.TerminalLinks++
		case topology.ClassLocal:
			info.LocalLinks++
		case topology.ClassGlobal:
			info.GlobalLinks++
		}
	}
	return info, nil
}

func (s *Server) handleTopologies(w http.ResponseWriter, r *http.Request) {
	ranks, err := queryInt(r.URL.Query(), "ranks", 0)
	if err != nil || ranks < 1 {
		if err == nil {
			err = fmt.Errorf("service: ranks %d out of range (need >= 1)", ranks)
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key := fmt.Sprintf("topo?ranks=%d", ranks)
	b, err := s.cached(r, runDims{Ranks: ranks}, key, func(*obs.Span) (any, error) {
		tor, ft, df, err := topology.Configs(ranks)
		if err != nil {
			return nil, err
		}
		out := TopologiesResult{Ranks: ranks}
		if out.Torus, err = topoInfo(tor, s.work); err != nil {
			return nil, err
		}
		if out.FatTree, err = topoInfo(ft, s.work); err != nil {
			return nil, err
		}
		if out.Dragonfly, err = topoInfo(df, s.work); err != nil {
			return nil, err
		}
		extra := []struct {
			sizer func(int) (topology.Config, error)
			dst   **TopoInfo
		}{
			{topology.SlimFlyConfig, &out.SlimFly},
			{topology.JellyfishConfig, &out.Jellyfish},
			{topology.HyperXConfig, &out.HyperX},
		}
		for _, e := range extra {
			cfg, err := e.sizer(ranks)
			if err != nil {
				continue // no valid configuration at this size: omit the block
			}
			info, err := topoInfo(cfg, s.work)
			if err != nil {
				return nil, err
			}
			*e.dst = &info
		}
		return &out, nil
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSONBytes(w, b)
}

// handleTraceAnalyze analyzes a POSTed binary .nlt trace. Uploads are
// not cached (bodies are arbitrary), but they do run inside the worker
// pool so uploads cannot starve the experiment endpoints.
func (s *Server) handleTraceAnalyze(w http.ResponseWriter, r *http.Request) {
	opts, err := s.analysisOptions(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes)
	defer body.Close()
	t, err := trace.ReadTrace(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad trace body: %w", err))
		return
	}
	info := requestInfo(r)
	start := time.Now()
	s.budget.Acquire()
	queueWait := time.Since(start)
	s.metrics.computations.Inc()
	root := s.tracer.StartRun(fmt.Sprintf("trace/%s/%d", t.Meta.App, t.Meta.Ranks))
	opts.Span = root
	a, err := core.AnalyzeTrace(t, opts)
	root.End()
	ev := obs.RunEvent{
		RunID: root.RunID(), RequestID: info.id, Endpoint: info.endpoint,
		App: t.Meta.App, Ranks: t.Meta.Ranks, Cache: "none",
		QueueWaitMS: float64(queueWait) / float64(time.Millisecond),
		DurationMS:  msSince(start),
	}
	if err != nil {
		ev.Err = err.Error()
	}
	s.metrics.completeRun(root.Data(), ev)
	s.budget.Release()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	a.Acc = nil
	writeJSON(w, &harness.Result{Experiment: "trace", Rows: []*core.Analysis{a}})
}
