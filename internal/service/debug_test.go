package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"netloc/internal/core"
	"netloc/internal/obs"
)

// syncLogger returns a slog text logger writing into a mutex-guarded
// buffer, plus a reader for the accumulated output.
func syncLogger() (*slog.Logger, func() string) {
	var buf bytes.Buffer
	var mu sync.Mutex
	l := slog.New(slog.NewTextHandler(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	}), nil))
	return l, func() string {
		mu.Lock()
		defer mu.Unlock()
		return buf.String()
	}
}

func TestDebugRunsLimit(t *testing.T) {
	ts := newTestServer(t, Options{Analysis: core.Options{MaxRanks: 64}})
	for _, q := range []string{"app=LULESH&ranks=64", "app=AMG&ranks=27", "app=AMG&ranks=8"} {
		getOK(t, ts, "/v1/analyze?"+q+"&topo=torus")
	}
	var full DebugRuns
	if err := json.Unmarshal(getOK(t, ts, "/v1/debug/runs"), &full); err != nil {
		t.Fatal(err)
	}
	if len(full.Runs) < 3 {
		t.Fatalf("recorded %d runs, want >= 3", len(full.Runs))
	}
	var limited DebugRuns
	if err := json.Unmarshal(getOK(t, ts, "/v1/debug/runs?n=1"), &limited); err != nil {
		t.Fatal(err)
	}
	if len(limited.Runs) != 1 {
		t.Fatalf("?n=1 returned %d runs", len(limited.Runs))
	}
	if limited.Runs[0].ID != full.Runs[0].ID {
		t.Errorf("?n=1 did not keep the newest run: %d vs %d", limited.Runs[0].ID, full.Runs[0].ID)
	}
	if limited.Recorded != full.Recorded {
		t.Errorf("recorded total changed under ?n=: %d vs %d", limited.Recorded, full.Recorded)
	}
	// A limit beyond the recorded count returns everything.
	var big DebugRuns
	if err := json.Unmarshal(getOK(t, ts, "/v1/debug/runs?n=10000"), &big); err != nil {
		t.Fatal(err)
	}
	if len(big.Runs) != len(full.Runs) {
		t.Errorf("?n=10000 returned %d runs, want %d", len(big.Runs), len(full.Runs))
	}
	for _, bad := range []string{"0", "-1", "x", "1.5", ""} {
		status, body := get(t, ts, "/v1/debug/runs?n="+bad)
		want := http.StatusBadRequest
		if bad == "" { // empty means unset, not invalid
			want = http.StatusOK
		}
		if status != want {
			t.Errorf("?n=%q: status %d, want %d: %s", bad, status, want, body)
		}
	}
}

func TestDebugRunByID(t *testing.T) {
	ts := newTestServer(t, Options{Analysis: core.Options{MaxRanks: 64}})
	getOK(t, ts, "/v1/analyze?app=LULESH&ranks=64&topo=torus")
	var doc DebugRuns
	if err := json.Unmarshal(getOK(t, ts, "/v1/debug/runs"), &doc); err != nil {
		t.Fatal(err)
	}
	id := doc.Runs[0].ID
	if id < 1 {
		t.Fatalf("run has no ID: %+v", doc.Runs[0])
	}
	var rec obs.RunRecord
	if err := json.Unmarshal(getOK(t, ts, fmt.Sprintf("/v1/debug/runs/%d", id)), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.ID != id || !strings.Contains(rec.Root.Name, "analyze") {
		t.Errorf("run %d fetch = {ID: %d, Root: %q}", id, rec.ID, rec.Root.Name)
	}
	for path, want := range map[string]int{
		"/v1/debug/runs/0":      http.StatusBadRequest,
		"/v1/debug/runs/-3":     http.StatusBadRequest,
		"/v1/debug/runs/abc":    http.StatusBadRequest,
		"/v1/debug/runs/999999": http.StatusNotFound,
	} {
		if status, body := get(t, ts, path); status != want {
			t.Errorf("GET %s: status %d, want %d: %s", path, status, want, body)
		}
	}
}

// TestDebugRunTraceEndpoint checks /v1/debug/runs/{id}/trace serves the
// recorded run in Chrome trace-event shape: a JSON array of events with
// pid/tid/ph and non-decreasing timestamps.
func TestDebugRunTraceEndpoint(t *testing.T) {
	ts := newTestServer(t, Options{Analysis: core.Options{MaxRanks: 64}})
	getOK(t, ts, "/v1/analyze?app=LULESH&ranks=64&topo=torus")
	var doc DebugRuns
	if err := json.Unmarshal(getOK(t, ts, "/v1/debug/runs"), &doc); err != nil {
		t.Fatal(err)
	}
	path := fmt.Sprintf("/v1/debug/runs/%d/trace", doc.Runs[0].ID)
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("trace content type = %q", ct)
	}
	var events []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("empty trace")
	}
	lastTs, sawAnalyze := -1.0, false
	for i, ev := range events {
		for _, field := range []string{"name", "ph", "pid", "tid", "ts"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event %d missing %q: %v", i, field, ev)
			}
		}
		ts := ev["ts"].(float64)
		if ts < lastTs {
			t.Fatalf("ts not monotonic at event %d", i)
		}
		lastTs = ts
		if name, _ := ev["name"].(string); strings.Contains(name, "analyze") {
			sawAnalyze = true
		}
	}
	if !sawAnalyze {
		t.Error("no analyze span in exported trace")
	}
	if status, _ := get(t, ts, "/v1/debug/runs/999999/trace"); status != http.StatusNotFound {
		t.Errorf("missing-run trace status = %d, want 404", status)
	}
}

// TestRunEventsLogged checks the canonical one-line-per-run events: a
// computed run logs cache=miss with queue/duration timings, the repeat
// logs cache=hit, and both carry the endpoint and dimensions.
func TestRunEventsLogged(t *testing.T) {
	logger, read := syncLogger()
	ts := newTestServer(t, Options{Log: logger, Analysis: core.Options{MaxRanks: 64}})
	getOK(t, ts, "/v1/analyze?app=LULESH&ranks=64&topo=torus")
	getOK(t, ts, "/v1/analyze?app=LULESH&ranks=64&topo=torus")
	out := read()
	var miss, hit string
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "msg=run_complete") {
			continue
		}
		switch {
		case strings.Contains(line, "cache=miss"):
			miss = line
		case strings.Contains(line, "cache=hit"):
			hit = line
		}
	}
	if miss == "" || hit == "" {
		t.Fatalf("missing run_complete lines (miss=%q hit=%q) in:\n%s", miss, hit, out)
	}
	for _, want := range []string{"endpoint=analyze", "app=LULESH", "topo=torus", "ranks=64", "duration_ms=", "run_id=", "request_id="} {
		if !strings.Contains(miss, want) {
			t.Errorf("miss event lacks %s: %s", want, miss)
		}
	}
	// Hits serve marshaled bytes: no span, no run_id.
	if strings.Contains(hit, "run_id=") {
		t.Errorf("cache-hit event carries a run_id: %s", hit)
	}
	if !strings.Contains(hit, "endpoint=analyze") {
		t.Errorf("hit event lacks endpoint: %s", hit)
	}
}

// TestSlowRunDetector configures a sub-microsecond threshold so every
// computed run counts as slow, then checks the counter and the warn log.
func TestSlowRunDetector(t *testing.T) {
	logger, read := syncLogger()
	ts := newTestServer(t, Options{
		Log:              logger,
		SlowRunThreshold: time.Nanosecond,
		Analysis:         core.Options{MaxRanks: 64},
	})
	getOK(t, ts, "/v1/analyze?app=LULESH&ranks=64&topo=torus")

	var doc struct {
		SlowRuns map[string]int64 `json:"slow_runs"`
	}
	if err := json.Unmarshal(getOK(t, ts, "/metrics"), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.SlowRuns["analyze"] < 1 {
		t.Errorf("slow_runs[analyze] = %d, want >= 1 (%v)", doc.SlowRuns["analyze"], doc.SlowRuns)
	}
	req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain;version=0.0.4")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	promBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(promBody), `netloc_slow_runs_total{endpoint="analyze"} 1`) {
		t.Errorf("prom exposition missing slow-run counter:\n%s", string(promBody))
	}
	out := read()
	if !strings.Contains(out, "msg=slow_run") || !strings.Contains(out, "threshold_ms=") {
		t.Errorf("no slow_run warning logged:\n%s", out)
	}
	if !strings.Contains(out, "summary=") {
		t.Errorf("slow_run warning lacks the span summary:\n%s", out)
	}
}

// TestSlowRunEndpointOverride gives "analyze" a generous override on top
// of a hair-trigger default: analyze runs stay quiet while topology runs
// (on the default) trip the detector.
func TestSlowRunEndpointOverride(t *testing.T) {
	ts := newTestServer(t, Options{
		SlowRunThreshold:          time.Nanosecond,
		SlowRunEndpointThresholds: map[string]time.Duration{"analyze": time.Hour},
		Analysis:                  core.Options{MaxRanks: 64},
	})
	getOK(t, ts, "/v1/analyze?app=LULESH&ranks=64&topo=torus")
	getOK(t, ts, "/v1/topologies?ranks=27")
	var doc struct {
		SlowRuns map[string]int64 `json:"slow_runs"`
	}
	if err := json.Unmarshal(getOK(t, ts, "/metrics"), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.SlowRuns["analyze"] != 0 {
		t.Errorf("analyze tripped despite its 1h override: %d", doc.SlowRuns["analyze"])
	}
	if doc.SlowRuns["topologies"] < 1 {
		t.Errorf("topologies did not trip the default threshold: %v", doc.SlowRuns)
	}
}

// TestRuntimeTelemetryOptIn checks the sampler's two surfaces appear
// only when a sample interval is configured, keeping default servers'
// /metrics output byte-stable.
func TestRuntimeTelemetryOptIn(t *testing.T) {
	// Off by default.
	off := newTestServer(t, Options{})
	var offDoc map[string]json.RawMessage
	if err := json.Unmarshal(getOK(t, off, "/metrics"), &offDoc); err != nil {
		t.Fatal(err)
	}
	if _, ok := offDoc["runtime"]; ok {
		t.Error("runtime block present without opting in")
	}

	// On when configured; use New directly so Close can stop the sampler.
	srv := New(Options{RuntimeSampleInterval: time.Hour})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()
	var doc struct {
		Runtime *obs.RuntimeSnapshot `json:"runtime"`
	}
	if err := json.Unmarshal(getOK(t, ts, "/metrics"), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Runtime == nil {
		t.Fatal("no runtime block with sampler configured")
	}
	if doc.Runtime.Goroutines < 1 || doc.Runtime.HeapBytes < 1 {
		t.Errorf("implausible runtime snapshot: %+v", doc.Runtime)
	}
	req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain;version=0.0.4")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	promBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"netloc_runtime_goroutines", "netloc_runtime_heap_bytes", "netloc_runtime_gc_pauses_total", "netloc_runtime_gc_pause_seconds"} {
		if !strings.Contains(string(promBody), name) {
			t.Errorf("prom exposition missing %s", name)
		}
	}
	srv.Close() // second Close is safe
}
