package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"netloc/internal/design"
	"netloc/internal/trace"
)

// postJSON posts a JSON body and returns status and response body.
func postJSON(t *testing.T, ts *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	return resp.StatusCode, buf.Bytes()
}

// designBody is the acceptance request: milc at 512 nodes under radix
// and cost constraints, trimmed to two candidates per family to keep
// the sweep test-sized.
const designBody = `{
  "app": "milc",
  "ranks": 512,
  "constraints": {"max_radix": 48, "max_links": 40000, "max_candidates": 2}
}`

// TestDesignEndpointAcceptance drives POST /v1/design with the ISSUE's
// acceptance request and checks the sheet shape: >= 3 families x 2
// mappings, ranked, all metric blocks populated.
func TestDesignEndpointAcceptance(t *testing.T) {
	ts := newTestServer(t, Options{})
	status, body := postJSON(t, ts, "/v1/design", designBody)
	if status != http.StatusOK {
		t.Fatalf("POST /v1/design: status %d: %s", status, body)
	}
	var sheet design.Sheet
	if err := json.Unmarshal(body, &sheet); err != nil {
		t.Fatal(err)
	}
	if sheet.App != "MILC" || sheet.Ranks != 512 {
		t.Fatalf("sheet header %s@%d, want MILC@512", sheet.App, sheet.Ranks)
	}
	families := map[string]bool{}
	mappings := map[string]bool{}
	for i, r := range sheet.Rows {
		families[r.Family] = true
		mappings[r.Mapping] = true
		if r.Rank != i+1 {
			t.Errorf("row %d rank %d", i, r.Rank)
		}
		if r.AvgHops <= 0 || r.MakespanSec <= 0 || r.CostUnits <= 0 {
			t.Errorf("%s: metrics not populated (hops %g, makespan %g, cost %g)",
				r.Name, r.AvgHops, r.MakespanSec, r.CostUnits)
		}
		if !r.UtilizationValid {
			t.Errorf("%s: utilization not populated", r.Name)
		}
	}
	if len(families) < 3 {
		t.Errorf("sheet covers %d families, want >= 3 (%v)", len(families), families)
	}
	if len(mappings) < 2 {
		t.Errorf("sheet covers %d mappings, want >= 2 (%v)", len(mappings), mappings)
	}
}

// TestDesignDeterministicAcrossWorkerCounts re-runs the acceptance
// request on servers with 1, 4, and 16 workers and requires
// byte-identical response documents.
func TestDesignDeterministicAcrossWorkerCounts(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 4, 16} {
		ts := newTestServer(t, Options{Workers: workers})
		status, body := postJSON(t, ts, "/v1/design", designBody)
		if status != http.StatusOK {
			t.Fatalf("workers=%d: status %d: %s", workers, status, body)
		}
		if want == nil {
			want = body
			continue
		}
		if !bytes.Equal(body, want) {
			t.Fatalf("design sheet differs at %d workers", workers)
		}
	}
}

// TestDesignCachedSecondRequest: the sync endpoint canonicalizes the
// body into the cache key, so an equivalent request hits the cache.
func TestDesignCachedSecondRequest(t *testing.T) {
	ts := newTestServer(t, Options{})
	small := `{"app": "milc", "ranks": 16, "constraints": {"max_candidates": 1}, "families": ["torus"]}`
	if status, body := postJSON(t, ts, "/v1/design", small); status != http.StatusOK {
		t.Fatalf("first POST: %d: %s", status, body)
	}
	before := metricsSnapshot(t, ts).Cache.Hits
	// Same request with fields reordered and defaults spelled out.
	same := `{"ranks": 16, "app": "MILC", "families": ["torus"], "constraints": {"max_candidates": 1}}`
	if status, body := postJSON(t, ts, "/v1/design", same); status != http.StatusOK {
		t.Fatalf("second POST: %d: %s", status, body)
	}
	if after := metricsSnapshot(t, ts).Cache.Hits; after != before+1 {
		t.Fatalf("cache hits %d -> %d, want one design cache hit", before, after)
	}
}

// TestDesignValidationErrors walks the 400 table: constraint mistakes
// return listing-style errors, never a panic or an empty sheet.
func TestDesignValidationErrors(t *testing.T) {
	ts := newTestServer(t, Options{})
	cases := []struct {
		name string
		body string
		want string
	}{
		{"bad json", `{"app": `, "bad design request body"},
		{"unknown field", `{"app": "milc", "ranks": 8, "radix": 3}`, "bad design request body"},
		{"non-positive ranks", `{"app": "milc", "ranks": 0}`, "non-positive node count"},
		{"negative ranks", `{"app": "milc", "ranks": -4}`, "non-positive node count"},
		{"tiny radix", `{"app": "milc", "ranks": 8, "constraints": {"max_radix": 2}}`, "max_radix 2 too small"},
		{"empty families", `{"app": "milc", "ranks": 8, "families": []}`, "empty candidate set"},
		{"unknown family", `{"app": "milc", "ranks": 8, "families": ["clos"]}`, "unknown family"},
		{"unknown mapping", `{"app": "milc", "ranks": 8, "mappings": ["anneal"]}`, "unknown mapping"},
		{"unknown app", `{"app": "doom", "ranks": 8}`, "unknown application"},
		{"infeasible", `{"app": "milc", "ranks": 8, "families": ["torus"], "constraints": {"max_switches": 1}}`, "no feasible candidates"},
	}
	for _, endpoint := range []string{"/v1/design", "/v1/design/jobs"} {
		for _, tc := range cases {
			status, body := postJSON(t, ts, endpoint, tc.body)
			if tc.name == "infeasible" && endpoint == "/v1/design/jobs" {
				continue // infeasibility is discovered by the running job, not at submit
			}
			if status != http.StatusBadRequest {
				t.Errorf("%s %s: status %d, want 400 (%s)", endpoint, tc.name, status, body)
				continue
			}
			if !strings.Contains(string(body), tc.want) {
				t.Errorf("%s %s: body %s does not mention %q", endpoint, tc.name, body, tc.want)
			}
		}
	}
}

// TestDesignJobLifecycleHTTP drives the async flow end to end: submit
// returns 202 with a Location, polls report monotonic progress, the
// terminal poll carries the sheet, and the run lands in the span ring.
func TestDesignJobLifecycleHTTP(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 4})
	status, body := postJSON(t, ts, "/v1/design/jobs",
		`{"app": "milc", "ranks": 64, "constraints": {"max_candidates": 2}}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, body)
	}
	var st design.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.State != design.StateRunning {
		t.Fatalf("submit status %+v", st)
	}

	path := "/v1/design/jobs/" + st.ID
	last := -1
	deadline := time.Now().Add(30 * time.Second)
	for {
		var poll design.Status
		if err := json.Unmarshal(getOK(t, ts, path), &poll); err != nil {
			t.Fatal(err)
		}
		if poll.Done < last {
			t.Fatalf("progress went backwards: %d after %d", poll.Done, last)
		}
		last = poll.Done
		if poll.State != design.StateRunning {
			st = poll
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.State != design.StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	if st.Sheet == nil || len(st.Sheet.Rows) == 0 {
		t.Fatal("done job has no sheet")
	}
	if st.Done != st.Total || st.Total == 0 {
		t.Fatalf("terminal progress %d/%d", st.Done, st.Total)
	}

	// The job's search ran under a root span recorded in the ring.
	runs := getOK(t, ts, "/v1/debug/runs")
	if !strings.Contains(string(runs), "design?app=milc") {
		t.Errorf("span ring does not show the design job run: %s", runs)
	}
	// And the job appears in the listing.
	var list []design.Status
	if err := json.Unmarshal(getOK(t, ts, "/v1/design/jobs"), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("job listing %+v", list)
	}
}

// TestDesignJobCancelHTTP cancels a job and checks the terminal state
// plus the 404 for unknown IDs.
func TestDesignJobCancelHTTP(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 2})
	status, body := postJSON(t, ts, "/v1/design/jobs",
		`{"app": "milc", "ranks": 512}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, body)
	}
	var st design.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/design/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		var poll design.Status
		if err := json.Unmarshal(getOK(t, ts, "/v1/design/jobs/"+st.ID), &poll); err != nil {
			t.Fatal(err)
		}
		if poll.State != design.StateRunning {
			if poll.State != design.StateCanceled && poll.State != design.StateDone {
				t.Fatalf("job ended %s: %s", poll.State, poll.Error)
			}
			// A very fast search may finish before the cancel lands;
			// both terminal states are acceptable, but a canceled job
			// must not carry a sheet.
			if poll.State == design.StateCanceled && poll.Sheet != nil {
				t.Fatal("canceled job carries a sheet")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not reach a terminal state after cancel")
		}
		time.Sleep(2 * time.Millisecond)
	}

	if code, body := get(t, ts, "/v1/design/jobs/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown job: status %d: %s", code, body)
	}
}

// TestDesignTraceUpload designs against an uploaded binary trace with
// query-parameter constraints.
func TestDesignTraceUpload(t *testing.T) {
	ts := newTestServer(t, Options{})
	tr := &trace.Trace{
		Meta: trace.Meta{App: "uploaded", Ranks: 8, WallTime: 1},
		Events: []trace.Event{
			{Rank: 0, Op: trace.OpSend, Peer: 1, Root: -1, Bytes: 4096, End: 10},
			{Rank: 1, Op: trace.OpSend, Peer: 2, Root: -1, Bytes: 4096, Start: 10, End: 20},
		},
	}
	var buf bytes.Buffer
	if err := trace.WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/design/trace?families=torus,fattree&candidates=1", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sheet design.Sheet
	if err := json.NewDecoder(resp.Body).Decode(&sheet); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("design/trace: status %d", resp.StatusCode)
	}
	if sheet.App != "uploaded" || sheet.Ranks != 8 {
		t.Fatalf("sheet header %s@%d, want uploaded@8", sheet.App, sheet.Ranks)
	}
	families := map[string]bool{}
	for _, r := range sheet.Rows {
		families[r.Family] = true
	}
	if !families["torus"] || !families["fattree"] {
		t.Fatalf("trace design families %v", families)
	}

	// Garbage body is a 400.
	resp2, err := http.Post(ts.URL+"/v1/design/trace", "application/octet-stream", strings.NewReader("not a trace"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage trace: status %d", resp2.StatusCode)
	}
}

// TestDesignMetricsCounters: design searches feed the design pipeline
// counters and the job gauges appear in the Prometheus exposition.
func TestDesignMetricsCounters(t *testing.T) {
	ts := newTestServer(t, Options{})
	small := `{"app": "milc", "ranks": 16, "constraints": {"max_candidates": 1}, "families": ["torus"]}`
	if status, body := postJSON(t, ts, "/v1/design", small); status != http.StatusOK {
		t.Fatalf("POST: %d: %s", status, body)
	}
	var doc struct {
		Pipeline map[string]int64 `json:"pipeline"`
	}
	if err := json.Unmarshal(getOK(t, ts, "/metrics"), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Pipeline["design_configs"] == 0 || doc.Pipeline["design_candidates"] == 0 {
		t.Fatalf("design pipeline counters not absorbed: %+v", doc.Pipeline)
	}
	prom := string(getOK(t, ts, "/metrics?format=prom"))
	for _, series := range []string{"netloc_design_jobs_retained", "netloc_design_jobs_submitted_total"} {
		if !strings.Contains(prom, series) {
			t.Errorf("prometheus exposition missing %s", series)
		}
	}
}
