package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"time"

	"netloc/internal/core"
	"netloc/internal/design"
	"netloc/internal/obs"
	"netloc/internal/report"
	"netloc/internal/trace"
)

// designOptions builds the core.Options a design search runs under: the
// server's analysis defaults wired to the shared worker budget, exactly
// like every other computation.
func (s *Server) designOptions() core.Options {
	opts := s.opts.Analysis
	opts.Parallelism = s.opts.Workers
	opts.Budget = s.budget
	opts.Cache = s.work
	return opts
}

// designSearch is the job store's SearchFunc: each async job runs under
// one request-level budget token and a root span in the ring — the same
// accounting a synchronous computation gets — so /v1/debug/runs shows
// job searches next to everything else and their work counts feed the
// pipeline counters.
func (s *Server) designSearch(ctx context.Context, req design.Request, opts core.Options) (*design.Sheet, error) {
	start := time.Now()
	s.budget.Acquire()
	queueWait := time.Since(start)
	defer s.budget.Release()
	s.metrics.computations.Inc()
	root := s.tracer.StartRun(req.CanonicalKey())
	opts.Span = root
	sheet, err := design.SearchContext(ctx, req, opts)
	root.End()
	ev := obs.RunEvent{
		RunID: root.RunID(), Endpoint: "design_jobs",
		App: req.App, Ranks: req.Ranks, Cache: "none",
		QueueWaitMS: float64(queueWait) / float64(time.Millisecond),
		DurationMS:  float64(time.Since(start)) / float64(time.Millisecond),
	}
	if err != nil {
		ev.Err = err.Error()
	}
	s.metrics.completeRun(root.Data(), ev)
	return sheet, err
}

// decodeDesignRequest reads the JSON body of a design request. Unknown
// fields are rejected so typos in constraint names fail loudly instead
// of silently designing against defaults.
func (s *Server) decodeDesignRequest(w http.ResponseWriter, r *http.Request) (design.Request, error) {
	var req design.Request
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes)
	defer body.Close()
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("service: bad design request body: %w", err)
	}
	return req, nil
}

// designStatus maps a design error to its HTTP status: client mistakes
// (validation, unknown apps/families, infeasible constraint sets) are
// 400s; anything else would be a pipeline bug and surfaces as a 500.
func designStatus(err error) int {
	if errors.Is(err, design.ErrNoCandidates) {
		return http.StatusBadRequest
	}
	msg := err.Error()
	if strings.HasPrefix(msg, "design:") || strings.Contains(msg, "workloads:") {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// handleDesign is the synchronous search: suitable for small candidate
// spaces, cached like every other canonical GET-shaped computation (the
// body is canonicalized into the cache key, so equivalent requests share
// one entry).
func (s *Server) handleDesign(w http.ResponseWriter, r *http.Request) {
	req, err := s.decodeDesignRequest(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	opts := s.designOptions()
	b, err := s.cached(r, runDims{App: req.App, Ranks: req.Ranks}, req.CanonicalKey(), func(sp *obs.Span) (any, error) {
		o := opts
		o.Span = sp
		// The computation may be shared through the singleflight group
		// and its bytes cached, so it never runs under one client's
		// request context; cancellation is the job API's feature.
		return design.SearchContext(context.Background(), req, o)
	})
	if err != nil {
		writeError(w, designStatus(err), err)
		return
	}
	writeJSONBytes(w, b)
}

// handleDesignTrace designs against an uploaded binary .nlt trace. The
// workload is the body; the candidate space comes from query parameters
// (families, mappings as comma lists; radix, switches, links,
// candidates as integers; whops, wmakespan, wcost as weights). Uploads
// are not cached, but they run inside the worker pool like
// /v1/traces/analyze.
func (s *Server) handleDesignTrace(w http.ResponseWriter, r *http.Request) {
	req, err := designQueryRequest(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes)
	defer body.Close()
	t, err := trace.ReadTrace(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad trace body: %w", err))
		return
	}
	req.Trace = t
	sheet, err := s.designSearch(r.Context(), req, s.designOptions())
	if err != nil {
		writeError(w, designStatus(err), err)
		return
	}
	writeJSON(w, sheet)
}

// designQueryRequest builds a design.Request from query parameters (the
// trace-upload surface, where the body is the workload).
func designQueryRequest(q url.Values) (design.Request, error) {
	var req design.Request
	if v := q.Get("families"); v != "" {
		req.Families = strings.Split(v, ",")
	}
	if v := q.Get("mappings"); v != "" {
		req.Mappings = strings.Split(v, ",")
	}
	var err error
	if req.Constraints.MaxRadix, err = queryNonNegInt(q, "radix", 0); err != nil {
		return req, err
	}
	if req.Constraints.MaxSwitches, err = queryNonNegInt(q, "switches", 0); err != nil {
		return req, err
	}
	if req.Constraints.MaxLinks, err = queryNonNegInt(q, "links", 0); err != nil {
		return req, err
	}
	if req.Constraints.MaxCandidates, err = queryNonNegInt(q, "candidates", 0); err != nil {
		return req, err
	}
	if req.Weights.Hops, err = queryFloat(q, "whops", 0); err != nil {
		return req, err
	}
	if req.Weights.Makespan, err = queryFloat(q, "wmakespan", 0); err != nil {
		return req, err
	}
	if req.Weights.Cost, err = queryFloat(q, "wcost", 0); err != nil {
		return req, err
	}
	return req, nil
}

func (s *Server) handleDesignJobSubmit(w http.ResponseWriter, r *http.Request) {
	req, err := s.decodeDesignRequest(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.jobs.Submit(req, s.designOptions())
	if err != nil {
		status := designStatus(err)
		if strings.Contains(err.Error(), "job store full") {
			status = http.StatusTooManyRequests
		}
		writeError(w, status, err)
		return
	}
	b, err := report.JSONBytes(job.Status())
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/v1/design/jobs/"+job.ID)
	w.WriteHeader(http.StatusAccepted)
	w.Write(b)
}

func (s *Server) handleDesignJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.jobs.List())
}

func (s *Server) designJob(w http.ResponseWriter, r *http.Request) (*design.Job, bool) {
	id := r.PathValue("id")
	job, ok := s.jobs.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: unknown design job %q", id))
		return nil, false
	}
	return job, true
}

func (s *Server) handleDesignJobGet(w http.ResponseWriter, r *http.Request) {
	if job, ok := s.designJob(w, r); ok {
		writeJSON(w, job.Status())
	}
}

func (s *Server) handleDesignJobCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.designJob(w, r)
	if !ok {
		return
	}
	job.Cancel()
	writeJSON(w, job.Status())
}
