package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"netloc/internal/congest"
	"netloc/internal/core"
	"netloc/internal/obs"
	"netloc/internal/workloads"
)

// CongestionWorkload names one (app, ranks) cell of a congestion request.
type CongestionWorkload struct {
	App   string `json:"app"`
	Ranks int    `json:"ranks"`
}

// CongestionRequest is the POST /v1/congestion body. Every field is
// optional: empty workloads run core.CongestionWorkloads, empty families
// run the paper's torus/fattree/dragonfly trio, empty policies run all
// of congest.Policies, zero growth_pct uses the default threshold, and a
// negative one disables the tolerance sweep.
type CongestionRequest struct {
	Workloads []CongestionWorkload `json:"workloads,omitempty"`
	Families  []string             `json:"families,omitempty"`
	Policies  []string             `json:"policies,omitempty"`
	GrowthPct float64              `json:"growth_pct,omitempty"`
	// MaxRanks caps the grid below the server's default when positive.
	MaxRanks int `json:"max_ranks,omitempty"`
}

// canonicalize validates the request and fills defaults, so equivalent
// requests share one cache key and the response echoes what actually ran.
func (r *CongestionRequest) canonicalize() error {
	if len(r.Workloads) == 0 {
		for _, ref := range core.CongestionWorkloads {
			r.Workloads = append(r.Workloads, CongestionWorkload{App: ref.App, Ranks: ref.Ranks})
		}
	}
	for _, wl := range r.Workloads {
		if _, err := workloads.Lookup(wl.App); err != nil {
			return err
		}
		if wl.Ranks < 1 {
			return fmt.Errorf("service: workload %s ranks %d out of range (need >= 1)", wl.App, wl.Ranks)
		}
	}
	if len(r.Families) == 0 {
		r.Families = []string{"torus", "fattree", "dragonfly"}
	}
	kinds := core.AnalysisKinds()
	for _, fam := range r.Families {
		ok := false
		for _, k := range kinds {
			ok = ok || fam == k
		}
		if !ok {
			return fmt.Errorf("service: unknown topology family %q (known: %s)", fam, strings.Join(kinds, ", "))
		}
	}
	if len(r.Policies) == 0 {
		r.Policies = congest.Policies()
	}
	known := congest.Policies()
	for _, p := range r.Policies {
		ok := false
		for _, k := range known {
			ok = ok || p == k
		}
		if !ok {
			return fmt.Errorf("service: unknown policy %q (known: %s)", p, strings.Join(known, ", "))
		}
	}
	switch {
	case r.GrowthPct == 0:
		r.GrowthPct = congest.DefaultGrowthPct
	case r.GrowthPct < 0:
		r.GrowthPct = -1 // any negative value means "sweep disabled"
	}
	if r.MaxRanks < 0 {
		return fmt.Errorf("service: max_ranks %d is negative", r.MaxRanks)
	}
	return nil
}

// cacheKey is the canonical LRU/singleflight key of one request.
func (r *CongestionRequest) cacheKey() string {
	var b strings.Builder
	b.WriteString("congestion?growth=")
	fmt.Fprintf(&b, "%g", r.GrowthPct)
	fmt.Fprintf(&b, "&maxranks=%d", r.MaxRanks)
	b.WriteString("&families=")
	b.WriteString(strings.Join(r.Families, ","))
	b.WriteString("&policies=")
	b.WriteString(strings.Join(r.Policies, ","))
	b.WriteString("&workloads=")
	names := make([]string, len(r.Workloads))
	for i, wl := range r.Workloads {
		names[i] = fmt.Sprintf("%s/%d", wl.App, wl.Ranks)
	}
	// Rows follow the requested workload and policy order, so order is
	// part of the result and stays in the key.
	b.WriteString(strings.Join(names, ","))
	return b.String()
}

// CongestionResult is the /v1/congestion response: the canonicalized
// request echoed back plus the grid rows in (workload, topology, policy)
// order.
type CongestionResult struct {
	Workloads []CongestionWorkload `json:"workloads"`
	Families  []string             `json:"families"`
	Policies  []string             `json:"policies"`
	GrowthPct float64              `json:"growth_pct"`
	Rows      []core.CongestionRow `json:"rows"`
}

// handleCongestion runs the temporal congestion study over a requested
// grid: cached in the result LRU under the canonical key, deduplicated
// through the singleflight group, computed inside the worker pool under
// a span in the debug ring, with work counts feeding the netloc_congest_*
// counters.
func (s *Server) handleCongestion(w http.ResponseWriter, r *http.Request) {
	var req CongestionRequest
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes)
	defer body.Close()
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad congestion request body: %w", err))
		return
	}
	if err := req.canonicalize(); err != nil {
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "workloads:") {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	opts := s.opts.Analysis
	opts.Parallelism = s.opts.Workers
	opts.Budget = s.budget
	opts.Cache = s.work
	if req.MaxRanks > 0 {
		opts.MaxRanks = req.MaxRanks
	}
	refs := make([]core.WorkloadRef, len(req.Workloads))
	for i, wl := range req.Workloads {
		refs[i] = core.WorkloadRef{App: wl.App, Ranks: wl.Ranks}
	}
	b, err := s.cached(r, runDims{}, req.cacheKey(), func(sp *obs.Span) (any, error) {
		o := opts
		o.Span = sp
		rows, err := core.CongestionTable(refs, req.Families, req.Policies, req.GrowthPct, o)
		if err != nil {
			return nil, err
		}
		return &CongestionResult{
			Workloads: req.Workloads, Families: req.Families,
			Policies: req.Policies, GrowthPct: req.GrowthPct, Rows: rows,
		}, nil
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSONBytes(w, b)
}
