package service

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// lruCache is a bounded, mutex-guarded LRU over marshaled JSON results.
// Keys are canonicalized request strings; values are the exact bytes
// served to clients, so a hit costs one map lookup and no re-encoding.
type lruCache struct {
	mu        sync.Mutex
	max       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	evictions atomic.Int64
}

type lruEntry struct {
	key string
	val []byte
}

func newLRUCache(max int) *lruCache {
	if max < 1 {
		max = 1
	}
	return &lruCache{
		max:   max,
		ll:    list.New(),
		items: make(map[string]*list.Element, max),
	}
}

// Get returns the cached bytes for key and marks the entry recently used.
func (c *lruCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Add inserts (or refreshes) an entry, evicting the least recently used
// entry when the cache is full.
func (c *lruCache) Add(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
		c.evictions.Add(1)
	}
}

// Len returns the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Evictions returns the total number of evicted entries.
func (c *lruCache) Evictions() int64 {
	return c.evictions.Load()
}
