package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"netloc/internal/congest"
	"netloc/internal/core"
)

// smallCongestionBody keeps the endpoint tests quick: one workload, the
// baseline policy, tolerance sweep disabled.
const smallCongestionBody = `{"workloads":[{"app":"LULESH","ranks":64}],"policies":["minimal"],"growth_pct":-1}`

func TestCongestionEndpoint(t *testing.T) {
	ts := newTestServer(t, Options{})
	status, body := postJSON(t, ts, "/v1/congestion", smallCongestionBody)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var res CongestionResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (one per topology)", len(res.Rows))
	}
	// The response echoes the canonicalized request: the explicit policy
	// list and the disabled sweep survive as sent.
	if len(res.Policies) != 1 || res.Policies[0] != congest.PolicyMinimal {
		t.Errorf("policies = %v", res.Policies)
	}
	if res.GrowthPct >= 0 {
		t.Errorf("growth_pct = %g, want negative (sweep disabled)", res.GrowthPct)
	}
	topos := map[string]bool{}
	for _, r := range res.Rows {
		if r.App != "LULESH" || r.Ranks != 64 || r.Policy != congest.PolicyMinimal {
			t.Errorf("unexpected row %s/%d %s/%s", r.App, r.Ranks, r.Topology, r.Policy)
		}
		if r.Messages == 0 || r.Makespan <= 0 {
			t.Errorf("row %s: empty stats", r.Topology)
		}
		if r.Tolerance != nil {
			t.Errorf("row %s: tolerance present with sweep disabled", r.Topology)
		}
		topos[r.Topology] = true
	}
	if !topos["torus"] || !topos["fattree"] || !topos["dragonfly"] {
		t.Errorf("topologies covered: %v", topos)
	}
}

// TestCongestionFamiliesSelect runs the grid on one of the extreme-scale
// families added beyond the paper's trio: the rows replace (not extend)
// the default topologies and the echo names what actually ran.
func TestCongestionFamiliesSelect(t *testing.T) {
	ts := newTestServer(t, Options{})
	body := `{"workloads":[{"app":"LULESH","ranks":64}],"families":["slimfly"],"policies":["minimal"],"growth_pct":-1}`
	status, raw := postJSON(t, ts, "/v1/congestion", body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	var res CongestionResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Families) != 1 || res.Families[0] != "slimfly" {
		t.Errorf("families echo = %v", res.Families)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	if r := res.Rows[0]; r.Topology != "slimfly" || r.Messages == 0 || r.Makespan <= 0 {
		t.Errorf("unexpected row %s: %+v", r.Topology, r.Stats)
	}
}

// TestCongestionDefaultsApplied checks an empty body runs the default
// grid with the default threshold, and the baseline rows carry sweeps.
func TestCongestionDefaultsApplied(t *testing.T) {
	ts := newTestServer(t, Options{Analysis: core.Options{MaxRanks: 64}})
	status, body := postJSON(t, ts, "/v1/congestion", `{}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var res CongestionResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.GrowthPct != congest.DefaultGrowthPct {
		t.Errorf("growth_pct = %g, want default %g", res.GrowthPct, congest.DefaultGrowthPct)
	}
	if len(res.Policies) != len(congest.Policies()) {
		t.Errorf("policies = %v, want all", res.Policies)
	}
	if len(res.Workloads) == 0 || len(res.Rows) == 0 {
		t.Fatalf("empty default grid: %d workloads, %d rows", len(res.Workloads), len(res.Rows))
	}
	for _, r := range res.Rows {
		// The server's MaxRanks cap bounded the grid.
		if r.Ranks > 64 {
			t.Errorf("row %s/%d above the rank cap", r.App, r.Ranks)
		}
		if r.Policy == congest.PolicyMinimal && r.Tolerance == nil {
			t.Errorf("baseline row %s/%s missing tolerance", r.App, r.Topology)
		}
	}
}

func TestCongestionCachedAndMetered(t *testing.T) {
	ts := newTestServer(t, Options{})
	if _, err := http.Post(ts.URL+"/v1/congestion", "application/json", strings.NewReader(smallCongestionBody)); err != nil {
		t.Fatal(err)
	}
	before := metricsSnapshot(t, ts)
	status, first := postJSON(t, ts, "/v1/congestion", smallCongestionBody)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	after := metricsSnapshot(t, ts)
	if after.Cache.Hits <= before.Cache.Hits {
		t.Errorf("repeat request missed the cache: hits %d -> %d", before.Cache.Hits, after.Cache.Hits)
	}
	if after.Compute.Executed != before.Compute.Executed {
		t.Errorf("repeat request recomputed: executed %d -> %d", before.Compute.Executed, after.Compute.Executed)
	}
	status, second := postJSON(t, ts, "/v1/congestion", smallCongestionBody)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if !bytes.Equal(first, second) {
		t.Error("cached response differs from the computed one")
	}

	// The run's work counts landed in the congest counters.
	var doc struct {
		Congest map[string]int64 `json:"congest"`
	}
	if err := json.Unmarshal(getOK(t, ts, "/metrics"), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Congest["sims"] == 0 || doc.Congest["messages"] == 0 {
		t.Errorf("congest counters not absorbed: %v", doc.Congest)
	}
	// The sweep was disabled, so no probes ran.
	if doc.Congest["probes"] != 0 {
		t.Errorf("probes = %d with the sweep disabled", doc.Congest["probes"])
	}
	prom := getOK(t, ts, "/metrics?format=prom")
	if !strings.Contains(string(prom), "netloc_congest_sims_total") {
		t.Error("netloc_congest_sims_total missing from the Prometheus exposition")
	}
}

func TestCongestionRequestErrors(t *testing.T) {
	ts := newTestServer(t, Options{})
	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"unknown field", `{"polices":["minimal"]}`, http.StatusBadRequest},
		{"bad json", `{`, http.StatusBadRequest},
		{"unknown policy", `{"policies":["psychic"]}`, http.StatusBadRequest},
		{"unknown family", `{"families":["moebius"]}`, http.StatusBadRequest},
		{"unknown app", `{"workloads":[{"app":"NoSuchApp","ranks":64}]}`, http.StatusNotFound},
		{"zero ranks", `{"workloads":[{"app":"LULESH","ranks":0}]}`, http.StatusBadRequest},
		{"negative max_ranks", `{"max_ranks":-5}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			status, body := postJSON(t, ts, "/v1/congestion", c.body)
			if status != c.status {
				t.Fatalf("status %d, want %d: %s", status, c.status, body)
			}
			if !bytes.Contains(body, []byte("error")) {
				t.Errorf("no error field in %s", body)
			}
		})
	}
	// GET on the POST route is a 405 from the mux.
	status, _ := get(t, ts, "/v1/congestion")
	if status != http.StatusMethodNotAllowed {
		t.Errorf("GET status %d, want 405", status)
	}
}
