package service

import (
	"fmt"
	"sync"
)

// flightGroup deduplicates concurrent identical computations: while one
// goroutine computes the value for a key, later callers with the same
// key block and share its result instead of recomputing. A minimal
// in-tree take on the well-known singleflight pattern (no external
// dependency), specialized to the []byte results the service caches.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	wg  sync.WaitGroup
	val []byte
	err error
}

// Do runs fn once per key among concurrent callers. It returns fn's
// value and error, and whether the result was shared from another
// caller's execution.
func (g *flightGroup) Do(key string, fn func() ([]byte, error)) (val []byte, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := new(flightCall)
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	// Release waiters and drop the in-flight entry via defers: if fn
	// panicked and either step were skipped, every later request for
	// this key would block on wg.Wait forever, wedging the daemon on
	// one poisoned computation. The panic is converted into an error
	// that the panicking caller and all waiters share.
	defer func() {
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
	}()
	func() {
		defer c.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				c.val, c.err = nil, fmt.Errorf("service: panic in computation: %v", r)
			}
		}()
		c.val, c.err = fn()
	}()
	return c.val, c.err, false
}
