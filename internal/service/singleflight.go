package service

import "sync"

// flightGroup deduplicates concurrent identical computations: while one
// goroutine computes the value for a key, later callers with the same
// key block and share its result instead of recomputing. A minimal
// in-tree take on the well-known singleflight pattern (no external
// dependency), specialized to the []byte results the service caches.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	wg  sync.WaitGroup
	val []byte
	err error
}

// Do runs fn once per key among concurrent callers. It returns fn's
// value and error, and whether the result was shared from another
// caller's execution.
func (g *flightGroup) Do(key string, fn func() ([]byte, error)) (val []byte, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := new(flightCall)
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	c.wg.Done()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	return c.val, c.err, false
}
