package service

import (
	"bytes"
	"encoding/json"
	"net/url"
	"testing"

	"netloc/internal/design"
)

// FuzzAnalyzeRequest drives the service's request decode/validate layer
// with arbitrary bytes, interpreted three ways: as a design request
// body, as a congestion request body, and as an analyze query string.
// The contract under test is the one every handler relies on before any
// compute runs: malformed input surfaces as a structured error, never a
// panic, and anything that validates also canonicalizes into a stable
// cache key.
func FuzzAnalyzeRequest(f *testing.F) {
	f.Add([]byte(`{"app":"LULESH","ranks":64}`))
	f.Add([]byte(`{"app":"BigFFT","ranks":100,"families":["slimfly","hyperx"]}`))
	f.Add([]byte(smallCongestionBody))
	f.Add([]byte(`{"families":["jellyfish"],"growth_pct":-3}`))
	f.Add([]byte(`{"families":["moebius"]}`))
	f.Add([]byte(`{"polices":["minimal"]}`)) // unknown field
	f.Add([]byte(`app=LULESH&ranks=64&topo=slimfly&coverage=0.9`))
	f.Add([]byte(`coverage=2&strategy=psychic`))
	f.Add([]byte(`{`))
	f.Add([]byte{0xff, 0xfe, 0x00})

	srv := New(Options{Workers: 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Design request: strict decode, then the validation and cache-key
		// canonicalization the design handlers run before searching.
		var dreq design.Request
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&dreq); err == nil {
			if dreq.Validate() == nil {
				if dreq.CanonicalKey() == "" {
					t.Fatal("valid design request canonicalized to an empty key")
				}
			}
		}

		// Congestion request: strict decode plus canonicalize, which owns
		// the workload/family/policy validation.
		var creq CongestionRequest
		dec = json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&creq); err == nil {
			if creq.canonicalize() == nil {
				if len(creq.Families) == 0 || len(creq.Policies) == 0 {
					t.Fatalf("canonicalized request left defaults empty: %+v", creq)
				}
				if creq.cacheKey() == "" {
					t.Fatal("valid congestion request canonicalized to an empty key")
				}
			}
		}

		// Analyze query: the option parsing behind /v1/analyze and the
		// experiment endpoints.
		if q, err := url.ParseQuery(string(data)); err == nil {
			if _, err := srv.analysisOptions(q); err == nil {
				if _, err := queryInt(q, "ranks", 0); err != nil {
					_ = err // non-integer ranks: rejected later, must not panic here
				}
			}
		}
	})
}
