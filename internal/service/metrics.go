package service

import (
	"fmt"
	"log/slog"
	"strings"
	"time"

	"netloc/internal/design"
	"netloc/internal/obs"
	"netloc/internal/parallel"
	"netloc/internal/workcache"
)

// latencyBucketsMs are the upper bounds (in milliseconds) of the request
// latency histogram, spanning cache hits (sub-millisecond) to cold
// full-grid computations (tens of seconds).
var latencyBucketsMs = []float64{
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
}

// queueWaitBucketsMs bound the engine's admission-wait histogram: most
// acquisitions are immediate (the 0 bucket), contended ones spread over
// the same range a queued request would block.
var queueWaitBucketsMs = []float64{0, 0.1, 1, 5, 25, 100, 500, 2500, 10000}

// pipelineCountNames are the span work counts the registry folds into
// monotonic pipeline counters after each computation: how much work the
// service has done, not just how many requests it served.
var pipelineCountNames = []string{
	"events", "shards", "peers", "packets", "packet_hops", "sim_messages", "sim_hops",
	"design_configs", "design_candidates",
}

// congestCountNames are the temporal-simulator work counts; they get
// their own netloc_congest_* series (and "congest" snapshot block) so
// congestion-study load is visible separately from the static pipeline.
var congestCountNames = []string{"congest_sims", "congest_messages", "congest_probes"}

// endpointMetrics groups one endpoint's series.
type endpointMetrics struct {
	requests *obs.Counter
	errors   *obs.Counter
	latency  *obs.Histogram
}

// metricsRegistry is the server's observability state, backed by the
// shared obs.Registry so the same series serve both the JSON snapshot
// and the Prometheus text exposition at /metrics.
type metricsRegistry struct {
	reg       *obs.Registry
	endpoints map[string]*endpointMetrics

	inFlight     *obs.Gauge
	cacheHits    *obs.Counter
	cacheMisses  *obs.Counter
	computations *obs.Counter
	deduped      *obs.Counter

	queueWait *obs.Histogram
	pipeline  map[string]*obs.Counter
	congest   map[string]*obs.Counter
	slowRuns  map[string]*obs.Counter
	workcache *workcache.Cache

	// Run-event / slow-run configuration, set once by configureRuns
	// before the server starts serving.
	log            *slog.Logger
	slowDefault    time.Duration
	slowByEndpoint map[string]time.Duration

	// runtime is the opt-in telemetry sampler; nil unless the server was
	// configured with a sample interval (tests stay byte-pinned).
	runtime *obs.RuntimeSampler
}

func newMetricsRegistry(endpoints []string) *metricsRegistry {
	reg := obs.NewRegistry()
	m := &metricsRegistry{
		reg:          reg,
		endpoints:    make(map[string]*endpointMetrics, len(endpoints)),
		inFlight:     reg.Gauge("netloc_http_inflight", "Requests currently being served."),
		cacheHits:    reg.Counter("netloc_cache_hits_total", "Result-cache hits."),
		cacheMisses:  reg.Counter("netloc_cache_misses_total", "Result-cache misses."),
		computations: reg.Counter("netloc_compute_executed_total", "Computations actually executed."),
		deduped:      reg.Counter("netloc_compute_deduped_total", "Requests served by joining an identical in-flight computation."),
		queueWait:    reg.Histogram("netloc_engine_queue_wait_ms", "Time requests waited for a worker token.", queueWaitBucketsMs),
		pipeline:     make(map[string]*obs.Counter, len(pipelineCountNames)),
		congest:      make(map[string]*obs.Counter, len(congestCountNames)),
		slowRuns:     make(map[string]*obs.Counter, len(endpoints)),
	}
	for _, ep := range endpoints {
		m.endpoints[ep] = &endpointMetrics{
			requests: reg.Counter("netloc_http_requests_total", "HTTP requests by endpoint.", obs.Label{Key: "endpoint", Value: ep}),
			errors:   reg.Counter("netloc_http_errors_total", "HTTP responses with status >= 400 by endpoint.", obs.Label{Key: "endpoint", Value: ep}),
			latency:  reg.Histogram("netloc_http_request_duration_ms", "Request latency by endpoint.", latencyBucketsMs, obs.Label{Key: "endpoint", Value: ep}),
		}
		m.slowRuns[ep] = reg.Counter("netloc_slow_runs_total", "Computed runs slower than the endpoint's slow-run threshold.", obs.Label{Key: "endpoint", Value: ep})
	}
	for _, name := range pipelineCountNames {
		m.pipeline[name] = reg.Counter("netloc_pipeline_"+name+"_total", "Pipeline work units ("+name+") processed.")
	}
	for _, name := range congestCountNames {
		m.congest[name] = reg.Counter("netloc_"+name+"_total", "Temporal congestion-simulator work units ("+name+") processed.")
	}
	return m
}

// bindEngine registers the series that read live server state — the
// worker budget, the result cache, and the span ring — and installs the
// budget's queue-wait observer. Called once from New, before the server
// starts serving.
func (m *metricsRegistry) bindEngine(b *parallel.Budget, c *lruCache, tr *obs.Tracer) {
	m.reg.GaugeFunc("netloc_engine_tokens_capacity", "Worker-token pool capacity.",
		func() float64 { return float64(b.Cap()) })
	m.reg.GaugeFunc("netloc_engine_tokens_in_use", "Worker tokens currently held.",
		func() float64 { return float64(b.InUse()) })
	m.reg.CounterFunc("netloc_engine_tokens_granted_total", "Worker tokens granted over the server's lifetime.",
		func() float64 { return float64(b.Stats().Granted) })
	m.reg.CounterFunc("netloc_engine_degraded_total", "Fan-out loops that stayed on the calling goroutine because the pool was exhausted.",
		func() float64 { return float64(b.Stats().Degraded) })
	m.reg.GaugeFunc("netloc_cache_entries", "Result-cache entries.",
		func() float64 { return float64(c.Len()) })
	m.reg.CounterFunc("netloc_cache_evictions_total", "Result-cache evictions.",
		func() float64 { return float64(c.Evictions()) })
	m.reg.CounterFunc("netloc_runs_recorded_total", "Analysis runs recorded in the span ring.",
		func() float64 { return float64(tr.Recorded()) })
	b.SetWaitObserver(func(d time.Duration) {
		m.queueWait.Observe(float64(d) / float64(time.Millisecond))
	})
}

// bindDesignJobs registers the design-job store's live gauges and
// lifetime counters. Called once from New, next to bindEngine.
func (m *metricsRegistry) bindDesignJobs(store *design.Store) {
	m.reg.GaugeFunc("netloc_design_jobs_retained", "Design jobs currently retained (any state).",
		func() float64 { return float64(store.Stats().Retained) })
	m.reg.GaugeFunc("netloc_design_jobs_running", "Design jobs currently searching.",
		func() float64 { return float64(store.Stats().Running) })
	m.reg.CounterFunc("netloc_design_jobs_submitted_total", "Design jobs accepted over the server's lifetime.",
		func() float64 { return float64(store.Stats().Submitted) })
	m.reg.CounterFunc("netloc_design_jobs_completed_total", "Design jobs reaching a terminal state over the server's lifetime.",
		func() float64 { return float64(store.Stats().Completed) })
}

// bindWorkcache registers the workload artifact cache's effectiveness
// counters. Unlike the result cache (marshaled response bytes), this
// cache holds the expensive intermediate artifacts — generated traces
// and accumulated matrices — shared across experiments, analyses, and
// design searches. Called once from New, next to bindEngine.
func (m *metricsRegistry) bindWorkcache(c *workcache.Cache) {
	m.workcache = c
	m.reg.CounterFunc("netloc_workcache_hits_total", "Workload artifact cache hits (including singleflight waiters).",
		func() float64 { return float64(c.Stats().Hits) })
	m.reg.CounterFunc("netloc_workcache_misses_total", "Workload artifact cache misses (generations executed).",
		func() float64 { return float64(c.Stats().Misses) })
	m.reg.CounterFunc("netloc_workcache_evictions_total", "Workload artifacts evicted by the LRU bound.",
		func() float64 { return float64(c.Stats().Evictions) })
	m.reg.GaugeFunc("netloc_workcache_entries", "Workload artifacts currently cached.",
		func() float64 { return float64(c.Stats().Entries) })
}

// observeLatency records one request's latency in milliseconds.
func (e *endpointMetrics) observeLatency(d time.Duration) {
	e.latency.Observe(float64(d) / float64(time.Millisecond))
}

// configureRuns installs the run-event logger and the slow-run
// thresholds (a default plus per-endpoint overrides; 0 disables).
// Called once from New, before the server starts serving.
func (m *metricsRegistry) configureRuns(log *slog.Logger, slowDefault time.Duration, slowByEndpoint map[string]time.Duration) {
	m.log = log
	m.slowDefault = slowDefault
	m.slowByEndpoint = slowByEndpoint
}

// bindRuntime attaches the opt-in runtime telemetry sampler; its series
// were registered by obs.NewRuntimeSampler, this just makes the sampler
// visible to the JSON snapshot and Server.Close.
func (m *metricsRegistry) bindRuntime(s *obs.RuntimeSampler) { m.runtime = s }

// slowThreshold resolves an endpoint's slow-run threshold: the
// per-endpoint override when one is set, the default otherwise
// (0 = detection off).
func (m *metricsRegistry) slowThreshold(endpoint string) time.Duration {
	if th, ok := m.slowByEndpoint[endpoint]; ok {
		return th
	}
	return m.slowDefault
}

// completeRun is the chokepoint every computed run passes through on
// its way out: span work counts fold into the pipeline counters, the
// canonical run event is logged, and the slow-run detector gets its
// look. Cache hits and dedup followers log their event directly (they
// have no span to absorb and cannot be slow).
func (m *metricsRegistry) completeRun(d obs.SpanData, ev obs.RunEvent) {
	m.absorbRun(d)
	m.logRun(ev)
	th := m.slowThreshold(ev.Endpoint)
	if th <= 0 || ev.DurationMS < float64(th)/float64(time.Millisecond) {
		return
	}
	if c, ok := m.slowRuns[ev.Endpoint]; ok {
		c.Inc()
	}
	if m.log != nil {
		var sb strings.Builder
		obs.WriteSummary(&sb, d)
		m.log.Warn("slow_run",
			"endpoint", ev.Endpoint,
			"run_id", ev.RunID,
			"request_id", ev.RequestID,
			"duration_ms", ev.DurationMS,
			"threshold_ms", float64(th)/float64(time.Millisecond),
			"summary", sb.String())
	}
}

// logRun emits the canonical one-line run event (no-op without a
// configured logger).
func (m *metricsRegistry) logRun(ev obs.RunEvent) { obs.LogRun(m.log, ev) }

// absorbRun folds a finished run's span work counts into the pipeline
// counters (unknown count keys are ignored).
func (m *metricsRegistry) absorbRun(d obs.SpanData) {
	totals := map[string]int64{}
	var walk func(obs.SpanData)
	walk = func(s obs.SpanData) {
		for k, v := range s.Counts {
			totals[k] += v
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(d)
	for k, v := range totals {
		if c, ok := m.pipeline[k]; ok && v > 0 {
			c.Add(v)
		}
		if c, ok := m.congest[k]; ok && v > 0 {
			c.Add(v)
		}
	}
}

// histogramJSON renders a histogram the way the JSON snapshot always
// has: cumulative "le_<bound>ms" buckets plus count and mean — now
// including the +Inf bucket, so out-of-range observations are visible
// and the last bucket always equals the count.
func histogramJSON(h *obs.Histogram) map[string]any {
	s := h.Snapshot()
	buckets := map[string]int64{}
	for i, bound := range s.Bounds {
		buckets[fmt.Sprintf("le_%gms", bound)] = s.Cumulative[i]
	}
	buckets["le_+Inf"] = s.Cumulative[len(s.Bounds)]
	out := map[string]any{
		"count":   s.Count,
		"buckets": buckets,
	}
	if s.Count > 0 {
		out["mean_ms"] = s.Sum / float64(s.Count)
	}
	return out
}

// snapshot renders the whole registry as the expvar-style JSON document
// served at /metrics. The cache/compute/inflight/endpoints shape is the
// service's stable JSON surface; engine and pipeline are additive.
func (m *metricsRegistry) snapshot(cacheEntries int, cacheEvictions int64, engine parallel.BudgetStats) map[string]any {
	eps := map[string]any{}
	for name, ep := range m.endpoints {
		eps[name] = map[string]any{
			"requests":   ep.requests.Value(),
			"errors":     ep.errors.Value(),
			"latency_ms": histogramJSON(ep.latency),
		}
	}
	pipeline := map[string]any{}
	for _, name := range pipelineCountNames {
		pipeline[name] = m.pipeline[name].Value()
	}
	congest := map[string]any{}
	for _, name := range congestCountNames {
		// Snapshot keys drop the series' "congest_" prefix: the block is
		// already named congest.
		congest[strings.TrimPrefix(name, "congest_")] = m.congest[name].Value()
	}
	slow := map[string]any{}
	for name, c := range m.slowRuns {
		slow[name] = c.Value()
	}
	ws := m.workcache.Stats()
	doc := map[string]any{
		"workcache": map[string]any{
			"hits":      ws.Hits,
			"misses":    ws.Misses,
			"entries":   ws.Entries,
			"evictions": ws.Evictions,
		},
		"cache": map[string]any{
			"hits":      m.cacheHits.Value(),
			"misses":    m.cacheMisses.Value(),
			"entries":   cacheEntries,
			"evictions": cacheEvictions,
		},
		"compute": map[string]any{
			"executed": m.computations.Value(),
			"deduped":  m.deduped.Value(),
		},
		"inflight": m.inFlight.Value(),
		"engine": map[string]any{
			"capacity":      engine.Capacity,
			"in_use":        engine.InUse,
			"granted":       engine.Granted,
			"degraded":      engine.Degraded,
			"queue_wait_ms": histogramJSON(m.queueWait),
		},
		"pipeline":  pipeline,
		"congest":   congest,
		"slow_runs": slow,
		"endpoints": eps,
	}
	if m.runtime != nil {
		// Additive: the block exists only when the sampler was opted in,
		// so default/test servers keep the historical document shape.
		doc["runtime"] = m.runtime.Snapshot()
	}
	return doc
}
