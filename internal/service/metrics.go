package service

import (
	"fmt"
	"sync/atomic"
	"time"
)

// latencyBucketsMs are the upper bounds (in milliseconds) of the request
// latency histogram, spanning cache hits (sub-millisecond) to cold
// full-grid computations (tens of seconds).
var latencyBucketsMs = []float64{
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 10000,
}

// histogram is a fixed-bucket latency histogram with atomic counters.
type histogram struct {
	counts  []atomic.Int64 // len(latencyBucketsMs)+1; last is +Inf
	total   atomic.Int64
	sumUsec atomic.Int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Int64, len(latencyBucketsMs)+1)}
}

func (h *histogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(latencyBucketsMs) && ms > latencyBucketsMs[i] {
		i++
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	h.sumUsec.Add(d.Microseconds())
}

// snapshot renders the histogram as a JSON-encodable map with cumulative
// bucket counts ("le_<bound>ms" keys), total count, and mean latency.
func (h *histogram) snapshot() map[string]any {
	buckets := map[string]int64{}
	cum := int64(0)
	for i, bound := range latencyBucketsMs {
		cum += h.counts[i].Load()
		buckets[fmt.Sprintf("le_%gms", bound)] = cum
	}
	total := h.total.Load()
	out := map[string]any{
		"count":   total,
		"buckets": buckets,
	}
	if total > 0 {
		out["mean_ms"] = float64(h.sumUsec.Load()) / float64(total) / 1000
	}
	return out
}

// endpointMetrics counts requests, errors, and latency of one endpoint.
type endpointMetrics struct {
	requests atomic.Int64
	errors   atomic.Int64
	latency  *histogram
}

// metricsRegistry is the server's observability state: per-endpoint
// request counters and latency histograms plus the cache and compute
// counters. All fields are updated with atomics; the registry map itself
// is immutable after construction.
type metricsRegistry struct {
	endpoints map[string]*endpointMetrics

	inFlight     atomic.Int64
	cacheHits    atomic.Int64
	cacheMisses  atomic.Int64
	computations atomic.Int64
	deduped      atomic.Int64
}

func newMetricsRegistry(endpoints []string) *metricsRegistry {
	m := &metricsRegistry{endpoints: make(map[string]*endpointMetrics, len(endpoints))}
	for _, ep := range endpoints {
		m.endpoints[ep] = &endpointMetrics{latency: newHistogram()}
	}
	return m
}

// snapshot renders the whole registry as the expvar-style JSON document
// served at /metrics.
func (m *metricsRegistry) snapshot(cacheEntries int, cacheEvictions int64) map[string]any {
	eps := map[string]any{}
	for name, ep := range m.endpoints {
		eps[name] = map[string]any{
			"requests":   ep.requests.Load(),
			"errors":     ep.errors.Load(),
			"latency_ms": ep.latency.snapshot(),
		}
	}
	return map[string]any{
		"cache": map[string]any{
			"hits":      m.cacheHits.Load(),
			"misses":    m.cacheMisses.Load(),
			"entries":   cacheEntries,
			"evictions": cacheEvictions,
		},
		"compute": map[string]any{
			"executed": m.computations.Load(),
			"deduped":  m.deduped.Load(),
		},
		"inflight":  m.inFlight.Load(),
		"endpoints": eps,
	}
}
