package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"netloc/internal/core"
	"netloc/internal/harness"
	"netloc/internal/obs"
	"netloc/internal/report"
	"netloc/internal/trace"
)

func newTestServer(t *testing.T, opts Options) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(opts).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// get fetches a path and returns the status code and body.
func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp.StatusCode, body
}

// getOK fetches a path and fails the test on a non-200 status.
func getOK(t *testing.T, ts *httptest.Server, path string) []byte {
	t.Helper()
	status, body := get(t, ts, path)
	if status != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, status, body)
	}
	return body
}

// metricsSnapshot fetches and decodes /metrics.
type cacheCounters struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Entries   int64 `json:"entries"`
	Evictions int64 `json:"evictions"`
}

type metricsDoc struct {
	Cache     cacheCounters `json:"cache"`
	Workcache cacheCounters `json:"workcache"`
	Compute   struct {
		Executed int64 `json:"executed"`
		Deduped  int64 `json:"deduped"`
	} `json:"compute"`
	InFlight  int64                      `json:"inflight"`
	Endpoints map[string]json.RawMessage `json:"endpoints"`
}

func metricsSnapshot(t *testing.T, ts *httptest.Server) metricsDoc {
	t.Helper()
	var doc metricsDoc
	if err := json.Unmarshal(getOK(t, ts, "/metrics"), &doc); err != nil {
		t.Fatalf("decode /metrics: %v", err)
	}
	return doc
}

func TestHealthzAndExperimentList(t *testing.T) {
	ts := newTestServer(t, Options{})
	if body := getOK(t, ts, "/healthz"); !strings.Contains(string(body), `"ok"`) {
		t.Errorf("healthz: %s", body)
	}
	var list []ExperimentInfo
	if err := json.Unmarshal(getOK(t, ts, "/v1/experiments"), &list); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, e := range list {
		if e.Description == "" {
			t.Errorf("experiment %q has no description", e.Name)
		}
		names[e.Name] = true
	}
	for _, want := range harness.Experiments() {
		if !names[want] {
			t.Errorf("experiment %q missing from listing", want)
		}
	}
}

// TestExperimentJSONMatchesCSV is the JSON-fidelity acceptance test: the
// rows served by /v1/experiments/table3, re-rendered through the CSV
// renderer, must be byte-identical to what cmd/locality -csv produces
// for the same parameters — proving both surfaces share one structured
// encoding with no lossy marshaling in between.
func TestExperimentJSONMatchesCSV(t *testing.T) {
	ts := newTestServer(t, Options{})
	body := getOK(t, ts, "/v1/experiments/table3?maxranks=64")

	var envelope struct {
		Experiment string           `json:"experiment"`
		Rows       []*core.Analysis `json:"rows"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Experiment != "table3" || len(envelope.Rows) == 0 {
		t.Fatalf("envelope = %q with %d rows", envelope.Experiment, len(envelope.Rows))
	}

	var fromJSON bytes.Buffer
	if err := report.Table3(&fromJSON, envelope.Rows, true); err != nil {
		t.Fatal(err)
	}
	var fromCLI bytes.Buffer
	err := harness.Run(&fromCLI, harness.Params{
		Experiment: "table3", CSV: true, Options: core.Options{MaxRanks: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromJSON.Bytes(), fromCLI.Bytes()) {
		t.Fatalf("service JSON rows diverge from CLI CSV:\n--- via JSON ---\n%s\n--- via CLI ---\n%s",
			fromJSON.Bytes(), fromCLI.Bytes())
	}
}

// TestCacheHitFasterAndCounted is the caching acceptance test: a
// repeated identical request must be served from the cache (visible in
// the /metrics counters) and at least 10x faster than the cold request.
func TestCacheHitFasterAndCounted(t *testing.T) {
	ts := newTestServer(t, Options{})
	const path = "/v1/experiments/table3?maxranks=100"

	before := metricsSnapshot(t, ts)
	coldStart := time.Now()
	cold := getOK(t, ts, path)
	coldDur := time.Since(coldStart)

	warmStart := time.Now()
	warm := getOK(t, ts, path)
	warmDur := time.Since(warmStart)

	if !bytes.Equal(cold, warm) {
		t.Fatal("cached response differs from cold response")
	}
	after := metricsSnapshot(t, ts)
	if hits := after.Cache.Hits - before.Cache.Hits; hits < 1 {
		t.Errorf("cache hits = %d, want >= 1", hits)
	}
	if misses := after.Cache.Misses - before.Cache.Misses; misses != 1 {
		t.Errorf("cache misses = %d, want 1", misses)
	}
	if warmDur*10 > coldDur {
		t.Errorf("cache hit not 10x faster: cold %v vs warm %v", coldDur, warmDur)
	}
}

// TestConcurrentRequestsDeduplicated fires many parallel identical and
// distinct requests (exercising the cache and singleflight paths under
// -race) and verifies each distinct result was computed exactly once.
func TestConcurrentRequestsDeduplicated(t *testing.T) {
	ts := newTestServer(t, Options{})
	distinct := []string{
		"/v1/topologies?ranks=8",
		"/v1/topologies?ranks=27",
		"/v1/topologies?ranks=64",
	}
	const identical = "/v1/experiments/table4?maxranks=64"
	const parallelism = 8

	var wg sync.WaitGroup
	errs := make(chan error, parallelism*(len(distinct)+1))
	for i := 0; i < parallelism; i++ {
		for _, path := range append([]string{identical}, distinct...) {
			wg.Add(1)
			go func(path string) {
				defer wg.Done()
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					errs <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, body)
				}
			}(path)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	doc := metricsSnapshot(t, ts)
	wantComputed := int64(len(distinct) + 1)
	if doc.Compute.Executed != wantComputed {
		t.Errorf("computations = %d, want %d (one per distinct request)", doc.Compute.Executed, wantComputed)
	}
	if doc.Cache.Hits+doc.Compute.Deduped == 0 {
		t.Error("expected some requests to be served from cache or deduplicated")
	}
	if doc.InFlight != 1 { // the /metrics request itself is in flight
		t.Errorf("inflight = %d after quiescence, want 1", doc.InFlight)
	}
}

// TestAnalyzeEndpoint checks the per-workload analysis agrees with a
// direct core call for the same (app, ranks, topo, mapping) tuple.
func TestAnalyzeEndpoint(t *testing.T) {
	ts := newTestServer(t, Options{})
	body := getOK(t, ts, "/v1/analyze?app=LULESH&ranks=64&topo=torus&mapping=consecutive&coverage=0.9")
	var got AnalyzeResult
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.App != "LULESH" || got.Ranks != 64 || got.Topology != "torus" || got.Mapping != "consecutive" {
		t.Fatalf("envelope = %+v", got)
	}
	if got.Analysis == nil || got.Analysis.Torus == nil {
		t.Fatal("missing torus analysis")
	}
	if got.Analysis.FatTree != nil || got.Analysis.Dragonfly != nil {
		t.Error("unselected topologies present")
	}
	want, err := core.AnalyzeAppOn("LULESH", 64, "torus", "consecutive", core.Options{Coverage: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if got.Analysis.Torus.AvgHops != want.Torus.AvgHops ||
		got.Analysis.Torus.PacketHops != want.Torus.PacketHops ||
		got.Analysis.Selectivity != want.Selectivity {
		t.Errorf("analysis diverges from direct core call:\n got %+v\nwant %+v",
			got.Analysis.Torus, want.Torus)
	}
}

func TestAnalyzeAllTopologiesAndMappings(t *testing.T) {
	ts := newTestServer(t, Options{})
	body := getOK(t, ts, "/v1/analyze?app=LULESH&ranks=64")
	var got AnalyzeResult
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Analysis.Torus == nil || got.Analysis.FatTree == nil || got.Analysis.Dragonfly == nil {
		t.Fatal("default analyze should cover all three topologies")
	}
	// A refined mapping must not do worse than consecutive on packet hops.
	body = getOK(t, ts, "/v1/analyze?app=LULESH&ranks=64&topo=torus&mapping=refined")
	var refined AnalyzeResult
	if err := json.Unmarshal(body, &refined); err != nil {
		t.Fatal(err)
	}
	if refined.Analysis.Torus.PacketHops > got.Analysis.Torus.PacketHops {
		t.Errorf("refined mapping worse than consecutive: %d > %d",
			refined.Analysis.Torus.PacketHops, got.Analysis.Torus.PacketHops)
	}
}

func TestTopologiesEndpoint(t *testing.T) {
	ts := newTestServer(t, Options{})
	var got TopologiesResult
	if err := json.Unmarshal(getOK(t, ts, "/v1/topologies?ranks=64"), &got); err != nil {
		t.Fatal(err)
	}
	if got.Torus.Label != "(4,4,4)" || got.Torus.Nodes != 64 {
		t.Errorf("torus = %+v", got.Torus)
	}
	if got.FatTree.Switches == 0 || got.FatTree.TerminalLinks == 0 {
		t.Errorf("fattree = %+v", got.FatTree)
	}
	if got.Dragonfly.GlobalLinks == 0 {
		t.Errorf("dragonfly = %+v", got.Dragonfly)
	}
	// The extreme-scale families size for 64 ranks, so their blocks show up.
	if got.SlimFly == nil || got.SlimFly.Label != "(5,2)" || got.SlimFly.GlobalLinks == 0 {
		t.Errorf("slimfly = %+v", got.SlimFly)
	}
	if got.Jellyfish == nil || got.Jellyfish.Nodes < 64 || got.Jellyfish.GlobalLinks == 0 {
		t.Errorf("jellyfish = %+v", got.Jellyfish)
	}
	if got.HyperX == nil || got.HyperX.Nodes < 64 || got.HyperX.LocalLinks == 0 {
		t.Errorf("hyperx = %+v", got.HyperX)
	}
}

// TestAnalyzeExtremeScaleTopo selects each family beyond the paper's
// trio through the topo parameter and checks exactly that block lands in
// the analysis.
func TestAnalyzeExtremeScaleTopo(t *testing.T) {
	ts := newTestServer(t, Options{})
	for _, tc := range []struct {
		topo string
		pick func(*core.Analysis) *core.TopoResult
	}{
		{"slimfly", func(a *core.Analysis) *core.TopoResult { return a.SlimFly }},
		{"jellyfish", func(a *core.Analysis) *core.TopoResult { return a.Jellyfish }},
		{"hyperx", func(a *core.Analysis) *core.TopoResult { return a.HyperX }},
	} {
		body := getOK(t, ts, "/v1/analyze?app=LULESH&ranks=64&topo="+tc.topo)
		var got AnalyzeResult
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		res := tc.pick(got.Analysis)
		if res == nil {
			t.Fatalf("topo=%s: missing %s block in %+v", tc.topo, tc.topo, got.Analysis)
		}
		if res.AvgHops <= 0 || res.PacketHops == 0 {
			t.Errorf("topo=%s: empty metrics %+v", tc.topo, res)
		}
		if got.Analysis.Torus != nil || got.Analysis.FatTree != nil || got.Analysis.Dragonfly != nil {
			t.Errorf("topo=%s: paper topologies present in a single-family request", tc.topo)
		}
	}
}

func TestTraceUpload(t *testing.T) {
	ts := newTestServer(t, Options{})
	tr := &trace.Trace{
		Meta: trace.Meta{App: "uploaded", Ranks: 8, WallTime: 1},
		Events: []trace.Event{
			{Rank: 0, Op: trace.OpSend, Peer: 1, Root: -1, Bytes: 5000},
			{Rank: 3, Op: trace.OpSend, Peer: 7, Root: -1, Bytes: 100},
		},
	}
	var buf bytes.Buffer
	if err := trace.WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/traces/analyze", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var envelope struct {
		Experiment string           `json:"experiment"`
		Rows       []*core.Analysis `json:"rows"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Experiment != "trace" || len(envelope.Rows) != 1 || envelope.Rows[0].App != "uploaded" {
		t.Fatalf("envelope = %+v", envelope)
	}

	resp, err = http.Post(ts.URL+"/v1/traces/analyze", "application/octet-stream",
		strings.NewReader("not a trace"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage upload status = %d, want 400", resp.StatusCode)
	}
}

func TestErrorStatuses(t *testing.T) {
	ts := newTestServer(t, Options{})
	cases := []struct {
		path string
		want int
	}{
		{"/v1/experiments/table99", http.StatusNotFound},
		{"/v1/experiments/table2?maxranks=x", http.StatusBadRequest},
		{"/v1/experiments/table2?maxranks=-1", http.StatusBadRequest},
		{"/v1/experiments/fig1?ranks=-4", http.StatusBadRequest},
		{"/v1/experiments/fig1?rank=-1", http.StatusBadRequest},
		{"/v1/experiments/fig5?minranks=-512", http.StatusBadRequest},
		{"/v1/experiments/table2?coverage=2", http.StatusBadRequest},
		{"/v1/experiments/table2?strategy=warp", http.StatusBadRequest},
		{"/v1/analyze", http.StatusBadRequest},
		{"/v1/analyze?app=NoSuchApp&ranks=64", http.StatusNotFound},
		{"/v1/analyze?app=LULESH&ranks=0", http.StatusBadRequest},
		{"/v1/analyze?app=LULESH&ranks=64&topo=hypercube", http.StatusBadRequest},
		{"/v1/analyze?app=LULESH&ranks=64&mapping=psychic", http.StatusBadRequest},
		{"/v1/topologies", http.StatusBadRequest},
	}
	for _, c := range cases {
		if status, body := get(t, ts, c.path); status != c.want {
			t.Errorf("GET %s: status %d, want %d (%s)", c.path, status, c.want, body)
		}
	}
	doc := metricsSnapshot(t, ts)
	var exp struct {
		Errors int64 `json:"errors"`
	}
	if err := json.Unmarshal(doc.Endpoints["experiments"], &exp); err != nil {
		t.Fatal(err)
	}
	if exp.Errors < 4 {
		t.Errorf("experiments endpoint errors = %d, want >= 4", exp.Errors)
	}
}

func TestLRUCacheEvicts(t *testing.T) {
	c := newLRUCache(2)
	c.Add("a", []byte("1"))
	c.Add("b", []byte("2"))
	if _, ok := c.Get("a"); !ok { // refresh a; b becomes the oldest
		t.Fatal("a missing")
	}
	c.Add("c", []byte("3"))
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	if c.Len() != 2 || c.Evictions() != 1 {
		t.Errorf("len = %d evictions = %d", c.Len(), c.Evictions())
	}
	c.Add("c", []byte("33")) // refresh existing key keeps len stable
	if v, _ := c.Get("c"); string(v) != "33" {
		t.Errorf("c = %q", v)
	}
	if c.Len() != 2 {
		t.Errorf("len = %d after refresh", c.Len())
	}
}

func TestSingleflightSharesResult(t *testing.T) {
	var g flightGroup
	release := make(chan struct{})
	started := make(chan struct{})
	executions := 0
	var wg sync.WaitGroup
	results := make([][]byte, 2)
	shareds := make([]bool, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i == 1 {
				<-started // ensure goroutine 0 is the leader
			}
			v, err, shared := g.Do("k", func() ([]byte, error) {
				executions++
				close(started)
				<-release
				return []byte("v"), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i], shareds[i] = v, shared
		}(i)
	}
	go func() {
		<-started
		time.Sleep(10 * time.Millisecond) // let the follower block on the leader
		close(release)
	}()
	wg.Wait()
	if executions != 1 {
		t.Errorf("executions = %d, want 1", executions)
	}
	if string(results[0]) != "v" || string(results[1]) != "v" {
		t.Errorf("results = %q, %q", results[0], results[1])
	}
	if !shareds[0] && !shareds[1] {
		t.Error("neither caller saw a shared result")
	}
}

func TestSingleflightPanicReleasesWaiters(t *testing.T) {
	// Regression: a panicking fn used to leave the in-flight entry
	// registered with its WaitGroup never done, so every later caller
	// for the key blocked forever. The panic must surface as an error
	// and the key must become computable again.
	var g flightGroup
	v, err, shared := g.Do("k", func() ([]byte, error) {
		panic("kaboom")
	})
	if v != nil || shared {
		t.Fatalf("panicking call returned v=%q shared=%v", v, shared)
	}
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want panic converted to error", err)
	}

	// The key must not be poisoned: a fresh call runs and succeeds
	// without blocking.
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, err, _ := g.Do("k", func() ([]byte, error) { return []byte("ok"), nil })
		if err != nil || string(v) != "ok" {
			t.Errorf("post-panic Do = %q, %v", v, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Do blocked after a panicking computation")
	}
}

func TestSingleflightPanicSharedByWaiters(t *testing.T) {
	var g flightGroup
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	var followerErr error
	go func() {
		defer wg.Done()
		<-started
		_, followerErr, _ = g.Do("k", func() ([]byte, error) { return nil, nil })
	}()
	go func() {
		<-started
		time.Sleep(10 * time.Millisecond) // let the follower join the flight
		close(release)
	}()
	_, leaderErr, _ := g.Do("k", func() ([]byte, error) {
		close(started)
		<-release
		panic("shared kaboom")
	})
	wg.Wait()
	if leaderErr == nil {
		t.Fatal("leader saw no error")
	}
	// The follower either joined the panicking flight (shares its
	// error) or arrived after cleanup and computed fresh (nil error);
	// both are fine — what it must never do is hang, which wg.Wait
	// above would have exposed as a test timeout.
	if followerErr != nil && !strings.Contains(followerErr.Error(), "kaboom") {
		t.Errorf("follower err = %v", followerErr)
	}
}

func TestHistogramBuckets(t *testing.T) {
	m := newMetricsRegistry([]string{"x"})
	em := m.endpoints["x"]
	em.observeLatency(200 * time.Microsecond)
	em.observeLatency(3 * time.Millisecond)
	em.observeLatency(2 * time.Second)
	em.observeLatency(time.Hour) // beyond the last bound: only +Inf holds it
	snap := histogramJSON(em.latency)
	if snap["count"].(int64) != 4 {
		t.Fatalf("count = %v", snap["count"])
	}
	buckets := snap["buckets"].(map[string]int64)
	if buckets["le_0.25ms"] != 1 || buckets["le_5ms"] != 2 || buckets["le_2500ms"] != 3 {
		t.Errorf("buckets = %v", buckets)
	}
	// The 5000ms bound fills the gap between 2500 and 10000.
	if buckets["le_5000ms"] != 3 || buckets["le_10000ms"] != 3 {
		t.Errorf("buckets = %v", buckets)
	}
	// The +Inf bucket is rendered and always equals the count.
	if buckets["le_+Inf"] != 4 {
		t.Errorf("le_+Inf = %d, want 4 (buckets %v)", buckets["le_+Inf"], buckets)
	}
}

// TestMetricsPrometheusFormat checks content negotiation and the
// structural validity of the text exposition output.
func TestMetricsPrometheusFormat(t *testing.T) {
	ts := newTestServer(t, Options{Analysis: core.Options{MaxRanks: 32}})
	getOK(t, ts, "/v1/topologies?ranks=27")

	// Default stays JSON.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("default content type = %q", ct)
	}
	if !json.Valid(body) {
		t.Fatalf("default /metrics is not JSON: %s", body)
	}

	for _, path := range []string{"/metrics?format=prom", "/metrics"} {
		req, err := http.NewRequest("GET", ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(path, "format=prom") {
			req.Header.Set("Accept", "text/plain;version=0.0.4")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Errorf("%s content type = %q", path, ct)
		}
		out := string(body)
		for _, want := range []string{
			"# TYPE netloc_http_requests_total counter",
			"# TYPE netloc_http_request_duration_ms histogram",
			`netloc_http_requests_total{endpoint="topologies"} 1`,
			`le="+Inf"`,
			"netloc_engine_tokens_capacity",
			"netloc_cache_misses_total 1",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("%s missing %q in:\n%s", path, want, out)
			}
		}
	}
}

// TestDebugRunsServesSpans checks the span ring endpoint: an analysis
// run appears newest-first with its nested pipeline stages.
func TestDebugRunsServesSpans(t *testing.T) {
	ts := newTestServer(t, Options{Analysis: core.Options{MaxRanks: 64}})
	getOK(t, ts, "/v1/analyze?app=LULESH&ranks=64&topo=torus")
	var doc DebugRuns
	if err := json.Unmarshal(getOK(t, ts, "/v1/debug/runs"), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Recorded < 1 || len(doc.Runs) < 1 {
		t.Fatalf("no runs recorded: %+v", doc)
	}
	run := doc.Runs[0]
	if !strings.Contains(run.Name, "analyze") {
		t.Errorf("newest run = %q, want the analyze computation", run.Name)
	}
	stages := map[string]bool{}
	var walk func(d obs.SpanData)
	walk = func(d obs.SpanData) {
		stages[d.Name] = true
		for _, c := range d.Children {
			walk(c)
		}
	}
	walk(run.Root)
	for _, stage := range []string{"generate", "accumulate", "netmodel"} {
		if !stages[stage] {
			t.Errorf("stage %q missing from run spans (got %v)", stage, stages)
		}
	}
}

// TestRequestIDAndLogging checks every response carries an X-Request-ID
// and that an attached slog logger records one line per request.
func TestRequestIDAndLogging(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewTextHandler(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	}), nil))
	ts := newTestServer(t, Options{Log: logger, Analysis: core.Options{MaxRanks: 32}})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	id := resp.Header.Get("X-Request-ID")
	if id == "" {
		t.Fatal("missing X-Request-ID header")
	}
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if id2 := resp2.Header.Get("X-Request-ID"); id2 == id {
		t.Errorf("request IDs not unique: %q twice", id)
	}
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "endpoint=healthz") || !strings.Contains(out, "status=200") {
		t.Errorf("log output missing request record:\n%s", out)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestPipelineCountersAbsorbed checks computation work counts flow from
// spans into the monotonic pipeline counters on /metrics.
func TestPipelineCountersAbsorbed(t *testing.T) {
	ts := newTestServer(t, Options{Analysis: core.Options{MaxRanks: 64}})
	getOK(t, ts, "/v1/analyze?app=LULESH&ranks=64&topo=torus")
	var doc struct {
		Pipeline map[string]int64 `json:"pipeline"`
	}
	if err := json.Unmarshal(getOK(t, ts, "/metrics"), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Pipeline["events"] == 0 || doc.Pipeline["packets"] == 0 {
		t.Errorf("pipeline counters not absorbed: %v", doc.Pipeline)
	}
}

// TestWorkcacheMetricsExposed checks the artifact-cache counters on both
// /metrics surfaces: two analyses of the same workload under different
// topologies have distinct result-cache keys but share the generated
// trace and accumulated matrices, so the second request must land as
// workcache hits.
func TestWorkcacheMetricsExposed(t *testing.T) {
	ts := newTestServer(t, Options{})
	getOK(t, ts, "/v1/analyze?app=LULESH&ranks=64&topo=torus")
	getOK(t, ts, "/v1/analyze?app=LULESH&ranks=64&topo=fattree")

	doc := metricsSnapshot(t, ts)
	if doc.Workcache.Misses == 0 {
		t.Fatalf("workcache misses = 0 after cold analyses: %+v", doc.Workcache)
	}
	if doc.Workcache.Hits == 0 {
		t.Fatalf("workcache hits = 0 after an artifact-sharing analysis: %+v", doc.Workcache)
	}
	if doc.Workcache.Entries == 0 {
		t.Fatalf("workcache entries = 0 with artifacts resident: %+v", doc.Workcache)
	}

	prom := string(getOK(t, ts, "/metrics?format=prom"))
	for _, series := range []string{
		"netloc_workcache_hits_total", "netloc_workcache_misses_total",
		"netloc_workcache_evictions_total", "netloc_workcache_entries",
	} {
		if !strings.Contains(prom, series) {
			t.Errorf("prometheus exposition missing %s", series)
		}
	}
}
