package comm

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"netloc/internal/parallel"
	"netloc/internal/trace"
)

func mustMatrix(t *testing.T, ranks, ps int) *Matrix {
	t.Helper()
	m, err := NewMatrix(ranks, ps)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMatrixValidation(t *testing.T) {
	if _, err := NewMatrix(0, 0); err == nil {
		t.Fatal("zero ranks accepted")
	}
	m := mustMatrix(t, 4, 0)
	if m.PacketSize() != DefaultPacketSize {
		t.Fatalf("default packet size = %d", m.PacketSize())
	}
	m2 := mustMatrix(t, 4, 512)
	if m2.PacketSize() != 512 {
		t.Fatalf("packet size = %d", m2.PacketSize())
	}
}

func TestPacketsFor(t *testing.T) {
	m := mustMatrix(t, 2, 4096)
	cases := []struct {
		bytes, want uint64
	}{
		{0, 0}, {1, 1}, {4095, 1}, {4096, 1}, {4097, 2}, {8192, 2}, {8193, 3},
	}
	for _, c := range cases {
		if got := m.PacketsFor(c.bytes); got != c.want {
			t.Errorf("PacketsFor(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestAddAccumulates(t *testing.T) {
	m := mustMatrix(t, 4, 4096)
	if err := m.Add(0, 1, 5000); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(0, 1, 100); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(1, 0, 1); err != nil {
		t.Fatal(err)
	}
	e := m.Lookup(0, 1)
	if e.Bytes != 5100 || e.Messages != 2 || e.Packets != 3 {
		t.Fatalf("entry = %+v", e)
	}
	if m.Pairs() != 2 {
		t.Fatalf("pairs = %d", m.Pairs())
	}
	if m.TotalBytes() != 5101 || m.TotalMessages() != 3 || m.TotalPackets() != 4 {
		t.Fatalf("totals = %d/%d/%d", m.TotalBytes(), m.TotalMessages(), m.TotalPackets())
	}
	if z := m.Lookup(2, 3); z != (Entry{}) {
		t.Fatalf("zero lookup = %+v", z)
	}
}

func TestAddValidation(t *testing.T) {
	m := mustMatrix(t, 4, 0)
	if err := m.Add(0, 0, 1); err == nil {
		t.Fatal("self message accepted")
	}
	if err := m.Add(-1, 0, 1); err == nil {
		t.Fatal("negative src accepted")
	}
	if err := m.Add(0, 4, 1); err == nil {
		t.Fatal("dst out of range accepted")
	}
}

func TestBySource(t *testing.T) {
	m := mustMatrix(t, 4, 0)
	_ = m.Add(0, 1, 10)
	_ = m.Add(0, 2, 20)
	_ = m.Add(1, 2, 99)
	dsts, vols := m.BySource(0)
	if len(dsts) != 2 || len(vols) != 2 {
		t.Fatalf("BySource lengths %d/%d", len(dsts), len(vols))
	}
	got := map[int]float64{}
	for i := range dsts {
		got[dsts[i]] = vols[i]
	}
	if got[1] != 10 || got[2] != 20 {
		t.Fatalf("BySource = %v", got)
	}
	if d, v := m.BySource(3); d != nil || v != nil {
		t.Fatalf("BySource(3) = %v, %v", d, v)
	}
}

func TestEachVisitsAllPairs(t *testing.T) {
	m := mustMatrix(t, 4, 0)
	_ = m.Add(0, 1, 10)
	_ = m.Add(2, 3, 20)
	seen := map[Key]uint64{}
	m.Each(func(k Key, e Entry) { seen[k] = e.Bytes })
	if len(seen) != 2 || seen[Key{0, 1}] != 10 || seen[Key{2, 3}] != 20 {
		t.Fatalf("seen = %v", seen)
	}
}

func testTrace() *trace.Trace {
	return &trace.Trace{
		Meta: trace.Meta{App: "t", Ranks: 4, WallTime: 2},
		Events: []trace.Event{
			{Rank: 0, Op: trace.OpSend, Peer: 1, Root: -1, Bytes: 8192},
			{Rank: 1, Op: trace.OpRecv, Peer: 0, Root: -1, Bytes: 8192},
			{Rank: 0, Op: trace.OpAllreduce, Peer: -1, Root: -1, Bytes: 100},
			{Rank: 1, Op: trace.OpAllreduce, Peer: -1, Root: -1, Bytes: 100},
			{Rank: 2, Op: trace.OpAllreduce, Peer: -1, Root: -1, Bytes: 100},
			{Rank: 3, Op: trace.OpAllreduce, Peer: -1, Root: -1, Bytes: 100},
		},
	}
}

func TestAccumulateSeparatesP2PAndWire(t *testing.T) {
	acc, err := Accumulate(testTrace(), AccumulateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// P2P: only the send.
	if acc.P2P.TotalBytes() != 8192 || acc.P2P.Pairs() != 1 {
		t.Fatalf("p2p totals: %d bytes, %d pairs", acc.P2P.TotalBytes(), acc.P2P.Pairs())
	}
	// Wire: send + 4 ranks * 3 peers * 100 bytes of allreduce.
	wantWire := uint64(8192 + 12*100)
	if acc.Wire.TotalBytes() != wantWire {
		t.Fatalf("wire bytes = %d, want %d", acc.Wire.TotalBytes(), wantWire)
	}
	if acc.Wire.Pairs() != 12 { // all ordered pairs (0,1 included via both)
		t.Fatalf("wire pairs = %d, want 12", acc.Wire.Pairs())
	}
	if acc.CallerP2PBytes != 8192 || acc.CallerCollBytes != 400 {
		t.Fatalf("caller totals: %d / %d", acc.CallerP2PBytes, acc.CallerCollBytes)
	}
	if acc.Meta.App != "t" {
		t.Fatalf("meta not carried: %+v", acc.Meta)
	}
}

func TestAccumulateStreamMatchesAccumulate(t *testing.T) {
	tr := testTrace()
	var buf bytes.Buffer
	if err := trace.WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fromStream, err := AccumulateStream(r, AccumulateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Accumulate(tr, AccumulateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fromStream.Wire.TotalBytes() != direct.Wire.TotalBytes() ||
		fromStream.P2P.TotalBytes() != direct.P2P.TotalBytes() ||
		fromStream.Wire.Pairs() != direct.Wire.Pairs() {
		t.Fatal("stream and direct accumulation differ")
	}
}

// bigTrace builds a trace long enough to engage sharding in
// AccumulateParallel (well past minShardEvents per shard), mixing p2p
// sends with repeated collective rounds.
func bigTrace(ranks, events int) *trace.Trace {
	tr := &trace.Trace{Meta: trace.Meta{App: "big", Ranks: ranks, WallTime: 5}}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < events; i++ {
		switch i % 5 {
		case 4:
			tr.Events = append(tr.Events, trace.Event{
				Rank: rng.Intn(ranks), Op: trace.OpAllreduce, Peer: -1, Root: -1,
				Bytes: uint64(64 + 64*rng.Intn(4)),
			})
		default:
			src := rng.Intn(ranks)
			dst := (src + 1 + rng.Intn(ranks-1)) % ranks
			tr.Events = append(tr.Events, trace.Event{
				Rank: src, Op: trace.OpSend, Peer: dst, Root: -1,
				Bytes: uint64(1 + rng.Intn(10000)),
			})
		}
	}
	return tr
}

func matricesEqual(t *testing.T, name string, a, b *Matrix) {
	t.Helper()
	if a.Ranks() != b.Ranks() || a.Pairs() != b.Pairs() ||
		a.TotalBytes() != b.TotalBytes() ||
		a.TotalMessages() != b.TotalMessages() ||
		a.TotalPackets() != b.TotalPackets() {
		t.Fatalf("%s: totals differ", name)
	}
	got := map[Key]Entry{}
	b.Each(func(k Key, e Entry) { got[k] = e })
	a.Each(func(k Key, e Entry) {
		if got[k] != e {
			t.Fatalf("%s: entry %v differs: %v vs %v", name, k, e, got[k])
		}
	})
}

func TestAccumulateParallelMatchesSequential(t *testing.T) {
	tr := bigTrace(32, 6*minShardEvents)
	seq, err := Accumulate(tr, AccumulateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8} {
		par, err := AccumulateParallel(tr, AccumulateOptions{}, parallel.New(workers))
		if err != nil {
			t.Fatal(err)
		}
		matricesEqual(t, "P2P", seq.P2P, par.P2P)
		matricesEqual(t, "Wire", seq.Wire, par.Wire)
		if par.CallerP2PBytes != seq.CallerP2PBytes || par.CallerCollBytes != seq.CallerCollBytes {
			t.Fatalf("workers=%d: caller totals differ", workers)
		}
		if par.Meta != seq.Meta {
			t.Fatalf("workers=%d: meta differs", workers)
		}
	}
}

func TestAccumulateParallelShortTraceFallsBack(t *testing.T) {
	tr := testTrace() // far below minShardEvents
	par, err := AccumulateParallel(tr, AccumulateOptions{}, parallel.New(8))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Accumulate(tr, AccumulateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	matricesEqual(t, "Wire", seq.Wire, par.Wire)
}

func TestAccumulateParallelErrorMatchesSequential(t *testing.T) {
	// A bad event must surface with its global index, identical to the
	// sequential error, regardless of which shard hits it.
	tr := bigTrace(16, 3*minShardEvents)
	badIdx := len(tr.Events) / 2
	tr.Events[badIdx] = trace.Event{Rank: 0, Op: trace.OpSend, Peer: 99, Root: -1, Bytes: 1}
	_, seqErr := Accumulate(tr, AccumulateOptions{})
	if seqErr == nil {
		t.Fatal("bad event accepted sequentially")
	}
	_, parErr := AccumulateParallel(tr, AccumulateOptions{}, parallel.New(4))
	if parErr == nil {
		t.Fatal("bad event accepted in parallel")
	}
	if seqErr.Error() != parErr.Error() {
		t.Fatalf("errors differ:\n seq: %v\n par: %v", seqErr, parErr)
	}
}

func TestMatrixMergeValidation(t *testing.T) {
	a := mustMatrix(t, 4, 0)
	if err := a.Merge(mustMatrix(t, 5, 0)); err == nil {
		t.Fatal("rank mismatch accepted")
	}
	if err := a.Merge(mustMatrix(t, 4, 100)); err == nil {
		t.Fatal("packet-size mismatch accepted")
	}
}

func TestAccumulatePacketSizeOption(t *testing.T) {
	tr := &trace.Trace{
		Meta:   trace.Meta{App: "t", Ranks: 2, WallTime: 1},
		Events: []trace.Event{{Rank: 0, Op: trace.OpSend, Peer: 1, Root: -1, Bytes: 1000}},
	}
	acc, err := Accumulate(tr, AccumulateOptions{PacketSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	if acc.Wire.TotalPackets() != 10 {
		t.Fatalf("packets = %d, want 10", acc.Wire.TotalPackets())
	}
}

func TestAccumulateRejectsBadTrace(t *testing.T) {
	tr := &trace.Trace{
		Meta:   trace.Meta{App: "t", Ranks: 2, WallTime: 1},
		Events: []trace.Event{{Rank: 0, Op: trace.Op(99), Peer: -1, Root: -1}},
	}
	if _, err := Accumulate(tr, AccumulateOptions{}); err == nil {
		t.Fatal("bad op accepted")
	}
	bad := &trace.Trace{Meta: trace.Meta{Ranks: 0}}
	if _, err := Accumulate(bad, AccumulateOptions{}); err == nil {
		t.Fatal("bad meta accepted")
	}
}

// Property: wire totals always dominate p2p totals, and packet counts are
// consistent with ceil packetization.
func TestAccumulateDominanceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ranks := 2 + rng.Intn(10)
		tr := &trace.Trace{Meta: trace.Meta{App: "p", Ranks: ranks, WallTime: 1}}
		n := rng.Intn(40)
		for i := 0; i < n; i++ {
			r := rng.Intn(ranks)
			if rng.Intn(2) == 0 {
				tr.Events = append(tr.Events, trace.Event{
					Rank: r, Op: trace.OpSend, Peer: (r + 1 + rng.Intn(ranks-1)) % ranks,
					Root: -1, Bytes: uint64(rng.Intn(10000)),
				})
			} else {
				tr.Events = append(tr.Events, trace.Event{
					Rank: r, Op: trace.OpAllreduce, Peer: -1, Root: -1,
					Bytes: uint64(rng.Intn(1000)),
				})
			}
		}
		acc, err := Accumulate(tr, AccumulateOptions{})
		if err != nil {
			return false
		}
		if acc.Wire.TotalBytes() < acc.P2P.TotalBytes() {
			return false
		}
		if acc.Wire.TotalPackets() < acc.P2P.TotalPackets() {
			return false
		}
		// Per-pair packet consistency: packets >= ceil(bytes/ps/msgs)
		// and packets <= messages * ceil(maxBytes/ps); check the weaker
		// invariant packets >= ceil(bytes/ps).
		ok := true
		acc.Wire.Each(func(k Key, e Entry) {
			if e.Packets < acc.Wire.PacketsFor(e.Bytes)/e.Messages {
				ok = false
			}
			if e.Messages == 0 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestAccumulateReportsShards pins the observational shard count: a
// sequential pass reports 1, a sharded pass reports how many partials
// were merged.
func TestAccumulateReportsShards(t *testing.T) {
	tr := bigTrace(32, 6*minShardEvents)
	seq, err := Accumulate(tr, AccumulateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Shards != 1 {
		t.Errorf("sequential shards = %d, want 1", seq.Shards)
	}
	par, err := AccumulateParallel(tr, AccumulateOptions{}, parallel.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if par.Shards < 2 {
		t.Errorf("parallel shards = %d, want >= 2", par.Shards)
	}
	short, err := AccumulateParallel(testTrace(), AccumulateOptions{}, parallel.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if short.Shards != 1 {
		t.Errorf("short-trace fallback shards = %d, want 1", short.Shards)
	}
}

// TestRowAccessorsAgreeAcrossRepresentations drives the same random
// matrix through the streaming accessors (EachDst, RowLen,
// AppendBySource) and the reference ones (Each, BySource), on both
// sides of the dense-promotion threshold: hot rows (promoted to the
// dense slice) and sparse rows must report identical contents.
func TestRowAccessorsAgreeAcrossRepresentations(t *testing.T) {
	const ranks = 96 // threshold = 24: rows below stay sparse, above go dense
	m := mustMatrix(t, ranks, 0)
	rng := rand.New(rand.NewSource(7))
	for src := 0; src < ranks; src++ {
		dsts := 3 + rng.Intn(8) // sparse
		if src%2 == 0 {
			dsts = 30 + rng.Intn(40) // past the threshold: promoted
		}
		for j := 0; j < dsts; j++ {
			dst := rng.Intn(ranks)
			if dst == src {
				continue
			}
			if err := m.Add(src, dst, uint64(1+rng.Intn(1<<16))); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Reference: every pair seen by Each, grouped by source.
	type row map[int]Entry
	want := make([]row, ranks)
	for i := range want {
		want[i] = row{}
	}
	m.Each(func(k Key, e Entry) { want[k.Src][k.Dst] = e })

	scratchD, scratchV := make([]int, 0, ranks), make([]float64, 0, ranks)
	for src := 0; src < ranks; src++ {
		got := row{}
		m.EachDst(src, func(dst int, e Entry) {
			if _, dup := got[dst]; dup {
				t.Fatalf("src %d: EachDst visited dst %d twice", src, dst)
			}
			got[dst] = e
		})
		if len(got) != len(want[src]) {
			t.Fatalf("src %d: EachDst saw %d dsts, Each saw %d", src, len(got), len(want[src]))
		}
		for dst, e := range want[src] {
			if got[dst] != e {
				t.Fatalf("src %d->%d: EachDst entry %+v != Each entry %+v", src, dst, got[dst], e)
			}
		}
		if n := m.RowLen(src); n != len(want[src]) {
			t.Fatalf("src %d: RowLen = %d, want %d", src, n, len(want[src]))
		}

		bd, bv := m.BySource(src)
		ad, av := m.AppendBySource(src, scratchD[:0], scratchV[:0])
		if len(ad) != len(bd) || len(av) != len(bv) {
			t.Fatalf("src %d: AppendBySource lengths (%d,%d) != BySource (%d,%d)",
				src, len(ad), len(av), len(bd), len(bv))
		}
		bySrc := map[int]float64{}
		for i, d := range bd {
			bySrc[d] = bv[i]
		}
		for i, d := range ad {
			if bySrc[d] != av[i] {
				t.Fatalf("src %d dst %d: AppendBySource vol %g != BySource %g", src, d, av[i], bySrc[d])
			}
		}
	}
}
