package comm

import (
	"testing"

	"netloc/internal/trace"
)

// stencilTrace builds a LULESH-like p2p trace for accumulation benchmarks.
func stencilTrace(ranks, msgsPerPair int) *trace.Trace {
	t := &trace.Trace{Meta: trace.Meta{App: "bench", Ranks: ranks, WallTime: 1}}
	for r := 0; r < ranks; r++ {
		for _, d := range []int{1, -1, 8, -8, 64, -64} {
			peer := r + d
			if peer < 0 || peer >= ranks {
				continue
			}
			for m := 0; m < msgsPerPair; m++ {
				t.Events = append(t.Events, trace.Event{
					Rank: r, Op: trace.OpSend, Peer: peer, Root: -1, Bytes: 65536,
				})
			}
		}
	}
	return t
}

func collectiveTrace(ranks, calls int) *trace.Trace {
	t := &trace.Trace{Meta: trace.Meta{App: "bench", Ranks: ranks, WallTime: 1}}
	for c := 0; c < calls; c++ {
		for r := 0; r < ranks; r++ {
			t.Events = append(t.Events, trace.Event{
				Rank: r, Op: trace.OpAllreduce, Peer: -1, Root: -1, Bytes: 4096,
			})
		}
	}
	return t
}

func BenchmarkAccumulateStencil(b *testing.B) {
	t := stencilTrace(512, 10)
	b.ReportMetric(float64(len(t.Events)), "events")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Accumulate(t, AccumulateOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccumulateCollective(b *testing.B) {
	// 20 allreduce rounds on 256 ranks: the coalescing fast path expands
	// each rank's shape once instead of 20 times.
	t := collectiveTrace(256, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Accumulate(t, AccumulateOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatrixAdd(b *testing.B) {
	m, err := NewMatrix(1024, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Add(i%1024, (i*7+1)%1024, 4096); err != nil && i%1024 != (i*7+1)%1024 {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatrixBySource(b *testing.B) {
	m, err := NewMatrix(1024, 0)
	if err != nil {
		b.Fatal(err)
	}
	for r := 0; r < 1024; r++ {
		for k := 1; k <= 26; k++ {
			_ = m.Add(r, (r+k)%1024, 4096)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dsts, _ := m.BySource(i % 1024)
		if len(dsts) == 0 {
			b.Fatal("empty row")
		}
	}
}
