// Package comm accumulates traced MPI traffic into communication matrices:
// per ordered rank pair, the total bytes, message count, and packet count.
//
// Two matrices matter to the study: the point-to-point matrix (what the
// hardware-agnostic MPI-level metrics — rank locality, selectivity, peers —
// are computed from) and the full wire matrix including expanded
// collectives (what the topology-level metrics — packet hops, utilization —
// are computed from). Accumulate builds both in one streaming pass.
package comm

import (
	"fmt"
	"io"

	"netloc/internal/mpi"
	"netloc/internal/parallel"
	"netloc/internal/trace"
)

// DefaultPacketSize is the maximum packet payload the paper assumes (4 kB).
const DefaultPacketSize = 4096

// Key identifies an ordered rank pair.
type Key struct {
	Src, Dst int
}

// Entry aggregates the traffic of one ordered rank pair.
type Entry struct {
	Bytes    uint64
	Messages uint64
	Packets  uint64
}

// Matrix is a communication matrix over ranks 0..Ranks-1, stored row-wise
// (one destination row per source rank) so that per-source queries — which
// the rank-level metrics issue for every rank — touch only that rank's
// partners rather than the whole pair set.
//
// Each row starts as a sparse destination map; once a row's population
// crosses denseThreshold (collective expansion fills rows toward all-to-all
// density) it is promoted to a dense per-destination slice, where an entry
// is present iff Messages != 0. Dense rows turn the AddN hot path into an
// array index instead of a map assignment, which is where the accumulation
// grid spent most of its allocations.
type Matrix struct {
	ranks      int
	packetSize int
	sparse     []map[int]Entry
	dense      [][]Entry
	pairs      int
	totalBytes uint64
	totalMsgs  uint64
	totalPkts  uint64
}

// NewMatrix creates an empty matrix. packetSize <= 0 selects
// DefaultPacketSize.
func NewMatrix(ranks, packetSize int) (*Matrix, error) {
	if ranks <= 0 {
		return nil, fmt.Errorf("comm: non-positive rank count %d", ranks)
	}
	if packetSize <= 0 {
		packetSize = DefaultPacketSize
	}
	return &Matrix{ranks: ranks, packetSize: packetSize, sparse: make([]map[int]Entry, ranks), dense: make([][]Entry, ranks)}, nil
}

// denseThreshold is the row population at which a sparse row is promoted
// to a dense slice: a quarter of the rank space, floored so tiny matrices
// stay in cheap maps.
func (m *Matrix) denseThreshold() int {
	t := m.ranks / 4
	if t < 16 {
		t = 16
	}
	return t
}

// promoteRow converts a sparse row into its dense representation.
func (m *Matrix) promoteRow(src int) {
	d := make([]Entry, m.ranks)
	for dst, e := range m.sparse[src] {
		d[dst] = e
	}
	m.dense[src] = d
	m.sparse[src] = nil
}

// Ranks returns the rank-space size of the matrix.
func (m *Matrix) Ranks() int { return m.ranks }

// PacketSize returns the packetization granularity in bytes.
func (m *Matrix) PacketSize() int { return m.packetSize }

// PacketsFor returns how many packets a message of the given size occupies:
// ceil(bytes/packetSize); zero-byte messages carry no packets.
func (m *Matrix) PacketsFor(bytes uint64) uint64 {
	ps := uint64(m.packetSize)
	return (bytes + ps - 1) / ps
}

// Add records one message from src to dst.
func (m *Matrix) Add(src, dst int, bytes uint64) error {
	return m.AddN(src, dst, bytes, 1)
}

// AddN records n identical messages of the given size from src to dst in
// one operation (used to coalesce repeated collective rounds).
func (m *Matrix) AddN(src, dst int, bytes uint64, n uint64) error {
	if src < 0 || src >= m.ranks || dst < 0 || dst >= m.ranks {
		return fmt.Errorf("comm: pair (%d,%d) out of range [0,%d)", src, dst, m.ranks)
	}
	if src == dst {
		return fmt.Errorf("comm: self message on rank %d", src)
	}
	if n == 0 {
		return nil
	}
	pkts := m.PacketsFor(bytes) * n
	if d := m.dense[src]; d != nil {
		e := &d[dst]
		if e.Messages == 0 {
			m.pairs++
		}
		e.Bytes += bytes * n
		e.Messages += n
		e.Packets += pkts
	} else {
		row := m.sparse[src]
		if row == nil {
			row = make(map[int]Entry)
			m.sparse[src] = row
		}
		e, existed := row[dst]
		if !existed {
			m.pairs++
		}
		e.Bytes += bytes * n
		e.Messages += n
		e.Packets += pkts
		row[dst] = e
		if len(row) >= m.denseThreshold() {
			m.promoteRow(src)
		}
	}
	m.totalBytes += bytes * n
	m.totalMsgs += n
	m.totalPkts += pkts
	return nil
}

// Pairs returns the number of ordered rank pairs with recorded traffic.
func (m *Matrix) Pairs() int { return m.pairs }

// TotalBytes returns the total recorded volume.
func (m *Matrix) TotalBytes() uint64 { return m.totalBytes }

// TotalMessages returns the total message count.
func (m *Matrix) TotalMessages() uint64 { return m.totalMsgs }

// TotalPackets returns the total packet count.
func (m *Matrix) TotalPackets() uint64 { return m.totalPkts }

// Lookup returns the entry for an ordered pair, or a zero entry.
func (m *Matrix) Lookup(src, dst int) Entry {
	if src < 0 || src >= m.ranks || dst < 0 || dst >= m.ranks {
		return Entry{}
	}
	if d := m.dense[src]; d != nil {
		return d[dst]
	}
	return m.sparse[src][dst]
}

// Each calls fn for every (pair, entry) with recorded traffic, in
// ascending source order; destination order within a source is
// unspecified.
func (m *Matrix) Each(fn func(k Key, e Entry)) {
	for src := 0; src < m.ranks; src++ {
		m.EachDst(src, func(dst int, e Entry) {
			fn(Key{Src: src, Dst: dst}, e)
		})
	}
}

// EachDst calls fn for every recorded destination of the given source
// rank; destination order is unspecified. It is the allocation-free
// alternative to BySource for callers that stream rather than slice.
func (m *Matrix) EachDst(src int, fn func(dst int, e Entry)) {
	if src < 0 || src >= m.ranks {
		return
	}
	if d := m.dense[src]; d != nil {
		for dst := range d {
			if d[dst].Messages != 0 {
				fn(dst, d[dst])
			}
		}
		return
	}
	for dst, e := range m.sparse[src] {
		fn(dst, e)
	}
}

// RowLen returns the number of destinations with recorded traffic for the
// given source rank — the pre-sizing hint for per-row scratch buffers.
func (m *Matrix) RowLen(src int) int {
	if src < 0 || src >= m.ranks {
		return 0
	}
	if d := m.dense[src]; d != nil {
		n := 0
		for dst := range d {
			if d[dst].Messages != 0 {
				n++
			}
		}
		return n
	}
	return len(m.sparse[src])
}

// BySource returns, for the given source rank, the destination ranks it
// sends to and the per-destination byte volumes (parallel slices, order
// unspecified).
func (m *Matrix) BySource(src int) (dsts []int, vols []float64) {
	return m.AppendBySource(src, nil, nil)
}

// AppendBySource appends the destination ranks and per-destination byte
// volumes of src onto the given slices (which may be nil) and returns
// them, letting per-rank metric loops reuse scratch buffers instead of
// allocating a fresh pair per rank. When the row is empty the inputs are
// returned unchanged, so a nil-in/nil-out call matches BySource.
func (m *Matrix) AppendBySource(src int, dsts []int, vols []float64) ([]int, []float64) {
	if src < 0 || src >= m.ranks {
		return dsts, vols
	}
	if d := m.dense[src]; d != nil {
		for dst := range d {
			if d[dst].Messages != 0 {
				dsts = append(dsts, dst)
				vols = append(vols, float64(d[dst].Bytes))
			}
		}
		return dsts, vols
	}
	row := m.sparse[src]
	if len(row) == 0 {
		return dsts, vols
	}
	if dsts == nil {
		dsts = make([]int, 0, len(row))
		vols = make([]float64, 0, len(row))
	}
	for dst, e := range row {
		dsts = append(dsts, dst)
		vols = append(vols, float64(e.Bytes))
	}
	return dsts, vols
}

// Merge adds every recorded entry of other — which must share the rank
// space and packet size — into m. Entries, totals, and pair counts are
// exact integer sums, so merging shard matrices reproduces the matrix a
// single sequential pass over the same events would have built.
func (m *Matrix) Merge(other *Matrix) error {
	if other == nil {
		return nil
	}
	if other.ranks != m.ranks {
		return fmt.Errorf("comm: merge rank mismatch: %d vs %d", other.ranks, m.ranks)
	}
	if other.packetSize != m.packetSize {
		return fmt.Errorf("comm: merge packet-size mismatch: %d vs %d", other.packetSize, m.packetSize)
	}
	for src := 0; src < m.ranks; src++ {
		if od := other.dense[src]; od != nil {
			// A dense incoming row makes the merged row at least as
			// dense; promote before the vector add.
			if m.dense[src] == nil {
				m.promoteRow(src)
			}
			d := m.dense[src]
			for dst := range od {
				if od[dst].Messages == 0 {
					continue
				}
				if d[dst].Messages == 0 {
					m.pairs++
				}
				d[dst].Bytes += od[dst].Bytes
				d[dst].Messages += od[dst].Messages
				d[dst].Packets += od[dst].Packets
			}
			continue
		}
		srow := other.sparse[src]
		if len(srow) == 0 {
			continue
		}
		if d := m.dense[src]; d != nil {
			for dst, e := range srow {
				if d[dst].Messages == 0 {
					m.pairs++
				}
				d[dst].Bytes += e.Bytes
				d[dst].Messages += e.Messages
				d[dst].Packets += e.Packets
			}
			continue
		}
		row := m.sparse[src]
		if row == nil {
			row = make(map[int]Entry, len(srow))
			m.sparse[src] = row
		}
		for dst, e := range srow {
			cur, existed := row[dst]
			if !existed {
				m.pairs++
			}
			cur.Bytes += e.Bytes
			cur.Messages += e.Messages
			cur.Packets += e.Packets
			row[dst] = cur
		}
		if len(row) >= m.denseThreshold() {
			m.promoteRow(src)
		}
	}
	m.totalBytes += other.totalBytes
	m.totalMsgs += other.totalMsgs
	m.totalPkts += other.totalPkts
	return nil
}

// Accumulated holds the two matrices of one trace plus accounting totals.
type Accumulated struct {
	Meta trace.Meta
	// P2P covers only genuine point-to-point messages (what the
	// MPI-level metrics see).
	P2P *Matrix
	// Wire covers all wire messages including expanded collectives
	// (what the topology-level metrics see).
	Wire *Matrix
	// CallerP2PBytes and CallerCollBytes sum the caller-side payloads of
	// the traced events (the Table 1 volume accounting).
	CallerP2PBytes  uint64
	CallerCollBytes uint64

	// Shards is how many contiguous event shards built the matrices: 1
	// for a sequential pass, the shard count for AccumulateParallel.
	// Purely observational — the matrices are exact integer sums either
	// way.
	Shards int

	strategy   mpi.Strategy
	collCounts map[collKey]uint64
}

// AccumulateOptions tunes accumulation.
type AccumulateOptions struct {
	// PacketSize overrides DefaultPacketSize when positive.
	PacketSize int
	// Strategy selects the collective expansion algorithm; the zero
	// value is the paper's direct translation.
	Strategy mpi.Strategy
}

// Accumulate builds the P2P and wire matrices from a materialized trace.
func Accumulate(t *trace.Trace, opts AccumulateOptions) (*Accumulated, error) {
	world, err := mpi.World(t.Meta.Ranks)
	if err != nil {
		return nil, err
	}
	acc, err := newAccumulated(t.Meta, opts)
	if err != nil {
		return nil, err
	}
	var buf []mpi.Message
	for i := range t.Events {
		if err := acc.addEvent(t.Events[i], world, &buf); err != nil {
			return nil, fmt.Errorf("comm: event %d: %w", i, err)
		}
	}
	if err := acc.flushCollectives(world, &buf); err != nil {
		return nil, err
	}
	acc.Shards = 1
	return acc, nil
}

// minShardEvents is the smallest event count worth sharding; below it
// the goroutine and merge overhead exceeds the accumulation work.
const minShardEvents = 2048

// AccumulateParallel builds the same matrices as Accumulate but splits
// the event stream into contiguous shards, accumulates each shard into
// a private partial on the runner's workers, and merges the partials in
// shard order. All accumulation is exact integer arithmetic, so the
// result is identical to a sequential pass; short traces (or a
// sequential runner) fall back to Accumulate directly.
func AccumulateParallel(t *trace.Trace, opts AccumulateOptions, run parallel.Runner) (*Accumulated, error) {
	shards := run.Workers()
	if max := len(t.Events) / minShardEvents; shards > max {
		shards = max
	}
	if shards <= 1 {
		return Accumulate(t, opts)
	}
	world, err := mpi.World(t.Meta.Ranks)
	if err != nil {
		return nil, err
	}
	parts := make([]*Accumulated, shards)
	per := (len(t.Events) + shards - 1) / shards
	err = run.ForEachErr(shards, func(s int) error {
		lo, hi := s*per, (s+1)*per
		if hi > len(t.Events) {
			hi = len(t.Events)
		}
		part, err := newAccumulated(t.Meta, opts)
		if err != nil {
			return err
		}
		var buf []mpi.Message
		for i := lo; i < hi; i++ {
			if err := part.addEvent(t.Events[i], world, &buf); err != nil {
				return fmt.Errorf("comm: event %d: %w", i, err)
			}
		}
		parts[s] = part
		return nil
	})
	if err != nil {
		return nil, err
	}
	acc := parts[0]
	for _, part := range parts[1:] {
		if err := acc.merge(part); err != nil {
			return nil, err
		}
	}
	var buf []mpi.Message
	if err := acc.flushCollectives(world, &buf); err != nil {
		return nil, err
	}
	acc.Shards = shards
	return acc, nil
}

// merge folds another shard's partial accumulation (same trace, same
// options, collectives not yet flushed) into a.
func (a *Accumulated) merge(o *Accumulated) error {
	if err := a.P2P.Merge(o.P2P); err != nil {
		return err
	}
	if err := a.Wire.Merge(o.Wire); err != nil {
		return err
	}
	a.CallerP2PBytes += o.CallerP2PBytes
	a.CallerCollBytes += o.CallerCollBytes
	for k, n := range o.collCounts {
		a.collCounts[k] += n
	}
	return nil
}

// AccumulateStream builds the matrices from a streaming trace reader,
// without materializing the event list.
func AccumulateStream(r *trace.Reader, opts AccumulateOptions) (*Accumulated, error) {
	world, err := mpi.World(r.Meta().Ranks)
	if err != nil {
		return nil, err
	}
	acc, err := newAccumulated(r.Meta(), opts)
	if err != nil {
		return nil, err
	}
	var buf []mpi.Message
	for i := 0; ; i++ {
		e, err := r.Read()
		if err == io.EOF {
			if err := acc.flushCollectives(world, &buf); err != nil {
				return nil, err
			}
			acc.Shards = 1
			return acc, nil
		}
		if err != nil {
			return nil, err
		}
		if err := acc.addEvent(e, world, &buf); err != nil {
			return nil, fmt.Errorf("comm: event %d: %w", i, err)
		}
	}
}

func newAccumulated(meta trace.Meta, opts AccumulateOptions) (*Accumulated, error) {
	p2p, err := NewMatrix(meta.Ranks, opts.PacketSize)
	if err != nil {
		return nil, err
	}
	wire, err := NewMatrix(meta.Ranks, opts.PacketSize)
	if err != nil {
		return nil, err
	}
	return &Accumulated{
		Meta: meta, P2P: p2p, Wire: wire,
		strategy:   opts.Strategy,
		collCounts: make(map[collKey]uint64),
	}, nil
}

// collKey identifies a collective event shape; identical collective rounds
// (same caller, op, root, and payload) repeat many times in iterative
// applications, so Accumulate counts them and expands each distinct shape
// only once, with AddN applying the multiplicity.
type collKey struct {
	rank  int
	op    trace.Op
	root  int
	bytes uint64
}

func (a *Accumulated) addEvent(e trace.Event, world *mpi.Comm, buf *[]mpi.Message) error {
	switch {
	case e.Op == trace.OpSend:
		a.CallerP2PBytes += e.Bytes
	case e.Op.IsCollective():
		a.CallerCollBytes += e.Bytes
		if err := e.Validate(world.Size()); err != nil {
			return err
		}
		a.collCounts[collKey{rank: e.Rank, op: e.Op, root: e.Root, bytes: e.Bytes}]++
		return nil
	}
	msgs, err := mpi.ExpandEvent((*buf)[:0], e, world, mpi.ExpandOptions{Strategy: a.strategy})
	if err != nil {
		return err
	}
	*buf = msgs
	for _, msg := range msgs {
		if err := a.Wire.Add(msg.Src, msg.Dst, msg.Bytes); err != nil {
			return err
		}
		if !msg.FromCollective {
			if err := a.P2P.Add(msg.Src, msg.Dst, msg.Bytes); err != nil {
				return err
			}
		}
	}
	return nil
}

// flushCollectives expands the counted collective shapes into the wire
// matrix.
func (a *Accumulated) flushCollectives(world *mpi.Comm, buf *[]mpi.Message) error {
	for k, count := range a.collCounts {
		e := trace.Event{Rank: k.rank, Op: k.op, Peer: -1, Root: k.root, Bytes: k.bytes}
		msgs, err := mpi.ExpandEvent((*buf)[:0], e, world, mpi.ExpandOptions{Strategy: a.strategy})
		if err != nil {
			return err
		}
		*buf = msgs
		for _, msg := range msgs {
			if err := a.Wire.AddN(msg.Src, msg.Dst, msg.Bytes, count); err != nil {
				return err
			}
		}
	}
	a.collCounts = make(map[collKey]uint64)
	return nil
}
