package topology

import "fmt"

// Torus is a 3D torus: nodes arranged on an X×Y×Z grid with wrap-around
// links in every dimension. Switches are integrated into the nodes (direct
// topology), so no terminal hop is needed: the hop count between two nodes
// is the sum of the per-dimension ring distances. Routing is
// dimension-ordered (X, then Y, then Z), taking the shorter ring direction
// in each dimension; this is shortest-path.
//
// With wrap disabled (NewMesh) the same structure models a 3D mesh, the
// ablation case for how much of the torus results the wrap-around links
// are responsible for.
type Torus struct {
	x, y, z int
	wrap    bool
	links   []Link
	classes []LinkClass
	// dirLink[node*6+d] is the link index leaving node in direction d
	// (0 +x, 1 -x, 2 +y, 3 -y, 4 +z, 5 -z); -1 where the dimension has
	// size one. Precomputed so routing needs no map lookups.
	dirLink []int
	// coordTab[node*3+d] is the node's coordinate in dimension d,
	// precomputed so the per-pair hop/route loops skip the div/mod
	// decomposition.
	coordTab []int32
}

// NewTorus constructs an X×Y×Z torus. All dimensions must be positive.
func NewTorus(x, y, z int) (*Torus, error) {
	return newGrid(x, y, z, true)
}

// NewMesh constructs an X×Y×Z mesh: the torus structure without the
// wrap-around links.
func NewMesh(x, y, z int) (*Torus, error) {
	return newGrid(x, y, z, false)
}

func newGrid(x, y, z int, wrap bool) (*Torus, error) {
	if x <= 0 || y <= 0 || z <= 0 {
		return nil, fmt.Errorf("topology: invalid torus dimensions (%d,%d,%d)", x, y, z)
	}
	t := &Torus{x: x, y: y, z: z, wrap: wrap}
	n := x * y * z
	t.dirLink = make([]int, n*6)
	for i := range t.dirLink {
		t.dirLink[i] = -1
	}
	t.coordTab = make([]int32, n*3)
	for v := 0; v < n; v++ {
		t.coordTab[v*3] = int32(v % x)
		t.coordTab[v*3+1] = int32((v / x) % y)
		t.coordTab[v*3+2] = int32(v / (x * y))
	}
	// One +direction link per node per dimension. A dimension of size 2
	// has a single link per node pair (the "wrap" coincides with the
	// direct link); size 1 has none.
	for v := 0; v < n; v++ {
		cx, cy, cz := t.coords(v)
		if x > 1 && (cx+1 < x || (wrap && x > 2)) {
			t.addLink(v, t.id((cx+1)%x, cy, cz), 0, t.wrapSize(x))
		}
		if y > 1 && (cy+1 < y || (wrap && y > 2)) {
			t.addLink(v, t.id(cx, (cy+1)%y, cz), 2, t.wrapSize(y))
		}
		if z > 1 && (cz+1 < z || (wrap && z > 2)) {
			t.addLink(v, t.id(cx, cy, (cz+1)%z), 4, t.wrapSize(z))
		}
	}
	return t, nil
}

// wrapSize returns the ring size addLink should treat a dimension as: in
// mesh mode wrap semantics never apply, so any value above 2 suffices.
func (t *Torus) wrapSize(size int) int {
	if !t.wrap && size == 2 {
		// A 2-node mesh dimension still has one link serving both
		// directions of both nodes.
		return 2
	}
	if !t.wrap {
		return size + 1 // suppress the size==2 double-direction rule
	}
	return size
}

// addLink records the link a→b in the positive direction of the dimension
// whose positive direction index is dirPlus, and fills the direction
// tables for both endpoints (in a size-2 dimension the single link serves
// both directions of both nodes).
func (t *Torus) addLink(a, b, dirPlus, size int) {
	li := len(t.links)
	t.links = append(t.links, Link{A: a, B: b})
	t.classes = append(t.classes, ClassLocal)
	t.dirLink[a*6+dirPlus] = li
	t.dirLink[b*6+dirPlus+1] = li
	if size == 2 {
		t.dirLink[a*6+dirPlus+1] = li
		t.dirLink[b*6+dirPlus] = li
	}
}

// Dims returns the torus dimensions.
func (t *Torus) Dims() (x, y, z int) { return t.x, t.y, t.z }

// Name implements Topology.
func (t *Torus) Name() string { return fmt.Sprintf("%s(%d,%d,%d)", t.Kind(), t.x, t.y, t.z) }

// Kind implements Topology.
func (t *Torus) Kind() string {
	if !t.wrap {
		return "mesh"
	}
	return "torus"
}

// Nodes implements Topology.
func (t *Torus) Nodes() int { return t.x * t.y * t.z }

// NumVertices implements Topology. Switches are integrated, so the vertex
// space equals the node space.
func (t *Torus) NumVertices() int { return t.Nodes() }

// Links implements Topology.
func (t *Torus) Links() []Link { return t.links }

// LinkClasses implements Topology.
func (t *Torus) LinkClasses() []LinkClass { return t.classes }

func (t *Torus) id(cx, cy, cz int) int { return (cz*t.y+cy)*t.x + cx }

func (t *Torus) coords(n int) (cx, cy, cz int) {
	return int(t.coordTab[n*3]), int(t.coordTab[n*3+1]), int(t.coordTab[n*3+2])
}

// ringDist returns the shortest ring distance between coordinates a and b
// in a dimension of the given size.
func ringDist(a, b, size int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if wrap := size - d; wrap < d {
		return wrap
	}
	return d
}

// HopCount implements Topology.
func (t *Torus) HopCount(src, dst int) int {
	sx, sy, sz := t.coords(src)
	dx, dy, dz := t.coords(dst)
	if !t.wrap {
		return absDiff(sx, dx) + absDiff(sy, dy) + absDiff(sz, dz)
	}
	return ringDist(sx, dx, t.x) + ringDist(sy, dy, t.y) + ringDist(sz, dz, t.z)
}

func absDiff(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}

// Route implements Topology. Dimension-ordered: within one dimension the
// shorter ring way never changes as the walk advances, so the direction
// (positive on ties, direct on a mesh) is decided once per dimension and
// the walk is plain stride arithmetic on the node id.
func (t *Torus) Route(src, dst int, buf []int) ([]int, error) {
	if err := checkEndpoints(t, src, dst); err != nil {
		return nil, err
	}
	buf = buf[:0]
	var sc, dc [3]int
	sc[0], sc[1], sc[2] = t.coords(src)
	dc[0], dc[1], dc[2] = t.coords(dst)
	sizes := [3]int{t.x, t.y, t.z}
	strides := [3]int{1, t.x, t.x * t.y}
	cur := src
	for dim := 0; dim < 3; dim++ {
		from, to, size := sc[dim], dc[dim], sizes[dim]
		if from == to {
			continue
		}
		step, dir := 1, dim*2
		n := to - from
		if t.wrap {
			fwd := (n + size) % size
			if fwd <= size-fwd {
				n = fwd
			} else {
				n = size - fwd
				step, dir = -1, dim*2+1
			}
		} else if n < 0 {
			n, step, dir = -n, -1, dim*2+1
		}
		stride := strides[dim]
		for i := 0; i < n; i++ {
			li := t.dirLink[cur*6+dir]
			if li < 0 {
				return nil, fmt.Errorf("topology: torus missing link at node %d dir %d", cur, dir)
			}
			buf = append(buf, li)
			next := from + step
			if next == size {
				next = 0
			} else if next < 0 {
				next = size - 1
			}
			cur += (next - from) * stride
			from = next
		}
	}
	return buf, nil
}

// FlowScratch holds the reusable buffers of AccumulateFlows so a caller
// sweeping many sources allocates them once.
type FlowScratch struct {
	order  []int32
	bucket []int32
}

// AccumulateFlows adds, onto linkBytes, the per-link byte loads of the
// dimension-ordered routes from src to every destination node, where
// dstBytes[v] is the volume bound for node v. It is exactly equivalent to
// routing each (src, v) pair and adding dstBytes[v] along the route, but
// runs in O(nodes) instead of O(nodes · hops): the routes from one source
// form a tree (stepping one hop back along the arrival dimension never
// flips the shorter-ring-way choice, so every route is a prefix of its
// children's), and subtree volumes are accumulated leaf-to-root.
//
// dstBytes is used as the accumulation workspace and is left holding
// partial subtree sums; callers must re-zero it before reuse. dstBytes and
// linkBytes must be sized Nodes() and len(Links()) respectively.
func (t *Torus) AccumulateFlows(src int, dstBytes, linkBytes []uint64, sc *FlowScratch) error {
	n := t.Nodes()
	if len(dstBytes) != n || len(linkBytes) != len(t.links) {
		return fmt.Errorf("topology: AccumulateFlows buffer sizes %d/%d, want %d/%d",
			len(dstBytes), len(linkBytes), n, len(t.links))
	}
	if src < 0 || src >= n {
		return fmt.Errorf("topology: source %d out of range [0,%d)", src, n)
	}
	// Counting-sort nodes by hop count so children (hops h+1) are drained
	// before their parents (hops h).
	maxH := t.x + t.y + t.z
	if cap(sc.bucket) < maxH+1 {
		sc.bucket = make([]int32, maxH+1)
	}
	bucket := sc.bucket[:maxH+1]
	for i := range bucket {
		bucket[i] = 0
	}
	if cap(sc.order) < n {
		sc.order = make([]int32, n)
	}
	order := sc.order[:n]
	for v := 0; v < n; v++ {
		bucket[t.HopCount(src, v)]++
	}
	// Offsets for descending hop count.
	pos := int32(0)
	for h := maxH; h >= 0; h-- {
		c := bucket[h]
		bucket[h] = pos
		pos += c
	}
	for v := 0; v < n; v++ {
		h := t.HopCount(src, v)
		order[bucket[h]] = int32(v)
		bucket[h]++
	}
	sx, sy, sz := t.coords(src)
	for _, v32 := range order {
		v := int(v32)
		if v == src {
			break // hops 0 sorts last; nothing beyond it
		}
		b := dstBytes[v]
		if b == 0 {
			continue
		}
		// The arrival hop is in the last dimension (X, then Y, then Z
		// walk order) where v differs from src; step one back toward the
		// source coordinate along the chosen ring way.
		vx, vy, vz := t.coords(v)
		var from, to, size, dim, stride int
		switch {
		case vz != sz:
			from, to, size, dim, stride = vz, sz, t.z, 2, t.x*t.y
		case vy != sy:
			from, to, size, dim, stride = vy, sy, t.y, 1, t.x
		default:
			from, to, size, dim, stride = vx, sx, t.x, 0, 1
		}
		step, dir := 1, dim*2 // direction of the prev -> v hop
		if t.wrap {
			fwd := (from - to + size) % size // steps walked in +direction
			if fwd > size-fwd {
				step, dir = -1, dim*2+1
			}
		} else if from < to {
			step, dir = -1, dim*2+1
		}
		prevC := from - step
		if prevC < 0 {
			prevC = size - 1
		} else if prevC == size {
			prevC = 0
		}
		prev := v + (prevC-from)*stride
		li := t.dirLink[prev*6+dir]
		if li < 0 {
			return fmt.Errorf("topology: torus missing link at node %d dir %d", prev, dir)
		}
		linkBytes[li] += b
		dstBytes[prev] += b
	}
	return nil
}

var _ Topology = (*Torus)(nil)
