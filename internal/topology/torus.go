package topology

import "fmt"

// Torus is a 3D torus: nodes arranged on an X×Y×Z grid with wrap-around
// links in every dimension. Switches are integrated into the nodes (direct
// topology), so no terminal hop is needed: the hop count between two nodes
// is the sum of the per-dimension ring distances. Routing is
// dimension-ordered (X, then Y, then Z), taking the shorter ring direction
// in each dimension; this is shortest-path.
//
// With wrap disabled (NewMesh) the same structure models a 3D mesh, the
// ablation case for how much of the torus results the wrap-around links
// are responsible for.
type Torus struct {
	x, y, z int
	wrap    bool
	links   []Link
	classes []LinkClass
	// dirLink[node*6+d] is the link index leaving node in direction d
	// (0 +x, 1 -x, 2 +y, 3 -y, 4 +z, 5 -z); -1 where the dimension has
	// size one. Precomputed so routing needs no map lookups.
	dirLink []int
}

// NewTorus constructs an X×Y×Z torus. All dimensions must be positive.
func NewTorus(x, y, z int) (*Torus, error) {
	return newGrid(x, y, z, true)
}

// NewMesh constructs an X×Y×Z mesh: the torus structure without the
// wrap-around links.
func NewMesh(x, y, z int) (*Torus, error) {
	return newGrid(x, y, z, false)
}

func newGrid(x, y, z int, wrap bool) (*Torus, error) {
	if x <= 0 || y <= 0 || z <= 0 {
		return nil, fmt.Errorf("topology: invalid torus dimensions (%d,%d,%d)", x, y, z)
	}
	t := &Torus{x: x, y: y, z: z, wrap: wrap}
	n := x * y * z
	t.dirLink = make([]int, n*6)
	for i := range t.dirLink {
		t.dirLink[i] = -1
	}
	// One +direction link per node per dimension. A dimension of size 2
	// has a single link per node pair (the "wrap" coincides with the
	// direct link); size 1 has none.
	for v := 0; v < n; v++ {
		cx, cy, cz := t.coords(v)
		if x > 1 && (cx+1 < x || (wrap && x > 2)) {
			t.addLink(v, t.id((cx+1)%x, cy, cz), 0, t.wrapSize(x))
		}
		if y > 1 && (cy+1 < y || (wrap && y > 2)) {
			t.addLink(v, t.id(cx, (cy+1)%y, cz), 2, t.wrapSize(y))
		}
		if z > 1 && (cz+1 < z || (wrap && z > 2)) {
			t.addLink(v, t.id(cx, cy, (cz+1)%z), 4, t.wrapSize(z))
		}
	}
	return t, nil
}

// wrapSize returns the ring size addLink should treat a dimension as: in
// mesh mode wrap semantics never apply, so any value above 2 suffices.
func (t *Torus) wrapSize(size int) int {
	if !t.wrap && size == 2 {
		// A 2-node mesh dimension still has one link serving both
		// directions of both nodes.
		return 2
	}
	if !t.wrap {
		return size + 1 // suppress the size==2 double-direction rule
	}
	return size
}

// addLink records the link a→b in the positive direction of the dimension
// whose positive direction index is dirPlus, and fills the direction
// tables for both endpoints (in a size-2 dimension the single link serves
// both directions of both nodes).
func (t *Torus) addLink(a, b, dirPlus, size int) {
	li := len(t.links)
	t.links = append(t.links, Link{A: a, B: b})
	t.classes = append(t.classes, ClassLocal)
	t.dirLink[a*6+dirPlus] = li
	t.dirLink[b*6+dirPlus+1] = li
	if size == 2 {
		t.dirLink[a*6+dirPlus+1] = li
		t.dirLink[b*6+dirPlus] = li
	}
}

// Dims returns the torus dimensions.
func (t *Torus) Dims() (x, y, z int) { return t.x, t.y, t.z }

// Name implements Topology.
func (t *Torus) Name() string { return fmt.Sprintf("%s(%d,%d,%d)", t.Kind(), t.x, t.y, t.z) }

// Kind implements Topology.
func (t *Torus) Kind() string {
	if !t.wrap {
		return "mesh"
	}
	return "torus"
}

// Nodes implements Topology.
func (t *Torus) Nodes() int { return t.x * t.y * t.z }

// NumVertices implements Topology. Switches are integrated, so the vertex
// space equals the node space.
func (t *Torus) NumVertices() int { return t.Nodes() }

// Links implements Topology.
func (t *Torus) Links() []Link { return t.links }

// LinkClasses implements Topology.
func (t *Torus) LinkClasses() []LinkClass { return t.classes }

func (t *Torus) id(cx, cy, cz int) int { return (cz*t.y+cy)*t.x + cx }

func (t *Torus) coords(n int) (cx, cy, cz int) {
	cx = n % t.x
	cy = (n / t.x) % t.y
	cz = n / (t.x * t.y)
	return
}

// ringDist returns the shortest ring distance between coordinates a and b
// in a dimension of the given size.
func ringDist(a, b, size int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if wrap := size - d; wrap < d {
		return wrap
	}
	return d
}

// HopCount implements Topology.
func (t *Torus) HopCount(src, dst int) int {
	sx, sy, sz := t.coords(src)
	dx, dy, dz := t.coords(dst)
	if !t.wrap {
		return absDiff(sx, dx) + absDiff(sy, dy) + absDiff(sz, dz)
	}
	return ringDist(sx, dx, t.x) + ringDist(sy, dy, t.y) + ringDist(sz, dz, t.z)
}

func absDiff(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}

// ringStep returns the next coordinate moving from a toward b along the
// shorter ring direction (positive direction on ties).
func ringStep(a, b, size int) int {
	if a == b {
		return a
	}
	fwd := (b - a + size) % size // steps in +direction
	if fwd <= size-fwd {
		return (a + 1) % size
	}
	return (a - 1 + size) % size
}

// Route implements Topology.
func (t *Torus) Route(src, dst int, buf []int) ([]int, error) {
	if err := checkEndpoints(t, src, dst); err != nil {
		return nil, err
	}
	buf = buf[:0]
	cx, cy, cz := t.coords(src)
	dx, dy, dz := t.coords(dst)
	cur := src
	walk := func(from, to, size, dirPlus int, advance func(int)) error {
		for from != to {
			var next int
			if t.wrap {
				next = ringStep(from, to, size)
			} else if to > from {
				next = from + 1
			} else {
				next = from - 1
			}
			dir := dirPlus
			if next != (from+1)%size {
				dir = dirPlus + 1
			}
			li := t.dirLink[cur*6+dir]
			if li < 0 {
				return fmt.Errorf("topology: torus missing link at node %d dir %d", cur, dir)
			}
			buf = append(buf, li)
			from = next
			advance(next)
			cur = t.id(cx, cy, cz)
		}
		return nil
	}
	if err := walk(cx, dx, t.x, 0, func(v int) { cx = v }); err != nil {
		return nil, err
	}
	if err := walk(cy, dy, t.y, 2, func(v int) { cy = v }); err != nil {
		return nil, err
	}
	if err := walk(cz, dz, t.z, 4, func(v int) { cz = v }); err != nil {
		return nil, err
	}
	return buf, nil
}

var _ Topology = (*Torus)(nil)
