package topology

import "testing"

// TestTorusCost checks the integrated-router accounting: every node is a
// router, a full 3D torus has 3N neighbor links, and ports count both
// link ends plus one injection port per node.
func TestTorusCost(t *testing.T) {
	tor, err := NewTorus(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := tor.Cost()
	n := tor.Nodes()
	if c.Switches != n {
		t.Errorf("torus switches = %d, want %d (one integrated router per node)", c.Switches, n)
	}
	if c.Links != 3*n {
		t.Errorf("torus links = %d, want %d", c.Links, 3*n)
	}
	if want := 2*c.Links + n; c.Ports != want {
		t.Errorf("torus ports = %d, want %d", c.Ports, want)
	}
}

// TestIndirectCostMatchesGraph pins the fat-tree and dragonfly Cost
// methods to the explicit graph: switch count is the vertex space beyond
// the nodes, links is the link list, and every counted port belongs to a
// switch endpoint.
func TestIndirectCostMatchesGraph(t *testing.T) {
	ft, err := NewFatTree(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	df, err := NewDragonfly(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, topo := range []Topology{ft, df} {
		c := CostOf(topo)
		if want := topo.NumVertices() - topo.Nodes(); c.Switches != want {
			t.Errorf("%s switches = %d, want %d", topo.Name(), c.Switches, want)
		}
		if c.Links != len(topo.Links()) {
			t.Errorf("%s links = %d, want %d", topo.Name(), c.Links, len(topo.Links()))
		}
		ports := 0
		for _, l := range topo.Links() {
			if l.A >= topo.Nodes() {
				ports++
			}
			if l.B >= topo.Nodes() {
				ports++
			}
		}
		if c.Ports != ports {
			t.Errorf("%s ports = %d, want %d", topo.Name(), c.Ports, ports)
		}
		if c.Units() <= 0 {
			t.Errorf("%s cost units = %g, want > 0", topo.Name(), c.Units())
		}
	}
}

// TestCostOfWrapperFallsBack exercises the generic path for a Topology
// without its own Cost method (Valiant routing wraps a dragonfly).
func TestCostOfWrapperFallsBack(t *testing.T) {
	df, err := NewDragonfly(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewValiant(df, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := CostOf(v), df.Cost(); got != want {
		t.Errorf("valiant CostOf = %+v, want the wrapped dragonfly's %+v", got, want)
	}
}

// TestMeshConfigBuild covers the design sweep's mesh kind end to end
// through Config.Build.
func TestMeshConfigBuild(t *testing.T) {
	cfg := Config{Kind: "mesh", Size: 27, Nodes: 27, X: 3, Y: 3, Z: 3}
	topo, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	if topo.Kind() != "mesh" {
		t.Fatalf("built kind = %q, want mesh", topo.Kind())
	}
	if topo.Nodes() != 27 {
		t.Fatalf("mesh nodes = %d, want 27", topo.Nodes())
	}
	// A 3x3x3 mesh loses the wrap links: 3 dims x 2 faces x 9 = 54 fewer
	// endpoints than the torus' 81 links, i.e. 2*9*3 = 54 links.
	if got := len(topo.Links()); got != 54 {
		t.Fatalf("mesh links = %d, want 54", got)
	}
	if cfg.String() != "(3,3,3)" {
		t.Fatalf("mesh config string = %q", cfg.String())
	}
}
