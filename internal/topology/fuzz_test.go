package topology

import "testing"

// FuzzConfigBuild drives Config.Build with arbitrary parameters across
// every kind. The contract under test: invalid parameters surface as
// errors, never panics, and any successfully built topology satisfies the
// basic interface invariants (consistent node/vertex counts, classes
// parallel to links, working routes). Parameters are folded into a modest
// range so a fuzzing run explores shapes rather than allocation limits;
// the constructors' own size caps (maxGFOrder, maxJellyfishSwitches,
// maxHyperXSwitches) are exercised directly by the error-path unit tests.
func FuzzConfigBuild(f *testing.F) {
	// One well-formed and one degenerate seed per kind, plus cap probes.
	f.Add(0, 4, 3, 2, 1, uint64(0))     // torus(4,3,2)
	f.Add(1, 3, 3, 2, 1, uint64(0))     // mesh(3,3,2)
	f.Add(2, 8, 2, 0, 1, uint64(0))     // fattree(8,2)
	f.Add(3, 4, 2, 2, 1, uint64(0))     // dragonfly(4,2,2)
	f.Add(4, 5, 0, 2, 1, uint64(0))     // slimfly(5,2)
	f.Add(5, 12, 4, 2, 1, uint64(7))    // jellyfish(12,4,2;7)
	f.Add(6, 3, 4, 2, 2, uint64(0))     // hyperx(3,4,2;2)
	f.Add(4, 15, 0, 1, 1, uint64(0))    // slimfly: not a prime power
	f.Add(5, 5, 3, 1, 1, uint64(1))     // jellyfish: odd port total
	f.Add(6, 0, 2, 2, 1, uint64(0))     // hyperx: zero dimension
	f.Add(-1, 0, 0, 0, 0, uint64(0))    // unknown kind
	f.Add(3, -4, -2, -2, -1, uint64(0)) // negative params
	f.Add(2, 64, 9, 0, 0, uint64(0))    // fattree: stages out of range

	kinds := Kinds()
	clamp := func(v, m int) int {
		if v < 0 {
			return -(-v % m)
		}
		return v % m
	}
	f.Fuzz(func(t *testing.T, kindSel, a, b, c, d int, seed uint64) {
		cfg := Config{Kind: "unknown"}
		if kindSel >= 0 && kindSel < len(kinds) {
			cfg.Kind = kinds[kindSel]
		}
		a, b, c, d = clamp(a, 65), clamp(b, 65), clamp(c, 33), clamp(d, 17)
		switch cfg.Kind {
		case "torus", "mesh":
			cfg.X, cfg.Y, cfg.Z = a, b, c
		case "fattree":
			cfg.Radix, cfg.Stages = a, b
		case "dragonfly":
			cfg.A, cfg.H, cfg.P = clamp(a, 9), clamp(b, 9), c
		case "slimfly":
			cfg.Q, cfg.P = clamp(a, 33), clamp(d, 9)
		case "jellyfish":
			cfg.S, cfg.D, cfg.P, cfg.Seed = a, b, clamp(d, 9), seed
		case "hyperx":
			cfg.X, cfg.Y, cfg.Z, cfg.P = clamp(a, 17), clamp(b, 17), clamp(c, 9), clamp(d, 9)
		}
		topo, err := cfg.Build()
		if err != nil {
			return // rejected with a listing-style error — the success case
		}
		if topo.Nodes() <= 0 || topo.NumVertices() < topo.Nodes() {
			t.Fatalf("%s%s: nodes %d vertices %d", cfg.Kind, cfg, topo.Nodes(), topo.NumVertices())
		}
		if len(topo.Links()) != len(topo.LinkClasses()) {
			t.Fatalf("%s%s: %d links vs %d classes", cfg.Kind, cfg, len(topo.Links()), len(topo.LinkClasses()))
		}
		// Spot-check routing from both ends of the node range.
		n := topo.Nodes()
		for _, pair := range [][2]int{{0, n - 1}, {n - 1, 0}, {0, 0}, {n / 2, n - 1}} {
			path, err := topo.Route(pair[0], pair[1], nil)
			if err != nil {
				t.Fatalf("%s%s: Route(%d,%d): %v", cfg.Kind, cfg, pair[0], pair[1], err)
			}
			if len(path) != topo.HopCount(pair[0], pair[1]) {
				t.Fatalf("%s%s: Route(%d,%d) length %d != HopCount %d",
					cfg.Kind, cfg, pair[0], pair[1], len(path), topo.HopCount(pair[0], pair[1]))
			}
		}
		// Out-of-range endpoints must error, not panic.
		if _, err := topo.Route(-1, 0, nil); err == nil {
			t.Fatalf("%s%s: negative src accepted", cfg.Kind, cfg)
		}
		if _, err := topo.Route(0, n, nil); err == nil {
			t.Fatalf("%s%s: out-of-range dst accepted", cfg.Kind, cfg)
		}
	})
}
