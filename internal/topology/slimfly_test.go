package topology

import (
	"reflect"
	"testing"
)

// The MMS construction must hit diameter 2 on the router graph for every
// ladder field order (that is the whole point of the family). Checking the
// router graph directly keeps this affordable up to q=25 (1250 routers).
func TestSlimFlyRouterDiameterTwo(t *testing.T) {
	for _, q := range slimFlyQLadder {
		s, err := NewSlimFly(q, 1)
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		if d := s.switchDiameter(); d != 2 {
			t.Errorf("q=%d: router-graph diameter %d, want 2", q, d)
		}
	}
}

// Every router has exactly k = (3q-δ)/2 inter-router links plus p
// terminals, and the intra/cross links split local/global.
func TestSlimFlyStructure(t *testing.T) {
	for _, q := range []int{5, 7, 9, 11, 13} {
		p := 2
		s, err := NewSlimFly(q, p)
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		if got, want := s.Nodes(), 2*q*q*p; got != want {
			t.Fatalf("q=%d: %d nodes, want %d", q, got, want)
		}
		g, err := GraphOf(s)
		if err != nil {
			t.Fatal(err)
		}
		k := s.NetworkRadix()
		for sw := 0; sw < 2*q*q; sw++ {
			deg, err := g.Degree(s.Nodes() + sw)
			if err != nil {
				t.Fatal(err)
			}
			if deg != k+p {
				t.Fatalf("q=%d: router %d degree %d, want %d", q, sw, deg, k+p)
			}
		}
		var local, global, terminal int
		for _, c := range s.LinkClasses() {
			switch c {
			case ClassTerminal:
				terminal++
			case ClassLocal:
				local++
			case ClassGlobal:
				global++
			}
		}
		if terminal != s.Nodes() {
			t.Fatalf("q=%d: %d terminal links, want %d", q, terminal, s.Nodes())
		}
		if global != q*q*q {
			t.Fatalf("q=%d: %d cross links, want %d", q, global, q*q*q)
		}
		delta := 1
		if q%4 == 3 {
			delta = -1
		}
		// 2q² routers × (q-δ)/2 intra neighbors, halved for undirectedness.
		if want := q * q * (q - delta) / 2; local != want {
			t.Fatalf("q=%d: %d intra links, want %d", q, local, want)
		}
	}
}

// Same parameters build byte-identical graphs (the gf tables, generator
// sets, and link order are all canonical).
func TestSlimFlyDeterministic(t *testing.T) {
	a, err := NewSlimFly(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSlimFly(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Links(), b.Links()) {
		t.Fatal("links differ between identical constructions")
	}
	if !reflect.DeepEqual(a.LinkClasses(), b.LinkClasses()) {
		t.Fatal("link classes differ between identical constructions")
	}
}

func TestSlimFlyErrors(t *testing.T) {
	cases := []struct{ q, p int }{
		{4, 1},   // even q
		{8, 1},   // even prime power
		{15, 1},  // not a prime power
		{5, 0},   // no terminals
		{-3, 2},  // negative
		{601, 1}, // beyond maxGFOrder (prime, so the order check must fire)
	}
	for _, c := range cases {
		if _, err := NewSlimFly(c.q, c.p); err == nil {
			t.Errorf("NewSlimFly(%d,%d): expected error", c.q, c.p)
		}
	}
}
