package topology

import "testing"

func TestMeshBasicProperties(t *testing.T) {
	m, err := NewMesh(4, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind() != "mesh" || m.Name() != "mesh(4,3,2)" {
		t.Fatalf("Kind=%q Name=%q", m.Kind(), m.Name())
	}
	if m.Nodes() != 24 {
		t.Fatalf("Nodes = %d", m.Nodes())
	}
	// Mesh links: x: 3*3*2=18, y: 4*2*2=16, z: 4*3*1=12 -> 46.
	if got := len(m.Links()); got != 46 {
		t.Fatalf("links = %d, want 46", got)
	}
}

func TestMeshValidation(t *testing.T) {
	if _, err := NewMesh(0, 1, 1); err == nil {
		t.Fatal("invalid dims accepted")
	}
}

func TestMeshNoWrapDistances(t *testing.T) {
	m, err := NewMesh(5, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A 5-node chain: end-to-end is 4 hops (the torus wrap would make
	// it 1) and there are only 4 links (torus: 5).
	if got := m.HopCount(0, 4); got != 4 {
		t.Fatalf("HopCount(0,4) = %d, want 4", got)
	}
	if got := len(m.Links()); got != 4 {
		t.Fatalf("links = %d, want 4", got)
	}
}

func TestMeshRoutingMatchesBFS(t *testing.T) {
	for _, dims := range [][3]int{{2, 2, 2}, {3, 2, 2}, {3, 3, 3}, {4, 4, 4}, {5, 4, 3}, {6, 1, 2}} {
		m, err := NewMesh(dims[0], dims[1], dims[2])
		if err != nil {
			t.Fatal(err)
		}
		verifyRoutingAgainstBFS(t, m, 0)
	}
}

func TestMeshDiameterExceedsTorus(t *testing.T) {
	mesh, err := NewMesh(6, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	torus, err := NewTorus(6, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Corner to corner: mesh 15 hops; the torus wraps each dimension in
	// a single hop (3 total).
	if got := mesh.HopCount(0, mesh.Nodes()-1); got != 15 {
		t.Fatalf("mesh diameter path = %d, want 15", got)
	}
	if got := torus.HopCount(0, torus.Nodes()-1); got != 3 {
		t.Fatalf("torus wrap path = %d, want 3", got)
	}
	// Mesh hop counts dominate torus hop counts pairwise.
	for s := 0; s < mesh.Nodes(); s += 7 {
		for d := 0; d < mesh.Nodes(); d += 5 {
			if mesh.HopCount(s, d) < torus.HopCount(s, d) {
				t.Fatalf("mesh shorter than torus for (%d,%d)", s, d)
			}
		}
	}
}

func TestMeshConnected(t *testing.T) {
	m, err := NewMesh(3, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := GraphOf(m)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := g.Connected()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("mesh not connected")
	}
}
