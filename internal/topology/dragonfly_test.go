package topology

import "testing"

func TestNewDragonflyValidation(t *testing.T) {
	for _, c := range [][3]int{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-2, 2, 2}} {
		if _, err := NewDragonfly(c[0], c[1], c[2]); err == nil {
			t.Errorf("NewDragonfly%v should fail", c)
		}
	}
}

func TestDragonflyNodeCountsPerPaper(t *testing.T) {
	// Table 2: (4,2,2)->72, (6,3,3)->342, (8,4,4)->1056, (10,5,5)->2550.
	cases := []struct{ a, h, p, nodes int }{
		{4, 2, 2, 72}, {6, 3, 3, 342}, {8, 4, 4, 1056}, {10, 5, 5, 2550},
	}
	for _, c := range cases {
		d, err := NewDragonfly(c.a, c.h, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if d.Nodes() != c.nodes {
			t.Errorf("(%d,%d,%d): Nodes = %d, want %d", c.a, c.h, c.p, d.Nodes(), c.nodes)
		}
		if d.Groups() != c.a*c.h+1 {
			t.Errorf("(%d,%d,%d): Groups = %d, want %d", c.a, c.h, c.p, d.Groups(), c.a*c.h+1)
		}
	}
}

func TestDragonflyAccessors(t *testing.T) {
	d, _ := NewDragonfly(4, 2, 2)
	a, h, p := d.Params()
	if a != 4 || h != 2 || p != 2 {
		t.Fatalf("Params = %d,%d,%d", a, h, p)
	}
	if d.Kind() != "dragonfly" || d.Name() != "dragonfly(4,2,2)" {
		t.Fatalf("Kind=%q Name=%q", d.Kind(), d.Name())
	}
	if d.NumVertices() != 72+9*4 {
		t.Fatalf("NumVertices = %d", d.NumVertices())
	}
}

func TestDragonflyLinkInventory(t *testing.T) {
	// (4,2,2): 9 groups. Terminal: 72. Local: 9 * C(4,2) = 54.
	// Global: C(9,2) = 36 (one per group pair).
	d, _ := NewDragonfly(4, 2, 2)
	var term, local, global int
	for _, c := range d.LinkClasses() {
		switch c {
		case ClassTerminal:
			term++
		case ClassLocal:
			local++
		case ClassGlobal:
			global++
		}
	}
	if term != 72 {
		t.Errorf("terminal = %d, want 72", term)
	}
	if local != 54 {
		t.Errorf("local = %d, want 54", local)
	}
	if global != 36 {
		t.Errorf("global = %d, want 36", global)
	}
}

func TestDragonflyPalmTreeOneGlobalLinkPerGroupPair(t *testing.T) {
	for _, cfg := range [][3]int{{4, 2, 2}, {6, 3, 3}, {2, 1, 1}} {
		d, err := NewDragonfly(cfg[0], cfg[1], cfg[2])
		if err != nil {
			t.Fatal(err)
		}
		a := cfg[0]
		g := d.Groups()
		groupOfRouter := func(v int) int { return (v - d.Nodes()) / a }
		pairs := map[[2]int]int{}
		for i, l := range d.Links() {
			if d.LinkClasses()[i] != ClassGlobal {
				continue
			}
			g1, g2 := groupOfRouter(l.A), groupOfRouter(l.B)
			if g1 == g2 {
				t.Fatalf("global link within group %d", g1)
			}
			pairs[pairKey(g1, g2)]++
		}
		want := g * (g - 1) / 2
		if len(pairs) != want {
			t.Fatalf("(%d,%d,%d): %d group pairs linked, want %d", cfg[0], cfg[1], cfg[2], len(pairs), want)
		}
		for pair, c := range pairs {
			if c != 1 {
				t.Fatalf("group pair %v has %d links, want 1", pair, c)
			}
		}
	}
}

func TestDragonflyGlobalPortsPerRouter(t *testing.T) {
	// Every router terminates exactly h global links.
	d, _ := NewDragonfly(4, 2, 2)
	count := map[int]int{}
	for i, l := range d.Links() {
		if d.LinkClasses()[i] != ClassGlobal {
			continue
		}
		count[l.A]++
		count[l.B]++
	}
	for v := d.Nodes(); v < d.NumVertices(); v++ {
		if count[v] != 2 {
			t.Fatalf("router %d has %d global links, want 2", v, count[v])
		}
	}
}

func TestDragonflyHopCountBounds(t *testing.T) {
	d, _ := NewDragonfly(4, 2, 2)
	for s := 0; s < d.Nodes(); s++ {
		for dst := 0; dst < d.Nodes(); dst++ {
			h := d.HopCount(s, dst)
			if s == dst {
				if h != 0 {
					t.Fatalf("self hop = %d", h)
				}
				continue
			}
			if h < 2 || h > 5 {
				t.Fatalf("HopCount(%d,%d) = %d outside [2,5]", s, dst, h)
			}
		}
	}
}

func TestDragonflyHopCountKnownValues(t *testing.T) {
	d, _ := NewDragonfly(4, 2, 2) // p=2: nodes 0,1 on router 0 of group 0
	if got := d.HopCount(0, 1); got != 2 {
		t.Fatalf("same router = %d, want 2", got)
	}
	if got := d.HopCount(0, 2); got != 3 { // router 1, same group
		t.Fatalf("same group = %d, want 3", got)
	}
	// Cross-group is 3..5 depending on gateway positions.
	if got := d.HopCount(0, 8); got < 3 || got > 5 {
		t.Fatalf("cross group = %d", got)
	}
}

func TestDragonflyConnected(t *testing.T) {
	for _, cfg := range [][3]int{{2, 1, 1}, {4, 2, 2}, {6, 3, 3}} {
		d, err := NewDragonfly(cfg[0], cfg[1], cfg[2])
		if err != nil {
			t.Fatal(err)
		}
		g, err := GraphOf(d)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := g.Connected()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("dragonfly%v not connected", cfg)
		}
	}
}

func TestDragonflyRoutingMatchesBFS(t *testing.T) {
	for _, cfg := range [][3]int{{2, 1, 1}, {4, 2, 2}, {3, 2, 2}, {5, 2, 3}} {
		d, err := NewDragonfly(cfg[0], cfg[1], cfg[2])
		if err != nil {
			t.Fatal(err)
		}
		verifyRoutingAgainstBFS(t, d, 0)
	}
}

func TestDragonflyRoutingMatchesBFSPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, cfg := range [][3]int{{6, 3, 3}, {8, 4, 4}} {
		d, err := NewDragonfly(cfg[0], cfg[1], cfg[2])
		if err != nil {
			t.Fatal(err)
		}
		verifyRoutingAgainstBFS(t, d, 8)
	}
}

func TestDragonflyRouteErrors(t *testing.T) {
	d, _ := NewDragonfly(4, 2, 2)
	if _, err := d.Route(0, 72, nil); err == nil {
		t.Fatal("out-of-range dst accepted")
	}
	if _, err := d.Route(-1, 3, nil); err == nil {
		t.Fatal("negative src accepted")
	}
}

func TestDragonflyCrossGroupUsesGlobalLink(t *testing.T) {
	// Minimal routing between different groups crosses exactly one
	// global link; intra-group routes cross none. This backs the paper's
	// "95% of all messages use a global inter-group link" analysis.
	d, _ := NewDragonfly(4, 2, 2)
	classes := d.LinkClasses()
	var buf []int
	var err error
	for src := 0; src < d.Nodes(); src += 5 {
		for dst := 0; dst < d.Nodes(); dst += 3 {
			if src == dst {
				continue
			}
			buf, err = d.Route(src, dst, buf)
			if err != nil {
				t.Fatal(err)
			}
			globals := 0
			for _, li := range buf {
				if classes[li] == ClassGlobal {
					globals++
				}
			}
			sameGroup := src/8 == dst/8
			if sameGroup && globals != 0 {
				t.Fatalf("intra-group route %d->%d uses %d global links", src, dst, globals)
			}
			// Cross-group routes cross one global link, or two when
			// the aligned double-global shortcut is shorter.
			if !sameGroup && (globals < 1 || globals > 2) {
				t.Fatalf("cross-group route %d->%d uses %d global links, want 1..2", src, dst, globals)
			}
			if !sameGroup && globals == 2 && len(buf) != 4 {
				t.Fatalf("double-global route %d->%d has %d hops, want 4", src, dst, len(buf))
			}
		}
	}
}
