package topology

import (
	"fmt"
	"sort"
)

// Config describes one topology instance selected for a given rank count,
// mirroring a row of the paper's Table 2. The "mesh" kind (a torus without
// wraparound) is an extension used by the design optimizer's candidate
// sweep, and the "slimfly", "jellyfish", and "hyperx" kinds are the
// extreme-scale families beyond the paper's study; the paper's tables only
// use the original three.
type Config struct {
	Kind  string // "torus", "mesh", "fattree", "dragonfly", "slimfly", "jellyfish", "hyperx"
	Size  int    // requested rank count
	Nodes int    // nodes provided by the configuration

	// Torus/mesh parameters; HyperX reuses them as its per-dimension
	// switch counts.
	X, Y, Z int
	// Fat-tree parameters.
	Radix, Stages int
	// Dragonfly parameters; P doubles as the nodes-per-switch count of
	// the slimfly/jellyfish/hyperx kinds.
	A, H, P int
	// Slim Fly field order (prime power).
	Q int `json:",omitempty"`
	// Jellyfish switch count and inter-switch degree.
	S, D int `json:",omitempty"`
	// Jellyfish wiring seed. Part of the structural identity: it appears
	// in String() and therefore in every cache key derived from it.
	Seed uint64 `json:",omitempty"`
}

// Build instantiates the configured topology.
func (c Config) Build() (Topology, error) {
	switch c.Kind {
	case "torus":
		return NewTorus(c.X, c.Y, c.Z)
	case "mesh":
		return NewMesh(c.X, c.Y, c.Z)
	case "fattree":
		return NewFatTree(c.Radix, c.Stages)
	case "dragonfly":
		return NewDragonfly(c.A, c.H, c.P)
	case "slimfly":
		return NewSlimFly(c.Q, c.P)
	case "jellyfish":
		return NewJellyfish(c.S, c.D, c.P, c.Seed)
	case "hyperx":
		return NewHyperX(c.X, c.Y, c.Z, c.P)
	default:
		return nil, fmt.Errorf("topology: unknown kind %q", c.Kind)
	}
}

// String renders the configuration like the paper's Table 2 cells. Every
// structural parameter must appear here: the workcache keys built
// topologies by Kind + String(), so two configs that render alike must
// build identical graphs.
func (c Config) String() string {
	switch c.Kind {
	case "torus", "mesh":
		return fmt.Sprintf("(%d,%d,%d)", c.X, c.Y, c.Z)
	case "fattree":
		return fmt.Sprintf("(%d,%d)", c.Radix, c.Stages)
	case "dragonfly":
		return fmt.Sprintf("(%d,%d,%d)", c.A, c.H, c.P)
	case "slimfly":
		return fmt.Sprintf("(%d,%d)", c.Q, c.P)
	case "jellyfish":
		return fmt.Sprintf("(%d,%d,%d;%d)", c.S, c.D, c.P, c.Seed)
	case "hyperx":
		return fmt.Sprintf("(%d,%d,%d;%d)", c.X, c.Y, c.Z, c.P)
	}
	return "?"
}

// Kinds lists every buildable topology kind, paper families first.
func Kinds() []string {
	return []string{"torus", "mesh", "fattree", "dragonfly", "slimfly", "jellyfish", "hyperx"}
}

// FatTreeRadix is the switch radix the study uses for all fat-tree
// configurations ("the deliberately high switch radix of 48 allows to set
// up large systems with only a few stages").
const FatTreeRadix = 48

// paperTorusDims reproduces the torus column of Table 2 exactly.
var paperTorusDims = map[int][3]int{
	8:    {2, 2, 2},
	9:    {3, 2, 2},
	10:   {3, 2, 2},
	18:   {3, 3, 2},
	27:   {3, 3, 3},
	64:   {4, 4, 4},
	100:  {5, 5, 4},
	125:  {5, 5, 5},
	144:  {6, 6, 4},
	168:  {7, 6, 4},
	216:  {6, 6, 6},
	256:  {8, 8, 4},
	512:  {8, 8, 8},
	1000: {10, 10, 10},
	1024: {16, 8, 8},
	1152: {12, 12, 8},
	1728: {12, 12, 12},
}

// TorusConfig returns the 3D-torus configuration for the given rank count:
// the paper's Table 2 entry when the size appears there, otherwise the
// smallest near-cubic grid covering the ranks (x ≥ y ≥ z, x·y·z ≥ ranks,
// aspect ratio x ≤ 2z, minimal volume).
func TorusConfig(ranks int) (Config, error) {
	if ranks <= 0 {
		return Config{}, fmt.Errorf("topology: non-positive rank count %d", ranks)
	}
	if dims, ok := paperTorusDims[ranks]; ok {
		return Config{Kind: "torus", Size: ranks, Nodes: dims[0] * dims[1] * dims[2],
			X: dims[0], Y: dims[1], Z: dims[2]}, nil
	}
	x, y, z, err := nearCubicDims(ranks)
	if err != nil {
		return Config{}, err
	}
	return Config{Kind: "torus", Size: ranks, Nodes: x * y * z, X: x, Y: y, Z: z}, nil
}

// nearCubicDims finds x ≥ y ≥ z ≥ 1 with x·y·z ≥ n, x ≤ 2z (when possible),
// minimizing the volume and then the largest dimension.
func nearCubicDims(n int) (x, y, z int, err error) {
	if n == 1 {
		return 1, 1, 1, nil
	}
	bestVol := -1
	for zi := 1; zi*zi*zi <= n*2; zi++ {
		for yi := zi; ; yi++ {
			// Smallest x with x*yi*zi >= n.
			xi := (n + yi*zi - 1) / (yi * zi)
			if xi < yi {
				xi = yi
			}
			if yi > 2*zi && xi > 2*zi {
				break
			}
			if xi > 2*zi {
				continue
			}
			vol := xi * yi * zi
			if bestVol == -1 || vol < bestVol || (vol == bestVol && xi < x) {
				bestVol, x, y, z = vol, xi, yi, zi
			}
			if yi*zi >= n { // larger yi only grows the volume
				break
			}
		}
	}
	if bestVol == -1 {
		return 0, 0, 0, fmt.Errorf("topology: no near-cubic dims for %d", n)
	}
	return x, y, z, nil
}

// FatTreeConfig returns the smallest radix-48 fat tree covering the ranks.
func FatTreeConfig(ranks int) (Config, error) {
	if ranks <= 0 {
		return Config{}, fmt.Errorf("topology: non-positive rank count %d", ranks)
	}
	d := FatTreeRadix / 2
	var stages, nodes int
	switch {
	case ranks <= FatTreeRadix:
		stages, nodes = 1, FatTreeRadix
	case ranks <= d*d:
		stages, nodes = 2, d*d
	case ranks <= d*d*d:
		stages, nodes = 3, d*d*d
	default:
		return Config{}, fmt.Errorf("topology: %d ranks exceed the largest fat-tree configuration (%d)", ranks, d*d*d)
	}
	return Config{Kind: "fattree", Size: ranks, Nodes: nodes, Radix: FatTreeRadix, Stages: stages}, nil
}

// dragonflyLadder lists the balanced (a = 2h = 2p) configurations the study
// uses, smallest first.
var dragonflyLadder = [][3]int{
	{4, 2, 2},  // 72 nodes
	{6, 3, 3},  // 342 nodes
	{8, 4, 4},  // 1056 nodes
	{10, 5, 5}, // 2550 nodes
	{12, 6, 6}, // 5256 nodes (beyond the paper's table; natural extension)
	{14, 7, 7}, // 9702 nodes
	{16, 8, 8}, // 16512 nodes
}

// DragonflyConfig returns the smallest balanced dragonfly covering the
// ranks.
func DragonflyConfig(ranks int) (Config, error) {
	if ranks <= 0 {
		return Config{}, fmt.Errorf("topology: non-positive rank count %d", ranks)
	}
	for _, c := range dragonflyLadder {
		a, h, p := c[0], c[1], c[2]
		nodes := a * p * (a*h + 1)
		if nodes >= ranks {
			return Config{Kind: "dragonfly", Size: ranks, Nodes: nodes, A: a, H: h, P: p}, nil
		}
	}
	return Config{}, fmt.Errorf("topology: %d ranks exceed the largest dragonfly configuration", ranks)
}

// Configs returns the torus, fat-tree, and dragonfly configurations for a
// rank count, i.e. one row of Table 2.
func Configs(ranks int) (torus, fattree, dragonfly Config, err error) {
	if torus, err = TorusConfig(ranks); err != nil {
		return
	}
	if fattree, err = FatTreeConfig(ranks); err != nil {
		return
	}
	dragonfly, err = DragonflyConfig(ranks)
	return
}

// slimFlyQLadder lists the MMS field orders the sizing sweep considers,
// smallest first (odd prime powers; 2q² routers each).
var slimFlyQLadder = []int{5, 7, 11, 13, 17, 19, 23, 25}

// SlimFlyConfig returns the smallest ladder Slim Fly covering the ranks:
// the first field order q whose 2q² routers reach the rank count with at
// most the balanced endpoint load p ≤ ⌈k/2⌉.
func SlimFlyConfig(ranks int) (Config, error) {
	if ranks <= 0 {
		return Config{}, fmt.Errorf("topology: non-positive rank count %d", ranks)
	}
	for _, q := range slimFlyQLadder {
		routers := 2 * q * q
		delta := 1
		if q%4 == 3 {
			delta = -1
		}
		k := (3*q - delta) / 2
		p := (ranks + routers - 1) / routers
		if p > (k+1)/2 {
			continue
		}
		return Config{Kind: "slimfly", Size: ranks, Nodes: routers * p, Q: q, P: p}, nil
	}
	return Config{}, fmt.Errorf("topology: %d ranks exceed the largest slim fly configuration", ranks)
}

// JellyfishConfig returns a near-balanced Jellyfish covering the ranks:
// p ≈ ∛ranks nodes per switch, degree 2p (clamped to the switch count and
// an even port total), wiring seed 1.
func JellyfishConfig(ranks int) (Config, error) {
	if ranks <= 0 {
		return Config{}, fmt.Errorf("topology: non-positive rank count %d", ranks)
	}
	p := 1
	for p*p*p < ranks {
		p++
	}
	s := (ranks + p - 1) / p
	if s < 2 {
		s = 2
	}
	if s > maxJellyfishSwitches {
		return Config{}, fmt.Errorf("topology: %d ranks exceed the largest jellyfish configuration", ranks)
	}
	r := 2 * p
	if r > s-1 {
		r = s - 1
	}
	if s*r%2 != 0 {
		r--
	}
	if r < 1 {
		return Config{}, fmt.Errorf("topology: no valid jellyfish degree for %d ranks", ranks)
	}
	return Config{Kind: "jellyfish", Size: ranks, Nodes: s * p, S: s, D: r, P: p, Seed: 1}, nil
}

// hyperXTerminalLadder lists the per-switch endpoint counts the sizing
// sweep considers, smallest first.
var hyperXTerminalLadder = []int{4, 8, 16, 32}

// HyperXConfig returns a near-square two-dimensional HyperX covering the
// ranks: the first terminal count whose lattice fits the radix-48 switch
// budget shared with the fat-tree study.
func HyperXConfig(ranks int) (Config, error) {
	if ranks <= 0 {
		return Config{}, fmt.Errorf("topology: non-positive rank count %d", ranks)
	}
	for _, t := range hyperXTerminalLadder {
		sw := (ranks + t - 1) / t
		s1 := 1
		for s1*s1 < sw {
			s1++
		}
		s2 := (sw + s1 - 1) / s1
		if s1*s2 > maxHyperXSwitches {
			continue
		}
		if (s1-1)+(s2-1)+t > FatTreeRadix {
			continue
		}
		return Config{Kind: "hyperx", Size: ranks, Nodes: s1 * s2 * t, X: s1, Y: s2, Z: 1, P: t}, nil
	}
	return Config{}, fmt.Errorf("topology: %d ranks exceed the largest hyperx configuration", ranks)
}

// PaperSizes returns the rank counts of Table 2 in ascending order.
func PaperSizes() []int {
	sizes := make([]int, 0, len(paperTorusDims))
	for s := range paperTorusDims {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	return sizes
}
