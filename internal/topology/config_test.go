package topology

import "testing"

// TestConfigsMatchTable2 verifies every row of the paper's Table 2.
func TestConfigsMatchTable2(t *testing.T) {
	rows := []struct {
		size               int
		tx, ty, tz, tNodes int
		stages, ftNodes    int
		a, h, p, dfNodes   int
	}{
		{8, 2, 2, 2, 8, 1, 48, 4, 2, 2, 72},
		{9, 3, 2, 2, 12, 1, 48, 4, 2, 2, 72},
		{10, 3, 2, 2, 12, 1, 48, 4, 2, 2, 72},
		{18, 3, 3, 2, 18, 1, 48, 4, 2, 2, 72},
		{27, 3, 3, 3, 27, 1, 48, 4, 2, 2, 72},
		{64, 4, 4, 4, 64, 2, 576, 4, 2, 2, 72},
		{100, 5, 5, 4, 100, 2, 576, 6, 3, 3, 342},
		{125, 5, 5, 5, 125, 2, 576, 6, 3, 3, 342},
		{144, 6, 6, 4, 144, 2, 576, 6, 3, 3, 342},
		{168, 7, 6, 4, 168, 2, 576, 6, 3, 3, 342},
		{216, 6, 6, 6, 216, 2, 576, 6, 3, 3, 342},
		{256, 8, 8, 4, 256, 2, 576, 6, 3, 3, 342},
		{512, 8, 8, 8, 512, 2, 576, 8, 4, 4, 1056},
		{1000, 10, 10, 10, 1000, 3, 13824, 8, 4, 4, 1056},
		{1024, 16, 8, 8, 1024, 3, 13824, 8, 4, 4, 1056},
		{1152, 12, 12, 8, 1152, 3, 13824, 10, 5, 5, 2550},
		{1728, 12, 12, 12, 1728, 3, 13824, 10, 5, 5, 2550},
	}
	for _, r := range rows {
		tor, ft, df, err := Configs(r.size)
		if err != nil {
			t.Fatalf("Configs(%d): %v", r.size, err)
		}
		if tor.X != r.tx || tor.Y != r.ty || tor.Z != r.tz || tor.Nodes != r.tNodes {
			t.Errorf("size %d torus = %s/%d, want (%d,%d,%d)/%d",
				r.size, tor, tor.Nodes, r.tx, r.ty, r.tz, r.tNodes)
		}
		if ft.Stages != r.stages || ft.Nodes != r.ftNodes || ft.Radix != 48 {
			t.Errorf("size %d fattree = %s/%d, want (48,%d)/%d",
				r.size, ft, ft.Nodes, r.stages, r.ftNodes)
		}
		if df.A != r.a || df.H != r.h || df.P != r.p || df.Nodes != r.dfNodes {
			t.Errorf("size %d dragonfly = %s/%d, want (%d,%d,%d)/%d",
				r.size, df, df.Nodes, r.a, r.h, r.p, r.dfNodes)
		}
	}
}

func TestConfigBuild(t *testing.T) {
	tor, ft, df, err := Configs(64)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []Config{tor, ft, df} {
		topo, err := c.Build()
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		if topo.Nodes() != c.Nodes {
			t.Errorf("%s: built %d nodes, config says %d", c, topo.Nodes(), c.Nodes)
		}
		if topo.Nodes() < 64 {
			t.Errorf("%s: %d nodes cannot host 64 ranks", c, topo.Nodes())
		}
	}
}

func TestConfigBuildUnknownKind(t *testing.T) {
	if _, err := (Config{Kind: "mesh"}).Build(); err == nil {
		t.Fatal("unknown kind should fail")
	}
}

func TestConfigString(t *testing.T) {
	tor, ft, df, _ := Configs(1024)
	if tor.String() != "(16,8,8)" {
		t.Errorf("torus string = %s", tor)
	}
	if ft.String() != "(48,3)" {
		t.Errorf("fattree string = %s", ft)
	}
	if df.String() != "(8,4,4)" {
		t.Errorf("dragonfly string = %s", df)
	}
	if (Config{Kind: "x"}).String() != "?" {
		t.Error("unknown kind string")
	}
}

func TestConfigErrors(t *testing.T) {
	if _, err := TorusConfig(0); err == nil {
		t.Error("TorusConfig(0) should fail")
	}
	if _, err := FatTreeConfig(-1); err == nil {
		t.Error("FatTreeConfig(-1) should fail")
	}
	if _, err := DragonflyConfig(0); err == nil {
		t.Error("DragonflyConfig(0) should fail")
	}
	if _, err := FatTreeConfig(20000); err == nil {
		t.Error("oversized fat tree should fail")
	}
	if _, err := DragonflyConfig(1 << 20); err == nil {
		t.Error("oversized dragonfly should fail")
	}
}

func TestTorusConfigGenericSizes(t *testing.T) {
	// Non-table sizes get a near-cubic cover.
	for _, n := range []int{1, 2, 5, 50, 300, 777} {
		c, err := TorusConfig(n)
		if err != nil {
			t.Fatalf("TorusConfig(%d): %v", n, err)
		}
		if c.Nodes < n {
			t.Errorf("TorusConfig(%d): %d nodes < ranks", n, c.Nodes)
		}
		if c.X < c.Y || c.Y < c.Z {
			t.Errorf("TorusConfig(%d): dims not ordered: %s", n, c)
		}
		if c.X*c.Y*c.Z != c.Nodes {
			t.Errorf("TorusConfig(%d): volume mismatch", n)
		}
		if c.Z >= 1 && c.X > 2*c.Z && n > 2 {
			t.Errorf("TorusConfig(%d): aspect too skewed: %s", n, c)
		}
	}
}

func TestNearCubicMatchesPaperChoices(t *testing.T) {
	// The generic algorithm reproduces most Table 2 torus entries on its
	// own (the table is also hardcoded for exact fidelity).
	for _, c := range []struct{ n, x, y, z int }{
		{8, 2, 2, 2}, {27, 3, 3, 3}, {64, 4, 4, 4}, {100, 5, 5, 4},
		{125, 5, 5, 5}, {144, 6, 6, 4}, {168, 7, 6, 4}, {216, 6, 6, 6},
		{512, 8, 8, 8}, {1000, 10, 10, 10}, {1728, 12, 12, 12},
	} {
		x, y, z, err := nearCubicDims(c.n)
		if err != nil {
			t.Fatalf("nearCubicDims(%d): %v", c.n, err)
		}
		if x != c.x || y != c.y || z != c.z {
			t.Errorf("nearCubicDims(%d) = (%d,%d,%d), want (%d,%d,%d)", c.n, x, y, z, c.x, c.y, c.z)
		}
	}
}

func TestPaperSizes(t *testing.T) {
	sizes := PaperSizes()
	if len(sizes) != 17 {
		t.Fatalf("len = %d, want 17", len(sizes))
	}
	if sizes[0] != 8 || sizes[len(sizes)-1] != 1728 {
		t.Fatalf("range = %d..%d", sizes[0], sizes[len(sizes)-1])
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Fatal("sizes not ascending")
		}
	}
}

func TestDragonflyLadderMonotone(t *testing.T) {
	prev := 0
	for _, c := range dragonflyLadder {
		a, h, p := c[0], c[1], c[2]
		if a != 2*h || a != 2*p {
			t.Errorf("ladder entry %v violates a=2h=2p", c)
		}
		nodes := a * p * (a*h + 1)
		if nodes <= prev {
			t.Errorf("ladder not increasing at %v", c)
		}
		prev = nodes
	}
}

// The extreme-scale family sizing must cover every paper rank count with
// a buildable config whose node count reaches the ranks.
func TestExtremeScaleConfigsCoverPaperSizes(t *testing.T) {
	type sizer struct {
		name string
		fn   func(int) (Config, error)
	}
	sizers := []sizer{
		{"slimfly", SlimFlyConfig},
		{"jellyfish", JellyfishConfig},
		{"hyperx", HyperXConfig},
	}
	for _, s := range sizers {
		for _, ranks := range PaperSizes() {
			c, err := s.fn(ranks)
			if err != nil {
				t.Fatalf("%s(%d): %v", s.name, ranks, err)
			}
			if c.Nodes < ranks {
				t.Fatalf("%s(%d): %d nodes < ranks", s.name, ranks, c.Nodes)
			}
			topo, err := c.Build()
			if err != nil {
				t.Fatalf("%s(%d): build: %v", s.name, ranks, err)
			}
			if topo.Nodes() != c.Nodes {
				t.Fatalf("%s(%d): built %d nodes, config says %d", s.name, ranks, topo.Nodes(), c.Nodes)
			}
			if topo.Kind() != c.Kind {
				t.Fatalf("%s(%d): kind %q vs %q", s.name, ranks, topo.Kind(), c.Kind)
			}
		}
		if _, err := s.fn(0); err == nil {
			t.Errorf("%s(0): expected error", s.name)
		}
		if _, err := s.fn(-5); err == nil {
			t.Errorf("%s(-5): expected error", s.name)
		}
	}
}

// String must render every structural parameter of the new kinds — the
// workcache keys built topologies by it.
func TestExtremeScaleConfigStrings(t *testing.T) {
	sf, err := SlimFlyConfig(64)
	if err != nil {
		t.Fatal(err)
	}
	if sf.String() != "(5,2)" {
		t.Errorf("slimfly string = %s", sf)
	}
	jf, err := JellyfishConfig(64)
	if err != nil {
		t.Fatal(err)
	}
	if jf.String() != "(16,8,4;1)" {
		t.Errorf("jellyfish string = %s", jf)
	}
	jf2 := jf
	jf2.Seed = 99
	if jf.String() == jf2.String() {
		t.Error("jellyfish string must include the seed")
	}
	hx, err := HyperXConfig(64)
	if err != nil {
		t.Fatal(err)
	}
	if hx.String() != "(4,4,1;4)" {
		t.Errorf("hyperx string = %s", hx)
	}
}

// Kinds lists every kind Build accepts, and each non-paper kind has a
// working zero-value rejection (no panics on an empty Config).
func TestKindsAllBuildable(t *testing.T) {
	for _, k := range Kinds() {
		if _, err := (Config{Kind: k}).Build(); err == nil {
			t.Errorf("kind %q: zero-value config should fail, not build", k)
		}
	}
}
