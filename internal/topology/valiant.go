package topology

import "fmt"

// Valiant wraps a Dragonfly with Valiant (randomized-intermediate)
// routing: inter-group packets first travel minimally to a pivot group
// chosen per source/destination pair, then minimally onward. Production
// dragonflies use adaptive routing built on this scheme to spread load;
// the paper's discussion notes it "often results in even longer paths"
// than the minimal routing its study assumes — this wrapper quantifies
// exactly that gap (see BenchmarkAblationValiantRouting).
//
// The pivot choice is a deterministic hash of (src, dst, seed) so results
// are reproducible; intra-group traffic routes minimally.
type Valiant struct {
	*Dragonfly
	seed uint64
}

// NewValiant wraps a dragonfly with Valiant routing.
func NewValiant(d *Dragonfly, seed uint64) (*Valiant, error) {
	if d == nil {
		return nil, fmt.Errorf("topology: nil dragonfly")
	}
	return &Valiant{Dragonfly: d, seed: seed}, nil
}

// Name implements Topology.
func (v *Valiant) Name() string {
	a, h, p := v.Params()
	return fmt.Sprintf("valiant-dragonfly(%d,%d,%d)", a, h, p)
}

// Kind implements Topology.
func (v *Valiant) Kind() string { return "valiant-dragonfly" }

// pivotGroup picks the intermediate group for a pair: a deterministic
// pseudo-random group different from both endpoints' groups.
func (v *Valiant) pivotGroup(src, dst int) int {
	gs, gd := v.groupOf(src), v.groupOf(dst)
	x := uint64(src)*0x9E3779B97F4A7C15 ^ uint64(dst)*0xBF58476D1CE4E5B9 ^ v.seed
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	g := int(x % uint64(v.Groups()))
	for g == gs || g == gd {
		g = (g + 1) % v.Groups()
	}
	return g
}

// Route implements Topology: terminal, local hop to the gateway toward the
// pivot group, global to the pivot, local to the pivot's gateway toward
// the destination group, global again, local to the destination router,
// terminal. Hops that start where they must end (the gateway is already
// the right router) are skipped, so paths run from 5 to 8 links.
func (v *Valiant) Route(src, dst int, buf []int) ([]int, error) {
	if err := checkEndpoints(v, src, dst); err != nil {
		return nil, err
	}
	buf = buf[:0]
	if src == dst {
		return buf, nil
	}
	gs, gd := v.groupOf(src), v.groupOf(dst)
	if gs == gd || v.Groups() < 3 {
		// Intra-group (or too few groups to detour): minimal.
		return v.Dragonfly.Route(src, dst, buf)
	}
	gi := v.pivotGroup(src, dst)
	ah := v.a * v.h

	buf = append(buf, v.termLink[src])
	// Source group: local to the gateway toward the pivot, then global.
	cur := v.routerOf(src)
	k1 := v.gatewayPort(gs, gi)
	if gw := k1 / v.h; gw != cur {
		buf = append(buf, v.localLink[gs][cur*v.a+gw])
	}
	buf = append(buf, v.globalOf[gs*ah+k1])
	// Pivot group: land, hop to the gateway toward the destination group.
	cur = (ah - 1 - k1) / v.h
	k2 := v.gatewayPort(gi, gd)
	if gw := k2 / v.h; gw != cur {
		buf = append(buf, v.localLink[gi][cur*v.a+gw])
	}
	buf = append(buf, v.globalOf[gi*ah+k2])
	// Destination group: land, hop to the destination router, eject.
	cur = (ah - 1 - k2) / v.h
	if rd := v.routerOf(dst); rd != cur {
		buf = append(buf, v.localLink[gd][cur*v.a+rd])
	}
	return append(buf, v.termLink[dst]), nil
}

// HopCount implements Topology: the length of the Valiant path.
func (v *Valiant) HopCount(src, dst int) int {
	if src == dst {
		return 0
	}
	gs, gd := v.groupOf(src), v.groupOf(dst)
	if gs == gd || v.Groups() < 3 {
		return v.Dragonfly.HopCount(src, dst)
	}
	gi := v.pivotGroup(src, dst)
	hops := 4 // two terminals + two globals
	k1 := v.gatewayPort(gs, gi)
	if k1/v.h != v.routerOf(src) {
		hops++
	}
	k2 := v.gatewayPort(gi, gd)
	if (v.a*v.h-1-k1)/v.h != k2/v.h {
		hops++
	}
	if (v.a*v.h-1-k2)/v.h != v.routerOf(dst) {
		hops++
	}
	return hops
}

var _ Topology = (*Valiant)(nil)
