package topology

import "fmt"

// Graph is a plain adjacency-list view of a topology, used as the reference
// implementation for shortest paths: the analytic HopCount of every
// topology is validated against BFS distances on this graph.
type Graph struct {
	n   int
	adj [][]int
}

// NewGraph builds an adjacency list over n vertices from a link list.
func NewGraph(n int, links []Link) (*Graph, error) {
	g := &Graph{n: n, adj: make([][]int, n)}
	for i, l := range links {
		if l.A < 0 || l.A >= n || l.B < 0 || l.B >= n {
			return nil, fmt.Errorf("topology: link %d (%d-%d) out of range [0,%d)", i, l.A, l.B, n)
		}
		if l.A == l.B {
			return nil, fmt.Errorf("topology: link %d is a self loop at %d", i, l.A)
		}
		g.adj[l.A] = append(g.adj[l.A], l.B)
		g.adj[l.B] = append(g.adj[l.B], l.A)
	}
	return g, nil
}

// GraphOf builds the reference graph of a topology.
func GraphOf(t Topology) (*Graph, error) {
	return NewGraph(t.NumVertices(), t.Links())
}

// BFSFrom returns the distance (in hops) from src to every vertex;
// unreachable vertices get -1.
func (g *Graph) BFSFrom(src int) ([]int, error) {
	if src < 0 || src >= g.n {
		return nil, fmt.Errorf("topology: bfs source %d out of range [0,%d)", src, g.n)
	}
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int, 0, g.n)
	queue = append(queue, src)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[v] {
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist, nil
}

// Connected reports whether every vertex is reachable from vertex 0.
func (g *Graph) Connected() (bool, error) {
	if g.n == 0 {
		return true, nil
	}
	dist, err := g.BFSFrom(0)
	if err != nil {
		return false, err
	}
	for _, d := range dist {
		if d == -1 {
			return false, nil
		}
	}
	return true, nil
}

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) (int, error) {
	if v < 0 || v >= g.n {
		return 0, fmt.Errorf("topology: vertex %d out of range [0,%d)", v, g.n)
	}
	return len(g.adj[v]), nil
}
