package topology

import "fmt"

// gf is arithmetic in the finite field GF(q) for a prime power q = p^m,
// backing the Slim Fly MMS construction. Elements are encoded as integers
// 0..q-1 whose base-p digits are the coefficients of a polynomial over
// GF(p); for m > 1 multiplication reduces modulo a canonical irreducible
// polynomial (the lexicographically smallest monic one, found by trial
// division), so the same q always yields the same field tables and the
// built graphs stay byte-identical across runs.
type gf struct {
	q, p, m int
	mulT    []uint16 // q×q multiplication table
	addT    []uint16 // q×q addition table
	prim    int      // canonical (smallest) primitive element
}

// maxGFOrder bounds the field size: the add/mul tables are O(q²), and the
// Slim Fly ladder tops out far below this.
const maxGFOrder = 512

// factorPrimePower decomposes q into (p, m) with q = p^m, or ok=false.
func factorPrimePower(q int) (p, m int, ok bool) {
	if q < 2 {
		return 0, 0, false
	}
	for p = 2; p*p <= q; p++ {
		if q%p == 0 {
			for m = 0; q%p == 0; m++ {
				q /= p
			}
			return p, m, q == 1
		}
	}
	return q, 1, true
}

// newGF constructs GF(q). q must be a prime power within maxGFOrder.
func newGF(q int) (*gf, error) {
	if q > maxGFOrder {
		return nil, fmt.Errorf("topology: field order %d exceeds the supported maximum %d", q, maxGFOrder)
	}
	p, m, ok := factorPrimePower(q)
	if !ok {
		return nil, fmt.Errorf("topology: %d is not a prime power", q)
	}
	f := &gf{q: q, p: p, m: m}
	f.addT = make([]uint16, q*q)
	f.mulT = make([]uint16, q*q)
	for a := 0; a < q; a++ {
		for b := 0; b < q; b++ {
			f.addT[a*q+b] = uint16(f.addDigits(a, b))
		}
	}
	irr := f.findIrreducible()
	for a := 0; a < q; a++ {
		for b := 0; b < q; b++ {
			f.mulT[a*q+b] = uint16(f.mulPoly(a, b, irr))
		}
	}
	if err := f.findPrimitive(); err != nil {
		return nil, err
	}
	return f, nil
}

func (f *gf) add(a, b int) int { return int(f.addT[a*f.q+b]) }
func (f *gf) mul(a, b int) int { return int(f.mulT[a*f.q+b]) }

// neg returns the additive inverse of a.
func (f *gf) neg(a int) int {
	digits := a
	out, pw := 0, 1
	for i := 0; i < f.m; i++ {
		d := digits % f.p
		if d != 0 {
			out += (f.p - d) * pw
		}
		digits /= f.p
		pw *= f.p
	}
	return out
}

// sub returns a - b.
func (f *gf) sub(a, b int) int { return f.add(a, f.neg(b)) }

// addDigits adds two encoded elements digit-wise mod p.
func (f *gf) addDigits(a, b int) int {
	out, pw := 0, 1
	for i := 0; i < f.m; i++ {
		out += ((a + b) % f.p) * pw
		a /= f.p
		b /= f.p
		pw *= f.p
	}
	return out
}

// polyCoeffs expands an encoded element into its base-p digit slice.
func (f *gf) polyCoeffs(a int, n int) []int {
	out := make([]int, n)
	for i := 0; i < n && a > 0; i++ {
		out[i] = a % f.p
		a /= f.p
	}
	return out
}

// mulPoly multiplies two elements as polynomials over GF(p) and reduces
// modulo the monic irreducible irr (given as its low-degree coefficients;
// the leading coefficient of degree m is implicitly 1).
func (f *gf) mulPoly(a, b int, irr []int) int {
	if f.m == 1 {
		return (a * b) % f.p
	}
	ac := f.polyCoeffs(a, f.m)
	bc := f.polyCoeffs(b, f.m)
	prod := make([]int, 2*f.m-1)
	for i, av := range ac {
		if av == 0 {
			continue
		}
		for j, bv := range bc {
			prod[i+j] = (prod[i+j] + av*bv) % f.p
		}
	}
	// Reduce: x^m ≡ -irr (x^m's replacement has the negated low coeffs).
	for d := len(prod) - 1; d >= f.m; d-- {
		c := prod[d]
		if c == 0 {
			continue
		}
		prod[d] = 0
		for i, iv := range irr {
			if iv == 0 {
				continue
			}
			prod[d-f.m+i] = (prod[d-f.m+i] + c*(f.p-iv)) % f.p
		}
	}
	out, pw := 0, 1
	for i := 0; i < f.m; i++ {
		out += prod[i] * pw
		pw *= f.p
	}
	return out
}

// findIrreducible returns the low coefficients of the lexicographically
// smallest monic irreducible polynomial of degree m over GF(p), by trial
// division against every monic polynomial of degree 1..m/2. For m == 1
// the reduction is trivial and nil is returned.
func (f *gf) findIrreducible() []int {
	if f.m == 1 {
		return nil
	}
	total := 1
	for i := 0; i < f.m; i++ {
		total *= f.p
	}
	for enc := 0; enc < total; enc++ {
		cand := f.polyCoeffs(enc, f.m+1)
		cand[f.m] = 1
		if f.irreducible(cand) {
			return cand[:f.m]
		}
	}
	// Unreachable: irreducible polynomials exist for every (p, m).
	panic("topology: no irreducible polynomial found")
}

// irreducible reports whether the monic polynomial poly (degree =
// len(poly)-1) has no monic divisor of degree 1..deg(poly)/2.
func (f *gf) irreducible(poly []int) bool {
	deg := len(poly) - 1
	for d := 1; d <= deg/2; d++ {
		total := 1
		for i := 0; i < d; i++ {
			total *= f.p
		}
		for enc := 0; enc < total; enc++ {
			div := f.polyCoeffs(enc, d+1)
			div[d] = 1
			if f.polyModZero(poly, div) {
				return false
			}
		}
	}
	return true
}

// polyModZero reports whether div divides poly exactly (both monic, over
// GF(p)).
func (f *gf) polyModZero(poly, div []int) bool {
	rem := append([]int(nil), poly...)
	dd := len(div) - 1
	for d := len(rem) - 1; d >= dd; d-- {
		c := rem[d]
		if c == 0 {
			continue
		}
		for i, dv := range div {
			rem[d-dd+i] = (rem[d-dd+i] + c*(f.p-dv%f.p)) % f.p
		}
	}
	for _, c := range rem {
		if c != 0 {
			return false
		}
	}
	return true
}

// findPrimitive locates the smallest element generating the multiplicative
// group, by walking its powers until 1 recurs.
func (f *gf) findPrimitive() error {
	for g := 1; g < f.q; g++ {
		x, order := g, 1
		for x != 1 {
			x = f.mul(x, g)
			order++
			if order > f.q {
				return fmt.Errorf("topology: GF(%d) element %d has unbounded order (table bug)", f.q, g)
			}
		}
		if order == f.q-1 {
			f.prim = g
			return nil
		}
	}
	return fmt.Errorf("topology: no primitive element in GF(%d)", f.q)
}
