package topology

import "fmt"

// FatTree is a folded-Clos fat tree built from fixed-radix switches,
// following the paper's construction: every stage has the same number of
// switches, each using half its ports downward and half upward, except the
// top stage, which uses half as many switches with all ports downward
// ("only half the switches are used to connect all child switches").
//
// With radix r and d = r/2 downlinks per switch the supported
// configurations are:
//
//	stages = 1: a single r-port switch, r nodes (paper: 48)
//	stages = 2: d leaf switches × d nodes = d² nodes (paper: 576)
//	stages = 3: d pods × d leaves × d nodes = d³ nodes (paper: 13824)
//
// Minimal routing goes up to the lowest common stage and back down; hop
// counts are therefore 2, 4, or 6 depending on whether the two nodes share
// a leaf, a pod, or only the top stage.
type FatTree struct {
	radix  int
	stages int
	d      int // downlinks per switch = radix/2
	nodes  int

	links   []Link
	classes []LinkClass

	// Link-index lookup tables for deterministic routing. Parallel links
	// (two links between the same leaf/top or mid/top pair) are distinct
	// entries, so routing uses these tables rather than a pair index.
	termLink []int      // node -> terminal link
	leafMid  [][]int    // stages>=2: leaf -> per-upper-switch link (one each)
	midTop   [][][2]int // stages==3 (or leaf->top for stages==2): lower switch -> per-top parallel pair
}

// NewFatTree constructs a fat tree with the given switch radix and stage
// count. The radix must be even and at least 4; stages must be 1..3 (the
// configurations used by the study; Table 2 uses radix 48 throughout).
func NewFatTree(radix, stages int) (*FatTree, error) {
	if radix < 4 || radix%2 != 0 {
		return nil, fmt.Errorf("topology: fat tree radix must be even and >= 4, got %d", radix)
	}
	if stages < 1 || stages > 3 {
		return nil, fmt.Errorf("topology: fat tree stages must be 1..3, got %d", stages)
	}
	d := radix / 2
	f := &FatTree{radix: radix, stages: stages, d: d}
	switch stages {
	case 1:
		f.nodes = radix
	case 2:
		f.nodes = d * d
	case 3:
		f.nodes = d * d * d
	}
	f.build()
	return f, nil
}

// Vertex layout:
//
//	0..nodes-1                 compute nodes
//	nodes..                    leaf switches (stage 1); for stages==1 the
//	                           single switch
//	then                       mid switches (stage 2, stages==3 only)
//	then                       top switches (last stage, stages>=2)
func (f *FatTree) build() {
	n, d := f.nodes, f.d
	f.termLink = make([]int, n)

	addLink := func(a, b int, class LinkClass) int {
		f.links = append(f.links, Link{A: a, B: b})
		f.classes = append(f.classes, class)
		return len(f.links) - 1
	}

	switch f.stages {
	case 1:
		sw := n // the only switch
		for v := 0; v < n; v++ {
			f.termLink[v] = addLink(v, sw, ClassTerminal)
		}

	case 2:
		leaves := n / d    // d leaf switches
		tops := leaves / 2 // half as many top switches
		leafBase := n
		topBase := n + leaves
		for v := 0; v < n; v++ {
			f.termLink[v] = addLink(v, leafBase+v/d, ClassTerminal)
		}
		// Each leaf spreads its d uplinks over the d/2 tops: two
		// parallel links per (leaf, top) pair.
		f.midTop = make([][][2]int, leaves)
		for l := 0; l < leaves; l++ {
			f.midTop[l] = make([][2]int, tops)
			for t := 0; t < tops; t++ {
				f.midTop[l][t] = [2]int{
					addLink(leafBase+l, topBase+t, ClassGlobal),
					addLink(leafBase+l, topBase+t, ClassGlobal),
				}
			}
		}

	case 3:
		leaves := n / d    // d*d leaf switches
		pods := leaves / d // d pods
		mids := leaves     // same count as leaves
		topGroups := d     // one top group per mid index j
		topsPerGroup := d / 2
		leafBase := n
		midBase := n + leaves
		topBase := n + leaves + mids
		for v := 0; v < n; v++ {
			f.termLink[v] = addLink(v, leafBase+v/d, ClassTerminal)
		}
		// Leaf l of pod P connects one link to each mid (P, j).
		f.leafMid = make([][]int, leaves)
		for l := 0; l < leaves; l++ {
			pod := l / d
			f.leafMid[l] = make([]int, d)
			for j := 0; j < d; j++ {
				f.leafMid[l][j] = addLink(leafBase+l, midBase+pod*d+j, ClassLocal)
			}
		}
		// Mid (P, j) connects two parallel links to each top (j, k).
		f.midTop = make([][][2]int, mids)
		for m := 0; m < mids; m++ {
			j := m % d
			f.midTop[m] = make([][2]int, topsPerGroup)
			for k := 0; k < topsPerGroup; k++ {
				top := topBase + j*topsPerGroup + k
				f.midTop[m][k] = [2]int{
					addLink(midBase+m, top, ClassGlobal),
					addLink(midBase+m, top, ClassGlobal),
				}
			}
		}
		_ = pods
		_ = topGroups
	}
}

// Radix returns the switch radix.
func (f *FatTree) Radix() int { return f.radix }

// Stages returns the number of stages.
func (f *FatTree) Stages() int { return f.stages }

// Name implements Topology.
func (f *FatTree) Name() string { return fmt.Sprintf("fattree(%d,%d)", f.radix, f.stages) }

// Kind implements Topology.
func (f *FatTree) Kind() string { return "fattree" }

// Nodes implements Topology.
func (f *FatTree) Nodes() int { return f.nodes }

// NumVertices implements Topology.
func (f *FatTree) NumVertices() int {
	n, d := f.nodes, f.d
	switch f.stages {
	case 1:
		return n + 1
	case 2:
		return n + n/d + n/d/2
	default: // 3
		return n + 2*(n/d) + d*(d/2)
	}
}

// Links implements Topology.
func (f *FatTree) Links() []Link { return f.links }

// LinkClasses implements Topology.
func (f *FatTree) LinkClasses() []LinkClass { return f.classes }

// leafOf returns the leaf-switch index (0-based within the leaf stage) of a
// node.
func (f *FatTree) leafOf(v int) int { return v / f.d }

// podOf returns the pod index of a node (stages==3).
func (f *FatTree) podOf(v int) int { return v / (f.d * f.d) }

// HopCount implements Topology.
func (f *FatTree) HopCount(src, dst int) int {
	if src == dst {
		return 0
	}
	switch f.stages {
	case 1:
		return 2
	case 2:
		if f.leafOf(src) == f.leafOf(dst) {
			return 2
		}
		return 4
	default: // 3
		if f.leafOf(src) == f.leafOf(dst) {
			return 2
		}
		if f.podOf(src) == f.podOf(dst) {
			return 4
		}
		return 6
	}
}

// Route implements Topology. The upward path is selected deterministically
// from the destination ID (d-mod routing), which spreads traffic across
// uplinks the way static destination-based routing tables do.
func (f *FatTree) Route(src, dst int, buf []int) ([]int, error) {
	if err := checkEndpoints(f, src, dst); err != nil {
		return nil, err
	}
	buf = buf[:0]
	if src == dst {
		return buf, nil
	}
	d := f.d
	switch f.stages {
	case 1:
		return append(buf, f.termLink[src], f.termLink[dst]), nil

	case 2:
		ls, ld := f.leafOf(src), f.leafOf(dst)
		if ls == ld {
			return append(buf, f.termLink[src], f.termLink[dst]), nil
		}
		top := dst % (len(f.midTop[ls])) // destination-modular top choice
		par := (src + dst) & 1
		return append(buf,
			f.termLink[src],
			f.midTop[ls][top][par],
			f.midTop[ld][top][par],
			f.termLink[dst]), nil

	default: // 3
		ls, ld := f.leafOf(src), f.leafOf(dst)
		if ls == ld {
			return append(buf, f.termLink[src], f.termLink[dst]), nil
		}
		j := dst % d // mid index chosen by destination
		if f.podOf(src) == f.podOf(dst) {
			return append(buf,
				f.termLink[src],
				f.leafMid[ls][j],
				f.leafMid[ld][j],
				f.termLink[dst]), nil
		}
		ms := f.podOf(src)*d + j // global mid index (pod, j)
		md := f.podOf(dst)*d + j
		k := (dst / d) % (d / 2) // top within group j
		par := (src + dst) & 1
		return append(buf,
			f.termLink[src],
			f.leafMid[ls][j],
			f.midTop[ms][k][par],
			f.midTop[md][k][par],
			f.leafMid[ld][j],
			f.termLink[dst]), nil
	}
}

var _ Topology = (*FatTree)(nil)
