package topology

import "testing"

func TestNewGraphValidation(t *testing.T) {
	if _, err := NewGraph(2, []Link{{A: 0, B: 2}}); err == nil {
		t.Fatal("out-of-range link accepted")
	}
	if _, err := NewGraph(2, []Link{{A: -1, B: 0}}); err == nil {
		t.Fatal("negative vertex accepted")
	}
	if _, err := NewGraph(2, []Link{{A: 1, B: 1}}); err == nil {
		t.Fatal("self loop accepted")
	}
}

func TestBFSPathDistances(t *testing.T) {
	// 0-1-2-3 chain plus 0-3 shortcut.
	g, err := NewGraph(4, []Link{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := g.BFSFrom(0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 1}
	for i := range want {
		if dist[i] != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], want[i])
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g, err := NewGraph(3, []Link{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := g.BFSFrom(0)
	if err != nil {
		t.Fatal(err)
	}
	if dist[2] != -1 {
		t.Fatalf("dist[2] = %d, want -1", dist[2])
	}
	ok, err := g.Connected()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("disconnected graph reported connected")
	}
}

func TestBFSSourceValidation(t *testing.T) {
	g, _ := NewGraph(2, nil)
	if _, err := g.BFSFrom(5); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := g.BFSFrom(-1); err == nil {
		t.Fatal("negative source accepted")
	}
}

func TestGraphDegree(t *testing.T) {
	g, _ := NewGraph(3, []Link{{0, 1}, {0, 2}})
	if d, _ := g.Degree(0); d != 2 {
		t.Fatalf("degree(0) = %d", d)
	}
	if d, _ := g.Degree(1); d != 1 {
		t.Fatalf("degree(1) = %d", d)
	}
	if _, err := g.Degree(9); err == nil {
		t.Fatal("bad vertex accepted")
	}
}

func TestEmptyGraphConnected(t *testing.T) {
	g, err := NewGraph(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := g.Connected()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("empty graph should count as connected")
	}
}

func TestParallelLinksAllowed(t *testing.T) {
	// Fat trees use parallel links; the graph must accept them.
	g, err := NewGraph(2, []Link{{0, 1}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := g.Degree(0); d != 2 {
		t.Fatalf("degree with parallel links = %d, want 2", d)
	}
}

func TestLinkClassString(t *testing.T) {
	if ClassTerminal.String() != "terminal" || ClassLocal.String() != "local" || ClassGlobal.String() != "global" {
		t.Fatal("class names wrong")
	}
	if LinkClass(9).String() != "class(9)" {
		t.Fatal("unknown class string")
	}
}
