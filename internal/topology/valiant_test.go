package topology

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func newValiant(t *testing.T, a, h, p int) *Valiant {
	t.Helper()
	d, err := NewDragonfly(a, h, p)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewValiant(d, 42)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestNewValiantValidation(t *testing.T) {
	if _, err := NewValiant(nil, 1); err == nil {
		t.Fatal("nil dragonfly accepted")
	}
}

func TestValiantNaming(t *testing.T) {
	v := newValiant(t, 4, 2, 2)
	if v.Kind() != "valiant-dragonfly" || v.Name() != "valiant-dragonfly(4,2,2)" {
		t.Fatalf("Kind=%q Name=%q", v.Kind(), v.Name())
	}
}

func TestValiantPathsValidAndConsistent(t *testing.T) {
	v := newValiant(t, 4, 2, 2)
	var buf []int
	var err error
	for src := 0; src < v.Nodes(); src++ {
		for dst := 0; dst < v.Nodes(); dst++ {
			buf, err = v.Route(src, dst, buf)
			if err != nil {
				t.Fatalf("Route(%d,%d): %v", src, dst, err)
			}
			validatePath(t, v, src, dst, buf)
			if got := v.HopCount(src, dst); got != len(buf) {
				t.Fatalf("HopCount(%d,%d) = %d, path length %d", src, dst, got, len(buf))
			}
		}
	}
}

func TestValiantNeverShorterThanMinimal(t *testing.T) {
	v := newValiant(t, 4, 2, 2)
	for src := 0; src < v.Nodes(); src += 3 {
		for dst := 0; dst < v.Nodes(); dst += 2 {
			min := v.Dragonfly.HopCount(src, dst)
			val := v.HopCount(src, dst)
			if val < min {
				t.Fatalf("valiant %d < minimal %d for (%d,%d)", val, min, src, dst)
			}
			if val > 8 {
				t.Fatalf("valiant hop count %d exceeds bound", val)
			}
		}
	}
}

func TestValiantPivotAvoidsEndGroups(t *testing.T) {
	v := newValiant(t, 4, 2, 2)
	for src := 0; src < v.Nodes(); src += 5 {
		for dst := 0; dst < v.Nodes(); dst += 7 {
			gs, gd := src/8, dst/8
			if gs == gd {
				continue
			}
			gi := v.pivotGroup(src, dst)
			if gi == gs || gi == gd {
				t.Fatalf("pivot %d collides with endpoints (%d,%d)", gi, gs, gd)
			}
		}
	}
}

func TestValiantIntraGroupIsMinimal(t *testing.T) {
	v := newValiant(t, 4, 2, 2)
	// Nodes 0 and 3 share group 0.
	if v.HopCount(0, 3) != v.Dragonfly.HopCount(0, 3) {
		t.Fatal("intra-group valiant should route minimally")
	}
}

func TestValiantUsesTwoGlobalLinks(t *testing.T) {
	v := newValiant(t, 4, 2, 2)
	classes := v.LinkClasses()
	buf, err := v.Route(0, 70, nil) // different groups
	if err != nil {
		t.Fatal(err)
	}
	globals := 0
	for _, li := range buf {
		if classes[li] == ClassGlobal {
			globals++
		}
	}
	if globals != 2 {
		t.Fatalf("valiant globals = %d, want 2", globals)
	}
}

func TestValiantDeterministicPerSeed(t *testing.T) {
	d, err := NewDragonfly(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := NewValiant(d, 7)
	v2, _ := NewValiant(d, 7)
	v3, _ := NewValiant(d, 8)
	same, diff := true, false
	for src := 0; src < 72; src += 5 {
		for dst := 0; dst < 72; dst += 7 {
			if v1.HopCount(src, dst) != v2.HopCount(src, dst) {
				same = false
			}
			if v1.HopCount(src, dst) != v3.HopCount(src, dst) {
				diff = true
			}
		}
	}
	if !same {
		t.Fatal("same seed produced different routes")
	}
	if !diff {
		t.Fatal("different seeds produced identical routes everywhere (suspicious)")
	}
}

// TestValiantPivotGroupsDeterministic pins the stronger claim behind
// TestValiantDeterministicPerSeed: two instances with the same seed pick
// the exact same pivot group for every inter-group pair — not merely
// equal hop counts — so a simulation can be re-run anywhere and replay
// identical detours.
func TestValiantPivotGroupsDeterministic(t *testing.T) {
	d, err := NewDragonfly(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := NewValiant(d, 7)
	v2, _ := NewValiant(d, 7)
	for src := 0; src < v1.Nodes(); src++ {
		for dst := 0; dst < v1.Nodes(); dst++ {
			if src/8 == dst/8 {
				continue // intra-group traffic has no pivot
			}
			if g1, g2 := v1.pivotGroup(src, dst), v2.pivotGroup(src, dst); g1 != g2 {
				t.Fatalf("pivotGroup(%d,%d) = %d vs %d across same-seed instances", src, dst, g1, g2)
			}
		}
	}
}

// TestValiantConcurrentRoutesIdentical routes the same pairs from many
// goroutines on one shared instance: results must match the sequential
// reference, and the run must be clean under -race (ci.sh re-runs it
// with forced worker counts).
func TestValiantConcurrentRoutesIdentical(t *testing.T) {
	v := newValiant(t, 4, 2, 2)
	type pair struct{ src, dst int }
	var pairs []pair
	ref := make(map[pair][]int)
	for src := 0; src < v.Nodes(); src += 3 {
		for dst := 0; dst < v.Nodes(); dst += 5 {
			if src == dst {
				continue
			}
			p, err := v.Route(src, dst, nil)
			if err != nil {
				t.Fatal(err)
			}
			pairs = append(pairs, pair{src, dst})
			ref[pair{src, dst}] = p
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var buf []int
			for _, p := range pairs {
				var err error
				buf, err = v.Route(p.src, p.dst, buf)
				if err != nil {
					errs[g] = err
					return
				}
				if !reflect.DeepEqual(buf, ref[p]) {
					errs[g] = fmt.Errorf("concurrent route %d->%d diverged from sequential reference", p.src, p.dst)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestValiantAverageExceedsMinimalUnderUniformTraffic(t *testing.T) {
	v := newValiant(t, 6, 3, 3)
	var minSum, valSum int
	pairs := 0
	for src := 0; src < v.Nodes(); src += 11 {
		for dst := 0; dst < v.Nodes(); dst += 13 {
			if src == dst {
				continue
			}
			minSum += v.Dragonfly.HopCount(src, dst)
			valSum += v.HopCount(src, dst)
			pairs++
		}
	}
	if valSum <= minSum {
		t.Fatalf("valiant total %d not above minimal %d over %d pairs", valSum, minSum, pairs)
	}
}
