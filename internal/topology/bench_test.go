package topology

import "testing"

func benchTopo(b *testing.B, build func() (Topology, error)) Topology {
	b.Helper()
	topo, err := build()
	if err != nil {
		b.Fatal(err)
	}
	return topo
}

func BenchmarkTorusHopCount(b *testing.B) {
	topo := benchTopo(b, func() (Topology, error) { return NewTorus(16, 8, 8) })
	n := topo.Nodes()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += topo.HopCount(i%n, (i*7+3)%n)
	}
	_ = sink
}

func BenchmarkTorusRoute(b *testing.B) {
	topo := benchTopo(b, func() (Topology, error) { return NewTorus(16, 8, 8) })
	n := topo.Nodes()
	var buf []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = topo.Route(i%n, (i*7+3)%n, buf)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFatTreeRoute(b *testing.B) {
	topo := benchTopo(b, func() (Topology, error) { return NewFatTree(48, 3) })
	n := topo.Nodes()
	var buf []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = topo.Route(i%n, (i*101+7)%n, buf)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDragonflyRoute(b *testing.B) {
	topo := benchTopo(b, func() (Topology, error) { return NewDragonfly(8, 4, 4) })
	n := topo.Nodes()
	var buf []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = topo.Route(i%n, (i*13+5)%n, buf)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDragonflyHopCount(b *testing.B) {
	topo := benchTopo(b, func() (Topology, error) { return NewDragonfly(10, 5, 5) })
	n := topo.Nodes()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += topo.HopCount(i%n, (i*13+5)%n)
	}
	_ = sink
}

func BenchmarkTorusConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := NewTorus(12, 12, 12); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFatTreeConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := NewFatTree(48, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDragonflyConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := NewDragonfly(10, 5, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBFSReference(b *testing.B) {
	topo := benchTopo(b, func() (Topology, error) { return NewTorus(8, 8, 8) })
	g, err := GraphOf(topo)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.BFSFrom(i % topo.NumVertices()); err != nil {
			b.Fatal(err)
		}
	}
}
