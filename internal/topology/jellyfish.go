package topology

import (
	"fmt"
	"sort"
)

// maxJellyfishSwitches bounds the random-graph construction (the BFS
// distance tables are O(S²)); the config ladder stays far below it.
const maxJellyfishSwitches = 4096

// Jellyfish is the random regular graph topology of Singla et al.: S
// switches, each with r ports wired to r distinct other switches chosen
// uniformly at random, and p compute nodes per switch. The appeal is
// incremental expandability plus near-optimal path diversity; here it
// doubles as the stress case for the repo's determinism contract, because
// "random" must still mean reproducible. The wiring is drawn from a
// seeded splitmix-style generator — the same (S, r, p, seed) Config
// always produces a byte-identical link list, so the workcache can share
// one built instance across goroutines and grid outputs stay pinned at
// every worker count.
//
// Construction is the standard Jellyfish pairing procedure: repeatedly
// join two random free ports on distinct, not-yet-adjacent switches;
// when no such pair remains, incorporate leftover free ports by breaking
// a random existing link (u with free ports takes over both ends). If
// the wiring exceeds its iteration budget or comes out disconnected, the
// next seed (seed+1, …) is tried, up to eight attempts, then an error is
// returned — never a panic.
type Jellyfish struct {
	fabric
	s, r, p int
	seed    uint64
}

// jfRand is a splitmix64 sequence — the same finalizer the Valiant pivot
// and ECMP hashes use, kept local so graph wiring never depends on
// math/rand internals.
type jfRand struct{ state uint64 }

func (r *jfRand) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a value in [0, n). The modulo bias is irrelevant here —
// the draw only needs to be deterministic and well spread.
func (r *jfRand) intn(n int) int { return int(r.next() % uint64(n)) }

// NewJellyfish constructs a random regular graph of s switches with r
// inter-switch ports each and p compute nodes per switch, wired
// deterministically from seed.
func NewJellyfish(s, r, p int, seed uint64) (*Jellyfish, error) {
	if s < 2 || r < 1 || p < 1 {
		return nil, fmt.Errorf("topology: invalid jellyfish parameters (s=%d,r=%d,p=%d)", s, r, p)
	}
	if s > maxJellyfishSwitches {
		return nil, fmt.Errorf("topology: jellyfish switch count %d exceeds the supported maximum %d", s, maxJellyfishSwitches)
	}
	if r > s-1 {
		return nil, fmt.Errorf("topology: jellyfish degree %d exceeds switch count %d minus one", r, s)
	}
	if s*r%2 != 0 {
		return nil, fmt.Errorf("topology: jellyfish needs an even port total, got %d switches × degree %d", s, r)
	}
	for attempt := 0; attempt < 8; attempt++ {
		edges, ok := jellyfishWire(s, r, seed+uint64(attempt))
		if !ok {
			continue
		}
		j := &Jellyfish{s: s, r: r, p: p, seed: seed}
		j.initFabric(s, p)
		for _, e := range edges {
			j.addSwitchLink(e[0], e[1], ClassGlobal)
		}
		if err := j.finish(j.Name()); err != nil {
			continue // disconnected draw — retry with the next seed
		}
		return j, nil
	}
	return nil, fmt.Errorf("topology: jellyfish(%d,%d,%d;%d) produced no connected regular graph in 8 seeded attempts", s, r, p, seed)
}

// jellyfishWire draws one r-regular graph on s switches from the seed.
// The returned edge list is canonically sorted, so it (not the draw
// order) defines the link indices.
func jellyfishWire(s, r int, seed uint64) ([][2]int, bool) {
	rng := &jfRand{state: seed}
	budget := 50*s*r + 1000

	// One entry per free port, holding its switch.
	free := make([]int, 0, s*r)
	for i := 0; i < s; i++ {
		for k := 0; k < r; k++ {
			free = append(free, i)
		}
	}
	var edges [][2]int
	edgeAt := make(map[[2]int]int, s*r/2) // pair -> index into edges
	hasEdge := func(a, b int) bool { _, ok := edgeAt[pairKey(a, b)]; return ok }
	addEdge := func(a, b int) {
		k := pairKey(a, b)
		edgeAt[k] = len(edges)
		edges = append(edges, k)
	}
	dropEdge := func(i int) [2]int {
		e := edges[i]
		delete(edgeAt, e)
		last := len(edges) - 1
		if i != last {
			edges[i] = edges[last]
			edgeAt[edges[i]] = i
		}
		edges = edges[:last]
		return e
	}
	dropPorts := func(i, j int) { // remove two free-list entries by index
		if i < j {
			i, j = j, i
		}
		free[i] = free[len(free)-1]
		free = free[:len(free)-1]
		free[j] = free[len(free)-1]
		free = free[:len(free)-1]
	}
	anyValidPair := func() bool {
		for i := 0; i < len(free); i++ {
			for j := i + 1; j < len(free); j++ {
				if free[i] != free[j] && !hasEdge(free[i], free[j]) {
					return true
				}
			}
		}
		return false
	}

	for len(free) >= 2 {
		// Random pairing until draws stop landing.
		fails := 0
		for len(free) >= 2 && fails < 64 {
			if budget--; budget < 0 {
				return nil, false
			}
			i, j := rng.intn(len(free)), rng.intn(len(free))
			a, b := free[i], free[j]
			if i == j || a == b || hasEdge(a, b) {
				fails++
				continue
			}
			addEdge(a, b)
			dropPorts(i, j)
			fails = 0
		}
		if len(free) < 2 {
			break
		}
		if anyValidPair() {
			continue // unlucky streak, keep drawing
		}
		// Stuck: every remaining free-port pair is same-switch or already
		// adjacent. Incorporate two ports via the Jellyfish swap step.
		a, b := free[0], free[1]
		for i := 2; i < len(free) && a != b; i++ {
			if free[i] == a {
				b = free[i] // prefer two ports on one switch
			}
		}
		ok := false
		for tries := 0; tries < 200 && !ok; tries++ {
			if budget--; budget < 0 {
				return nil, false
			}
			e := edges[rng.intn(len(edges))]
			x, y := e[0], e[1]
			if x == a || x == b || y == a || y == b {
				continue
			}
			if a == b {
				// Break (x,y), attach both ends to a: degree of a +2.
				if hasEdge(a, x) || hasEdge(a, y) {
					continue
				}
				dropEdge(edgeAt[e])
				addEdge(a, x)
				addEdge(a, y)
				ok = true
			} else {
				// Break (x,y), attach a-x and b-y: one port each.
				if hasEdge(a, x) || hasEdge(b, y) {
					continue
				}
				dropEdge(edgeAt[e])
				addEdge(a, x)
				addEdge(b, y)
				ok = true
			}
		}
		if !ok {
			return nil, false
		}
		// The two incorporated ports are free[0]/free[1] or a duplicate
		// pair of switch a — remove one port of a and one of b.
		ia, ib := -1, -1
		for i, sw := range free {
			if sw == a && ia == -1 {
				ia = i
			} else if sw == b && ib == -1 {
				ib = i
			}
		}
		dropPorts(ia, ib)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	return edges, true
}

// Params returns (switches, degree, hosts-per-switch).
func (j *Jellyfish) Params() (s, r, p int) { return j.s, j.r, j.p }

// Seed returns the wiring seed.
func (j *Jellyfish) Seed() uint64 { return j.seed }

// Name implements Topology.
func (j *Jellyfish) Name() string {
	return fmt.Sprintf("jellyfish(%d,%d,%d;%d)", j.s, j.r, j.p, j.seed)
}

// Kind implements Topology.
func (j *Jellyfish) Kind() string { return "jellyfish" }

// HopCount implements Topology.
func (j *Jellyfish) HopCount(src, dst int) int { return j.hopCount(src, dst) }

// Route implements Topology.
func (j *Jellyfish) Route(src, dst int, buf []int) ([]int, error) { return j.route(j, src, dst, buf) }

var _ Topology = (*Jellyfish)(nil)
