package topology

// Cost summarizes the hardware one topology instance consumes: how many
// switch chips, how many cables, and how many switch ports those cables
// occupy. It is the cost proxy the design optimizer ranks candidates by
// (Solnushkin's automated fat-tree design frames the search exactly this
// way: minimize equipment for a required node count), and /v1/topologies
// and cmd/topostat report the same numbers so every surface shares one
// cost model.
type Cost struct {
	// Switches is the number of switch chips. Direct networks with
	// node-integrated routers (torus, mesh) count one router per node.
	Switches int `json:"switches"`
	// Links is the number of cables, straight from Links().
	Links int `json:"links"`
	// Ports is the number of switch-side port attachments: each link
	// consumes one port per switch endpoint, and integrated routers
	// additionally spend one injection port per hosted node.
	Ports int `json:"ports"`
}

// Units collapses the cost into a single comparable scalar. Switch chips
// dominate interconnect cost, cables come second, and ports are already
// implied by the first two, so they enter with a small weight that breaks
// ties between equal switch/link counts.
func (c Cost) Units() float64 {
	return float64(c.Switches) + 0.25*float64(c.Links) + 0.05*float64(c.Ports)
}

// Coster is implemented by topologies that report their hardware cost.
type Coster interface {
	Cost() Cost
}

// CostOf returns the hardware cost of any topology: the implementation's
// own Cost method when it has one, otherwise the generic graph count
// (which covers wrappers like Valiant routing over a dragonfly).
func CostOf(t Topology) Cost {
	if c, ok := t.(Coster); ok {
		return c.Cost()
	}
	return graphCost(t)
}

// graphCost derives the cost from the topology graph alone. Indirect
// networks place switches at vertices beyond the node space; direct
// networks (vertex space == node space) integrate one router per node,
// where every link endpoint lands on a router and each node adds one
// injection port.
func graphCost(t Topology) Cost {
	switches := t.NumVertices() - t.Nodes()
	integrated := switches == 0
	c := Cost{Links: len(t.Links())}
	if integrated {
		c.Switches = t.Nodes()
		c.Ports = 2*c.Links + t.Nodes()
		return c
	}
	c.Switches = switches
	for _, l := range t.Links() {
		if l.A >= t.Nodes() {
			c.Ports++
		}
		if l.B >= t.Nodes() {
			c.Ports++
		}
	}
	return c
}

// Cost implements Coster: one integrated router per node, six neighbor
// links each (fewer on mesh faces), plus one injection port per node.
func (t *Torus) Cost() Cost { return graphCost(t) }

// Cost implements Coster over the explicit switch stages.
func (f *FatTree) Cost() Cost { return graphCost(f) }

// Cost implements Coster over the per-group routers and global links.
func (d *Dragonfly) Cost() Cost { return graphCost(d) }

// Cost implements Coster over the MMS router graph.
func (s *SlimFly) Cost() Cost { return graphCost(s) }

// Cost implements Coster over the random regular switch graph.
func (j *Jellyfish) Cost() Cost { return graphCost(j) }

// Cost implements Coster over the lattice switches and per-dimension
// all-to-all links.
func (h *HyperX) Cost() Cost { return graphCost(h) }
