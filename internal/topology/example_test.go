package topology_test

import (
	"fmt"

	"netloc/internal/topology"
)

// A 4x4x4 torus wraps each dimension, so opposite corners are only three
// hops apart; the same grid as a mesh needs nine.
func ExampleNewTorus() {
	torus, _ := topology.NewTorus(4, 4, 4)
	mesh, _ := topology.NewMesh(4, 4, 4)
	fmt.Printf("torus corner-to-corner: %d hops\n", torus.HopCount(0, 63))
	fmt.Printf("mesh  corner-to-corner: %d hops\n", mesh.HopCount(0, 63))
	// Output:
	// torus corner-to-corner: 3 hops
	// mesh  corner-to-corner: 9 hops
}

// The study's fat trees use radix-48 switches; two stages host 576 nodes
// with at most four hops between any pair.
func ExampleNewFatTree() {
	ft, _ := topology.NewFatTree(48, 2)
	fmt.Printf("%s: %d nodes, same leaf %d hops, cross leaf %d hops\n",
		ft.Name(), ft.Nodes(), ft.HopCount(0, 1), ft.HopCount(0, 575))
	// Output:
	// fattree(48,2): 576 nodes, same leaf 2 hops, cross leaf 4 hops
}

// The balanced dragonfly (a=2h=2p) with a=4 has nine groups of eight
// nodes; hop counts range from two (same router) to five.
func ExampleNewDragonfly() {
	df, _ := topology.NewDragonfly(4, 2, 2)
	fmt.Printf("%s: %d nodes in %d groups, same router %d hops\n",
		df.Name(), df.Nodes(), df.Groups(), df.HopCount(0, 1))
	// Output:
	// dragonfly(4,2,2): 72 nodes in 9 groups, same router 2 hops
}

// Configs reproduces one row of the paper's Table 2.
func ExampleConfigs() {
	torus, fattree, dragonfly, _ := topology.Configs(216)
	fmt.Printf("torus %s, fat tree %s, dragonfly %s\n", torus, fattree, dragonfly)
	// Output:
	// torus (6,6,6), fat tree (48,2), dragonfly (6,3,3)
}

// Route returns the concrete link path; its length always equals HopCount.
func ExampleTorus_Route() {
	torus, _ := topology.NewTorus(4, 4, 4)
	path, _ := torus.Route(0, 21, nil) // (0,0,0) -> (1,1,1)
	fmt.Printf("%d links, hop count %d\n", len(path), torus.HopCount(0, 21))
	// Output:
	// 3 links, hop count 3
}
