package topology

import "testing"

func TestNewFatTreeValidation(t *testing.T) {
	cases := []struct{ radix, stages int }{
		{3, 1}, {2, 1}, {47, 2}, {48, 0}, {48, 4}, {-4, 1},
	}
	for _, c := range cases {
		if _, err := NewFatTree(c.radix, c.stages); err == nil {
			t.Errorf("NewFatTree(%d,%d) should fail", c.radix, c.stages)
		}
	}
}

func TestFatTreeNodeCountsPerPaper(t *testing.T) {
	// Table 2: (48,1) -> 48, (48,2) -> 576, (48,3) -> 13824.
	cases := []struct{ stages, nodes int }{
		{1, 48}, {2, 576}, {3, 13824},
	}
	for _, c := range cases {
		f, err := NewFatTree(48, c.stages)
		if err != nil {
			t.Fatal(err)
		}
		if f.Nodes() != c.nodes {
			t.Errorf("stages=%d: Nodes = %d, want %d", c.stages, f.Nodes(), c.nodes)
		}
	}
}

func TestFatTreeAccessors(t *testing.T) {
	f, _ := NewFatTree(8, 2)
	if f.Radix() != 8 || f.Stages() != 2 {
		t.Fatalf("Radix=%d Stages=%d", f.Radix(), f.Stages())
	}
	if f.Kind() != "fattree" || f.Name() != "fattree(8,2)" {
		t.Fatalf("Kind=%q Name=%q", f.Kind(), f.Name())
	}
}

func TestFatTreeStage1Structure(t *testing.T) {
	f, err := NewFatTree(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f.Nodes() != 8 || f.NumVertices() != 9 {
		t.Fatalf("Nodes=%d NumVertices=%d", f.Nodes(), f.NumVertices())
	}
	if len(f.Links()) != 8 {
		t.Fatalf("links = %d, want 8", len(f.Links()))
	}
	for _, c := range f.LinkClasses() {
		if c != ClassTerminal {
			t.Fatal("stage-1 fat tree has only terminal links")
		}
	}
	// Every distinct pair is exactly 2 hops.
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			want := 2
			if s == d {
				want = 0
			}
			if got := f.HopCount(s, d); got != want {
				t.Fatalf("HopCount(%d,%d) = %d, want %d", s, d, got, want)
			}
		}
	}
}

func TestFatTreeStage2Structure(t *testing.T) {
	// radix 8 -> d=4: 16 nodes, 4 leaves, 2 tops.
	f, err := NewFatTree(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f.Nodes() != 16 {
		t.Fatalf("Nodes = %d, want 16", f.Nodes())
	}
	if f.NumVertices() != 16+4+2 {
		t.Fatalf("NumVertices = %d, want 22", f.NumVertices())
	}
	// Links: 16 terminal + 4 leaves * 2 tops * 2 parallel = 16.
	if len(f.Links()) != 32 {
		t.Fatalf("links = %d, want 32", len(f.Links()))
	}
	// Hop structure: same leaf 2, otherwise 4.
	if got := f.HopCount(0, 3); got != 2 {
		t.Fatalf("same-leaf hops = %d, want 2", got)
	}
	if got := f.HopCount(0, 4); got != 4 {
		t.Fatalf("cross-leaf hops = %d, want 4", got)
	}
}

func TestFatTreeStage3Structure(t *testing.T) {
	// radix 4 -> d=2: 8 nodes, 4 leaves (2 pods), 4 mids, 2 tops.
	f, err := NewFatTree(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if f.Nodes() != 8 {
		t.Fatalf("Nodes = %d, want 8", f.Nodes())
	}
	if f.NumVertices() != 8+4+4+2 {
		t.Fatalf("NumVertices = %d, want 18", f.NumVertices())
	}
	if got := f.HopCount(0, 1); got != 2 { // same leaf
		t.Fatalf("same-leaf = %d", got)
	}
	if got := f.HopCount(0, 2); got != 4 { // same pod
		t.Fatalf("same-pod = %d", got)
	}
	if got := f.HopCount(0, 4); got != 6 { // cross pod
		t.Fatalf("cross-pod = %d", got)
	}
}

func TestFatTreeSwitchRadixRespected(t *testing.T) {
	// No switch may have more links than its radix.
	for _, cfg := range []struct{ radix, stages int }{{4, 1}, {4, 2}, {4, 3}, {8, 2}, {8, 3}} {
		f, err := NewFatTree(cfg.radix, cfg.stages)
		if err != nil {
			t.Fatal(err)
		}
		g, err := GraphOf(f)
		if err != nil {
			t.Fatal(err)
		}
		for v := f.Nodes(); v < f.NumVertices(); v++ {
			deg, err := g.Degree(v)
			if err != nil {
				t.Fatal(err)
			}
			if deg > cfg.radix {
				t.Fatalf("fattree(%d,%d): switch %d degree %d exceeds radix", cfg.radix, cfg.stages, v, deg)
			}
		}
	}
}

func TestFatTreeConnected(t *testing.T) {
	for _, cfg := range []struct{ radix, stages int }{{4, 1}, {4, 2}, {4, 3}, {8, 2}, {8, 3}, {48, 1}} {
		f, err := NewFatTree(cfg.radix, cfg.stages)
		if err != nil {
			t.Fatal(err)
		}
		g, err := GraphOf(f)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := g.Connected()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("fattree(%d,%d) not connected", cfg.radix, cfg.stages)
		}
	}
}

func TestFatTreeRoutingMatchesBFS(t *testing.T) {
	for _, cfg := range []struct{ radix, stages int }{{4, 1}, {4, 2}, {4, 3}, {8, 2}, {8, 3}, {12, 2}} {
		f, err := NewFatTree(cfg.radix, cfg.stages)
		if err != nil {
			t.Fatal(err)
		}
		verifyRoutingAgainstBFS(t, f, 0)
	}
}

func TestFatTreeRoutingMatchesBFSPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, stages := range []int{1, 2} {
		f, err := NewFatTree(48, stages)
		if err != nil {
			t.Fatal(err)
		}
		verifyRoutingAgainstBFS(t, f, 10)
	}
	f, err := NewFatTree(48, 3)
	if err != nil {
		t.Fatal(err)
	}
	verifyRoutingAgainstBFS(t, f, 2)
}

func TestFatTreeRouteErrors(t *testing.T) {
	f, _ := NewFatTree(4, 2)
	if _, err := f.Route(0, 99, nil); err == nil {
		t.Fatal("out-of-range dst accepted")
	}
	if _, err := f.Route(-1, 0, nil); err == nil {
		t.Fatal("negative src accepted")
	}
}

func TestFatTreeRouteSpreadsParallelLinks(t *testing.T) {
	// With d-mod routing, different destination/source pairs should use
	// more than one distinct upward link between the same leaf pair.
	f, _ := NewFatTree(8, 2)
	used := map[int]bool{}
	var buf []int
	var err error
	for src := 0; src < 4; src++ { // leaf 0
		for dst := 4; dst < 8; dst++ { // leaf 1
			buf, err = f.Route(src, dst, buf)
			if err != nil {
				t.Fatal(err)
			}
			for _, li := range buf[1 : len(buf)-1] { // exclude terminals
				used[li] = true
			}
		}
	}
	if len(used) < 4 {
		t.Fatalf("upward link diversity = %d, want >= 4", len(used))
	}
}

func TestFatTreeLinkClassCounts(t *testing.T) {
	f, _ := NewFatTree(4, 3) // 8 nodes, d=2
	var term, local, global int
	for _, c := range f.LinkClasses() {
		switch c {
		case ClassTerminal:
			term++
		case ClassLocal:
			local++
		case ClassGlobal:
			global++
		}
	}
	if term != 8 {
		t.Fatalf("terminal = %d, want 8", term)
	}
	// leaf-mid: 4 leaves x 2 mids per pod = 8 links.
	if local != 8 {
		t.Fatalf("local = %d, want 8", local)
	}
	// mid-top: 4 mids x 1 top x 2 parallel = 8 links.
	if global != 8 {
		t.Fatalf("global = %d, want 8", global)
	}
}
