package topology

import "fmt"

// Dragonfly is the hierarchical low-diameter topology of Kim et al.,
// parameterized by:
//
//	a — routers per group
//	h — global links per router
//	p — compute nodes per router
//
// yielding g = a*h+1 groups and a*p*(a*h+1) nodes. Routers within a group
// form a complete graph (local links); every pair of groups is connected by
// exactly one global link, arranged in the palm-tree pattern: global port k
// of group g (owned by router k/h) connects to global port a*h-1-k of group
// (g+k+1) mod G. The study uses the balanced configuration a = 2h = 2p.
//
// Minimal routing takes at most five hops: terminal, up to one local hop to
// the source-side gateway router, one global hop, up to one local hop on
// the destination side, and the destination terminal.
type Dragonfly struct {
	a, h, p int
	groups  int

	links   []Link
	classes []LinkClass

	termLink  []int   // node -> terminal link index
	localLink [][]int // group -> flattened a×a router pair -> link index (upper triangle)
	globalOf  []int   // group*a*h + k -> global link index

	// portRouter[k] = k / h, nodeGroup[v] = v / (a*p), and
	// nodeRouter[v] = (v % (a*p)) / p, precomputed so the per-pair
	// hop/route loops run on table lookups instead of divisions.
	portRouter []int32
	nodeGroup  []int32
	nodeRouter []int32
}

// NewDragonfly constructs a dragonfly. All parameters must be positive and
// a*h must be at least 1 (at least two groups).
func NewDragonfly(a, h, p int) (*Dragonfly, error) {
	if a <= 0 || h <= 0 || p <= 0 {
		return nil, fmt.Errorf("topology: invalid dragonfly parameters (a=%d,h=%d,p=%d)", a, h, p)
	}
	if a*h < 1 {
		return nil, fmt.Errorf("topology: dragonfly needs at least one global port per group")
	}
	d := &Dragonfly{a: a, h: h, p: p, groups: a*h + 1}
	d.build()
	return d, nil
}

// Vertex layout: compute nodes first (0..Nodes()-1), then routers
// (group-major, a per group).
func (d *Dragonfly) build() {
	n := d.Nodes()
	g := d.groups
	d.portRouter = make([]int32, d.a*d.h)
	for k := range d.portRouter {
		d.portRouter[k] = int32(k / d.h)
	}
	d.nodeGroup = make([]int32, n)
	d.nodeRouter = make([]int32, n)
	for v := 0; v < n; v++ {
		d.nodeGroup[v] = int32(v / (d.a * d.p))
		d.nodeRouter[v] = int32((v % (d.a * d.p)) / d.p)
	}
	addLink := func(x, y int, class LinkClass) int {
		d.links = append(d.links, Link{A: x, B: y})
		d.classes = append(d.classes, class)
		return len(d.links) - 1
	}

	// Terminal links.
	d.termLink = make([]int, n)
	for v := 0; v < n; v++ {
		d.termLink[v] = addLink(v, d.routerVertex(d.groupOf(v), d.routerOf(v)), ClassTerminal)
	}

	// Local links: complete graph within each group.
	d.localLink = make([][]int, g)
	for gi := 0; gi < g; gi++ {
		d.localLink[gi] = make([]int, d.a*d.a)
		for r1 := 0; r1 < d.a; r1++ {
			for r2 := r1 + 1; r2 < d.a; r2++ {
				li := addLink(d.routerVertex(gi, r1), d.routerVertex(gi, r2), ClassLocal)
				d.localLink[gi][r1*d.a+r2] = li
				d.localLink[gi][r2*d.a+r1] = li
			}
		}
	}

	// Global links in the palm-tree pattern: port k of group gi connects
	// to port a*h-1-k of group (gi+k+1) mod G. Each unordered group pair
	// gets exactly one link; create it from the lower-k side only
	// (k < a*h-1-k', i.e. create when this side's port index is smaller
	// than the peer's port index would make duplicates — instead create
	// each link once by letting the side with the smaller resulting
	// tuple own it).
	ah := d.a * d.h
	d.globalOf = make([]int, g*ah)
	for i := range d.globalOf {
		d.globalOf[i] = -1
	}
	for gi := 0; gi < g; gi++ {
		for k := 0; k < ah; k++ {
			if d.globalOf[gi*ah+k] != -1 {
				continue
			}
			peerGroup := (gi + k + 1) % g
			peerPort := ah - 1 - k
			r1 := d.routerVertex(gi, k/d.h)
			r2 := d.routerVertex(peerGroup, peerPort/d.h)
			li := addLink(r1, r2, ClassGlobal)
			d.globalOf[gi*ah+k] = li
			d.globalOf[peerGroup*ah+peerPort] = li
		}
	}
}

// Params returns (a, h, p).
func (d *Dragonfly) Params() (a, h, p int) { return d.a, d.h, d.p }

// Groups returns the number of groups.
func (d *Dragonfly) Groups() int { return d.groups }

// Name implements Topology.
func (d *Dragonfly) Name() string { return fmt.Sprintf("dragonfly(%d,%d,%d)", d.a, d.h, d.p) }

// Kind implements Topology.
func (d *Dragonfly) Kind() string { return "dragonfly" }

// Nodes implements Topology.
func (d *Dragonfly) Nodes() int { return d.a * d.p * d.groups }

// NumVertices implements Topology.
func (d *Dragonfly) NumVertices() int { return d.Nodes() + d.a*d.groups }

// Links implements Topology.
func (d *Dragonfly) Links() []Link { return d.links }

// LinkClasses implements Topology.
func (d *Dragonfly) LinkClasses() []LinkClass { return d.classes }

func (d *Dragonfly) groupOf(v int) int  { return int(d.nodeGroup[v]) }
func (d *Dragonfly) routerOf(v int) int { return int(d.nodeRouter[v]) }

func (d *Dragonfly) routerVertex(group, router int) int {
	return d.Nodes() + group*d.a + router
}

// gatewayPort returns the global port index k of group src that reaches
// group dst directly ((src+k+1) mod G == dst).
func (d *Dragonfly) gatewayPort(src, dst int) int {
	return (dst - src - 1 + d.groups) % d.groups
}

// directHops returns the length of the canonical local-global-local path
// between nodes in different groups: 3 hops plus one local hop on each side
// whose router is not the gateway.
func (d *Dragonfly) directHops(rs, rd, gs, gd int) int {
	k := d.gatewayPort(gs, gd)
	srcGW := int(d.portRouter[k])
	peerPort := d.a*d.h - 1 - k
	dstGW := int(d.portRouter[peerPort])
	hops := 3 // terminal + global + terminal
	if rs != srcGW {
		hops++
	}
	if rd != dstGW {
		hops++
	}
	return hops
}

// twoGlobalShortcut looks for a 4-hop path using two global links through
// an intermediate group: source router owns a global port landing on a
// router that itself owns a global port landing exactly on the destination
// router. Such aligned paths beat the canonical 5-hop local-global-local
// route when both endpoints sit away from their gateways; genuine
// shortest-path routing (which the study uses) must take them. Returns the
// two global port identifiers (group*a*h + port) or ok=false.
func (d *Dragonfly) twoGlobalShortcut(rs, rd, gs, gd int) (k1, k2 int, ok bool) {
	ah := d.a * d.h
	// gx and p2 move by ±1 as p1 increments, so both are maintained with
	// wraparound subtractions instead of per-iteration mod/div.
	p1 := rs * d.h
	gx := gs + p1 + 1
	if gx >= d.groups {
		gx -= d.groups
	}
	for end := p1 + d.h; p1 < end; p1++ {
		if gx != gd {
			rx := d.portRouter[ah-1-p1] // landing router in group gx
			// Each group pair shares exactly one global link, so the
			// only candidate port of gx toward gd is its gateway port;
			// the shortcut exists iff that port belongs to the landing
			// router and its far end lands on the destination router.
			p2 := gd - gx - 1
			if p2 < 0 {
				p2 += d.groups
			}
			if d.portRouter[p2] == rx && int(d.portRouter[ah-1-p2]) == rd {
				return gs*ah + p1, gx*ah + p2, true
			}
		}
		gx++
		if gx == d.groups {
			gx = 0
		}
	}
	return 0, 0, false
}

// HopCount implements Topology.
func (d *Dragonfly) HopCount(src, dst int) int {
	if src == dst {
		return 0
	}
	gs, gd := d.groupOf(src), d.groupOf(dst)
	rs, rd := d.routerOf(src), d.routerOf(dst)
	if gs == gd {
		if rs == rd {
			return 2 // node -> router -> node
		}
		return 3 // node -> router -> router -> node
	}
	hops := d.directHops(rs, rd, gs, gd)
	if hops == 5 {
		if _, _, ok := d.twoGlobalShortcut(rs, rd, gs, gd); ok {
			return 4
		}
	}
	return hops
}

// Route implements Topology.
func (d *Dragonfly) Route(src, dst int, buf []int) ([]int, error) {
	if err := checkEndpoints(d, src, dst); err != nil {
		return nil, err
	}
	buf = buf[:0]
	if src == dst {
		return buf, nil
	}
	gs, gd := d.groupOf(src), d.groupOf(dst)
	rs, rd := d.routerOf(src), d.routerOf(dst)
	buf = append(buf, d.termLink[src])
	if gs == gd {
		if rs != rd {
			buf = append(buf, d.localLink[gs][rs*d.a+rd])
		}
		return append(buf, d.termLink[dst]), nil
	}
	k := d.gatewayPort(gs, gd)
	srcGW := int(d.portRouter[k])
	peerPort := d.a*d.h - 1 - k
	dstGW := int(d.portRouter[peerPort])
	if rs != srcGW && rd != dstGW {
		// The canonical route needs two local hops; prefer an aligned
		// 4-hop double-global shortcut when one exists.
		if k1, k2, ok := d.twoGlobalShortcut(rs, rd, gs, gd); ok {
			return append(buf, d.globalOf[k1], d.globalOf[k2], d.termLink[dst]), nil
		}
	}
	if rs != srcGW {
		buf = append(buf, d.localLink[gs][rs*d.a+srcGW])
	}
	buf = append(buf, d.globalOf[gs*d.a*d.h+k])
	if dstGW != rd {
		buf = append(buf, d.localLink[gd][dstGW*d.a+rd])
	}
	return append(buf, d.termLink[dst]), nil
}

var _ Topology = (*Dragonfly)(nil)
