package topology

import "fmt"

// SlimFly is the diameter-2 Slim Fly topology of Besta and Hoefler,
// built on the McKay–Miller–Širáň (MMS) graphs: for an odd prime power
// q = 4w ± 1 there are 2q² routers, arranged as two subgraphs of q²
// routers each, labeled (s, x, y) with s ∈ {0, 1} and x, y ∈ GF(q).
// With ξ a primitive element of GF(q) and the generator sets
//
//	X  = {±ξ^(2i)   : 0 ≤ i < w}
//	X' = {±ξ^(2i+1) : 0 ≤ i < w}
//
// the adjacency is
//
//	(0, x, y) ~ (0, x, y')  iff  y − y' ∈ X     (intra, ClassLocal)
//	(1, m, c) ~ (1, m, c')  iff  c − c' ∈ X'    (intra, ClassLocal)
//	(0, x, y) ~ (1, m, c)   iff  y = m·x + c    (cross, ClassGlobal)
//
// giving network degree k = (3q − δ)/2 and diameter 2 between routers.
// Each router hosts p compute nodes. Routing uses the shared fabric BFS
// distance tables (no analytic form is attempted); the package tests pin
// the router-graph diameter to 2 for every ladder parameter.
type SlimFly struct {
	fabric
	q, p, delta int
}

// NewSlimFly constructs the MMS Slim Fly for prime power q (odd, so
// q ≡ 1 or 3 (mod 4)) with p compute nodes per router.
func NewSlimFly(q, p int) (*SlimFly, error) {
	if p <= 0 {
		return nil, fmt.Errorf("topology: invalid slim fly parameters (q=%d,p=%d)", q, p)
	}
	if q%2 == 0 {
		return nil, fmt.Errorf("topology: slim fly needs an odd prime power q ≡ 1 or 3 (mod 4), got %d", q)
	}
	f, err := newGF(q)
	if err != nil {
		return nil, err
	}
	delta := 1
	if q%4 == 3 {
		delta = -1
	}
	w := (q - delta) / 4

	// Generator sets as membership tables; both are closed under negation
	// by construction, so the intra-subgraph adjacency below is symmetric.
	inX := make([]bool, q)
	inXp := make([]bool, q)
	pw := 1 // ξ^0
	for i := 0; i < 2*w; i++ {
		in := inX
		if i%2 == 1 {
			in = inXp
		}
		in[pw] = true
		in[f.neg(pw)] = true
		pw = f.mul(pw, f.prim)
	}

	s := &SlimFly{q: q, p: p, delta: delta}
	s.initFabric(2*q*q, p)
	sw := func(sub, a, b int) int { return sub*q*q + a*q + b }

	// Intra-subgraph links, unordered pairs in ascending (x, y, y') order.
	for sub := 0; sub < 2; sub++ {
		in := inX
		if sub == 1 {
			in = inXp
		}
		for x := 0; x < q; x++ {
			for y := 0; y < q; y++ {
				for y2 := y + 1; y2 < q; y2++ {
					if in[f.sub(y2, y)] {
						s.addSwitchLink(sw(sub, x, y), sw(sub, x, y2), ClassLocal)
					}
				}
			}
		}
	}
	// Cross links: (0, x, y) ~ (1, m, c) with c = y − m·x.
	for x := 0; x < q; x++ {
		for y := 0; y < q; y++ {
			for m := 0; m < q; m++ {
				s.addSwitchLink(sw(0, x, y), sw(1, m, f.sub(y, f.mul(m, x))), ClassGlobal)
			}
		}
	}
	if err := s.finish(s.Name()); err != nil {
		return nil, err
	}
	return s, nil
}

// Params returns (q, p).
func (s *SlimFly) Params() (q, p int) { return s.q, s.p }

// NetworkRadix returns the inter-router degree k = (3q − δ)/2; the full
// switch radix is k + p.
func (s *SlimFly) NetworkRadix() int { return (3*s.q - s.delta) / 2 }

// Name implements Topology.
func (s *SlimFly) Name() string { return fmt.Sprintf("slimfly(%d,%d)", s.q, s.p) }

// Kind implements Topology.
func (s *SlimFly) Kind() string { return "slimfly" }

// HopCount implements Topology.
func (s *SlimFly) HopCount(src, dst int) int { return s.hopCount(src, dst) }

// Route implements Topology.
func (s *SlimFly) Route(src, dst int, buf []int) ([]int, error) { return s.route(s, src, dst, buf) }

var _ Topology = (*SlimFly)(nil)
