package topology

import "fmt"

// fabric is the shared machinery of the switch-fabric families added
// beyond the paper's three (Slim Fly, Jellyfish): compute nodes hang off
// switches by terminal links, switches form an arbitrary graph, and
// minimal routing runs on eagerly-built BFS distance tables over the
// switch graph — the "BFS where no analytic form exists" rule. The
// tables are immutable after construction, so one instance is safe to
// share across concurrent analysis cells (the workcache contract).
//
// Vertex layout: compute nodes 0..nodes-1, then switches. Node v attaches
// to switch v / perSwitch.
type fabric struct {
	nodes     int
	switches  int
	perSwitch int

	links   []Link
	classes []LinkClass

	termLink []int      // node -> terminal link index
	swAdj    [][]swEdge // switch -> neighbors in ascending link order
	dist     [][]int16  // dist[s][t] = switch-graph hops s -> t
}

type swEdge struct {
	to   int32 // peer switch index
	link int32
}

// initFabric sets the sizes and creates the terminal links (always the
// first n links, in node order).
func (f *fabric) initFabric(switches, perSwitch int) {
	f.switches = switches
	f.perSwitch = perSwitch
	f.nodes = switches * perSwitch
	f.termLink = make([]int, f.nodes)
	f.swAdj = make([][]swEdge, switches)
	for v := 0; v < f.nodes; v++ {
		f.termLink[v] = len(f.links)
		f.links = append(f.links, Link{A: v, B: f.nodes + v/perSwitch})
		f.classes = append(f.classes, ClassTerminal)
	}
}

// addSwitchLink connects switches a and b (indices in 0..switches-1) with
// a link of the given class. Callers add links in a deterministic order;
// adjacency lists follow that order, which pins the routing tie-breaks.
func (f *fabric) addSwitchLink(a, b int, class LinkClass) {
	li := int32(len(f.links))
	f.links = append(f.links, Link{A: f.nodes + a, B: f.nodes + b})
	f.classes = append(f.classes, class)
	f.swAdj[a] = append(f.swAdj[a], swEdge{to: int32(b), link: li})
	f.swAdj[b] = append(f.swAdj[b], swEdge{to: int32(a), link: li})
}

// finish builds the per-switch BFS distance tables and verifies the
// switch graph is connected. name labels errors.
func (f *fabric) finish(name string) error {
	f.dist = make([][]int16, f.switches)
	queue := make([]int32, 0, f.switches)
	for s := 0; s < f.switches; s++ {
		d := make([]int16, f.switches)
		for i := range d {
			d[i] = -1
		}
		d[s] = 0
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, e := range f.swAdj[v] {
				if d[e.to] == -1 {
					d[e.to] = d[v] + 1
					queue = append(queue, e.to)
				}
			}
		}
		for t, dt := range d {
			if dt == -1 {
				return fmt.Errorf("topology: %s switch graph is disconnected (switch %d unreachable from %d)", name, t, s)
			}
		}
		f.dist[s] = d
	}
	return nil
}

// Nodes implements Topology.
func (f *fabric) Nodes() int { return f.nodes }

// NumVertices implements Topology.
func (f *fabric) NumVertices() int { return f.nodes + f.switches }

// Links implements Topology.
func (f *fabric) Links() []Link { return f.links }

// LinkClasses implements Topology.
func (f *fabric) LinkClasses() []LinkClass { return f.classes }

// switchOf returns the switch a node attaches to.
func (f *fabric) switchOf(v int) int { return v / f.perSwitch }

// hopCount is the shared HopCount: two terminal hops around the
// switch-graph distance (0 for self, 2 for switch-sharing pairs).
func (f *fabric) hopCount(src, dst int) int {
	if src == dst {
		return 0
	}
	ss, ds := f.switchOf(src), f.switchOf(dst)
	if ss == ds {
		return 2
	}
	return int(f.dist[ss][ds]) + 2
}

// route is the shared minimal route: greedy descent on the destination's
// distance table, taking the first distance-decreasing neighbor in link
// order at every switch — deterministic and exactly hopCount links long.
func (f *fabric) route(t Topology, src, dst int, buf []int) ([]int, error) {
	if err := checkEndpoints(t, src, dst); err != nil {
		return nil, err
	}
	buf = buf[:0]
	if src == dst {
		return buf, nil
	}
	buf = append(buf, f.termLink[src])
	ds := f.switchOf(dst)
	d := f.dist[ds]
	cur := f.switchOf(src)
	for cur != ds {
		want := d[cur] - 1
		found := false
		for _, e := range f.swAdj[cur] {
			if d[e.to] == want {
				buf = append(buf, int(e.link))
				cur = int(e.to)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("topology: BFS dead end at switch %d toward %d", cur, ds)
		}
	}
	return append(buf, f.termLink[dst]), nil
}

// switchDiameter returns the largest switch-graph distance (the network
// diameter between endpoints is this plus two terminal hops).
func (f *fabric) switchDiameter() int {
	max := int16(0)
	for _, row := range f.dist {
		for _, d := range row {
			if d > max {
				max = d
			}
		}
	}
	return int(max)
}
