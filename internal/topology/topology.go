// Package topology models the three interconnection topologies of the
// study — 3D torus, fat tree, and dragonfly — as explicit switch/link
// graphs with deterministic minimal (shortest-path) routing.
//
// Each Topology exposes compute nodes 0..Nodes()-1 (the entities ranks are
// mapped onto), an undirected link list over an internal vertex space
// (compute nodes plus switches), an analytic HopCount for fast aggregate
// metrics, and a Route that returns the concrete link path used for
// link-level traffic accounting. Analytic hop counts are validated against
// breadth-first search over the explicit graph in the package tests.
//
// Following the paper, routing is shortest-path for all topologies: the
// model is non-temporal, so no load balancing or adaptivity is needed, and
// shortest paths emphasize the impact of the topology itself.
package topology

import "fmt"

// Link is an undirected connection between two vertices of the topology
// graph. A vertex is either a compute node (IDs 0..Nodes()-1) or a switch
// (IDs Nodes()..NumVertices()-1). For the torus, switches are integrated
// into the nodes, so the vertex space equals the node space.
type Link struct {
	A, B int
}

// LinkClass categorizes links for per-class analyses (e.g. the share of
// dragonfly traffic crossing global links).
type LinkClass uint8

const (
	// ClassTerminal connects a compute node to its switch.
	ClassTerminal LinkClass = iota
	// ClassLocal connects switches within the same group/stage domain
	// (torus neighbor links, fat-tree links below the top stage,
	// dragonfly intra-group links).
	ClassLocal
	// ClassGlobal connects distant domains (dragonfly inter-group links,
	// fat-tree top-stage links).
	ClassGlobal
)

// String returns the class name.
func (c LinkClass) String() string {
	switch c {
	case ClassTerminal:
		return "terminal"
	case ClassLocal:
		return "local"
	case ClassGlobal:
		return "global"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Topology is an interconnection network with deterministic minimal routing.
type Topology interface {
	// Name identifies the topology instance, e.g. "torus(4,4,4)".
	Name() string
	// Kind is the topology family: "torus", "fattree", or "dragonfly".
	Kind() string
	// Nodes returns the number of compute nodes (rank mapping targets).
	Nodes() int
	// NumVertices returns the total vertex count (nodes + switches).
	NumVertices() int
	// Links returns the undirected link list. The slice is shared; do
	// not modify.
	Links() []Link
	// LinkClasses returns the class of each link, parallel to Links().
	LinkClasses() []LinkClass
	// HopCount returns the number of links a packet traverses from
	// compute node src to compute node dst under minimal routing.
	// HopCount(x, x) is 0.
	HopCount(src, dst int) int
	// Route returns the minimal path from src to dst as link indices
	// into Links(). The path length always equals HopCount(src, dst).
	// The returned slice is owned by the caller; buf may be passed to
	// avoid allocation (Route appends to buf[:0]).
	Route(src, dst int, buf []int) ([]int, error)
}

// checkEndpoints validates a node pair against the topology size.
func checkEndpoints(t Topology, src, dst int) error {
	if src < 0 || src >= t.Nodes() {
		return fmt.Errorf("topology: src %d out of range [0,%d)", src, t.Nodes())
	}
	if dst < 0 || dst >= t.Nodes() {
		return fmt.Errorf("topology: dst %d out of range [0,%d)", dst, t.Nodes())
	}
	return nil
}

// pairKey canonicalizes an unordered vertex pair (used by tests and the
// dragonfly palm-tree checks).
func pairKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// Diameter returns the largest hop count between any pair of compute
// nodes under the topology's routing (for minimal routing this is the
// network diameter over endpoints). O(Nodes²) — intended for analysis and
// tests, not hot paths.
func Diameter(t Topology) int {
	max := 0
	// Ordered pairs: non-minimal schemes (e.g. Valiant) need not be
	// symmetric in src and dst.
	for s := 0; s < t.Nodes(); s++ {
		for d := 0; d < t.Nodes(); d++ {
			if s == d {
				continue
			}
			if h := t.HopCount(s, d); h > max {
				max = h
			}
		}
	}
	return max
}
