package topology

import (
	"reflect"
	"testing"
)

// The determinism contract of the tentpole: identical (S, r, p, seed)
// parameters must produce byte-identical link lists, because the
// workcache shares one built instance per Config String and the grid
// suites pin output across worker counts.
func TestJellyfishDeterministicLinks(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 1 << 40} {
		a, err := NewJellyfish(16, 6, 3, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := NewJellyfish(16, 6, 3, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(a.Links(), b.Links()) {
			t.Fatalf("seed %d: links differ between identical constructions", seed)
		}
		if !reflect.DeepEqual(a.LinkClasses(), b.LinkClasses()) {
			t.Fatalf("seed %d: link classes differ", seed)
		}
	}
}

// Different seeds should (virtually always) wire different graphs — the
// seed is part of the structural identity.
func TestJellyfishSeedChangesWiring(t *testing.T) {
	a, err := NewJellyfish(16, 6, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewJellyfish(16, 6, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Links(), b.Links()) {
		t.Fatal("seeds 1 and 2 produced identical wirings")
	}
}

// Every switch ends with exactly r inter-switch links and p terminals,
// no multi-edges, no self loops, and the switch graph is connected.
func TestJellyfishRegularity(t *testing.T) {
	cases := []struct {
		s, r, p int
		seed    uint64
	}{
		{8, 3, 2, 1},
		{16, 6, 3, 9},
		{25, 4, 1, 3},
		{40, 5, 2, 7},
	}
	for _, c := range cases {
		j, err := NewJellyfish(c.s, c.r, c.p, c.seed)
		if err != nil {
			t.Fatalf("jellyfish(%d,%d,%d;%d): %v", c.s, c.r, c.p, c.seed, err)
		}
		g, err := GraphOf(j) // NewGraph rejects self loops
		if err != nil {
			t.Fatal(err)
		}
		seen := map[[2]int]bool{}
		classes := j.LinkClasses()
		for i, l := range j.Links() {
			if classes[i] == ClassTerminal {
				continue
			}
			k := pairKey(l.A, l.B)
			if seen[k] {
				t.Fatalf("jellyfish(%d,%d,%d;%d): duplicate link %d-%d", c.s, c.r, c.p, c.seed, l.A, l.B)
			}
			seen[k] = true
		}
		for sw := 0; sw < c.s; sw++ {
			deg, err := g.Degree(j.Nodes() + sw)
			if err != nil {
				t.Fatal(err)
			}
			if deg != c.r+c.p {
				t.Fatalf("jellyfish(%d,%d,%d;%d): switch %d degree %d, want %d",
					c.s, c.r, c.p, c.seed, sw, deg, c.r+c.p)
			}
		}
		ok, err := g.Connected()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("jellyfish(%d,%d,%d;%d): disconnected", c.s, c.r, c.p, c.seed)
		}
	}
}

func TestJellyfishErrors(t *testing.T) {
	cases := []struct {
		s, r, p int
	}{
		{1, 1, 1},                        // too few switches
		{8, 0, 1},                        // zero degree
		{8, 8, 1},                        // degree > s-1
		{5, 3, 1},                        // odd port total
		{8, 3, 0},                        // no terminals
		{maxJellyfishSwitches + 2, 2, 1}, // beyond the size cap
	}
	for _, c := range cases {
		if _, err := NewJellyfish(c.s, c.r, c.p, 1); err == nil {
			t.Errorf("NewJellyfish(%d,%d,%d): expected error", c.s, c.r, c.p)
		}
	}
}
