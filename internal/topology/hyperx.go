package topology

import "fmt"

// maxHyperXSwitches bounds the switch array (per-dimension link tables
// are O(S·(s1+s2+s3))); the config ladder stays far below it.
const maxHyperXSwitches = 4096

// HyperX is the flattened-butterfly generalization of Ahn et al.: switches
// sit on a 3-dimensional integer lattice of shape s1 × s2 × s3 (set a
// dimension to 1 to drop it), every pair of switches sharing all but one
// coordinate is directly connected (all-to-all per dimension per line),
// and each switch hosts t compute nodes. Minimal routing is analytic
// dimension-ordered: correct the x, then y, then z coordinate, one hop
// each, so the hop count between nodes is the number of differing switch
// coordinates plus the two terminal hops. All switch-switch links are
// ClassLocal — the lattice has no hierarchy to split on.
type HyperX struct {
	s1, s2, s3, t int
	nodes         int

	links   []Link
	classes []LinkClass

	termLink []int
	// dimLink[d] maps (line, a, b) — the orthogonal-coordinate line index
	// and the two positions along dimension d — to a link index.
	dimLink [3][]int32
}

// NewHyperX constructs an s1 × s2 × s3 HyperX with t nodes per switch.
func NewHyperX(s1, s2, s3, t int) (*HyperX, error) {
	if s1 < 1 || s2 < 1 || s3 < 1 || t < 1 {
		return nil, fmt.Errorf("topology: invalid hyperx parameters (s1=%d,s2=%d,s3=%d,t=%d)", s1, s2, s3, t)
	}
	sw := s1 * s2 * s3
	if sw > maxHyperXSwitches {
		return nil, fmt.Errorf("topology: hyperx switch count %d exceeds the supported maximum %d", sw, maxHyperXSwitches)
	}
	h := &HyperX{s1: s1, s2: s2, s3: s3, t: t, nodes: sw * t}
	addLink := func(a, b int, class LinkClass) int32 {
		h.links = append(h.links, Link{A: a, B: b})
		h.classes = append(h.classes, class)
		return int32(len(h.links) - 1)
	}

	// Terminal links, node order.
	h.termLink = make([]int, h.nodes)
	for v := 0; v < h.nodes; v++ {
		h.termLink[v] = int(addLink(v, h.nodes+v/t, ClassTerminal))
	}

	// Per-dimension all-to-all, dimension-major, lines in ascending
	// orthogonal order, pairs in ascending (a, b) order.
	h.dimLink[0] = make([]int32, s2*s3*s1*s1)
	for z := 0; z < s3; z++ {
		for y := 0; y < s2; y++ {
			line := z*s2 + y
			for a := 0; a < s1; a++ {
				for b := a + 1; b < s1; b++ {
					li := addLink(h.switchVertex(a, y, z), h.switchVertex(b, y, z), ClassLocal)
					h.dimLink[0][(line*s1+a)*s1+b] = li
					h.dimLink[0][(line*s1+b)*s1+a] = li
				}
			}
		}
	}
	h.dimLink[1] = make([]int32, s1*s3*s2*s2)
	for z := 0; z < s3; z++ {
		for x := 0; x < s1; x++ {
			line := z*s1 + x
			for a := 0; a < s2; a++ {
				for b := a + 1; b < s2; b++ {
					li := addLink(h.switchVertex(x, a, z), h.switchVertex(x, b, z), ClassLocal)
					h.dimLink[1][(line*s2+a)*s2+b] = li
					h.dimLink[1][(line*s2+b)*s2+a] = li
				}
			}
		}
	}
	h.dimLink[2] = make([]int32, s1*s2*s3*s3)
	for y := 0; y < s2; y++ {
		for x := 0; x < s1; x++ {
			line := y*s1 + x
			for a := 0; a < s3; a++ {
				for b := a + 1; b < s3; b++ {
					li := addLink(h.switchVertex(x, y, a), h.switchVertex(x, y, b), ClassLocal)
					h.dimLink[2][(line*s3+a)*s3+b] = li
					h.dimLink[2][(line*s3+b)*s3+a] = li
				}
			}
		}
	}
	return h, nil
}

// Params returns (s1, s2, s3, t).
func (h *HyperX) Params() (s1, s2, s3, t int) { return h.s1, h.s2, h.s3, h.t }

// NetworkRadix returns the inter-switch degree (s1-1)+(s2-1)+(s3-1); the
// full switch radix adds t terminal ports.
func (h *HyperX) NetworkRadix() int { return h.s1 + h.s2 + h.s3 - 3 }

// switchIndex flattens lattice coordinates (x fastest).
func (h *HyperX) switchIndex(x, y, z int) int { return (z*h.s2+y)*h.s1 + x }

func (h *HyperX) switchVertex(x, y, z int) int { return h.nodes + h.switchIndex(x, y, z) }

// coords recovers the lattice coordinates of a node's switch.
func (h *HyperX) coords(v int) (x, y, z int) {
	s := v / h.t
	x = s % h.s1
	s /= h.s1
	return x, s % h.s2, s / h.s2
}

// Name implements Topology.
func (h *HyperX) Name() string {
	return fmt.Sprintf("hyperx(%d,%d,%d;%d)", h.s1, h.s2, h.s3, h.t)
}

// Kind implements Topology.
func (h *HyperX) Kind() string { return "hyperx" }

// Nodes implements Topology.
func (h *HyperX) Nodes() int { return h.nodes }

// NumVertices implements Topology.
func (h *HyperX) NumVertices() int { return h.nodes + h.s1*h.s2*h.s3 }

// Links implements Topology.
func (h *HyperX) Links() []Link { return h.links }

// LinkClasses implements Topology.
func (h *HyperX) LinkClasses() []LinkClass { return h.classes }

// HopCount implements Topology: two terminal hops plus one switch hop per
// differing lattice coordinate.
func (h *HyperX) HopCount(src, dst int) int {
	if src == dst {
		return 0
	}
	sx, sy, sz := h.coords(src)
	dx, dy, dz := h.coords(dst)
	hops := 2
	if sx != dx {
		hops++
	}
	if sy != dy {
		hops++
	}
	if sz != dz {
		hops++
	}
	return hops
}

// Route implements Topology: dimension-ordered, correcting x then y then
// z, each in a single all-to-all hop.
func (h *HyperX) Route(src, dst int, buf []int) ([]int, error) {
	if err := checkEndpoints(h, src, dst); err != nil {
		return nil, err
	}
	buf = buf[:0]
	if src == dst {
		return buf, nil
	}
	sx, sy, sz := h.coords(src)
	dx, dy, dz := h.coords(dst)
	buf = append(buf, h.termLink[src])
	if sx != dx {
		line := sz*h.s2 + sy
		buf = append(buf, int(h.dimLink[0][(line*h.s1+sx)*h.s1+dx]))
	}
	if sy != dy {
		line := sz*h.s1 + dx
		buf = append(buf, int(h.dimLink[1][(line*h.s2+sy)*h.s2+dy]))
	}
	if sz != dz {
		line := dy*h.s1 + dx
		buf = append(buf, int(h.dimLink[2][(line*h.s3+sz)*h.s3+dz]))
	}
	return append(buf, h.termLink[dst]), nil
}

var _ Topology = (*HyperX)(nil)
